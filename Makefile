# Developer entry points for the RLive reproduction. The tier1 target is
# the acceptance gate every PR must keep green.

GO ?= go

.PHONY: tier1 build test vet race bench bench-json benchcmp chaos ci fmt-check determinism telemetry alerting ctrlplane sharded

# Next BENCH_*.json index; bump per PR so the trajectory accumulates.
BENCH_N ?= 4

tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Write the perf-trajectory document for this PR: micro- and
# experiment-bench numbers in machine-readable form. Diffs against the
# previous document when one exists.
bench-json:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' . \
		| $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_N).json \
			$(if $(wildcard BENCH_$(shell expr $(BENCH_N) - 1).json),-baseline BENCH_$(shell expr $(BENCH_N) - 1).json)

# Repeated micro-bench runs in benchstat-comparable format; redirect to a
# file and compare two with `benchstat old.txt new.txt`.
benchcmp:
	$(GO) test -bench 'BenchmarkSimnet|BenchmarkSharded' -benchmem -count 6 -run '^$$' .

# Run the headline resilience drill end to end.
chaos:
	$(GO) run ./cmd/rlive-sim -exp chaos-scheduler-outage

# Everything .github/workflows/ci.yml runs, locally: the tier1 gate,
# formatting, vet, the race detector, the serial-vs-parallel trace,
# telemetry, alerting, and control-plane determinism gates, and a
# one-iteration bench smoke.
ci: tier1 fmt-check vet race determinism telemetry alerting ctrlplane sharded
	$(MAKE) bench > /dev/null

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

# The CI determinism gate: same seed serial vs -parallel 4 must render the
# same tables and write byte-identical frame-lifecycle traces. Only the
# `-- ` status lines (wall-clock, trace path) may differ.
determinism:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/rlive-sim -exp ab-baseline -seed 7 -trace "$$tmp/a.jsonl" > "$$tmp/a.txt" && \
	$(GO) run ./cmd/rlive-sim -exp ab-baseline -seed 7 -parallel 4 -trace "$$tmp/b.jsonl" > "$$tmp/b.txt" && \
	cmp "$$tmp/a.jsonl" "$$tmp/b.jsonl" && \
	grep -v '^-- ' "$$tmp/a.txt" > "$$tmp/a.clean" && \
	grep -v '^-- ' "$$tmp/b.txt" > "$$tmp/b.clean" && \
	diff -u "$$tmp/a.clean" "$$tmp/b.clean" && \
	echo "determinism gate: OK"

# The telemetry determinism gate: the ab-peak instrument timelines must be
# byte-identical between a serial and a -parallel 4 run of the same seed.
telemetry:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/rlive-sim -exp ab-peak -seed 7 -telemetry "$$tmp/a.jsonl" > "$$tmp/a.txt" && \
	$(GO) run ./cmd/rlive-sim -exp ab-peak -seed 7 -parallel 4 -telemetry "$$tmp/b.jsonl" > "$$tmp/b.txt" && \
	cmp "$$tmp/a.jsonl" "$$tmp/b.jsonl" && \
	grep -v '^-- ' "$$tmp/a.txt" > "$$tmp/a.clean" && \
	grep -v '^-- ' "$$tmp/b.txt" > "$$tmp/b.clean" && \
	diff -u "$$tmp/a.clean" "$$tmp/b.clean" && \
	echo "telemetry gate: OK"

# The alerting determinism gate: the chaos-obs incident logs and detection
# scorecards must be byte-identical between a serial and a -parallel 4 run
# of the default seed (the seed the detection acceptance is pinned to).
alerting:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/rlive-sim -exp chaos-obs -seed 1 -alerts "$$tmp/a.jsonl" > "$$tmp/a.txt" && \
	$(GO) run ./cmd/rlive-sim -exp chaos-obs -seed 1 -parallel 4 -alerts "$$tmp/b.jsonl" > "$$tmp/b.txt" && \
	cmp "$$tmp/a.jsonl" "$$tmp/b.jsonl" && \
	grep -v '^-- ' "$$tmp/a.txt" > "$$tmp/a.clean" && \
	grep -v '^-- ' "$$tmp/b.txt" > "$$tmp/b.clean" && \
	diff -u "$$tmp/a.clean" "$$tmp/b.clean" && \
	echo "alerting gate: OK"

# The sharded-engine gate: focused byte-identity and parity tests for the
# per-region event loops, mailboxes, and compact fleet, then the fleet-scale
# sweep single-threaded vs 4 shard workers — rendered tables (QoE verdicts,
# delivery timeline) and the telemetry JSONL must be byte-identical.
sharded:
	@$(GO) test ./internal/simnet/ ./internal/fleet/ ./internal/core/ ./internal/experiments/ \
		-run 'Test(Sharded|Shard|Mailbox|SerialHeapTrim|Compact|FleetScale|SetBudget)' -count 1
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/rlive-sim -exp fleet-scale -seed 1 -telemetry "$$tmp/a.jsonl" > "$$tmp/a.txt" && \
	$(GO) run ./cmd/rlive-sim -exp fleet-scale -seed 1 -shards 4 -parallel 4 -telemetry "$$tmp/b.jsonl" > "$$tmp/b.txt" && \
	cmp "$$tmp/a.jsonl" "$$tmp/b.jsonl" && \
	grep -v '^-- ' "$$tmp/a.txt" > "$$tmp/a.clean" && \
	grep -v '^-- ' "$$tmp/b.txt" > "$$tmp/b.clean" && \
	diff -u "$$tmp/a.clean" "$$tmp/b.clean" && \
	echo "sharded gate: OK"

# The control-plane gate: focused unit + integration tests for the sharded
# scheduler tier and LKG autonomy, then the ctrl-scale drill serial vs
# -parallel 4 — rendered tables (message-rate flatness, invariant verdicts)
# and the snapshot/gossip event-log JSONL must be byte-identical.
ctrlplane:
	@$(GO) test ./internal/ctrlplane/ ./internal/core/ -run 'Test.*(Gossip|Shard|LKG|Push|CtrlWire|ControlPlane|DataPlane)' -count 1
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/rlive-sim -exp ctrl-scale -seed 1 -ctrl "$$tmp/a.jsonl" > "$$tmp/a.txt" && \
	$(GO) run ./cmd/rlive-sim -exp ctrl-scale -seed 1 -parallel 4 -ctrl "$$tmp/b.jsonl" > "$$tmp/b.txt" && \
	cmp "$$tmp/a.jsonl" "$$tmp/b.jsonl" && \
	grep -v '^-- ' "$$tmp/a.txt" > "$$tmp/a.clean" && \
	grep -v '^-- ' "$$tmp/b.txt" > "$$tmp/b.clean" && \
	diff -u "$$tmp/a.clean" "$$tmp/b.clean" && \
	echo "ctrlplane gate: OK"

# Developer entry points for the RLive reproduction. The tier1 target is
# the acceptance gate every PR must keep green.

GO ?= go

.PHONY: tier1 build test vet race bench bench-json bench-gate benchcmp chaos ci fmt-check determinism telemetry alerting ctrlplane sharded obs-smoke profile

# Perf-trajectory numbering: the latest checked-in BENCH_*.json is the
# regression baseline, and bench-json writes the next index so the
# trajectory accumulates one document per PR. Override with BENCH_N=… to
# regenerate a specific document.
BENCH_LATEST := $(shell ls BENCH_*.json 2>/dev/null | sed -n 's/^BENCH_\([0-9][0-9]*\)\.json$$/\1/p' | sort -n | tail -1)
BENCH_N ?= $(if $(BENCH_LATEST),$(shell expr $(BENCH_LATEST) + 1),1)

tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Write the perf-trajectory document for this PR: micro- and
# experiment-bench numbers in machine-readable form. Diffs against the
# previous document when one exists.
bench-json:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' . \
		| $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_N).json \
			$(if $(wildcard BENCH_$(shell expr $(BENCH_N) - 1).json),-baseline BENCH_$(shell expr $(BENCH_N) - 1).json)

# The perf-regression gate: run every benchmark once and fail if allocs/op
# (tight tolerance — allocation counts are deterministic) or ns/op (loose
# tolerance — wall time is noisy) regressed against the latest checked-in
# BENCH_*.json document.
bench-gate:
	@test -n "$(BENCH_LATEST)" || { echo "bench-gate: no BENCH_*.json baseline found" >&2; exit 1; }
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' . \
		| $(GO) run ./cmd/benchjson -gate -baseline BENCH_$(BENCH_LATEST).json

# Repeated micro-bench runs in benchstat-comparable format; redirect to a
# file and compare two with `benchstat old.txt new.txt`.
benchcmp:
	$(GO) test -bench 'BenchmarkSimnet|BenchmarkSharded' -benchmem -count 6 -run '^$$' .

# Run the headline resilience drill end to end.
chaos:
	$(GO) run ./cmd/rlive-sim -exp chaos-scheduler-outage

# Everything .github/workflows/ci.yml runs, locally: the tier1 gate,
# formatting, vet, the race detector, the serial-vs-parallel trace,
# telemetry, alerting, and control-plane determinism gates, and the
# benchmark regression gate.
ci: tier1 fmt-check vet race determinism telemetry alerting ctrlplane sharded bench-gate obs-smoke profile

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

# Serial-vs-parallel byte-identity gates. The shared check lives in
# scripts/determinism.sh (also used by CI): same seed, serial and parallel
# runs must render the same tables and write byte-identical JSONL; only the
# `-- ` status lines may differ.

# ab-baseline with the frame-lifecycle trace captured.
determinism:
	@scripts/determinism.sh ab-baseline 7 -trace

# ab-peak with the instrument timelines (every scrape of every
# counter/gauge/histogram) captured.
telemetry:
	@scripts/determinism.sh ab-peak 7 -telemetry

# chaos-obs incident logs and detection scorecards at the seed the
# detection acceptance (recall 1.0, zero warmup false alarms) is pinned to.
alerting:
	@scripts/determinism.sh chaos-obs 1 -alerts

# The sharded-engine gate: focused byte-identity and parity tests for the
# per-region event loops, mailboxes, and compact fleet, then the fleet-scale
# sweep single-threaded vs 4 shard workers.
sharded:
	@$(GO) test ./internal/simnet/ ./internal/fleet/ ./internal/core/ ./internal/experiments/ \
		-run 'Test(Sharded|Shard|Mailbox|SerialHeapTrim|Compact|FleetScale|SetBudget)' -count 1
	@scripts/determinism.sh fleet-scale 1 -telemetry -shards 4

# The control-plane gate: focused unit + integration tests for the sharded
# scheduler tier and LKG autonomy, then the ctrl-scale drill serial vs
# -parallel 4 (message-rate flatness, invariant verdicts, snapshot/gossip
# event log).
ctrlplane:
	@$(GO) test ./internal/ctrlplane/ ./internal/core/ -run 'Test.*(Gossip|Shard|LKG|Push|CtrlWire|ControlPlane|DataPlane)' -count 1
	@scripts/determinism.sh ctrl-scale 1 -ctrl

# The self-profiling gate: profile package + engine-integration tests, then
# the observe-only contract (PROF_CHECK reruns the determinism check with a
# third, profiled run that must stay byte-identical) on both engines, then a
# fleet-scale profiled run whose perf-report and Perfetto timeline land in
# PROFILE_OUT (default profile-out/) for inspection.
PROFILE_OUT ?= profile-out
profile:
	@$(GO) test ./internal/profile/ ./internal/simnet/ -run 'Test.*Prof|TestProf|TestNilProf|TestLap|TestPark|TestMail|TestReport|TestPerfetto|TestSpanCap' -count 1
	@PROF_CHECK=1 scripts/determinism.sh ab-baseline 7 -trace
	@PROF_CHECK=1 scripts/determinism.sh fleet-scale 1 -telemetry -shards 4
	@mkdir -p $(PROFILE_OUT)
	$(GO) run ./cmd/rlive-sim -exp fleet-scale -nodes 100000 -duration 5s -shards 4 -parallel 4 \
		-prof $(PROFILE_OUT)/perf-report.txt -perfetto $(PROFILE_OUT)/perf-trace.json

# The observability-plane smoke: boot rlive-cdn + rlive-edge + rlive-client
# on loopback with -obs, wait for /healthz and /readyz, and assert /metrics
# shows nonzero frame counters end to end. Shared with CI via
# scripts/obs-smoke.sh.
obs-smoke:
	@scripts/obs-smoke.sh

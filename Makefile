# Developer entry points for the RLive reproduction. The tier1 target is
# the acceptance gate every PR must keep green.

GO ?= go

.PHONY: tier1 build test vet race bench chaos

tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Run the headline resilience drill end to end.
chaos:
	$(GO) run ./cmd/rlive-sim -exp chaos-scheduler-outage

# Developer entry points for the RLive reproduction. The tier1 target is
# the acceptance gate every PR must keep green.

GO ?= go

.PHONY: tier1 build test vet race bench bench-json benchcmp chaos

# Next BENCH_*.json index; bump per PR so the trajectory accumulates.
BENCH_N ?= 1

tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Write the perf-trajectory document for this PR: micro- and
# experiment-bench numbers in machine-readable form. Diffs against the
# previous document when one exists.
bench-json:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' . \
		| $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_N).json \
			$(if $(wildcard BENCH_$(shell expr $(BENCH_N) - 1).json),-baseline BENCH_$(shell expr $(BENCH_N) - 1).json)

# Repeated micro-bench runs in benchstat-comparable format; redirect to a
# file and compare two with `benchstat old.txt new.txt`.
benchcmp:
	$(GO) test -bench 'BenchmarkSimnet' -benchmem -count 6 -run '^$$' .

# Run the headline resilience drill end to end.
chaos:
	$(GO) run ./cmd/rlive-sim -exp chaos-scheduler-outage

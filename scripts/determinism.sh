#!/usr/bin/env sh
# determinism.sh — the serial-vs-parallel byte-identity check, shared by the
# Makefile gates and CI so the two never drift.
#
# Usage:
#   scripts/determinism.sh <exp> <seed> <jsonl-flag> [extra parallel-run flags...]
#
#   <exp>        experiment name passed to rlive-sim -exp
#   <seed>       RNG seed (the seed each gate's acceptance is pinned to)
#   <jsonl-flag> which JSONL stream to capture: -trace, -telemetry, -alerts, -ctrl
#   extra flags  prepended to the second run only (e.g. "-shards 4" for the
#                sharded-engine gate; "-parallel 4" is always added)
#
# Environment:
#   DETERMINISM_OUT  keep outputs (serial.jsonl, serial.clean, ...) in this
#                    directory instead of a throwaway mktemp dir — CI sets it
#                    so scorecards/reports survive as artifacts.
#   PROF_CHECK=1     add a third run with engine self-profiling on (-prof,
#                    -perfetto) and require its JSONL and tables to match the
#                    unprofiled serial reference byte for byte — the
#                    observe-only contract. Also sanity-checks the artifacts:
#                    perf-report nonempty, Perfetto output valid JSON.
#
# The check: same seed, serial then parallel execution, must render identical
# tables and write byte-identical JSONL. Only the `-- ` status lines
# (wall-clock, output paths) may differ, so they are stripped before diffing.
set -eu

if [ "$#" -lt 3 ]; then
    echo "usage: $0 <exp> <seed> <jsonl-flag> [extra parallel-run flags...]" >&2
    exit 2
fi

exp=$1
seed=$2
jsonl_flag=$3
shift 3

if [ -n "${DETERMINISM_OUT:-}" ]; then
    out=$DETERMINISM_OUT
    mkdir -p "$out"
else
    out=$(mktemp -d)
    trap 'rm -rf "$out"' EXIT
fi

go run ./cmd/rlive-sim -exp "$exp" -seed "$seed" "$jsonl_flag" "$out/serial.jsonl" > "$out/serial.txt"
go run ./cmd/rlive-sim -exp "$exp" -seed "$seed" "$@" -parallel 4 "$jsonl_flag" "$out/parallel.jsonl" > "$out/parallel.txt"

cmp "$out/serial.jsonl" "$out/parallel.jsonl"
grep -v '^-- ' "$out/serial.txt" > "$out/serial.clean"
grep -v '^-- ' "$out/parallel.txt" > "$out/parallel.clean"
diff -u "$out/serial.clean" "$out/parallel.clean"

if [ -n "${PROF_CHECK:-}" ]; then
    go run ./cmd/rlive-sim -exp "$exp" -seed "$seed" "$@" -parallel 4 \
        -prof "$out/prof.txt" -perfetto "$out/prof.perfetto.json" \
        "$jsonl_flag" "$out/profiled.jsonl" > "$out/profiled.txt"
    cmp "$out/serial.jsonl" "$out/profiled.jsonl"
    grep -v '^-- ' "$out/profiled.txt" > "$out/profiled.clean"
    diff -u "$out/serial.clean" "$out/profiled.clean"
    test -s "$out/prof.txt" || {
        echo "prof-check($exp): perf-report is empty" >&2
        exit 1
    }
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out/prof.perfetto.json" || {
        echo "prof-check($exp): Perfetto output is not valid JSON" >&2
        exit 1
    }
    echo "prof-check($exp seed=$seed): OK (profiled run byte-identical)"
fi

echo "determinism($exp seed=$seed): OK"

#!/usr/bin/env sh
# determinism.sh — the serial-vs-parallel byte-identity check, shared by the
# Makefile gates and CI so the two never drift.
#
# Usage:
#   scripts/determinism.sh <exp> <seed> <jsonl-flag> [extra parallel-run flags...]
#
#   <exp>        experiment name passed to rlive-sim -exp
#   <seed>       RNG seed (the seed each gate's acceptance is pinned to)
#   <jsonl-flag> which JSONL stream to capture: -trace, -telemetry, -alerts, -ctrl
#   extra flags  prepended to the second run only (e.g. "-shards 4" for the
#                sharded-engine gate; "-parallel 4" is always added)
#
# Environment:
#   DETERMINISM_OUT  keep outputs (serial.jsonl, serial.clean, ...) in this
#                    directory instead of a throwaway mktemp dir — CI sets it
#                    so scorecards/reports survive as artifacts.
#
# The check: same seed, serial then parallel execution, must render identical
# tables and write byte-identical JSONL. Only the `-- ` status lines
# (wall-clock, output paths) may differ, so they are stripped before diffing.
set -eu

if [ "$#" -lt 3 ]; then
    echo "usage: $0 <exp> <seed> <jsonl-flag> [extra parallel-run flags...]" >&2
    exit 2
fi

exp=$1
seed=$2
jsonl_flag=$3
shift 3

if [ -n "${DETERMINISM_OUT:-}" ]; then
    out=$DETERMINISM_OUT
    mkdir -p "$out"
else
    out=$(mktemp -d)
    trap 'rm -rf "$out"' EXIT
fi

go run ./cmd/rlive-sim -exp "$exp" -seed "$seed" "$jsonl_flag" "$out/serial.jsonl" > "$out/serial.txt"
go run ./cmd/rlive-sim -exp "$exp" -seed "$seed" "$@" -parallel 4 "$jsonl_flag" "$out/parallel.jsonl" > "$out/parallel.txt"

cmp "$out/serial.jsonl" "$out/parallel.jsonl"
grep -v '^-- ' "$out/serial.txt" > "$out/serial.clean"
grep -v '^-- ' "$out/parallel.txt" > "$out/parallel.clean"
diff -u "$out/serial.clean" "$out/parallel.clean"

echo "determinism($exp seed=$seed): OK"

#!/usr/bin/env sh
# obs-smoke.sh — end-to-end check of the observability plane on the real
# binaries, shared by the Makefile `obs-smoke` target and CI so the two
# never drift.
#
# The topology is the minimal real-socket pipeline: one rlive-cdn origin
# hosting a stream, one rlive-edge relay pulling substreams from it, and
# one rlive-client playing through the relay. All three run with -obs on
# loopback ports; the check is that
#
#   1. every /healthz and /readyz converges to 200 (readiness probes are
#      real: the origin must generate frames, the client must play them),
#   2. /metrics parses as Prometheus text exposition and the frame
#      counters are nonzero end to end (origin generated, relay pulled,
#      viewer played),
#   3. /snapshot returns a valid JSON document from each process,
#   4. /debug/pprof/ answers 200 on every obs port (the runtime
#      introspection surface the binaries mount alongside /metrics).
#
# Environment:
#   OBS_SMOKE_OUT  keep outputs (snapshots, metrics, logs) in this
#                  directory instead of a throwaway mktemp dir — CI sets
#                  it so the /snapshot documents survive as artifacts.
set -eu

if [ -n "${OBS_SMOKE_OUT:-}" ]; then
    out=$OBS_SMOKE_OUT
    mkdir -p "$out"
else
    out=$(mktemp -d)
fi

cdn_obs=127.0.0.1:18411
edge_obs=127.0.0.1:18412
client_obs=127.0.0.1:18413
cdn_addr=127.0.0.1:18400
edge_addr=127.0.0.1:18402

echo "obs-smoke: building binaries"
go build -o "$out/rlive-cdn" ./cmd/rlive-cdn
go build -o "$out/rlive-edge" ./cmd/rlive-edge
go build -o "$out/rlive-client" ./cmd/rlive-client

pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    if [ -z "${OBS_SMOKE_OUT:-}" ]; then
        rm -rf "$out"
    fi
}
trap cleanup EXIT INT TERM

# wait_200 <url> <tries>: poll until the endpoint answers 200.
wait_200() {
    url=$1
    tries=$2
    i=0
    while [ "$i" -lt "$tries" ]; do
        if curl -fsS -o /dev/null "$url" 2>/dev/null; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.5
    done
    echo "obs-smoke: $url never answered 200 after $tries tries" >&2
    return 1
}

# counter_value <metrics-file> <metric>: extract an un-labelled sample.
counter_value() {
    awk -v m="$2" '$1 == m { print $2; found = 1 } END { if (!found) print "MISSING" }' "$1"
}

echo "obs-smoke: starting rlive-cdn on $cdn_addr (obs $cdn_obs)"
"$out/rlive-cdn" -listen "$cdn_addr" -streams 1 -k 4 -obs "$cdn_obs" \
    > "$out/cdn.log" 2>&1 &
pids="$pids $!"
wait_200 "http://$cdn_obs/healthz" 20
wait_200 "http://$cdn_obs/readyz" 40   # ready = frames generated

echo "obs-smoke: starting rlive-edge on $edge_addr (obs $edge_obs)"
"$out/rlive-edge" -listen "$edge_addr" -cdn "$cdn_addr" -obs "$edge_obs" \
    > "$out/edge.log" 2>&1 &
pids="$pids $!"
wait_200 "http://$edge_obs/healthz" 20
wait_200 "http://$edge_obs/readyz" 40  # ready = origin reachable

echo "obs-smoke: starting rlive-client through the relay (obs $client_obs)"
"$out/rlive-client" -cdn "$cdn_addr" -relays "$edge_addr" -k 4 \
    -duration 60s -obs "$client_obs" > "$out/client.log" 2>&1 &
pids="$pids $!"
wait_200 "http://$client_obs/healthz" 20
wait_200 "http://$client_obs/readyz" 60  # ready = frames played

# Let the counters advance past the readiness edge, then scrape everything.
sleep 2
curl -fsS "http://$cdn_obs/metrics" > "$out/cdn.metrics"
curl -fsS "http://$edge_obs/metrics" > "$out/edge.metrics"
curl -fsS "http://$client_obs/metrics" > "$out/client.metrics"
curl -fsS "http://$cdn_obs/snapshot" > "$out/cdn.snapshot.json"
curl -fsS "http://$edge_obs/snapshot" > "$out/edge.snapshot.json"
curl -fsS "http://$client_obs/snapshot" > "$out/client.snapshot.json"

# Runtime introspection: the pprof index must answer 200 on every obs
# port (profiles themselves are exercised by `go tool pprof` users; the
# smoke check is that the surface is mounted).
for port in "$cdn_obs" "$edge_obs" "$client_obs"; do
    curl -fsS -o /dev/null "http://$port/debug/pprof/" \
        || { echo "obs-smoke: $port/debug/pprof/ not serving" >&2; exit 1; }
done
echo "obs-smoke: /debug/pprof/ serving on all three processes"

# Exposition sanity: every line is a comment or `name value` with the
# rlive_ prefix and a numeric sample.
for f in cdn edge client; do
    awk '
        /^#/ { next }
        !/^rlive_[a-zA-Z0-9_:]+(\{[^}]*\})? -?[0-9+]/ {
            print FILENAME ": bad exposition line: " $0; bad = 1
        }
        END { exit bad }
    ' "$out/$f.metrics"
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out/$f.snapshot.json" \
        || { echo "obs-smoke: $f /snapshot is not valid JSON" >&2; exit 1; }
done

# The end-to-end frame counters must all be nonzero: generated at the
# origin, pulled by the relay, played by the viewer.
fail=0
for probe in \
    "cdn rlive_origin_frames_generated_total" \
    "edge rlive_relay_frames_pulled_total" \
    "client rlive_viewer_frames_played_total"; do
    f=${probe%% *}
    metric=${probe#* }
    v=$(counter_value "$out/$f.metrics" "$metric")
    echo "obs-smoke: $f $metric = $v"
    case $v in
        MISSING | 0) fail=1 ;;
    esac
done
if [ "$fail" -ne 0 ]; then
    echo "obs-smoke: a frame counter is missing or zero; logs:" >&2
    tail -20 "$out/cdn.log" "$out/edge.log" "$out/client.log" >&2
    exit 1
fi

echo "obs-smoke: OK"

// Command rlive-client runs a viewer session: it discovers relays via the
// scheduler directory (or takes explicit relay addresses), subscribes each
// substream, reassembles via frame chains, and reports QoE on exit.
//
//	rlive-client -cdn 127.0.0.1:8400 -scheduler 127.0.0.1:8401 -stream 1 -k 4 -duration 30s
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"repro/internal/livenet"
	"repro/internal/media"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	var (
		cdn      = flag.String("cdn", "127.0.0.1:8400", "CDN origin address")
		sched    = flag.String("scheduler", "", "scheduler directory address")
		relays   = flag.String("relays", "", "comma-separated relay addresses (overrides discovery)")
		stream   = flag.Uint("stream", 1, "stream ID")
		k        = flag.Int("k", 4, "substream count")
		fps      = flag.Int("fps", 30, "frames per second")
		duration = flag.Duration("duration", 30*time.Second, "viewing duration")
		obsAddr  = flag.String("obs", "", "observability HTTP listen address (empty = disabled)")
		profRt   = flag.Int("prof-rates", 0, "runtime mutex/block profiling rate for /debug/pprof (SetMutexProfileFraction and SetBlockProfileRate; 0 = off)")
	)
	flag.Parse()
	if *profRt > 0 {
		runtime.SetMutexProfileFraction(*profRt)
		runtime.SetBlockProfileRate(*profRt)
	}

	var addrs []string
	if *relays != "" {
		addrs = strings.Split(*relays, ",")
	} else if *sched != "" {
		var err error
		addrs, err = livenet.FetchCandidates(*sched)
		if err != nil {
			log.Fatalf("rlive-client: candidate fetch: %v", err)
		}
	}
	assign := map[media.SubstreamID]string{}
	for i := 0; i < *k && len(addrs) > 0; i++ {
		assign[media.SubstreamID(i)] = addrs[i%len(addrs)]
	}
	if len(assign) == 0 {
		log.Printf("rlive-client: no relays; playing directly from the CDN origin")
	}

	viewer, err := livenet.NewViewer("127.0.0.1:0", *cdn, media.StreamID(*stream), *k, *fps)
	if err != nil {
		log.Fatalf("rlive-client: %v", err)
	}
	defer viewer.Close()

	// Observability plane (no-op when -obs is unset).
	var srv *obs.Server
	var reg *telemetry.Registry
	if *obsAddr != "" {
		reg = telemetry.NewRegistry("rlive-client", 0)
		srv = obs.NewServer(obs.Options{EnablePprof: true})
	}
	viewer.SetTelemetry(reg)
	srv.AddLiveRegistry(reg)
	srv.PollRegistry(reg, 2*time.Second)
	srv.AddLiveness("viewer", func() error { return nil })
	srv.AddReadiness("playing", func() error {
		if reg.Counter("viewer.frames_played").Value() == 0 {
			return errors.New("no frames played yet")
		}
		return nil
	})
	if srv != nil {
		bound, err := srv.Start(*obsAddr)
		if err != nil {
			log.Fatalf("rlive-client: obs: %v", err)
		}
		defer srv.Close()
		log.Printf("rlive-client: observability on http://%s", bound)
	}

	if err := viewer.Start(assign); err != nil {
		log.Fatalf("rlive-client: start: %v", err)
	}
	log.Printf("rlive-client: watching stream %d for %v (relays: %d)", *stream, *duration, len(assign))
	time.Sleep(*duration)

	q := viewer.QoE
	fmt.Printf("frames played:    %d\n", q.FramesPlayed)
	fmt.Printf("mean bitrate:     %.2f Mbps\n", q.MeanBitrate()/1e6)
	fmt.Printf("rebuffer events:  %d (%.1f /100s)\n", q.RebufferEvents, q.RebufferPer100s())
	fmt.Printf("E2E latency P50:  %.0f ms\n", q.E2ELatency.Percentile(50))
}

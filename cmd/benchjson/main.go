// Command benchjson converts `go test -bench` text output (read from
// stdin) into the BENCH_*.json perf-trajectory document, so each PR can
// record a machine-readable benchmark baseline for the next one to regress
// against.
//
// Usage:
//
//	go test -bench . -benchtime 1x -benchmem -run '^$' . | benchjson -out BENCH_1.json
//	benchjson -out BENCH_2.json -baseline BENCH_1.json < bench.txt
//
// With -baseline, each benchmark also records the prior document's numbers
// and the ns/op delta, making regressions visible in the diff itself.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Bench is one parsed benchmark result.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// Filled from -baseline when the prior document has the same name.
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	NsDeltaPct          float64 `json:"ns_delta_pct,omitempty"`
}

// Doc is the written document.
type Doc struct {
	GeneratedAt string  `json:"generated_at"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Note        string  `json:"note,omitempty"`
	Benchmarks  []Bench `json:"benchmarks"`
}

func main() {
	var (
		out      = flag.String("out", "", "output path (default stdout)")
		note     = flag.String("note", "", "free-form note recorded in the document")
		baseline = flag.String("baseline", "", "prior BENCH_*.json to diff against")
	)
	flag.Parse()

	prior := map[string]Bench{}
	if *baseline != "" {
		buf, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: read baseline: %v\n", err)
			os.Exit(1)
		}
		var d Doc
		if err := json.Unmarshal(buf, &d); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse baseline: %v\n", err)
			os.Exit(1)
		}
		for _, b := range d.Benchmarks {
			prior[b.Name] = b
		}
	}

	doc := Doc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note:        *note,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if p, hit := prior[b.Name]; hit {
			b.BaselineNsPerOp = p.NsPerOp
			b.BaselineAllocsPerOp = p.AllocsPerOp
			if p.NsPerOp > 0 {
				b.NsDeltaPct = (b.NsPerOp - p.NsPerOp) / p.NsPerOp * 100
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkSimnetEventLoop  7432  298440 ns/op  143928 B/op  1780 allocs/op
//
// Returns ok=false for non-benchmark lines (headers, PASS, logs).
func parseLine(line string) (Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	// Trim the -N GOMAXPROCS suffix go test appends to parallel benches.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Bench{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	if b.NsPerOp == 0 {
		return Bench{}, false
	}
	return b, true
}

// Command benchjson converts `go test -bench` text output (read from
// stdin) into the BENCH_*.json perf-trajectory document, so each PR can
// record a machine-readable benchmark baseline for the next one to regress
// against.
//
// Usage:
//
//	go test -bench . -benchtime 1x -benchmem -run '^$' . | benchjson -out BENCH_1.json
//	benchjson -out BENCH_2.json -baseline BENCH_1.json < bench.txt
//	go test -bench . -benchtime 1x -benchmem -run '^$' . | benchjson -gate -baseline BENCH_2.json
//
// With -baseline, each benchmark also records the prior document's numbers
// and the ns/op delta, making regressions visible in the diff itself.
//
// With -gate, nothing is written: the current run is compared against the
// baseline document and the process exits nonzero if any benchmark's
// allocs/op or ns/op regressed beyond tolerance, or a baseline benchmark
// disappeared. This is the CI perf-regression gate — allocations are the
// primary signal (deterministic run to run), wall time the backstop (noisy
// on shared runners, hence the loose default tolerance).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Bench is one parsed benchmark result.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// Filled from -baseline when the prior document has the same name.
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	NsDeltaPct          float64 `json:"ns_delta_pct,omitempty"`
}

// Doc is the written document.
type Doc struct {
	GeneratedAt string  `json:"generated_at"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Note        string  `json:"note,omitempty"`
	Benchmarks  []Bench `json:"benchmarks"`
}

func main() {
	var (
		out      = flag.String("out", "", "output path (default stdout)")
		note     = flag.String("note", "", "free-form note recorded in the document")
		baseline = flag.String("baseline", "", "prior BENCH_*.json to diff against")
		gateMode = flag.Bool("gate", false, "compare stdin against -baseline and exit nonzero on regression")
		allocTol = flag.Float64("alloc-tol", 0.10, "allowed fractional allocs/op growth in -gate mode")
		nsTol    = flag.Float64("ns-tol", 1.5, "allowed fractional ns/op growth in -gate mode")
	)
	flag.Parse()

	if *gateMode {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -gate requires -baseline")
			os.Exit(2)
		}
		base, err := readDoc(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		cur, err := parseBenchOutput(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
			os.Exit(2)
		}
		violations := gate(base.Benchmarks, cur, *allocTol, *nsTol)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate OK (%d benchmarks vs %s)\n", len(cur), *baseline)
		return
	}

	prior := map[string]Bench{}
	if *baseline != "" {
		d, err := readDoc(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		for _, b := range d.Benchmarks {
			prior[b.Name] = b
		}
	}

	doc := Doc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note:        *note,
	}
	benches, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	for _, b := range benches {
		if p, hit := prior[b.Name]; hit {
			b.BaselineNsPerOp = p.NsPerOp
			b.BaselineAllocsPerOp = p.AllocsPerOp
			if p.NsPerOp > 0 {
				b.NsDeltaPct = (b.NsPerOp - p.NsPerOp) / p.NsPerOp * 100
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// readDoc loads a BENCH_*.json document.
func readDoc(path string) (Doc, error) {
	var d Doc
	buf, err := os.ReadFile(path)
	if err != nil {
		return d, fmt.Errorf("read baseline: %w", err)
	}
	if err := json.Unmarshal(buf, &d); err != nil {
		return d, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return d, nil
}

// parseBenchOutput reads `go test -bench` text and returns the parsed
// benchmark results in input order.
func parseBenchOutput(r io.Reader) ([]Bench, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []Bench
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// gate compares the current run against a baseline and returns one message
// per violation (empty means pass). Rules:
//
//   - A baseline benchmark missing from the current run is a violation:
//     silently dropping a benchmark is how regressions hide.
//   - allocs/op may grow to base*(1+allocTol)+8. The +8 headroom keeps
//     near-zero baselines (a pooled path at 3 allocs/op) from tripping on
//     one incidental allocation while staying far below any real regression.
//   - ns/op may grow to base*(1+nsTol). Wall time of single-iteration
//     benchmarks varies ~2x with runner load, so this is a backstop against
//     order-of-magnitude slowdowns, not a precision gate — allocations are
//     the precise signal.
//
// Benchmarks present only in the current run pass (new benchmarks are
// gated once they land in the next baseline document).
func gate(baseline, current []Bench, allocTol, nsTol float64) []string {
	cur := make(map[string]Bench, len(current))
	for _, b := range current {
		cur[b.Name] = b
	}
	var violations []string
	for _, base := range baseline {
		b, ok := cur[base.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but missing from current run", base.Name))
			continue
		}
		if allocCeil := base.AllocsPerOp*(1+allocTol) + 8; b.AllocsPerOp > allocCeil {
			violations = append(violations,
				fmt.Sprintf("%s: allocs/op %.0f exceeds ceiling %.0f (baseline %.0f, tol %.0f%%)",
					base.Name, b.AllocsPerOp, allocCeil, base.AllocsPerOp, allocTol*100))
		}
		if base.NsPerOp > 0 {
			if nsCeil := base.NsPerOp * (1 + nsTol); b.NsPerOp > nsCeil {
				violations = append(violations,
					fmt.Sprintf("%s: ns/op %.0f exceeds ceiling %.0f (baseline %.0f, tol %.0f%%)",
						base.Name, b.NsPerOp, nsCeil, base.NsPerOp, nsTol*100))
			}
		}
	}
	return violations
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkSimnetEventLoop  7432  298440 ns/op  143928 B/op  1780 allocs/op
//
// Returns ok=false for non-benchmark lines (headers, PASS, logs).
func parseLine(line string) (Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	// Trim the -N GOMAXPROCS suffix go test appends to parallel benches.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Bench{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	if b.NsPerOp == 0 {
		return Bench{}, false
	}
	return b, true
}

package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkABBaseline	       1	599311584 ns/op	231060816 B/op	 1810125 allocs/op
BenchmarkABBaselineTraced-8	       1	610000000 ns/op	232000000 B/op	 1810919 allocs/op
BenchmarkChaosSchedulerOutage	       1	120000000 ns/op	 50000000 B/op	  400000 allocs/op
PASS
ok  	repro	1.401s
`

func TestParseBenchOutput(t *testing.T) {
	benches, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
	if benches[0].Name != "BenchmarkABBaseline" || benches[0].AllocsPerOp != 1810125 {
		t.Fatalf("bench 0 = %+v", benches[0])
	}
	// GOMAXPROCS suffix stripped.
	if benches[1].Name != "BenchmarkABBaselineTraced" {
		t.Fatalf("bench 1 name = %q, want suffix-stripped", benches[1].Name)
	}
}

func TestGatePassesOnIdenticalRun(t *testing.T) {
	benches, _ := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if v := gate(benches, benches, 0.10, 0.75); len(v) != 0 {
		t.Fatalf("identical run should pass, got violations: %v", v)
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	base := []Bench{{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 100}}
	cur := []Bench{{Name: "BenchmarkX", NsPerOp: 1500, AllocsPerOp: 109}}
	if v := gate(base, cur, 0.10, 0.75); len(v) != 0 {
		t.Fatalf("within-tolerance run should pass, got: %v", v)
	}
}

// TestGateFailsOnInjectedAllocRegression is the acceptance check for the CI
// bench-gate job: a synthetic regression (allocs/op inflated well past the
// ceiling, as if the pooled hot path lost its free lists) must fail the gate.
func TestGateFailsOnInjectedAllocRegression(t *testing.T) {
	base, _ := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	cur := make([]Bench, len(base))
	copy(cur, base)
	cur[0].AllocsPerOp = base[0].AllocsPerOp * 3 // pooling regressed away
	v := gate(base, cur, 0.10, 0.75)
	if len(v) != 1 {
		t.Fatalf("injected alloc regression: got %d violations (%v), want 1", len(v), v)
	}
	if !strings.Contains(v[0], "BenchmarkABBaseline") || !strings.Contains(v[0], "allocs/op") {
		t.Fatalf("violation should name the benchmark and metric: %q", v[0])
	}
}

func TestGateFailsOnNsRegression(t *testing.T) {
	base := []Bench{{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 100}}
	cur := []Bench{{Name: "BenchmarkX", NsPerOp: 2000, AllocsPerOp: 100}}
	v := gate(base, cur, 0.10, 0.75)
	if len(v) != 1 || !strings.Contains(v[0], "ns/op") {
		t.Fatalf("2x ns/op at 75%% tolerance should fail, got: %v", v)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base, _ := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	cur := base[:2] // BenchmarkChaosSchedulerOutage dropped
	v := gate(base, cur, 0.10, 0.75)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("dropped benchmark should fail the gate, got: %v", v)
	}
}

func TestGateAllocHeadroomForTinyBaselines(t *testing.T) {
	// A near-zero pooled baseline gets +8 absolute headroom so one
	// incidental allocation does not flake the gate...
	base := []Bench{{Name: "BenchmarkPool", NsPerOp: 500, AllocsPerOp: 3}}
	cur := []Bench{{Name: "BenchmarkPool", NsPerOp: 500, AllocsPerOp: 10}}
	if v := gate(base, cur, 0.10, 0.75); len(v) != 0 {
		t.Fatalf("+7 allocs on a 3-alloc baseline should pass, got: %v", v)
	}
	// ...but a real regression still fails.
	cur[0].AllocsPerOp = 50
	if v := gate(base, cur, 0.10, 0.75); len(v) != 1 {
		t.Fatalf("50 allocs on a 3-alloc baseline should fail, got: %v", v)
	}
}

func TestGateNewBenchmarkPasses(t *testing.T) {
	base := []Bench{{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 100}}
	cur := []Bench{
		{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkNew", NsPerOp: 9999, AllocsPerOp: 9999},
	}
	if v := gate(base, cur, 0.10, 0.75); len(v) != 0 {
		t.Fatalf("benchmark absent from baseline should not gate, got: %v", v)
	}
}

// Command rlive-edge runs a best-effort relay node: it pulls substreams
// (plus the frame-header side-channel) from a CDN origin, generates local
// frame chains, and pushes fixed-size packets to UDP subscribers. It
// heartbeats to the scheduler directory so viewers can discover it.
//
//	rlive-edge -listen 127.0.0.1:0 -cdn 127.0.0.1:8400 -scheduler 127.0.0.1:8401
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/livenet"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		cdn     = flag.String("cdn", "127.0.0.1:8400", "CDN origin address")
		sched   = flag.String("scheduler", "", "scheduler directory address (optional)")
		quota   = flag.Int("quota", 64, "session quota")
		obsAddr = flag.String("obs", "", "observability HTTP listen address (empty = disabled)")
		profRt  = flag.Int("prof-rates", 0, "runtime mutex/block profiling rate for /debug/pprof (SetMutexProfileFraction and SetBlockProfileRate; 0 = off)")
	)
	flag.Parse()
	if *profRt > 0 {
		runtime.SetMutexProfileFraction(*profRt)
		runtime.SetBlockProfileRate(*profRt)
	}

	relay, err := livenet.NewRelay(*listen, *cdn, *quota)
	if err != nil {
		log.Fatalf("rlive-edge: %v", err)
	}
	defer relay.Close()
	log.Printf("rlive-edge: serving on %s, pulling from %s", relay.Addr(), *cdn)

	// Observability plane (no-op when -obs is unset).
	var srv *obs.Server
	var reg *telemetry.Registry
	if *obsAddr != "" {
		reg = telemetry.NewRegistry("rlive-edge", 0)
		srv = obs.NewServer(obs.Options{EnablePprof: true})
	}
	relay.SetTelemetry(reg)
	srv.AddLiveRegistry(reg)
	srv.PollRegistry(reg, 2*time.Second)
	srv.AddLiveness("relay", func() error { return nil })
	srv.AddReadiness("origin-reachable", func() error {
		conn, err := net.DialTimeout("tcp", *cdn, time.Second)
		if err != nil {
			return fmt.Errorf("origin %s: %w", *cdn, err)
		}
		conn.Close()
		return nil
	})
	if srv != nil {
		bound, err := srv.Start(*obsAddr)
		if err != nil {
			log.Fatalf("rlive-edge: obs: %v", err)
		}
		defer srv.Close()
		log.Printf("rlive-edge: observability on http://%s", bound)
	}

	if *sched != "" {
		go func() {
			for {
				if err := livenet.RegisterWith(*sched, relay.Addr(), relay.Sessions(), *quota); err != nil {
					log.Printf("rlive-edge: heartbeat failed: %v", err)
				}
				time.Sleep(5 * time.Second)
			}
		}()
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Printf("rlive-edge: shutting down")
}

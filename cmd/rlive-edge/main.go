// Command rlive-edge runs a best-effort relay node: it pulls substreams
// (plus the frame-header side-channel) from a CDN origin, generates local
// frame chains, and pushes fixed-size packets to UDP subscribers. It
// heartbeats to the scheduler directory so viewers can discover it.
//
//	rlive-edge -listen 127.0.0.1:0 -cdn 127.0.0.1:8400 -scheduler 127.0.0.1:8401
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/livenet"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		cdn    = flag.String("cdn", "127.0.0.1:8400", "CDN origin address")
		sched  = flag.String("scheduler", "", "scheduler directory address (optional)")
		quota  = flag.Int("quota", 64, "session quota")
	)
	flag.Parse()

	relay, err := livenet.NewRelay(*listen, *cdn, *quota)
	if err != nil {
		log.Fatalf("rlive-edge: %v", err)
	}
	defer relay.Close()
	log.Printf("rlive-edge: serving on %s, pulling from %s", relay.Addr(), *cdn)

	if *sched != "" {
		go func() {
			for {
				if err := livenet.RegisterWith(*sched, relay.Addr(), relay.Sessions(), *quota); err != nil {
					log.Printf("rlive-edge: heartbeat failed: %v", err)
				}
				time.Sleep(5 * time.Second)
			}
		}()
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Printf("rlive-edge: shutting down")
}

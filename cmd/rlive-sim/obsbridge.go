package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// obsBridge makes a long simulation run watchable live: it wires the -obs
// HTTP server to the experiment harness so an operator can follow a
// 100k-node fleet-scale sweep from a browser instead of waiting for the
// final tables.
//
// What it exposes:
//
//   - A wall-clock "progress" registry (cells completed, experiments
//     total, scrapes seen, last sim-time) served live at /metrics and
//     polled onto the SSE stream.
//   - Every registry the experiments create (Scale.Watch): each sim-time
//     scrape is published as an SSE "scrape" event as it happens, and
//     /metrics renders the most recent scrape of the most recently
//     active registry (LastSnap — never a request-time snapshot, because
//     sim gauge funcs must only run on the sim thread).
//   - Fleet-scale mid-run progress (Scale.WatchFleet): the sharded
//     engine's conservative watermark plus the engine self-profiler's live
//     per-worker utilization (prof.* gauges), polled on wall-clock tickers.
//
// Everything here only observes — atomic reads, OnScrape side channels —
// and never adds sim events or instruments, so output stays byte-identical
// with or without -obs (the determinism gates run both ways in CI).
type obsBridge struct {
	srv *obs.Server

	// progress is the bridge's own wall-clock registry, served live.
	progress     *telemetry.Registry
	cellsDone    *telemetry.Counter
	scrapesSeen  *telemetry.Counter
	simTimeNs    atomic.Int64 // latest watched scrape instant (or watermark)
	totalExps    atomic.Int64
	expsDone     atomic.Int64
	watermarkNs  atomic.Int64
	fleetRunning atomic.Int64

	// probe is the most recent fleet run's utilization probe; the prof.*
	// gauges read it nil-safely so /metrics is valid before, during, and
	// after a profiled run.
	probe atomic.Pointer[experiments.FleetProbe]
}

// loadProbe returns the current fleet probe, or nil before any fleet run.
func (b *obsBridge) loadProbe() experiments.FleetProbe {
	if p := b.probe.Load(); p != nil {
		return *p
	}
	return nil
}

// newObsBridge builds the bridge and starts the obs server on addr.
// shardWorkers sizes the per-worker utilization gauges (the -shards flag;
// fleet runs clamp to it).
func newObsBridge(addr string, shardWorkers int) (*obsBridge, error) {
	b := &obsBridge{}
	b.progress = telemetry.NewRegistry("rlive-sim", 0)
	b.cellsDone = b.progress.Counter("sim.cells_completed")
	b.scrapesSeen = b.progress.Counter("sim.scrapes_seen")
	b.progress.GaugeFunc("sim.experiments_total", func() float64 { return float64(b.totalExps.Load()) })
	b.progress.GaugeFunc("sim.experiments_done", func() float64 { return float64(b.expsDone.Load()) })
	b.progress.GaugeFunc("sim.time_s", func() float64 { return float64(b.simTimeNs.Load()) / 1e9 })
	b.progress.GaugeFunc("sim.fleet_watermark_s", func() float64 { return float64(b.watermarkNs.Load()) / 1e9 })
	b.progress.GaugeFunc("sim.fleet_runs_active", func() float64 { return float64(b.fleetRunning.Load()) })

	// Engine self-profiling gauges: live only while a profiled fleet run
	// is in flight (zero otherwise). All reads are single-owner atomics on
	// the profiler's slabs — polling them cannot perturb the run.
	b.progress.GaugeFunc("prof.shard_busy_frac", func() float64 {
		if p := b.loadProbe(); p != nil {
			return p.Profile().BusyFrac()
		}
		return 0
	})
	b.progress.GaugeFunc("prof.park_ms", func() float64 {
		if p := b.loadProbe(); p != nil {
			return float64(p.Profile().TotalParkNs()) / 1e6
		}
		return 0
	})
	b.progress.GaugeFunc("prof.mailbox_depth", func() float64 {
		if p := b.loadProbe(); p != nil {
			return float64(p.MailboxHighWater())
		}
		return 0
	})
	if shardWorkers < 1 {
		shardWorkers = 1
	}
	for w := 0; w < shardWorkers; w++ {
		w := w
		b.progress.GaugeFunc(fmt.Sprintf("prof.worker_busy_ms.w%d", w), func() float64 {
			if p := b.loadProbe(); p != nil && w < p.ShardWorkers() {
				busy, _, _ := p.WorkerUtil(w)
				return float64(busy) / 1e6
			}
			return 0
		})
		b.progress.GaugeFunc(fmt.Sprintf("prof.worker_park_ms.w%d", w), func() float64 {
			if p := b.loadProbe(); p != nil && w < p.ShardWorkers() {
				_, park, _ := p.WorkerUtil(w)
				return float64(park) / 1e6
			}
			return 0
		})
		b.progress.GaugeFunc(fmt.Sprintf("prof.worker_events.w%d", w), func() float64 {
			if p := b.loadProbe(); p != nil && w < p.ShardWorkers() {
				_, _, ev := p.WorkerUtil(w)
				return float64(ev)
			}
			return 0
		})
	}

	b.srv = obs.NewServer(obs.Options{EnablePprof: true})
	b.srv.AddLiveRegistry(b.progress)
	b.srv.PollRegistry(b.progress, time.Second)
	b.srv.AddLiveness("sim", func() error { return nil })
	b.srv.AddReadiness("sim", func() error { return nil })

	// Cell completions arrive from RunCells on any worker goroutine;
	// counter adds are atomic.
	experiments.SetCellObserver(func() { b.cellsDone.Inc() })

	bound, err := b.srv.Start(addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("-- observability on http://%s (/metrics /events /healthz /readyz /snapshot)\n", bound)
	return b, nil
}

// wire installs the bridge's hooks on the run scale.
func (b *obsBridge) wire(sc *experiments.Scale) {
	if b == nil {
		return
	}
	sc.Watch = func(reg *telemetry.Registry) {
		b.srv.WatchRegistry(reg)
		reg.OnScrape(func(r *telemetry.Registry, i int) {
			b.scrapesSeen.Inc()
			// Monotone high-water mark across concurrent cells.
			at := r.ScrapeAt(i)
			for {
				cur := b.simTimeNs.Load()
				if at <= cur || b.simTimeNs.CompareAndSwap(cur, at) {
					break
				}
			}
		})
	}
	sc.WatchFleet = func(done <-chan struct{}, probe experiments.FleetProbe) {
		b.fleetRunning.Add(1)
		b.probe.Store(&probe)
		go func() {
			defer b.fleetRunning.Add(-1)
			tick := time.NewTicker(500 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					w := probe.Watermark()
					for {
						cur := b.watermarkNs.Load()
						if w <= cur || b.watermarkNs.CompareAndSwap(cur, w) {
							break
						}
					}
				}
			}
		}()
	}
}

// setTotal records the experiment count for the progress gauges.
func (b *obsBridge) setTotal(n int) {
	if b == nil {
		return
	}
	b.totalExps.Store(int64(n))
}

// expDone advances the completed-experiment gauge.
func (b *obsBridge) expDone() {
	if b == nil {
		return
	}
	b.expsDone.Add(1)
}

// publishTraces ships the merged trace summary of one finished experiment
// as an SSE "trace-summary" event (skipped when no client is listening).
func (b *obsBridge) publishTraces(id string, runs []*trace.Run) {
	if b == nil || len(runs) == 0 || !b.srv.StreamActive() {
		return
	}
	b.srv.PublishTraceSummary(id, trace.Summarize(runs...))
}

// close shuts the server down and detaches the cell observer.
func (b *obsBridge) close() {
	if b == nil {
		return
	}
	experiments.SetCellObserver(nil)
	b.srv.Close()
}

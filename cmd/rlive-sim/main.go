// Command rlive-sim runs the paper-reproduction experiments on the
// simulated deployment and prints their tables/series.
//
// Usage:
//
//	rlive-sim -exp fig9            # one experiment
//	rlive-sim -exp all             # the whole evaluation
//	rlive-sim -list                # list experiment IDs
//	rlive-sim -exp fig11 -scale full -seed 7
//	rlive-sim -exp chaos-scheduler-outage            # a resilience drill
//	rlive-sim -exp fig9 -json out.json               # machine-readable results
//	rlive-sim -exp all -parallel 8                   # fan cells over 8 workers
//	rlive-sim -exp fleet-scale -shards 4             # shard one run over 4 workers
//	rlive-sim -exp fig9 -cpuprofile cpu.pprof        # profile the engine
//	rlive-sim -exp ab-baseline -trace t.jsonl        # frame-lifecycle traces
//	rlive-sim -exp ab-peak -telemetry m.jsonl        # instrument timelines
//	rlive-sim -exp chaos-obs -alerts a.jsonl         # incident logs + detection scorecards
//	rlive-sim -exp ctrl-scale -ctrl c.jsonl          # control-plane snapshot/gossip event logs
//	rlive-sim -exp fleet-scale -shards 4 -prof p.txt # engine self-profiling perf report
//	rlive-sim -exp fleet-scale -perfetto t.json      # Perfetto-loadable busy/park timeline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/experiments"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// jsonDoc is the machine-readable result document the -json flag writes,
// feeding the BENCH_*.json perf-trajectory tooling.
type jsonDoc struct {
	Scale       experiments.Scale `json:"scale"`
	Experiments []jsonExperiment  `json:"experiments"`
}

type jsonExperiment struct {
	ID        string                `json:"id"`
	ElapsedMs int64                 `json:"elapsed_ms"`
	Tables    []*experiments.Table  `json:"tables,omitempty"`
	Series    []*experiments.Series `json:"series,omitempty"`

	traces    []*trace.Run
	timelines []*telemetry.Registry
	alerts    []*experiments.AlertRecord
	ctrl      []*ctrlplane.EventLog
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		scale    = flag.String("scale", "quick", "quick or full")
		seed     = flag.Uint64("seed", 1, "base RNG seed (paired runs share it)")
		clients  = flag.Int("clients", 0, "override concurrent clients")
		nodes    = flag.Int("nodes", 0, "override best-effort node count")
		duration = flag.Duration("duration", 0, "override measured duration")
		jsonPath = flag.String("json", "", "also write results as JSON to this path")
		parallel = flag.Int("parallel", 1, "worker-pool width for independent experiment cells (0 = NumCPU); output is byte-identical to serial")
		shards   = flag.Int("shards", 1, "shard workers per run for sharded-engine experiments (fleet-scale); 1 = serial reference loop, output is byte-identical at any width")
		tracePth = flag.String("trace", "", "record frame-lifecycle traces and write them as JSONL to this path (deterministic per seed)")
		telemPth = flag.String("telemetry", "", "record instrument timelines and write them as JSONL to this path (deterministic per seed)")
		alertPth = flag.String("alerts", "", "write incident logs and detection scorecards as JSONL to this path (deterministic per seed; emitted by chaos-obs)")
		ctrlPth  = flag.String("ctrl", "", "write control-plane snapshot/gossip event logs as JSONL to this path (deterministic per seed; emitted by ctrl-scale)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf  = flag.String("memprofile", "", "write a heap profile to this path on exit")
		obsAddr  = flag.String("obs", "", "observability HTTP listen address for live progress (/metrics, /events, ...; empty = disabled; results stay byte-identical)")
		profPath = flag.String("prof", "", "enable engine self-profiling and write the perf report (per shard x event kind cost accounting, horizon stalls, mailbox pressure) to this path; results stay byte-identical")
		perfetto = flag.String("perfetto", "", "enable engine self-profiling and write a Chrome trace-event JSON (Perfetto-loadable) timeline of worker busy/parked spans to this path; results stay byte-identical")
		profRate = flag.Int("prof-rates", 0, "runtime mutex/block profiling rate for /debug/pprof (SetMutexProfileFraction and SetBlockProfileRate; 0 = off)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: create %s: %v\n", *cpuProf, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: start cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: create %s: %v\n", *memProf, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: write heap profile: %v\n", err)
			}
		}()
	}
	if *profRate > 0 {
		runtime.SetMutexProfileFraction(*profRate)
		runtime.SetBlockProfileRate(*profRate)
	}
	// Cells and shards share one worker budget: -parallel bounds the total,
	// -shards claims its share inside each sharded run.
	experiments.SetBudget(*parallel, *shards)

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	sc := experiments.Quick
	if *scale == "full" {
		sc = experiments.Full
	}
	sc.Seed = *seed
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *nodes > 0 {
		sc.BestEffort = *nodes
	}
	if *duration > 0 {
		sc.Duration = *duration
	}
	sc.Trace = *tracePth != ""
	sc.Telemetry = *telemPth != ""
	sc.Shards = *shards

	// Engine self-profiling: collect each profiled run's slabs (cells run
	// concurrently, so the sink locks) and render after all experiments
	// finish. Profiling is observe-only — every deterministic artifact is
	// byte-identical with these flags on or off (CI gates it).
	var profMu sync.Mutex
	var profs []*profile.Prof
	if *profPath != "" || *perfetto != "" {
		sc.Profile = func(p *profile.Prof) {
			profMu.Lock()
			profs = append(profs, p)
			profMu.Unlock()
		}
	}

	// Live observability bridge: serves /metrics, /events, /healthz,
	// /readyz, /snapshot while the run is in flight. A nil bridge (flag
	// unset) makes every call below a no-op and registers no hooks.
	var bridge *obsBridge
	if *obsAddr != "" {
		var err error
		bridge, err = newObsBridge(*obsAddr, *shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: obs: %v\n", err)
			os.Exit(1)
		}
		defer bridge.close()
	}
	bridge.wire(&sc)

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		if _, ok := experiments.Registry[id]; !ok {
			fmt.Fprintf(os.Stderr, "rlive-sim: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
	}
	bridge.setTotal(len(ids))

	// Experiments fan across the same bounded cell pool as their internal
	// A/B arms and grid points; results print in catalogue order either
	// way, so serial and parallel runs emit byte-identical tables.
	cells := experiments.RunCells(len(ids), func(i int) jsonExperiment {
		start := time.Now()
		res := experiments.Registry[ids[i]](sc)
		elapsed := time.Since(start)
		return jsonExperiment{
			ID: ids[i], ElapsedMs: elapsed.Milliseconds(),
			Tables: res.Tables, Series: res.Series,
			traces: res.Traces, timelines: res.Timelines, alerts: res.Alerts,
			ctrl: res.Ctrl,
		}
	})
	doc := jsonDoc{Scale: sc}
	var traces []*trace.Run
	var timelines []*telemetry.Registry
	var alerts []*experiments.AlertRecord
	var ctrlLogs []*ctrlplane.EventLog
	for _, cell := range cells {
		res := experiments.Result{ID: cell.ID, Tables: cell.Tables, Series: cell.Series}
		fmt.Print(res.String())
		fmt.Printf("-- %s done in %v\n\n", cell.ID, (time.Duration(cell.ElapsedMs) * time.Millisecond).Round(time.Millisecond))
		bridge.expDone()
		bridge.publishTraces(cell.ID, cell.traces)
		traces = append(traces, cell.traces...)
		timelines = append(timelines, cell.timelines...)
		alerts = append(alerts, cell.alerts...)
		ctrlLogs = append(ctrlLogs, cell.ctrl...)
		if *jsonPath != "" {
			doc.Experiments = append(doc.Experiments, cell)
		}
	}
	if *tracePth != "" {
		// Traces concatenate in experiment/cell order — deterministic
		// under any -parallel width, so CI can cmp the files directly.
		f, err := os.Create(*tracePth)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: create %s: %v\n", *tracePth, err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		var events int
		for _, r := range traces {
			if err := r.WriteJSONL(w); err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: write %s: %v\n", *tracePth, err)
				os.Exit(1)
			}
			events += len(r.Events())
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: flush %s: %v\n", *tracePth, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: close %s: %v\n", *tracePth, err)
			os.Exit(1)
		}
		fmt.Printf("-- %d trace events (%d runs) written to %s\n", events, len(traces), *tracePth)
	}
	if *telemPth != "" {
		// Timelines concatenate in experiment/cell order — deterministic
		// under any -parallel width, so CI can cmp the files directly.
		f, err := os.Create(*telemPth)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: create %s: %v\n", *telemPth, err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		var scrapes int
		for _, r := range timelines {
			if err := r.WriteJSONL(w); err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: write %s: %v\n", *telemPth, err)
				os.Exit(1)
			}
			scrapes += r.NumScrapes()
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: flush %s: %v\n", *telemPth, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: close %s: %v\n", *telemPth, err)
			os.Exit(1)
		}
		fmt.Printf("-- %d telemetry scrapes (%d runs) written to %s\n", scrapes, len(timelines), *telemPth)
	}
	if *alertPth != "" {
		// Alert logs concatenate in experiment/cell order — deterministic
		// under any -parallel width, so CI can cmp the files directly.
		f, err := os.Create(*alertPth)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: create %s: %v\n", *alertPth, err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		var incidents int
		for _, a := range alerts {
			if err := a.WriteJSONL(w); err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: write %s: %v\n", *alertPth, err)
				os.Exit(1)
			}
			incidents += len(a.Engine.Incidents())
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: flush %s: %v\n", *alertPth, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: close %s: %v\n", *alertPth, err)
			os.Exit(1)
		}
		fmt.Printf("-- %d incidents (%d runs) written to %s\n", incidents, len(alerts), *alertPth)
	}
	if *ctrlPth != "" {
		// Ctrl event logs concatenate in experiment/cell order — deterministic
		// under any -parallel width, so CI can cmp the files directly.
		f, err := os.Create(*ctrlPth)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: create %s: %v\n", *ctrlPth, err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		var events int
		for _, l := range ctrlLogs {
			if err := l.WriteJSONL(w); err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: write %s: %v\n", *ctrlPth, err)
				os.Exit(1)
			}
			events += len(l.Events)
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: flush %s: %v\n", *ctrlPth, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: close %s: %v\n", *ctrlPth, err)
			os.Exit(1)
		}
		fmt.Printf("-- %d ctrl events (%d runs) written to %s\n", events, len(ctrlLogs), *ctrlPth)
	}
	if *profPath != "" || *perfetto != "" {
		// Cells complete in any order; sort by run label so the report and
		// timeline documents have a stable layout (the measured wall-time
		// values inside naturally vary run to run).
		profMu.Lock()
		sort.Slice(profs, func(i, j int) bool { return profs[i].Label < profs[j].Label })
		got := profs
		profMu.Unlock()
		if len(got) == 0 {
			fmt.Fprintf(os.Stderr, "rlive-sim: -prof/-perfetto set but no selected experiment supports engine self-profiling (ab-baseline and fleet-scale do)\n")
			os.Exit(1)
		}
		if *profPath != "" {
			f, err := os.Create(*profPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: create %s: %v\n", *profPath, err)
				os.Exit(1)
			}
			w := bufio.NewWriter(f)
			if err := profile.WriteReports(w, got...); err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: write %s: %v\n", *profPath, err)
				os.Exit(1)
			}
			if err := w.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: flush %s: %v\n", *profPath, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: close %s: %v\n", *profPath, err)
				os.Exit(1)
			}
			fmt.Printf("-- perf report (%d runs) written to %s\n", len(got), *profPath)
		}
		if *perfetto != "" {
			f, err := os.Create(*perfetto)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: create %s: %v\n", *perfetto, err)
				os.Exit(1)
			}
			w := bufio.NewWriter(f)
			if err := profile.WritePerfetto(w, got...); err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: write %s: %v\n", *perfetto, err)
				os.Exit(1)
			}
			if err := w.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: flush %s: %v\n", *perfetto, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "rlive-sim: close %s: %v\n", *perfetto, err)
				os.Exit(1)
			}
			fmt.Printf("-- perfetto timeline (%d runs) written to %s\n", len(got), *perfetto)
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: marshal results: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("-- results written to %s\n", *jsonPath)
	}
}

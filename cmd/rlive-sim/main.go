// Command rlive-sim runs the paper-reproduction experiments on the
// simulated deployment and prints their tables/series.
//
// Usage:
//
//	rlive-sim -exp fig9            # one experiment
//	rlive-sim -exp all             # the whole evaluation
//	rlive-sim -list                # list experiment IDs
//	rlive-sim -exp fig11 -scale full -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		scale    = flag.String("scale", "quick", "quick or full")
		seed     = flag.Uint64("seed", 1, "base RNG seed (paired runs share it)")
		clients  = flag.Int("clients", 0, "override concurrent clients")
		nodes    = flag.Int("nodes", 0, "override best-effort node count")
		duration = flag.Duration("duration", 0, "override measured duration")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	sc := experiments.Quick
	if *scale == "full" {
		sc = experiments.Full
	}
	sc.Seed = *seed
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *nodes > 0 {
		sc.BestEffort = *nodes
	}
	if *duration > 0 {
		sc.Duration = *duration
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		run, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rlive-sim: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res := run(sc)
		fmt.Print(res.String())
		fmt.Printf("-- %s done in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// Command rlive-sim runs the paper-reproduction experiments on the
// simulated deployment and prints their tables/series.
//
// Usage:
//
//	rlive-sim -exp fig9            # one experiment
//	rlive-sim -exp all             # the whole evaluation
//	rlive-sim -list                # list experiment IDs
//	rlive-sim -exp fig11 -scale full -seed 7
//	rlive-sim -exp chaos-scheduler-outage            # a resilience drill
//	rlive-sim -exp fig9 -json out.json               # machine-readable results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

// jsonDoc is the machine-readable result document the -json flag writes,
// feeding the BENCH_*.json perf-trajectory tooling.
type jsonDoc struct {
	Scale       experiments.Scale `json:"scale"`
	Experiments []jsonExperiment  `json:"experiments"`
}

type jsonExperiment struct {
	ID        string                `json:"id"`
	ElapsedMs int64                 `json:"elapsed_ms"`
	Tables    []*experiments.Table  `json:"tables,omitempty"`
	Series    []*experiments.Series `json:"series,omitempty"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		scale    = flag.String("scale", "quick", "quick or full")
		seed     = flag.Uint64("seed", 1, "base RNG seed (paired runs share it)")
		clients  = flag.Int("clients", 0, "override concurrent clients")
		nodes    = flag.Int("nodes", 0, "override best-effort node count")
		duration = flag.Duration("duration", 0, "override measured duration")
		jsonPath = flag.String("json", "", "also write results as JSON to this path")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	sc := experiments.Quick
	if *scale == "full" {
		sc = experiments.Full
	}
	sc.Seed = *seed
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *nodes > 0 {
		sc.BestEffort = *nodes
	}
	if *duration > 0 {
		sc.Duration = *duration
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	doc := jsonDoc{Scale: sc}
	for _, id := range ids {
		run, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rlive-sim: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res := run(sc)
		elapsed := time.Since(start)
		fmt.Print(res.String())
		fmt.Printf("-- %s done in %v\n\n", id, elapsed.Round(time.Millisecond))
		if *jsonPath != "" {
			doc.Experiments = append(doc.Experiments, jsonExperiment{
				ID: id, ElapsedMs: elapsed.Milliseconds(),
				Tables: res.Tables, Series: res.Series,
			})
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: marshal results: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rlive-sim: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("-- results written to %s\n", *jsonPath)
	}
}

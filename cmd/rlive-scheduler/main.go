// Command rlive-scheduler runs the global control-plane directory: relays
// register and heartbeat; viewers fetch candidate relays.
//
//	rlive-scheduler -listen 127.0.0.1:8401
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"repro/internal/livenet"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8401", "HTTP listen address")
	flag.Parse()

	dir, err := livenet.NewDirectory(*listen)
	if err != nil {
		log.Fatalf("rlive-scheduler: %v", err)
	}
	defer dir.Close()
	log.Printf("rlive-scheduler: listening on %s (POST /register, GET /candidates)", dir.Addr())

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Printf("rlive-scheduler: shutting down")
}

// Command rlive-scheduler runs the global control-plane directory: relays
// register and heartbeat; viewers fetch candidate relays.
//
//	rlive-scheduler -listen 127.0.0.1:8401
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/livenet"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8401", "HTTP listen address")
	obsAddr := flag.String("obs", "", "observability HTTP listen address (empty = disabled)")
	profRt := flag.Int("prof-rates", 0, "runtime mutex/block profiling rate for /debug/pprof (SetMutexProfileFraction and SetBlockProfileRate; 0 = off)")
	flag.Parse()
	if *profRt > 0 {
		runtime.SetMutexProfileFraction(*profRt)
		runtime.SetBlockProfileRate(*profRt)
	}

	dir, err := livenet.NewDirectory(*listen)
	if err != nil {
		log.Fatalf("rlive-scheduler: %v", err)
	}
	defer dir.Close()
	log.Printf("rlive-scheduler: listening on %s (POST /register, GET /candidates)", dir.Addr())

	// Observability plane (no-op when -obs is unset).
	var srv *obs.Server
	var reg *telemetry.Registry
	if *obsAddr != "" {
		reg = telemetry.NewRegistry("rlive-scheduler", 0)
		srv = obs.NewServer(obs.Options{EnablePprof: true})
	}
	dir.SetTelemetry(reg)
	srv.AddLiveRegistry(reg)
	srv.PollRegistry(reg, 2*time.Second)
	srv.AddLiveness("directory", func() error { return nil })
	srv.AddReadiness("directory", func() error { return nil })
	if srv != nil {
		bound, err := srv.Start(*obsAddr)
		if err != nil {
			log.Fatalf("rlive-scheduler: obs: %v", err)
		}
		defer srv.Close()
		log.Printf("rlive-scheduler: observability on http://%s", bound)
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Printf("rlive-scheduler: shutting down")
}

// Command rlive-cdn runs a dedicated CDN origin on real sockets: it hosts
// synthetic live streams, serves full-stream and substream(+headers)
// subscriptions over TCP, and answers dts-indexed frame recovery.
//
//	rlive-cdn -listen 127.0.0.1:8400 -streams 2 -k 4 -bitrate 2000000
package main

import (
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/livenet"
	"repro/internal/media"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:8400", "TCP listen address")
		streams = flag.Int("streams", 1, "number of hosted live streams")
		k       = flag.Int("k", 4, "substreams per stream")
		fps     = flag.Int("fps", 30, "frames per second")
		bitrate = flag.Float64("bitrate", 2e6, "stream bitrate (bps)")
		seed    = flag.Uint64("seed", 1, "content RNG seed")
		obsAddr = flag.String("obs", "", "observability HTTP listen address (empty = disabled)")
		profRt  = flag.Int("prof-rates", 0, "runtime mutex/block profiling rate for /debug/pprof (SetMutexProfileFraction and SetBlockProfileRate; 0 = off)")
	)
	flag.Parse()
	if *profRt > 0 {
		runtime.SetMutexProfileFraction(*profRt)
		runtime.SetBlockProfileRate(*profRt)
	}

	origin, err := livenet.NewOrigin(*listen)
	if err != nil {
		log.Fatalf("rlive-cdn: %v", err)
	}
	defer origin.Close()

	// Observability plane: /metrics, /events, /healthz, /readyz,
	// /snapshot. A nil server (flag unset) makes every call below a no-op
	// and leaves the origin's instruments nil — the zero-cost path.
	var srv *obs.Server
	var reg *telemetry.Registry
	if *obsAddr != "" {
		reg = telemetry.NewRegistry("rlive-cdn", *seed)
		srv = obs.NewServer(obs.Options{EnablePprof: true})
	}
	origin.SetTelemetry(reg)
	srv.AddLiveRegistry(reg)
	srv.PollRegistry(reg, 2*time.Second)
	srv.AddLiveness("origin", func() error { return nil })
	srv.AddReadiness("streams", func() error {
		if reg.Counter("origin.frames_generated").Value() == 0 {
			return errors.New("no frames generated yet")
		}
		return nil
	})
	if srv != nil {
		bound, err := srv.Start(*obsAddr)
		if err != nil {
			log.Fatalf("rlive-cdn: obs: %v", err)
		}
		defer srv.Close()
		log.Printf("rlive-cdn: observability on http://%s (/metrics /events /healthz /readyz /snapshot)", bound)
	}
	for i := 0; i < *streams; i++ {
		origin.HostStream(media.SourceConfig{
			Stream:     media.StreamID(i + 1),
			FPS:        *fps,
			BitrateBps: *bitrate,
		}, *k, *seed+uint64(i))
		log.Printf("rlive-cdn: hosting stream %d (%d substreams, %.1f Mbps)", i+1, *k, *bitrate/1e6)
	}
	log.Printf("rlive-cdn: listening on %s", origin.Addr())

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	log.Printf("rlive-cdn: shutting down")
}

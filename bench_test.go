// Benchmarks regenerating every table and figure of the paper's evaluation
// (one bench per artifact — see DESIGN.md's per-experiment index), plus
// microbenchmarks of the hot paths. Run:
//
//	go test -bench=. -benchmem
//
// Each experiment bench executes the same runner the rlive-sim CLI uses, at
// a bench-sized scale, and logs the resulting tables on the first
// iteration (visible with -v).
package repro_test

import (
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ctrlplane"
	"repro/internal/experiments"
	"repro/internal/media"
	"repro/internal/profile"
	"repro/internal/recovery"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transport"
)

// benchScale keeps per-iteration work bounded for benchmarking.
func benchScale() experiments.Scale {
	sc := experiments.Quick
	sc.Duration = 20 * time.Second
	return sc
}

func benchExperiment(b *testing.B, id string) {
	run, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	sc := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := run(sc)
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// One bench per paper table/figure.

func BenchmarkFig1bCapacityCDF(b *testing.B)    { benchExperiment(b, "fig1b") }
func BenchmarkFig2aStrawmanQoE(b *testing.B)    { benchExperiment(b, "fig2a") }
func BenchmarkFig2bExpansionRate(b *testing.B)  { benchExperiment(b, "fig2b") }
func BenchmarkFig2cLifespan(b *testing.B)       { benchExperiment(b, "fig2c") }
func BenchmarkFig2dDelayJitter(b *testing.B)    { benchExperiment(b, "fig2d") }
func BenchmarkFig3Retransmission(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkTable1Diurnal(b *testing.B)       { benchExperiment(b, "tab1") }
func BenchmarkFig8ABFairness(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9ABTests(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkTable2EqT(b *testing.B)           { benchExperiment(b, "tab2") }
func BenchmarkFig10Energy(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11MultiVsSingle(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12ControlPlane(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkTable3Sequencing(b *testing.B)    { benchExperiment(b, "tab3") }
func BenchmarkFig13RTM(b *testing.B)            { benchExperiment(b, "fig13") }
func BenchmarkTable4FlashCrowd(b *testing.B)    { benchExperiment(b, "tab4") }
func BenchmarkFallbackThreshold(b *testing.B)   { benchExperiment(b, "fallback") }
func BenchmarkAblationChainLength(b *testing.B) { benchExperiment(b, "abl-chain") }
func BenchmarkAblationSubstreamCount(b *testing.B) {
	benchExperiment(b, "abl-k")
}
func BenchmarkAblationProbeCount(b *testing.B) { benchExperiment(b, "abl-probe") }
func BenchmarkAblationExploreExploit(b *testing.B) {
	benchExperiment(b, "abl-explore")
}
func BenchmarkAblationPartitionHash(b *testing.B) {
	benchExperiment(b, "abl-hash")
}
func BenchmarkAblationRedundancy(b *testing.B) {
	benchExperiment(b, "abl-redundant")
}
func BenchmarkAblationNATRefinement(b *testing.B) {
	benchExperiment(b, "abl-nat")
}

// Chaos drills: the resilience scenarios under paired A/B.

func BenchmarkChaosSchedulerOutage(b *testing.B)  { benchExperiment(b, "chaos-scheduler-outage") }
func BenchmarkChaosSchedulerSlow(b *testing.B)    { benchExperiment(b, "chaos-scheduler-slow") }
func BenchmarkChaosRegionBlackout(b *testing.B)   { benchExperiment(b, "chaos-region-blackout") }
func BenchmarkChaosRegionPartition(b *testing.B)  { benchExperiment(b, "chaos-region-partition") }
func BenchmarkChaosChurnStorm(b *testing.B)       { benchExperiment(b, "chaos-churn-storm") }
func BenchmarkChaosOriginSaturation(b *testing.B) { benchExperiment(b, "chaos-origin-saturation") }
func BenchmarkChaosDegradationWave(b *testing.B)  { benchExperiment(b, "chaos-degradation-wave") }
func BenchmarkChaosNATFlap(b *testing.B)          { benchExperiment(b, "chaos-nat-flap") }
func BenchmarkChaosCtrlPartition(b *testing.B)    { benchExperiment(b, "chaos-ctrl-partition") }

// BenchmarkChaosObs runs the observability drill end to end: the full
// chaos catalog with the SLO alert engine armed, scored against each
// scenario's ground-truth fault windows.
func BenchmarkChaosObs(b *testing.B) { benchExperiment(b, "chaos-obs") }

// BenchmarkCtrlScale runs the distributed-control-plane drill end to end:
// the 100x message-rate flatness sweep plus the scheduler-death autonomy
// arms with telemetry, alerting, and event logging armed.
func BenchmarkCtrlScale(b *testing.B) { benchExperiment(b, "ctrl-scale") }

// BenchmarkABBaseline runs the canonical A/B pair with tracing OFF — the
// guard for the tracer's zero-config path: compare against BENCH_*.json
// baselines recorded before the trace hooks landed (acceptance: < 2%
// regression).
func BenchmarkABBaseline(b *testing.B) { benchExperiment(b, "ab-baseline") }

// BenchmarkABBaselineTraced is the same pair with full tracing ON — the
// cost of recording (not a regression gate; it quantifies the overhead the
// nil-check avoids).
func BenchmarkABBaselineTraced(b *testing.B) {
	sc := benchScale()
	sc.Trace = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.ABBaseline(sc)
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkABPeak runs the telemetry-instrumented A/B pair — the cost of a
// fully scraped run (registry on, all component hooks live).
func BenchmarkABPeak(b *testing.B) { benchExperiment(b, "ab-peak") }

// BenchmarkFleetScaleSweep runs the sharded-engine fleet sweep end to end:
// 1x/3x/10x fleet sizes on per-region event loops with conservative
// lookahead, churn on, QoE invariants judged per cell.
func BenchmarkFleetScaleSweep(b *testing.B) { benchExperiment(b, "fleet-scale") }

// Microbenchmarks of the hot paths.

func mkHeaders(n int) []media.Header {
	hs := make([]media.Header, n)
	for i := range hs {
		typ := media.FrameP
		if i%30 == 0 {
			typ = media.FrameI
		}
		hs[i] = media.Header{Stream: 1, Dts: uint64(i) * 33, Type: typ, Size: 8000, Seq: uint32(i)}
	}
	return hs
}

func BenchmarkFootprintCRC(b *testing.B) {
	hs := mkHeaders(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = chain.ComputeCRC(hs[2], hs[1], hs[0])
	}
}

func BenchmarkChainTryMatch(b *testing.B) {
	hs := mkHeaders(256)
	gen := chain.NewLocalGenerator(4)
	chains := make([][]chain.Footprint, len(hs))
	for i, h := range hs {
		gen.Observe(h, 7)
		chains[i] = gen.Chain()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := chain.NewGlobal(0)
		for _, h := range hs {
			g.AddHeader(h)
		}
		for _, lc := range chains {
			g.TryMatch(lc)
		}
	}
}

func BenchmarkLocalChainObserve(b *testing.B) {
	hs := mkHeaders(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := chain.NewLocalGenerator(4)
		for _, h := range hs {
			gen.Observe(h, 7)
		}
	}
}

func newBenchScheduler(nodes int) *scheduler.Scheduler {
	rng := stats.NewRNG(1)
	s := scheduler.New(scheduler.Config{}, rng, func() time.Duration { return time.Hour })
	for i := 0; i < nodes; i++ {
		addr := simnet.Addr(100000 + i)
		s.RegisterNode(addr, scheduler.StaticFeatures{
			Region: i % 8, ISP: i % 4, CostUnit: 0.7,
		}, 16)
		s.Ingest(scheduler.Heartbeat{Addr: addr, ResidualBps: 50e6, ConnSuccess: 0.9, QuotaLeft: 16})
	}
	return s
}

func BenchmarkSchedulerRecommend(b *testing.B) {
	s := newBenchScheduler(10000)
	key := scheduler.SubstreamKey{Stream: 1, Substream: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Recommend(key, scheduler.ClientInfo{Region: i % 8, ISP: i % 4})
	}
}

func BenchmarkSchedulerIngest(b *testing.B) {
	s := newBenchScheduler(10000)
	key := scheduler.SubstreamKey{Stream: 1, Substream: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Ingest(scheduler.Heartbeat{
			Addr: simnet.Addr(100000 + i%10000), ResidualBps: 40e6,
			Utilization: 0.5, QuotaLeft: 8,
			Forwarding: []scheduler.SubstreamKey{key},
		})
	}
}

func BenchmarkPacketCodec(b *testing.B) {
	p := &transport.DataPacket{
		Key:    scheduler.SubstreamKey{Stream: 1, Substream: 2},
		Header: media.Header{Stream: 1, Dts: 99999, Size: 8000},
		Seq:    3, Count: 7, PayloadLen: transport.PacketPayload,
		Chain:   []chain.Footprint{{Dts: 1}, {Dts: 2}, {Dts: 3}, {Dts: 4}},
		Payload: make([]byte, transport.PacketPayload),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := transport.MarshalDataPacket(p)
		if _, err := transport.UnmarshalDataPacket(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryDecision(b *testing.B) {
	eng := recovery.NewEngine(recovery.DefaultCosts())
	edf := stats.NewEDF(256)
	rng := stats.NewRNG(1)
	for i := 0; i < 200; i++ {
		edf.Observe(rng.LogNormalMedian(71, 0.4))
	}
	frames := make([]recovery.FrameState, 16)
	for i := range frames {
		frames[i] = recovery.FrameState{
			Dts: uint64(i) * 33, Substream: media.SubstreamID(i % 4),
			Deadline:  time.Duration(200+i*33) * time.Millisecond,
			SizeBytes: 8000, MissingPackets: 1 + i%5, PacketBytes: 1200,
		}
	}
	st := recovery.Stats{
		PktSuccess: 0.9, BERetryRTT: 120 * time.Millisecond,
		DedicatedEDF: edf, BufferMs: 800, FallbackThresholdMs: 400,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Decide(frames, st)
	}
}

// BenchmarkSimnetSchedule isolates the pooled event queue itself — At/Step
// with fn records only, heavy equal-time collision — without the network
// layer, so heap and free-list changes show up undiluted.
func BenchmarkSimnetSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := simnet.NewSim()
		fired := 0
		for j := 0; j < 4096; j++ {
			sim.At(time.Duration(j%64)*time.Millisecond, func() { fired++ })
		}
		sim.Run(time.Second)
		if fired != 4096 {
			b.Fatalf("fired = %d", fired)
		}
	}
}

func BenchmarkSimnetEventLoop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := simnet.NewSim()
		rng := stats.NewRNG(1)
		net := simnet.NewNetwork(sim, rng)
		net.Register(1, simnet.LinkState{UplinkBps: 100e6, BaseOWD: time.Millisecond}, nil)
		received := 0
		net.Register(2, simnet.LinkState{UplinkBps: 100e6}, func(simnet.Addr, any) { received++ })
		for j := 0; j < 1000; j++ {
			j := j
			sim.At(time.Duration(j)*time.Millisecond, func() { net.Send(1, 2, 1200, j) })
		}
		sim.Run(2 * time.Second)
	}
}

// benchShardedLoop drives the sharded engine's full packet path — per-region
// tickers, ~30% cross-region traffic through the cross-worker mailboxes, the
// conservative-horizon protocol — over 4 regions at the given worker count.
// Compare BenchmarkShardedEventLoop (4 workers) against
// BenchmarkShardedEventLoopSerial (the single-threaded reference the
// byte-identity gate diffs against): the workload is identical by
// construction, so any delta is pure engine overhead or parallel speedup.
func benchShardedLoop(b *testing.B, workers int) {
	const regions = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := simnet.NewShardedSim(simnet.ShardConfig{
			Regions: regions, Workers: workers, Seed: 1,
			Lookahead: 4 * time.Millisecond,
		})
		net := simnet.NewShardedNet(sim)
		net.InterRegionOWD = func(ra, rb int) time.Duration {
			d := ra - rb
			if d < 0 {
				d = -d
			}
			return time.Duration(d) * 4 * time.Millisecond
		}
		ids := make([][]simnet.NodeID, regions)
		delivered := make([]int, regions)
		for r := 0; r < regions; r++ {
			r := r
			for j := 0; j < 8; j++ {
				ids[r] = append(ids[r], net.Register(r, simnet.LinkState{
					UplinkBps: 50e6, BaseOWD: 2 * time.Millisecond,
					JitterStd: time.Millisecond, LossRate: 0.01,
				}, func(dst, src simnet.NodeID, msg any) { delivered[r]++ }))
			}
		}
		for r := 0; r < regions; r++ {
			r := r
			rl := sim.Region(r)
			rl.Every(2*time.Millisecond, func() bool {
				rng := rl.RNG()
				src := ids[r][rng.IntN(len(ids[r]))]
				dstRegion := r
				if rng.Bool(0.3) {
					dstRegion = rng.IntN(regions)
				}
				dst := ids[dstRegion][rng.IntN(len(ids[dstRegion]))]
				net.Send(src, dst, 1200, nil)
				return true
			})
		}
		sim.Run(2 * time.Second)
		if delivered[0] == 0 {
			b.Fatal("no deliveries")
		}
	}
}

func BenchmarkShardedEventLoop(b *testing.B)       { benchShardedLoop(b, 4) }
func BenchmarkShardedEventLoopSerial(b *testing.B) { benchShardedLoop(b, 1) }

// BenchmarkFleetScaleRun measures one compact-fleet sharded run at 10k
// best-effort nodes with churn — the per-run cost behind the fleet-scale
// sweep's middle cells (the 100k top cell is this times ~10).
func BenchmarkFleetScaleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := core.NewFleetScale(core.FleetScaleConfig{
			Seed: 1, NumBestEffort: 10000, Workers: 4, ChurnEnabled: true,
		})
		sys.Run(5 * time.Second)
		if rep := sys.Report(); rep.ViewerFrames == 0 {
			b.Fatal("no viewer frames")
		}
	}
}

// BenchmarkLKGCandidates measures one cache-served allocation decision —
// the data-plane hot path during a control-plane outage: rank a fleet-scale
// last-known-good snapshot and return the top-k candidates.
func BenchmarkLKGCandidates(b *testing.B) {
	now := simnet.Time(0)
	l := ctrlplane.NewLKG(8, 0, 9, func() simnet.Time { return now })
	snap := ctrlplane.Snapshot{Regions: make([]ctrlplane.RegionSnap, 8)}
	for r := 0; r < 8; r++ {
		nodes := make([]ctrlplane.NodeEntry, 128)
		for i := range nodes {
			nodes[i] = ctrlplane.NodeEntry{
				Addr:        simnet.Addr(1000 + r*128 + i),
				Static:      scheduler.StaticFeatures{Region: r, ISP: i % 4, CostUnit: 1},
				ResidualBps: 50e6, ConnSuccess: 0.9, QuotaLeft: 8,
			}
		}
		snap.Regions[r] = ctrlplane.RegionSnap{Region: r, Epoch: 1, Nodes: nodes}
	}
	l.Apply(snap, now)
	info := scheduler.ClientInfo{Addr: 9, Region: 0, ISP: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Candidates(info, 8, nil)
	}
}

func BenchmarkPartitionAssign(b *testing.B) {
	p := media.Partitioner{K: 4}
	var acc media.SubstreamID
	for i := 0; i < b.N; i++ {
		acc ^= p.Assign(uint64(i) * 33)
	}
	_ = acc
}

// BenchmarkTraceRecord measures one enabled-path event record (ring append
// plus amortized flush into the run).
func BenchmarkTraceRecord(b *testing.B) {
	r := trace.NewRun("bench", 1)
	buf := r.Buffer(trace.CompClient, 1, func() int64 { return 0 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Rec(trace.KPlayed, 1, uint64(i)*33, 50, 0)
	}
}

// BenchmarkTraceRecordDisabled measures the nil-tracer path every hook pays
// when tracing is off: one nil check, zero allocations.
func BenchmarkTraceRecordDisabled(b *testing.B) {
	var buf *trace.Buf
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Rec(trace.KPlayed, 1, uint64(i)*33, 50, 0)
	}
}

// BenchmarkTelemetryScrape measures one full registry scrape at a realistic
// instrument population (the per-bucket cost of the timeline).
func BenchmarkTelemetryScrape(b *testing.B) {
	reg := telemetry.NewRegistry("bench", 1)
	for i := 0; i < 16; i++ {
		reg.Counter(string(rune('a'+i)) + ".counter").Add(uint64(i))
	}
	for i := 0; i < 8; i++ {
		g := reg.Gauge(string(rune('a'+i)) + ".gauge")
		g.Set(float64(i))
	}
	for i := 0; i < 8; i++ {
		h := reg.Histogram(string(rune('a'+i))+".hist",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128})
		for j := 0; j < 100; j++ {
			h.Observe(float64(j % 150))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Scrape(int64(i))
	}
}

// BenchmarkTelemetryDisabled measures the nil-instrument path every hook
// pays when telemetry is off: one inlined nil check, zero allocations.
func BenchmarkTelemetryDisabled(b *testing.B) {
	var c *telemetry.Counter
	var h *telemetry.Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(float64(i))
	}
}

// benchProfiledLoop drives the serial engine's steady-state dispatch loop —
// a re-arming ticker over a warmed heap — with or without the engine
// self-profiler attached. BenchmarkProfileDisabled vs BenchmarkProfileEnabled
// is the zero-overhead-when-disabled contract in the bench-gate set: the
// disabled row must stay at 0 allocs/op and within noise of the seed.
func benchProfiledLoop(b *testing.B, p *profile.Prof) {
	sim := simnet.NewSim()
	sim.SetProfile(p)
	ticks := 0
	sim.Every(time.Millisecond, func() bool { ticks++; return true })
	var until simnet.Time = 100 * time.Millisecond
	sim.Run(until) // warm pools and heap before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		until += 10 * time.Millisecond
		sim.Run(until)
	}
	if ticks == 0 {
		b.Fatal("ticker never fired")
	}
}

func BenchmarkProfileDisabled(b *testing.B) { benchProfiledLoop(b, nil) }
func BenchmarkProfileEnabled(b *testing.B) {
	benchProfiledLoop(b, profile.New("bench", 1, 1))
}

// BenchmarkFleetScaleProfiled is BenchmarkFleetScaleRun with engine
// self-profiling on — the cost of full per-shard/per-worker attribution at
// fleet scale (compare the two rows for the enabled-path overhead).
func BenchmarkFleetScaleProfiled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := core.NewFleetScale(core.FleetScaleConfig{
			Seed: 1, NumBestEffort: 10000, Workers: 4, ChurnEnabled: true,
			Profile: true,
		})
		sys.Run(5 * time.Second)
		if rep := sys.Report(); rep.ViewerFrames == 0 {
			b.Fatal("no viewer frames")
		}
		if p := sys.Profile(); p == nil || p.TotalEvents() == 0 {
			b.Fatal("profiler attached but recorded nothing")
		}
	}
}

// Recoverylab: the QoE-driven loss recovery policy (§5.3) in isolation.
// Sweeps buffer depth, deadline, per-packet success rate and burst length,
// printing which action the loss function selects — a map of the policy's
// decision boundaries.
//
//	go run ./examples/recoverylab
package main

import (
	"fmt"
	"time"

	"repro/internal/media"
	"repro/internal/recovery"
	"repro/internal/stats"
)

func main() {
	engine := recovery.NewEngine(recovery.DefaultCosts())

	// Historical dedicated-node retrieval latency: ~71 ms median.
	edf := stats.NewEDF(0)
	rng := stats.NewRNG(1)
	for i := 0; i < 500; i++ {
		edf.Observe(rng.LogNormalMedian(71, 0.4))
	}

	fmt.Println("RLive recovery decisions (rows: deadline; columns: per-packet retx success)")
	fmt.Println("frame: P-frame, 2 missing packets, healthy buffer (2000 ms)")
	fmt.Println()
	pVals := []float64{0.95, 0.8, 0.5, 0.2}
	fmt.Printf("%-12s", "deadline")
	for _, p := range pVals {
		fmt.Printf("%-22s", fmt.Sprintf("p=%.2f", p))
	}
	fmt.Println()
	for _, dl := range []time.Duration{1500, 700, 300, 120, 40} {
		fmt.Printf("%-12s", fmt.Sprintf("%dms", dl))
		for _, p := range pVals {
			st := recovery.Stats{
				PktSuccess:          p,
				BERetryRTT:          120 * time.Millisecond,
				DedicatedEDF:        edf,
				BufferMs:            2000,
				FallbackThresholdMs: 400,
			}
			d := engine.DecideFrame(recovery.FrameState{
				Type:           media.FrameP,
				Deadline:       dl * time.Millisecond,
				SizeBytes:      8000,
				MissingPackets: 2,
				PacketBytes:    1200,
			}, st)
			fmt.Printf("%-22s", d.Action.String())
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("same frame, buffer drained to 150 ms (below the 400 ms fallback threshold):")
	st := recovery.Stats{
		PktSuccess: 0.5, BERetryRTT: 120 * time.Millisecond,
		DedicatedEDF: edf, BufferMs: 150, FallbackThresholdMs: 400,
	}
	d := engine.DecideFrame(recovery.FrameState{
		Type: media.FrameI, Deadline: 40 * time.Millisecond,
		SizeBytes: 48000, MissingPackets: 10, PacketBytes: 1200,
	}, st)
	fmt.Printf("  desperate I-frame → %s (modeled miss probability %.2f)\n", d.Action, d.PFail)

	fmt.Println()
	fmt.Println("burst on one substream (5 consecutive lost frames) vs per-frame fetches:")
	frames := make([]recovery.FrameState, 5)
	for i := range frames {
		frames[i] = recovery.FrameState{
			Substream: 2, Type: media.FrameP,
			Deadline:  time.Duration(250+i*33) * time.Millisecond,
			SizeBytes: 8000, MissingPackets: 4, PacketBytes: 1200,
		}
	}
	st.BufferMs = 800
	st.PktSuccess = 0.3
	for i, dec := range engine.Decide(frames, st) {
		fmt.Printf("  frame %d → %s\n", i, dec.Action)
	}
	fmt.Println("\nThe burst amortizes one substream switch instead of five frame fetches (action a=2).")
}

// Chaosdrill: the scenario-driven fault-injection engine end to end. A
// small RLive deployment warms up, then the scheduler is killed for 60
// simulated seconds while the resilience invariants watch: clients must
// keep playing on last-known-good candidates (the control-plane
// distribution rule — the data plane survives control-plane failure), QoE
// degradation must stay bounded, NACKed retransmissions must escalate to
// the dedicated CDN, and stall rates must converge back to the pre-fault
// baseline after the scheduler returns.
//
//	go run ./examples/chaosdrill
package main

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
)

func main() {
	sys := core.NewSystem(core.Config{
		Seed:           11,
		NumDedicated:   1,
		NumBestEffort:  32,
		Mode:           client.ModeRLive,
		ChurnEnabled:   true,
		LifespanMedian: 5 * time.Minute,
	})
	sys.Start()
	for i := 0; i < 8; i++ {
		sys.AddClient(core.ClientSpec{Region: i % 2})
		sys.Run(300 * time.Millisecond)
	}
	sys.Run(5 * time.Second) // engage RLive, cache candidates

	fmt.Println("Chaos drill: 8 viewers on 32 best-effort nodes; scheduler dies for 60s mid-run.")
	fmt.Println()

	scen := chaos.SchedulerOutageScenario()
	report := chaos.Run(sys, scen, nil)
	fmt.Print(report)

	fmt.Println()
	if report.Pass() {
		fmt.Println("All invariants held: the data plane survived the scheduler outage on")
		fmt.Println("cached candidates, and QoE converged back once the control plane returned.")
	} else {
		fmt.Println("Invariant violation: see verdicts above.")
	}
	fmt.Printf("\nThe dark scheduler silently dropped %d control-plane messages (heartbeats,\n", report.OutageDropped)
	fmt.Println("candidate requests); clients noticed nothing until they needed new candidates.")
	fmt.Println("Other drills: chaos.Catalog() or `rlive-sim -exp chaos-<name>` — region")
	fmt.Println("blackouts, partitions, churn storms, origin saturation, degradation waves,")
	fmt.Println("NAT flaps.")
}

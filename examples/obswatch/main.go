// Obswatch: the live observability plane end to end in one process — a
// TCP CDN origin and a viewer playing from it, with an embedded obs
// server exposing /metrics, /events, /healthz, /readyz, and /snapshot.
// The program waits for readiness (real probes: frames generated, frames
// played), follows a couple of SSE scrape events, and prints the frame
// counters from the Prometheus exposition.
//
//	go run ./examples/obswatch
//
// The same plane watches long simulations: `rlive-sim -obs 127.0.0.1:9500`
// serves live progress gauges (experiments done/total, cells completed,
// high-water sim-time, the fleet-scale shard watermark), publishes every
// sim-time telemetry scrape onto /events as it happens, and streams trace
// summaries per finished experiment — all without changing a single output
// byte, e.g.:
//
//	go run ./cmd/rlive-sim -exp fleet-scale -nodes 10000 -shards 4 -obs 127.0.0.1:9500 &
//	curl -s http://127.0.0.1:9500/metrics | grep rlive_sim
package main

import (
	"bufio"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/livenet"
	"repro/internal/media"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	const k = 4

	// A CDN origin hosting one stream, instrumented into a registry.
	origin, err := livenet.NewOrigin("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer origin.Close()
	oreg := telemetry.NewRegistry("origin", 42)
	origin.SetTelemetry(oreg)
	origin.HostStream(media.SourceConfig{Stream: 1, FPS: 30, BitrateBps: 2e6}, k, 42)

	// A viewer playing straight from the origin, with its own registry.
	viewer, err := livenet.NewViewer("127.0.0.1:0", origin.Addr(), 1, k, 30)
	if err != nil {
		log.Fatal(err)
	}
	defer viewer.Close()
	vreg := telemetry.NewRegistry("viewer", 42)
	viewer.SetTelemetry(vreg)

	// One obs server watching both registries, with real readiness.
	srv := obs.NewServer(obs.Options{})
	srv.AddLiveRegistry(oreg)
	srv.AddLiveRegistry(vreg)
	srv.PollRegistry(vreg, 500*time.Millisecond)
	srv.AddReadiness("playing", func() error {
		if vreg.Counter("viewer.frames_played").Value() == 0 {
			return fmt.Errorf("no frames played yet")
		}
		return nil
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("obs:     http://%s (/metrics /events /healthz /readyz /snapshot)\n", addr)

	if err := viewer.Start(nil); err != nil {
		log.Fatal(err)
	}

	// Block on readiness like an orchestrator would: /readyz flips to 200
	// only once the playout clock has consumed frames.
	for {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	fmt.Println("readyz:  200 (viewer is playing)")

	// Follow the SSE stream until two scrape events arrive.
	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	scrapes := 0
	for sc.Scan() && scrapes < 2 {
		if strings.HasPrefix(sc.Text(), "event: scrape") {
			scrapes++
			fmt.Printf("events:  scrape %d received\n", scrapes)
		}
	}

	// And read the exposition the way a scraper would.
	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer mresp.Body.Close()
	ms := bufio.NewScanner(mresp.Body)
	for ms.Scan() {
		line := ms.Text()
		if strings.HasPrefix(line, "rlive_origin_frames_generated_total") ||
			strings.HasPrefix(line, "rlive_viewer_frames_played_total") ||
			strings.HasPrefix(line, "rlive_viewer_e2e_ms_count") {
			fmt.Printf("metrics: %s\n", line)
		}
	}
}

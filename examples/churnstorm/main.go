// Churnstorm: best-effort nodes flap on and off (time-compressed churn)
// while viewers stream. Demonstrates the control plane's real-time
// switching — dead-publisher failover, scheduler blacklisting, proactive
// edge suggestions — keeping playback alive through the storm.
//
//	go run ./examples/churnstorm
package main

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fleet"
)

func main() {
	sys := core.NewSystem(core.Config{
		Seed:          11,
		NumDedicated:  1,
		NumBestEffort: 32,
		Mode:          client.ModeRLive,
		ChurnEnabled:  true,
		// Median node lifespan of 90 simulated seconds: a brutal storm
		// (production medians are ~a day; this compresses time).
		LifespanMedian: 90 * time.Second,
	})
	churnEvents := 0
	sys.Fleet.OnChurn = func(n *fleet.Node, online bool) { churnEvents++ }
	sys.Start()
	for i := 0; i < 6; i++ {
		sys.AddClient(core.ClientSpec{Region: i % 2})
		sys.Run(300 * time.Millisecond)
	}

	fmt.Println("Churn storm: 32 best-effort nodes with ~90s median lifespan, 6 viewers, 2 minutes")
	fmt.Println()
	for minute := 1; minute <= 2; minute++ {
		sys.Run(time.Minute)
		online := 0
		for _, n := range sys.Fleet.BestEffort {
			if sys.Net.Online(n.Addr) {
				online++
			}
		}
		rec := sys.Recovery()
		fmt.Printf("after %dm: %d/%d nodes online, %d churn events, %d edge switches, %d fallbacks\n",
			minute, online, len(sys.Fleet.BestEffort), churnEvents, rec.EdgeSwitches, rec.FullFallbacks)
	}

	fmt.Println()
	agg := sys.Aggregate()
	played := 0
	for _, c := range sys.Clients {
		played += c.QoE.FramesPlayed
	}
	fmt.Printf("playback: %d frames across 6 viewers (%.0f%% of nominal), %.2f rebuffers/100s, stall %.0f ms/100s\n",
		played, float64(played)/float64(6*2*60*30)*100, agg.Rebuffer.Mean(), agg.StallTime.Mean())
	fmt.Println("\nDespite constant relay churn, viewers kept playing by re-mapping to live nodes")
	fmt.Println("and falling back to the dedicated CDN only when no edge path remained.")
}

// Quickstart: the smallest complete RLive deployment — a dedicated CDN
// node hosting one live stream, a fleet of best-effort edge nodes, the
// global scheduler, and a handful of viewers — run for a minute of
// simulated time with QoE printed per session.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/media"
)

func main() {
	sys := core.NewSystem(core.Config{
		Seed:          42,
		NumDedicated:  1,
		NumBestEffort: 24,
		K:             4,
		Mode:          client.ModeRLive,
		Streams: []media.SourceConfig{
			{Stream: 1, FPS: 30, BitrateBps: 2e6},
		},
	})
	sys.Start()

	// Six viewers join a few hundred milliseconds apart.
	for i := 0; i < 6; i++ {
		sys.AddClient(core.ClientSpec{Region: i % 2, ISP: i % 2})
		sys.Run(300 * time.Millisecond)
	}
	sys.Run(60 * time.Second)

	fmt.Println("RLive quickstart — 6 viewers, 60 s of simulated live playback")
	fmt.Println()
	fmt.Printf("%-8s %-8s %-10s %-12s %-10s %-8s\n",
		"viewer", "frames", "bitrate", "rebuf/100s", "E2E P50", "source")
	for i, c := range sys.Clients {
		src := "multi-source"
		if c.FullCDNActive() {
			src = "cdn"
		}
		fmt.Printf("%-8d %-8d %-10s %-12.2f %-10s %-8s\n",
			i,
			c.QoE.FramesPlayed,
			fmt.Sprintf("%.2fMbps", c.QoE.MeanBitrate()/1e6),
			c.QoE.RebufferPer100s(),
			fmt.Sprintf("%.0fms", c.QoE.E2ELatency.Percentile(50)),
			src)
	}

	ded, be := sys.ServedBytes()
	fmt.Println()
	fmt.Printf("delivery: %.1f MB from dedicated CDN, %.1f MB from best-effort nodes (%.0f%% offloaded)\n",
		ded/1e6, be/1e6, be/(ded+be)*100)
	rates := sys.ExpansionRates()
	if rates.N() > 0 {
		fmt.Printf("traffic expansion rate (median over active edges): %.1fx\n", rates.Percentile(50))
	}
	rec := sys.Recovery()
	fmt.Printf("recovery: %d fast retx, %d timeout retx, %d dedicated fetches, %d fallbacks\n",
		rec.FastRetx, rec.TimeoutRetx, rec.DedicatedFetch, rec.FullFallbacks)
}

// Udplive: the real-network pipeline on localhost — a TCP CDN origin, a
// scheduler directory, four UDP best-effort relays, and a viewer that
// discovers relays, subscribes one substream to each, reassembles frames
// via packet-embedded chains, and plays against the wall clock. Everything
// runs in this one process but over real sockets.
//
//	go run ./examples/udplive
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/livenet"
	"repro/internal/media"
)

func main() {
	const k = 4

	origin, err := livenet.NewOrigin("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer origin.Close()
	origin.HostStream(media.SourceConfig{Stream: 1, FPS: 30, BitrateBps: 2e6}, k, 42)
	fmt.Printf("origin:    %s (stream 1, %d substreams, 2 Mbps)\n", origin.Addr(), k)

	dir, err := livenet.NewDirectory("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dir.Close()
	fmt.Printf("scheduler: %s\n", dir.Addr())

	var relays []*livenet.Relay
	for i := 0; i < k; i++ {
		rl, err := livenet.NewRelay("127.0.0.1:0", origin.Addr(), 16)
		if err != nil {
			log.Fatal(err)
		}
		defer rl.Close()
		relays = append(relays, rl)
		if err := livenet.RegisterWith(dir.Addr(), rl.Addr(), 0, 16); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("relay %d:   %s\n", i, rl.Addr())
	}

	// Give the origin a moment to produce warm-up frames.
	time.Sleep(300 * time.Millisecond)

	cands, err := livenet.FetchCandidates(dir.Addr())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovery: %d candidate relays from the scheduler\n\n", len(cands))

	viewer, err := livenet.NewViewer("127.0.0.1:0", origin.Addr(), 1, k, 30)
	if err != nil {
		log.Fatal(err)
	}
	defer viewer.Close()
	assign := map[media.SubstreamID]string{}
	for i := 0; i < k; i++ {
		assign[media.SubstreamID(i)] = cands[i%len(cands)]
	}
	if err := viewer.Start(assign); err != nil {
		log.Fatal(err)
	}

	fmt.Println("viewing 10 seconds of live stream over real UDP...")
	for i := 1; i <= 10; i++ {
		time.Sleep(time.Second)
		fmt.Printf("  t=%2ds  frames played: %d\n", i, viewer.Played())
	}

	q := viewer.QoE
	fmt.Println()
	fmt.Printf("frames played:   %d\n", q.FramesPlayed)
	fmt.Printf("mean bitrate:    %.2f Mbps\n", q.MeanBitrate()/1e6)
	fmt.Printf("rebuffer events: %d\n", q.RebufferEvents)
	fmt.Printf("E2E latency P50: %.0f ms\n", q.E2ELatency.Percentile(50))
	total := 0
	for _, rl := range relays {
		total += rl.Sessions()
	}
	fmt.Printf("relay sessions:  %d\n", total)
}

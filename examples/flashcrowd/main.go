// Flashcrowd: the Table 4 scenario — a mega-broadcast surge (think World
// Cup final) arrives faster than dedicated capacity could ever be
// provisioned. The same crowd is replayed twice with common random
// numbers: once against the CDN alone, once with RLive mobilizing
// best-effort nodes.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
)

const (
	crowd = 48
	nodes = 48
)

func run(mode client.Mode) *core.System {
	sys := core.NewSystem(core.Config{
		Seed:          7,
		NumDedicated:  1,
		NumBestEffort: nodes,
		Mode:          mode,
		ABRLadder:     []float64{0.8e6, 1.2e6, 2.0e6, 3.0e6},
		// The CDN cannot hold the full crowd even at the lowest rung.
		DedicatedUplinkBps: 0.75e6 * crowd,
		// Surge viewers start conservative and climb.
		ABRStartRung: -1,
	})
	sys.Start()
	// The crowd arrives within ~15 seconds.
	for i := 0; i < crowd; i++ {
		sys.AddClient(core.ClientSpec{Region: i % 2, ISP: i % 2})
		sys.Run(300 * time.Millisecond)
	}
	sys.Run(60 * time.Second)
	return sys
}

func summarize(name string, sys *core.System) (views int) {
	agg := sys.Aggregate()
	// A sustained view spends >= 75% of its wall time playing rather
	// than stalled (live-edge skips still count as watching).
	for _, c := range sys.Clients {
		total := c.QoE.PlayedMs + c.QoE.StalledMs
		if total > 0 && c.QoE.PlayedMs/total >= 0.75 && c.QoE.FramesPlayed > 0 {
			views++
		}
	}
	ded, be := sys.ServedBytes()
	fmt.Printf("%-10s sustained-views=%2d/%d  rebuf/100s=%5.2f  bitrate=%.2fMbps  CDN=%4.0fMB  edges=%4.0fMB\n",
		name, views, crowd, agg.Rebuffer.Mean(), agg.Bitrate.Mean()/1e6, ded/1e6, be/1e6)
	return views
}

func main() {
	fmt.Printf("Flash crowd: %d viewers vs a CDN sized for %d low-rung streams\n\n", crowd, crowd*7/10)
	cdnViews := summarize("cdn-only", run(client.ModeCDNOnly))
	rliveViews := summarize("rlive", run(client.ModeRLive))
	fmt.Println()
	if rliveViews > cdnViews {
		fmt.Printf("RLive carried %d additional sustained views (+%.0f%%) on the same dedicated capacity.\n",
			rliveViews-cdnViews, float64(rliveViews-cdnViews)/float64(max(cdnViews, 1))*100)
	} else {
		fmt.Println("RLive did not add views in this configuration — try more edge nodes.")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

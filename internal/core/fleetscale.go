package core

import (
	"math/bits"
	"time"

	"repro/internal/fleet"
	"repro/internal/profile"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// FleetScaleConfig sizes a fleet-scale delivery run on the sharded engine.
type FleetScaleConfig struct {
	Seed uint64
	// NumBestEffort is the best-effort fleet size; one origin (dedicated
	// node) is added per region on top.
	NumBestEffort int
	// Regions is the region count (default 8, matching the full system).
	Regions int
	// Workers is the shard worker count the region loops are packed onto
	// (default 1 = single-threaded reference). Output is identical for any
	// value.
	Workers int
	// Streams is the number of live streams, homed round-robin across the
	// regional origins (default = Regions).
	Streams int
	// FPS and FrameBytes shape each stream (defaults 10 fps x 12.5 KB ≈
	// 1 Mbps).
	FPS        int
	FrameBytes int
	// RelayMinBps is the uplink floor for promoting a best-effort node to
	// relay duty (default 50 Mbps).
	RelayMinBps float64
	// ChurnEnabled cycles viewers on/off with short session times so churn
	// effects show up within experiment-length runs.
	ChurnEnabled bool
	// ViewerStay / ViewerAway are the mean on/off session lengths when
	// churn is enabled (defaults 2 min / 20 s).
	ViewerStay time.Duration
	ViewerAway time.Duration
	// Profile attaches the engine self-profiler (per-region cost slabs,
	// per-worker park/utilization slabs, mailbox accounting). Observe-only:
	// the run's output is byte-identical with it on or off.
	Profile bool
}

func (c *FleetScaleConfig) setDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NumBestEffort == 0 {
		c.NumBestEffort = 1000
	}
	if c.Regions == 0 {
		c.Regions = 8
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Streams == 0 {
		c.Streams = c.Regions
	}
	if c.FPS == 0 {
		c.FPS = 10
	}
	if c.FrameBytes == 0 {
		c.FrameBytes = 12500
	}
	if c.RelayMinBps == 0 {
		c.RelayMinBps = 50e6
	}
	if c.ViewerStay == 0 {
		c.ViewerStay = 2 * time.Minute
	}
	if c.ViewerAway == 0 {
		c.ViewerAway = 20 * time.Second
	}
}

// FrameMsg is one video frame in flight. A single FrameMsg is allocated per
// (stream, frame) and shared by every delivery of that frame — the origin
// fan-out and all relay forwards pass the same pointer, so the per-packet
// send path allocates nothing.
type FrameMsg struct {
	Stream int32
	Seq    int32
	T0     simnet.Time
}

// ttdBuckets is the per-region time-to-display histogram resolution:
// bucket b counts deliveries with TTD in [2^(b-1), 2^b) x 100 µs.
const ttdBuckets = 32

// fsRegion is one region's measurement state. Each instance is written only
// by its owning shard worker; Report merges them in region order after Run.
type fsRegion struct {
	delivered uint64
	ttd       [ttdBuckets]uint64
	timeline  []uint64 // viewer deliveries per second of sim time
}

func (r *fsRegion) observe(now, t0 simnet.Time) {
	r.delivered++
	b := bits.Len64(uint64((now - t0) / (100 * time.Microsecond)))
	if b >= ttdBuckets {
		b = ttdBuckets - 1
	}
	r.ttd[b]++
	sec := int(now / simnet.Time(time.Second))
	for len(r.timeline) <= sec {
		r.timeline = append(r.timeline, 0)
	}
	r.timeline[sec]++
}

// FleetScaleSystem is the 100k-node-class delivery workload: per-region
// origins push Streams live streams to a relay tier drawn from the
// best-effort fleet, relays fan out to same-region viewers, and per-region
// histograms record QoE. All mutable run state is region-confined, which is
// what lets the sharded engine execute regions concurrently while keeping
// output byte-identical to the single-worker reference.
type FleetScaleSystem struct {
	cfg   FleetScaleConfig
	Sim   *simnet.ShardedSim
	Net   *simnet.ShardedNet
	Fleet *fleet.Compact

	NumRelays  int
	NumViewers int

	// fan is the static delivery graph in CSR form: node id's fan-out is
	// fan[fanStart[id]:fanStart[id+1]]. Origins fan to their subscribed
	// relays (plus relay-less direct viewers), relays to their viewers.
	fanStart []int32
	fan      []simnet.NodeID

	stats []*fsRegion
}

// NewFleetScale builds the system. Setup runs single-threaded on the caller
// and consumes only setup RNG streams, so the constructed topology is
// independent of the worker count.
func NewFleetScale(cfg FleetScaleConfig) *FleetScaleSystem {
	cfg.setDefaults()
	sys := &FleetScaleSystem{cfg: cfg}

	sys.Fleet = fleet.NewCompact(fleet.Config{
		NumDedicated:  cfg.Regions,
		NumBestEffort: cfg.NumBestEffort,
		Regions:       cfg.Regions,
	}, stats.NewRNG(cfg.Seed))
	c := sys.Fleet

	sys.Sim = simnet.NewShardedSim(simnet.ShardConfig{
		Regions:   cfg.Regions,
		Workers:   cfg.Workers,
		Seed:      cfg.Seed,
		Lookahead: 4 * time.Millisecond,
	})
	if cfg.Profile {
		sys.Sim.EnableProfile("fleet-scale")
	}
	sys.Net = simnet.NewShardedNet(sys.Sim)
	sys.Net.InterRegionOWD = func(ra, rb int) time.Duration {
		d := ra - rb
		if d < 0 {
			d = -d
		}
		return time.Duration(d) * 4 * time.Millisecond
	}

	// Register every node in dense-fleet order so simnet NodeID == fleet id.
	for i := 0; i < c.NumNodes(); i++ {
		st := c.LinkState(i)
		if c.IsDedicated(i) {
			// Origins model a CDN origin cluster, not a single box.
			st.UplinkBps = 100e9
		}
		sys.Net.Register(int(c.Region[i]), st, nil)
	}

	// Role split and subscriptions, drawn from a dedicated setup stream.
	setup := stats.SplitRNG(cfg.Seed, 0xf1ee75ca1e)
	streamOrigin := make([]simnet.NodeID, cfg.Streams)
	for s := range streamOrigin {
		streamOrigin[s] = simnet.NodeID(s % cfg.Regions)
	}
	relayStream := make(map[simnet.NodeID]int)          // relay -> subscribed stream
	relaysBy := make(map[[2]int][]simnet.NodeID)        // (region, stream) -> relays
	originFan := make([][]simnet.NodeID, cfg.Regions)   // origin region -> targets
	relayFan := make(map[simnet.NodeID][]simnet.NodeID) // relay -> viewers
	var viewers []simnet.NodeID
	for i := cfg.Regions; i < c.NumNodes(); i++ {
		id := simnet.NodeID(i)
		if c.UplinkBps[i] >= cfg.RelayMinBps {
			s := setup.Zipf(cfg.Streams, 1.2)
			relayStream[id] = s
			key := [2]int{int(c.Region[i]), s}
			relaysBy[key] = append(relaysBy[key], id)
			origin := streamOrigin[s]
			originFan[int(origin)] = append(originFan[int(origin)], id)
			sys.NumRelays++
		} else {
			viewers = append(viewers, id)
			sys.NumViewers++
		}
	}
	rr := make(map[[2]int]int) // round-robin cursor per (region, stream)
	for _, id := range viewers {
		s := setup.Zipf(cfg.Streams, 1.2)
		key := [2]int{int(c.Region[id]), s}
		if pool := relaysBy[key]; len(pool) > 0 {
			relay := pool[rr[key]%len(pool)]
			rr[key]++
			relayFan[relay] = append(relayFan[relay], id)
		} else {
			// No relay for this stream in the viewer's region: fall back to
			// the origin directly (cross-region).
			origin := streamOrigin[s]
			originFan[int(origin)] = append(originFan[int(origin)], id)
		}
	}

	// Freeze the delivery graph into CSR form.
	sys.fanStart = make([]int32, c.NumNodes()+1)
	total := 0
	for i := 0; i < c.NumNodes(); i++ {
		sys.fanStart[i] = int32(total)
		if c.IsDedicated(i) {
			total += len(originFan[i])
		} else {
			total += len(relayFan[simnet.NodeID(i)])
		}
	}
	sys.fanStart[c.NumNodes()] = int32(total)
	sys.fan = make([]simnet.NodeID, 0, total)
	for i := 0; i < c.NumNodes(); i++ {
		if c.IsDedicated(i) {
			sys.fan = append(sys.fan, originFan[i]...)
		} else {
			sys.fan = append(sys.fan, relayFan[simnet.NodeID(i)]...)
		}
	}

	// Handlers: one relay handler and one viewer handler per region (shared
	// func values — no per-node closures).
	sys.stats = make([]*fsRegion, cfg.Regions)
	for r := 0; r < cfg.Regions; r++ {
		sys.stats[r] = &fsRegion{}
	}
	for i := cfg.Regions; i < c.NumNodes(); i++ {
		id := simnet.NodeID(i)
		if _, isRelay := relayStream[id]; isRelay {
			sys.Net.SetHandler(id, sys.relayDeliver)
		} else {
			sys.Net.SetHandler(id, sys.viewerDeliver)
		}
	}

	// Frame pumps: each stream ticks on its origin's region loop.
	interval := time.Second / time.Duration(cfg.FPS)
	for s := 0; s < cfg.Streams; s++ {
		origin := streamOrigin[s]
		rl := sys.Sim.Region(int(origin))
		stream := int32(s)
		var seq int32
		rl.Every(interval, func() bool {
			seq++
			msg := &FrameMsg{Stream: stream, Seq: seq, T0: rl.Now()}
			sys.fanOut(origin, msg)
			return true
		})
	}

	// Viewer churn: short on/off sessions driven by each viewer's own
	// region loop and RNG stream, so the process is region-confined.
	if cfg.ChurnEnabled {
		for _, id := range viewers {
			sys.scheduleViewerChurn(id)
		}
	}
	return sys
}

// fanOut sends msg to every target in src's CSR span. The shared *FrameMsg
// keeps the loop allocation-free.
func (sys *FleetScaleSystem) fanOut(src simnet.NodeID, msg *FrameMsg) {
	lo, hi := sys.fanStart[src], sys.fanStart[src+1]
	for _, dst := range sys.fan[lo:hi] {
		sys.Net.Send(src, dst, sys.cfg.FrameBytes, msg)
	}
}

// relayDeliver forwards a frame to the relay's viewers, reusing the frame
// pointer. Runs on the relay's region loop.
func (sys *FleetScaleSystem) relayDeliver(dst, src simnet.NodeID, msg any) {
	sys.fanOut(dst, msg.(*FrameMsg))
}

// viewerDeliver records QoE for one delivered frame. Runs on the viewer's
// region loop; writes only that region's stats.
func (sys *FleetScaleSystem) viewerDeliver(dst, src simnet.NodeID, msg any) {
	m := msg.(*FrameMsg)
	r := sys.Net.RegionOf(dst)
	sys.stats[r].observe(sys.Sim.Region(r).Now(), m.T0)
}

// scheduleViewerChurn drives one viewer's on/off process on its region loop.
func (sys *FleetScaleSystem) scheduleViewerChurn(id simnet.NodeID) {
	rl := sys.Net.Home(id)
	var offline, online func()
	offline = func() {
		sys.Net.SetOnline(id, false)
		rl.After(simnet.Time(rl.RNG().Exponential(float64(sys.cfg.ViewerAway))), online)
	}
	online = func() {
		sys.Net.SetOnline(id, true)
		rl.After(simnet.Time(rl.RNG().Exponential(float64(sys.cfg.ViewerStay))), offline)
	}
	rl.After(simnet.Time(rl.RNG().Exponential(float64(sys.cfg.ViewerStay))), offline)
}

// Run executes the workload for the given span of virtual time.
func (sys *FleetScaleSystem) Run(d time.Duration) { sys.Sim.Run(d) }

// Watermark returns the engine's conservative sim-time lower bound in
// nanoseconds — safe to poll from any goroutine while Run is in flight,
// so observability can report live progress on long runs without adding
// events (which would perturb the byte-determinism gates).
func (sys *FleetScaleSystem) Watermark() int64 { return sys.Sim.Watermark() }

// Profile returns the engine self-profiler (nil unless Config.Profile).
func (sys *FleetScaleSystem) Profile() *profile.Prof { return sys.Sim.Profile() }

// ShardWorkers returns the engine's worker count after clamping.
func (sys *FleetScaleSystem) ShardWorkers() int { return sys.Sim.Workers() }

// WorkerUtil returns shard worker w's live busy-ns / park-ns / events
// counters; like Watermark, safe to poll mid-run (zeros unless profiling).
func (sys *FleetScaleSystem) WorkerUtil(w int) (busyNs, parkNs int64, events uint64) {
	return sys.Sim.WorkerUtil(w)
}

// MailboxHighWater returns the deepest cross-worker mailbox high-water
// mark; safe to poll mid-run (0 unless profiling).
func (sys *FleetScaleSystem) MailboxHighWater() int64 { return sys.Sim.MailboxHighWater() }

// FleetScaleReport is the merged, worker-independent run summary.
type FleetScaleReport struct {
	Nodes     int
	Relays    int
	Viewers   int
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	// DroppedOffline is the subset of Dropped caused by destination churn
	// (viewer offline at arrival) rather than link quality.
	DroppedOffline uint64
	// ViewerFrames counts frames that reached a viewer (the QoE numerator;
	// Delivered also counts origin->relay hops).
	ViewerFrames uint64
	// DeliveryRatio is delivered / sent across all hops; OnlineRatio
	// excludes churn losses from the denominator, isolating link quality.
	DeliveryRatio float64
	OnlineRatio   float64
	// TTDp50Ms / TTDp99Ms are time-to-display quantiles over viewer
	// deliveries, in milliseconds (bucket upper edges).
	TTDp50Ms float64
	TTDp99Ms float64
	// Timeline is viewer deliveries per second of sim time, merged across
	// regions.
	Timeline []uint64
	// Events is the total simulator events executed.
	Events uint64
}

// Report merges the per-region state. Call after Run.
func (sys *FleetScaleSystem) Report() FleetScaleReport {
	rep := FleetScaleReport{
		Nodes:   sys.Fleet.NumNodes(),
		Relays:  sys.NumRelays,
		Viewers: sys.NumViewers,
		Sent:    sys.Net.TotalSent(),
		Dropped: sys.Net.TotalDropped(),
		Events:  sys.Sim.Processed(),
	}
	rep.Delivered = sys.Net.TotalDelivered()
	for _, n := range sys.Net.DroppedOffline {
		rep.DroppedOffline += n
	}
	if rep.Sent > 0 {
		rep.DeliveryRatio = float64(rep.Delivered) / float64(rep.Sent)
	}
	if online := rep.Sent - rep.DroppedOffline; online > 0 {
		rep.OnlineRatio = float64(rep.Delivered) / float64(online)
	}
	var ttd [ttdBuckets]uint64
	for _, st := range sys.stats {
		rep.ViewerFrames += st.delivered
		for b, n := range st.ttd {
			ttd[b] += n
		}
		for sec, n := range st.timeline {
			for len(rep.Timeline) <= sec {
				rep.Timeline = append(rep.Timeline, 0)
			}
			rep.Timeline[sec] += n
		}
	}
	rep.TTDp50Ms = ttdQuantile(&ttd, rep.ViewerFrames, 0.50)
	rep.TTDp99Ms = ttdQuantile(&ttd, rep.ViewerFrames, 0.99)
	return rep
}

// ttdQuantile returns the q-quantile's bucket upper edge in milliseconds.
func ttdQuantile(ttd *[ttdBuckets]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for b, n := range ttd {
		cum += n
		if cum > rank {
			// Bucket b spans [2^(b-1), 2^b) x 100 µs.
			return float64(uint64(1)<<b) * 0.1
		}
	}
	return float64(uint64(1)<<(ttdBuckets-1)) * 0.1
}

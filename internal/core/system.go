package core

import (
	"time"

	"repro/internal/alerting"
	"repro/internal/cdn"
	"repro/internal/client"
	"repro/internal/ctrlplane"
	"repro/internal/edge"
	"repro/internal/fleet"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config parameterizes a full deployment.
type Config struct {
	Seed uint64

	NumDedicated  int
	NumBestEffort int
	Regions       int
	ISPs          int

	// Streams to host. Empty means one default 2 Mbps 30 fps stream.
	Streams []media.SourceConfig

	// ABRLadder, when set, hosts each stream as a ladder of variants at
	// these bitrates (low→high); clients adapt across them. Variant
	// stream IDs are base*16+rung, so base stream IDs must stay below
	// 2^24. BitrateBps in Streams is ignored when a ladder is set.
	ABRLadder []float64
	// ABRStartRung is the rung clients begin on: 0 (default) means the
	// top rung, a positive value selects that rung index, and a negative
	// value means the lowest rung (conservative startup for surges).
	ABRStartRung int

	// K is the substream count (forced to 1 for single-source mode).
	K int

	// Mode is the delivery mode of clients added via AddClient.
	Mode client.Mode
	// Redundancy > 1 enables the duplicate multi-source baseline.
	Redundancy int
	// CentralSequencing routes frame ordering through a SeqServer
	// instead of packet-embedded chains (Table 3 baseline).
	CentralSequencing bool
	// TopPercent restricts scheduler registration to the top fraction of
	// best-effort nodes by quality (the strawman used 0.01); 0 means all.
	TopPercent float64

	ChurnEnabled bool
	RefinedNAT   bool

	// ControlPlane replaces the single scheduler service with the
	// distributed control plane: one scheduler shard per region (clients
	// and edges talk to their region's shard), gossip snapshot sync
	// between shards, periodic full-config snapshot pushes, and
	// last-known-good caches on every edge and client so allocation
	// keeps working through indefinite scheduler loss. SchedSvc remains
	// as a thin facade whose fault switches fan out to the shard set.
	ControlPlane bool
	// CtrlConfig tunes the control plane (zero values take defaults).
	CtrlConfig ctrlplane.Config

	// DedicatedUplinkBps overrides each dedicated node's uplink capacity
	// (default 10 Gbps). Peak-hour experiments constrain it so that CDN
	// bandwidth pressure — the condition RLive relieves — actually
	// occurs.
	DedicatedUplinkBps float64

	// FallbackThresholdMs overrides the client fallback threshold.
	FallbackThresholdMs float64
	// ClientTune hooks client configs before creation.
	ClientTune func(*client.Config)
	// ClientLinkTune hooks each client's access-link model after the
	// default last-mile parameters (including fade episodes) are set —
	// experiments use it to harden or disable the last mile.
	ClientLinkTune func(*simnet.LinkState)
	// EdgeTune hooks edge configs before creation.
	EdgeTune func(*edge.Config)
	// SchedulerConfig tunes the global scheduler.
	SchedulerConfig scheduler.Config
	// AdvisersEnabled turns on edge proactive triggers (default true via
	// setDefaults; set AdvisersDisabled to turn off).
	AdvisersDisabled bool
	// LifespanMedian overrides fleet churn speed (for short experiments).
	LifespanMedian time.Duration
	// Trace, when set, records frame-lifecycle events from every component
	// of this system into the given per-run trace. nil (the default) keeps
	// all hooks on the zero-cost path.
	Trace *trace.Run
	// Telemetry, when set, registers instruments from every component on
	// this registry and scrapes them into a timeline every
	// TelemetryScrapeEvery of sim time. nil (the default) keeps all hooks
	// on the zero-cost path.
	Telemetry *telemetry.Registry
	// TelemetryScrapeEvery is the scrape cadence (default 5 s of sim time).
	TelemetryScrapeEvery time.Duration
	// Alerting, when set together with Telemetry, subscribes the SLO alert
	// engine to the registry's scrape timeline: rules evaluate at every
	// scrape instant, on the simulator thread. nil (the default) keeps the
	// hook on the zero-cost path.
	Alerting *alerting.Engine
	// Profile, when set, attaches the engine self-profiler to this
	// system's event loop (per-event-kind cost accounting). Observe-only:
	// it reads the wall clock and writes its own slabs, so run output is
	// byte-identical with or without it. nil (the default) keeps the
	// dispatch hook on the zero-cost path.
	Profile *profile.Prof
}

func (c *Config) setDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NumDedicated == 0 {
		c.NumDedicated = 2
	}
	if c.NumBestEffort == 0 {
		c.NumBestEffort = 32
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.Mode == client.ModeSingleSource {
		c.K = 1
	}
	if c.Redundancy == 0 {
		c.Redundancy = 1
	}
	if len(c.Streams) == 0 {
		c.Streams = []media.SourceConfig{{Stream: 1, FPS: 30, BitrateBps: 2e6}}
	}
	if c.TelemetryScrapeEvery == 0 {
		c.TelemetryScrapeEvery = 5 * time.Second
	}
}

// System is a runnable RLive deployment.
type System struct {
	Cfg   Config
	Sim   *simnet.Sim
	Net   *simnet.Network
	RNG   *stats.RNG
	Fleet *fleet.Fleet

	Sched    *scheduler.Scheduler
	SchedSvc *SchedService
	SeqSrv   *SeqServer

	// Ctrl and ShardSvcs are set when Cfg.ControlPlane is on: the
	// distributed control plane and the per-shard scheduler services
	// sharing the shard addresses.
	Ctrl      *ctrlplane.Plane
	ShardSvcs []*SchedService

	CDN     []*cdnHandle
	Edges   map[simnet.Addr]*edge.Node
	Clients []*client.Client

	streamHost   map[media.StreamID]simnet.Addr
	nextClient   simnet.Addr
	natPair      map[uint64]bool
	natFlap      bool
	tmPunchFail  *telemetry.Counter
	clientRegion map[simnet.Addr]int
	clientRNG    *stats.RNG
}

// cdnHandle pairs a CDN node with its address.
type cdnHandle struct {
	Node *cdn.Node
	Addr simnet.Addr
}

// NewSystem builds the deployment: network, fleet (registered on the
// scheduler), CDN nodes hosting the configured streams, edge logic attached
// to every best-effort node, and the control-plane services.
func NewSystem(cfg Config) *System {
	cfg.setDefaults()
	rng := stats.NewRNG(cfg.Seed)
	sim := simnet.NewSim()
	sim.SetProfile(cfg.Profile)
	net := simnet.NewNetwork(sim, rng.Fork())

	s := &System{
		Cfg:          cfg,
		Sim:          sim,
		Net:          net,
		RNG:          rng,
		Edges:        make(map[simnet.Addr]*edge.Node),
		streamHost:   make(map[media.StreamID]simnet.Addr),
		nextClient:   fleet.AddrClientBase,
		natPair:      make(map[uint64]bool),
		clientRegion: make(map[simnet.Addr]int),
		clientRNG:    rng.Fork(),
	}

	// Scheduler endpoint.
	schedAddr := simnet.Addr(fleet.AddrSchedulerBase)
	net.Register(schedAddr, simnet.LinkState{UplinkBps: 100e9, BaseOWD: 10 * time.Millisecond}, nil)
	scfg := cfg.SchedulerConfig
	scfg.RefinedNAT = cfg.RefinedNAT
	s.Sched = scheduler.New(scfg, rng.Fork(), func() time.Duration { return sim.Now() })
	s.SchedSvc = NewSchedService(schedAddr, s.Sched, sim, net)
	net.SetHandler(schedAddr, s.SchedSvc.Handle)
	// Trace buffers: Buffer on a nil Run returns the nil (disabled) Buf, so
	// this wiring is free when tracing is off.
	traceNow := func() int64 { return int64(sim.Now()) }
	s.Sched.SetTrace(cfg.Trace.Buffer(trace.CompSched, uint32(schedAddr), traceNow))
	// Telemetry instruments: every Set/register call below is nil-safe (a
	// nil registry hands out nil instruments whose hooks are free).
	net.SetTelemetry(cfg.Telemetry)
	s.Sched.SetTelemetry(cfg.Telemetry)
	s.SchedSvc.SetTelemetry(cfg.Telemetry)
	s.tmPunchFail = cfg.Telemetry.Counter("nat.punch_fail")

	// Fleet.
	s.Fleet = fleet.New(fleet.Config{
		NumDedicated:   cfg.NumDedicated,
		NumBestEffort:  cfg.NumBestEffort,
		Regions:        cfg.Regions,
		ISPs:           cfg.ISPs,
		ChurnEnabled:   cfg.ChurnEnabled,
		RefinedNAT:     cfg.RefinedNAT,
		LifespanMedian: cfg.LifespanMedian,
	}, rng, sim, net)
	s.Fleet.SetTelemetry(cfg.Telemetry)

	// CDN nodes host streams round-robin.
	if cfg.DedicatedUplinkBps > 0 {
		for _, n := range s.Fleet.Dedicated {
			n.UplinkBps = cfg.DedicatedUplinkBps
			net.UpdateState(n.Addr, func(st *simnet.LinkState) {
				st.UplinkBps = cfg.DedicatedUplinkBps
			})
		}
	}
	for _, n := range s.Fleet.Dedicated {
		h := &cdnHandle{Node: cdn.New(n.Addr, sim, net, rng.Fork()), Addr: n.Addr}
		h.Node.SetTrace(cfg.Trace.Buffer(trace.CompCDN, uint32(n.Addr), traceNow))
		net.SetHandler(n.Addr, h.Node.Handle)
		s.CDN = append(s.CDN, h)
	}
	for i, sc := range cfg.Streams {
		host := s.CDN[i%len(s.CDN)]
		if len(cfg.ABRLadder) > 0 {
			for r, bps := range cfg.ABRLadder {
				vc := sc
				vc.Stream = VariantID(sc.Stream, r)
				vc.BitrateBps = bps
				host.Node.HostStream(vc, cfg.K)
				s.streamHost[vc.Stream] = host.Addr
			}
		} else {
			host.Node.HostStream(sc, cfg.K)
		}
		s.streamHost[sc.Stream] = host.Addr
	}

	// Distributed control plane: one scheduler shard per region, each
	// with its own scheduler instance and forked RNG, reachable at the
	// shard address range on the backbone. A combined handler splits
	// shard traffic between the ctrlplane shard (snapshot/gossip
	// messages) and a per-shard SchedService (heartbeats, candidate
	// requests). Everything here is gated so a ControlPlane=false system
	// is draw-for-draw identical to one built before this feature.
	if cfg.ControlPlane {
		ccfg := cfg.CtrlConfig
		ccfg.Regions = s.Fleet.Config().Regions
		s.Ctrl = ctrlplane.New(ccfg, sim, net)
		ctrlRNG := rng.Fork()
		for r := 0; r < ccfg.Regions; r++ {
			shardSched := scheduler.New(scfg, ctrlRNG.Fork(), func() time.Duration { return sim.Now() })
			sh := s.Ctrl.AddShard(shardSched, ctrlRNG.Fork())
			net.Register(sh.Addr, simnet.LinkState{UplinkBps: 100e9, BaseOWD: 10 * time.Millisecond}, nil)
			svc := NewSchedService(sh.Addr, shardSched, sim, net)
			// Shared counter/histogram names are idempotent; the shard
			// scheduler itself gets no telemetry (its gauge funcs would
			// clobber the facade scheduler's).
			svc.SetTelemetry(cfg.Telemetry)
			s.ShardSvcs = append(s.ShardSvcs, svc)
			net.SetHandler(sh.Addr, func(from simnet.Addr, msg any) {
				if ctrlplane.IsCtrlMsg(msg) {
					sh.Handle(from, msg)
					return
				}
				svc.Handle(from, msg)
			})
		}
		s.Ctrl.SetTelemetry(cfg.Telemetry)
		s.SchedSvc.AttachPlane(s.Ctrl, s.ShardSvcs)
	}

	// Edge logic on best-effort nodes; scheduler registration honours
	// the TopPercent restriction (the strawman's "top 1%").
	pool := s.Fleet.BestEffort
	if cfg.TopPercent > 0 {
		pool = s.Fleet.TopPercentByQuality(cfg.TopPercent)
	}
	inPool := make(map[simnet.Addr]bool, len(pool))
	for _, n := range pool {
		inPool[n.Addr] = true
	}
	for _, n := range s.Fleet.BestEffort {
		ecfg := edge.Config{
			CDN:               s.CDN[0].Addr,
			CDNRouter:         s.cdnRouter,
			Scheduler:         schedAddr,
			SessionQuota:      n.SessionQuota,
			HeartbeatsEnabled: true,
			AdviserEnabled:    !cfg.AdvisersDisabled,
		}
		if cfg.EdgeTune != nil {
			cfg.EdgeTune(&ecfg)
		}
		if s.Ctrl != nil {
			// Heartbeats and snapshot pushes go through the region's
			// shard; the LKG cache keeps the edge autonomous when the
			// shard set dies.
			ecfg.Scheduler = s.Ctrl.ShardAddr(n.Region)
			ecfg.LKG = s.Ctrl.NewLKG(n.Region, n.Addr)
			s.Ctrl.RegisterEdge(n.Region, n.Addr)
		}
		en := edge.New(n.Addr, ecfg, sim, net, rng.Fork())
		en.SetTrace(cfg.Trace.Buffer(trace.CompEdge, uint32(n.Addr), traceNow))
		en.SetTelemetry(cfg.Telemetry)
		for _, sc := range cfg.Streams {
			en.SetSubstreamCount(sc.Stream, cfg.K)
			for r := range cfg.ABRLadder {
				en.SetSubstreamCount(VariantID(sc.Stream, r), cfg.K)
			}
		}
		net.SetHandler(n.Addr, en.Handle)
		en.Start()
		s.Edges[n.Addr] = en
		if inPool[n.Addr] {
			s.Sched.RegisterNode(n.Addr, scheduler.StaticFeatures{
				Region:   n.Region,
				ISP:      n.ISP,
				NAT:      n.NAT,
				HighQ:    n.HighQ,
				ConnTyp:  n.ConnTyp,
				Class:    uint8(n.Class),
				CostUnit: n.Cost,
			}, n.SessionQuota)
			if s.Ctrl != nil {
				s.Ctrl.RegisterNode(n.Addr, scheduler.StaticFeatures{
					Region:   n.Region,
					ISP:      n.ISP,
					NAT:      n.NAT,
					HighQ:    n.HighQ,
					ConnTyp:  n.ConnTyp,
					Class:    uint8(n.Class),
					CostUnit: n.Cost,
				}, n.SessionQuota)
			}
		}
	}
	if s.Ctrl != nil {
		s.Ctrl.Start()
	}

	// Centralized sequencing service (Table 3 baseline): a single
	// high-quality best-effort node acts as the super node.
	if cfg.CentralSequencing {
		seqAddr := simnet.Addr(fleet.AddrSchedulerBase + 1)
		// A super node is a good best-effort box, not a datacenter
		// server: generous but finite uplink, degradation episodes, and
		// outright failures — §7.3.2: "super node failures caused
		// significant delays in recovering sequence chains".
		net.Register(seqAddr, simnet.LinkState{
			UplinkBps: 200e6, BaseOWD: 5 * time.Millisecond,
			MeanDegradedEvery: 30 * time.Second, MeanDegradedFor: 3 * time.Second,
			DegradedExtraOWD: 150 * time.Millisecond, DegradedLoss: 0.15,
		}, nil)
		outageRNG := rng.Fork()
		var scheduleOutage func()
		scheduleOutage = func() {
			up := time.Duration(outageRNG.Exponential(float64(45 * time.Second)))
			sim.After(up, func() {
				net.SetOnline(seqAddr, false)
				down := time.Duration(outageRNG.Exponential(float64(6 * time.Second)))
				sim.After(down, func() {
					net.SetOnline(seqAddr, true)
					// The restarted super node lost its chain
					// state and must rebuild from the CDN feed.
					for _, sc := range cfg.Streams {
						if len(cfg.ABRLadder) > 0 {
							for r := range cfg.ABRLadder {
								v := VariantID(sc.Stream, r)
								s.SeqSrv.Follow(s.streamHost[v], v)
							}
						} else {
							s.SeqSrv.Follow(s.streamHost[sc.Stream], sc.Stream)
						}
					}
					scheduleOutage()
				})
			})
		}
		scheduleOutage()
		s.SeqSrv = NewSeqServer(seqAddr, sim, net)
		net.SetHandler(seqAddr, s.SeqSrv.Handle)
		for _, sc := range cfg.Streams {
			if len(cfg.ABRLadder) > 0 {
				for r := range cfg.ABRLadder {
					v := VariantID(sc.Stream, r)
					s.SeqSrv.Follow(s.streamHost[v], v)
				}
			} else {
				s.SeqSrv.Follow(s.streamHost[sc.Stream], sc.Stream)
			}
		}
	}

	// Region-distance propagation.
	net.InterRegionOWD = s.interRegionOWD
	// CDN→relay backhaul is prioritized: one substream feed serves many
	// viewers, so the operator protects it from direct-viewer congestion
	// on the origin uplink.
	net.Priority = func(src, dst simnet.Addr) bool {
		return src >= fleet.AddrDedicatedBase && src < fleet.AddrBestEffBase &&
			dst >= fleet.AddrBestEffBase && dst < fleet.AddrClientBase
	}

	// System-level gauges and the scrape clock. GaugeFuncs are evaluated at
	// scrape time and must be deterministic: every scan below walks a slice
	// (never a map) so serial and parallel runs serialize identically.
	if cfg.Telemetry != nil {
		reg := cfg.Telemetry
		reg.GaugeFunc("net.inflight", func() float64 { return float64(sim.InFlight()) })
		reg.GaugeFunc("fleet.online_frac", func() float64 {
			return s.onlineFraction(-1)
		})
		reg.PerRegionGaugeFunc("fleet.online_frac", s.Fleet.Config().Regions, func(region int) float64 {
			return s.onlineFraction(region)
		})
		if s.Ctrl != nil {
			ctrl := s.Ctrl
			online := func(a simnet.Addr) bool { return s.Net.Online(a) }
			reg.GaugeFunc("ctrl.shard_diverge", func() float64 {
				return float64(ctrl.MaxEpochLag())
			})
			reg.GaugeFunc("ctrl.lkg_age_ms", func() float64 {
				return ctrl.MinLKGAgeMs(online, -1)
			})
			reg.PerRegionGaugeFunc("ctrl.shard_diverge", s.Fleet.Config().Regions, func(region int) float64 {
				return float64(ctrl.EpochLag(region))
			})
			reg.PerRegionGaugeFunc("ctrl.lkg_age_ms", s.Fleet.Config().Regions, func(region int) float64 {
				return ctrl.MinLKGAgeMs(online, region)
			})
		}
		reg.GaugeFunc("chain.pending", func() float64 {
			n := 0
			for _, c := range s.Clients {
				n += c.PendingChains()
			}
			return float64(n)
		})
		reg.GaugeFunc("edge.gamma", func() float64 {
			var sum float64
			var n int
			for _, nd := range s.Fleet.BestEffort {
				en := s.Edges[nd.Addr]
				if en == nil || en.BytesBackward == 0 {
					continue
				}
				var ta metrics.TrafficAccount
				ta.ServingBytes = float64(en.BytesServed)
				ta.BackwardBytes = float64(en.BytesBackward)
				sum += ta.ExpansionRate()
				n++
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		})
		sim.Every(cfg.TelemetryScrapeEvery, func() bool {
			reg.Scrape(int64(sim.Now()))
			return true
		})
	}
	// Alert engine last, so its rules see every instrument registered
	// above at the first scrape. Nil-safe on both sides.
	cfg.Alerting.Attach(cfg.Telemetry)
	return s
}

// ControlMsgs returns the cumulative control-plane message count: the
// facade service's traffic plus — with the distributed control plane —
// shard-service traffic and shard snapshot/gossip traffic. This is the
// quantity the ctrl-scale experiment measures across fleet sizes.
func (s *System) ControlMsgs() uint64 {
	n := s.SchedSvc.Msgs
	for _, svc := range s.ShardSvcs {
		n += svc.Msgs
	}
	n += s.Ctrl.CtrlMsgs()
	return n
}

// onlineFraction is the fraction of best-effort nodes currently online —
// fleet-wide, or within one region when region >= 0. Walks the BestEffort
// slice (never a map) so scrape-time evaluation is deterministic.
func (s *System) onlineFraction(region int) float64 {
	online, total := 0, 0
	for _, n := range s.Fleet.BestEffort {
		if region >= 0 && n.Region != region {
			continue
		}
		total++
		if s.Net.Online(n.Addr) {
			online++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(online) / float64(total)
}

// VariantID returns the stream ID of the rung-th ABR variant of a base
// stream. Base IDs must stay below 2^24.
func VariantID(base media.StreamID, rung int) media.StreamID {
	return base*16 + media.StreamID(rung)
}

// Variants lists the variant stream IDs of a base stream, lowest bitrate
// first, or nil when no ladder is configured.
func (s *System) Variants(base media.StreamID) []media.StreamID {
	if len(s.Cfg.ABRLadder) == 0 {
		return nil
	}
	out := make([]media.StreamID, len(s.Cfg.ABRLadder))
	for r := range s.Cfg.ABRLadder {
		out[r] = VariantID(base, r)
	}
	return out
}

// cdnRouter returns the dedicated node hosting a stream.
func (s *System) cdnRouter(id media.StreamID) simnet.Addr {
	if a, ok := s.streamHost[id]; ok {
		return a
	}
	return s.CDN[0].Addr
}

// interRegionOWD adds propagation distance between endpoints' regions.
func (s *System) interRegionOWD(a, b simnet.Addr) time.Duration {
	ra, rb := s.regionOf(a), s.regionOf(b)
	d := ra - rb
	if d < 0 {
		d = -d
	}
	return time.Duration(d) * 4 * time.Millisecond
}

// regionOf maps an address to a region: fleet nodes carry one; clients are
// assigned on creation.
func (s *System) regionOf(a simnet.Addr) int {
	if n := s.Fleet.Node(a); n != nil {
		return n.Region
	}
	if r, ok := s.clientRegion[a]; ok {
		return r
	}
	return 0
}

// RegionOf exposes the address→region mapping for fault-injection scoping
// (region blackouts, partitions, degradation waves).
func (s *System) RegionOf(a simnet.Addr) int { return s.regionOf(a) }

package core

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/media"
)

func run(t *testing.T, cfg Config, clients int, d time.Duration) *System {
	t.Helper()
	s := NewSystem(cfg)
	s.Start()
	// Stagger client joins slightly for realism.
	for i := 0; i < clients; i++ {
		s.AddClient(ClientSpec{Region: i % 4, ISP: i % 2})
		s.Run(200 * time.Millisecond)
	}
	s.Run(d)
	return s
}

func TestRLiveSystemEndToEnd(t *testing.T) {
	s := run(t, Config{Seed: 7, NumBestEffort: 24, Mode: client.ModeRLive,
		ClientLinkTune: cleanLastMile}, 4, 30*time.Second)
	agg := s.Aggregate()
	if agg.Sessions != 4 {
		t.Fatalf("sessions = %d", agg.Sessions)
	}
	for i, c := range s.Clients {
		if c.QoE.FramesPlayed < 500 {
			t.Fatalf("client %d played only %d frames", i, c.QoE.FramesPlayed)
		}
	}
	// Most delivery should come from best-effort nodes once engaged.
	_, be := s.ServedBytes()
	if be == 0 {
		t.Fatal("no best-effort traffic in RLive mode")
	}
	// Best-effort nodes remain inherently unstable (degradation
	// episodes) even with a clean last mile; a stall every ~30 s of
	// session is within expectation, sustained stalling is not.
	if agg.Rebuffer.Percentile(50) > 8 {
		t.Fatalf("median rebuffers/100s = %.1f on a mostly-clean network", agg.Rebuffer.Percentile(50))
	}
}

func TestCDNOnlySystem(t *testing.T) {
	s := run(t, Config{Seed: 7, NumBestEffort: 8, Mode: client.ModeCDNOnly}, 3, 20*time.Second)
	_, be := s.ServedBytes()
	if be != 0 {
		t.Fatalf("best-effort traffic in CDN-only mode: %.0f bytes", be)
	}
	for _, c := range s.Clients {
		if c.QoE.FramesPlayed < 400 {
			t.Fatalf("cdn-only client played %d frames", c.QoE.FramesPlayed)
		}
	}
}

func TestSingleSourceSystem(t *testing.T) {
	s := run(t, Config{Seed: 7, NumBestEffort: 32, Mode: client.ModeSingleSource, TopPercent: 0.1}, 3, 20*time.Second)
	if s.Cfg.K != 1 {
		t.Fatalf("single-source K = %d", s.Cfg.K)
	}
	for _, c := range s.Clients {
		if c.QoE.FramesPlayed < 300 {
			t.Fatalf("single-source client played %d frames", c.QoE.FramesPlayed)
		}
	}
}

func TestExpansionRatesPositive(t *testing.T) {
	s := run(t, Config{Seed: 9, NumBestEffort: 24, Mode: client.ModeRLive}, 6, 30*time.Second)
	rates := s.ExpansionRates()
	if rates.N() == 0 {
		t.Fatal("no expansion rates recorded")
	}
	if rates.Percentile(100) <= 0 {
		t.Fatal("expansion rate not positive")
	}
}

func TestEqTAccounting(t *testing.T) {
	s := run(t, Config{Seed: 9, NumBestEffort: 16, Mode: client.ModeRLive}, 2, 15*time.Second)
	if s.EqT() <= 0 {
		t.Fatal("EqT not accumulated")
	}
	ded, be := s.ServedBytes()
	if s.EqT() >= ded+be {
		t.Fatal("EqT should be below raw bytes (best-effort discount)")
	}
}

func TestChurnSurvival(t *testing.T) {
	s := NewSystem(Config{
		Seed: 11, NumBestEffort: 24, Mode: client.ModeRLive,
		ChurnEnabled: true, LifespanMedian: 90 * time.Second,
	})
	s.Start()
	for i := 0; i < 3; i++ {
		s.AddClient(ClientSpec{Region: i})
	}
	s.Run(60 * time.Second)
	for i, c := range s.Clients {
		// 60s at 30fps = 1800 frames; allow sizable churn losses but
		// demand sustained playback.
		if c.QoE.FramesPlayed < 1000 {
			t.Fatalf("client %d played %d frames under churn", i, c.QoE.FramesPlayed)
		}
	}
}

func TestCentralSequencingMode(t *testing.T) {
	s := run(t, Config{Seed: 13, NumBestEffort: 16, Mode: client.ModeRLive, CentralSequencing: true}, 2, 20*time.Second)
	if s.SeqSrv == nil || s.SeqSrv.Queries == 0 {
		t.Fatal("sequencing server unused")
	}
	for _, c := range s.Clients {
		if c.QoE.FramesPlayed < 300 {
			t.Fatalf("central-seq client played %d frames", c.QoE.FramesPlayed)
		}
	}
}

func TestSchedulerIntegration(t *testing.T) {
	s := run(t, Config{Seed: 15, NumBestEffort: 16, Mode: client.ModeRLive}, 2, 20*time.Second)
	if s.Sched.Requests == 0 {
		t.Fatal("scheduler never queried")
	}
	if s.Sched.Heartbeats == 0 {
		t.Fatal("no heartbeats ingested")
	}
	if s.Sched.RecLatency.N() == 0 {
		t.Fatal("no recommendation latency recorded")
	}
}

func TestMultipleStreams(t *testing.T) {
	cfg := Config{
		Seed:          17,
		NumDedicated:  2,
		NumBestEffort: 24,
		Mode:          client.ModeRLive,
		Streams: []media.SourceConfig{
			{Stream: 1, FPS: 30, BitrateBps: 2e6},
			{Stream: 2, FPS: 30, BitrateBps: 1e6},
		},
	}
	s := NewSystem(cfg)
	s.Start()
	c1 := s.AddClient(ClientSpec{Stream: 1})
	c2 := s.AddClient(ClientSpec{Stream: 2})
	s.Run(20 * time.Second)
	if c1.QoE.FramesPlayed < 300 || c2.QoE.FramesPlayed < 300 {
		t.Fatalf("multi-stream playback: %d / %d", c1.QoE.FramesPlayed, c2.QoE.FramesPlayed)
	}
	// Stream 2's bitrate should be about half of stream 1's.
	b1, b2 := c1.QoE.MeanBitrate(), c2.QoE.MeanBitrate()
	if b2 >= b1 {
		t.Fatalf("bitrates: stream1=%.0f stream2=%.0f", b1, b2)
	}
}

func TestSystemDeterminism(t *testing.T) {
	snapshot := func() (int, float64, uint64) {
		s := run(t, Config{Seed: 21, NumBestEffort: 16, Mode: client.ModeRLive, ChurnEnabled: true,
			LifespanMedian: 2 * time.Minute}, 3, 20*time.Second)
		var frames int
		var stalled float64
		for _, c := range s.Clients {
			frames += c.QoE.FramesPlayed
			stalled += c.QoE.StalledMs
		}
		return frames, stalled, s.Net.Delivered
	}
	f1, s1, d1 := snapshot()
	f2, s2, d2 := snapshot()
	if f1 != f2 || s1 != s2 || d1 != d2 {
		t.Fatalf("nondeterministic: (%d,%.1f,%d) vs (%d,%.1f,%d)", f1, s1, d1, f2, s2, d2)
	}
}

func TestRedundantModeCostsMore(t *testing.T) {
	base := run(t, Config{Seed: 23, NumBestEffort: 24, Mode: client.ModeRLive}, 3, 20*time.Second)
	red := run(t, Config{Seed: 23, NumBestEffort: 24, Mode: client.ModeRLive, Redundancy: 2}, 3, 20*time.Second)
	_, beBase := base.ServedBytes()
	_, beRed := red.ServedBytes()
	if beRed < beBase*13/10 {
		t.Fatalf("redundant mode should move noticeably more best-effort bytes: %.0f vs %.0f", beRed, beBase)
	}
}

func TestStopClientsReleasesSessions(t *testing.T) {
	s := run(t, Config{Seed: 25, NumBestEffort: 16, Mode: client.ModeRLive}, 3, 15*time.Second)
	s.StopClients()
	s.Run(5 * time.Second)
	for addr, e := range s.Edges {
		if e.Sessions() != 0 {
			t.Fatalf("edge %v still holds sessions", addr)
		}
	}
}

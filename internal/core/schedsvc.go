// Package core wires RLive's components — synthetic fleet, simulated
// network, global scheduler, dedicated CDN nodes, best-effort edge nodes,
// and clients — into a runnable deployment, with the delivery-mode switches
// the paper's evaluation compares (RLive multi-source, the single-source
// strawman, CDN-only, redundant multi-source, centralized sequencing).
package core

import (
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// SchedService exposes a scheduler.Scheduler over simulated network
// messages: heartbeats in, candidate recommendations (with modeled
// processing latency) out, plus node-failure reports and the cost-trigger's
// stream-utilization double-check.
type SchedService struct {
	Addr  simnet.Addr
	Sched *scheduler.Scheduler
	sim   *simnet.Sim
	net   *simnet.Network

	// InvalidTracker counts candidates that turned out unusable, feeding
	// Fig 12b. A recommendation is "invalid" when the client reports the
	// node failed.
	Recommended uint64
	Reported    uint64

	// outage simulates a full control-plane failure: every inbound
	// message is silently discarded, so heartbeats go stale and
	// candidate requests never answer. The data plane must survive on
	// last-known-good state.
	outage bool
	// extraLatency models a slow (overloaded) scheduler: it is added to
	// the modeled processing latency of each recommendation.
	extraLatency time.Duration
	// OutageDropped counts messages discarded while in outage.
	OutageDropped uint64

	// Msgs counts messages processed (same events as tmMsgs, readable
	// without a registry — the ctrl-scale experiment's rate source).
	Msgs uint64

	// plane and shardSvcs are set when this service is the thin facade
	// over the distributed control plane: fault switches fan out to the
	// shard set so the whole control plane dies and revives as one.
	plane     *ctrlplane.Plane
	shardSvcs []*SchedService

	// tmMsgs counts control-plane messages actually processed (dropped
	// outage traffic excluded, so the rate hitting zero IS the outage
	// signal); tmRespMs observes the modeled recommendation latency
	// including any injected slowdown.
	tmMsgs   *telemetry.Counter
	tmRespMs *telemetry.Histogram
}

// SetTelemetry registers the service's instruments on reg (nil-safe).
func (s *SchedService) SetTelemetry(reg *telemetry.Registry) {
	s.tmMsgs = reg.Counter("sched.msgs")
	s.tmRespMs = reg.Histogram("sched.resp_ms",
		[]float64{10, 20, 40, 60, 80, 100, 150, 200, 300, 500, 800})
}

// SetOutage turns full control-plane failure on or off. During an outage
// the service drops all inbound messages (counted in OutageDropped). On
// the facade it also kills the attached shard set and plane, so
// sched-outage means total control-plane death and the data plane must
// live off last-known-good snapshots.
func (s *SchedService) SetOutage(down bool) {
	s.outage = down
	for _, svc := range s.shardSvcs {
		svc.SetOutage(down)
	}
	s.plane.SetDown(down)
}

// Outage reports whether the service is in an injected outage.
func (s *SchedService) Outage() bool { return s.outage }

// SetExtraLatency adds delay to every recommendation response, modeling a
// degraded-but-alive scheduler. Zero restores normal speed. On the facade
// it fans out to the shard services.
func (s *SchedService) SetExtraLatency(d time.Duration) {
	s.extraLatency = d
	for _, svc := range s.shardSvcs {
		svc.SetExtraLatency(d)
	}
}

// AttachPlane makes this service the facade over a distributed control
// plane: outage and slowdown switches fan out to every shard service and
// to the plane itself.
func (s *SchedService) AttachPlane(p *ctrlplane.Plane, shardSvcs []*SchedService) {
	s.plane = p
	s.shardSvcs = shardSvcs
}

// DroppedMsgs returns control-plane messages discarded during outages,
// across the facade and (when attached) the shard set and plane.
func (s *SchedService) DroppedMsgs() uint64 {
	n := s.OutageDropped
	for _, svc := range s.shardSvcs {
		n += svc.OutageDropped
	}
	n += s.plane.Dropped()
	return n
}

// NewSchedService creates the service; register svc.Handle as the handler
// for addr.
func NewSchedService(addr simnet.Addr, sched *scheduler.Scheduler, sim *simnet.Sim, net *simnet.Network) *SchedService {
	return &SchedService{Addr: addr, Sched: sched, sim: sim, net: net}
}

// Handle processes control-plane messages.
func (s *SchedService) Handle(from simnet.Addr, msg any) {
	if s.outage {
		s.OutageDropped++
		return
	}
	s.Msgs++
	s.tmMsgs.Inc()
	switch m := msg.(type) {
	case *scheduler.Heartbeat:
		s.Sched.Ingest(*m)
	case *transport.CandidateReq:
		info := m.Client
		if info.Addr == 0 {
			info.Addr = from
		}
		cands, lat := s.Sched.Recommend(m.Key, info)
		s.Recommended += uint64(len(cands))
		resp := &transport.CandidateResp{Key: m.Key, Candidates: cands}
		// The modeled processing latency delays the response; the
		// network adds its own RTT on top, reproducing the Fig 12a
		// recommendation-time distribution end to end.
		lat += s.extraLatency
		s.tmRespMs.Observe(float64(lat) / 1e6)
		s.sim.After(lat, func() {
			s.net.Send(s.Addr, from, transport.WireSize(resp), resp)
		})
	case *transport.NodeFailureReport:
		s.Sched.ReportFailure(m.Node)
		s.Reported++
	case *transport.StreamUtilReq:
		util, n := s.Sched.StreamUtilization(m.Key)
		resp := &transport.StreamUtilResp{Key: m.Key, Util: util, N: n}
		s.net.Send(s.Addr, from, transport.WireSize(resp), resp)
	}
}

// InvalidFraction estimates the fraction of recommended nodes later
// reported invalid (Fig 12b).
func (s *SchedService) InvalidFraction() float64 {
	if s.Recommended == 0 {
		return 0
	}
	return float64(s.Reported) / float64(s.Recommended)
}

package core

import (
	"time"

	"repro/internal/client"
	"repro/internal/fleet"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/nat"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// ClientSpec customizes one viewer session.
type ClientSpec struct {
	Stream media.StreamID
	Region int
	ISP    int
	// Mode overrides the system mode when >= 0 (cast from client.Mode).
	ModeOverride *client.Mode
}

// AddClient creates, registers and starts one viewer session.
func (s *System) AddClient(spec ClientSpec) *client.Client {
	if spec.Stream == 0 {
		spec.Stream = s.Cfg.Streams[0].Stream
	}
	addr := s.nextClient
	s.nextClient++
	s.clientRegion[addr] = spec.Region

	// Access link: typical consumer last mile — mostly clean, with
	// occasional short degradation episodes (radio fades, Wi-Fi
	// contention) so even dedicated-CDN delivery sees realistic,
	// nonzero rebuffering.
	s.Net.Register(addr, simnet.LinkState{
		UplinkBps: 50e6,
		BaseOWD:   time.Duration(2+s.clientRNG.IntN(6)) * time.Millisecond,
		LossRate:  0.001,
		JitterStd: 2 * time.Millisecond,
		MaxQueue:  300 * time.Millisecond,
		// Episodes model radio fades / Wi-Fi contention: short windows
		// of near-outage. These hit every delivery mode equally — the
		// control group's nonzero rebuffering baseline. The rate is
		// time-compressed (like churn) so sub-minute experiment runs
		// sample them.
		MeanDegradedEvery: time.Duration(45+s.clientRNG.IntN(60)) * time.Second,
		MeanDegradedFor:   1500 * time.Millisecond,
		DegradedExtraOWD:  150 * time.Millisecond,
		DegradedLoss:      0.85,
	}, nil)
	if s.Cfg.ClientLinkTune != nil {
		s.Net.UpdateState(addr, s.Cfg.ClientLinkTune)
	}

	mode := s.Cfg.Mode
	if spec.ModeOverride != nil {
		mode = *spec.ModeOverride
	}
	interval := time.Second / 30
	for _, sc := range s.Cfg.Streams {
		if sc.Stream == spec.Stream && sc.FPS > 0 {
			interval = time.Second / time.Duration(sc.FPS)
		}
	}
	// With an ABR ladder, the client consumes a variant stream.
	startStream := spec.Stream
	variants := s.Variants(spec.Stream)
	if len(variants) > 0 {
		r := s.Cfg.ABRStartRung
		switch {
		case r < 0:
			r = 0 // conservative startup: lowest rung
		case r == 0 || r >= len(variants):
			r = len(variants) - 1 // default: top rung
		}
		startStream = variants[r]
	}
	host := s.cdnRouter(startStream)
	ccfg := client.Config{
		Stream:        startStream,
		Variants:      variants,
		K:             s.Cfg.K,
		FrameInterval: interval,
		CDN:           host,
		Scheduler:     simnet.Addr(fleet.AddrSchedulerBase),
		Info:          scheduler.ClientInfo{Addr: addr, Region: spec.Region, ISP: spec.ISP},
		Mode:          mode,
		Redundancy:    s.Cfg.Redundancy,
		CanConnect:    func(edge simnet.Addr) bool { return s.CanConnect(addr, edge) },
	}
	if s.Cfg.FallbackThresholdMs > 0 {
		ccfg.FallbackThresholdMs = s.Cfg.FallbackThresholdMs
	}
	if s.Ctrl != nil {
		// Candidate requests and snapshot refreshes go to the region's
		// shard; the LKG cache answers allocations locally once the
		// first snapshot lands.
		ccfg.Scheduler = s.Ctrl.ShardAddr(spec.Region)
		ccfg.LKG = s.Ctrl.NewLKG(spec.Region, addr)
	}
	if s.Cfg.CentralSequencing && s.SeqSrv != nil {
		ccfg.CentralSeq = s.SeqSrv.Addr
	}
	if s.Cfg.ClientTune != nil {
		s.Cfg.ClientTune(&ccfg)
	}
	c := client.New(addr, ccfg, s.Sim, s.Net, s.clientRNG.Fork())
	if s.Cfg.Trace != nil {
		c.SetTrace(s.Cfg.Trace)
	}
	if s.Cfg.Telemetry != nil {
		c.SetTelemetry(s.Cfg.Telemetry)
	}
	s.Net.SetHandler(addr, c.Handle)
	c.Start()
	s.Clients = append(s.Clients, c)
	return c
}

// SetNATFlap toggles an injected NAT-infrastructure fault: while active,
// hole punching to every non-public edge fails, as if the STUN/relay
// assist path is down. Memoized outcomes are not poisoned — traversal
// resumes with the pre-fault pair decisions when the flap lifts.
func (s *System) SetNATFlap(active bool) { s.natFlap = active }

// CanConnect memoizes NAT traversal outcomes per (client, edge) pair: a
// pair either punches through or it does not, stable for the session.
func (s *System) CanConnect(clientAddr, edgeAddr simnet.Addr) bool {
	if s.natFlap {
		if n := s.Fleet.Node(edgeAddr); n != nil && n.NAT != nat.Public {
			s.tmPunchFail.Inc()
			return false
		}
	}
	key := uint64(clientAddr)<<32 | uint64(edgeAddr)
	if v, ok := s.natPair[key]; ok {
		if !v {
			s.tmPunchFail.Inc()
		}
		return v
	}
	n := s.Fleet.Node(edgeAddr)
	ok := true
	if n != nil {
		ok = s.Fleet.Traverser.Connect(n.NAT)
	}
	s.natPair[key] = ok
	if !ok {
		s.tmPunchFail.Inc()
	}
	return ok
}

// Start begins frame generation on all CDN nodes. Call before or after
// adding clients; clients tolerate joining mid-stream.
func (s *System) Start() {
	for _, h := range s.CDN {
		h.Node.Start()
	}
}

// Run advances the simulation by d, then trims pooled-object capacity: the
// end of a Run call is a quiescent point (the heap already trims there, PR
// 7's capacity fix), so long multi-phase experiments hand burst-sized
// free lists back to the allocator instead of carrying them forever.
func (s *System) Run(d time.Duration) {
	s.Sim.Run(s.Sim.Now() + d)
	s.trimPools()
}

// trimPools releases oversized free-list capacity on every entity. Each
// Trim is self-gating (only fires past a capacity threshold), so calling
// it after every Run phase costs nothing in steady state.
func (s *System) trimPools() {
	for _, h := range s.CDN {
		h.Node.Trim()
	}
	for _, e := range s.Edges {
		e.Trim()
	}
	for _, c := range s.Clients {
		c.Trim()
	}
}

// StopClients ends all sessions (without advancing time).
func (s *System) StopClients() {
	for _, c := range s.Clients {
		c.Stop()
	}
}

// Aggregate collects QoE across all client sessions.
func (s *System) Aggregate() *metrics.Aggregate {
	agg := metrics.NewAggregate()
	for _, c := range s.Clients {
		agg.Absorb(c.QoE)
	}
	return agg
}

// ExpansionRates returns the traffic expansion rate γ of every best-effort
// node that moved traffic (Fig 2b / Fig 11c).
func (s *System) ExpansionRates() *stats.Sample {
	out := stats.NewSample(len(s.Edges))
	for _, n := range s.Fleet.BestEffort {
		en := s.Edges[n.Addr]
		if en == nil || en.BytesBackward == 0 {
			continue
		}
		var ta metrics.TrafficAccount
		ta.ServingBytes = float64(en.BytesServed)
		ta.BackwardBytes = float64(en.BytesBackward)
		out.Add(ta.ExpansionRate())
	}
	return out
}

// EqT computes total equivalent traffic: every node's transmitted bytes
// weighted by its unit cost (§7.1.3).
func (s *System) EqT() float64 {
	var total float64
	for _, n := range s.Fleet.Dedicated {
		total += float64(s.Net.BytesSent(n.Addr)) * n.Cost
	}
	for _, n := range s.Fleet.BestEffort {
		total += float64(s.Net.BytesSent(n.Addr)) * n.Cost
	}
	return total
}

// ServedBytes returns (dedicated, bestEffort) data-plane bytes served.
// Best-effort volume comes from the edges' serving counters so that
// control-plane chatter (heartbeats, probes) is excluded.
func (s *System) ServedBytes() (float64, float64) {
	var ded, be float64
	for _, n := range s.Fleet.Dedicated {
		ded += float64(s.Net.BytesSent(n.Addr))
	}
	for _, n := range s.Fleet.BestEffort {
		if en := s.Edges[n.Addr]; en != nil {
			be += float64(en.BytesServed)
		}
	}
	return ded, be
}

// EnergyTotals sums client energy proxies.
func (s *System) EnergyTotals() metrics.Energy {
	var e metrics.Energy
	for _, c := range s.Clients {
		e.CPUUnits += c.Energy.CPUUnits
		e.CopyBytes += c.Energy.CopyBytes
		e.RadioActiveMs += c.Energy.RadioActiveMs
		if c.Energy.MemBytesPeak > e.MemBytesPeak {
			e.MemBytesPeak = c.Energy.MemBytesPeak
		}
	}
	return e
}

// RecoveryCounters sums client recovery-path counters.
type RecoveryCounters struct {
	FastRetx        uint64
	TimeoutRetx     uint64
	DedicatedFetch  uint64
	SubstreamSwitch uint64
	FullFallbacks   uint64
	EdgeSwitches    uint64
	GapRepairs      uint64
	RetxNacks       uint64
	RetxRequests    int
	RetxSucceeded   int
}

// Recovery returns the summed recovery counters.
func (s *System) Recovery() RecoveryCounters {
	var r RecoveryCounters
	for _, c := range s.Clients {
		r.FastRetx += c.FastRetx
		r.TimeoutRetx += c.TimeoutRetx
		r.DedicatedFetch += c.DedicatedFetch
		r.SubstreamSwitch += c.SubstreamSwitch
		r.FullFallbacks += c.FullFallbacks
		r.EdgeSwitches += c.EdgeSwitches
		r.GapRepairs += c.GapRepairs
		r.RetxNacks += c.RetxNacks
		r.RetxRequests += c.QoE.RetxRequests
		r.RetxSucceeded += c.QoE.RetxSucceeded
	}
	return r
}

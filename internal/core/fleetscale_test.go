package core

import (
	"reflect"
	"testing"
	"time"
)

// TestFleetScaleWorkerIndependence is the engine-level determinism contract
// surfaced at the system level: the full merged report — counters, TTD
// histogram quantiles, and the per-second delivery timeline — must be
// identical for any shard worker count.
func TestFleetScaleWorkerIndependence(t *testing.T) {
	run := func(workers int) FleetScaleReport {
		sys := NewFleetScale(FleetScaleConfig{
			Seed:          3,
			NumBestEffort: 2000,
			Workers:       workers,
			ChurnEnabled:  true,
		})
		sys.Run(5 * time.Second)
		return sys.Report()
	}
	ref := run(1)
	if ref.ViewerFrames == 0 {
		t.Fatal("reference run delivered no viewer frames")
	}
	for _, workers := range []int{2, 4} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d report diverged:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}

// TestFleetScaleInvariants pins the QoE envelope of the workload: delivery
// ratio and time-to-display must stay within the calibrated bounds at both
// the quiet and churning configurations.
func TestFleetScaleInvariants(t *testing.T) {
	for _, churn := range []bool{false, true} {
		sys := NewFleetScale(FleetScaleConfig{
			Seed:          1,
			NumBestEffort: 3000,
			Workers:       2,
			ChurnEnabled:  churn,
		})
		sys.Run(10 * time.Second)
		rep := sys.Report()
		minRatio := 0.90
		if churn {
			minRatio = 0.87
		}
		if rep.DeliveryRatio < minRatio {
			t.Errorf("churn=%v: delivery ratio %.4f < %.2f", churn, rep.DeliveryRatio, minRatio)
		}
		if rep.TTDp50Ms > 120 {
			t.Errorf("churn=%v: TTD p50 %.1f ms > 120 ms", churn, rep.TTDp50Ms)
		}
		if rep.TTDp99Ms > 3300 {
			t.Errorf("churn=%v: TTD p99 %.1f ms > 3.3 s", churn, rep.TTDp99Ms)
		}
		if rep.Relays == 0 || rep.Viewers == 0 {
			t.Fatalf("churn=%v: degenerate role split: %d relays, %d viewers", churn, rep.Relays, rep.Viewers)
		}
		// Every measured second must see deliveries (the pumps never stop).
		for sec, n := range rep.Timeline {
			if n == 0 && sec > 0 && sec < len(rep.Timeline)-1 {
				t.Errorf("churn=%v: timeline second %d saw zero deliveries", churn, sec)
			}
		}
	}
}

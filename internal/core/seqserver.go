package core

import (
	"repro/internal/chain"
	"repro/internal/media"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// SeqServer is the centralized frame-sequencing "super node" of the
// pre-RLive design (§7.3.2, Table 3): it pulls frame order from the CDN,
// computes footprints centrally, and answers client polls. Its scalability
// and fault-tolerance problems — the reasons the paper moved to distributed
// sequencing — are exactly what the Table 3 comparison measures: a limited
// uplink that congests as pollers multiply, and total ordering loss while
// the node is offline.
type SeqServer struct {
	Addr simnet.Addr
	sim  *simnet.Sim
	net  *simnet.Network

	gens    map[media.StreamID]*chain.LocalGenerator
	recent  map[media.StreamID][]chain.Footprint
	keepFor int

	Queries uint64
}

// NewSeqServer creates the server; register Handle for addr, then call
// Follow for each stream (subscribing it to the CDN's header feed).
func NewSeqServer(addr simnet.Addr, sim *simnet.Sim, net *simnet.Network) *SeqServer {
	return &SeqServer{
		Addr:    addr,
		sim:     sim,
		net:     net,
		gens:    make(map[media.StreamID]*chain.LocalGenerator),
		recent:  make(map[media.StreamID][]chain.Footprint),
		keepFor: 90,
	}
}

// Follow subscribes the server to a stream's header feed at the CDN.
func (s *SeqServer) Follow(cdnAddr simnet.Addr, stream media.StreamID) {
	s.gens[stream] = chain.NewLocalGenerator(8)
	req := &transport.CDNSubscribeReq{Stream: stream, Substream: 0, WantHeaders: true}
	s.net.Send(s.Addr, cdnAddr, transport.WireSize(req), req)
}

// Handle processes header records and sequence queries.
func (s *SeqServer) Handle(from simnet.Addr, msg any) {
	switch m := msg.(type) {
	case *transport.CDNFrame:
		gen, ok := s.gens[m.Header.Stream]
		if !ok {
			return
		}
		count := uint16(transport.PacketsForFrame(int(m.Header.Size)))
		fp := gen.Observe(m.Header, count)
		rs := append(s.recent[m.Header.Stream], fp)
		if len(rs) > s.keepFor {
			rs = rs[len(rs)-s.keepFor:]
		}
		s.recent[m.Header.Stream] = rs
	case *transport.SeqQuery:
		s.Queries++
		rs := s.recent[m.Stream]
		// Return footprints after SinceDts, bounded; include one
		// overlapping entry so the client's TryMatch finds continuity.
		start := 0
		for i, fp := range rs {
			if fp.Dts <= m.SinceDts {
				start = i
			}
		}
		out := rs[start:]
		if len(out) > 32 {
			out = out[:32]
		}
		if len(out) == 0 {
			return
		}
		cp := make([]chain.Footprint, len(out))
		copy(cp, out)
		resp := &transport.SeqUpdate{Stream: m.Stream, Chain: cp}
		s.net.Send(s.Addr, from, transport.WireSize(resp), resp)
	}
}

package core

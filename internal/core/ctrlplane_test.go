package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/telemetry"
)

// ctrlSystem builds a distributed-control-plane deployment with clients
// spread across regions and the LKG caches primed.
func ctrlSystem(t *testing.T, seed uint64, reg *telemetry.Registry) *System {
	t.Helper()
	cfg := Config{
		Seed:          seed,
		NumBestEffort: 24,
		Regions:       4,
		Mode:          client.ModeRLive,
		ControlPlane:  true,
	}
	if reg != nil {
		cfg.Telemetry = reg
		cfg.TelemetryScrapeEvery = time.Second
	}
	s := NewSystem(cfg)
	s.Start()
	for i := 0; i < 6; i++ {
		s.AddClient(ClientSpec{Region: i % 4, ISP: i % 2})
		s.Run(200 * time.Millisecond)
	}
	return s
}

// TestControlPlaneWiring: shards come up one per region, snapshots reach
// the data plane, and allocation queries are answered from LKG caches
// rather than scheduler round trips.
func TestControlPlaneWiring(t *testing.T) {
	s := ctrlSystem(t, 41, nil)
	s.Run(20 * time.Second)
	if s.Ctrl == nil || len(s.Ctrl.Shards) != 4 || len(s.ShardSvcs) != 4 {
		t.Fatal("control plane not wired with one shard per region")
	}
	if s.Ctrl.GossipRounds() == 0 {
		t.Fatal("no gossip rounds")
	}
	if lag := s.Ctrl.MaxEpochLag(); lag > 3 {
		t.Fatalf("steady-state shard divergence %d epochs", lag)
	}
	var serves, stalls uint64
	for _, c := range s.Clients {
		serves += c.LKGServes
		stalls += c.AllocStalls
	}
	if serves == 0 {
		t.Fatal("no allocation served from a last-known-good cache")
	}
	if stalls != 0 {
		t.Fatalf("%d allocation stalls with a live control plane", stalls)
	}
}

// TestDataPlaneSurvivesShardDeath is the autonomy drill: kill the whole
// shard set mid-run, indefinitely. Clients must keep completing allocation
// and recovery decisions from their caches — zero stalls, continued
// playback — the entire time the control plane is dark.
func TestDataPlaneSurvivesShardDeath(t *testing.T) {
	s := ctrlSystem(t, 41, nil)
	s.Run(20 * time.Second)

	framesBefore := 0
	for _, c := range s.Clients {
		framesBefore += c.QoE.FramesPlayed
	}
	stallsBefore := uint64(0)
	for _, c := range s.Clients {
		stallsBefore += c.AllocStalls
	}

	s.SchedSvc.SetOutage(true)
	s.Run(45 * time.Second)

	frames := 0
	var serves, stalls uint64
	for _, c := range s.Clients {
		frames += c.QoE.FramesPlayed
		serves += c.LKGServes
		stalls += c.AllocStalls
	}
	if stalls != stallsBefore {
		t.Fatalf("%d new allocation stalls during total shard death", stalls-stallsBefore)
	}
	if serves == 0 {
		t.Fatal("no LKG-served allocations")
	}
	played := frames - framesBefore
	// 6 clients x 30 fps x 45 s = 8100 nominal; require well over half.
	if played < 5000 {
		t.Fatalf("only %d frames played during 45s of control-plane death", played)
	}
	if s.SchedSvc.DroppedMsgs() == 0 {
		t.Fatal("outage dropped no control-plane messages")
	}
}

// TestControlPlaneDeterminism: two identically-seeded control-plane systems
// produce identical telemetry timelines, including the ctrl.* instruments.
func TestControlPlaneDeterminism(t *testing.T) {
	render := func() string {
		reg := telemetry.NewRegistry("ctrl-det", 41)
		s := ctrlSystem(t, 41, reg)
		s.Run(30 * time.Second)
		var b bytes.Buffer
		if err := reg.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("control-plane telemetry timelines differ across identical runs")
	}
	if a == "" {
		t.Fatal("empty telemetry timeline")
	}
}

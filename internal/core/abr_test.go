package core

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/simnet"
)

var testLadder = []float64{0.8e6, 1.2e6, 2.0e6, 3.0e6}

// cleanLastMile disables last-mile fade episodes so ABR tests isolate CDN
// congestion effects.
func cleanLastMile(st *simnet.LinkState) {
	st.MeanDegradedEvery = 0
	st.DegradedLoss = 0
	st.LossRate = 0.0005
}

func TestABRHoldsTopRungWhenUncongested(t *testing.T) {
	s := NewSystem(Config{Seed: 31, NumBestEffort: 16, Mode: client.ModeCDNOnly, ABRLadder: testLadder, ClientLinkTune: cleanLastMile})
	s.Start()
	c := s.AddClient(ClientSpec{})
	s.Run(30 * time.Second)
	if c.Rung() != len(testLadder)-1 {
		t.Fatalf("rung = %d under no congestion, want top (down=%d)", c.Rung(), c.ABRDown)
	}
	br := c.QoE.MeanBitrate()
	if br < 2.4e6 {
		t.Fatalf("bitrate = %.0f, want ~3e6", br)
	}
}

func TestABRDowngradesUnderCDNCongestion(t *testing.T) {
	// One CDN node with capacity for ~4 top-rung viewers, 10 CDN-only
	// viewers: stalls must push clients down the ladder, and the delivered
	// bitrate must be below the top rung.
	s := NewSystem(Config{
		Seed: 33, NumDedicated: 1, NumBestEffort: 8,
		Mode: client.ModeCDNOnly, ABRLadder: testLadder,
		DedicatedUplinkBps: 14e6,
		ClientLinkTune:     cleanLastMile,
	})
	s.Start()
	for i := 0; i < 10; i++ {
		s.AddClient(ClientSpec{Region: i % 4})
	}
	s.Run(60 * time.Second)
	var down uint64
	var brSum float64
	for _, c := range s.Clients {
		down += c.ABRDown
		brSum += c.QoE.MeanBitrate()
	}
	if down == 0 {
		t.Fatal("no downgrades under congestion")
	}
	if mean := brSum / 10; mean > 2.6e6 {
		t.Fatalf("mean bitrate %.0f too high for a saturated CDN", mean)
	}
}

func TestABRRLiveHoldsBitrateUnderCDNCongestion(t *testing.T) {
	// Same saturated CDN, but RLive offloads delivery to best-effort
	// nodes: clients should sustain a meaningfully higher bitrate than
	// the CDN-only group — the Fig 9b mechanism.
	// Enough viewers per stream for relay consolidation — below that
	// scale the deployment would not even enable RLive (§7.1.1).
	const viewers = 24
	mk := func(mode client.Mode) float64 {
		s := NewSystem(Config{
			Seed: 35, NumDedicated: 1, NumBestEffort: 32,
			Mode: mode, ABRLadder: testLadder,
			DedicatedUplinkBps: 2.0e6 * viewers,
			ClientLinkTune:     cleanLastMile,
		})
		s.Start()
		for i := 0; i < viewers; i++ {
			s.AddClient(ClientSpec{Region: 0})
			s.Run(150 * time.Millisecond)
		}
		s.Run(60 * time.Second)
		var brSum float64
		for _, c := range s.Clients {
			brSum += c.QoE.MeanBitrate()
		}
		return brSum / float64(len(s.Clients))
	}
	cdnOnly := mk(client.ModeCDNOnly)
	rlive := mk(client.ModeRLive)
	if rlive <= cdnOnly {
		t.Fatalf("RLive bitrate %.0f not above CDN-only %.0f under congestion", rlive, cdnOnly)
	}
}

func TestABRVariantSwitchKeepsPlaying(t *testing.T) {
	s := NewSystem(Config{Seed: 37, NumBestEffort: 16, Mode: client.ModeRLive, ABRLadder: testLadder, ABRStartRung: 1, ClientLinkTune: cleanLastMile})
	s.Start()
	c := s.AddClient(ClientSpec{})
	s.Run(40 * time.Second)
	// Starting mid-ladder with a healthy network, the client should
	// upgrade at least once and keep playing throughout.
	if c.ABRUp == 0 {
		t.Fatalf("no upgrades from rung 1 on a healthy network (rung=%d)", c.Rung())
	}
	if c.QoE.FramesPlayed < 800 {
		t.Fatalf("frames played = %d across variant switches", c.QoE.FramesPlayed)
	}
}

package alerting

import (
	"fmt"
	"time"
)

// ChaosRules is the default production-shaped rule set the chaos-obs
// experiment arms: enough coverage that every Catalog fault class trips at
// least one rule, conservative enough that a healthy warmed-up run trips
// none. regions is the fleet's region count (one capacity rule per
// region); clients scales the aggregate stall-seconds budget, since
// client.stall_ns sums across every viewer.
//
// Coverage map (fault -> primary detector):
//
//	scheduler-outage  -> sched-feed-stop (control-plane message rate hits 0)
//	scheduler-slow    -> sched-latency (recommendation p90 over 200 ms)
//	region-blackout   -> region-capacity.rN (per-region online fraction floor)
//	region-partition  -> fetch-anomaly / stall-burn (cross-region repair)
//	churn-storm       -> fleet-online-drop (fleet online fraction z-drop)
//	origin-saturation -> stall-burn / loss-burn (QoE SLO budgets)
//	degradation-wave  -> loss-burn / queue-anomaly (loss + queuing delay)
//	nat-flap          -> punch-fail (hole-punch failure rate z-spike)
//	ctrl-partition    -> ctrl-shard-diverge (cross-shard epoch lag)
//
// The two ctrl-* rules read gauges only a distributed-control-plane system
// exports; on any other system the missing series reads as 0 and the
// above-bound rules stay silent, so they are safe to arm unconditionally.
// ctrl-lkg-stale is the total-control-plane-death page: last-known-good
// caches stop receiving snapshot pushes and their minimum freshness age
// climbs past the bound.
func ChaosRules(regions, clients int) []Rule {
	rules := []Rule{
		// Static thresholds.
		&Threshold{
			RuleName: "sched-feed-stop", ScopeLabel: "control-plane",
			Src:   Source{Series: "sched.msgs", Signal: SignalRate, Window: 2 * time.Second},
			Below: true, Bound: 0.5, For: 2,
		},
		&Threshold{
			RuleName: "sched-latency", ScopeLabel: "control-plane",
			Src:   Source{Series: "sched.resp_ms", Signal: SignalQuantile, Q: 0.9, Window: 10 * time.Second, MinCount: 3},
			Bound: 200, For: 2,
		},
		&Threshold{
			RuleName: "ctrl-lkg-stale", ScopeLabel: "control-plane",
			Src:   Source{Series: "ctrl.lkg_age_ms", Signal: SignalGauge},
			Bound: 15000, For: 2,
		},
		&Threshold{
			RuleName: "ctrl-shard-diverge", ScopeLabel: "control-plane",
			Src:   Source{Series: "ctrl.shard_diverge", Signal: SignalGauge},
			Bound: 10, For: 2,
		},
	}
	for r := 0; r < regions; r++ {
		rules = append(rules, &Threshold{
			RuleName:   fmt.Sprintf("region-capacity.r%d", r),
			ScopeLabel: fmt.Sprintf("region%d", r),
			Src:        Source{Series: fmt.Sprintf("fleet.online_frac.r%d", r), Signal: SignalGauge},
			Below:      true, Bound: 0.3, For: 2,
		})
	}
	rules = append(rules,
		// Multi-window burn rates over the SessionQoE SLO budgets.
		&BurnRate{
			RuleName: "stall-burn", ScopeLabel: "client",
			Bad: "client.stall_ns", BadScale: 1e-9, // stall-seconds per wall-second
			Budget: 0.02 * float64(clients), // 2% stall time per viewer

			FastWin: 5 * time.Second, SlowWin: 20 * time.Second,
			Burn: 10, For: 2,
		},
		&BurnRate{
			RuleName: "loss-burn", ScopeLabel: "client",
			Bad:   "client.frames_lost",
			Total: []string{"client.frames_played", "client.frames_lost"},
			// frames_lost counts latency-chasing drops and stall-abandon
			// skips — bursty client-level events that swing past 15% of
			// frames on small fleets even when healthy. The budget/burn
			// pair trips at 30% of frames: the catastrophic-loss page,
			// quiet through ordinary fault turbulence.
			Budget:  0.006,
			FastWin: 5 * time.Second, SlowWin: 20 * time.Second,
			Burn: 50, For: 2,
		},
		// Rolling Z-score anomaly rules (edge Z-scan math on a time axis).
		&ZScore{
			RuleName: "fleet-online-drop", ScopeLabel: "fleet",
			Src:   Source{Series: "fleet.online_frac", Signal: SignalGauge},
			Below: true, Z: 6, MinSD: 0.02, MinN: 10, For: 2,
		},
		&ZScore{
			RuleName: "fetch-anomaly", ScopeLabel: "recovery",
			Src: Source{Series: "client.recovery.fetch_dedicated", Signal: SignalRate, Window: 5 * time.Second},
			Z:   6, MinSD: 1, MinN: 10, For: 2,
		},
		&ZScore{
			RuleName: "queue-anomaly", ScopeLabel: "network",
			Src: Source{Series: "net.queue_ms", Signal: SignalQuantile, Q: 0.9, Window: 5 * time.Second, MinCount: 20},
			Z:   6, MinSD: 5, MinN: 10, For: 2,
		},
		&ZScore{
			RuleName: "punch-fail", ScopeLabel: "nat",
			Src: Source{Series: "nat.punch_fail", Signal: SignalRate, Window: 5 * time.Second},
			Z:   6, MinSD: 1, MinN: 10, For: 2,
		},
	)
	return rules
}

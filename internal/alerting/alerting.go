// Package alerting is the deterministic SLO/alert evaluation engine: the
// operator-facing layer that decides when the simulated system is
// unhealthy. An Engine subscribes to a telemetry registry's scrape
// timeline and evaluates a fixed rule set at every scrape instant —
// static thresholds, multi-window burn-rate rules over SLO budgets, and
// rolling Z-score anomaly rules — emitting typed Incidents with
// open/ack/resolve transitions.
//
// Design (mirrors internal/trace and internal/telemetry):
//
//   - A nil *Engine is the disabled evaluator: every method is a safe
//     no-op, Attach registers nothing, and a system configured without
//     alerting pays zero allocations for the hooks.
//   - Rules are evaluated ONLY at scrape instants, synchronously on the
//     simulator thread via telemetry.Registry.OnScrape. Every input a rule
//     reads is a pure function of the seed, so incident timelines are
//     byte-deterministic across repeats and serial vs parallel experiment
//     execution.
//   - Incident lifecycle is hysteresis-damped: a rule must fire For
//     consecutive scrapes to open an incident and stay clear for ClearFor
//     consecutive scrapes to resolve it, so a flapping series produces one
//     damped incident instead of an open/resolve storm.
//   - The engine can be attached before it is armed: rules observe (and
//     z-score baselines fill) from the first scrape, but incidents only
//     open at scrapes at or after the Arm instant. Experiments arm the
//     engine when the measured run begins so ramp-up noise trains the
//     baselines instead of paging on them.
package alerting

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/telemetry"
)

// Incident is one typed alert: a rule that tripped, scoped to the
// component (and region, where the rule is regional) it watches, carrying
// the instrument snapshot that tripped it and its lifecycle transitions in
// simulation nanoseconds (0 = transition has not happened).
type Incident struct {
	// ID numbers incidents in open order, starting at 1.
	ID int
	// Rule, Kind and Scope identify the firing rule: its name, its rule
	// kind (threshold, burn-rate, zscore) and the component/region label.
	Rule  string
	Kind  string
	Scope string
	// OpenedAt/AckedAt/ResolvedAt are the lifecycle transitions.
	OpenedAt   int64
	AckedAt    int64
	ResolvedAt int64
	// Value and Bound are the observed signal and the threshold it crossed
	// at open time; Detail is the human-readable instrument snapshot.
	Value  float64
	Bound  float64
	Detail string
}

// Open reports whether the incident is still unresolved.
func (in *Incident) Open() bool { return in.ResolvedAt == 0 }

// AppendJSON appends the incident's canonical one-line JSON encoding
// (without trailing newline) to dst and returns the extended slice. This
// is the single field-ordered encoder behind both the incident JSONL log
// and the SSE/snapshot incident events, so the two can never drift.
func (in *Incident) AppendJSON(dst []byte) []byte {
	dst = append(dst, fmt.Sprintf(
		"{\"id\":%d,\"rule\":%q,\"kind\":%q,\"scope\":%q,\"opened\":%d,\"acked\":%d,\"resolved\":%d,\"value\":%s,\"bound\":%s,\"detail\":%q}",
		in.ID, in.Rule, in.Kind, in.Scope, in.OpenedAt, in.AckedAt, in.ResolvedAt,
		fmtF(in.Value), fmtF(in.Bound), in.Detail)...)
	return dst
}

// String renders the incident as one line.
func (in *Incident) String() string {
	state := "open"
	if !in.Open() {
		state = "resolved"
	}
	return fmt.Sprintf("#%d %s [%s/%s] %s t=%.1fs %s",
		in.ID, state, in.Kind, in.Scope, in.Rule, float64(in.OpenedAt)/1e9, in.Detail)
}

// Eval is one rule evaluation at one scrape instant.
type Eval struct {
	// Firing reports whether the rule's condition holds at this scrape.
	Firing bool
	// Value is the observed signal, Bound the configured threshold.
	Value float64
	Bound float64
	// Detail describes the instrument snapshot; rules may leave it empty
	// when not firing (the engine only keeps it on incident open).
	Detail string
}

// Rule is one alert rule evaluated at every scrape instant. Evaluations
// must be deterministic functions of the registry timeline; rules may keep
// internal state (rolling baselines) updated once per Eval call.
type Rule interface {
	// Name is the stable rule identifier incidents carry.
	Name() string
	// Kind labels the rule family: "threshold", "burn-rate" or "zscore".
	Kind() string
	// Scope is the component/region label incidents inherit.
	Scope() string
	// Eval evaluates the rule at scrape index i of reg.
	Eval(reg *telemetry.Registry, i int) Eval
}

// ruleState tracks one rule's hysteresis streaks and its open incident.
type ruleState struct {
	firingStreak int
	clearStreak  int
	open         int // open incident index+1, 0 = none
	openScrape   int // scrape index the open incident opened at
}

// Engine evaluates a rule set at telemetry scrape instants and records
// incidents. A nil *Engine is the disabled evaluator.
type Engine struct {
	// Label names the run in the JSONL header (experiment/arm).
	Label string
	// Seed is the RNG seed the evaluated run used.
	Seed uint64

	// OpenFor is the default consecutive-firing-scrape count required to
	// open an incident when a rule does not override it (default 1).
	OpenFor int
	// ClearFor is the consecutive-clear-scrape count required to resolve
	// an open incident (default 2) — the hysteresis damping.
	ClearFor int
	// AckAfter is how many scrapes after open the incident is
	// acknowledged (default 1), modeling the deterministic operator.
	AckAfter int

	rules     []Rule
	state     []ruleState
	incidents []Incident
	armedAt   int64
	armed     bool
	evals     uint64
	onTrans   []func(kind string, in Incident)
}

// OnTransition registers fn to run synchronously (on the scrape producer
// goroutine) after every incident lifecycle transition. kind is "open",
// "ack" or "resolve"; in is a copy of the incident after the transition,
// so fn may retain or ship it without racing the engine. fn must not call
// back into the engine. No-op on a nil engine.
func (e *Engine) OnTransition(fn func(kind string, in Incident)) {
	if e == nil {
		return
	}
	e.onTrans = append(e.onTrans, fn)
}

// notify runs the transition subscribers for incident index idx.
func (e *Engine) notify(kind string, idx int) {
	for _, fn := range e.onTrans {
		fn(kind, e.incidents[idx])
	}
}

// NewEngine returns an engine evaluating the given rules. The engine is
// unarmed: it observes from the first scrape but opens no incidents until
// Arm is called (call Arm(0) to arm from the start).
func NewEngine(label string, seed uint64, rules []Rule) *Engine {
	return &Engine{Label: label, Seed: seed, OpenFor: 1, ClearFor: 2, AckAfter: 1, rules: rules,
		state: make([]ruleState, len(rules))}
}

// Enabled reports whether the engine evaluates (false when nil).
func (e *Engine) Enabled() bool { return e != nil }

// Arm enables incident opening for scrapes at simulation time >= at
// (nanoseconds). Rules keep observing either way; arming only gates the
// lifecycle. Streaks accumulated while disarmed are discarded so a
// condition must re-earn its For-streak inside the armed window.
func (e *Engine) Arm(at int64) {
	if e == nil {
		return
	}
	e.armedAt = at
	e.armed = true
	for i := range e.state {
		e.state[i].firingStreak = 0
	}
}

// Attach subscribes the engine to the registry's scrape timeline. Safe on
// a nil engine or registry (no-op), so core wiring is unconditional.
func (e *Engine) Attach(reg *telemetry.Registry) {
	if e == nil || reg == nil {
		return
	}
	reg.OnScrape(e.evalAt)
}

// Incidents returns the recorded incidents in open order. The returned
// slice is the engine's own (callers must not mutate).
func (e *Engine) Incidents() []Incident {
	if e == nil {
		return nil
	}
	return e.incidents
}

// Evals returns how many rule evaluations have run (0 on nil).
func (e *Engine) Evals() uint64 {
	if e == nil {
		return 0
	}
	return e.evals
}

// evalAt runs every rule against scrape i and advances incident
// lifecycles. It is the OnScrape subscriber; it also backstops direct
// calls on a nil engine so the disabled path stays a single branch.
func (e *Engine) evalAt(reg *telemetry.Registry, i int) {
	if e == nil {
		return
	}
	at := reg.ScrapeAt(i)
	armed := e.armed && at >= e.armedAt
	for r := range e.rules {
		ev := e.rules[r].Eval(reg, i)
		e.evals++
		st := &e.state[r]
		if ev.Firing {
			st.firingStreak++
			st.clearStreak = 0
		} else {
			st.clearStreak++
			st.firingStreak = 0
		}
		if st.open != 0 {
			inc := &e.incidents[st.open-1]
			// The deterministic operator acks after AckAfter further
			// scrapes; resolution needs a full clear streak.
			if inc.AckedAt == 0 && i-st.openScrape >= e.AckAfter {
				inc.AckedAt = at
				e.notify("ack", st.open-1)
			}
			if st.clearStreak >= e.ClearFor {
				inc.ResolvedAt = at
				e.notify("resolve", st.open-1)
				st.open = 0
			}
			continue
		}
		need := e.OpenFor
		if f, ok := e.rules[r].(interface{ OpenFor() int }); ok && f.OpenFor() > 0 {
			need = f.OpenFor()
		}
		if armed && st.firingStreak >= need {
			e.incidents = append(e.incidents, Incident{
				ID:       len(e.incidents) + 1,
				Rule:     e.rules[r].Name(),
				Kind:     e.rules[r].Kind(),
				Scope:    e.rules[r].Scope(),
				OpenedAt: at,
				Value:    ev.Value,
				Bound:    ev.Bound,
				Detail:   ev.Detail,
			})
			st.open = len(e.incidents)
			st.openScrape = i
			e.notify("open", st.open-1)
		}
	}
}

// fmtF encodes a float in its shortest exact round-trip form, matching the
// telemetry JSONL convention so alert output is byte-reproducible.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteJSONL encodes the incident log: one header line, then one line per
// incident in open order. Field order is fixed and floats use
// shortest-exact encoding, so same-seed output is byte-identical across
// serial and parallel runs. No-op on a nil engine.
func (e *Engine) WriteJSONL(w io.Writer) error {
	if e == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "{\"run\":%q,\"seed\":%d,\"rules\":%d,\"incidents\":%d}\n",
		e.Label, e.Seed, len(e.rules), len(e.incidents)); err != nil {
		return err
	}
	var buf []byte
	for i := range e.incidents {
		buf = e.incidents[i].AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

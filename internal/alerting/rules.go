package alerting

import (
	"fmt"
	"time"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Signal selects how a Source reduces one instrument's timeline to a
// scalar at a scrape instant.
type Signal uint8

const (
	// SignalGauge reads the gauge value at the scrape.
	SignalGauge Signal = iota
	// SignalRate is the counter's per-second rate over the lookback window.
	SignalRate
	// SignalDelta is the counter's raw delta over the lookback window.
	SignalDelta
	// SignalQuantile is a quantile of the histogram's per-window delta.
	SignalQuantile
)

// Source derives a scalar signal from one instrument's scrape timeline.
// All reductions difference cumulative scrapes through the stats guards,
// so counter resets, zero-duration windows and the first scrape (no
// predecessor) read as "no signal yet" rather than dividing by zero.
type Source struct {
	// Series is the instrument name in the registry.
	Series string
	// Signal is the reduction.
	Signal Signal
	// Q is the quantile for SignalQuantile (e.g. 0.9).
	Q float64
	// Window is the lookback duration; 0 means one scrape interval.
	Window time.Duration
	// MinCount is the minimum histogram observation count inside the
	// window for SignalQuantile to produce a signal (default 1) — a
	// near-empty interval's quantile is noise, not a measurement.
	MinCount uint64
}

// windowStart returns the latest scrape index j whose instant is at least
// the lookback window before scrape i (j = i-1 for a zero window), or -1
// when the timeline does not yet reach back that far.
func (s Source) windowStart(reg *telemetry.Registry, i int) int {
	if s.Window <= 0 {
		if i == 0 {
			return -1
		}
		return i - 1
	}
	target := reg.ScrapeAt(i) - int64(s.Window)
	for j := i - 1; j >= 0; j-- {
		if reg.ScrapeAt(j) <= target {
			return j
		}
	}
	return -1
}

// value reduces the source at scrape i. ok is false while the window is
// not yet full (first scrapes) or the interval carries too few
// observations to be meaningful.
func (s Source) value(reg *telemetry.Registry, i int) (v float64, ok bool) {
	switch s.Signal {
	case SignalGauge:
		return reg.GaugeAt(i, s.Series), true
	case SignalRate, SignalDelta:
		j := s.windowStart(reg, i)
		if j < 0 {
			return 0, false
		}
		cur, prev := reg.CounterAt(i, s.Series), reg.CounterAt(j, s.Series)
		if s.Signal == SignalDelta {
			return float64(stats.CounterDelta(cur, prev)), true
		}
		return stats.DeltaRate(cur, prev, reg.ScrapeAt(i)-reg.ScrapeAt(j)), true
	case SignalQuantile:
		j := s.windowStart(reg, i)
		if j < 0 {
			return 0, false
		}
		d := reg.HistAt(i, s.Series).Sub(reg.HistAt(j, s.Series))
		minc := s.MinCount
		if minc == 0 {
			minc = 1
		}
		if d.N < minc {
			return 0, false
		}
		return d.Quantile(s.Q), true
	}
	return 0, false
}

// describe names the signal for incident details.
func (s Source) describe() string {
	switch s.Signal {
	case SignalGauge:
		return s.Series
	case SignalRate:
		return s.Series + "/s"
	case SignalDelta:
		return "Δ" + s.Series
	case SignalQuantile:
		return fmt.Sprintf("%s p%g", s.Series, s.Q*100)
	}
	return s.Series
}

// Threshold is the static-threshold rule kind: fire while the source
// signal is above (or, with Below, under) a fixed bound — scheduler QPS
// hitting zero, a utilization quantile exceeding its cap.
type Threshold struct {
	RuleName   string
	ScopeLabel string
	Src        Source
	// Below inverts the comparison: fire when value < Bound.
	Below bool
	Bound float64
	// For overrides the engine's OpenFor for this rule (consecutive firing
	// scrapes required to open an incident); 0 uses the engine default.
	For int
}

func (t *Threshold) Name() string  { return t.RuleName }
func (t *Threshold) Kind() string  { return "threshold" }
func (t *Threshold) Scope() string { return t.ScopeLabel }
func (t *Threshold) OpenFor() int  { return t.For }

func (t *Threshold) Eval(reg *telemetry.Registry, i int) Eval {
	v, ok := t.Src.value(reg, i)
	if !ok {
		return Eval{}
	}
	firing := v > t.Bound
	op := ">"
	if t.Below {
		firing = v < t.Bound
		op = "<"
	}
	ev := Eval{Firing: firing, Value: v, Bound: t.Bound}
	if firing {
		ev.Detail = fmt.Sprintf("%s=%.4g %s %.4g", t.Src.describe(), v, op, t.Bound)
	}
	return ev
}

// BurnRate is the multi-window burn-rate rule kind over an SLO budget
// (the SRE-workbook shape): the bad-event ratio, normalized by the budget,
// must exceed the burn threshold in BOTH a fast and a slow window — the
// fast window gives quick time-to-detect, the slow window keeps a
// transient blip from paging.
type BurnRate struct {
	RuleName   string
	ScopeLabel string
	// Bad is the bad-units counter; BadScale converts its units (e.g.
	// 1e-9 turns stall nanoseconds into stall seconds). 0 means 1.
	Bad      string
	BadScale float64
	// Total is the total-units counters, summed. Empty means the window's
	// simulated wall-clock seconds — the stall-seconds-per-wall-second
	// SLO shape.
	Total []string
	// Budget is the SLO: the allowed bad/total ratio.
	Budget float64
	// FastWin/SlowWin are the two lookback windows.
	FastWin, SlowWin time.Duration
	// Burn is the threshold on ratio/Budget, applied to both windows.
	Burn float64
	// For overrides the engine's OpenFor; 0 uses the default.
	For int
}

func (b *BurnRate) Name() string  { return b.RuleName }
func (b *BurnRate) Kind() string  { return "burn-rate" }
func (b *BurnRate) Scope() string { return b.ScopeLabel }
func (b *BurnRate) OpenFor() int  { return b.For }

// burnOver computes the budget-normalized burn rate over one lookback
// window, ok=false while the timeline does not reach back that far.
func (b *BurnRate) burnOver(reg *telemetry.Registry, i int, win time.Duration) (float64, bool) {
	src := Source{Window: win}
	j := src.windowStart(reg, i)
	if j < 0 {
		return 0, false
	}
	scale := b.BadScale
	if scale == 0 {
		scale = 1
	}
	bad := float64(stats.CounterDelta(reg.CounterAt(i, b.Bad), reg.CounterAt(j, b.Bad))) * scale
	var total float64
	if len(b.Total) == 0 {
		total = float64(reg.ScrapeAt(i)-reg.ScrapeAt(j)) / 1e9
	} else {
		for _, name := range b.Total {
			total += float64(stats.CounterDelta(reg.CounterAt(i, name), reg.CounterAt(j, name)))
		}
	}
	return stats.SafeRate(stats.SafeRate(bad, total), b.Budget), true
}

func (b *BurnRate) Eval(reg *telemetry.Registry, i int) Eval {
	fast, okF := b.burnOver(reg, i, b.FastWin)
	slow, okS := b.burnOver(reg, i, b.SlowWin)
	if !okF || !okS {
		return Eval{}
	}
	// The fast window is the reported signal; both must burn.
	ev := Eval{Firing: fast > b.Burn && slow > b.Burn, Value: fast, Bound: b.Burn}
	if ev.Firing {
		ev.Detail = fmt.Sprintf("%s burn fast=%.3gx slow=%.3gx > %.3gx (budget %.3g)",
			b.Bad, fast, slow, b.Burn, b.Budget)
	}
	return ev
}

// ZScore is the rolling-anomaly rule kind, reusing the edge QoS trigger's
// Z-score math (stats.Welford) on a time axis instead of a population
// axis: the source signal is scored against the baseline of its own past
// values and fires when the score exceeds Z (or drops under -Z with
// Below). While firing, the baseline is frozen so a sustained fault does
// not teach itself into normality before it resolves. Rules are
// single-run: the baseline state belongs to one timeline.
type ZScore struct {
	RuleName   string
	ScopeLabel string
	Src        Source
	// Z is the score threshold.
	Z float64
	// Below fires on anomalous drops instead of spikes.
	Below bool
	// MinN is how many baseline values must accumulate before the rule may
	// fire (default 8) — the warmup guard.
	MinN int
	// MinSD floors the baseline deviation so a perfectly flat baseline
	// (rate pinned at zero) cannot turn the first blip into an infinite
	// score; it is the minimum signal change considered meaningful.
	MinSD float64
	// For overrides the engine's OpenFor; 0 uses the default.
	For int

	baseline stats.Welford
}

func (z *ZScore) Name() string  { return z.RuleName }
func (z *ZScore) Kind() string  { return "zscore" }
func (z *ZScore) Scope() string { return z.ScopeLabel }
func (z *ZScore) OpenFor() int  { return z.For }

func (z *ZScore) Eval(reg *telemetry.Registry, i int) Eval {
	v, ok := z.Src.value(reg, i)
	if !ok {
		return Eval{}
	}
	minN := z.MinN
	if minN == 0 {
		minN = 8
	}
	ev := Eval{Bound: z.Z}
	if z.baseline.N() >= int64(minN) {
		sd := z.baseline.Stddev()
		if sd < z.MinSD {
			sd = z.MinSD
		}
		score := 0.0
		if sd > 0 {
			score = (v - z.baseline.Mean()) / sd
		}
		ev.Value = score
		if z.Below {
			ev.Firing = score < -z.Z
		} else {
			ev.Firing = score > z.Z
		}
		if ev.Firing {
			ev.Detail = fmt.Sprintf("%s=%.4g z=%.2f vs baseline %.4g±%.3g",
				z.Src.describe(), v, score, z.baseline.Mean(), sd)
		}
	}
	if !ev.Firing {
		z.baseline.Add(v)
	}
	return ev
}

package alerting

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/telemetry"
)

const sec = int64(time.Second)

// driveGauge runs one synthetic timeline: a gauge set to vals[i] before
// the scrape at (i+1) seconds, with the engine attached and armed from 0.
func driveGauge(t *testing.T, rules []Rule, vals []float64) *Engine {
	t.Helper()
	reg := telemetry.NewRegistry("test", 1)
	g := reg.Gauge("sig")
	eng := NewEngine("test", 1, rules)
	eng.Attach(reg)
	eng.Arm(0)
	for i, v := range vals {
		g.Set(v)
		reg.Scrape(int64(i+1) * sec)
	}
	return eng
}

func gaugeRule() *Threshold {
	return &Threshold{
		RuleName: "sig-high", ScopeLabel: "test",
		Src:   Source{Series: "sig", Signal: SignalGauge},
		Bound: 5,
	}
}

func TestIncidentLifecycle(t *testing.T) {
	// Fire for two scrapes, clear for three, fire again: with the engine
	// defaults (OpenFor 1, ClearFor 2, AckAfter 1) the incident opens on
	// the first firing scrape, acks one scrape later, resolves on the
	// second clear scrape, and a second incident opens on re-fire.
	eng := driveGauge(t, []Rule{gaugeRule()}, []float64{10, 10, 0, 0, 0, 10})
	incs := eng.Incidents()
	if len(incs) != 2 {
		t.Fatalf("incidents = %d, want 2: %v", len(incs), incs)
	}
	in := incs[0]
	if in.OpenedAt != 1*sec || in.AckedAt != 2*sec || in.ResolvedAt != 4*sec {
		t.Errorf("lifecycle = open %d ack %d resolve %d, want 1s/2s/4s", in.OpenedAt, in.AckedAt, in.ResolvedAt)
	}
	if in.Rule != "sig-high" || in.Kind != "threshold" || in.Scope != "test" {
		t.Errorf("identity = %q/%q/%q", in.Rule, in.Kind, in.Scope)
	}
	if in.Value != 10 || in.Bound != 5 || in.Detail == "" {
		t.Errorf("snapshot = value %g bound %g detail %q", in.Value, in.Bound, in.Detail)
	}
	if incs[1].OpenedAt != 6*sec || !incs[1].Open() {
		t.Errorf("second incident = open %d resolved %d", incs[1].OpenedAt, incs[1].ResolvedAt)
	}
	if want := uint64(len(eng.Incidents())); eng.Evals() != 6 {
		t.Errorf("evals = %d (incidents %d), want 6", eng.Evals(), want)
	}
}

func TestFlappingHysteresis(t *testing.T) {
	// A series flapping above/below the bound every scrape never
	// accumulates ClearFor consecutive clear scrapes, so hysteresis holds
	// ONE incident open through the flap instead of an open/resolve storm;
	// a sustained clear resolves it and a later re-fire opens the second.
	vals := []float64{10, 0, 10, 0, 10, 0, 10, 0, 0, 0, 10}
	eng := driveGauge(t, []Rule{gaugeRule()}, vals)
	incs := eng.Incidents()
	if len(incs) != 2 {
		t.Fatalf("incidents = %d, want 2 (damped open->resolve->open): %v", len(incs), incs)
	}
	if incs[0].OpenedAt != 1*sec || incs[0].ResolvedAt != 9*sec {
		t.Errorf("first incident = open %d resolve %d, want 1s/9s", incs[0].OpenedAt, incs[0].ResolvedAt)
	}
	if incs[1].OpenedAt != 11*sec || !incs[1].Open() {
		t.Errorf("second incident = %+v", incs[1])
	}
}

func TestForOverrideAndArmGating(t *testing.T) {
	// For=3 demands three consecutive firing scrapes; the streak resets
	// when the engine arms, so pre-arm firing cannot open an incident the
	// moment the engine arms.
	rule := gaugeRule()
	rule.For = 3
	reg := telemetry.NewRegistry("test", 1)
	g := reg.Gauge("sig")
	eng := NewEngine("test", 1, []Rule{rule})
	eng.Attach(reg)
	g.Set(10)
	for i := 1; i <= 3; i++ { // firing before arm: no incidents
		reg.Scrape(int64(i) * sec)
	}
	if len(eng.Incidents()) != 0 {
		t.Fatalf("unarmed engine opened %d incidents", len(eng.Incidents()))
	}
	eng.Arm(4 * sec)
	for i := 4; i <= 5; i++ { // streak restarted: 2 < For
		reg.Scrape(int64(i) * sec)
	}
	if len(eng.Incidents()) != 0 {
		t.Fatalf("incident opened before For streak re-earned: %v", eng.Incidents())
	}
	reg.Scrape(6 * sec) // third armed firing scrape
	incs := eng.Incidents()
	if len(incs) != 1 || incs[0].OpenedAt != 6*sec {
		t.Fatalf("incidents = %v, want one opened at 6s", incs)
	}
}

func TestNeverFiringRuleAndNilEngine(t *testing.T) {
	eng := driveGauge(t, []Rule{gaugeRule()}, []float64{0, 1, 2, 3})
	if n := len(eng.Incidents()); n != 0 {
		t.Errorf("never-firing rule emitted %d incidents", n)
	}
	var buf bytes.Buffer
	if err := eng.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{\"run\":\"test\",\"seed\":1,\"rules\":1,\"incidents\":0}\n" {
		t.Errorf("empty log = %q", got)
	}

	var nilEng *Engine
	if nilEng.Enabled() {
		t.Error("nil engine reports enabled")
	}
	nilEng.Attach(telemetry.NewRegistry("x", 1))
	nilEng.Arm(0)
	if nilEng.Incidents() != nil || nilEng.Evals() != 0 {
		t.Error("nil engine carries state")
	}
	if err := nilEng.WriteJSONL(&buf); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
}

func TestDisabledEngineZeroAlloc(t *testing.T) {
	// The nil-receiver discipline: a system wired without alerting pays
	// zero allocations for the hooks.
	var eng *Engine
	allocs := testing.AllocsPerRun(100, func() {
		eng.Attach(nil)
		eng.Arm(0)
		_ = eng.Incidents()
		_ = eng.Evals()
		eng.evalAt(nil, 0)
	})
	if allocs != 0 {
		t.Errorf("disabled engine allocates %.0f per op, want 0", allocs)
	}
}

func BenchmarkAlertingDisabled(b *testing.B) {
	var eng *Engine
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Attach(nil)
		eng.Arm(0)
		_ = eng.Incidents()
		eng.evalAt(nil, i)
	}
}

func TestThresholdBelowAndFirstScrape(t *testing.T) {
	// A rate source has no signal at the first scrape (no predecessor), so
	// a Below rule over an idle counter cannot fire spuriously at t=0.
	rule := &Threshold{
		RuleName: "feed-stop", ScopeLabel: "test",
		Src:   Source{Series: "msgs", Signal: SignalRate},
		Below: true, Bound: 0.5,
	}
	reg := telemetry.NewRegistry("test", 1)
	c := reg.Counter("msgs")
	eng := NewEngine("test", 1, []Rule{rule})
	eng.Attach(reg)
	eng.Arm(0)
	reg.Scrape(1 * sec) // first scrape: no window yet
	if len(eng.Incidents()) != 0 {
		t.Fatalf("rule fired on first scrape: %v", eng.Incidents())
	}
	for i := 2; i <= 4; i++ { // healthy: 10 msgs/s
		c.Add(10)
		reg.Scrape(int64(i) * sec)
	}
	if len(eng.Incidents()) != 0 {
		t.Fatalf("rule fired on healthy feed: %v", eng.Incidents())
	}
	reg.Scrape(5 * sec) // feed stops
	incs := eng.Incidents()
	if len(incs) != 1 || incs[0].OpenedAt != 5*sec {
		t.Fatalf("incidents = %v, want one at 5s", incs)
	}
}

func TestBurnRateBothWindows(t *testing.T) {
	// Wall-clock-denominator burn: budget 0.1 bad-units/s, burn 5 => the
	// rule needs >0.5 units/s in BOTH the 2 s fast and 6 s slow windows. A
	// one-scrape blip of 2 units trips only the fast window (2/2=1 u/s vs
	// 2/6=0.33 u/s) and must not open; a sustained 2 u/s trips both.
	rule := &BurnRate{
		RuleName: "burn", ScopeLabel: "test",
		Bad: "bad", Budget: 0.1,
		FastWin: 2 * time.Second, SlowWin: 6 * time.Second,
		Burn: 5,
	}
	reg := telemetry.NewRegistry("test", 1)
	c := reg.Counter("bad")
	eng := NewEngine("test", 1, []Rule{rule})
	eng.Attach(reg)
	eng.Arm(0)
	at := int64(0)
	scrape := func(add uint64) {
		c.Add(add)
		at += sec
		reg.Scrape(at)
	}
	for i := 0; i < 8; i++ {
		scrape(0)
	}
	scrape(2) // blip
	for i := 0; i < 4; i++ {
		scrape(0)
	}
	if len(eng.Incidents()) != 0 {
		t.Fatalf("blip opened an incident: %v", eng.Incidents())
	}
	for i := 0; i < 8; i++ { // sustained burn
		scrape(2)
	}
	incs := eng.Incidents()
	if len(incs) != 1 {
		t.Fatalf("sustained burn incidents = %v, want 1", incs)
	}
	if incs[0].Detail == "" || incs[0].Value <= rule.Burn {
		t.Errorf("incident snapshot = value %g detail %q", incs[0].Value, incs[0].Detail)
	}
}

func TestZScoreAnomalyAndFrozenBaseline(t *testing.T) {
	rule := &ZScore{
		RuleName: "spike", ScopeLabel: "test",
		Src: Source{Series: "sig", Signal: SignalGauge},
		Z:   4, MinN: 10, MinSD: 0.5,
	}
	reg := telemetry.NewRegistry("test", 1)
	g := reg.Gauge("sig")
	at := int64(0)
	eval := func(v float64) Eval {
		g.Set(v)
		at += sec
		reg.Scrape(at)
		return rule.Eval(reg, reg.NumScrapes()-1)
	}
	// Train a near-flat baseline around 10; MinSD floors the tiny stddev.
	for i := 0; i < 12; i++ {
		v := 10.0
		if i%2 == 1 {
			v = 10.1
		}
		if ev := eval(v); ev.Firing {
			t.Fatalf("fired during baseline at i=%d: %+v", i, ev)
		}
	}
	// Spike: z = (20-10.05)/0.5 ~ 20. The baseline freezes while firing,
	// so a sustained fault keeps scoring against the healthy baseline.
	for i := 0; i < 5; i++ {
		ev := eval(20)
		if !ev.Firing {
			t.Fatalf("sustained spike stopped firing at step %d: %+v", i, ev)
		}
		if ev.Value < 4 {
			t.Fatalf("z = %g, want > 4", ev.Value)
		}
	}
	if ev := eval(10); ev.Firing {
		t.Errorf("still firing after recovery: %+v", ev)
	}
}

func TestScoreDetection(t *testing.T) {
	windows := []Window{
		{Label: "a", Start: 100, End: 200, Region: -1},
		{Label: "b", Start: 300, End: 400, Region: 1},
	}
	incidents := []Incident{
		{ID: 1, Rule: "r1", OpenedAt: 50},  // warmup false alarm
		{ID: 2, Rule: "r2", OpenedAt: 120}, // detects a, TTD 20
		{ID: 3, Rule: "r3", OpenedAt: 150}, // a again
		{ID: 4, Rule: "r4", OpenedAt: 420}, // detects b inside grace, TTD 120
		{ID: 5, Rule: "r5", OpenedAt: 500}, // false alarm, not warmup
	}
	sc := ScoreDetection("test", windows, incidents, 30)
	if sc.Detected() != 2 || sc.Recall() != 1 {
		t.Errorf("detected %d recall %g, want 2/1", sc.Detected(), sc.Recall())
	}
	if sc.TruePositives != 3 || sc.FalseAlarms != 2 || sc.WarmupFalseAlarms != 1 {
		t.Errorf("tp %d fa %d warmup %d, want 3/2/1", sc.TruePositives, sc.FalseAlarms, sc.WarmupFalseAlarms)
	}
	if sc.Precision() != 0.6 || sc.FalseAlarmRate() != 0.4 {
		t.Errorf("precision %g far %g, want 0.6/0.4", sc.Precision(), sc.FalseAlarmRate())
	}
	wantTTD := (20e-9 + 120e-9) / 2 // mean of 20 ns and 120 ns, in seconds
	if got := sc.MeanTTD(); math.Abs(got-wantTTD) > 1e-15 {
		t.Errorf("mean TTD %g, want %g", got, wantTTD)
	}
	if sc.Windows[0].Rule != "r2" || sc.Windows[0].Incidents != 2 {
		t.Errorf("window a = %+v", sc.Windows[0])
	}
	if len(sc.MissedList()) != 0 {
		t.Errorf("missed = %v", sc.MissedList())
	}

	// Outside grace: the incident at 420 no longer credits window b.
	sc = ScoreDetection("test", windows, incidents, 10)
	if sc.Detected() != 1 || sc.Recall() != 0.5 {
		t.Errorf("tight grace: detected %d recall %g", sc.Detected(), sc.Recall())
	}
	if got := sc.MissedList(); len(got) != 1 || got[0] != "b" {
		t.Errorf("missed = %v, want [b]", got)
	}

	// Degenerate cards: no windows => recall 1; no incidents => precision 1.
	empty := ScoreDetection("none", nil, incidents, 0)
	if empty.Recall() != 1 {
		t.Errorf("no-window recall = %g", empty.Recall())
	}
	quiet := ScoreDetection("quiet", windows, nil, 0)
	if quiet.Precision() != 1 || quiet.Detected() != 0 {
		t.Errorf("quiet card = precision %g detected %d", quiet.Precision(), quiet.Detected())
	}
}

func TestJSONLByteDeterminism(t *testing.T) {
	run := func() []byte {
		eng := driveGauge(t, []Rule{gaugeRule()}, []float64{10, 10, 0, 0, 0, 10})
		var buf bytes.Buffer
		if err := eng.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		sc := ScoreDetection("test", []Window{{Label: "w", Start: 0, End: 3 * sec, Region: -1}},
			eng.Incidents(), sec)
		if err := sc.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed alert output differs:\n%s\n---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte("\"rule\":\"sig-high\"")) || !bytes.Contains(a, []byte("\"scenario\":\"test\"")) {
		t.Errorf("log missing expected fields:\n%s", a)
	}
}

package alerting

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Window is one ground-truth fault interval in absolute simulation
// nanoseconds. Chaos scenarios export fault windows relative to the
// scenario run start; callers shift them by the run-start offset before
// scoring incidents against them.
type Window struct {
	// Label names the fault (e.g. "scheduler-outage").
	Label string
	Start int64
	End   int64
	// Region scopes regional faults; -1 means fleet-wide.
	Region int
}

// WindowScore is one ground-truth window's detection outcome.
type WindowScore struct {
	Window
	Detected bool
	// TTDNs is time-to-detect: the first matching incident's open instant
	// minus the window start. Valid only when Detected.
	TTDNs int64
	// Rule names the rule behind the first detecting incident.
	Rule string
	// Incidents counts every incident that matched this window.
	Incidents int
}

// Scorecard scores one run's incident log against the run's ground-truth
// fault windows: which faults were detected and how fast, which incidents
// matched no fault at all.
type Scorecard struct {
	Scenario string
	// GraceNs extends each window's matching interval past its end —
	// detection latency lags fault onset, so an incident opening shortly
	// after the fault clears still credits the fault.
	GraceNs int64
	Windows []WindowScore
	// Incidents is the total incident count; TruePositives of them matched
	// at least one window.
	Incidents     int
	TruePositives int
	// FalseAlarms are incidents matching no window; WarmupFalseAlarms is
	// the subset that opened before the first fault even started.
	FalseAlarms       int
	WarmupFalseAlarms int
}

// ScoreDetection matches incidents against ground-truth windows: an
// incident detects a window when it opens inside [Start, End+grace]. One
// incident may credit several overlapping windows; an incident crediting
// none is a false alarm.
func ScoreDetection(scenario string, windows []Window, incidents []Incident, grace int64) Scorecard {
	sc := Scorecard{Scenario: scenario, GraceNs: grace, Windows: make([]WindowScore, len(windows))}
	firstStart := int64(-1)
	for i, w := range windows {
		sc.Windows[i] = WindowScore{Window: w}
		if firstStart < 0 || w.Start < firstStart {
			firstStart = w.Start
		}
	}
	for _, in := range incidents {
		sc.Incidents++
		matched := false
		for i := range sc.Windows {
			ws := &sc.Windows[i]
			if in.OpenedAt >= ws.Start && in.OpenedAt <= ws.End+grace {
				matched = true
				ws.Incidents++
				if !ws.Detected {
					ws.Detected = true
					ws.TTDNs = in.OpenedAt - ws.Start
					ws.Rule = in.Rule
				}
			}
		}
		if matched {
			sc.TruePositives++
		} else {
			sc.FalseAlarms++
			if firstStart < 0 || in.OpenedAt < firstStart {
				sc.WarmupFalseAlarms++
			}
		}
	}
	return sc
}

// Detected counts the windows at least one incident matched.
func (sc *Scorecard) Detected() int {
	n := 0
	for i := range sc.Windows {
		if sc.Windows[i].Detected {
			n++
		}
	}
	return n
}

// Recall is the detected fraction of ground-truth windows (1 when the
// scenario has no windows — nothing to miss).
func (sc *Scorecard) Recall() float64 {
	if len(sc.Windows) == 0 {
		return 1
	}
	return stats.SafeRate(float64(sc.Detected()), float64(len(sc.Windows)))
}

// Precision is the fraction of incidents that matched a window (1 when no
// incidents fired — nothing was wrong).
func (sc *Scorecard) Precision() float64 {
	if sc.Incidents == 0 {
		return 1
	}
	return stats.SafeRate(float64(sc.TruePositives), float64(sc.Incidents))
}

// FalseAlarmRate is false alarms per incident (0 when no incidents).
func (sc *Scorecard) FalseAlarmRate() float64 {
	return stats.SafeRate(float64(sc.FalseAlarms), float64(sc.Incidents))
}

// MeanTTD is the mean time-to-detect in seconds over detected windows.
func (sc *Scorecard) MeanTTD() float64 {
	var sum float64
	n := 0
	for i := range sc.Windows {
		if sc.Windows[i].Detected {
			sum += float64(sc.Windows[i].TTDNs) / 1e9
			n++
		}
	}
	return stats.SafeRate(sum, float64(n))
}

// MissedList names the undetected windows, in window order.
func (sc *Scorecard) MissedList() []string {
	var out []string
	for i := range sc.Windows {
		if !sc.Windows[i].Detected {
			out = append(out, sc.Windows[i].Label)
		}
	}
	return out
}

// WriteJSONL encodes the scorecard: one summary line, then one line per
// ground-truth window. Field order is fixed and floats use shortest-exact
// encoding so same-seed output is byte-identical across serial and
// parallel runs.
func (sc *Scorecard) WriteJSONL(w io.Writer) error {
	missed := sc.MissedList()
	quoted := make([]string, len(missed))
	for i, m := range missed {
		quoted[i] = fmt.Sprintf("%q", m)
	}
	if _, err := fmt.Fprintf(w,
		"{\"scenario\":%q,\"windows\":%d,\"detected\":%d,\"incidents\":%d,\"true_positives\":%d,\"false_alarms\":%d,\"warmup_false_alarms\":%d,\"precision\":%s,\"recall\":%s,\"ttd_mean_s\":%s,\"missed\":[%s]}\n",
		sc.Scenario, len(sc.Windows), sc.Detected(), sc.Incidents, sc.TruePositives,
		sc.FalseAlarms, sc.WarmupFalseAlarms,
		fmtF(sc.Precision()), fmtF(sc.Recall()), fmtF(sc.MeanTTD()),
		strings.Join(quoted, ",")); err != nil {
		return err
	}
	for i := range sc.Windows {
		ws := &sc.Windows[i]
		if _, err := fmt.Fprintf(w,
			"{\"scenario\":%q,\"window\":%q,\"region\":%d,\"start\":%d,\"end\":%d,\"detected\":%t,\"ttd_s\":%s,\"rule\":%q,\"matched\":%d}\n",
			sc.Scenario, ws.Label, ws.Region, ws.Start, ws.End, ws.Detected,
			fmtF(float64(ws.TTDNs)/1e9), ws.Rule, ws.Incidents); err != nil {
			return err
		}
	}
	return nil
}

// Package trace is the frame-lifecycle tracing subsystem: a low-overhead,
// allocation-conscious recorder of typed per-frame events across every
// data-plane layer — generation at the CDN origin, relay at edge nodes,
// reassembly / chain sequencing / recovery at the client, and final playout
// or loss — that aggregates into the cause-of-loss and deadline-budget
// breakdowns the paper's evaluation reports (Fig 3, Table 3).
//
// Design:
//
//   - Components record into per-component ring buffers (Buf) stamped with
//     simulation time. A nil *Buf is the disabled tracer: Rec on a nil
//     receiver is a single branch and allocates nothing, so the
//     zero-config path stays on the current fast path.
//   - Full rings flush into the owning per-run trace (Run). Because the
//     simulator is single-threaded, the per-run record sequence is a pure
//     function of the seed; Finish restores chronological record order, so
//     encoded traces are byte-identical across repeated runs and across
//     serial vs parallel experiment execution (each System owns one Run).
//   - Events carry only fixed-width integers — no strings, no interfaces —
//     so recording never allocates and encoding is trivially deterministic.
package trace

import (
	"fmt"
	"io"
	"sort"
)

// Comp identifies the component class that recorded an event.
type Comp uint8

const (
	// CompCDN is a dedicated CDN origin node.
	CompCDN Comp = iota
	// CompEdge is a best-effort relay node.
	CompEdge
	// CompClient is a viewer session (dataplane, playback, recovery).
	CompClient
	// CompChain is a client's global frame chain (sequencing layer).
	CompChain
	// CompRecovery is a client's recovery decision engine.
	CompRecovery
	// CompSched is the global scheduler.
	CompSched

	numComps
)

var compNames = [numComps]string{"cdn", "edge", "client", "chain", "recovery", "sched"}

// String names the component class.
func (c Comp) String() string {
	if int(c) < len(compNames) {
		return compNames[c]
	}
	return "unknown"
}

// Kind is the typed event tag. The A and B operands of Event are
// kind-specific; their meaning is documented per constant.
type Kind uint8

const (
	// KGenerated: origin produced a frame. A = substream k it hashes to,
	// B = payload size in bytes.
	KGenerated Kind = iota
	// KCDNServe: origin sent a full frame to a subscriber. A = destination
	// address, B = 1 when it was a dts-indexed recovery response.
	KCDNServe
	// KCDNRecoveryMiss: a dts-indexed recovery request missed the origin's
	// retention window. A = requester address.
	KCDNRecoveryMiss
	// KRelayed: edge sliced a frame into packets and pushed it. A = packet
	// count, B = subscriber count it fanned out to.
	KRelayed
	// KRetxServe: edge served a packet-retransmission request. A =
	// requester address, B = packets resent.
	KRetxServe
	// KRetxNack: edge could not serve a retransmission (frame outside its
	// window). A = requester address.
	KRetxNack
	// KFrameComplete: client fully reassembled a frame. A = 1 when the
	// completing delivery came from a dedicated node, B = retries spent.
	KFrameComplete
	// KChainMerge: a local chain merged into the client's global chain.
	// Dts = first appended footprint, A = entries appended, B = 1 when a
	// previously parked chain merged.
	KChainMerge
	// KChainPark: a local chain could not attach (gap ahead of the
	// terminal) and parked for retry. Dts = the chain's first footprint,
	// A = its length.
	KChainPark
	// KChainCRCFail: chain validation failed and rolled back the unlinked
	// suffix. A = entries evicted.
	KChainCRCFail
	// KRecoveryDecide: the loss engine modeled a frame and chose an
	// action. A = action code (recovery.Action), B = deadline budget in ms.
	KRecoveryDecide
	// KRecoveryAction: client executed a recovery action. A = action code
	// (0 retx, 1 dedicated fetch, 2 substream switch, 3 full fallback),
	// B = deadline budget in ms at execution time.
	KRecoveryAction
	// KPlayed: frame reached playout. A = end-to-end latency in ms
	// (generation to playout), 0 when unknown.
	KPlayed
	// KLost: frame abandoned (live-lag drop or stall-skip). A = cause code
	// (Cause*), B = packets received before abandonment.
	KLost
	// KStall: playback stalled (onset only).
	KStall
	// KSchedCandidates: scheduler answered a candidate request. A =
	// candidates returned, B = substream index.
	KSchedCandidates

	numKinds
)

var kindNames = [numKinds]string{
	"generated", "cdn-serve", "cdn-recovery-miss", "relayed", "retx-serve",
	"retx-nack", "frame-complete", "chain-merge", "chain-park",
	"chain-crc-fail", "recovery-decide", "recovery-action", "played",
	"lost", "stall", "sched-candidates",
}

// String names the event kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Cause-of-loss codes carried in KLost's A operand. They partition every
// lost frame by where its deadline was spent (the Fig 3 / Table 3
// attribution): frames the delivery plane never announced, frames that
// arrived partially, frames fully received but never sequenced, and frames
// that were ready yet dropped chasing the live edge.
const (
	// CauseUnannounced: no assembly existed — neither data nor a chain
	// footprint ever reached the client.
	CauseUnannounced uint64 = iota
	// CauseNoData: the chain announced the frame but zero packets arrived.
	CauseNoData
	// CausePartial: some packets arrived but reassembly never completed
	// before the deadline.
	CausePartial
	// CauseUnsequenced: the frame was fully received but its chain
	// position was never validated (sequencing loss, Table 3).
	CauseUnsequenced
	// CauseLiveLag: the frame was playable but dropped to chase the live
	// edge after accumulated stalls.
	CauseLiveLag

	numCauses
)

var causeNames = [numCauses]string{
	"unannounced", "no-data", "partial", "unsequenced", "live-lag",
}

// CauseName names a cause-of-loss code.
func CauseName(c uint64) string {
	if c < numCauses {
		return causeNames[c]
	}
	return "unknown"
}

// Event is one typed lifecycle record. All fields are fixed-width integers
// so recording allocates nothing and encoding is deterministic.
type Event struct {
	// Seq is the per-run record order (chronological: the simulator is
	// single-threaded, so ties at equal At resolve by execution order).
	Seq uint64
	// At is the simulation time in nanoseconds.
	At int64
	// Comp and Node identify the recording component.
	Comp Comp
	Kind Kind
	Node uint32
	// Stream and Dts identify the frame (0 when not frame-scoped).
	Stream uint32
	Dts    uint64
	// A and B are kind-specific operands (see Kind docs).
	A, B uint64
}

// ringSize is the per-component ring capacity; full rings flush into the
// per-run trace.
const ringSize = 512

// Buf is one component's ring buffer. A nil *Buf is the disabled tracer:
// every Rec call is a single nil check with no allocation.
type Buf struct {
	run  *Run
	now  func() int64
	comp Comp
	node uint32
	ring []Event
}

// Rec records one event stamped with the buffer's clock. Safe (and free)
// on a nil receiver: the wrapper stays under the inlining budget, so with
// tracing disabled every hook site compiles to one inlined nil check.
func (b *Buf) Rec(kind Kind, stream uint32, dts uint64, a, bb uint64) {
	if b == nil {
		return
	}
	b.rec(kind, stream, dts, a, bb)
}

func (b *Buf) rec(kind Kind, stream uint32, dts uint64, a, bb uint64) {
	b.run.seq++
	b.ring = append(b.ring, Event{
		Seq: b.run.seq, At: b.now(), Comp: b.comp, Kind: kind,
		Node: b.node, Stream: stream, Dts: dts, A: a, B: bb,
	})
	if len(b.ring) == cap(b.ring) {
		b.flush()
	}
}

// Enabled reports whether the buffer records (false for the nil tracer).
func (b *Buf) Enabled() bool { return b != nil }

// flush drains the ring into the owning run.
func (b *Buf) flush() {
	b.run.events = append(b.run.events, b.ring...)
	b.ring = b.ring[:0]
}

// Run is the per-run trace: the flush target of every component buffer of
// one simulated system, and the unit the CLI encodes to JSONL.
type Run struct {
	// Label names the run in the JSONL header (experiment/arm).
	Label string
	// Seed is the RNG seed the run used (recorded in the header so trace
	// diffs pin the exact configuration).
	Seed uint64

	seq      uint64
	events   []Event
	bufs     []*Buf
	finished bool
}

// NewRun returns an empty per-run trace.
func NewRun(label string, seed uint64) *Run {
	return &Run{Label: label, Seed: seed}
}

// Buffer creates a component ring buffer flushing into this run. now
// supplies the component's simulation clock in nanoseconds. Calling Buffer
// on a nil run returns the disabled tracer.
func (r *Run) Buffer(comp Comp, node uint32, now func() int64) *Buf {
	if r == nil {
		return nil
	}
	b := &Buf{run: r, now: now, comp: comp, node: node, ring: make([]Event, 0, ringSize)}
	r.bufs = append(r.bufs, b)
	return b
}

// Finish flushes every buffer and restores chronological (record) order.
// Idempotent; call once the simulation is done, before Events, Summarize,
// or WriteJSONL.
func (r *Run) Finish() {
	if r == nil || r.finished {
		return
	}
	for _, b := range r.bufs {
		b.flush()
	}
	sort.Slice(r.events, func(i, j int) bool { return r.events[i].Seq < r.events[j].Seq })
	r.finished = true
}

// Events returns the finished run's events in record order.
func (r *Run) Events() []Event {
	if r == nil {
		return nil
	}
	r.Finish()
	return r.events
}

// WriteJSONL encodes the run as one header line followed by one line per
// event. Field order is fixed and all values are integers, so the encoding
// of a finished run is byte-reproducible.
func (r *Run) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.Finish()
	if _, err := fmt.Fprintf(w, "{\"run\":%q,\"seed\":%d,\"events\":%d}\n", r.Label, r.Seed, len(r.events)); err != nil {
		return err
	}
	for i := range r.events {
		e := &r.events[i]
		if _, err := fmt.Fprintf(w,
			"{\"seq\":%d,\"at\":%d,\"comp\":%q,\"node\":%d,\"kind\":%q,\"stream\":%d,\"dts\":%d,\"a\":%d,\"b\":%d}\n",
			e.Seq, e.At, e.Comp.String(), e.Node, e.Kind.String(), e.Stream, e.Dts, e.A, e.B); err != nil {
			return err
		}
	}
	return nil
}

package trace

import (
	"bytes"
	"testing"
)

// TestNilBufIsFree: the disabled tracer must be a single branch — zero
// allocations per record, so the zero-config hot path stays untouched.
func TestNilBufIsFree(t *testing.T) {
	var b *Buf
	if b.Enabled() {
		t.Fatal("nil Buf reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		b.Rec(KGenerated, 1, 33, 0, 1200)
	})
	if allocs != 0 {
		t.Fatalf("nil Buf Rec allocates: %v allocs/op", allocs)
	}
}

// TestNilRunBuffer: Buffer on a nil Run returns the disabled tracer, so
// wiring does not need its own nil checks.
func TestNilRunBuffer(t *testing.T) {
	var r *Run
	if b := r.Buffer(CompCDN, 1, func() int64 { return 0 }); b != nil {
		t.Fatal("Buffer on nil Run returned a live Buf")
	}
	r.Finish() // must not panic
	if ev := r.Events(); ev != nil {
		t.Fatalf("nil Run has events: %v", ev)
	}
	var w bytes.Buffer
	if err := r.WriteJSONL(&w); err != nil || w.Len() != 0 {
		t.Fatalf("nil Run wrote output: err=%v len=%d", err, w.Len())
	}
}

// TestRingFlushAndOrder: events recorded across several buffers — enough to
// force mid-run ring flushes — come back in global record order.
func TestRingFlushAndOrder(t *testing.T) {
	var clock int64
	now := func() int64 { clock++; return clock }
	r := NewRun("test", 42)
	b1 := r.Buffer(CompCDN, 1, now)
	b2 := r.Buffer(CompClient, 2, now)
	const n = 3 * ringSize
	for i := 0; i < n; i++ {
		b1.Rec(KGenerated, 1, uint64(i), 0, 0)
		b2.Rec(KPlayed, 1, uint64(i), 0, 0)
	}
	ev := r.Events()
	if len(ev) != 2*n {
		t.Fatalf("got %d events, want %d", len(ev), 2*n)
	}
	for i := range ev {
		if ev[i].Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev[i].Seq, i+1)
		}
		if i > 0 && ev[i].At < ev[i-1].At {
			t.Fatalf("event %d out of time order", i)
		}
	}
	// Interleave preserved: even seqs came from b2, odd from b1.
	if ev[0].Comp != CompCDN || ev[1].Comp != CompClient {
		t.Fatalf("interleave lost: %v %v", ev[0].Comp, ev[1].Comp)
	}
}

// TestEncodeDeterministic: identical record sequences encode to identical
// bytes, and Finish is idempotent.
func TestEncodeDeterministic(t *testing.T) {
	mk := func() *Run {
		var clock int64
		now := func() int64 { clock += 1000; return clock }
		r := NewRun("run", 7)
		b := r.Buffer(CompEdge, 9, now)
		for i := 0; i < ringSize+10; i++ {
			b.Rec(KRelayed, 3, uint64(i*33), uint64(i), 2)
		}
		return r
	}
	var w1, w2 bytes.Buffer
	r1, r2 := mk(), mk()
	if err := r1.WriteJSONL(&w1); err != nil {
		t.Fatal(err)
	}
	r2.Finish()
	r2.Finish() // idempotent
	if err := r2.WriteJSONL(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("identical runs encoded differently")
	}
	// Re-encoding the same finished run is also stable.
	var w3 bytes.Buffer
	if err := r1.WriteJSONL(&w3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w3.Bytes()) {
		t.Fatal("re-encoding a finished run changed bytes")
	}
}

// TestSummarize: the aggregation buckets events by kind, cause, and action
// budget.
func TestSummarize(t *testing.T) {
	r := NewRun("s", 1)
	b := r.Buffer(CompClient, 1, func() int64 { return 0 })
	b.Rec(KGenerated, 1, 0, 0, 0)
	b.Rec(KFrameComplete, 1, 0, 1, 0)
	b.Rec(KPlayed, 1, 0, 50, 0)
	b.Rec(KLost, 1, 33, CauseLiveLag, 4)
	b.Rec(KLost, 1, 66, CausePartial, 2)
	b.Rec(KStall, 1, 66, 0, 0)
	b.Rec(KRecoveryAction, 1, 66, 1, 90) // fetch-dedicated, 90 ms budget
	b.Rec(KRecoveryAction, 1, 99, 1, 500)
	b.Rec(KChainMerge, 0, 33, 2, 0)
	b.Rec(KChainPark, 0, 66, 3, 0)
	s := Summarize(r, nil) // nil runs are skipped
	if s.Generated != 1 || s.Completed != 1 || s.Played != 1 || s.Lost != 2 || s.Stalls != 1 {
		t.Fatalf("totals wrong: %+v", s)
	}
	if s.LossByCause[CauseLiveLag] != 1 || s.LossByCause[CausePartial] != 1 {
		t.Fatalf("cause breakdown wrong: %v", s.LossByCause)
	}
	fd := s.Actions[1]
	if fd.Count != 2 || fd.BudgetSumMs != 590 || fd.Buckets[1] != 1 || fd.Buckets[3] != 1 {
		t.Fatalf("action stats wrong: %+v", fd)
	}
	if fd.MeanBudgetMs() != 295 {
		t.Fatalf("mean budget %v, want 295", fd.MeanBudgetMs())
	}
	if s.ChainMerges != 1 || s.ChainParks != 1 {
		t.Fatalf("chain counts wrong: %+v", s)
	}
	if len(s.Rows()) == 0 {
		t.Fatal("Rows empty")
	}
}

// TestNames: string mappings stay total over their enums.
func TestNames(t *testing.T) {
	for c := Comp(0); c < numComps; c++ {
		if c.String() == "unknown" || c.String() == "" {
			t.Fatalf("comp %d unnamed", c)
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	for c := uint64(0); c < numCauses; c++ {
		if CauseName(c) == "unknown" || CauseName(c) == "" {
			t.Fatalf("cause %d unnamed", c)
		}
	}
	if Comp(200).String() != "unknown" || Kind(200).String() != "unknown" ||
		CauseName(200) != "unknown" || ActionName(200) != "unknown" {
		t.Fatal("out-of-range names not guarded")
	}
}

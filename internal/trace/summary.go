package trace

import "fmt"

// budgetBuckets are the deadline-budget histogram edges in milliseconds:
// one frame interval at 30 fps, the recovery-tick scale, the production
// fallback threshold, and everything beyond.
var budgetBuckets = [...]uint64{33, 100, 400}

// ActionStats aggregates one recovery action's executions and the deadline
// budget available when it was chosen.
type ActionStats struct {
	Count int
	// BudgetSumMs accumulates deadline budgets; BudgetSumMs/Count is the
	// mean headroom the action was given.
	BudgetSumMs uint64
	// Buckets histograms budgets: <=33 ms, <=100 ms, <=400 ms, >400 ms.
	Buckets [len(budgetBuckets) + 1]int
}

// MeanBudgetMs returns the mean deadline budget at execution time.
func (a *ActionStats) MeanBudgetMs() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.BudgetSumMs) / float64(a.Count)
}

func (a *ActionStats) add(budgetMs uint64) {
	a.Count++
	a.BudgetSumMs += budgetMs
	for i, edge := range budgetBuckets {
		if budgetMs <= edge {
			a.Buckets[i]++
			return
		}
	}
	a.Buckets[len(budgetBuckets)]++
}

// actionNames mirror recovery.Action codes; trace keeps its own copy so it
// depends on nothing above the standard library.
var actionNames = [...]string{"retry-best-effort", "fetch-dedicated", "switch-substream", "full-fallback"}

// ActionName names a recovery action code.
func ActionName(a uint64) string {
	if a < uint64(len(actionNames)) {
		return actionNames[a]
	}
	return "unknown"
}

// Summary is the per-run (or merged multi-run) aggregation: lifecycle
// totals, the cause-of-loss breakdown, and per-action deadline budgets.
type Summary struct {
	Generated int
	Relayed   int
	Completed int
	Played    int
	Lost      int
	Stalls    int
	// LossByCause indexes Cause* codes.
	LossByCause [numCauses]int
	// Actions indexes executed recovery actions by code.
	Actions [len(actionNames)]ActionStats
	// ChainMerges / ChainParks / ChainCRCFails count sequencing activity.
	ChainMerges   int
	ChainParks    int
	ChainCRCFails int
}

// Summarize folds the given runs into one aggregate.
func Summarize(runs ...*Run) Summary {
	var s Summary
	for _, r := range runs {
		if r == nil {
			continue
		}
		for _, e := range r.Events() {
			switch e.Kind {
			case KGenerated:
				s.Generated++
			case KRelayed:
				s.Relayed++
			case KFrameComplete:
				s.Completed++
			case KPlayed:
				s.Played++
			case KLost:
				s.Lost++
				c := e.A
				if c >= numCauses {
					c = numCauses - 1
				}
				s.LossByCause[c]++
			case KStall:
				s.Stalls++
			case KRecoveryAction:
				if e.A < uint64(len(s.Actions)) {
					s.Actions[e.A].add(e.B)
				}
			case KChainMerge:
				s.ChainMerges++
			case KChainPark:
				s.ChainParks++
			case KChainCRCFail:
				s.ChainCRCFails++
			}
		}
	}
	return s
}

// Rows renders the summary as (label, value) pairs in a fixed order — the
// cause-of-loss and deadline-budget breakdown the experiments print.
func (s *Summary) Rows() [][2]string {
	out := [][2]string{
		{"frames generated", fmt.Sprintf("%d", s.Generated)},
		{"frames relayed", fmt.Sprintf("%d", s.Relayed)},
		{"frames completed", fmt.Sprintf("%d", s.Completed)},
		{"frames played", fmt.Sprintf("%d", s.Played)},
		{"frames lost", fmt.Sprintf("%d", s.Lost)},
		{"stall onsets", fmt.Sprintf("%d", s.Stalls)},
	}
	for c := uint64(0); c < numCauses; c++ {
		out = append(out, [2]string{
			"lost: " + CauseName(c), fmt.Sprintf("%d", s.LossByCause[c]),
		})
	}
	for a := range s.Actions {
		st := &s.Actions[a]
		out = append(out, [2]string{
			"action " + ActionName(uint64(a)),
			fmt.Sprintf("%d (mean budget %.0f ms; <=33/<=100/<=400/>400: %d/%d/%d/%d)",
				st.Count, st.MeanBudgetMs(),
				st.Buckets[0], st.Buckets[1], st.Buckets[2], st.Buckets[3]),
		})
	}
	out = append(out,
		[2]string{"chain merges", fmt.Sprintf("%d", s.ChainMerges)},
		[2]string{"chain parks", fmt.Sprintf("%d", s.ChainParks)},
		[2]string{"chain crc failures", fmt.Sprintf("%d", s.ChainCRCFails)},
	)
	return out
}

// Package nat models NAT classification and traversal for best-effort
// nodes. Most best-effort nodes sit behind NATs of varying types (§2.1),
// which constrains connection establishment; the paper's deployment refined
// the RFC 5780 taxonomy with two additionally observed behaviours —
// incremental port mappings and sequential firewall filtering — and used
// port prediction and asymmetric TTL tuning to expand the usable node pool
// by ~22% (§8.1).
package nat

import "repro/internal/stats"

// Type classifies a node's NAT behaviour.
type Type uint8

const (
	// Public means no NAT: directly reachable.
	Public Type = iota
	// FullCone maps one internal address to one external address for all
	// destinations.
	FullCone
	// AddressRestricted filters inbound by source address.
	AddressRestricted
	// PortRestricted filters inbound by source address and port.
	PortRestricted
	// Symmetric allocates a fresh mapping per destination; hardest to
	// traverse with classical hole punching.
	Symmetric
	// SymmetricIncremental is a deployment-observed refinement of
	// Symmetric whose port allocations advance by a small fixed stride,
	// making port prediction effective.
	SymmetricIncremental
	// SequentialFilter is the second deployment-observed behaviour: a
	// firewall that admits flows only after outbound packets in a
	// specific sequence, defeated by asymmetric TTL tuning.
	SequentialFilter

	numTypes
)

var typeNames = [...]string{
	"public", "full-cone", "addr-restricted", "port-restricted",
	"symmetric", "symmetric-incremental", "sequential-filter",
}

// String returns the lowercase name of the type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "unknown"
}

// NumTypes returns the number of modeled NAT types.
func NumTypes() int { return int(numTypes) }

// baseSuccess is the modeled hole-punching success probability per type
// using only classical RFC 5780 techniques.
var baseSuccess = [numTypes]float64{
	Public:               0.995,
	FullCone:             0.97,
	AddressRestricted:    0.93,
	PortRestricted:       0.85,
	Symmetric:            0.45,
	SymmetricIncremental: 0.45, // indistinguishable from Symmetric w/o refinement
	SequentialFilter:     0.30, // looks like a dead node w/o refinement
}

// refinedSuccess applies the paper's targeted techniques: port prediction
// for incremental symmetric NATs and TTL tuning for sequential filters.
var refinedSuccess = [numTypes]float64{
	Public:               0.995,
	FullCone:             0.97,
	AddressRestricted:    0.93,
	PortRestricted:       0.88,
	Symmetric:            0.50,
	SymmetricIncremental: 0.86,
	SequentialFilter:     0.82,
}

// Traverser decides connection-establishment outcomes.
type Traverser struct {
	rng *stats.RNG
	// Refined enables the fine-grained classification + targeted
	// traversal techniques of §8.1.
	Refined bool
}

// NewTraverser returns a traverser drawing from rng.
func NewTraverser(rng *stats.RNG, refined bool) *Traverser {
	return &Traverser{rng: rng, Refined: refined}
}

// SuccessProb returns the connection success probability toward a node with
// NAT type t.
func (tr *Traverser) SuccessProb(t Type) float64 {
	if int(t) >= int(numTypes) {
		return 0
	}
	if tr.Refined {
		return refinedSuccess[t]
	}
	return baseSuccess[t]
}

// Connect attempts a traversal and reports success.
func (tr *Traverser) Connect(t Type) bool {
	return tr.rng.Bool(tr.SuccessProb(t))
}

// SuccessProbStatic exposes the modeled probability without a traverser
// (for the scheduler's NAT-specific success-rate prior R(n, c)).
func SuccessProbStatic(t Type, refined bool) float64 {
	if int(t) >= int(numTypes) {
		return 0
	}
	if refined {
		return refinedSuccess[t]
	}
	return baseSuccess[t]
}

// Mix is the modeled population distribution of NAT types among best-effort
// nodes (ISP facility boxes skew toward port-restricted and symmetric).
var Mix = [numTypes]float64{
	Public:               0.06,
	FullCone:             0.10,
	AddressRestricted:    0.14,
	PortRestricted:       0.34,
	Symmetric:            0.22,
	SymmetricIncremental: 0.09,
	SequentialFilter:     0.05,
}

// Sample draws a NAT type from Mix.
func Sample(rng *stats.RNG) Type {
	u := rng.Float64()
	acc := 0.0
	for t := Type(0); t < numTypes; t++ {
		acc += Mix[t]
		if u < acc {
			return t
		}
	}
	return Symmetric
}

// UsablePoolFraction returns the expected fraction of nodes whose traversal
// succeeds, under the given refinement setting — the quantity behind the
// paper's "~22% pool expansion" claim.
func UsablePoolFraction(refined bool) float64 {
	total := 0.0
	for t := Type(0); t < numTypes; t++ {
		total += Mix[t] * SuccessProbStatic(t, refined)
	}
	return total
}

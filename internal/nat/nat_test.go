package nat

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestMixSumsToOne(t *testing.T) {
	sum := 0.0
	for _, p := range Mix {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Mix sums to %v", sum)
	}
}

func TestTypeStrings(t *testing.T) {
	if Public.String() != "public" || Symmetric.String() != "symmetric" {
		t.Fatal("type names wrong")
	}
	if Type(200).String() != "unknown" {
		t.Fatal("unknown type name wrong")
	}
}

func TestSampleDistribution(t *testing.T) {
	rng := stats.NewRNG(1)
	counts := make([]int, NumTypes())
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Sample(rng)]++
	}
	for tt := Type(0); int(tt) < NumTypes(); tt++ {
		got := float64(counts[tt]) / n
		if math.Abs(got-Mix[tt]) > 0.01 {
			t.Errorf("type %v frequency %.3f, want %.3f", tt, got, Mix[tt])
		}
	}
}

func TestRefinementImprovesHardTypes(t *testing.T) {
	for _, tt := range []Type{SymmetricIncremental, SequentialFilter} {
		if SuccessProbStatic(tt, true) <= SuccessProbStatic(tt, false) {
			t.Errorf("refinement does not help %v", tt)
		}
	}
	// Easy types should be unaffected or nearly so.
	if SuccessProbStatic(Public, true) != SuccessProbStatic(Public, false) {
		t.Error("refinement should not change public nodes")
	}
}

func TestUsablePoolExpansion(t *testing.T) {
	base := UsablePoolFraction(false)
	refined := UsablePoolFraction(true)
	gain := (refined - base) / base
	// The paper reports ~22% pool expansion; our mix should land in the
	// same neighbourhood (5-30%).
	if gain < 0.03 || gain > 0.35 {
		t.Fatalf("pool expansion %.1f%%, want single-to-low-double digits", gain*100)
	}
}

func TestTraverserConnectRate(t *testing.T) {
	tr := NewTraverser(stats.NewRNG(2), false)
	succ := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if tr.Connect(PortRestricted) {
			succ++
		}
	}
	got := float64(succ) / n
	if math.Abs(got-baseSuccess[PortRestricted]) > 0.02 {
		t.Fatalf("connect rate %.3f, want %.3f", got, baseSuccess[PortRestricted])
	}
}

func TestSuccessProbUnknownType(t *testing.T) {
	tr := NewTraverser(stats.NewRNG(3), true)
	if tr.SuccessProb(Type(99)) != 0 {
		t.Fatal("unknown type should have zero success")
	}
	if SuccessProbStatic(Type(99), false) != 0 {
		t.Fatal("unknown type should have zero success (static)")
	}
}

package obs

import (
	"sort"
	"strconv"

	"repro/internal/telemetry"
)

// promNamePrefix namespaces every exposed family, per Prometheus naming
// conventions (application prefix).
const promNamePrefix = "rlive_"

// sanitizeMetricName maps a registry instrument name ("net.frames_sent",
// "fleet.online_frac.r3") onto the Prometheus name charset
// [a-zA-Z0-9_:], replacing every other byte with '_' and prepending the
// rlive_ prefix: "rlive_net_frames_sent". Pure function of the input, so
// exposition is as deterministic as the registry it renders.
func sanitizeMetricName(name string) string {
	b := make([]byte, 0, len(promNamePrefix)+len(name))
	b = append(b, promNamePrefix...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b = append(b, c)
		case c >= '0' && c <= '9':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// promF encodes a float the way Prometheus text format expects; shortest
// exact round-trip form, matching the registry's JSONL convention.
func promF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promFamily is one exposition family: a sanitized name plus the
// instrument snapshot backing it.
type promFamily struct {
	name string
	inst *telemetry.InstSnap
}

// AppendExposition renders the snapshots as Prometheus text exposition
// format (version 0.0.4) appended to dst. Families are sorted by exposed
// name so output order is independent of registration order and stable
// across runs — the property the golden test pins. Counters gain the
// _total suffix; histograms expand to cumulative _bucket{le="..."} series
// plus _sum and _count.
func AppendExposition(dst []byte, snaps ...telemetry.Snap) []byte {
	var fams []promFamily
	for si := range snaps {
		for i := range snaps[si].Insts {
			in := &snaps[si].Insts[i]
			name := sanitizeMetricName(in.Name)
			if in.Kind == telemetry.KindCounter {
				name += "_total"
			}
			fams = append(fams, promFamily{name: name, inst: in})
		}
	}
	sort.SliceStable(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	for _, f := range fams {
		in := f.inst
		switch in.Kind {
		case telemetry.KindCounter:
			dst = append(dst, "# TYPE "...)
			dst = append(dst, f.name...)
			dst = append(dst, " counter\n"...)
			dst = append(dst, f.name...)
			dst = append(dst, ' ')
			dst = strconv.AppendUint(dst, in.C, 10)
			dst = append(dst, '\n')
		case telemetry.KindHist:
			dst = append(dst, "# TYPE "...)
			dst = append(dst, f.name...)
			dst = append(dst, " histogram\n"...)
			var cum uint64
			for bi, edge := range in.Edges {
				if bi < len(in.Buckets) {
					cum += in.Buckets[bi]
				}
				dst = append(dst, f.name...)
				dst = append(dst, `_bucket{le="`...)
				dst = append(dst, promF(edge)...)
				dst = append(dst, `"} `...)
				dst = strconv.AppendUint(dst, cum, 10)
				dst = append(dst, '\n')
			}
			dst = append(dst, f.name...)
			dst = append(dst, `_bucket{le="+Inf"} `...)
			dst = strconv.AppendUint(dst, in.C, 10)
			dst = append(dst, '\n')
			dst = append(dst, f.name...)
			dst = append(dst, "_sum "...)
			dst = append(dst, promF(in.F)...)
			dst = append(dst, '\n')
			dst = append(dst, f.name...)
			dst = append(dst, "_count "...)
			dst = strconv.AppendUint(dst, in.C, 10)
			dst = append(dst, '\n')
		default: // gauge (stored or derived)
			dst = append(dst, "# TYPE "...)
			dst = append(dst, f.name...)
			dst = append(dst, " gauge\n"...)
			dst = append(dst, f.name...)
			dst = append(dst, ' ')
			dst = append(dst, promF(in.F)...)
			dst = append(dst, '\n')
		}
	}
	return dst
}

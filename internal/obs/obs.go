// Package obs is the live observability plane: an embeddable HTTP server
// (standard library only) that exposes a telemetry registry, alerting
// incidents, and trace summaries while the process runs, instead of — not
// in place of — the post-hoc JSONL artifacts.
//
// Endpoints:
//
//	GET /metrics  — Prometheus text exposition of a point-in-time
//	                registry snapshot (counters as _total, gauges,
//	                histograms as _bucket/_sum/_count), family-sorted so
//	                output is golden-testable.
//	GET /events   — SSE stream of typed JSON events: "scrape" (per-scrape
//	                instrument deltas), "incident" (open/ack/resolve
//	                transitions), "trace-summary". Each subscriber gets a
//	                bounded ring; slow consumers drop oldest and learn it
//	                via an in-band "dropped" event. Publishing never
//	                blocks the data path.
//	GET /healthz  — liveness: component-registered probes, 200/503.
//	GET /readyz   — readiness: same shape, separate probe set.
//	GET /snapshot — the full registry state plus all incidents seen, as
//	                one JSON document.
//
// Consistency model — two snapshot sources, chosen per registry:
//
//   - AddLiveRegistry (real binaries): /metrics calls
//     telemetry.Registry.Snapshot at request time. Gauge funcs run on the
//     HTTP goroutine, so everything they read must be goroutine-safe —
//     true for the livenet components, whose gauge funcs take the
//     component mutex.
//   - WatchRegistry (simulator bridge): /metrics renders the registry's
//     LastSnap — the most recent completed scrape, an immutable value —
//     and never evaluates gauge funcs off the producer thread, because
//     sim gauge funcs read simulator state that must not be touched
//     concurrently. The watch hook publishes an SSE scrape event per
//     scrape and costs zero allocations while no SSE client is connected,
//     so enabling -obs cannot perturb the byte-determinism gates.
//
// A nil *Server is the disabled plane: every method is a safe no-op, so
// wiring is unconditional at call sites.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alerting"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Options configures a Server. The zero value is usable.
type Options struct {
	// RingSize is each SSE subscriber's event buffer (default 256).
	RingSize int
	// Now supplies wall-clock nanoseconds for live snapshots and the
	// /snapshot timestamp (default time.Now().UnixNano). Tests inject a
	// fixed clock to make rendered output reproducible.
	Now func() int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (index,
	// profile, heap, mutex, block, ...) so a long run can be profiled over
	// the same port that serves /metrics. Mutex/block sampling rates stay
	// at the runtime defaults unless the binary's -prof-rates flag raises
	// them.
	EnablePprof bool
}

// probe is one named health check.
type probe struct {
	name string
	fn   func() error
}

// incKey identifies one incident across engines: engines are keyed by
// label so a multi-cell sim run can attach several.
type incKey struct {
	label string
	id    int
}

// Server is the observability HTTP server. Construct with NewServer, wire
// sources/probes, then Start. A nil *Server is a safe no-op.
type Server struct {
	opts Options
	hub  *hub

	// cur is the most recently scraped watched registry; /metrics renders
	// its LastSnap. An atomic pointer so the scrape-path store is
	// lock-free and allocation-free.
	cur atomic.Pointer[telemetry.Registry]

	mu        sync.Mutex
	sources   []func() telemetry.Snap
	incidents map[incKey]alerting.Incident
	live      []probe
	ready     []probe

	httpSrv *http.Server
	ln      net.Listener

	// done stops poll loops when the server closes.
	done      chan struct{}
	closeOnce sync.Once
}

// NewServer returns an unstarted server.
func NewServer(opts Options) *Server {
	if opts.RingSize <= 0 {
		opts.RingSize = 256
	}
	if opts.Now == nil {
		opts.Now = func() int64 { return time.Now().UnixNano() }
	}
	return &Server{
		opts:      opts,
		hub:       newHub(opts.RingSize),
		incidents: make(map[incKey]alerting.Incident),
		done:      make(chan struct{}),
	}
}

// now returns the configured clock's reading.
func (s *Server) now() int64 { return s.opts.Now() }

// AddSource registers a snapshot source rendered by /metrics and
// /snapshot. fn is called on HTTP goroutines and must be safe there.
// No-op on a nil server.
func (s *Server) AddSource(fn func() telemetry.Snap) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.sources = append(s.sources, fn)
	s.mu.Unlock()
}

// AddLiveRegistry exposes reg via request-time Snapshot calls — the mode
// for real binaries, where instruments are updated from many goroutines
// and gauge funcs are goroutine-safe. No-op on a nil server or registry.
func (s *Server) AddLiveRegistry(reg *telemetry.Registry) {
	if s == nil || reg == nil {
		return
	}
	s.AddSource(func() telemetry.Snap { return reg.Snapshot(s.now()) })
}

// WatchRegistry subscribes to reg's scrape timeline: each scrape makes
// reg the registry /metrics renders (via LastSnap — never a request-time
// snapshot, so sim gauge funcs are only ever evaluated on the producer
// thread) and, when SSE clients are connected, publishes a "scrape"
// event. With no clients connected the hook is allocation-free, so
// watching a simulator registry cannot perturb its determinism gates.
// No-op on a nil server or registry.
func (s *Server) WatchRegistry(reg *telemetry.Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.OnScrape(s.onScrape)
}

// onScrape is the watch hook. The fast path — no SSE subscriber — is two
// atomic operations and zero allocations.
func (s *Server) onScrape(r *telemetry.Registry, i int) {
	s.cur.Store(r)
	if !s.hub.Active() {
		return
	}
	s.publishScrape(r, i)
}

// scrapeInst is one instrument in a "scrape" SSE event: cumulative value
// plus the delta since the previous scrape (counters and histogram counts).
type scrapeInst struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"`
	C     uint64  `json:"c,omitempty"`
	Delta uint64  `json:"delta,omitempty"`
	F     float64 `json:"f,omitempty"`
}

// scrapeEvent is the "scrape" SSE payload.
type scrapeEvent struct {
	Label string       `json:"label"`
	Seed  uint64       `json:"seed"`
	At    int64        `json:"at"`
	Index int          `json:"index"`
	Insts []scrapeInst `json:"insts"`
}

// publishScrape ships scrape i of r as an SSE event, differencing against
// scrape i-1 for the delta fields.
func (s *Server) publishScrape(r *telemetry.Registry, i int) {
	var prev telemetry.Snap
	if i > 0 {
		prev = r.SnapAt(i - 1)
	}
	s.publishSnapDelta(r.SnapAt(i), prev, i)
}

// publishSnapDelta ships snap as a "scrape" SSE event, using prev for the
// counter/histogram delta fields.
func (s *Server) publishSnapDelta(snap, prev telemetry.Snap, index int) {
	ev := scrapeEvent{Label: snap.Label, Seed: snap.Seed, At: snap.At, Index: index,
		Insts: make([]scrapeInst, 0, len(snap.Insts))}
	for ii := range snap.Insts {
		in := &snap.Insts[ii]
		si := scrapeInst{Name: in.Name, Type: in.Kind.String()}
		switch in.Kind {
		case telemetry.KindCounter, telemetry.KindHist:
			si.C = in.C
			si.Delta = in.C
			if ii < len(prev.Insts) {
				si.Delta = in.C - prev.Insts[ii].C
			}
			if in.Kind == telemetry.KindHist {
				si.F = in.F
			}
		default:
			si.F = in.F
		}
		ev.Insts = append(ev.Insts, si)
	}
	data, err := json.Marshal(&ev)
	if err != nil {
		return
	}
	s.hub.Publish("scrape", data)
}

// PollRegistry publishes a "scrape" SSE event from a fresh reg.Snapshot
// every interval, for live registries that have no scrape timeline of
// their own (the long-running daemons — appending a wall-clock daemon's
// scrapes to the registry timeline would grow without bound). Snapshots
// are only taken while an SSE client is connected; the loop stops when
// the server closes. No-op on a nil server or registry.
func (s *Server) PollRegistry(reg *telemetry.Registry, every time.Duration) {
	if s == nil || reg == nil {
		return
	}
	if every <= 0 {
		every = 2 * time.Second
	}
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		var prev telemetry.Snap
		index := 0
		for {
			select {
			case <-s.done:
				return
			case <-tick.C:
			}
			if !s.hub.Active() {
				continue
			}
			snap := reg.Snapshot(s.now())
			s.publishSnapDelta(snap, prev, index)
			prev = snap
			index++
		}
	}()
}

// AttachAlerting subscribes to the engine's incident transitions: each
// open/ack/resolve is recorded for /snapshot and, when SSE clients are
// connected, published as an "incident" event using the same canonical
// incident encoding as the JSONL log. No-op on a nil server or engine.
func (s *Server) AttachAlerting(e *alerting.Engine) {
	if s == nil || e == nil {
		return
	}
	label := e.Label
	e.OnTransition(func(kind string, in alerting.Incident) {
		s.mu.Lock()
		s.incidents[incKey{label: label, id: in.ID}] = in
		s.mu.Unlock()
		if !s.hub.Active() {
			return
		}
		data := make([]byte, 0, 256)
		data = append(data, `{"transition":"`...)
		data = append(data, kind...)
		data = append(data, `","run":`...)
		data = appendJSONString(data, label)
		data = append(data, `,"incident":`...)
		data = in.AppendJSON(data)
		data = append(data, '}')
		s.hub.Publish("incident", data)
	})
}

// PublishTraceSummary ships a trace summary as an SSE "trace-summary"
// event. No-op on a nil server or when no client is connected.
func (s *Server) PublishTraceSummary(label string, sum trace.Summary) {
	if s == nil || !s.hub.Active() {
		return
	}
	doc := struct {
		Run     string        `json:"run"`
		Summary trace.Summary `json:"summary"`
	}{Run: label, Summary: sum}
	data, err := json.Marshal(&doc)
	if err != nil {
		return
	}
	s.hub.Publish("trace-summary", data)
}

// Publish ships an arbitrary typed event to SSE subscribers (used by the
// sim bridge for progress updates). Takes ownership of data, which must
// be a single line of valid JSON. No-op on a nil server.
func (s *Server) Publish(typ string, data []byte) {
	if s == nil || !s.hub.Active() {
		return
	}
	s.hub.Publish(typ, data)
}

// StreamActive reports whether any SSE client is connected — the gate
// callers use to skip building event payloads. False on a nil server.
func (s *Server) StreamActive() bool { return s != nil && s.hub.Active() }

// AddLiveness registers a /healthz probe. No-op on a nil server.
func (s *Server) AddLiveness(name string, fn func() error) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.live = append(s.live, probe{name: name, fn: fn})
	s.mu.Unlock()
}

// AddReadiness registers a /readyz probe. No-op on a nil server.
func (s *Server) AddReadiness(name string, fn func() error) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.ready = append(s.ready, probe{name: name, fn: fn})
	s.mu.Unlock()
}

// snapshots collects every renderable snapshot: registered sources in
// registration order, then the most recently watched registry (if any).
func (s *Server) snapshots() []telemetry.Snap {
	s.mu.Lock()
	sources := s.sources
	s.mu.Unlock()
	snaps := make([]telemetry.Snap, 0, len(sources)+1)
	for _, fn := range sources {
		snaps = append(snaps, fn())
	}
	if cur := s.cur.Load(); cur != nil {
		snaps = append(snaps, cur.LastSnap())
	}
	return snaps
}

// handleMetrics renders GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body := AppendExposition(nil, s.snapshots()...)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(body)
}

// handleSnapshot renders GET /snapshot: every source snapshot plus every
// incident transition seen, one JSON document. Instruments reuse the
// telemetry JSONL per-instrument encoder and incidents the alerting one,
// so this document can never drift from the artifact formats.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snaps := s.snapshots()

	s.mu.Lock()
	keys := make([]incKey, 0, len(s.incidents))
	for k := range s.incidents {
		keys = append(keys, k)
	}
	incs := make([]alerting.Incident, 0, len(keys))
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].label != keys[b].label {
			return keys[a].label < keys[b].label
		}
		return keys[a].id < keys[b].id
	})
	labels := make([]string, 0, len(keys))
	for _, k := range keys {
		incs = append(incs, s.incidents[k])
		labels = append(labels, k.label)
	}
	s.mu.Unlock()

	buf := make([]byte, 0, 4096)
	buf = append(buf, `{"at":`...)
	buf = fmt.Appendf(buf, "%d", s.now())
	buf = append(buf, `,"sources":[`...)
	for si, snap := range snaps {
		if si > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"label":`...)
		buf = appendJSONString(buf, snap.Label)
		buf = fmt.Appendf(buf, `,"seed":%d,"scrape_at":%d,"insts":[`, snap.Seed, snap.At)
		for ii := range snap.Insts {
			if ii > 0 {
				buf = append(buf, ',')
			}
			buf = appendInstJSON(buf, snap.At, &snap.Insts[ii])
		}
		buf = append(buf, `]}`...)
	}
	buf = append(buf, `],"incidents":[`...)
	for i := range incs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"run":`...)
		buf = appendJSONString(buf, labels[i])
		buf = append(buf, `,"incident":`...)
		buf = incs[i].AppendJSON(buf)
		buf = append(buf, '}')
	}
	buf = fmt.Appendf(buf, `],"sse_dropped":%d}`, s.hub.Dropped())
	buf = append(buf, '\n')

	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
}

// appendInstJSON appends one instrument's canonical JSON object (the
// telemetry JSONL line encoding, sans newline).
func appendInstJSON(dst []byte, at int64, in *telemetry.InstSnap) []byte {
	b := sliceWriter{buf: dst}
	telemetry.WriteInstJSONL(&b, at, in)
	// Strip the JSONL trailing newline for embedding in an array.
	if n := len(b.buf); n > 0 && b.buf[n-1] == '\n' {
		b.buf = b.buf[:n-1]
	}
	return b.buf
}

// sliceWriter adapts an append-buffer to io.Writer.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// appendJSONString appends s as a JSON string literal.
func appendJSONString(dst []byte, s string) []byte {
	b, _ := json.Marshal(s)
	return append(dst, b...)
}

// handleProbes renders /healthz or /readyz from the given probe set:
// 200 "ok" when every probe passes, 503 with one "name: error" line per
// failure otherwise. An empty probe set passes.
func handleProbes(w http.ResponseWriter, probes []probe) {
	type failure struct {
		name string
		err  error
	}
	var fails []failure
	for _, p := range probes {
		if err := p.fn(); err != nil {
			fails = append(fails, failure{name: p.name, err: err})
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(fails) == 0 {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	for _, f := range fails {
		fmt.Fprintf(w, "%s: %v\n", f.name, f.err)
	}
}

// Handler returns the server's HTTP mux (nil on a nil server) — usable
// for embedding in an existing server or in tests without a listener.
func (s *Server) Handler() http.Handler {
	if s == nil {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /events", s.hub.serveSSE)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		probes := s.live
		s.mu.Unlock()
		handleProbes(w, probes)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		probes := s.ready
		s.mu.Unlock()
		handleProbes(w, probes)
	})
	if s.opts.EnablePprof {
		// pprof.Index serves the whole /debug/pprof/ subtree (heap, mutex,
		// block, goroutine, ...); the three handlers below are the ones the
		// index cannot dispatch itself.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Start listens on addr ("host:port"; ":0" picks a free port) and serves
// in a background goroutine, returning the bound address. No-op ("", nil)
// on a nil server.
func (s *Server) Start(addr string) (string, error) {
	if s == nil {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	srv := s.httpSrv
	s.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address ("" before Start or on nil).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the HTTP server and closes every SSE stream. No-op on a nil
// or unstarted server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

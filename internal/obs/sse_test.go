package obs

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestSSEOrderingAndBackpressure pins the hub contract: events arrive in
// publish order, a slow subscriber's ring drops oldest-first without ever
// blocking the publisher, and the drop count is observable.
func TestSSEOrderingAndBackpressure(t *testing.T) {
	h := newHub(4)
	sub := h.subscribe()
	defer h.unsubscribe(sub)

	if !h.Active() {
		t.Fatal("hub should be active with one subscriber")
	}

	// Publish 10 events into a ring of 4 with nobody draining. Publishing
	// must complete immediately (nothing blocks on the consumer).
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			h.Publish("scrape", []byte(fmt.Sprintf(`{"i":%d}`, i)))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publish blocked on a slow subscriber")
	}

	evs, dropped := sub.drain(nil)
	if len(evs) != 4 {
		t.Fatalf("ring of 4 holds %d events", len(evs))
	}
	// Oldest dropped: events 6..9 remain, in order, with monotone seqs.
	for i, ev := range evs {
		want := fmt.Sprintf(`{"i":%d}`, 6+i)
		if string(ev.Data) != want {
			t.Fatalf("event %d = %s, want %s (drop-oldest order violated)", i, ev.Data, want)
		}
		if i > 0 && ev.Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-monotone seq: %d after %d", ev.Seq, evs[i-1].Seq)
		}
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if h.Dropped() != 6 {
		t.Fatalf("hub dropped = %d, want 6", h.Dropped())
	}

	// A drained subscriber receives subsequent events in order.
	h.Publish("incident", []byte(`{"i":10}`))
	evs, _ = sub.drain(nil)
	if len(evs) != 1 || evs[0].Type != "incident" || string(evs[0].Data) != `{"i":10}` {
		t.Fatalf("post-drain event wrong: %+v", evs)
	}
}

// TestSSEStreamOverHTTP runs the real handler end to end: subscribe via
// GET /events, receive typed events with ids, and observe the in-band
// dropped advisory after overflowing the ring.
func TestSSEStreamOverHTTP(t *testing.T) {
	srv := NewServer(Options{RingSize: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	client := ts.Client()
	resp, err := client.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Wait for the subscriber to register, then publish.
	deadline := time.Now().Add(2 * time.Second)
	for !srv.hub.Active() {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Publish("scrape", []byte(`{"a":1}`))
	srv.Publish("incident", []byte(`{"b":2}`))

	r := bufio.NewReader(resp.Body)
	var got []string
	for len(got) < 2 {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v (got %v)", err, got)
		}
		line = strings.TrimRight(line, "\n")
		if strings.HasPrefix(line, "event: ") || strings.HasPrefix(line, "data: ") {
			got = append(got, line)
		}
	}
	want := []string{"event: scrape", `data: {"a":1}`}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream line %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

package obs

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one typed SSE event: a type tag ("scrape", "incident",
// "trace-summary") and a single-line JSON payload. The hub seals each
// published event with a monotone sequence id clients see as the SSE id
// field.
type Event struct {
	Seq  uint64
	Type string
	Data []byte
}

// hub fans published events out to SSE subscribers. Every subscriber owns
// a bounded ring; when a slow consumer's ring fills, the oldest event is
// dropped and the subscriber's dropped counter advances — publishing
// never blocks and never waits on a consumer, so the data path (the
// simulator thread or a binary's packet loop) is isolated from any HTTP
// client's read rate.
type hub struct {
	ringCap int

	// nsubs mirrors len(subs) atomically so the data-path fast check
	// (Active) costs one atomic load and no lock.
	nsubs atomic.Int32
	// dropped counts ring overwrites across all subscribers.
	dropped atomic.Uint64

	mu   sync.Mutex
	seq  uint64
	subs map[*hubSub]struct{}
}

// hubSub is one subscriber: a fixed-capacity ring plus a 1-slot wakeup
// channel. All ring state is guarded by its own mutex so a publish holds
// each subscriber's lock only for the copy-in.
type hubSub struct {
	mu      sync.Mutex
	ring    []Event // capacity ringCap
	start   int     // index of oldest buffered event
	n       int     // buffered count
	dropped uint64

	wake chan struct{}
}

func newHub(ringCap int) *hub {
	if ringCap <= 0 {
		ringCap = 256
	}
	return &hub{ringCap: ringCap, subs: make(map[*hubSub]struct{})}
}

// Active reports whether any subscriber is connected. This is the
// data-path gate: bridges check it before building an event payload, so
// an obs server with no SSE clients adds zero allocations to the scrape
// hot path.
func (h *hub) Active() bool { return h.nsubs.Load() > 0 }

// Dropped returns the total events discarded to slow consumers.
func (h *hub) Dropped() uint64 { return h.dropped.Load() }

// Publish seals data as the next event and offers it to every subscriber,
// dropping each subscriber's oldest buffered event on overflow. Takes
// ownership of data. Never blocks.
func (h *hub) Publish(typ string, data []byte) {
	h.mu.Lock()
	h.seq++
	ev := Event{Seq: h.seq, Type: typ, Data: data}
	for s := range h.subs {
		if s.push(ev) {
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// push buffers ev, reporting whether an old event was dropped to make
// room, and wakes the consumer without blocking.
func (s *hubSub) push(ev Event) (droppedOld bool) {
	s.mu.Lock()
	if s.n == len(s.ring) {
		s.start = (s.start + 1) % len(s.ring)
		s.n--
		s.dropped++
		droppedOld = true
	}
	s.ring[(s.start+s.n)%len(s.ring)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return droppedOld
}

// drain pops every buffered event in order, plus the subscriber's
// cumulative dropped count.
func (s *hubSub) drain(into []Event) ([]Event, uint64) {
	s.mu.Lock()
	for s.n > 0 {
		into = append(into, s.ring[s.start])
		s.ring[s.start] = Event{}
		s.start = (s.start + 1) % len(s.ring)
		s.n--
	}
	d := s.dropped
	s.mu.Unlock()
	return into, d
}

func (h *hub) subscribe() *hubSub {
	s := &hubSub{ring: make([]Event, h.ringCap), wake: make(chan struct{}, 1)}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.nsubs.Store(int32(len(h.subs)))
	h.mu.Unlock()
	return s
}

func (h *hub) unsubscribe(s *hubSub) {
	h.mu.Lock()
	delete(h.subs, s)
	h.nsubs.Store(int32(len(h.subs)))
	h.mu.Unlock()
}

// heartbeatEvery is how often an idle SSE connection gets a comment-only
// keepalive so intermediaries do not reap it.
const heartbeatEvery = 15 * time.Second

// serveSSE is the GET /events handler body: subscribe, stream buffered
// events as they arrive, heartbeat when idle, tear down when the client
// goes away.
func (h *hub) serveSSE(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sub := h.subscribe()
	defer h.unsubscribe(sub)

	hb := time.NewTicker(heartbeatEvery)
	defer hb.Stop()

	var buf []Event
	var sentDropped uint64
	for {
		var dropped uint64
		buf, dropped = sub.drain(buf[:0])
		for _, ev := range buf {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data); err != nil {
				return
			}
		}
		// Surface consumer lag in-band: one advisory event per new batch
		// of ring overwrites, so a reconnecting dashboard knows it has a
		// gap rather than silently missing data.
		if dropped != sentDropped {
			sentDropped = dropped
			if _, err := fmt.Fprintf(w, "event: dropped\ndata: {\"dropped\":%d}\n\n", dropped); err != nil {
				return
			}
		}
		fl.Flush()

		select {
		case <-r.Context().Done():
			return
		case <-sub.wake:
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/alerting"
	"repro/internal/telemetry"
)

// goldenRegistry builds the registry the exposition golden test pins:
// every instrument kind, names exercising sanitization, values exercising
// float formatting.
func goldenRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry("golden", 7)
	reg.Counter("net.frames_sent").Add(12345)
	reg.Counter("origin.recoveries_served") // zero-valued counter still exposed
	reg.Gauge("edge.gamma").Set(1.75)
	reg.Gauge("fleet.online_frac.r0").Set(0.9375)
	reg.GaugeFunc("ctrl.inflight", func() float64 { return 42 })
	h := reg.Histogram("viewer.e2e_ms", []float64{33, 100, 400})
	for _, v := range []float64{10, 40, 40, 350, 900} {
		h.Observe(v)
	}
	return reg
}

// TestMetricsGolden pins the /metrics exposition byte-for-byte: every
// instrument kind appears, names are sanitized and sorted, histograms
// expand to cumulative buckets + sum + count. Regenerate with -update.
func TestMetricsGolden(t *testing.T) {
	reg := goldenRegistry()
	got := AppendExposition(nil, reg.Snapshot(1e9))

	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestMetricsStableAcrossRuns renders two identically-built registries and
// requires byte-identical exposition — the fixed-seed stability the
// acceptance criteria name.
func TestMetricsStableAcrossRuns(t *testing.T) {
	a := AppendExposition(nil, goldenRegistry().Snapshot(1e9))
	b := AppendExposition(nil, goldenRegistry().Snapshot(1e9))
	if !bytes.Equal(a, b) {
		t.Fatalf("exposition not reproducible:\n%s\nvs\n%s", a, b)
	}
}

// TestMetricsOrderIndependentOfRegistration registers the same instruments
// in a different order and requires the same exposition.
func TestMetricsOrderIndependentOfRegistration(t *testing.T) {
	a := telemetry.NewRegistry("x", 1)
	a.Counter("b.count").Add(1)
	a.Gauge("a.val").Set(2)
	b := telemetry.NewRegistry("x", 1)
	b.Gauge("a.val").Set(2)
	b.Counter("b.count").Add(1)
	ea := AppendExposition(nil, a.Snapshot(5))
	eb := AppendExposition(nil, b.Snapshot(5))
	if !bytes.Equal(ea, eb) {
		t.Fatalf("exposition depends on registration order:\n%s\nvs\n%s", ea, eb)
	}
}

// TestEndpoints exercises the four JSON/text endpoints through the real
// mux: /metrics content, /healthz + /readyz probe transitions, /snapshot
// document shape including incidents.
func TestEndpoints(t *testing.T) {
	reg := goldenRegistry()
	srv := NewServer(Options{Now: func() int64 { return 99 }})
	srv.AddLiveRegistry(reg)

	ready := false
	srv.AddLiveness("alive", func() error { return nil })
	srv.AddReadiness("warm", func() error {
		if !ready {
			return errors.New("not warm yet")
		}
		return nil
	})

	eng := alerting.NewEngine("run-a", 1, nil)
	srv.AttachAlerting(eng)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/metrics"); code != 200 || !bytes.Contains([]byte(body), []byte("rlive_net_frames_sent_total 12345")) {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	if code, body := get("/readyz"); code != 503 || body != "warm: not warm yet\n" {
		t.Fatalf("/readyz = %d %q, want 503 with probe failure", code, body)
	}
	ready = true
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz after warm = %d, want 200", code)
	}

	code, body := get("/snapshot")
	if code != 200 {
		t.Fatalf("/snapshot = %d", code)
	}
	var doc struct {
		At      int64 `json:"at"`
		Sources []struct {
			Label string            `json:"label"`
			Insts []json.RawMessage `json:"insts"`
		} `json:"sources"`
		Incidents []json.RawMessage `json:"incidents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/snapshot not valid JSON: %v\n%s", err, body)
	}
	if doc.At != 99 || len(doc.Sources) != 1 || doc.Sources[0].Label != "golden" || len(doc.Sources[0].Insts) != 6 {
		t.Fatalf("unexpected /snapshot doc: %s", body)
	}
}

// TestSnapshotIncludesIncidents drives an alerting engine through a full
// open/ack/resolve lifecycle and checks the transitions both reach the
// /snapshot document and use the shared canonical incident encoding.
func TestSnapshotIncludesIncidents(t *testing.T) {
	reg := telemetry.NewRegistry("run-b", 3)
	g := reg.Gauge("sig")
	eng := alerting.NewEngine("run-b", 3, []alerting.Rule{gaugeAbove{reg: "sig", bound: 10}})
	eng.Arm(0)
	eng.Attach(reg)

	srv := NewServer(Options{Now: func() int64 { return 1 }})
	srv.AttachAlerting(eng)

	g.Set(20)
	reg.Scrape(1e9) // open
	reg.Scrape(2e9) // ack
	g.Set(0)
	reg.Scrape(3e9)
	reg.Scrape(4e9) // resolve (ClearFor=2)

	rec := httptest.NewRecorder()
	srv.handleSnapshot(rec, nil)
	var doc struct {
		Incidents []struct {
			Run      string `json:"run"`
			Incident struct {
				ID       int    `json:"id"`
				Rule     string `json:"rule"`
				Opened   int64  `json:"opened"`
				Acked    int64  `json:"acked"`
				Resolved int64  `json:"resolved"`
			} `json:"incident"`
		} `json:"incidents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Incidents) != 1 {
		t.Fatalf("want 1 incident, got %d: %s", len(doc.Incidents), rec.Body.String())
	}
	in := doc.Incidents[0]
	if in.Run != "run-b" || in.Incident.Opened != 1e9 || in.Incident.Acked != 2e9 || in.Incident.Resolved != 4e9 {
		t.Fatalf("incident lifecycle wrong: %+v (body %s)", in, rec.Body.String())
	}
}

// gaugeAbove is a minimal threshold rule for tests.
type gaugeAbove struct {
	reg   string
	bound float64
}

func (g gaugeAbove) Name() string  { return "gauge-above" }
func (g gaugeAbove) Kind() string  { return "threshold" }
func (g gaugeAbove) Scope() string { return "test" }
func (g gaugeAbove) Eval(reg *telemetry.Registry, i int) alerting.Eval {
	v := reg.GaugeAt(i, g.reg)
	return alerting.Eval{Firing: v > g.bound, Value: v, Bound: g.bound, Detail: fmt.Sprintf("v=%g", v)}
}

// TestWatchedScrapeAddsZeroAllocs is the satellite allocation ceiling: an
// enabled-but-unconnected obs server's scrape hook (WatchRegistry with no
// SSE subscriber) must add zero allocations on top of the scrape itself.
func TestWatchedScrapeAddsZeroAllocs(t *testing.T) {
	reg := telemetry.NewRegistry("allocs", 1)
	c := reg.Counter("c")
	srv := NewServer(Options{})
	srv.WatchRegistry(reg)
	reg.Scrape(1) // register + first scrape outside the measurement

	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		srv.onScrape(reg, 0)
	}); n != 0 {
		t.Fatalf("unconnected obs scrape hook allocates %v/op, want 0", n)
	}
}

// TestIncidentHookUnconnectedAddsZeroAllocs: same ceiling for the
// alerting transition path while no SSE client is connected.
func TestIncidentHookUnconnectedAddsZeroAllocs(t *testing.T) {
	srv := NewServer(Options{})
	in := alerting.Incident{ID: 1, Rule: "r", Kind: "threshold", Scope: "s", OpenedAt: 1}
	if n := testing.AllocsPerRun(200, func() {
		srv.mu.Lock()
		srv.incidents[incKey{label: "l", id: in.ID}] = in
		srv.mu.Unlock()
		if srv.hub.Active() {
			t.Fatal("unexpected subscriber")
		}
	}); n != 0 {
		t.Fatalf("unconnected incident record allocates %v/op, want 0", n)
	}
}

// TestPprofEndpoint checks the EnablePprof gate: the /debug/pprof/ subtree
// serves the runtime profiles when opted in and stays unrouted otherwise,
// so simulation-only deployments expose no introspection surface by default.
func TestPprofEndpoint(t *testing.T) {
	get := func(h http.Handler, path string) int {
		ts := httptest.NewServer(h)
		defer ts.Close()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	on := NewServer(Options{EnablePprof: true})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		if code := get(on.Handler(), path); code != 200 {
			t.Errorf("enabled: GET %s = %d, want 200", path, code)
		}
	}
	off := NewServer(Options{})
	if code := get(off.Handler(), "/debug/pprof/"); code != 404 {
		t.Errorf("disabled: GET /debug/pprof/ = %d, want 404", code)
	}
}

package edge

import (
	"testing"
	"time"

	"repro/internal/cdn"
	"repro/internal/media"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
)

// newHintHarness is newHarness without the deployment-wiring
// SetSubstreamCount call: the node must survive on inference plus the
// stamped CDNFrame.K, the situation a chaos-induced resubscription leaves
// it in.
func newHintHarness(t *testing.T, k int) *harness {
	t.Helper()
	h := &harness{sim: simnet.NewSim()}
	rng := stats.NewRNG(3)
	h.net = simnet.NewNetwork(h.sim, rng.Fork())
	h.net.Register(cdnAddr, simnet.LinkState{UplinkBps: 10e9, BaseOWD: 2 * time.Millisecond}, nil)
	h.net.Register(schedAddr, simnet.LinkState{UplinkBps: 10e9, BaseOWD: 2 * time.Millisecond},
		func(from simnet.Addr, msg any) { h.sched = append(h.sched, msg) })
	h.net.Register(edgeAddr, simnet.LinkState{UplinkBps: 50e6, BaseOWD: time.Millisecond}, nil)
	h.net.Register(clientAddr, simnet.LinkState{UplinkBps: 100e6, BaseOWD: time.Millisecond},
		func(from simnet.Addr, msg any) { h.inbox = append(h.inbox, snapshotMsg(msg)) })

	h.cdn = cdn.New(cdnAddr, h.sim, h.net, rng.Fork())
	h.net.SetHandler(cdnAddr, h.cdn.Handle)
	h.cdn.HostStream(media.SourceConfig{Stream: 1, FPS: 30}, k)

	h.node = New(edgeAddr, Config{CDN: cdnAddr, Scheduler: schedAddr}, h.sim, h.net, rng.Fork())
	h.net.SetHandler(edgeAddr, h.node.Handle)
	return h
}

// TestHintInferredFromRelaySet: with no hint configured, holding a relay
// for substream s proves K > s, so the inference floor must kick in
// instead of the old default of 1 (which made multi-relay nodes serve
// every substream's frames on whichever relay came first).
func TestHintInferredFromRelaySet(t *testing.T) {
	h := newHintHarness(t, 4)
	h.clientSend(&transport.SubscribeReq{Key: key(3)})
	h.clientSend(&transport.SubscribeReq{Key: key(1)})
	h.sim.Run(100 * time.Millisecond)
	if got := h.node.substreamCountHint(1); got != 4 {
		t.Fatalf("inferred hint = %d, want 4 (max relayed substream 3 + 1)", got)
	}
	// A stream with no relays still defaults to 1.
	if got := h.node.substreamCountHint(99); got != 1 {
		t.Fatalf("hint for unknown stream = %d, want 1", got)
	}
}

// TestMissingHintDoesNotMisPartition: a node relaying two substreams with
// no configured hint must still place every frame on the relay the CDN's
// partitioner assigned it to.
func TestMissingHintDoesNotMisPartition(t *testing.T) {
	h := newHintHarness(t, 4)
	h.clientSend(&transport.SubscribeReq{Key: key(1)})
	h.clientSend(&transport.SubscribeReq{Key: key(2)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(3 * time.Second)

	pkts := h.packets()
	if len(pkts) == 0 {
		t.Fatal("no packets relayed")
	}
	part, _ := h.cdn.Partitioner(1)
	for _, p := range pkts {
		if part.Assign(p.Header.Dts) != p.Key.Substream {
			t.Fatalf("dts %d delivered on substream %d, CDN assigns %d",
				p.Header.Dts, p.Key.Substream, part.Assign(p.Header.Dts))
		}
	}
}

// TestStaleHintCorrectedByFrameStamp: a wrong (stale) configured hint is
// overwritten by the authoritative K stamped on the CDN feed, so the
// relay's partitioning converges to the origin's.
func TestStaleHintCorrectedByFrameStamp(t *testing.T) {
	h := newHintHarness(t, 4)
	h.node.SetSubstreamCount(1, 2) // stale: origin actually runs K=4
	h.clientSend(&transport.SubscribeReq{Key: key(2)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(2 * time.Second)

	if got := h.node.substreamCountHint(1); got != 4 {
		t.Fatalf("hint = %d after receiving stamped frames, want 4", got)
	}
	// And the frames actually delivered respect the corrected partition.
	part, _ := h.cdn.Partitioner(1)
	for _, p := range h.packets() {
		if part.Assign(p.Header.Dts) != p.Key.Substream {
			t.Fatalf("dts %d on wrong substream after correction", p.Header.Dts)
		}
	}
}

// TestFrameStampRoundTrip: the CDN stamps its partitioner K on every
// frame record it sends.
func TestFrameStampRoundTrip(t *testing.T) {
	h := newHintHarness(t, 4)
	var got []*transport.CDNFrame
	h.net.SetHandler(clientAddr, func(from simnet.Addr, msg any) {
		if f, ok := msg.(*transport.CDNFrame); ok {
			got = append(got, f)
		}
	})
	sub := &transport.CDNSubscribeReq{Stream: 1, Substream: 0, FullStream: true}
	h.net.Send(clientAddr, cdnAddr, transport.WireSize(sub), sub)
	h.cdn.Start()
	h.sim.Run(time.Second)
	if len(got) == 0 {
		t.Fatal("no CDN frames received")
	}
	for _, f := range got {
		if f.K != 4 {
			t.Fatalf("frame stamped K=%d, want 4", f.K)
		}
	}
}

package edge

import (
	"testing"
	"time"

	"repro/internal/cdn"
	"repro/internal/chain"
	"repro/internal/media"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
)

const (
	cdnAddr    = simnet.Addr(1000)
	schedAddr  = simnet.Addr(1)
	edgeAddr   = simnet.Addr(100000)
	clientAddr = simnet.Addr(5000)
)

type harness struct {
	sim   *simnet.Sim
	net   *simnet.Network
	cdn   *cdn.Node
	node  *Node
	inbox []any // messages arriving at the client
	sched []any // messages arriving at the scheduler
}

// snapshotMsg deep-copies pooled messages: the network recycles them after
// the receiving handler returns, so tests must not retain live pointers.
func snapshotMsg(msg any) any {
	switch m := msg.(type) {
	case *transport.DataPacket:
		cp := *m
		cp.Chain = append([]chain.Footprint(nil), m.Chain...)
		return &cp
	case *transport.CDNFrame:
		cp := *m
		return &cp
	}
	return msg
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{sim: simnet.NewSim()}
	rng := stats.NewRNG(3)
	h.net = simnet.NewNetwork(h.sim, rng.Fork())
	h.net.Register(cdnAddr, simnet.LinkState{UplinkBps: 10e9, BaseOWD: 2 * time.Millisecond}, nil)
	h.net.Register(schedAddr, simnet.LinkState{UplinkBps: 10e9, BaseOWD: 2 * time.Millisecond},
		func(from simnet.Addr, msg any) { h.sched = append(h.sched, msg) })
	h.net.Register(edgeAddr, simnet.LinkState{UplinkBps: 50e6, BaseOWD: time.Millisecond}, nil)
	h.net.Register(clientAddr, simnet.LinkState{UplinkBps: 100e6, BaseOWD: time.Millisecond},
		func(from simnet.Addr, msg any) { h.inbox = append(h.inbox, snapshotMsg(msg)) })

	h.cdn = cdn.New(cdnAddr, h.sim, h.net, rng.Fork())
	h.net.SetHandler(cdnAddr, h.cdn.Handle)
	h.cdn.HostStream(media.SourceConfig{Stream: 1, FPS: 30}, 4)

	cfg.CDN = cdnAddr
	cfg.Scheduler = schedAddr
	h.node = New(edgeAddr, cfg, h.sim, h.net, rng.Fork())
	h.node.SetSubstreamCount(1, 4)
	h.net.SetHandler(edgeAddr, h.node.Handle)
	return h
}

func (h *harness) clientSend(msg any) {
	h.net.Send(clientAddr, edgeAddr, transport.WireSize(msg), msg)
}

func (h *harness) packets() []*transport.DataPacket {
	var out []*transport.DataPacket
	for _, m := range h.inbox {
		if p, ok := m.(*transport.DataPacket); ok {
			out = append(out, p)
		}
	}
	return out
}

func key(ss media.SubstreamID) scheduler.SubstreamKey {
	return scheduler.SubstreamKey{Stream: 1, Substream: ss}
}

func TestSubscribeRelaysSubstream(t *testing.T) {
	h := newHarness(t, Config{})
	h.clientSend(&transport.SubscribeReq{Key: key(2)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(3 * time.Second)

	pkts := h.packets()
	if len(pkts) == 0 {
		t.Fatal("no packets relayed")
	}
	part, _ := h.cdn.Partitioner(1)
	seen := map[uint64]bool{}
	for _, p := range pkts {
		if p.Key != key(2) {
			t.Fatalf("packet for wrong key: %+v", p.Key)
		}
		if part.Assign(p.Header.Dts) != 2 {
			t.Fatalf("relayed frame from wrong substream: dts=%d", p.Header.Dts)
		}
		if p.Publisher != edgeAddr {
			t.Fatal("publisher address not embedded")
		}
		if len(p.Chain) == 0 {
			t.Fatal("packet without local chain")
		}
		seen[p.Header.Dts] = true
	}
	// ~90 frames in 3s, 1/4 on substream 2 => ~22 distinct frames.
	if len(seen) < 10 {
		t.Fatalf("distinct frames relayed = %d, want >= 10", len(seen))
	}
	if h.node.Sessions() != 1 {
		t.Fatalf("sessions = %d", h.node.Sessions())
	}
}

func TestChainAdvancesAcrossAllSubstreams(t *testing.T) {
	// The local chain must reflect the FULL stream order (headers of
	// other substreams included), not just relayed frames: consecutive
	// relayed frames of one substream carry chains whose tail includes
	// footprints of frames from other substreams.
	h := newHarness(t, Config{})
	h.clientSend(&transport.SubscribeReq{Key: key(0)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(3 * time.Second)
	part, _ := h.cdn.Partitioner(1)
	foreign := 0
	for _, p := range h.packets() {
		for _, fp := range p.Chain {
			if fp.Zero() {
				continue
			}
			if part.Assign(fp.Dts) != 0 {
				foreign++
			}
		}
	}
	if foreign == 0 {
		t.Fatal("chains never reference other substreams' frames; header side-channel not sequenced")
	}
}

func TestPacketCountMatchesFrameSize(t *testing.T) {
	h := newHarness(t, Config{})
	h.clientSend(&transport.SubscribeReq{Key: key(1)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(2 * time.Second)
	byFrame := map[uint64]map[uint16]*transport.DataPacket{}
	for _, p := range h.packets() {
		if byFrame[p.Header.Dts] == nil {
			byFrame[p.Header.Dts] = map[uint16]*transport.DataPacket{}
		}
		byFrame[p.Header.Dts][p.Seq] = p
	}
	checked := 0
	for dts, pkts := range byFrame {
		var total, count int
		for _, p := range pkts {
			total += p.PayloadLen
			count = int(p.Count)
		}
		if len(pkts) != count {
			continue // some packets may be in flight/lost; only check complete frames
		}
		var hdrSize int
		for _, p := range pkts {
			hdrSize = int(p.Header.Size)
			break
		}
		if total != hdrSize {
			t.Fatalf("frame %d: payload sum %d != frame size %d", dts, total, hdrSize)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no complete frames to check")
	}
}

func TestRetransmission(t *testing.T) {
	h := newHarness(t, Config{})
	h.clientSend(&transport.SubscribeReq{Key: key(1)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(2 * time.Second)
	pkts := h.packets()
	if len(pkts) == 0 {
		t.Fatal("no packets")
	}
	target := pkts[len(pkts)-1]
	before := len(h.packets())
	h.clientSend(&transport.RetxReq{Key: key(1), Dts: target.Header.Dts, Missing: []uint16{0}})
	h.sim.Run(2200 * time.Millisecond)
	var retx *transport.DataPacket
	for _, p := range h.packets()[before:] {
		if p.Retransmit && p.Header.Dts == target.Header.Dts && p.Seq == 0 {
			retx = p
		}
	}
	if retx == nil {
		t.Fatal("retransmission not served")
	}
	if h.node.PacketsRetx == 0 {
		t.Fatal("retx counter")
	}
}

func TestRetxOutOfWindowIgnored(t *testing.T) {
	h := newHarness(t, Config{})
	h.clientSend(&transport.SubscribeReq{Key: key(1)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(time.Second)
	h.clientSend(&transport.RetxReq{Key: key(1), Dts: 999999, Missing: []uint16{0}})
	h.sim.Run(1200 * time.Millisecond)
	for _, p := range h.packets() {
		if p.Retransmit {
			t.Fatal("phantom retransmission")
		}
	}
}

func TestUnsubscribeStopsRelay(t *testing.T) {
	h := newHarness(t, Config{})
	h.clientSend(&transport.SubscribeReq{Key: key(1)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(time.Second)
	h.clientSend(&transport.UnsubscribeReq{Key: key(1)})
	h.sim.Run(1200 * time.Millisecond)
	n := len(h.packets())
	h.sim.Run(3 * time.Second)
	if got := len(h.packets()); got > n+4 {
		t.Fatalf("packets after unsubscribe: %d -> %d", n, got)
	}
	if h.node.Sessions() != 0 {
		t.Fatal("session not released")
	}
	// Edge should also have unsubscribed from the CDN.
	if h.cdn.Subscribers(1) != 0 {
		t.Fatal("edge still subscribed to CDN")
	}
}

func TestQuotaRejectsSubscriptions(t *testing.T) {
	h := newHarness(t, Config{SessionQuota: 1})
	other := simnet.Addr(5001)
	h.net.Register(other, simnet.LinkState{UplinkBps: 100e6}, func(simnet.Addr, any) {})
	h.clientSend(&transport.SubscribeReq{Key: key(1)})
	h.sim.Run(100 * time.Millisecond)
	h.net.Send(other, edgeAddr, 36, &transport.SubscribeReq{Key: key(2)})
	h.sim.Run(200 * time.Millisecond)
	if h.node.Sessions() != 1 {
		t.Fatalf("sessions = %d, want 1 (quota)", h.node.Sessions())
	}
	if h.node.Subscribers(key(2)) != 0 {
		t.Fatal("over-quota subscription accepted")
	}
}

func TestProbeReflectsQuota(t *testing.T) {
	h := newHarness(t, Config{SessionQuota: 1})
	h.clientSend(&transport.ProbeReq{Nonce: 1, Key: key(0)})
	h.sim.Run(100 * time.Millisecond)
	h.clientSend(&transport.SubscribeReq{Key: key(0)})
	h.sim.Run(200 * time.Millisecond)
	h.clientSend(&transport.ProbeReq{Nonce: 2, Key: key(1)})
	h.sim.Run(300 * time.Millisecond)
	var first, second *transport.ProbeResp
	for _, m := range h.inbox {
		if r, ok := m.(*transport.ProbeResp); ok {
			switch r.Nonce {
			case 1:
				first = r
			case 2:
				second = r
			}
		}
	}
	if first == nil || !first.Accepting {
		t.Fatal("probe before quota should accept")
	}
	if second == nil || second.Accepting {
		t.Fatal("probe at quota should refuse")
	}
}

func TestHeartbeats(t *testing.T) {
	// Long subscriber timeout: this test's client never sends QoS
	// reports, and the sweep would otherwise reclaim its session.
	h := newHarness(t, Config{HeartbeatsEnabled: true, SubscriberTimeout: time.Hour})
	h.node.Start()
	h.sim.Run(25 * time.Second)
	idleHBs := 0
	for _, m := range h.sched {
		if _, ok := m.(*scheduler.Heartbeat); ok {
			idleHBs++
		}
	}
	// Idle cadence 10 s: expect ~2-3 heartbeats in 25 s.
	if idleHBs < 2 || idleHBs > 4 {
		t.Fatalf("idle heartbeats in 25s = %d, want ~2-3", idleHBs)
	}
	// Subscribe: cadence should double.
	h.clientSend(&transport.SubscribeReq{Key: key(0)})
	h.cdn.Start()
	start := len(h.sched)
	h.sim.Run(50 * time.Second)
	activeHBs := 0
	for _, m := range h.sched[start:] {
		if hb, ok := m.(*scheduler.Heartbeat); ok {
			activeHBs++
			if len(hb.Forwarding) == 0 {
				t.Fatal("active heartbeat missing forwarding set")
			}
		}
	}
	if activeHBs < 4 {
		t.Fatalf("active heartbeats in 25s = %d, want ~5", activeHBs)
	}
}

func TestCostTriggerSuggestsWhenUnderutilized(t *testing.T) {
	h := newHarness(t, Config{AdviserEnabled: true, CostCheckEvery: 5 * time.Second})
	// Wire the scheduler to answer StreamUtilReq with low utilization.
	h.net.SetHandler(schedAddr, func(from simnet.Addr, msg any) {
		if r, ok := msg.(*transport.StreamUtilReq); ok {
			resp := &transport.StreamUtilResp{Key: r.Key, Util: 0.1, N: 5}
			h.net.Send(schedAddr, from, transport.WireSize(resp), resp)
		}
	})
	h.clientSend(&transport.SubscribeReq{Key: key(0)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(30 * time.Second)
	suggestions := 0
	for _, m := range h.inbox {
		if s, ok := m.(*transport.SwitchSuggestion); ok && s.Reason == transport.SuggestCost {
			suggestions++
		}
	}
	if suggestions == 0 {
		t.Fatal("underutilized node never suggested a switch")
	}
	if h.node.CostSuggestions == 0 {
		t.Fatal("cost suggestion counter")
	}
}

func TestCostTriggerSilentWhenStreamBusy(t *testing.T) {
	h := newHarness(t, Config{AdviserEnabled: true, CostCheckEvery: 5 * time.Second})
	h.net.SetHandler(schedAddr, func(from simnet.Addr, msg any) {
		if r, ok := msg.(*transport.StreamUtilReq); ok {
			resp := &transport.StreamUtilResp{Key: r.Key, Util: 0.9, N: 5} // stream busy
			h.net.Send(schedAddr, from, transport.WireSize(resp), resp)
		}
	})
	h.clientSend(&transport.SubscribeReq{Key: key(0)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(30 * time.Second)
	for _, m := range h.inbox {
		if s, ok := m.(*transport.SwitchSuggestion); ok && s.Reason == transport.SuggestCost {
			t.Fatal("suggested despite busy stream (double-check failed)")
		}
	}
}

func TestQoSTriggerFlagsOutlier(t *testing.T) {
	h := newHarness(t, Config{AdviserEnabled: true, QoSCheckEvery: time.Second})
	// 8 subscribers; one reports much worse RTT.
	subs := make([]simnet.Addr, 8)
	var outlierInbox []any
	for i := range subs {
		subs[i] = simnet.Addr(6000 + i)
		addr := subs[i]
		if i == 0 {
			h.net.Register(addr, simnet.LinkState{UplinkBps: 100e6},
				func(from simnet.Addr, msg any) { outlierInbox = append(outlierInbox, msg) })
		} else {
			h.net.Register(addr, simnet.LinkState{UplinkBps: 100e6}, func(simnet.Addr, any) {})
		}
		h.net.Send(addr, edgeAddr, 36, &transport.SubscribeReq{Key: key(0)})
	}
	h.sim.Run(100 * time.Millisecond)
	// Reports: sub 0 at 500ms, rest at ~30ms.
	for round := 0; round < 5; round++ {
		for i, addr := range subs {
			rtt := 30.0
			if i == 0 {
				rtt = 500
			}
			h.net.Send(addr, edgeAddr, 52, &transport.QoSReport{Key: key(0), RTTms: rtt})
		}
		h.sim.Run(h.sim.Now() + 500*time.Millisecond)
	}
	h.node.Start()
	h.sim.Run(h.sim.Now() + 5*time.Second)
	flagged := false
	for _, m := range outlierInbox {
		if s, ok := m.(*transport.SwitchSuggestion); ok && s.Reason == transport.SuggestQoS {
			flagged = true
		}
	}
	if !flagged {
		t.Fatalf("outlier connection not flagged (qos suggestions=%d)", h.node.QoSSuggestions)
	}
}

func TestBackwardTrafficAccounting(t *testing.T) {
	h := newHarness(t, Config{})
	h.clientSend(&transport.SubscribeReq{Key: key(0)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(3 * time.Second)
	if h.node.BytesBackward == 0 || h.node.BytesServed == 0 {
		t.Fatalf("traffic accounting empty: back=%d served=%d", h.node.BytesBackward, h.node.BytesServed)
	}
}

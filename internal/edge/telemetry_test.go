package edge

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// TestCostTriggerCountedByTelemetry: the proactive cost trigger must both
// fire (suggestions reach the subscriber) and be counted by the shared
// edge.suggest.cost instrument, matching the node's own counter exactly.
func TestCostTriggerCountedByTelemetry(t *testing.T) {
	h := newHarness(t, Config{AdviserEnabled: true, CostCheckEvery: 5 * time.Second})
	reg := telemetry.NewRegistry("edge-test", 1)
	h.node.SetTelemetry(reg)
	h.net.SetHandler(schedAddr, func(from simnet.Addr, msg any) {
		if r, ok := msg.(*transport.StreamUtilReq); ok {
			resp := &transport.StreamUtilResp{Key: r.Key, Util: 0.1, N: 5}
			h.net.Send(schedAddr, from, transport.WireSize(resp), resp)
		}
	})
	h.clientSend(&transport.SubscribeReq{Key: key(0)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(30 * time.Second)

	if h.node.CostSuggestions == 0 {
		t.Fatal("cost trigger never fired")
	}
	if got := reg.Counter("edge.suggest.cost").Value(); got != h.node.CostSuggestions {
		t.Fatalf("telemetry cost suggestions = %d, node counter = %d",
			got, h.node.CostSuggestions)
	}
	// The periodic utilization sampler feeds the edge.util histogram.
	if reg.Histogram("edge.util", nil).N() == 0 {
		t.Fatal("utilization histogram never observed")
	}
}

// TestQoSTriggerCountedByTelemetry: the Z-score scan must record every scan
// pass in edge.zscan and every flagged outlier in both edge.zscan.outliers
// and edge.suggest.qos, matching the node's QoSSuggestions counter.
func TestQoSTriggerCountedByTelemetry(t *testing.T) {
	h := newHarness(t, Config{AdviserEnabled: true, QoSCheckEvery: time.Second})
	reg := telemetry.NewRegistry("edge-test", 1)
	h.node.SetTelemetry(reg)
	subs := make([]simnet.Addr, 8)
	for i := range subs {
		subs[i] = simnet.Addr(6000 + i)
		h.net.Register(subs[i], simnet.LinkState{UplinkBps: 100e6}, func(simnet.Addr, any) {})
		h.net.Send(subs[i], edgeAddr, 36, &transport.SubscribeReq{Key: key(0)})
	}
	h.sim.Run(100 * time.Millisecond)
	for round := 0; round < 5; round++ {
		for i, addr := range subs {
			rtt := 30.0
			if i == 0 {
				rtt = 500
			}
			h.net.Send(addr, edgeAddr, 52, &transport.QoSReport{Key: key(0), RTTms: rtt})
		}
		h.sim.Run(h.sim.Now() + 500*time.Millisecond)
	}
	h.node.Start()
	h.sim.Run(h.sim.Now() + 5*time.Second)

	if reg.Counter("edge.zscan").Value() == 0 {
		t.Fatal("Z-score scans never counted")
	}
	outliers := reg.Counter("edge.zscan.outliers").Value()
	if outliers == 0 {
		t.Fatal("outlier never flagged by telemetry")
	}
	if got := reg.Counter("edge.suggest.qos").Value(); got != outliers {
		t.Fatalf("qos suggestions = %d, flagged outliers = %d", got, outliers)
	}
	if got := reg.Counter("edge.suggest.qos").Value(); got != h.node.QoSSuggestions {
		t.Fatalf("telemetry qos suggestions = %d, node counter = %d",
			got, h.node.QoSSuggestions)
	}
}

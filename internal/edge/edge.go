// Package edge implements the best-effort edge node: RLive's relay layer
// and the middle tier of the collaborative control plane. An edge node
// subscribes to a dedicated CDN node for the substreams it relays (full
// frames for its own substream, headers for the rest), slices frames into
// fixed-size packets, embeds its locally generated frame chain in every
// packet, and pushes them to subscribers (§5.1–5.2). As an "edge adviser"
// it monitors its own utilization for the cost-aware trigger and its
// subscribers' QoS for the Z-score outlier trigger, proactively suggesting
// switches (§4.2.2). It sends 5 s/10 s heartbeats to the global scheduler.
package edge

import (
	"time"

	"repro/internal/chain"
	"repro/internal/ctrlplane"
	"repro/internal/media"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Config parameterizes an edge node's behaviour.
type Config struct {
	// CDN is the dedicated node this edge pulls from by default.
	CDN simnet.Addr
	// CDNRouter, if set, picks the dedicated node hosting a given stream
	// (deployments spread streams across CDN nodes).
	CDNRouter func(media.StreamID) simnet.Addr
	// Scheduler is the global scheduler's address.
	Scheduler simnet.Addr
	// ChainDelta is the local chain length δ (default chain.DefaultLength).
	ChainDelta int
	// UtilizationTheta is the cost-trigger threshold θ (default 0.6;
	// the paper keeps utilization above 60% for most nodes).
	UtilizationTheta float64
	// CostCheckEvery is the utilization re-evaluation period (paper:
	// every 10 s).
	CostCheckEvery time.Duration
	// QoSCheckEvery is the Z-score outlier scan period.
	QoSCheckEvery time.Duration
	// OutlierZ is the Z-score above which a connection counts as a top
	// outlier; 1.65 ≈ top 5% one-sided.
	OutlierZ float64
	// SessionQuota caps concurrent subscribers (quota-based
	// availability, §8.1).
	SessionQuota int
	// SubscriberTimeout reclaims sessions whose subscriber has gone
	// silent (default 12 s; clients report QoS every ~2 s).
	SubscriberTimeout time.Duration
	// RetainFrames bounds the per-substream retransmission buffer.
	RetainFrames int
	// HeartbeatsEnabled turns on periodic scheduler heartbeats.
	HeartbeatsEnabled bool
	// AdviserEnabled turns on the proactive cost/QoS triggers.
	AdviserEnabled bool
	// LKG, when set, is this node's last-known-good snapshot cache. The
	// edge applies control-plane snapshot pushes to it, acks them, and
	// relays the merged view to its subscribers — the middle tier of the
	// snapshot distribution tree — with its own retry loop.
	LKG *ctrlplane.LKG
}

func (c *Config) setDefaults() {
	if c.ChainDelta == 0 {
		c.ChainDelta = chain.DefaultLength
	}
	if c.UtilizationTheta == 0 {
		c.UtilizationTheta = 0.6
	}
	if c.CostCheckEvery == 0 {
		c.CostCheckEvery = 10 * time.Second
	}
	if c.QoSCheckEvery == 0 {
		c.QoSCheckEvery = 2 * time.Second
	}
	if c.OutlierZ == 0 {
		c.OutlierZ = 1.65
	}
	if c.SessionQuota == 0 {
		c.SessionQuota = 64
	}
	if c.SubscriberTimeout == 0 {
		c.SubscriberTimeout = 8 * time.Second
	}
	if c.RetainFrames == 0 {
		c.RetainFrames = 120
	}
}

// retainedFrame is a relayed frame kept for packet retransmission.
type retainedFrame struct {
	header      media.Header
	count       uint16
	chain       []chain.Footprint
	generatedAt int64
}

// relayState is the per-substream relay machinery. subOrder mirrors the
// subscriber map in arrival order: all fan-out iterates it so simulation
// runs stay deterministic (map iteration order would perturb the network
// RNG draw sequence).
type relayState struct {
	key         scheduler.SubstreamKey
	subscribers map[simnet.Addr]*connQoS
	subOrder    []simnet.Addr
	gen         *chain.LocalGenerator
	recent      map[uint64]*retainedFrame
	order       []uint64
	subscribed  bool // CDN subscription active
}

// connQoS tracks one subscriber connection's reported QoS for the Z-score
// trigger, plus liveness: subscribers report every couple of seconds, so a
// long-silent one has left (the unsubscribe was lost in flight) and its
// session is reclaimed.
type connQoS struct {
	rtt        stats.EWMA
	loss       stats.EWMA
	subscribed simnet.Time
	lastSeen   simnet.Time
}

// Node is one best-effort edge node.
type Node struct {
	Addr simnet.Addr
	cfg  Config

	sim *simnet.Sim
	net *simnet.Network
	rng *stats.RNG

	// Static features reported to the scheduler.
	Static scheduler.StaticFeatures

	relays     map[scheduler.SubstreamKey]*relayState
	relayOrder []scheduler.SubstreamKey
	// streamGens shares one chain generator per stream: the generator
	// observes the full stream order via the header side channel, and
	// all of the stream's substream relays embed chains from it.
	streamGens map[media.StreamID]*chain.LocalGenerator
	// substreamCount maps stream -> K (set by deployment wiring) so a
	// node relaying several substreams of one stream can re-derive
	// frame-to-substream assignment with the CDN's hash.
	substreamCount map[media.StreamID]int
	// lastObs tracks the newest observed dts per stream: observation must
	// be monotone or the chain CRCs would record a false order.
	lastObs  map[media.StreamID]uint64
	util     *stats.EWMA
	sessions int

	// Hot-path recycling: pkts pools the DataPackets this node pushes
	// (one shared packet per frame slice, retained per Send), rfFree
	// pools retained-window entries, pktScratch holds the packets of the
	// frame currently being fanned out.
	pkts       transport.PacketPool
	rfFree     []*retainedFrame
	pktScratch []*transport.DataPacket

	// Stats.
	PacketsPushed   uint64
	PacketsRetx     uint64
	BytesServed     uint64
	BytesBackward   uint64
	CostSuggestions uint64
	QoSSuggestions  uint64

	// Snapshot relay state (control plane): relaySeq numbers this edge's
	// own pushes to subscribers — a sequence space independent of the
	// shard's, which is why the LKG cache merges by region epoch rather
	// than push seq. ctrlAcked/ctrlSentAt drive the per-subscriber retry.
	relaySeq   uint64
	ctrlAcked  map[simnet.Addr]uint64
	ctrlSentAt map[simnet.Addr]simnet.Time

	// tr records frame-lifecycle events; nil disables tracing.
	tr *trace.Buf

	// Telemetry instruments, shared fleet-wide by name (nil when off).
	tmUtil        *telemetry.Histogram
	tmSuggestCost *telemetry.Counter
	tmSuggestQoS  *telemetry.Counter
	tmZScans      *telemetry.Counter
	tmZOutliers   *telemetry.Counter
	tmCtrlPush    *telemetry.Counter
	tmCtrlAck     *telemetry.Counter
}

// SetTrace attaches (or detaches, with nil) a frame-lifecycle trace buffer.
func (n *Node) SetTrace(b *trace.Buf) { n.tr = b }

// SetTelemetry registers edge instruments on reg. Instrument names are
// shared across the fleet, so every node records into the same
// utilization distribution and suggestion counters. Nil reg keeps every
// hook free.
func (n *Node) SetTelemetry(reg *telemetry.Registry) {
	n.tmUtil = reg.Histogram("edge.util",
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1})
	n.tmSuggestCost = reg.Counter("edge.suggest.cost")
	n.tmSuggestQoS = reg.Counter("edge.suggest.qos")
	n.tmZScans = reg.Counter("edge.zscan")
	n.tmZOutliers = reg.Counter("edge.zscan.outliers")
	if n.cfg.LKG != nil {
		// Shared with the shard set's push/ack counters: one fleet-wide
		// view of snapshot distribution traffic. Gated so systems without
		// a control plane scrape no ctrl.* series.
		n.tmCtrlPush = reg.Counter("ctrl.push")
		n.tmCtrlAck = reg.Counter("ctrl.ack")
	}
}

// New returns an edge node. Register node.Handle as the simnet handler and
// call Start to begin periodic duties.
func New(addr simnet.Addr, cfg Config, sim *simnet.Sim, net *simnet.Network, rng *stats.RNG) *Node {
	cfg.setDefaults()
	return &Node{
		Addr:       addr,
		cfg:        cfg,
		sim:        sim,
		net:        net,
		rng:        rng,
		relays:     make(map[scheduler.SubstreamKey]*relayState),
		streamGens: make(map[media.StreamID]*chain.LocalGenerator),
		lastObs:    make(map[media.StreamID]uint64),
		util:       stats.NewEWMA(0.3),
		ctrlAcked:  make(map[simnet.Addr]uint64),
		ctrlSentAt: make(map[simnet.Addr]simnet.Time),
	}
}

// Config returns the effective configuration.
func (n *Node) Config() Config { return n.cfg }

// Sessions returns the current subscriber count across relays.
func (n *Node) Sessions() int { return n.sessions }

// Utilization returns the sliding-average resource utilization ū_node.
func (n *Node) Utilization() float64 { return n.util.Value() }

// Start arms the periodic duties: heartbeats, utilization sampling, cost
// trigger, and QoS outlier scan.
func (n *Node) Start() {
	// Utilization sampling every second feeds the EWMA.
	n.sim.Every(time.Second, func() bool {
		n.sampleUtilization()
		return true
	})
	n.sim.Every(2*time.Second, func() bool {
		n.sweepSubscribers()
		return true
	})
	if n.cfg.HeartbeatsEnabled {
		n.scheduleHeartbeat()
	}
	if n.cfg.AdviserEnabled {
		n.sim.Every(n.cfg.CostCheckEvery, func() bool {
			n.costTrigger()
			return true
		})
		n.sim.Every(n.cfg.QoSCheckEvery, func() bool {
			n.qosTrigger()
			return true
		})
	}
	if n.cfg.LKG != nil {
		n.sim.Every(5*time.Second, func() bool {
			n.ctrlRetryTick()
			return true
		})
	}
}

// sampleUtilization blends uplink occupancy and session/quota pressure into
// the node's sliding-average utilization.
func (n *Node) sampleUtilization() {
	up := n.net.UplinkBusyFraction(n.Addr, time.Second)
	sess := float64(n.sessions) / float64(n.cfg.SessionQuota)
	if sess > 1 {
		sess = 1
	}
	u := up
	if sess > u {
		u = sess
	}
	n.util.Add(u)
	n.tmUtil.Observe(n.util.Value())
}

// scheduleHeartbeat sends status to the scheduler every 5 s when active,
// 10 s when idle (§4.1.1).
func (n *Node) scheduleHeartbeat() {
	var tick func()
	tick = func() {
		if !n.net.Online(n.Addr) {
			// Offline: retry on the idle cadence; heartbeats resume
			// when churn brings the node back.
			n.sim.After(scheduler.HeartbeatIdle, tick)
			return
		}
		n.sendHeartbeat()
		period := scheduler.HeartbeatIdle
		if n.sessions > 0 {
			period = scheduler.HeartbeatActive
		}
		n.sim.After(period, tick)
	}
	n.sim.After(time.Duration(n.rng.IntN(int(scheduler.HeartbeatActive))), tick)
}

func (n *Node) sendHeartbeat() {
	st, _ := n.net.State(n.Addr)
	residual := st.UplinkBps * (1 - n.util.Value())
	hb := &scheduler.Heartbeat{
		Addr:        n.Addr,
		ResidualBps: residual,
		Utilization: n.util.Value(),
		Sessions:    n.sessions,
		QuotaLeft:   n.cfg.SessionQuota - n.sessions,
	}
	for _, key := range n.relayOrder {
		if r := n.relays[key]; len(r.subscribers) > 0 || r.subscribed {
			hb.Forwarding = append(hb.Forwarding, key)
		}
	}
	n.net.Send(n.Addr, n.cfg.Scheduler, transport.WireSize(hb), hb)
}

// Handle processes inbound messages.
func (n *Node) Handle(from simnet.Addr, msg any) {
	switch m := msg.(type) {
	case *transport.SubscribeReq:
		n.onSubscribe(from, m.Key)
	case *transport.UnsubscribeReq:
		n.onUnsubscribe(from, m.Key)
	case *transport.CDNFrame:
		n.onCDNFrame(m)
	case *transport.RetxReq:
		n.onRetx(from, m)
	case *transport.ProbeReq:
		resp := &transport.ProbeResp{
			Nonce: m.Nonce, Key: m.Key,
			Accepting: n.sessions < n.cfg.SessionQuota,
		}
		n.net.Send(n.Addr, from, transport.WireSize(resp), resp)
	case *transport.QoSReport:
		n.onQoSReport(from, m)
	case *transport.StreamUtilResp:
		n.onStreamUtil(m)
	case *ctrlplane.SnapshotPush:
		n.onSnapshotPush(from, m)
	case *ctrlplane.SnapshotAck:
		n.onSnapshotAck(from, m)
	}
}

// onSnapshotPush folds a control-plane snapshot into the LKG cache, acks
// it, and — when the view advanced — relays the merged snapshot to this
// edge's subscribers, forming the middle tier of the distribution tree so
// shards never push to the viewer fleet directly.
func (n *Node) onSnapshotPush(from simnet.Addr, m *ctrlplane.SnapshotPush) {
	if n.cfg.LKG == nil {
		return
	}
	changed := n.cfg.LKG.Apply(m.Snap, n.sim.Now())
	ack := &ctrlplane.SnapshotAck{Region: n.cfg.LKG.Region(), Seq: m.Seq, OK: changed}
	n.net.Send(n.Addr, from, transport.WireSize(ack), ack)
	if changed {
		n.relayCtrl()
	}
}

// onSnapshotAck records a subscriber's relay ack; the retry tick stops
// resending once the acked seq catches up.
func (n *Node) onSnapshotAck(from simnet.Addr, m *ctrlplane.SnapshotAck) {
	if n.cfg.LKG == nil {
		return
	}
	n.tmCtrlAck.Inc()
	if m.Seq > n.ctrlAcked[from] {
		n.ctrlAcked[from] = m.Seq
	}
}

// ctrlSubscribers returns the current subscriber set deduplicated across
// relays, in deterministic relay/subscription order.
func (n *Node) ctrlSubscribers() []simnet.Addr {
	var out []simnet.Addr
	seen := make(map[simnet.Addr]bool)
	for _, key := range n.relayOrder {
		for _, sub := range n.relays[key].subOrder {
			if !seen[sub] {
				seen[sub] = true
				out = append(out, sub)
			}
		}
	}
	return out
}

// relayCtrl starts a new relay round: bumps this edge's own push sequence
// and sends the merged LKG view to every current subscriber.
func (n *Node) relayCtrl() {
	n.relaySeq++
	snap := n.cfg.LKG.Snapshot()
	for _, sub := range n.ctrlSubscribers() {
		n.sendCtrlSnap(sub, snap)
	}
}

// ctrlRetryTick resends the current relay round to subscribers that have
// not acked it, at most once per 2 s grace window per subscriber.
func (n *Node) ctrlRetryTick() {
	if !n.net.Online(n.Addr) || n.relaySeq == 0 || !n.cfg.LKG.Has() {
		return
	}
	now := n.sim.Now()
	snap := n.cfg.LKG.Snapshot()
	for _, sub := range n.ctrlSubscribers() {
		if n.ctrlAcked[sub] >= n.relaySeq {
			continue
		}
		if now-n.ctrlSentAt[sub] < simnet.Time(2*time.Second) {
			continue
		}
		n.sendCtrlSnap(sub, snap)
	}
}

func (n *Node) sendCtrlSnap(to simnet.Addr, snap ctrlplane.Snapshot) {
	push := &ctrlplane.SnapshotPush{FromRegion: n.cfg.LKG.Region(), Seq: n.relaySeq, Snap: snap}
	n.net.Send(n.Addr, to, transport.WireSize(push), push)
	n.ctrlSentAt[to] = n.sim.Now()
	n.tmCtrlPush.Inc()
}

func (n *Node) onSubscribe(from simnet.Addr, key scheduler.SubstreamKey) {
	if n.sessions >= n.cfg.SessionQuota {
		return // at quota; client's probe timeout handles it
	}
	r := n.relay(key)
	if _, dup := r.subscribers[from]; dup {
		return
	}
	now := n.sim.Now()
	r.subscribers[from] = &connQoS{
		rtt: *stats.NewEWMA(0.3), loss: *stats.NewEWMA(0.3),
		subscribed: now, lastSeen: now,
	}
	r.subOrder = append(r.subOrder, from)
	n.sessions++
	if !r.subscribed {
		// Reset the stream's chain context when no relay of this stream
		// was active: the header flow had a gap, so stale predecessor
		// headers would produce footprints recording a false order. The
		// CDN's warm-up headers rebuild the context.
		active := false
		for k2, r2 := range n.relays {
			if k2.Stream == key.Stream && r2 != r && r2.subscribed {
				active = true
				break
			}
		}
		if !active {
			n.streamGens[key.Stream] = chain.NewLocalGenerator(n.cfg.ChainDelta)
			r.gen = n.streamGens[key.Stream]
			delete(n.lastObs, key.Stream)
			// Other (inactive) relays of the stream share the new
			// generator again.
			for k2, r2 := range n.relays {
				if k2.Stream == key.Stream {
					r2.gen = r.gen
				}
			}
		}
		r.subscribed = true
		req := &transport.CDNSubscribeReq{
			Stream:      key.Stream,
			Substream:   key.Substream,
			WantHeaders: true,
		}
		n.net.Send(n.Addr, n.cdnFor(key.Stream), transport.WireSize(req), req)
	}
}

// cdnFor returns the dedicated node to pull a stream from.
func (n *Node) cdnFor(id media.StreamID) simnet.Addr {
	if n.cfg.CDNRouter != nil {
		return n.cfg.CDNRouter(id)
	}
	return n.cfg.CDN
}

func (n *Node) onUnsubscribe(from simnet.Addr, key scheduler.SubstreamKey) {
	r, ok := n.relays[key]
	if !ok {
		return
	}
	if _, had := r.subscribers[from]; !had {
		return
	}
	delete(r.subscribers, from)
	for i, a := range r.subOrder {
		if a == from {
			r.subOrder = append(r.subOrder[:i], r.subOrder[i+1:]...)
			break
		}
	}
	n.sessions--
	if len(r.subscribers) == 0 && r.subscribed {
		r.subscribed = false
		req := &transport.CDNUnsubscribeReq{Stream: key.Stream, Substream: key.Substream}
		n.net.Send(n.Addr, n.cdnFor(key.Stream), transport.WireSize(req), req)
	}
}

func (n *Node) relay(key scheduler.SubstreamKey) *relayState {
	r, ok := n.relays[key]
	if !ok {
		r = &relayState{
			key:         key,
			subscribers: make(map[simnet.Addr]*connQoS),
			recent:      make(map[uint64]*retainedFrame),
		}
		gen, ok := n.streamGens[key.Stream]
		if !ok {
			gen = chain.NewLocalGenerator(n.cfg.ChainDelta)
			n.streamGens[key.Stream] = gen
		}
		r.gen = gen
		n.relays[key] = r
		n.relayOrder = append(n.relayOrder, key)
	}
	return r
}

// onCDNFrame ingests a frame record from the CDN: every record (full or
// header-only) advances the stream's chain generator; full frames are
// packetized and pushed to the owning relay's subscribers.
func (n *Node) onCDNFrame(m *transport.CDNFrame) {
	gen, ok := n.streamGens[m.Header.Stream]
	if !ok {
		return // no active relay for this stream
	}
	// The feed stamps the origin's authoritative substream count on every
	// record; adopt it so a missing or stale local hint (a chaos-induced
	// resubscription, a K change at the origin) cannot mis-partition.
	if m.K > 0 && n.substreamCountHint(m.Header.Stream) != m.K {
		n.SetSubstreamCount(m.Header.Stream, m.K)
	}
	count := uint16(transport.PacketsForFrame(int(m.Header.Size)))
	if !m.Recovered {
		// Monotone observation only: a reordered or duplicate header
		// would record a false frame order in the chain CRCs.
		last, seen := n.lastObs[m.Header.Stream]
		if !seen || m.Header.Dts > last {
			gen.Observe(m.Header, count)
			n.lastObs[m.Header.Stream] = m.Header.Dts
		}
	}
	if !m.Full {
		return
	}
	n.BytesBackward += uint64(m.Header.Size)
	// Find the relay that owns this frame's substream. The CDN only
	// sends us full frames for substreams we subscribed to, so scan the
	// relays for this stream (K is small).
	for _, key := range n.relayOrder {
		r := n.relays[key]
		if key.Stream != m.Header.Stream || !r.subscribed {
			continue
		}
		// Delivery targeting: the frame belongs to exactly one
		// substream; the CDN's partitioner decided which. We infer
		// ownership by probing: the relay retains and serves the
		// frame only if its subscriber set expects this substream.
		// Since the CDN sends full frames only for our subscribed
		// substreams, a node with a single relay per stream can
		// accept directly; with multiple relays we re-derive the
		// assignment with the same hash the CDN used.
		part := media.Partitioner{K: n.substreamCountHint(key.Stream)}
		if part.K > 1 && part.Assign(m.Header.Dts) != key.Substream {
			continue
		}
		n.push(r, m, count)
		break
	}
}

// substreamCountHint returns K for a stream. When no hint has been set
// (deployment wiring skipped, or state lost across a resubscription) it
// infers a floor from the substreams this node actually relays: holding a
// relay for substream s proves K > s. The inference can undercount — the
// stamped CDNFrame.K in onCDNFrame is the authoritative correction — but
// it can never place a frame on a relay that provably does not own it.
func (n *Node) substreamCountHint(id media.StreamID) int {
	if k, ok := n.substreamCount[id]; ok {
		return k
	}
	k := 1
	for _, key := range n.relayOrder {
		if key.Stream == id && int(key.Substream)+1 > k {
			k = int(key.Substream) + 1
		}
	}
	return k
}

// SetSubstreamCount tells the node how many substreams a stream has, so it
// can re-derive frame-to-substream assignment for multi-relay nodes.
func (n *Node) SetSubstreamCount(id media.StreamID, k int) {
	if n.substreamCount == nil {
		n.substreamCount = make(map[media.StreamID]int)
	}
	n.substreamCount[id] = k
}

// getRetained returns a pooled retained-window entry.
func (n *Node) getRetained() *retainedFrame {
	if k := len(n.rfFree); k > 0 {
		rf := n.rfFree[k-1]
		n.rfFree = n.rfFree[:k-1]
		return rf
	}
	return &retainedFrame{}
}

// putRetained recycles a window entry, keeping its chain backing array.
func (n *Node) putRetained(rf *retainedFrame) {
	ch := rf.chain[:0]
	*rf = retainedFrame{chain: ch}
	n.rfFree = append(n.rfFree, rf)
}

// push slices a frame into packets and pushes them to all subscribers of
// the relay, embedding the current local chain in every packet. Each packet
// is built once and shared across the subscriber fan-out — every Send
// retains its own reference — keeping the Send order (subscriber-outer,
// seq-inner), and with it the network RNG draw sequence, exactly as a
// per-subscriber build would.
func (n *Node) push(r *relayState, m *transport.CDNFrame, count uint16) {
	rf := n.getRetained()
	rf.header = m.Header
	rf.count = count
	rf.chain = r.gen.AppendChain(rf.chain[:0])
	rf.generatedAt = m.GeneratedAt
	r.recent[m.Header.Dts] = rf
	r.order = append(r.order, m.Header.Dts)
	if len(r.order) > n.cfg.RetainFrames {
		if old, ok := r.recent[r.order[0]]; ok {
			delete(r.recent, r.order[0])
			n.putRetained(old)
		}
		copy(r.order, r.order[1:])
		r.order = r.order[:len(r.order)-1]
	}
	n.tr.Rec(trace.KRelayed, uint32(m.Header.Stream), m.Header.Dts, uint64(count), uint64(len(r.subOrder)))
	pkts := n.buildPackets(r.key, rf, nil, false)
	for _, sub := range r.subOrder {
		for _, pkt := range pkts {
			n.sendPacket(sub, pkt)
		}
	}
	for _, pkt := range pkts {
		pkt.PoolRelease()
	}
}

// buildPackets fills pktScratch with the frame's packets (all, or just the
// listed seqs), one builder reference each. The slice is valid until the
// next buildPackets call; callers release every packet when done.
func (n *Node) buildPackets(key scheduler.SubstreamKey, rf *retainedFrame, seqs []uint16, retx bool) []*transport.DataPacket {
	n.pktScratch = n.pktScratch[:0]
	if seqs == nil {
		for s := uint16(0); s < rf.count; s++ {
			n.buildPacket(key, rf, s, retx)
		}
	} else {
		for _, s := range seqs {
			if int(s) < int(rf.count) {
				n.buildPacket(key, rf, s, retx)
			}
		}
	}
	return n.pktScratch
}

// buildPacket appends one pooled packet for seq to pktScratch.
func (n *Node) buildPacket(key scheduler.SubstreamKey, rf *retainedFrame, seq uint16, retx bool) {
	total := int(rf.header.Size)
	payLen := transport.PacketPayload
	if int(seq) == int(rf.count)-1 {
		payLen = total - (int(rf.count)-1)*transport.PacketPayload
		if payLen <= 0 {
			payLen = total % transport.PacketPayload
			if payLen == 0 {
				payLen = transport.PacketPayload
			}
		}
	}
	pkt := n.pkts.Get()
	pkt.Key = key
	pkt.Header = rf.header
	pkt.Seq = seq
	pkt.Count = rf.count
	pkt.PayloadLen = payLen
	pkt.Chain = append(pkt.Chain[:0], rf.chain...)
	pkt.Publisher = n.Addr
	pkt.GeneratedAt = rf.generatedAt
	pkt.Retransmit = retx
	n.pktScratch = append(n.pktScratch, pkt)
}

// sendPacket transmits one packet reference to a subscriber.
func (n *Node) sendPacket(to simnet.Addr, pkt *transport.DataPacket) {
	pkt.Retain()
	size := transport.WireSize(pkt)
	n.net.Send(n.Addr, to, size, pkt)
	n.BytesServed += uint64(size)
	if pkt.Retransmit {
		n.PacketsRetx++
	} else {
		n.PacketsPushed++
	}
}

// sendFramePackets transmits the frame's packets (all, or just the listed
// seqs) to one subscriber.
func (n *Node) sendFramePackets(to simnet.Addr, key scheduler.SubstreamKey, rf *retainedFrame, seqs []uint16, retx bool) {
	pkts := n.buildPackets(key, rf, seqs, retx)
	for _, pkt := range pkts {
		n.sendPacket(to, pkt)
	}
	for _, pkt := range pkts {
		pkt.PoolRelease()
	}
}

// Trim releases oversized pool capacity at quiescent points.
func (n *Node) Trim() {
	n.pkts.Trim()
	if cap(n.rfFree) > 4096 {
		n.rfFree = nil
	}
}

// onRetx serves a packet retransmission request from the retained window,
// or NACKs so the client escalates to dedicated recovery without burning
// retry rounds (frames from before this relay's subscription, or rotated
// out of the window, can never be served from here).
func (n *Node) onRetx(from simnet.Addr, m *transport.RetxReq) {
	r, ok := n.relays[m.Key]
	if !ok {
		n.tr.Rec(trace.KRetxNack, uint32(m.Key.Stream), m.Dts, uint64(from), 0)
		nack := &transport.RetxNack{Key: m.Key, Dts: m.Dts}
		n.net.Send(n.Addr, from, transport.WireSize(nack), nack)
		return
	}
	rf, ok := r.recent[m.Dts]
	if !ok {
		n.tr.Rec(trace.KRetxNack, uint32(m.Key.Stream), m.Dts, uint64(from), 0)
		nack := &transport.RetxNack{Key: m.Key, Dts: m.Dts}
		n.net.Send(n.Addr, from, transport.WireSize(nack), nack)
		return
	}
	resend := uint64(len(m.Missing))
	if m.Missing == nil {
		resend = uint64(rf.count)
	}
	n.tr.Rec(trace.KRetxServe, uint32(m.Key.Stream), m.Dts, uint64(from), resend)
	n.sendFramePackets(from, m.Key, rf, m.Missing, true)
}

// onQoSReport folds a subscriber's report into its connection tracker.
func (n *Node) onQoSReport(from simnet.Addr, m *transport.QoSReport) {
	r, ok := n.relays[m.Key]
	if !ok {
		return
	}
	c, ok := r.subscribers[from]
	if !ok {
		return
	}
	c.lastSeen = n.sim.Now()
	c.rtt.Add(m.RTTms)
	c.loss.Add(m.LossRate)
}

// sweepSubscribers reclaims sessions whose subscriber went silent.
func (n *Node) sweepSubscribers() {
	now := n.sim.Now()
	for _, key := range n.relayOrder {
		r := n.relays[key]
		for _, sub := range append([]simnet.Addr(nil), r.subOrder...) {
			c := r.subscribers[sub]
			if c == nil {
				continue
			}
			if now-c.lastSeen > simnet.Time(n.cfg.SubscriberTimeout) {
				n.onUnsubscribe(sub, key)
			}
		}
	}
}

// costTrigger implements the cost-aware trigger (§4.2.2): when ū_node < θ,
// ask the scheduler whether ū_stream is also below θ; the confirmation
// arrives as a StreamUtilResp and completes in onStreamUtil.
func (n *Node) costTrigger() {
	if !n.net.Online(n.Addr) || n.sessions == 0 {
		return
	}
	if !n.util.Initialized() || n.util.Value() >= n.cfg.UtilizationTheta {
		return
	}
	for _, key := range n.relayOrder {
		if len(n.relays[key].subscribers) == 0 {
			continue
		}
		req := &transport.StreamUtilReq{Key: key}
		n.net.Send(n.Addr, n.cfg.Scheduler, transport.WireSize(req), req)
	}
}

// onStreamUtil completes the cost trigger: if the stream-wide utilization
// is also below θ, suggest switches to this relay's subscribers so traffic
// consolidates and back-to-CDN pulls drop.
func (n *Node) onStreamUtil(m *transport.StreamUtilResp) {
	if m.N == 0 || m.Util >= n.cfg.UtilizationTheta {
		return
	}
	if !n.util.Initialized() || n.util.Value() >= n.cfg.UtilizationTheta {
		return // re-check: our own state may have changed since asking
	}
	r, ok := n.relays[m.Key]
	if !ok {
		return
	}
	for _, sub := range r.subOrder {
		sg := &transport.SwitchSuggestion{Key: m.Key, Reason: transport.SuggestCost}
		n.net.Send(n.Addr, sub, transport.WireSize(sg), sg)
		n.CostSuggestions++
		n.tmSuggestCost.Inc()
	}
}

// qosTrigger implements the QoS-aware trigger (§4.2.2): compute the Z-score
// of each connection's QoS metric against the node's population and suggest
// switches to top-5% outliers.
func (n *Node) qosTrigger() {
	if !n.net.Online(n.Addr) {
		return
	}
	var w stats.Welford
	type conn struct {
		key scheduler.SubstreamKey
		sub simnet.Addr
		m   float64
	}
	var conns []conn
	for _, key := range n.relayOrder {
		r := n.relays[key]
		for _, sub := range r.subOrder {
			c := r.subscribers[sub]
			if !c.rtt.Initialized() {
				continue
			}
			// QoS metric: RTT inflated by loss.
			m := c.rtt.Value() * (1 + 5*c.loss.Value())
			w.Add(m)
			conns = append(conns, conn{key, sub, m})
		}
	}
	if w.N() < 4 {
		return // too few connections for a meaningful Z-score
	}
	n.tmZScans.Inc()
	for _, c := range conns {
		if w.ZScore(c.m) > n.cfg.OutlierZ {
			n.tmZOutliers.Inc()
			n.tmSuggestQoS.Inc()
			sg := &transport.SwitchSuggestion{Key: c.key, Reason: transport.SuggestQoS}
			n.net.Send(n.Addr, c.sub, transport.WireSize(sg), sg)
			n.QoSSuggestions++
		}
	}
}

// Subscribers returns the subscriber count for one relay key.
func (n *Node) Subscribers(key scheduler.SubstreamKey) int {
	r, ok := n.relays[key]
	if !ok {
		return 0
	}
	return len(r.subscribers)
}

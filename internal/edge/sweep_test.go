package edge

import (
	"testing"
	"time"

	"repro/internal/transport"
)

func TestSubscriberSweepReclaimsSilentSessions(t *testing.T) {
	h := newHarness(t, Config{SubscriberTimeout: 6 * time.Second})
	h.node.Start()
	h.clientSend(&transport.SubscribeReq{Key: key(0)})
	h.sim.Run(time.Second)
	if h.node.Sessions() != 1 {
		t.Fatal("subscription not established")
	}
	// The client never sends QoS reports; the sweep must reclaim it.
	h.sim.Run(12 * time.Second)
	if h.node.Sessions() != 0 {
		t.Fatalf("silent session not reclaimed: %d", h.node.Sessions())
	}
	// And the CDN feed must be released too.
	if h.cdn.Subscribers(1) != 0 {
		t.Fatal("CDN feed kept after sweep")
	}
}

func TestQoSReportsKeepSessionAlive(t *testing.T) {
	h := newHarness(t, Config{SubscriberTimeout: 4 * time.Second})
	h.node.Start()
	h.clientSend(&transport.SubscribeReq{Key: key(0)})
	for i := 0; i < 10; i++ {
		h.sim.Run(h.sim.Now() + 2*time.Second)
		h.clientSend(&transport.QoSReport{Key: key(0), RTTms: 20})
	}
	h.sim.Run(h.sim.Now() + time.Second)
	if h.node.Sessions() != 1 {
		t.Fatalf("reporting session was swept: %d", h.node.Sessions())
	}
}

func TestRetxNackWhenFrameUnknown(t *testing.T) {
	h := newHarness(t, Config{})
	h.clientSend(&transport.SubscribeReq{Key: key(0)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(2 * time.Second)
	// A dts from before this relay's window.
	h.clientSend(&transport.RetxReq{Key: key(0), Dts: 1, Missing: []uint16{0}})
	h.sim.Run(2200 * time.Millisecond)
	found := false
	for _, m := range h.inbox {
		if n, ok := m.(*transport.RetxNack); ok && n.Dts == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no NACK for an unservable retransmission")
	}
}

func TestRetxNackForUnknownRelay(t *testing.T) {
	h := newHarness(t, Config{})
	h.node.Start()
	h.clientSend(&transport.RetxReq{Key: key(3), Dts: 42, Missing: []uint16{0}})
	h.sim.Run(time.Second)
	found := false
	for _, m := range h.inbox {
		if n, ok := m.(*transport.RetxNack); ok && n.Key == key(3) {
			found = true
		}
	}
	if !found {
		t.Fatal("no NACK for an unknown relay key")
	}
}

func TestRetxEmptyMissingResendsAll(t *testing.T) {
	h := newHarness(t, Config{})
	h.clientSend(&transport.SubscribeReq{Key: key(1)})
	h.cdn.Start()
	h.node.Start()
	h.sim.Run(2 * time.Second)
	var target *transport.DataPacket
	for _, m := range h.inbox {
		if p, ok := m.(*transport.DataPacket); ok {
			target = p
		}
	}
	if target == nil {
		t.Fatal("no packets")
	}
	before := h.node.PacketsRetx
	h.clientSend(&transport.RetxReq{Key: key(1), Dts: target.Header.Dts}) // Missing empty = all
	h.sim.Run(2200 * time.Millisecond)
	if got := h.node.PacketsRetx - before; got != uint64(target.Count) {
		t.Fatalf("retransmitted %d packets, want the whole frame (%d)", got, target.Count)
	}
}

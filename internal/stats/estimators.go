package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance in a single pass using Welford's
// online algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 for no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// ZScore returns (x - mean) / stddev, or 0 when the deviation is zero.
func (w *Welford) ZScore(x float64) float64 {
	sd := w.Stddev()
	if sd == 0 {
		return 0
	}
	return (x - w.mean) / sd
}

// Sample collects raw observations for percentile/CDF queries. The zero
// value is ready to use and retains every observation; NewCappedSample
// bounds retention by deterministic stride thinning so long-running
// accumulators (e.g. per-frame latency over a million-frame session)
// stay O(cap) instead of growing linearly.
type Sample struct {
	xs     []float64
	sorted bool
	// max bounds retention (0 = unbounded). When len(xs) reaches max the
	// sample keeps every other retained element and doubles stride, so
	// from then on only every stride-th Add is recorded — a deterministic
	// (RNG-free) thinning that preserves uniform coverage of the
	// observation sequence.
	max    int
	stride int
	skip   int
}

// NewSample returns an unbounded Sample pre-sized for n observations.
func NewSample(n int) *Sample { return &Sample{xs: make([]float64, 0, n)} }

// NewCappedSample returns a Sample pre-sized for n observations that
// retains at most max of them via stride thinning. max <= 0 means
// unbounded.
func NewCappedSample(n, max int) *Sample {
	if max > 0 && n > max {
		n = max
	}
	return &Sample{xs: make([]float64, 0, n), max: max, stride: 1}
}

// Cap returns the retention bound (0 = unbounded).
func (s *Sample) Cap() int { return s.max }

// Add appends one observation. On a capped sample past its first thinning,
// only every stride-th observation is recorded.
func (s *Sample) Add(x float64) {
	if s.max > 0 {
		if s.skip > 0 {
			s.skip--
			return
		}
		s.skip = s.stride - 1
	}
	s.xs = append(s.xs, x)
	s.sorted = false
	if s.max > 0 && len(s.xs) >= s.max {
		s.thin()
	}
}

// thin halves retention: keep every other retained element, double the
// record stride. Deterministic — no RNG — so same-seed runs retain the
// identical subset.
func (s *Sample) thin() {
	for i := 0; 2*i < len(s.xs); i++ {
		s.xs[i] = s.xs[2*i]
	}
	s.xs = s.xs[:(len(s.xs)+1)/2]
	if s.stride < 1 {
		s.stride = 1
	}
	s.stride *= 2
	s.skip = s.stride - 1
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the raw observations (not a copy; callers must not mutate).
func (s *Sample) Values() []float64 { return s.xs }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	acc := 0.0
	for _, x := range s.xs {
		d := x - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// FracBelow returns the fraction of observations strictly below x.
func (s *Sample) FracBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.xs, x)
	return float64(i) / float64(len(s.xs))
}

// CDFPoint is one (x, F(x)) pair of an exported CDF.
type CDFPoint struct {
	X float64
	F float64
}

// CDF exports the sample's empirical CDF evaluated at n evenly spaced
// quantiles, suitable for plotting a figure series.
func (s *Sample) CDF(n int) []CDFPoint {
	if len(s.xs) == 0 || n <= 0 {
		return nil
	}
	s.ensureSorted()
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n)
		idx := int(f*float64(len(s.xs))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, CDFPoint{X: s.xs[idx], F: f})
	}
	return out
}

// EDF is an empirical distribution function over a bounded window of
// observations. RLive's recovery policy uses an EDF over historical
// dedicated-node retransmission latencies to estimate the probability that a
// frame fetched from a dedicated node arrives before its playout deadline
// (§5.3: P(F_i | a_i >= 1, S) = 1 - F_N(tau_i)).
//
// The window bound keeps the estimate responsive to current conditions; the
// paper records "historical latency records L" per session.
type EDF struct {
	window int
	xs     []float64
	sorted []float64
	dirty  bool
}

// NewEDF returns an EDF retaining at most window observations (FIFO
// eviction). window <= 0 means unbounded.
func NewEDF(window int) *EDF { return &EDF{window: window} }

// Observe records one latency observation.
func (e *EDF) Observe(x float64) {
	e.xs = append(e.xs, x)
	if e.window > 0 && len(e.xs) > e.window {
		e.xs = e.xs[1:]
	}
	e.dirty = true
}

// N returns the number of retained observations.
func (e *EDF) N() int { return len(e.xs) }

// F returns the empirical F(t) = (1/N) * sum(1{x_i <= t}). With no
// observations it returns 0 (pessimistic: unknown latency never beats the
// deadline), which pushes early decisions toward reliable sources until
// history accumulates.
func (e *EDF) F(t float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	if e.dirty {
		e.sorted = append(e.sorted[:0], e.xs...)
		sort.Float64s(e.sorted)
		e.dirty = false
	}
	// Count x_i <= t: find first index with x > t.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > t })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]) of the retained window.
func (e *EDF) Quantile(q float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	if e.dirty {
		e.sorted = append(e.sorted[:0], e.xs...)
		sort.Float64s(e.sorted)
		e.dirty = false
	}
	idx := int(q * float64(len(e.sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// EWMA is an exponentially weighted moving average; the zero value with a
// positive alpha is usable after the first Add. Edge nodes use it as the
// "sliding average of resource utilization" for the cost-aware trigger.
type EWMA struct {
	Alpha float64
	val   float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1].
func NewEWMA(alpha float64) *EWMA { return &EWMA{Alpha: alpha} }

// Add folds in a new observation and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.val = x
		e.init = true
		return e.val
	}
	e.val = e.Alpha*x + (1-e.Alpha)*e.val
	return e.val
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.val }

// Initialized reports whether at least one observation was added.
func (e *EWMA) Initialized() bool { return e.init }

// Histogram is a fixed-bucket histogram over [Lo, Hi) with uniform or
// logarithmic buckets, used to export figure series (e.g. Fig 1b capacity
// buckets).
type Histogram struct {
	lo, hi float64
	log    bool
	counts []int64
	under  int64
	over   int64
	total  int64
}

// NewHistogram returns a uniform-bucket histogram.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	return &Histogram{lo: lo, hi: hi, counts: make([]int64, buckets)}
}

// NewLogHistogram returns a histogram with log-spaced buckets over [lo, hi);
// lo must be > 0.
func NewLogHistogram(lo, hi float64, buckets int) *Histogram {
	if lo <= 0 {
		panic(fmt.Sprintf("stats: log histogram lower bound must be positive, got %g", lo))
	}
	return &Histogram{lo: lo, hi: hi, log: true, counts: make([]int64, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	var frac float64
	if h.log {
		if x < h.lo {
			h.under++
			return
		}
		frac = (math.Log(x) - math.Log(h.lo)) / (math.Log(h.hi) - math.Log(h.lo))
	} else {
		frac = (x - h.lo) / (h.hi - h.lo)
	}
	if frac < 0 {
		h.under++
		return
	}
	idx := int(frac * float64(len(h.counts)))
	if idx >= len(h.counts) {
		h.over++
		return
	}
	h.counts[idx]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Bucket returns the [lo, hi) bounds and count of bucket i.
func (h *Histogram) Bucket(i int) (lo, hi float64, count int64) {
	n := float64(len(h.counts))
	if h.log {
		llo, lhi := math.Log(h.lo), math.Log(h.hi)
		lo = math.Exp(llo + (lhi-llo)*float64(i)/n)
		hi = math.Exp(llo + (lhi-llo)*float64(i+1)/n)
	} else {
		lo = h.lo + (h.hi-h.lo)*float64(i)/n
		hi = h.lo + (h.hi-h.lo)*float64(i+1)/n
	}
	return lo, hi, h.counts[i]
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// FracUnder returns the fraction of observations below the histogram range.
func (h *Histogram) FracUnder() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.under) / float64(h.total)
}

// FracOver returns the fraction of observations at or above the upper bound.
func (h *Histogram) FracOver() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.over) / float64(h.total)
}

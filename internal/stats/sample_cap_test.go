package stats

import (
	"math"
	"reflect"
	"testing"
)

// TestCappedSampleBoundsRetention: a million observations through a capped
// sample must retain O(cap) values while keeping quantile estimates close
// to the full population's.
func TestCappedSampleBoundsRetention(t *testing.T) {
	const total, cap = 1_000_000, 4096
	s := NewCappedSample(256, cap)
	for i := 0; i < total; i++ {
		s.Add(float64(i))
	}
	if s.N() > cap {
		t.Fatalf("retained %d values, cap %d", s.N(), cap)
	}
	if s.N() < cap/4 {
		t.Fatalf("retained only %d values, thinning too aggressive for cap %d", s.N(), cap)
	}
	// Uniform 0..total-1: the median must stay near total/2 despite
	// thinning (stride sampling preserves uniform sequence coverage).
	if p50 := s.Percentile(50); math.Abs(p50-total/2) > total*0.02 {
		t.Fatalf("P50 after thinning = %v, want ~%v", p50, total/2)
	}
	if p99 := s.Percentile(99); math.Abs(p99-total*0.99) > total*0.02 {
		t.Fatalf("P99 after thinning = %v, want ~%v", p99, total*0.99)
	}
}

// TestCappedSampleDeterministic: thinning uses no RNG, so two identical
// observation sequences retain the identical subset.
func TestCappedSampleDeterministic(t *testing.T) {
	feed := func() []float64 {
		s := NewCappedSample(16, 64)
		for i := 0; i < 10_000; i++ {
			s.Add(float64((i*2654435761)%9973) / 7)
		}
		out := make([]float64, s.N())
		copy(out, s.Values())
		return out
	}
	a, b := feed(), feed()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical sequences retained different subsets")
	}
}

// TestUncappedSampleUnchanged: NewSample keeps the original retain-all
// semantics existing callers rely on.
func TestUncappedSampleUnchanged(t *testing.T) {
	s := NewSample(4)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	if s.N() != 1000 {
		t.Fatalf("unbounded sample retained %d of 1000", s.N())
	}
	if s.Cap() != 0 {
		t.Fatalf("unbounded sample reports cap %d", s.Cap())
	}
}

// TestEWMAConvergesToConstant: feeding a constant drives the average to
// it geometrically — after k steps the residual is (1-alpha)^k of the
// initial gap.
func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	e.Add(0) // initialize at 0
	const target = 10.0
	steps := 0
	for math.Abs(e.Value()-target) > 1e-3 && steps < 1000 {
		e.Add(target)
		steps++
	}
	if steps >= 1000 {
		t.Fatalf("EWMA did not converge: value %v after %d steps", e.Value(), steps)
	}
	// Residual after k steps is exactly (1-alpha)^k * gap; check the bound.
	wantSteps := int(math.Ceil(math.Log(1e-3/target) / math.Log(0.8)))
	if steps > wantSteps+1 {
		t.Fatalf("converged in %d steps, geometric bound is %d", steps, wantSteps)
	}
}

// TestSampleQuantileSingleElement: every percentile of a one-element
// sample is that element.
func TestSampleQuantileSingleElement(t *testing.T) {
	s := NewSample(1)
	s.Add(42)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := s.Percentile(p); got != 42 {
			t.Fatalf("P%v of single-element sample = %v, want 42", p, got)
		}
	}
}

// TestSampleQuantileDuplicateHeavy: a sample dominated by one repeated
// value must report it across the bulk quantile range, with the outliers
// only at the extremes.
func TestSampleQuantileDuplicateHeavy(t *testing.T) {
	s := NewSample(100)
	s.Add(1)
	for i := 0; i < 98; i++ {
		s.Add(5)
	}
	s.Add(9)
	for _, p := range []float64{10, 25, 50, 75, 90} {
		if got := s.Percentile(p); got != 5 {
			t.Fatalf("P%v of duplicate-heavy sample = %v, want 5", p, got)
		}
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 9 {
		t.Fatalf("P100 = %v, want 9", got)
	}
}

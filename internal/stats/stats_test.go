package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(7)
	child := a.Fork()
	// The child's stream must be reproducible from the same parent state.
	b := NewRNG(7)
	child2 := b.Fork()
	for i := 0; i < 100; i++ {
		if child.Float64() != child2.Float64() {
			t.Fatalf("forked streams diverged at draw %d", i)
		}
	}
}

func TestRNGBoolEdges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 100; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	g := NewRNG(3)
	s := NewSample(20000)
	for i := 0; i < 20000; i++ {
		s.Add(g.LogNormalMedian(25.4, 1.5))
	}
	p50 := s.Percentile(50)
	if p50 < 22 || p50 > 29 {
		t.Fatalf("lognormal median calibration off: got P50=%.2f want ~25.4", p50)
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(5)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[g.Zipf(100, 1.2)]++
	}
	if counts[0] < counts[50]*5 {
		t.Fatalf("zipf not skewed: head=%d mid=%d", counts[0], counts[50])
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-9 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := w.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("stddev = %v, want 2", got)
	}
	if got := w.ZScore(9); math.Abs(got-2) > 1e-9 {
		t.Errorf("zscore(9) = %v, want 2", got)
	}
}

func TestWelfordZeroVariance(t *testing.T) {
	var w Welford
	w.Add(3)
	w.Add(3)
	if z := w.ZScore(10); z != 0 {
		t.Errorf("zscore with zero variance = %v, want 0", z)
	}
}

func TestSamplePercentile(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 50.5}, {100, 100}, {25, 25.75},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	if s.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestSampleFracBelow(t *testing.T) {
	s := NewSample(0)
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
	}
	if got := s.FracBelow(5); got != 0.5 {
		t.Errorf("FracBelow(5) = %v, want 0.5", got)
	}
	if got := s.FracBelow(0); got != 0 {
		t.Errorf("FracBelow(0) = %v, want 0", got)
	}
	if got := s.FracBelow(100); got != 1 {
		t.Errorf("FracBelow(100) = %v, want 1", got)
	}
}

func TestSampleAddAfterQueryKeepsOrder(t *testing.T) {
	s := NewSample(0)
	s.Add(5)
	s.Add(1)
	_ = s.Percentile(50) // forces sort
	s.Add(3)
	if got := s.Percentile(100); got != 5 {
		t.Errorf("max after interleaved add = %v, want 5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("min after interleaved add = %v, want 1", got)
	}
}

func TestEDF(t *testing.T) {
	e := NewEDF(0)
	for _, x := range []float64{10, 20, 30, 40} {
		e.Observe(x)
	}
	cases := []struct{ tt, want float64 }{
		{5, 0}, {10, 0.25}, {25, 0.5}, {40, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.F(c.tt); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("F(%v) = %v, want %v", c.tt, got, c.want)
		}
	}
}

func TestEDFEmptyIsPessimistic(t *testing.T) {
	e := NewEDF(10)
	if e.F(1e9) != 0 {
		t.Fatal("empty EDF must return 0 (pessimistic)")
	}
}

func TestEDFWindow(t *testing.T) {
	e := NewEDF(2)
	e.Observe(1)
	e.Observe(2)
	e.Observe(100) // evicts 1
	if e.N() != 2 {
		t.Fatalf("window N = %d, want 2", e.N())
	}
	if got := e.F(1); got != 0 {
		t.Errorf("F(1) after eviction = %v, want 0", got)
	}
}

func TestEDFMonotoneProperty(t *testing.T) {
	g := NewRNG(11)
	f := func(seed uint64) bool {
		e := NewEDF(0)
		for i := 0; i < 50; i++ {
			e.Observe(g.Exponential(100))
		}
		prev := -1.0
		for t := 0.0; t < 1000; t += 17 {
			v := e.F(t)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("zero EWMA should be uninitialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first add should set value, got %v", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("ewma = %v, want 15", e.Value())
	}
}

func TestHistogramUniform(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // under
	h.Add(10) // over (upper bound exclusive)
	for i := 0; i < 10; i++ {
		if _, _, c := h.Bucket(i); c != 1 {
			t.Errorf("bucket %d count = %d, want 1", i, c)
		}
	}
	if h.FracUnder() != 1.0/12 || h.FracOver() != 1.0/12 {
		t.Errorf("under/over fractions wrong: %v %v", h.FracUnder(), h.FracOver())
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3)
	h.Add(5)    // decade 1: [1,10)
	h.Add(50)   // decade 2: [10,100)
	h.Add(500)  // decade 3: [100,1000)
	h.Add(0.5)  // under
	h.Add(2000) // over
	for i := 0; i < 3; i++ {
		if _, _, c := h.Bucket(i); c != 1 {
			t.Errorf("log bucket %d count = %d, want 1", i, c)
		}
	}
	lo, hi, _ := h.Bucket(1)
	if math.Abs(lo-10) > 1e-6 || math.Abs(hi-100) > 1e-6 {
		t.Errorf("log bucket 1 bounds = [%v, %v), want [10, 100)", lo, hi)
	}
}

func TestLogHistogramPanicsOnNonPositiveLo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo <= 0")
		}
	}()
	NewLogHistogram(0, 10, 5)
}

func TestCDFExport(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	pts := s.CDF(10)
	if len(pts) != 10 {
		t.Fatalf("CDF points = %d, want 10", len(pts))
	}
	if pts[9].F != 1.0 {
		t.Errorf("last CDF point F = %v, want 1", pts[9].F)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F <= pts[i-1].F {
			t.Errorf("CDF not monotone at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestParetoTail(t *testing.T) {
	g := NewRNG(9)
	s := NewSample(10000)
	for i := 0; i < 10000; i++ {
		s.Add(g.Pareto(1, 2))
	}
	if min := s.Percentile(0); min < 1 {
		t.Errorf("pareto min = %v, want >= 1", min)
	}
	if p99, p50 := s.Percentile(99), s.Percentile(50); p99 < 3*p50 {
		t.Errorf("pareto tail too light: p99=%v p50=%v", p99, p50)
	}
}

// Package stats provides the statistical substrate used across the RLive
// reproduction: a seeded deterministic RNG, the distributions needed to
// synthesize the edge fleet and network behaviour, and estimators (CDFs,
// percentiles, empirical distribution functions, Z-scores, sliding averages)
// used by the control plane and the evaluation harness.
package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source. All randomness in a simulation flows
// from a single RNG (or children derived from it via Fork) so that a given
// seed reproduces an identical run.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded with the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent child RNG. The child's stream is a pure
// function of the parent state at the time of the call, preserving
// determinism while decoupling consumers from each other's draw counts.
func (g *RNG) Fork() *RNG {
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64(), g.r.Uint64()))}
}

// SplitRNG derives the stream-th member of a family of independent streams
// from a base seed. Unlike Fork, the result is a pure function of
// (seed, stream) — it does not depend on any parent RNG's draw position —
// which is what sharded engines need: each region's stream is identical no
// matter how regions are packed onto workers or in what order loops are
// constructed. The mixing is splitmix64 over a golden-ratio stride.
func SplitRNG(seed, stream uint64) *RNG {
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return NewRNG(z)
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform int in [0,n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Normal returns a normal variate with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns a lognormal variate where the underlying normal has the
// given mu and sigma: exp(N(mu, sigma)).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// LogNormalMedian returns a lognormal variate parameterized by its median
// (exp(mu)) and sigma, which is the natural way to calibrate against the
// paper's reported medians (e.g. node lifespan P50 = 25.4 h).
func (g *RNG) LogNormalMedian(median, sigma float64) float64 {
	return g.LogNormal(math.Log(median), sigma)
}

// Exponential returns an exponential variate with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return mean * g.r.ExpFloat64()
}

// Pareto returns a Pareto variate with scale xm and shape alpha.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Uniform returns a uniform variate in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Zipf draws from a Zipf distribution over [0, n) with exponent s >= 1.
// It is used to model stream popularity: a few streams attract most viewers.
func (g *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	z := rand.NewZipf(g.r, s, 1, uint64(n-1))
	return int(z.Uint64())
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle shuffles n elements using the provided swap function.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

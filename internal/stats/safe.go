package stats

// Guarded window arithmetic for consumers that difference cumulative
// telemetry scrapes into rates (burn-rate SLO rules, per-interval
// dashboards). The edge cases are always the same three — a zero-duration
// window, a counter that reset between scrapes, and the first scrape with
// no predecessor — so they are fixed here once instead of at every call
// site.

// SafeRate returns num/denom, or 0 when denom is zero or negative. It is
// the guarded division for per-interval rates where the window duration
// can legitimately collapse to zero (two scrapes at the same instant, a
// lookback window shorter than the scrape cadence).
func SafeRate(num, denom float64) float64 {
	if denom <= 0 {
		return 0
	}
	return num / denom
}

// CounterDelta returns cur-prev for a monotone counter, treating a
// backward step as a counter reset: after a restart the counter re-counts
// from zero, so the best available delta is cur itself.
func CounterDelta(cur, prev uint64) uint64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

// DeltaRate converts a counter pair plus a window duration (nanoseconds)
// into a per-second rate, combining both guards: counter resets fold
// through CounterDelta and a zero-duration (or first-scrape, elapsed <= 0)
// window yields 0.
func DeltaRate(cur, prev uint64, elapsedNs int64) float64 {
	return SafeRate(float64(CounterDelta(cur, prev)), float64(elapsedNs)/1e9)
}

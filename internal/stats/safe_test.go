package stats

import "testing"

func TestSafeRate(t *testing.T) {
	cases := []struct {
		num, denom, want float64
	}{
		{10, 2, 5},
		{10, 0, 0},    // zero-duration window
		{10, -1, 0},   // clock went backwards: still guarded
		{0, 5, 0},     // nothing happened
		{-3, 2, -1.5}, // signed numerators pass through
	}
	for _, c := range cases {
		if got := SafeRate(c.num, c.denom); got != c.want {
			t.Errorf("SafeRate(%g, %g) = %g, want %g", c.num, c.denom, got, c.want)
		}
	}
}

func TestCounterDelta(t *testing.T) {
	cases := []struct {
		cur, prev, want uint64
	}{
		{10, 4, 6},
		{4, 4, 0},
		{3, 10, 3}, // counter reset: re-counted from zero since the restart
		{0, 10, 0}, // reset that has not moved yet
		{7, 0, 7},  // first delta against the zero snapshot
	}
	for _, c := range cases {
		if got := CounterDelta(c.cur, c.prev); got != c.want {
			t.Errorf("CounterDelta(%d, %d) = %d, want %d", c.cur, c.prev, got, c.want)
		}
	}
}

func TestDeltaRate(t *testing.T) {
	cases := []struct {
		name      string
		cur, prev uint64
		elapsedNs int64
		want      float64
	}{
		{"steady", 30, 10, 2e9, 10},
		{"zero-duration window", 30, 10, 0, 0},
		{"first scrape (no predecessor span)", 30, 0, -1e9, 0},
		{"counter reset", 5, 100, 1e9, 5},
		{"sub-second window", 8, 0, 5e8, 16},
	}
	for _, c := range cases {
		if got := DeltaRate(c.cur, c.prev, c.elapsedNs); got != c.want {
			t.Errorf("%s: DeltaRate(%d, %d, %d) = %g, want %g",
				c.name, c.cur, c.prev, c.elapsedNs, got, c.want)
		}
	}
}

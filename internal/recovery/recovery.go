// Package recovery implements RLive's QoE-driven sub-stream loss recovery
// (§5.3): a state-aware decision framework that, for each incomplete frame,
// picks among four recovery actions by minimizing a probabilistic loss
// function combining bandwidth cost, the probability the frame misses its
// playback deadline, and the playout impact of losing it.
//
// The core trade-off it encodes (Fig 3): best-effort retransmissions are
// cheap but slow and less reliable (median ≈ 778 ms, ≈ 91% success in the
// paper), dedicated-node retransmissions are fast and reliable (≈ 71 ms,
// ≈ 94%) but cost more per byte. The policy prefers best-effort recovery
// whenever it is likely to complete before the frame's deadline, escalating
// to dedicated frames, substream switchback, or a full-stream fallback as
// buffers drain or losses concentrate.
package recovery

import (
	"math"
	"time"

	"repro/internal/media"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Action is one recovery choice for a frame (the per-frame components a_i
// of the action vector A).
type Action uint8

const (
	// RetryBestEffort (a=0) requests packet-level retransmission from
	// the best-effort publisher (fast-retransmit on reordering, timeout
	// otherwise).
	RetryBestEffort Action = iota
	// FetchDedicated (a=1) retrieves the whole frame from a dedicated
	// node while subsequent frames keep flowing from best-effort nodes.
	FetchDedicated
	// SwitchSubstream (a=2) repoints the afflicted substream to a
	// dedicated node — chosen when consecutive frames of one substream
	// are lost, making per-frame fetches inefficient.
	SwitchSubstream
	// FullFallback (a=3) pulls the entire stream from dedicated nodes —
	// the last resort when QoE cannot otherwise be maintained.
	FullFallback

	numActions
)

// String names the action.
func (a Action) String() string {
	switch a {
	case RetryBestEffort:
		return "retry-best-effort"
	case FetchDedicated:
		return "fetch-dedicated"
	case SwitchSubstream:
		return "switch-substream"
	case FullFallback:
		return "full-fallback"
	default:
		return "unknown"
	}
}

// FrameState is the per-frame slice of the decision state S: deadline,
// size, retransmission history toward this frame, and which substream it
// belongs to.
type FrameState struct {
	Dts       uint64
	Substream media.SubstreamID
	Type      media.FrameType
	// Deadline is the remaining time until the frame must be playable.
	Deadline time.Duration
	// SizeBytes is the frame size (cost of a dedicated re-fetch).
	SizeBytes int
	// MissingPackets is x_fail,i: packets still missing.
	MissingPackets int
	// PacketBytes is the wire size per packet (cost of BE retries).
	PacketBytes int
	// RetriesUsed is n_fail,i: retransmission attempts already spent.
	RetriesUsed int
}

// Stats carries the session-level observations the model conditions on.
type Stats struct {
	// PktSuccess is p: the per-packet retransmission success rate toward
	// the best-effort publisher, x_succ/n_succ over the session window.
	PktSuccess float64
	// BERetryRTT is the expected single retry round-trip toward the
	// best-effort publisher (drives how many retries fit a deadline).
	BERetryRTT time.Duration
	// DedicatedEDF is F_N: the empirical distribution of dedicated-node
	// frame-retrieval latency (L in the paper).
	DedicatedEDF *stats.EDF
	// ConsecutiveLost counts consecutively lost frames per substream —
	// the signal for substream switchback.
	ConsecutiveLost map[media.SubstreamID]int
	// BufferMs is the current playout buffer level.
	BufferMs float64
	// FallbackThresholdMs is the buffer level below which full fallback
	// engages (§7.4: 400 ms in production).
	FallbackThresholdMs float64
}

// Costs parameterizes the loss function.
type Costs struct {
	// BECostPerByte and DedicatedCostPerByte are relative unit bandwidth
	// prices (paper: best-effort 20–40% cheaper).
	BECostPerByte        float64
	DedicatedCostPerByte float64
	// Lambda weighs playout risk against bandwidth cost. Cost is
	// measured in (relative-price × bytes), so Lambda must be large
	// enough that meaningful deadline-miss probabilities outweigh
	// frame-sized byte costs.
	Lambda float64
	// RiskI and RiskP are risk(F_i) constants by frame type; losing an
	// I-frame stalls the whole GoP so RiskI >> RiskP.
	RiskI float64
	RiskP float64
	// RequestOverheadBytes is the per-request overhead of an individual
	// dedicated frame fetch (headers, connection bookkeeping) — the
	// inefficiency that makes repeated per-frame fetches lose to a
	// substream switch during loss bursts.
	RequestOverheadBytes int
	// SwitchOverheadBytes models the reconnection cost of a substream
	// switch; FullOverheadBytes that of a full-stream pull (initial GoP).
	SwitchOverheadBytes int
	FullOverheadBytes   int
	// ConsecutiveLossSwitch is the consecutive-frame-loss count on one
	// substream at which switchback becomes admissible.
	ConsecutiveLossSwitch int
}

// DefaultCosts returns production-like parameters.
func DefaultCosts() Costs {
	return Costs{
		BECostPerByte:         0.65,
		DedicatedCostPerByte:  1.0,
		Lambda:                100_000,
		RiskI:                 10,
		RiskP:                 1,
		RequestOverheadBytes:  1500,
		SwitchOverheadBytes:   4000,
		FullOverheadBytes:     200_000,
		ConsecutiveLossSwitch: 3,
	}
}

// Decision is the chosen action and its modeled loss for one frame.
type Decision struct {
	Frame  FrameState
	Action Action
	Loss   float64
	// PFail is the modeled probability the frame misses its deadline
	// under the chosen action.
	PFail float64
}

// Engine evaluates the loss function and picks actions.
type Engine struct {
	Costs Costs
	// Trace, when non-nil, records one KRecoveryDecide per modeled frame
	// with the chosen action and its deadline budget.
	Trace *trace.Buf

	// Scratch buffers backing Decide's allocation-free steady state:
	// the decision vector, per-substream index buckets (indexed by the
	// substream id), and the group-alternative staging slice.
	outScratch []Decision
	ssIdx      [][]int
	swScratch  []Decision
}

// NewEngine returns an engine with the given cost parameters.
func NewEngine(c Costs) *Engine { return &Engine{Costs: c} }

// risk returns risk(F_i) by frame type.
func (e *Engine) risk(t media.FrameType) float64 {
	if t == media.FrameI {
		return e.Costs.RiskI
	}
	return e.Costs.RiskP
}

// pFailBestEffort models P(F_i | a_i = 0, S): packet-level retries toward
// the best-effort publisher. With per-packet success p, r feasible retry
// rounds before the deadline, and x missing packets, a packet is recovered
// within r rounds with probability 1-(1-p)^r; the frame completes iff all x
// packets recover:
//
//	P_fail = 1 - (1 - (1-p)^r)^x
//
// r <= 0 (deadline already closer than one retry RTT) yields P_fail = 1.
func (e *Engine) pFailBestEffort(f FrameState, s Stats) float64 {
	if f.MissingPackets <= 0 {
		return 0
	}
	p := s.PktSuccess
	if p <= 0 {
		return 1
	}
	if p > 1 {
		p = 1
	}
	if s.BERetryRTT <= 0 {
		return 1
	}
	r := int(f.Deadline / s.BERetryRTT)
	if r <= 0 {
		return 1
	}
	pktRecovered := 1 - math.Pow(1-p, float64(r))
	return 1 - math.Pow(pktRecovered, float64(f.MissingPackets))
}

// pFailDedicated models P(F_i | a_i >= 1, S) = 1 - F_N(tau_i): the
// dedicated node retransmits the entire frame in a single attempt with
// empirically distributed latency.
func (e *Engine) pFailDedicated(f FrameState, s Stats) float64 {
	if s.DedicatedEDF == nil {
		return 1
	}
	tau := float64(f.Deadline) / float64(time.Millisecond)
	return 1 - s.DedicatedEDF.F(tau)
}

// cost returns cost(a_i) in relative price units for one frame.
func (e *Engine) cost(a Action, f FrameState) float64 {
	c := e.Costs
	switch a {
	case RetryBestEffort:
		// Expected retransmitted bytes: the missing packets, possibly
		// more than once; one round's worth is the dominant term.
		return c.BECostPerByte * float64(f.MissingPackets*f.PacketBytes)
	case FetchDedicated:
		return c.DedicatedCostPerByte * float64(f.SizeBytes+c.RequestOverheadBytes)
	case SwitchSubstream:
		// Per-frame share when the switch covers a burst: the frame's
		// bytes at dedicated price; the one-time reconnection overhead
		// is added once at the group level in Decide.
		return c.DedicatedCostPerByte * float64(f.SizeBytes)
	case FullFallback:
		return c.DedicatedCostPerByte * float64(f.SizeBytes+c.FullOverheadBytes)
	default:
		return math.Inf(1)
	}
}

// pFail returns the failure probability for one frame under an action.
func (e *Engine) pFail(a Action, f FrameState, s Stats) float64 {
	switch a {
	case RetryBestEffort:
		return e.pFailBestEffort(f, s)
	case FetchDedicated:
		return e.pFailDedicated(f, s)
	case SwitchSubstream:
		// Same dedicated latency profile, minus per-frame request
		// round trips for subsequent frames; model as the dedicated
		// EDF with a small reconnection penalty folded into the
		// deadline.
		g := f
		g.Deadline -= 30 * time.Millisecond
		if g.Deadline < 0 {
			g.Deadline = 0
		}
		return e.pFailDedicated(g, s)
	case FullFallback:
		// Dedicated full-stream delivery effectively guarantees the
		// frame if any buffer remains; keep a floor for realism.
		p := e.pFailDedicated(f, s) * 0.5
		if p < 0.001 {
			p = 0.001
		}
		return p
	default:
		return 1
	}
}

// loss computes Loss(a_i) = cost + λ·P_fail·risk for one frame.
func (e *Engine) loss(a Action, f FrameState, s Stats) (float64, float64) {
	pf := e.pFail(a, f, s)
	return e.cost(a, f) + e.Costs.Lambda*pf*e.risk(f.Type), pf
}

// DecideFrame picks the minimum-loss per-frame action (a=0, a=1, or — when
// the buffer has drained below the fallback threshold — a=3). Substream
// switchback (a=2) is a burst-level action evaluated in Decide, since its
// benefit is amortizing reconnection overhead over consecutive losses.
func (e *Engine) DecideFrame(f FrameState, s Stats) Decision {
	best := Decision{Frame: f, Action: RetryBestEffort}
	best.Loss, best.PFail = e.loss(RetryBestEffort, f, s)

	consider := func(a Action) {
		l, pf := e.loss(a, f, s)
		if l < best.Loss {
			best.Action, best.Loss, best.PFail = a, l, pf
		}
	}
	consider(FetchDedicated)
	if s.BufferMs < s.FallbackThresholdMs {
		consider(FullFallback)
	}
	return best
}

// Decide evaluates the retransmission list (all incomplete frames) and
// returns the action vector A = (a_1, ..., a_m) minimizing the additive
// loss. Per-frame minima are computed first; then, for each substream whose
// loss burst reaches the consecutive-loss threshold (counting both frames in
// the list and the session's running consecutive-loss counter), the group
// alternative "switch the substream to a dedicated node" — one reconnection
// overhead plus dedicated delivery of every frame — replaces the per-frame
// decisions when its total loss is lower (§5.3 action a_i = 2).
//
// out[i] corresponds to frames[i] (order preserved). The returned slice is
// backed by an internal scratch buffer and only valid until the next Decide
// call; callers must consume it before re-entering the engine.
func (e *Engine) Decide(frames []FrameState, s Stats) []Decision {
	out := e.outScratch[:0]
	for i := range e.ssIdx {
		e.ssIdx[i] = e.ssIdx[i][:0]
	}
	for i, f := range frames {
		out = append(out, e.DecideFrame(f, s))
		ss := int(f.Substream)
		for ss >= len(e.ssIdx) {
			e.ssIdx = append(e.ssIdx, nil)
		}
		e.ssIdx[ss] = append(e.ssIdx[ss], i)
	}
	e.outScratch = out
	// Bucket iteration runs in ascending substream order — deterministic,
	// and result-equivalent to the old map iteration because each bucket
	// substitutes a disjoint set of out indices.
	for ssInt := range e.ssIdx {
		idxs := e.ssIdx[ssInt]
		if len(idxs) == 0 {
			continue
		}
		burst := len(idxs)
		if s.ConsecutiveLost != nil {
			burst += s.ConsecutiveLost[media.SubstreamID(ssInt)]
		}
		if burst < e.Costs.ConsecutiveLossSwitch {
			continue
		}
		// Group loss under per-frame decisions vs under a switch.
		var cur, sw float64
		swDecisions := e.swScratch[:0]
		for _, i := range idxs {
			cur += out[i].Loss
			l, pf := e.loss(SwitchSubstream, frames[i], s)
			sw += l
			swDecisions = append(swDecisions, Decision{Frame: frames[i], Action: SwitchSubstream, Loss: l, PFail: pf})
		}
		e.swScratch = swDecisions
		sw += e.Costs.DedicatedCostPerByte * float64(e.Costs.SwitchOverheadBytes)
		if sw < cur {
			for j, i := range idxs {
				out[i] = swDecisions[j]
			}
		}
	}
	// Trace final decisions in list order (after group substitution, so
	// the record reflects what the client will execute; iterating out —
	// not the perSS map — keeps the event order deterministic).
	if e.Trace != nil {
		for i := range out {
			d := &out[i]
			e.Trace.Rec(trace.KRecoveryDecide, 0, d.Frame.Dts,
				uint64(d.Action), uint64(d.Frame.Deadline/time.Millisecond))
		}
	}
	return out
}

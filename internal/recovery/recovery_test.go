package recovery

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/media"
	"repro/internal/stats"
)

// dedicatedEDF returns an EDF with the paper's dedicated-node latency
// profile: tight around ~71 ms.
func dedicatedEDF() *stats.EDF {
	e := stats.NewEDF(0)
	rng := stats.NewRNG(1)
	for i := 0; i < 500; i++ {
		e.Observe(rng.LogNormalMedian(71, 0.4))
	}
	return e
}

func baseStats() Stats {
	return Stats{
		PktSuccess:          0.91,
		BERetryRTT:          120 * time.Millisecond,
		DedicatedEDF:        dedicatedEDF(),
		ConsecutiveLost:     map[media.SubstreamID]int{},
		BufferMs:            2000,
		FallbackThresholdMs: 400,
	}
}

func baseFrame() FrameState {
	return FrameState{
		Dts:            1000,
		Substream:      1,
		Type:           media.FrameP,
		Deadline:       1500 * time.Millisecond,
		SizeBytes:      8000,
		MissingPackets: 2,
		PacketBytes:    1200,
	}
}

func TestHealthyBufferPrefersBestEffort(t *testing.T) {
	e := NewEngine(DefaultCosts())
	d := e.DecideFrame(baseFrame(), baseStats())
	if d.Action != RetryBestEffort {
		t.Fatalf("with a deep buffer the cheap path should win, got %v (loss=%.1f pfail=%.3f)",
			d.Action, d.Loss, d.PFail)
	}
}

func TestTightDeadlineEscalatesToDedicated(t *testing.T) {
	e := NewEngine(DefaultCosts())
	f := baseFrame()
	f.Deadline = 150 * time.Millisecond // one BE retry round at most
	s := baseStats()
	s.BufferMs = 600 // above fallback threshold: full fallback inadmissible
	d := e.DecideFrame(f, s)
	if d.Action != FetchDedicated {
		t.Fatalf("tight deadline should escalate, got %v (pfail=%.3f)", d.Action, d.PFail)
	}
}

func TestLowBufferTriggersFullFallback(t *testing.T) {
	e := NewEngine(DefaultCosts())
	f := baseFrame()
	f.Deadline = 60 * time.Millisecond // even dedicated per-frame fetch is risky
	f.Type = media.FrameI
	s := baseStats()
	s.BufferMs = 100 // below fallback threshold
	d := e.DecideFrame(f, s)
	if d.Action != FullFallback {
		t.Fatalf("depleted buffer + desperate deadline should fall back, got %v", d.Action)
	}
}

func TestFullFallbackInadmissibleAboveThreshold(t *testing.T) {
	e := NewEngine(DefaultCosts())
	f := baseFrame()
	f.Deadline = 10 * time.Millisecond
	s := baseStats()
	s.BufferMs = 5000
	d := e.DecideFrame(f, s)
	if d.Action == FullFallback {
		t.Fatal("full fallback chosen despite healthy buffer")
	}
}

func TestConsecutiveLossEnablesSwitchback(t *testing.T) {
	e := NewEngine(DefaultCosts())
	s := baseStats()
	s.PktSuccess = 0.3 // BE path unattractive: per-frame minima pick FetchDedicated

	mkBurst := func(n int) []FrameState {
		frames := make([]FrameState, n)
		for i := range frames {
			f := baseFrame()
			f.Substream = 2
			f.Deadline = 250 * time.Millisecond
			f.MissingPackets = 4
			frames[i] = f
		}
		return frames
	}

	// A burst below the threshold must not switch.
	for _, d := range e.Decide(mkBurst(2), s) {
		if d.Action == SwitchSubstream {
			t.Fatal("switchback chosen below consecutive-loss threshold")
		}
	}
	// A long burst amortizes the switch overhead: per-frame dedicated
	// fetches each pay RequestOverheadBytes, the switch pays
	// SwitchOverheadBytes once, so with 5 frames the switch must win.
	ds := e.Decide(mkBurst(5), s)
	for i, d := range ds {
		if d.Action != SwitchSubstream {
			t.Fatalf("frame %d: got %v, want switch-substream (loss=%.0f)", i, d.Action, d.Loss)
		}
	}
	// The running consecutive-loss counter also counts toward the
	// threshold: 1 listed frame + 4 prior losses crosses it, but a
	// 1-frame group cannot amortize the overhead, so it still fetches.
	s.ConsecutiveLost[2] = 4
	ds = e.Decide(mkBurst(1), s)
	if ds[0].Action == RetryBestEffort {
		t.Fatalf("unreliable path retained: %v", ds[0].Action)
	}
}

func TestIFrameEscalatesEarlier(t *testing.T) {
	e := NewEngine(DefaultCosts())
	s := baseStats()
	s.PktSuccess = 0.5
	f := baseFrame()
	f.Deadline = 400 * time.Millisecond
	f.MissingPackets = 4

	f.Type = media.FrameP
	dp := e.DecideFrame(f, s)
	f.Type = media.FrameI
	di := e.DecideFrame(f, s)
	// The I-frame must never take a riskier path than the P-frame under
	// identical conditions.
	if di.Action == RetryBestEffort && dp.Action == FetchDedicated {
		t.Fatal("I-frame chose riskier action than P-frame")
	}
	// And with these parameters the risk gap should actually flip the
	// I-frame to the reliable path.
	if di.Action != FetchDedicated {
		t.Fatalf("I-frame should escalate (got %v, pfail=%.3f)", di.Action, di.PFail)
	}
}

func TestPFailMonotoneInMissingPackets(t *testing.T) {
	e := NewEngine(DefaultCosts())
	s := baseStats()
	f := baseFrame()
	prev := -1.0
	for x := 0; x <= 20; x++ {
		f.MissingPackets = x
		pf := e.pFailBestEffort(f, s)
		if pf < prev {
			t.Fatalf("P_fail not monotone in missing packets at x=%d: %v < %v", x, pf, prev)
		}
		if pf < 0 || pf > 1 {
			t.Fatalf("P_fail out of range: %v", pf)
		}
		prev = pf
	}
}

func TestPFailMonotoneInDeadline(t *testing.T) {
	e := NewEngine(DefaultCosts())
	s := baseStats()
	f := baseFrame()
	prev := 2.0
	for d := 50 * time.Millisecond; d < 3*time.Second; d += 100 * time.Millisecond {
		f.Deadline = d
		pf := e.pFailBestEffort(f, s)
		if pf > prev {
			t.Fatalf("P_fail not non-increasing in deadline at %v", d)
		}
		prev = pf
	}
}

func TestPFailEdgeCases(t *testing.T) {
	e := NewEngine(DefaultCosts())
	s := baseStats()
	f := baseFrame()
	f.MissingPackets = 0
	if pf := e.pFailBestEffort(f, s); pf != 0 {
		t.Fatalf("no missing packets must give pfail 0, got %v", pf)
	}
	f.MissingPackets = 3
	s.PktSuccess = 0
	if pf := e.pFailBestEffort(f, s); pf != 1 {
		t.Fatalf("zero success rate must give pfail 1, got %v", pf)
	}
	s = baseStats()
	f.Deadline = 0
	if pf := e.pFailBestEffort(f, s); pf != 1 {
		t.Fatalf("expired deadline must give pfail 1, got %v", pf)
	}
}

func TestPFailDedicatedUsesEDF(t *testing.T) {
	e := NewEngine(DefaultCosts())
	s := baseStats()
	f := baseFrame()
	f.Deadline = 500 * time.Millisecond
	pfLong := e.pFailDedicated(f, s)
	f.Deadline = 20 * time.Millisecond
	pfShort := e.pFailDedicated(f, s)
	if pfLong >= pfShort {
		t.Fatalf("longer deadline should reduce dedicated pfail: %v vs %v", pfLong, pfShort)
	}
	if pfLong > 0.2 {
		t.Fatalf("500ms deadline vs ~71ms median should almost always make it: pfail=%v", pfLong)
	}
}

func TestPFailDedicatedNilEDF(t *testing.T) {
	e := NewEngine(DefaultCosts())
	f := baseFrame()
	if pf := e.pFailDedicated(f, Stats{}); pf != 1 {
		t.Fatalf("nil EDF must be pessimistic, got %v", pf)
	}
}

func TestDecideVector(t *testing.T) {
	e := NewEngine(DefaultCosts())
	s := baseStats()
	frames := []FrameState{baseFrame(), baseFrame(), baseFrame()}
	frames[1].Deadline = 100 * time.Millisecond
	frames[2].MissingPackets = 0
	ds := e.Decide(frames, s)
	if len(ds) != 3 {
		t.Fatalf("decisions = %d", len(ds))
	}
	if ds[0].Action != RetryBestEffort {
		t.Errorf("frame 0: %v", ds[0].Action)
	}
	if ds[1].Action != FetchDedicated {
		t.Errorf("frame 1 (tight): %v", ds[1].Action)
	}
	if ds[2].Action != RetryBestEffort || ds[2].PFail != 0 {
		t.Errorf("frame 2 (complete): %v pfail=%v", ds[2].Action, ds[2].PFail)
	}
}

func TestActionStrings(t *testing.T) {
	want := map[Action]string{
		RetryBestEffort: "retry-best-effort",
		FetchDedicated:  "fetch-dedicated",
		SwitchSubstream: "switch-substream",
		FullFallback:    "full-fallback",
		Action(99):      "unknown",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
}

// Property: the probability model always returns values in [0,1] for any
// non-degenerate inputs.
func TestPFailRangeProperty(t *testing.T) {
	e := NewEngine(DefaultCosts())
	f := func(p float64, deadlineMs uint16, missing uint8) bool {
		s := baseStats()
		s.PktSuccess = p
		fr := baseFrame()
		fr.Deadline = time.Duration(deadlineMs) * time.Millisecond
		fr.MissingPackets = int(missing)
		pf := e.pFailBestEffort(fr, s)
		return pf >= 0 && pf <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: increasing Lambda can only shift decisions toward more reliable
// (lower-pfail) actions, never less reliable ones.
func TestLambdaMonotonicity(t *testing.T) {
	s := baseStats()
	s.PktSuccess = 0.6
	f := baseFrame()
	f.Deadline = 300 * time.Millisecond
	var prevPFail = 2.0
	for _, lambda := range []float64{1, 100, 3000, 100000} {
		c := DefaultCosts()
		c.Lambda = lambda
		d := NewEngine(c).DecideFrame(f, s)
		if d.PFail > prevPFail+1e-12 {
			t.Fatalf("higher lambda picked less reliable action: pfail %v after %v", d.PFail, prevPFail)
		}
		prevPFail = d.PFail
	}
}

// TestDecideSteadyStateAllocFree: the recovery tick calls Decide on every
// incomplete frame once per 100 ms for every client, so its steady state
// must not allocate — the decision vector, the per-substream buckets, and
// the group-substitution staging all live in engine-owned scratch buffers.
func TestDecideSteadyStateAllocFree(t *testing.T) {
	e := NewEngine(DefaultCosts())
	edf := stats.NewEDF(128)
	for i := 0; i < 50; i++ {
		edf.Observe(float64(50 + i))
	}
	s := Stats{
		PktSuccess:          0.9,
		BERetryRTT:          80 * time.Millisecond,
		DedicatedEDF:        edf,
		ConsecutiveLost:     map[media.SubstreamID]int{1: 4}, // triggers group substitution
		BufferMs:            900,
		FallbackThresholdMs: 400,
	}
	frames := make([]FrameState, 6)
	for i := range frames {
		frames[i] = FrameState{
			Dts:            uint64(1000 + 33*i),
			Substream:      media.SubstreamID(i % 3),
			Type:           media.FrameP,
			Deadline:       time.Duration(300+50*i) * time.Millisecond,
			SizeBytes:      9000,
			MissingPackets: 1 + i%3,
			PacketBytes:    1200,
			RetriesUsed:    i % 2,
		}
	}
	e.Decide(frames, s) // warm up the scratch buffers
	allocs := testing.AllocsPerRun(1000, func() {
		e.Decide(frames, s)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decide allocates %.1f/op, want 0", allocs)
	}
}

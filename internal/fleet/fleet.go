// Package fleet synthesizes the node population RLive runs on: the
// dedicated CDN nodes and the hyperscale pool of best-effort edge nodes.
// Since the paper's ~1M vendor-operated boxes are not available, the fleet
// is generated to match the measured marginals the paper reports:
//
//   - Bandwidth capacity (Fig 1b): ~29% of nodes below 10 Mbps, only ~12%
//     above 100 Mbps.
//   - Lifespan / churn (Fig 2c): median live span ≈ 25.4 h, with ~50% of
//     nodes going offline at least once per day.
//   - NAT type mix (§2.1, §8.1) and ISP/region static attributes used by the
//     global scheduler's tree retrieval.
//   - Unit bandwidth cost 20–40% below dedicated nodes (§2.1).
//   - Quota-based availability (§8.1): some nodes bottleneck on CPU/memory
//     before bandwidth.
package fleet

import (
	"math"
	"sort"
	"time"

	"repro/internal/nat"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// NodeClass distinguishes dedicated CDN nodes from best-effort nodes.
type NodeClass uint8

const (
	// Dedicated is a CDN-operated node with high, stable capacity.
	Dedicated NodeClass = iota
	// BestEffort is a third-party edge node with limited, unstable
	// capacity.
	BestEffort
)

// String names the class.
func (c NodeClass) String() string {
	if c == Dedicated {
		return "dedicated"
	}
	return "best-effort"
}

// Bottleneck marks which resource caps a node's concurrent sessions
// (quota-based availability, §8.1).
type Bottleneck uint8

const (
	// BottleneckBandwidth means the uplink is the limit (the common case).
	BottleneckBandwidth Bottleneck = iota
	// BottleneckCPU means packetization/forwarding CPU saturates first.
	BottleneckCPU
	// BottleneckMemory means buffer memory saturates first.
	BottleneckMemory
)

// String names the bottleneck.
func (b Bottleneck) String() string {
	switch b {
	case BottleneckCPU:
		return "cpu"
	case BottleneckMemory:
		return "memory"
	default:
		return "bandwidth"
	}
}

// Node is one synthesized node.
type Node struct {
	Addr  simnet.Addr
	Class NodeClass

	// Static features (the global scheduler's confident view).
	Region  int
	ISP     int
	NAT     nat.Type
	HighQ   bool // "node type": whether a high-quality node (top tier)
	ConnTyp int  // access technology bucket (fiber/cable/cellular)

	// Capacity.
	UplinkBps float64
	// SessionQuota is the max concurrent serving sessions implied by the
	// node's actual bottleneck; for CPU/memory-bottlenecked nodes this is
	// lower than bandwidth alone would suggest.
	SessionQuota int
	Bottleneck   Bottleneck

	// Cost is the relative unit bandwidth cost (dedicated = 1.0).
	Cost float64

	// Churn: the node's sessions of uptime. MeanLifespan parameterizes
	// the exponential on/off process seeded from the lognormal draw.
	MeanLifespan time.Duration
	MeanDowntime time.Duration
}

// Config parameterizes fleet synthesis.
type Config struct {
	NumDedicated  int
	NumBestEffort int
	// Regions and ISPs are the numbers of distinct regions / ISPs.
	Regions int
	ISPs    int
	// ChurnEnabled schedules on/off transitions on the simulator.
	ChurnEnabled bool
	// LifespanMedian is the median best-effort node live span
	// (default 25.4 h per Fig 2c).
	LifespanMedian time.Duration
	// LifespanSigma is the lognormal sigma (default 1.3, giving a heavy
	// lower tail: ~half the nodes live under a day).
	LifespanSigma float64
	// RefinedNAT enables §8.1 traversal refinements.
	RefinedNAT bool
}

func (c *Config) setDefaults() {
	if c.Regions == 0 {
		c.Regions = 8
	}
	if c.ISPs == 0 {
		c.ISPs = 4
	}
	if c.LifespanMedian == 0 {
		c.LifespanMedian = time.Duration(25.4 * float64(time.Hour))
	}
	if c.LifespanSigma == 0 {
		c.LifespanSigma = 1.3
	}
}

// Fleet is the synthesized population plus its churn driver.
type Fleet struct {
	cfg        Config
	rng        *stats.RNG
	Dedicated  []*Node
	BestEffort []*Node
	byAddr     map[simnet.Addr]*Node
	Traverser  *nat.Traverser

	// OnChurn, if set, is invoked when a node transitions on/offline.
	OnChurn func(n *Node, online bool)

	// onlineBE tracks the online best-effort node count; telemetry
	// instruments record churn directly (independent of OnChurn, which
	// fault injectors may claim).
	onlineBE int
	tmJoins  *telemetry.Counter
	tmLeaves *telemetry.Counter
	tmOnline *telemetry.Gauge
}

// AddrBase offsets for the different entity families sharing the simnet
// address space.
const (
	AddrSchedulerBase = 1
	AddrDedicatedBase = 1000
	AddrBestEffBase   = 100000
	AddrClientBase    = 10000000
)

// New synthesizes a fleet. Nodes are registered on net with link states
// derived from their class.
func New(cfg Config, rng *stats.RNG, sim *simnet.Sim, net *simnet.Network) *Fleet {
	cfg.setDefaults()
	f := &Fleet{
		cfg:       cfg,
		rng:       rng,
		byAddr:    make(map[simnet.Addr]*Node, cfg.NumDedicated+cfg.NumBestEffort),
		Traverser: nat.NewTraverser(rng.Fork(), cfg.RefinedNAT),
	}
	for i := 0; i < cfg.NumDedicated; i++ {
		n := f.synthDedicated(i)
		f.Dedicated = append(f.Dedicated, n)
		f.byAddr[n.Addr] = n
		net.Register(n.Addr, dedicatedLinkState(n), nil)
	}
	for i := 0; i < cfg.NumBestEffort; i++ {
		n := f.synthBestEffort(i)
		f.BestEffort = append(f.BestEffort, n)
		f.byAddr[n.Addr] = n
	}
	// "High quality" is a ranked property — the top decile by capacity ×
	// stability — so the tier exists at any fleet size. Link states are
	// registered after ranking since HighQ nodes degrade less.
	if len(f.BestEffort) > 0 {
		ranked := f.TopPercentByQuality(0.10)
		for _, n := range ranked {
			n.HighQ = true
		}
		for _, n := range f.BestEffort {
			net.Register(n.Addr, bestEffortLinkState(n), nil)
		}
	}
	f.onlineBE = len(f.BestEffort) // all nodes start online
	if cfg.ChurnEnabled && sim != nil && net != nil {
		for _, n := range f.BestEffort {
			f.scheduleChurn(sim, net, n)
		}
	}
	return f
}

// SetTelemetry registers fleet instruments on reg: join/leave counters,
// the online-node gauge, and the static capacity-ceiling distribution
// (Fig 1b). Nil reg keeps every hook free.
func (f *Fleet) SetTelemetry(reg *telemetry.Registry) {
	f.tmJoins = reg.Counter("fleet.joins")
	f.tmLeaves = reg.Counter("fleet.leaves")
	f.tmOnline = reg.Gauge("fleet.online")
	capHist := reg.Histogram("fleet.capacity_bps",
		[]float64{1e6, 5e6, 10e6, 20e6, 50e6, 100e6, 500e6})
	for _, n := range f.BestEffort {
		capHist.Observe(n.UplinkBps)
	}
	f.tmOnline.Set(float64(f.onlineBE))
}

// Node returns the node with the given address, or nil.
func (f *Fleet) Node(addr simnet.Addr) *Node { return f.byAddr[addr] }

// Config returns the fleet configuration with defaults applied.
func (f *Fleet) Config() Config { return f.cfg }

func (f *Fleet) synthDedicated(i int) *Node {
	return &Node{
		Addr:         simnet.Addr(AddrDedicatedBase + i),
		Class:        Dedicated,
		Region:       i % f.cfg.Regions,
		ISP:          i % f.cfg.ISPs,
		NAT:          nat.Public,
		HighQ:        true,
		ConnTyp:      0,
		UplinkBps:    10e9, // 10 Gbps
		SessionQuota: 1 << 20,
		Cost:         1.0,
		MeanLifespan: 365 * 24 * time.Hour,
	}
}

// SampleCapacityBps draws a best-effort uplink capacity matching Fig 1b:
// a lognormal calibrated so ~29% of nodes fall below 10 Mbps and ~12%
// exceed 100 Mbps. Median ≈ 10^(1.27) ≈ 19 Mbps, sigma(log10) ≈ 0.76.
func SampleCapacityBps(rng *stats.RNG) float64 {
	// log10(capacity_Mbps) ~ N(1.27, 0.66):
	//   P(X < 10 Mbps)  = Phi((1-1.27)/0.66)  ≈ 0.34
	//   P(X > 100 Mbps) = 1-Phi((2-1.27)/0.66) ≈ 0.13
	log10c := rng.Normal(1.27, 0.66)
	mbps := math.Pow(10, log10c)
	if mbps < 0.5 {
		mbps = 0.5
	}
	if mbps > 1000 {
		mbps = 1000
	}
	return mbps * 1e6
}

// beSample holds one best-effort node's synthesized attributes. It is the
// shared sampler behind both the pointer fleet and the compact SoA fleet:
// the draw sequence below is the determinism contract — both layouts consume
// the RNG in exactly this order, so a seed yields the same population
// regardless of layout.
type beSample struct {
	UplinkBps    float64
	MeanLifespan time.Duration
	SessionQuota int
	Bottleneck   Bottleneck
	Region       int
	ISP          int
	NAT          nat.Type
	ConnTyp      int
	Cost         float64
	MeanDowntime time.Duration
}

// sampleBestEffort draws one best-effort node from the marginals.
func sampleBestEffort(cfg *Config, rng *stats.RNG) beSample {
	var s beSample
	s.UplinkBps = SampleCapacityBps(rng)
	// Lifespan: lognormal with median 25.4h (Fig 2c).
	s.MeanLifespan = time.Duration(rng.LogNormalMedian(float64(cfg.LifespanMedian), cfg.LifespanSigma))
	if s.MeanLifespan < 10*time.Minute {
		s.MeanLifespan = 10 * time.Minute
	}
	// Quota-based availability: ~15% of nodes bottleneck on CPU, ~8% on
	// memory (§8.1: nodes hit CPU/mem limits even at ~10% bandwidth
	// utilization).
	s.Bottleneck = BottleneckBandwidth
	s.SessionQuota = int(s.UplinkBps / 2.0e6 * 1.2) // sessions at ~2 Mbps each, some headroom
	if s.SessionQuota < 1 {
		s.SessionQuota = 1
	}
	switch u := rng.Float64(); {
	case u < 0.15:
		s.Bottleneck = BottleneckCPU
		s.SessionQuota = minInt(s.SessionQuota, 2+rng.IntN(6))
	case u < 0.23:
		s.Bottleneck = BottleneckMemory
		s.SessionQuota = minInt(s.SessionQuota, 4+rng.IntN(8))
	}
	s.Region = rng.IntN(cfg.Regions)
	s.ISP = rng.IntN(cfg.ISPs)
	s.NAT = nat.Sample(rng)
	s.ConnTyp = rng.IntN(3)
	s.Cost = rng.Uniform(0.60, 0.80) // 20-40% cheaper
	s.MeanDowntime = time.Duration(rng.Exponential(float64(30 * time.Minute)))
	if s.MeanDowntime < time.Minute {
		s.MeanDowntime = time.Minute
	}
	return s
}

func (f *Fleet) synthBestEffort(i int) *Node {
	s := sampleBestEffort(&f.cfg, f.rng)
	// HighQ ("node type" in the scheduler's static features) is assigned
	// after synthesis by ranking; see New.
	return &Node{
		Addr:         simnet.Addr(AddrBestEffBase + i),
		Class:        BestEffort,
		Region:       s.Region,
		ISP:          s.ISP,
		NAT:          s.NAT,
		ConnTyp:      s.ConnTyp,
		UplinkBps:    s.UplinkBps,
		SessionQuota: s.SessionQuota,
		Bottleneck:   s.Bottleneck,
		Cost:         s.Cost,
		MeanLifespan: s.MeanLifespan,
		MeanDowntime: s.MeanDowntime,
	}
}

func dedicatedLinkState(n *Node) simnet.LinkState {
	return simnet.LinkState{
		UplinkBps: n.UplinkBps,
		BaseOWD:   8 * time.Millisecond,
		LossRate:  0.0005,
		JitterStd: 1 * time.Millisecond,
		MaxQueue:  400 * time.Millisecond,
	}
}

func bestEffortLinkState(n *Node) simnet.LinkState {
	// Weaker nodes degrade more often and more severely; the top tier
	// (high capacity AND long lifespan — the strawman's "top 1%") is
	// markedly more stable, though still far from dedicated-grade.
	weakness := 1.0
	if n.UplinkBps < 10e6 {
		weakness = 2.5
	} else if n.UplinkBps < 50e6 {
		weakness = 1.5
	}
	if n.HighQ {
		weakness = 0.3
	}
	return simnet.LinkState{
		UplinkBps:         n.UplinkBps,
		BaseOWD:           3 * time.Millisecond, // closer to users than dedicated
		LossRate:          0.002 * weakness,
		DegradedLoss:      0.04 * weakness,
		DegradedExtraOWD:  time.Duration(float64(120*time.Millisecond) * weakness),
		MeanDegradedEvery: time.Duration(float64(90*time.Second) / weakness),
		MeanDegradedFor:   time.Duration(float64(4*time.Second) * weakness),
		JitterStd:         time.Duration(float64(4*time.Millisecond) * weakness),
		MaxQueue:          300 * time.Millisecond,
	}
}

// scheduleChurn drives the node's on/off process on the simulator.
func (f *Fleet) scheduleChurn(sim *simnet.Sim, net *simnet.Network, n *Node) {
	var up, down func()
	up = func() {
		// Node stays online for ~Exp(MeanLifespan).
		d := time.Duration(f.rng.Exponential(float64(n.MeanLifespan)))
		sim.After(d, func() {
			net.SetOnline(n.Addr, false)
			f.onlineBE--
			f.tmLeaves.Inc()
			f.tmOnline.Set(float64(f.onlineBE))
			if f.OnChurn != nil {
				f.OnChurn(n, false)
			}
			down()
		})
	}
	down = func() {
		d := time.Duration(f.rng.Exponential(float64(n.MeanDowntime)))
		sim.After(d, func() {
			net.SetOnline(n.Addr, true)
			f.onlineBE++
			f.tmJoins.Inc()
			f.tmOnline.Set(float64(f.onlineBE))
			if f.OnChurn != nil {
				f.OnChurn(n, true)
			}
			up()
		})
	}
	up()
}

// TopPercentByQuality returns the top fraction (e.g. 0.01 for the strawman's
// "top 1%") of best-effort nodes ranked by capacity and stability.
func (f *Fleet) TopPercentByQuality(frac float64) []*Node {
	n := int(float64(len(f.BestEffort)) * frac)
	if n < 1 {
		n = 1
	}
	sorted := make([]*Node, len(f.BestEffort))
	copy(sorted, f.BestEffort)
	// Rank by capacity × lifespan (both matter for the strawman tier).
	score := func(nd *Node) float64 {
		return nd.UplinkBps * float64(nd.MeanLifespan)
	}
	sort.SliceStable(sorted, func(i, j int) bool { return score(sorted[i]) > score(sorted[j]) })
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

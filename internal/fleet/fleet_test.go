package fleet

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/stats"
)

func newTestFleet(t *testing.T, cfg Config) (*Fleet, *simnet.Sim, *simnet.Network) {
	t.Helper()
	sim := simnet.NewSim()
	rng := stats.NewRNG(42)
	net := simnet.NewNetwork(sim, rng.Fork())
	f := New(cfg, rng, sim, net)
	return f, sim, net
}

func TestCapacityDistributionMatchesFig1b(t *testing.T) {
	rng := stats.NewRNG(7)
	s := stats.NewSample(50000)
	for i := 0; i < 50000; i++ {
		s.Add(SampleCapacityBps(rng) / 1e6) // Mbps
	}
	below10 := s.FracBelow(10)
	above100 := 1 - s.FracBelow(100)
	// Paper: ~29% below 10 Mbps, ~12% above 100 Mbps. Accept a band.
	if below10 < 0.24 || below10 > 0.40 {
		t.Errorf("frac below 10 Mbps = %.3f, want ~0.29", below10)
	}
	if above100 < 0.08 || above100 > 0.18 {
		t.Errorf("frac above 100 Mbps = %.3f, want ~0.12", above100)
	}
}

func TestLifespanDistributionMatchesFig2c(t *testing.T) {
	f, _, _ := newTestFleet(t, Config{NumBestEffort: 20000})
	s := stats.NewSample(len(f.BestEffort))
	for _, n := range f.BestEffort {
		s.Add(n.MeanLifespan.Hours())
	}
	p50 := s.Percentile(50)
	if p50 < 18 || p50 > 34 {
		t.Errorf("lifespan P50 = %.1f h, want ~25.4", p50)
	}
	// ~50% of nodes have lifespan <= 1 day.
	fracDay := s.FracBelow(24)
	if fracDay < 0.35 || fracDay > 0.60 {
		t.Errorf("frac <= 1 day = %.2f, want ~0.5", fracDay)
	}
}

func TestFleetStructure(t *testing.T) {
	f, _, net := newTestFleet(t, Config{NumDedicated: 4, NumBestEffort: 100})
	if len(f.Dedicated) != 4 || len(f.BestEffort) != 100 {
		t.Fatalf("sizes: %d/%d", len(f.Dedicated), len(f.BestEffort))
	}
	for _, n := range f.Dedicated {
		if n.Class != Dedicated || n.Cost != 1.0 {
			t.Fatalf("dedicated node malformed: %+v", n)
		}
		if !net.Online(n.Addr) {
			t.Fatal("dedicated node not registered online")
		}
	}
	for _, n := range f.BestEffort {
		if n.Class != BestEffort {
			t.Fatal("class wrong")
		}
		if n.Cost < 0.60 || n.Cost > 0.80 {
			t.Fatalf("cost %.2f out of 20-40%% discount band", n.Cost)
		}
		if n.SessionQuota < 1 {
			t.Fatal("session quota must be >= 1")
		}
		if f.Node(n.Addr) != n {
			t.Fatal("byAddr lookup broken")
		}
	}
}

func TestQuotaBottlenecks(t *testing.T) {
	f, _, _ := newTestFleet(t, Config{NumBestEffort: 5000})
	counts := map[Bottleneck]int{}
	for _, n := range f.BestEffort {
		counts[n.Bottleneck]++
	}
	if counts[BottleneckCPU] == 0 || counts[BottleneckMemory] == 0 {
		t.Fatalf("expected some non-bandwidth bottlenecks: %v", counts)
	}
	fracCPU := float64(counts[BottleneckCPU]) / 5000
	if fracCPU < 0.10 || fracCPU > 0.20 {
		t.Errorf("cpu-bottleneck fraction %.2f, want ~0.15", fracCPU)
	}
}

func TestTopPercentByQuality(t *testing.T) {
	f, _, _ := newTestFleet(t, Config{NumBestEffort: 1000})
	top := f.TopPercentByQuality(0.01)
	if len(top) != 10 {
		t.Fatalf("top 1%% of 1000 = %d nodes", len(top))
	}
	// Top nodes should have above-median capacity.
	all := stats.NewSample(1000)
	for _, n := range f.BestEffort {
		all.Add(n.UplinkBps)
	}
	med := all.Percentile(50)
	for _, n := range top {
		if n.UplinkBps < med {
			t.Fatalf("top-tier node below median capacity: %.0f < %.0f", n.UplinkBps, med)
		}
	}
}

func TestChurnTogglesNodes(t *testing.T) {
	cfg := Config{
		NumBestEffort:  50,
		ChurnEnabled:   true,
		LifespanMedian: 10 * time.Minute, // fast churn for the test
		LifespanSigma:  0.5,
	}
	f, sim, net := newTestFleet(t, cfg)
	events := 0
	f.OnChurn = func(n *Node, online bool) { events++ }
	// Note: OnChurn set after New; re-register churn not needed since the
	// callback is read at fire time.
	sim.Run(4 * time.Hour)
	offline := 0
	for _, n := range f.BestEffort {
		if !net.Online(n.Addr) {
			offline++
		}
	}
	if events == 0 {
		t.Fatal("no churn events fired")
	}
	if offline == 0 {
		t.Log("warning: no node offline at snapshot (possible but unlikely)")
	}
}

func TestChurnDisabled(t *testing.T) {
	f, sim, net := newTestFleet(t, Config{NumBestEffort: 20})
	sim.Run(24 * time.Hour)
	for _, n := range f.BestEffort {
		if !net.Online(n.Addr) {
			t.Fatal("node went offline with churn disabled")
		}
	}
}

func TestDiurnalShape(t *testing.T) {
	d := DefaultDiurnal
	s6 := d.Streams(6 * time.Hour)
	s12 := d.Streams(12 * time.Hour)
	s18 := d.Streams(18 * time.Hour)
	s21 := d.Streams(21 * time.Hour)
	if !(s6 < s12 && s12 < s18 && s18 < s21) {
		t.Fatalf("diurnal not increasing toward evening: %0.f %0.f %0.f %0.f", s6, s12, s18, s21)
	}
	// Table 1 anchor checks (±10%).
	if rel := s6 / 0.70e6; rel < 0.9 || rel > 1.1 {
		t.Errorf("6am streams = %.2fM, want ~0.70M", s6/1e6)
	}
	if rel := s21 / 2.47e6; rel < 0.9 || rel > 1.1 {
		t.Errorf("9pm streams = %.2fM, want ~2.47M", s21/1e6)
	}
}

func TestDiurnalNodesNearlyFlat(t *testing.T) {
	d := DefaultDiurnal
	min, max := 1e18, 0.0
	for h := 0; h < 24; h++ {
		n := d.Nodes(time.Duration(h) * time.Hour)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max/min > 1.25 {
		t.Fatalf("node count varies too much: %.2fM..%.2fM", min/1e6, max/1e6)
	}
}

func TestPeakWindows(t *testing.T) {
	if !IsEveningPeak(21 * time.Hour) {
		t.Error("9pm should be evening peak")
	}
	if IsEveningPeak(19 * time.Hour) {
		t.Error("7pm should not be evening peak")
	}
	if !IsNoonPeak(12 * time.Hour) {
		t.Error("noon should be noon peak")
	}
	if IsNoonPeak(15 * time.Hour) {
		t.Error("3pm should not be noon peak")
	}
	// Wraparound beyond 24h.
	if !IsEveningPeak(45 * time.Hour) { // 45h = day 2, 9pm
		t.Error("time-of-day wraparound broken")
	}
}

func TestClassAndBottleneckStrings(t *testing.T) {
	if Dedicated.String() != "dedicated" || BestEffort.String() != "best-effort" {
		t.Fatal("class strings wrong")
	}
	if BottleneckCPU.String() != "cpu" || BottleneckBandwidth.String() != "bandwidth" || BottleneckMemory.String() != "memory" {
		t.Fatal("bottleneck strings wrong")
	}
}

func TestDeterministicSynthesis(t *testing.T) {
	mk := func() []*Node {
		sim := simnet.NewSim()
		rng := stats.NewRNG(5)
		net := simnet.NewNetwork(sim, rng.Fork())
		return New(Config{NumBestEffort: 200}, rng, sim, net).BestEffort
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].UplinkBps != b[i].UplinkBps || a[i].NAT != b[i].NAT || a[i].Region != b[i].Region {
			t.Fatalf("node %d differs across same-seed synthesis", i)
		}
	}
}

package fleet

import (
	"testing"

	"repro/internal/simnet"
	"repro/internal/stats"
)

// TestCompactMatchesFleet is the layout-parity contract: for the same seed,
// NewCompact and New synthesize field-for-field identical populations —
// including the post-synthesis HighQ decile ranking and the derived link
// states.
func TestCompactMatchesFleet(t *testing.T) {
	for _, size := range []int{1, 7, 100, 3000} {
		cfg := Config{NumDedicated: 4, NumBestEffort: size, RefinedNAT: true}

		sim := simnet.NewSim()
		net := simnet.NewNetwork(sim, stats.NewRNG(99))
		f := New(cfg, stats.NewRNG(42), sim, net)
		c := NewCompact(cfg, stats.NewRNG(42))

		if got, want := c.NumNodes(), len(f.Dedicated)+len(f.BestEffort); got != want {
			t.Fatalf("size %d: NumNodes = %d, want %d", size, got, want)
		}
		for i := 0; i < c.NumNodes(); i++ {
			var want *Node
			if i < cfg.NumDedicated {
				want = f.Dedicated[i]
			} else {
				want = f.BestEffort[i-cfg.NumDedicated]
			}
			got := c.View(i)
			if *got != *want {
				t.Fatalf("size %d node %d:\n got %+v\nwant %+v", size, i, got, want)
			}
			wantLS, ok := net.State(want.Addr)
			if !ok {
				t.Fatalf("size %d node %d: no link state registered for %d", size, i, want.Addr)
			}
			if gotLS := c.LinkState(i); gotLS != wantLS {
				t.Fatalf("size %d node %d:\n got link state %+v\nwant %+v", size, i, gotLS, wantLS)
			}
		}
	}
}

// TestCompactTraverserParity: the Traverser fork happens at the same RNG
// position in both constructors, so traversal outcomes agree too.
func TestCompactTraverserParity(t *testing.T) {
	cfg := Config{NumDedicated: 2, NumBestEffort: 50, RefinedNAT: true}
	sim := simnet.NewSim()
	net := simnet.NewNetwork(sim, stats.NewRNG(99))
	f := New(cfg, stats.NewRNG(7), sim, net)
	c := NewCompact(cfg, stats.NewRNG(7))
	for i := 0; i < 200; i++ {
		a := f.BestEffort[i%len(f.BestEffort)]
		if got, want := c.Traverser.Connect(a.NAT), f.Traverser.Connect(a.NAT); got != want {
			t.Fatalf("probe %d: compact traverser %v, fleet traverser %v", i, got, want)
		}
	}
}

// TestCompactAllocs pins the point of the layout: synthesis allocates O(1)
// slices, not O(n) node objects, and a cold View costs exactly one Node.
func TestCompactAllocs(t *testing.T) {
	cfg := Config{NumDedicated: 4, NumBestEffort: 4096}
	build := testing.AllocsPerRun(3, func() {
		NewCompact(cfg, stats.NewRNG(1))
	})
	// 13 attribute slices + ranking scratch + traverser internals, with
	// slack for the runtime; far below one allocation per node.
	if build > 100 {
		t.Errorf("NewCompact(4100 nodes) allocates %.0f times, want O(1) in node count (<= 100)", build)
	}
	c := NewCompact(cfg, stats.NewRNG(1))
	view := testing.AllocsPerRun(100, func() { _ = c.View(17) })
	if view > 1 {
		t.Errorf("View allocates %.1f times, want 1 (the cold Node)", view)
	}
}

package fleet

import (
	"sort"
	"time"

	"repro/internal/nat"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Compact is the struct-of-arrays fleet layout for large populations. The
// pointer fleet spends ~200 B + an allocation per node and scatters the hot
// scheduling fields (class, region, capacity, quota, churn rates) across the
// heap; Compact packs each field into one dense slice indexed by node id, so
// a 100k-node fleet costs a dozen allocations total and a scan over one
// attribute touches only that attribute's cache lines.
//
// Node ids are dense: [0, NumDedicated) are dedicated, the rest best-effort.
// The synthesis draw order is shared with New via sampleBestEffort, so for a
// fixed seed Compact and Fleet describe byte-identical populations (see
// TestCompactMatchesFleet). Node remains available as a cold view for code
// that needs one node's full record; hot paths index the slices directly.
type Compact struct {
	cfg           Config
	NumDedicated  int
	NumBestEffort int

	// Hot per-node attributes, indexed by dense node id.
	Region       []uint16
	ISP          []uint16
	NAT          []nat.Type
	ConnTyp      []uint8
	HighQ        []bool
	Online       []bool
	Bottleneck   []Bottleneck
	UplinkBps    []float64
	SessionQuota []int32
	Cost         []float64
	MeanLifespan []time.Duration
	MeanDowntime []time.Duration

	Traverser *nat.Traverser
}

// NewCompact synthesizes a fleet in SoA layout. The RNG consumption order
// matches New exactly: Traverser fork first, then dedicated nodes (no
// draws), then one sampleBestEffort per best-effort node, then the HighQ
// decile ranking.
func NewCompact(cfg Config, rng *stats.RNG) *Compact {
	cfg.setDefaults()
	n := cfg.NumDedicated + cfg.NumBestEffort
	c := &Compact{
		cfg:           cfg,
		NumDedicated:  cfg.NumDedicated,
		NumBestEffort: cfg.NumBestEffort,
		Region:        make([]uint16, n),
		ISP:           make([]uint16, n),
		NAT:           make([]nat.Type, n),
		ConnTyp:       make([]uint8, n),
		HighQ:         make([]bool, n),
		Online:        make([]bool, n),
		Bottleneck:    make([]Bottleneck, n),
		UplinkBps:     make([]float64, n),
		SessionQuota:  make([]int32, n),
		Cost:          make([]float64, n),
		MeanLifespan:  make([]time.Duration, n),
		MeanDowntime:  make([]time.Duration, n),
		Traverser:     nat.NewTraverser(rng.Fork(), cfg.RefinedNAT),
	}
	for i := 0; i < cfg.NumDedicated; i++ {
		c.Region[i] = uint16(i % cfg.Regions)
		c.ISP[i] = uint16(i % cfg.ISPs)
		c.NAT[i] = nat.Public
		c.HighQ[i] = true
		c.Online[i] = true
		c.UplinkBps[i] = 10e9
		c.SessionQuota[i] = 1 << 20
		c.Cost[i] = 1.0
		c.MeanLifespan[i] = 365 * 24 * time.Hour
	}
	for i := cfg.NumDedicated; i < n; i++ {
		s := sampleBestEffort(&cfg, rng)
		c.Region[i] = uint16(s.Region)
		c.ISP[i] = uint16(s.ISP)
		c.NAT[i] = s.NAT
		c.ConnTyp[i] = uint8(s.ConnTyp)
		c.Online[i] = true
		c.Bottleneck[i] = s.Bottleneck
		c.UplinkBps[i] = s.UplinkBps
		c.SessionQuota[i] = int32(s.SessionQuota)
		c.Cost[i] = s.Cost
		c.MeanLifespan[i] = s.MeanLifespan
		c.MeanDowntime[i] = s.MeanDowntime
	}
	// HighQ decile: same ranked property as Fleet (top 10% of best-effort
	// nodes by capacity x lifespan, stable order).
	if cfg.NumBestEffort > 0 {
		idx := make([]int32, cfg.NumBestEffort)
		for i := range idx {
			idx[i] = int32(cfg.NumDedicated + i)
		}
		score := func(i int32) float64 { return c.UplinkBps[i] * float64(c.MeanLifespan[i]) }
		sort.SliceStable(idx, func(a, b int) bool { return score(idx[a]) > score(idx[b]) })
		top := int(float64(cfg.NumBestEffort) * 0.10) // same arithmetic as TopPercentByQuality
		if top < 1 {
			top = 1
		}
		for _, i := range idx[:top] {
			c.HighQ[i] = true
		}
	}
	return c
}

// NumNodes returns the total node count (dedicated + best-effort).
func (c *Compact) NumNodes() int { return c.NumDedicated + c.NumBestEffort }

// IsDedicated reports whether dense id i is a dedicated node.
func (c *Compact) IsDedicated(i int) bool { return i < c.NumDedicated }

// Class returns the node class of dense id i.
func (c *Compact) Class(i int) NodeClass {
	if i < c.NumDedicated {
		return Dedicated
	}
	return BestEffort
}

// Addr maps a dense id to the simnet address the pointer fleet would have
// assigned, keeping trace output comparable across layouts.
func (c *Compact) Addr(i int) simnet.Addr {
	if i < c.NumDedicated {
		return simnet.Addr(AddrDedicatedBase + i)
	}
	return simnet.Addr(AddrBestEffBase + (i - c.NumDedicated))
}

// Config returns the fleet configuration with defaults applied.
func (c *Compact) Config() Config { return c.cfg }

// LinkState derives the simnet link state for dense id i, matching the
// pointer fleet's dedicated/best-effort link models.
func (c *Compact) LinkState(i int) simnet.LinkState {
	n := c.View(i)
	if i < c.NumDedicated {
		return dedicatedLinkState(n)
	}
	return bestEffortLinkState(n)
}

// View materializes the cold full-record view of dense id i. It allocates
// one Node; hot paths should index the attribute slices instead.
func (c *Compact) View(i int) *Node {
	return &Node{
		Addr:         c.Addr(i),
		Class:        c.Class(i),
		Region:       int(c.Region[i]),
		ISP:          int(c.ISP[i]),
		NAT:          c.NAT[i],
		HighQ:        c.HighQ[i],
		ConnTyp:      int(c.ConnTyp[i]),
		UplinkBps:    c.UplinkBps[i],
		SessionQuota: int(c.SessionQuota[i]),
		Bottleneck:   c.Bottleneck[i],
		Cost:         c.Cost[i],
		MeanLifespan: c.MeanLifespan[i],
		MeanDowntime: c.MeanDowntime[i],
	}
}

package fleet

import (
	"math"
	"time"
)

// Diurnal models the time-of-day pattern of the live streaming service
// (Table 1): concurrent stream count rises from a morning trough (~0.70M at
// 6 am) through a noon peak (~1.60M), an evening peak (~1.75M at 6 pm,
// bursting to ~2.47M max), while the active node count stays nearly flat
// (~0.9M–1.05M), since nodes are infrastructure rather than viewers.
type Diurnal struct {
	// PeakStreams scales the curve; the shape is normalized to the
	// paper's Table 1 ratios.
	PeakStreams float64
	// BaseNodes and PeakNodes bound the slowly varying node count.
	BaseNodes float64
	PeakNodes float64
}

// DefaultDiurnal mirrors Table 1 at full production scale.
var DefaultDiurnal = Diurnal{PeakStreams: 2.47e6, BaseNodes: 0.9e6, PeakNodes: 1.05e6}

// table1Shape gives relative stream load at the four reported hours plus
// interpolation anchors (hour -> fraction of max).
var table1Shape = []struct {
	hour float64
	frac float64
}{
	{0, 1.38 / 2.47 * 0.8}, // after midnight tail-off
	{3, 0.35},
	{6, 0.70 / 2.47},
	{9, 1.10 / 2.47},
	{12, 1.60 / 2.47},
	{15, 1.50 / 2.47},
	{18, 1.75 / 2.47},
	{21, 1.0}, // evening burst max
	{24, 1.38 / 2.47 * 0.8},
}

// StreamLoadFrac returns the fraction of peak concurrent streams at the
// given time of day, interpolating Table 1's anchors.
func (d Diurnal) StreamLoadFrac(tod time.Duration) float64 {
	h := math.Mod(tod.Hours(), 24)
	if h < 0 {
		h += 24
	}
	for i := 1; i < len(table1Shape); i++ {
		a, b := table1Shape[i-1], table1Shape[i]
		if h <= b.hour {
			t := (h - a.hour) / (b.hour - a.hour)
			return a.frac + (b.frac-a.frac)*t
		}
	}
	return table1Shape[len(table1Shape)-1].frac
}

// Streams returns the modeled concurrent stream count at the time of day.
func (d Diurnal) Streams(tod time.Duration) float64 {
	return d.PeakStreams * d.StreamLoadFrac(tod)
}

// Nodes returns the modeled active node count at the time of day: nearly
// flat with a slight evening rise (Table 1).
func (d Diurnal) Nodes(tod time.Duration) float64 {
	f := d.StreamLoadFrac(tod)
	return d.BaseNodes + (d.PeakNodes-d.BaseNodes)*f
}

// IsEveningPeak reports whether the time of day falls in the 8 pm–11 pm
// evening peak window used by the A/B tests (§7.1.1).
func IsEveningPeak(tod time.Duration) bool {
	h := math.Mod(tod.Hours(), 24)
	return h >= 20 && h < 23
}

// IsNoonPeak reports whether the time of day falls in the 11 am–2 pm noon
// peak window (§7.1.1).
func IsNoonPeak(tod time.Duration) bool {
	h := math.Mod(tod.Hours(), 24)
	return h >= 11 && h < 14
}

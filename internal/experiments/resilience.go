package experiments

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
)

// scenarioNeedsCtrl reports whether a scenario faults the distributed
// control plane and therefore needs a system built with it enabled.
func scenarioNeedsCtrl(scen chaos.Scenario) bool {
	for _, e := range scen.Events {
		if e.Kind == chaos.CtrlPartition {
			return true
		}
	}
	return false
}

// chaosSystem builds and warms up one deployment for a chaos drill:
// moderate CDN pressure (so the delivery mode actually matters), churn
// on, clients ramped in and given a pre-fault window to engage RLive and
// cache scheduler candidates. ctrl enables the distributed control plane.
func chaosSystem(sc Scale, mode client.Mode, ctrl bool) *core.System {
	if sc.Clients < 16 {
		sc.Clients = 16
	}
	if sc.BestEffort < 32 {
		sc.BestEffort = 32
	}
	s := core.NewSystem(core.Config{
		Seed:               sc.Seed,
		NumDedicated:       1,
		NumBestEffort:      sc.BestEffort,
		Mode:               mode,
		ABRLadder:          abLadder,
		DedicatedUplinkBps: 2.9e6 * float64(sc.Clients),
		ChurnEnabled:       true,
		LifespanMedian:     5 * time.Minute,
		ControlPlane:       ctrl,
	})
	s.Start()
	for i := 0; i < sc.Clients; i++ {
		s.AddClient(core.ClientSpec{Region: i % 2, ISP: i % 2})
		s.Run(500 * time.Millisecond / time.Duration(max(1, sc.Clients/16)))
	}
	s.Run(5 * time.Second)
	return s
}

// chaosExperiment runs one scenario as a paired A/B — RLive vs CDN-only
// under the same seed and fault timeline — and reports invariant verdicts
// for both modes plus the QoE delta.
func chaosExperiment(scen chaos.Scenario) func(Scale) *Result {
	return func(sc Scale) *Result {
		id := "chaos-" + scen.Name

		// The paired A/B arms share a seed but nothing else — each builds
		// its own system, so they fan across the cell pool.
		ctrl := scenarioNeedsCtrl(scen)
		reports := RunCells(2, func(i int) *chaos.Report {
			mode := client.ModeRLive
			if i == 1 {
				mode = client.ModeCDNOnly
			}
			return chaos.Run(chaosSystem(sc, mode, ctrl), scen, nil)
		})
		repR, repC := reports[0], reports[1]

		inv := &Table{ID: id, Title: fmt.Sprintf("Invariants under %s", scen.Name),
			Header: []string{"invariant", "rlive", "cdn-only", "detail (rlive)"}}
		for i, v := range repR.Verdicts {
			st := func(pass bool) string {
				if pass {
					return "PASS"
				}
				return "FAIL"
			}
			inv.AddRow(v.Name, st(v.Pass), st(repC.Verdicts[i].Pass), v.Detail)
		}

		qoe := &Table{ID: id, Title: "QoE under fault: RLive vs CDN-only",
			Header: []string{"metric", "rlive", "cdn-only", "diff"}}
		qoe.AddRow("rebuffering /100s", f2(repR.RebufPer100), f2(repC.RebufPer100),
			pct(metrics.RelDiff(repR.RebufPer100, repC.RebufPer100)))
		qoe.AddRow("stall ms /100s", f0(repR.StallPer100), f0(repC.StallPer100),
			pct(metrics.RelDiff(repR.StallPer100, repC.StallPer100)))
		qoe.AddRow("bitrate (Mbps)", f2(repR.BitrateBps/1e6), f2(repC.BitrateBps/1e6),
			pct(metrics.RelDiff(repR.BitrateBps, repC.BitrateBps)))
		qoe.AddRow("E2E latency P50 (ms)", f0(repR.E2EP50Ms), f0(repC.E2EP50Ms),
			pct(metrics.RelDiff(repR.E2EP50Ms, repC.E2EP50Ms)))

		rec := &Table{ID: id, Title: "Recovery activity (rlive run)",
			Header: []string{"counter", "value"}}
		rec.AddRow("scheduler msgs dropped", fmt.Sprint(repR.OutageDropped))
		rec.AddRow("retx NACKs", fmt.Sprint(repR.Recovery.RetxNacks))
		rec.AddRow("dedicated fetches", fmt.Sprint(repR.Recovery.DedicatedFetch))
		rec.AddRow("substream switches", fmt.Sprint(repR.Recovery.SubstreamSwitch))
		rec.AddRow("edge switches", fmt.Sprint(repR.Recovery.EdgeSwitches))
		rec.AddRow("full fallbacks", fmt.Sprint(repR.Recovery.FullFallbacks))

		tl := &Table{ID: id, Title: "Injected fault timeline (rlive run)",
			Header: []string{"event"}}
		for _, l := range repR.Timeline {
			tl.AddRow(l)
		}
		return &Result{ID: id, Tables: []*Table{inv, qoe, rec, tl}}
	}
}

// The chaos-* experiment runners, one per catalog scenario.
var (
	ChaosSchedulerOutage  = chaosExperiment(chaos.SchedulerOutageScenario())
	ChaosSchedulerSlow    = chaosExperiment(chaos.SchedulerSlowScenario())
	ChaosRegionBlackout   = chaosExperiment(chaos.RegionBlackoutScenario())
	ChaosRegionPartition  = chaosExperiment(chaos.RegionPartitionScenario())
	ChaosChurnStorm       = chaosExperiment(chaos.ChurnStormScenario())
	ChaosOriginSaturation = chaosExperiment(chaos.OriginSaturationScenario())
	ChaosDegradationWave  = chaosExperiment(chaos.DegradationWaveScenario())
	ChaosNATFlap          = chaosExperiment(chaos.NATFlapScenario())
	ChaosCtrlPartition    = chaosExperiment(chaos.CtrlPartitionScenario())
)

package experiments

import (
	"fmt"
	"time"

	"repro/internal/alerting"
	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// obsScrapeEvery is the chaos-obs scrape cadence: alert rules evaluate
// once per simulated second, matching the chaos runner's tick.
const obsScrapeEvery = time.Second

// obsGrace extends each ground-truth fault window when scoring detection:
// multi-scrape For-streaks and window lookbacks lag fault onset, so an
// incident opening shortly after the fault clears still credits it.
const obsGrace = 10 * time.Second

// obsRegions keeps regions large enough (~BestEffort/4 nodes each) that
// natural churn cannot empty one and trip a per-region capacity floor
// outside a fault window.
const obsRegions = 4

// chaosObsSystem builds and warms one instrumented deployment for the
// observability drill: the chaosSystem shape plus a 1 s telemetry scrape
// timeline and the alert engine attached. The warm-up trains the z-score
// baselines; the caller arms the engine when the scenario run begins.
// ctrl enables the distributed control plane for scenarios that fault it.
func chaosObsSystem(sc Scale, reg *telemetry.Registry, eng *alerting.Engine, ctrl bool) *core.System {
	if sc.Clients < 16 {
		sc.Clients = 16
	}
	if sc.BestEffort < 32 {
		sc.BestEffort = 32
	}
	s := core.NewSystem(core.Config{
		Seed:                 sc.Seed,
		NumDedicated:         1,
		NumBestEffort:        sc.BestEffort,
		Regions:              obsRegions,
		Mode:                 client.ModeRLive,
		ABRLadder:            abLadder,
		DedicatedUplinkBps:   2.9e6 * float64(sc.Clients),
		ChurnEnabled:         true,
		LifespanMedian:       5 * time.Minute,
		Telemetry:            reg,
		TelemetryScrapeEvery: obsScrapeEvery,
		Alerting:             eng,
		ControlPlane:         ctrl,
	})
	s.Start()
	for i := 0; i < sc.Clients; i++ {
		s.AddClient(core.ClientSpec{Region: i % 2, ISP: i % 2})
		s.Run(500 * time.Millisecond / time.Duration(max(1, sc.Clients/16)))
	}
	// A longer settle than the plain chaos drills: the anomaly rules need
	// their MinN baseline scrapes before the engine arms.
	s.Run(10 * time.Second)
	return s
}

// obsWindows converts a scenario's relative fault windows to absolute
// simulation time and labels them (kind, with an ordinal when a kind
// repeats) for the scorecard's missed-fault list.
func obsWindows(scen chaos.Scenario, startNs int64) []alerting.Window {
	wins := scen.FaultWindows()
	kindCount := make(map[chaos.Kind]int, len(wins))
	for _, w := range wins {
		kindCount[w.Kind]++
	}
	kindSeen := make(map[chaos.Kind]int, len(wins))
	out := make([]alerting.Window, len(wins))
	for i, w := range wins {
		label := w.Kind.String()
		if kindCount[w.Kind] > 1 {
			kindSeen[w.Kind]++
			label = fmt.Sprintf("%s#%d", label, kindSeen[w.Kind])
		}
		out[i] = alerting.Window{
			Label:  label,
			Start:  startNs + int64(w.Start),
			End:    startNs + int64(w.End),
			Region: w.Region,
		}
	}
	return out
}

// ChaosObs runs the full chaos catalog with the SLO alert engine armed and
// scores each scenario's incidents against its ground-truth fault windows:
// the detection scorecard (time-to-detect, precision/recall, false-alarm
// rate, missed faults), plus the per-scenario incident logs. The engine
// evaluates only at scrape instants, so the scorecard and incident JSONL
// (-alerts) are byte-identical across serial and -parallel runs.
func ChaosObs(sc Scale) *Result {
	catalog := chaos.Catalog()
	records := RunCells(len(catalog), func(i int) *AlertRecord {
		scen := catalog[i]
		label := "chaos-obs/" + scen.Name
		reg := telemetry.NewRegistry(label, sc.Seed)
		sc.watch(reg)
		eng := alerting.NewEngine(label, sc.Seed, alerting.ChaosRules(obsRegions, max(sc.Clients, 16)))
		sys := chaosObsSystem(sc, reg, eng, scenarioNeedsCtrl(scen))
		startNs := int64(sys.Sim.Now())
		eng.Arm(startNs)
		chaos.Run(sys, scen, nil)
		card := alerting.ScoreDetection(scen.Name, obsWindows(scen, startNs), eng.Incidents(), int64(obsGrace))
		return &AlertRecord{Engine: eng, Scorecard: card}
	})

	score := &Table{ID: "chaos-obs", Title: "Detection scorecard: chaos catalog vs SLO alerting",
		Header: []string{"scenario", "faults", "detected", "ttd (s)", "first rule", "incidents", "false alarms", "warmup FA", "precision", "recall", "missed"}}
	incs := &Table{ID: "chaos-obs", Title: "Incidents (open order per scenario)",
		Header: []string{"scenario", "id", "rule", "kind", "scope", "opened (s)", "resolved (s)", "detail"}}
	for i, rec := range records {
		card := &rec.Scorecard
		firstRule, missed := "-", "-"
		for w := range card.Windows {
			if card.Windows[w].Detected {
				firstRule = card.Windows[w].Rule
				break
			}
		}
		if m := card.MissedList(); len(m) > 0 {
			missed = fmt.Sprint(m)
		}
		score.AddRow(card.Scenario,
			fmt.Sprint(len(card.Windows)), fmt.Sprint(card.Detected()),
			f2(card.MeanTTD()), firstRule,
			fmt.Sprint(card.Incidents), fmt.Sprint(card.FalseAlarms), fmt.Sprint(card.WarmupFalseAlarms),
			f2(card.Precision()), f2(card.Recall()), missed)
		for _, in := range rec.Engine.Incidents() {
			resolved := "open"
			if !in.Open() {
				resolved = f0(float64(in.ResolvedAt) / 1e9)
			}
			incs.AddRow(catalog[i].Name, fmt.Sprint(in.ID), in.Rule, in.Kind, in.Scope,
				f0(float64(in.OpenedAt)/1e9), resolved, in.Detail)
		}
	}
	return &Result{ID: "chaos-obs", Tables: []*Table{score, incs}, Alerts: records}
}

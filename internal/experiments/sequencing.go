package experiments

import (
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// seqRun runs the sequencing comparison environment: lossy enough that
// frame ordering matters, with the super node (centralized mode) suffering
// its own instability.
func seqRun(sc Scale, central bool) *core.System {
	s := core.NewSystem(core.Config{
		Seed:              sc.Seed,
		NumDedicated:      sc.Dedicated,
		NumBestEffort:     sc.BestEffort,
		Mode:              client.ModeRLive,
		CentralSequencing: central,
	})
	for _, n := range s.Fleet.BestEffort {
		s.Net.UpdateState(n.Addr, func(st *simnet.LinkState) {
			st.LossRate += 0.01
		})
	}
	s.Start()
	ramp := sc.Duration / 5 / time.Duration(max(1, sc.Clients))
	for i := 0; i < sc.Clients; i++ {
		s.AddClient(core.ClientSpec{Region: i % 4, ISP: i % 2})
		s.Run(ramp)
	}
	s.Run(sc.Duration)
	return s
}

// retransmissionRate is retransmission requests per delivered frame.
func retransmissionRate(s *core.System) float64 {
	var reqs, frames float64
	for _, c := range s.Clients {
		reqs += float64(c.QoE.RetxRequests)
		frames += float64(c.QoE.FramesPlayed)
	}
	if frames == 0 {
		return 0
	}
	return reqs / frames
}

// Table3Sequencing reproduces Table 3: distributed (packet-embedded chains)
// vs centralized (super-node) frame sequencing. Paper: the distributed
// method cuts the retransmission rate by 25.5% and rebuffering count /
// duration per hundred seconds by 3.49% / 5.96%.
func Table3Sequencing(sc Scale) *Result {
	pair := RunCells(2, func(i int) *core.System {
		return seqRun(sc, i == 0)
	})
	central, distributed := pair[0], pair[1]
	cm, dm := measure(central), measure(distributed)
	cr, dr := retransmissionRate(central), retransmissionRate(distributed)

	tbl := &Table{ID: "tab3", Title: "Centralized vs distributed frame sequencing (reduction by distributed)",
		Header: []string{"metric", "centralized", "distributed", "reduction", "paper"}}
	tbl.AddRow("retransmission rate", f2(cr), f2(dr), pct(-metrics.RelDiff(dr, cr)), "25.50%")
	tbl.AddRow("rebuffers /100s", f2(cm.rebufPer100), f2(dm.rebufPer100),
		pct(-metrics.RelDiff(dm.rebufPer100, cm.rebufPer100)), "3.49%")
	tbl.AddRow("stall ms /100s", f0(cm.stallMs), f0(dm.stallMs),
		pct(-metrics.RelDiff(dm.stallMs, cm.stallMs)), "5.96%")
	return &Result{ID: "tab3", Tables: []*Table{tbl}}
}

// FallbackThreshold reproduces the §7.4 sweep: lowering the client playback
// fallback threshold from 500 ms to 400 ms costs little, but 300 ms
// degrades QoE sharply; production uses 400 ms.
func FallbackThreshold(sc Scale) *Result {
	tbl := &Table{ID: "fallback", Title: "Fallback threshold sweep",
		Header: []string{"threshold (ms)", "rebuf/100s", "stall ms/100s", "E2E P50 (ms)", "fallbacks"}}
	thresholds := []float64{300, 400, 500}
	for _, row := range RunCells(len(thresholds), func(i int) []string {
		th := thresholds[i]
		s := core.NewSystem(core.Config{
			Seed:                sc.Seed,
			NumDedicated:        sc.Dedicated,
			NumBestEffort:       sc.BestEffort,
			Mode:                client.ModeRLive,
			ChurnEnabled:        true,
			LifespanMedian:      3 * time.Minute,
			FallbackThresholdMs: th,
			ClientTune: func(cc *client.Config) {
				// The startup buffer is held fixed so only the
				// fallback threshold varies.
				cc.StartupBufferMs = 700
			},
		})
		// Harsh enough that reordering/recovery pressure actually tests
		// the reorder-absorption guard band.
		for _, n := range s.Fleet.BestEffort {
			s.Net.UpdateState(n.Addr, func(st *simnet.LinkState) {
				st.LossRate += 0.03
				st.DegradedLoss += 0.15
				st.MeanDegradedEvery = 25 * time.Second
				st.MeanDegradedFor = 3 * time.Second
				st.JitterStd += 15 * time.Millisecond
			})
		}
		s.Start()
		for i := 0; i < sc.Clients; i++ {
			s.AddClient(core.ClientSpec{Region: i % 4, ISP: i % 2})
			s.Run(200 * time.Millisecond)
		}
		s.Run(sc.Duration)
		m := measure(s)
		rec := s.Recovery()
		return []string{f0(th), f2(m.rebufPer100), f0(m.stallMs), f0(m.e2eP50), f0(float64(rec.FullFallbacks))}
	}) {
		tbl.AddRow(row...)
	}
	return &Result{ID: "fallback", Tables: []*Table{tbl}}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// FleetScale is the paper-scale single-run sweep: one delivery system at
// 1x / 3x / 10x the configured best-effort fleet size, run on the sharded
// engine (Scale.Shards workers; 1 = the single-threaded reference). Each
// cell reports the QoE envelope — delivery ratio, viewer time-to-display
// quantiles — plus engine volume, with pass/fail verdicts against the
// calibrated invariants. Every number derives from the merged per-region
// state, so rendered output is byte-identical for any shard or cell width.
func FleetScale(sc Scale) *Result {
	shards := sc.Shards
	if shards == 0 {
		shards = Shards()
	}
	base := sc.BestEffort
	if base < 10 {
		base = 10
	}
	sizes := []int{base, 3 * base, 10 * base}

	type cell struct {
		size int
		rep  core.FleetScaleReport
	}
	cells := RunCells(len(sizes), func(i int) cell {
		sys := core.NewFleetScale(core.FleetScaleConfig{
			Seed:          sc.Seed,
			NumBestEffort: sizes[i],
			Workers:       shards,
			ChurnEnabled:  true,
			Profile:       sc.profiled(),
		})
		if p := sys.Profile(); p != nil {
			p.Label = fmt.Sprintf("fleet-scale/%d", sizes[i])
		}
		// The WatchFleet hook gets a mid-run progress probe: the engine's
		// watermark and the profiler's utilization slabs are atomic reads,
		// so the poller observes without adding sim events — the run stays
		// byte-identical.
		if sc.WatchFleet != nil {
			done := make(chan struct{})
			sc.WatchFleet(done, sys)
			defer close(done)
		}
		sys.Run(sc.Duration)
		sc.emitProfile(sys.Profile())
		return cell{size: sizes[i], rep: sys.Report()}
	})

	res := &Result{ID: "fleet-scale"}
	tb := &Table{
		ID: "fleet-scale",
		// No shard count in the title: rendered output is diffed verbatim
		// between -shards 1 and -shards 4 by the CI gate.
		Title: "fleet-scale sweep: QoE envelope vs fleet size",
		Header: []string{"nodes", "relays", "viewers", "sent", "delivered", "ratio",
			"online-ratio", "viewer-frames", "ttd-p50-ms", "ttd-p99-ms", "events", "verdict"},
	}
	for _, c := range cells {
		r := c.rep
		// The verdict judges link quality (churn losses excluded) and the
		// latency envelope.
		verdict := "pass"
		if r.OnlineRatio < 0.85 || r.TTDp50Ms > 150 || r.TTDp99Ms > 3500 || r.ViewerFrames == 0 {
			verdict = "FAIL"
		}
		tb.AddRow(
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Relays),
			fmt.Sprintf("%d", r.Viewers),
			fmt.Sprintf("%d", r.Sent),
			fmt.Sprintf("%d", r.Delivered),
			fmt.Sprintf("%.4f", r.DeliveryRatio),
			fmt.Sprintf("%.4f", r.OnlineRatio),
			fmt.Sprintf("%d", r.ViewerFrames),
			fmt.Sprintf("%.1f", r.TTDp50Ms),
			fmt.Sprintf("%.1f", r.TTDp99Ms),
			fmt.Sprintf("%d", r.Events),
			verdict,
		)
	}
	res.Tables = append(res.Tables, tb)

	// Delivery-rate timeline of the largest run.
	big := cells[len(cells)-1]
	series := &Series{
		ID:     "fleet-scale-timeline",
		Title:  fmt.Sprintf("viewer deliveries per second, %d nodes", big.rep.Nodes),
		XLabel: "sim_s",
		YLabel: "frames/s",
	}
	for sec, n := range big.rep.Timeline {
		series.Add(float64(sec), float64(n))
	}
	res.Series = append(res.Series, series)

	// Telemetry: replay each cell's merged timeline into a registry so the
	// -telemetry JSONL path (and the serial-vs-sharded CI gate) covers the
	// sharded engine. The replay reads only the worker-independent report.
	if sc.Telemetry {
		for _, c := range cells {
			reg := telemetry.NewRegistry(fmt.Sprintf("fleet-scale/%d", c.size), sc.Seed)
			sc.watch(reg)
			delivered := reg.Counter("fleetscale.viewer_frames")
			rate := reg.Gauge("fleetscale.frames_per_s")
			reg.Gauge("fleetscale.delivery_ratio").Set(c.rep.DeliveryRatio)
			reg.Gauge("fleetscale.ttd_p50_ms").Set(c.rep.TTDp50Ms)
			reg.Gauge("fleetscale.ttd_p99_ms").Set(c.rep.TTDp99Ms)
			for sec, n := range c.rep.Timeline {
				delivered.Add(n)
				rate.Set(float64(n))
				reg.Scrape(int64(time.Duration(sec+1) * time.Second))
			}
			res.Timelines = append(res.Timelines, reg)
		}
	}
	return res
}

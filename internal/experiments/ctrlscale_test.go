package experiments

import (
	"bytes"
	"strconv"
	"testing"
)

// encodeCtrlLogs renders a result's control-plane event logs exactly as the
// CLI -ctrl flag does: concatenated JSONL in cell order.
func encodeCtrlLogs(t *testing.T, res *Result) []byte {
	t.Helper()
	var w bytes.Buffer
	for _, l := range res.Ctrl {
		if err := l.WriteJSONL(&w); err != nil {
			t.Fatal(err)
		}
	}
	return w.Bytes()
}

// TestCtrlScaleFlatnessAutonomyAndDeterminism is the acceptance gate for the
// distributed control plane at the default seed:
//
//   - Part A flatness: the ctrl arm's message rate grows far slower than the
//     direct single-scheduler baseline's across a 100x viewer sweep.
//   - Part B autonomy: the ctrl+lkg arm passes every resilience invariant
//     under total scheduler death, while the direct arm fails at least one.
//   - Determinism: tables, alert JSONL, and control-plane event-log JSONL are
//     byte-identical between a serial and a -parallel 4 run.
func TestCtrlScaleFlatnessAutonomyAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("ctrl-scale drill skipped in -short mode")
	}
	if raceEnabled {
		// Two full ctrl-scale runs are the package's heaviest test; under
		// the race detector they blow the per-package timeout. The same
		// serial-vs-parallel byte identity is enforced without -race by the
		// `make ctrlplane` CI gate.
		t.Skip("ctrl-scale drill skipped under -race")
	}
	serialAfter(t)
	r1 := CtrlScale(Quick)
	SetParallelism(4)
	r2 := CtrlScale(Quick)

	if r1.String() != r2.String() {
		t.Fatal("parallel run rendered differently from serial")
	}
	a1, a2 := encodeAlerts(t, r1), encodeAlerts(t, r2)
	if len(a1) == 0 {
		t.Fatal("no alert output")
	}
	if !bytes.Equal(a1, a2) {
		t.Fatal("parallel run's alert JSONL differs from serial")
	}
	c1, c2 := encodeCtrlLogs(t, r1), encodeCtrlLogs(t, r2)
	if len(c1) == 0 {
		t.Fatal("no control-plane event-log output")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("parallel run's ctrl event JSONL differs from serial")
	}
	if len(r1.Ctrl) != 2 {
		t.Fatalf("got %d ctrl event logs, want 2 (fault arm + no-fault baseline)", len(r1.Ctrl))
	}
	for _, l := range r1.Ctrl {
		if len(l.Events) == 0 {
			t.Fatalf("ctrl log %q recorded no events", l.Label)
		}
	}

	// Part A: the flatness series carries the ctrl arm's msgs/s per viewer
	// tier; the direct baseline's growth lives in the table. Compare growth
	// factors over the full sweep.
	ser := r1.Series[0]
	if len(ser.Y) != len(ctrlScaleMults) {
		t.Fatalf("flatness series has %d points, want %d", len(ser.Y), len(ctrlScaleMults))
	}
	ctrlGrowth := ser.Y[len(ser.Y)-1] / ser.Y[0]
	if ctrlGrowth > 3 {
		t.Errorf("ctrl message rate grew %.1fx over a %dx viewer sweep, want <= 3x",
			ctrlGrowth, ctrlScaleMults[len(ctrlScaleMults)-1])
	}
	flat := r1.Tables[0]
	dirFirst, err1 := strconv.ParseFloat(flat.Rows[0][3], 64)
	dirLast, err2 := strconv.ParseFloat(flat.Rows[len(ctrlScaleMults)-1][3], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("cannot parse direct-arm rates from flatness table: %v %v", err1, err2)
	}
	if dirGrowth := dirLast / dirFirst; dirGrowth <= ctrlGrowth {
		t.Errorf("direct baseline grew %.1fx vs ctrl %.1fx; expected the sharded plane to be flatter",
			dirGrowth, ctrlGrowth)
	}

	// Part B: every invariant PASSes on the ctrl+lkg arm; the direct arm
	// fails at least one (that degradation is the point of LKG autonomy).
	inv := r1.Tables[1]
	dirFailed := false
	for _, row := range inv.Rows {
		if row[1] != "PASS" {
			t.Errorf("ctrl+lkg arm failed invariant %q: %s", row[0], row[3])
		}
		if row[2] == "FAIL" {
			dirFailed = true
		}
	}
	if !dirFailed {
		t.Error("direct arm failed no invariants; the outage scenario is not stressing autonomy")
	}

	// Detection: both fault arms' scorecards see every fault window.
	for _, rec := range r1.Alerts {
		card := &rec.Scorecard
		if got := card.Recall(); got != 1 {
			t.Errorf("%s: recall %.2f, want 1.00 (missed %v)", card.Scenario, got, card.MissedList())
		}
		if card.WarmupFalseAlarms != 0 {
			t.Errorf("%s: %d incidents opened before the first fault", card.Scenario, card.WarmupFalseAlarms)
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Fig1bCapacity reproduces Figure 1(b): the bandwidth-capacity distribution
// of best-effort nodes. Paper: ~29% below 10 Mbps, only ~12% above 100 Mbps.
func Fig1bCapacity(sc Scale) *Result {
	rng := stats.NewRNG(sc.Seed)
	n := sc.BestEffort * 500
	if n < 10000 {
		n = 10000
	}
	s := stats.NewSample(n)
	for i := 0; i < n; i++ {
		s.Add(fleet.SampleCapacityBps(rng) / 1e6)
	}
	tbl := &Table{ID: "fig1b", Title: "Best-effort node capacity distribution",
		Header: []string{"bucket", "fraction", "paper"}}
	below10 := s.FracBelow(10)
	mid := s.FracBelow(100) - below10
	above100 := 1 - s.FracBelow(100)
	tbl.AddRow("< 10 Mbps", f2(below10), "~0.29")
	tbl.AddRow("10-100 Mbps", f2(mid), "~0.59")
	tbl.AddRow("> 100 Mbps", f2(above100), "~0.12")

	cdf := &Series{ID: "fig1b", Title: "Capacity CDF", XLabel: "Mbps", YLabel: "CDF"}
	for _, p := range s.CDF(40) {
		cdf.Add(p.X, p.F)
	}
	return &Result{ID: "fig1b", Tables: []*Table{tbl}, Series: []*Series{cdf}}
}

// motivationSystem builds the environment for the §2.2 strawman study:
// uncongested CDN, full churny fleet, viewers joining over the first
// quarter of the run.
func motivationSystem(sc Scale, mode client.Mode, topPercent float64) *core.System {
	s := core.NewSystem(core.Config{
		Seed:           sc.Seed,
		NumDedicated:   sc.Dedicated,
		NumBestEffort:  sc.BestEffort,
		Mode:           mode,
		TopPercent:     topPercent,
		ChurnEnabled:   true,
		LifespanMedian: 4 * time.Minute, // compressed churn for short runs
	})
	s.Start()
	ramp := sc.Duration / 4 / time.Duration(max(1, sc.Clients))
	for i := 0; i < sc.Clients; i++ {
		s.AddClient(core.ClientSpec{Region: i % 4, ISP: i % 2})
		s.Run(ramp)
	}
	s.Run(sc.Duration)
	return s
}

// strawmanTopPercent returns the "top 1%" pool fraction adapted to small
// synthetic fleets (at least 3 nodes).
func strawmanTopPercent(n int) float64 {
	f := 0.01
	if float64(n)*f < 3 {
		f = 3 / float64(n)
	}
	return f
}

// Fig2aStrawmanQoE reproduces Figure 2(a): single-source transmission
// through top-tier best-effort nodes vs dedicated-CDN-only delivery.
// Paper: +26–35% E2E latency, +37.5–44.7% rebuffering events.
func Fig2aStrawmanQoE(sc Scale) *Result {
	// Rebuffering events are rare; this experiment needs enough
	// client-time for stable statistics regardless of scale.
	if sc.Clients < 12 {
		sc.Clients = 12
	}
	if sc.Duration < 2*time.Minute {
		sc.Duration = 2 * time.Minute
	}
	pair := RunCells(2, func(i int) *core.System {
		if i == 0 {
			return motivationSystem(sc, client.ModeCDNOnly, 0)
		}
		return motivationSystem(sc, client.ModeSingleSource, strawmanTopPercent(sc.BestEffort))
	})
	ctrl, test := pair[0], pair[1]
	ca, ta := ctrl.Aggregate(), test.Aggregate()

	tbl := &Table{ID: "fig2a", Title: "Strawman single-source vs CDN-only (diff vs control)",
		Header: []string{"metric", "cdn-only", "single-source", "diff", "paper"}}
	// Mean E2E latency captures the stall-induced lag drift that the
	// buffer-dominated median hides.
	latC, latT := ca.E2EMs.Mean(), ta.E2EMs.Mean()
	rbC, rbT := ca.Rebuffer.Mean(), ta.Rebuffer.Mean()
	tbl.AddRow("E2E latency mean (ms)", f0(latC), f0(latT), pct(metrics.RelDiff(latT, latC)), "+26..35%")
	tbl.AddRow("rebuffers /100s", f2(rbC), f2(rbT), pct(metrics.RelDiff(rbT, rbC)), "+37.5..44.7%")
	return &Result{ID: "fig2a", Tables: []*Table{tbl}}
}

// Fig2bExpansionRate reproduces Figure 2(b): the traffic expansion rate γ
// of best-effort nodes under single-source transmission. Paper: median
// γ ≈ 3.7 and 58.5% of nodes below γ = 5.
func Fig2bExpansionRate(sc Scale) *Result {
	s := motivationSystem(sc, client.ModeSingleSource, strawmanTopPercent(sc.BestEffort))
	rates := s.ExpansionRates()

	tbl := &Table{ID: "fig2b", Title: "Traffic expansion rate (single-source)",
		Header: []string{"stat", "value", "paper"}}
	tbl.AddRow("median gamma", f2(rates.Percentile(50)), "~3.7")
	tbl.AddRow("frac gamma<5", f2(rates.FracBelow(5)), "~0.585")
	cdf := &Series{ID: "fig2b", Title: "Expansion rate CDF", XLabel: "gamma", YLabel: "CDF"}
	for _, p := range rates.CDF(20) {
		cdf.Add(p.X, p.F)
	}
	return &Result{ID: "fig2b", Tables: []*Table{tbl}, Series: []*Series{cdf}}
}

// Fig2cLifespan reproduces Figure 2(c): the live-span distribution of
// best-effort nodes. Paper: P50 ≈ 25.4 h, ~50% of nodes live ≤ 1 day.
func Fig2cLifespan(sc Scale) *Result {
	rng := stats.NewRNG(sc.Seed)
	sim := simnet.NewSim()
	net := simnet.NewNetwork(sim, rng.Fork())
	n := sc.BestEffort * 200
	if n < 5000 {
		n = 5000
	}
	f := fleet.New(fleet.Config{NumBestEffort: n}, rng, sim, net)
	s := stats.NewSample(n)
	for _, nd := range f.BestEffort {
		s.Add(nd.MeanLifespan.Hours())
	}
	tbl := &Table{ID: "fig2c", Title: "Best-effort node live span",
		Header: []string{"stat", "value", "paper"}}
	tbl.AddRow("P50 (hours)", f2(s.Percentile(50)), "~25.4")
	tbl.AddRow("frac <= 1 day", f2(s.FracBelow(24)), "~0.50")
	cdf := &Series{ID: "fig2c", Title: "Live span CDF", XLabel: "hours", YLabel: "CDF"}
	for _, p := range s.CDF(30) {
		cdf.Add(p.X, p.F)
	}
	return &Result{ID: "fig2c", Tables: []*Table{tbl}, Series: []*Series{cdf}}
}

// Fig2dDelayJitter reproduces Figure 2(d): one-way delay over a viewing
// session through one best-effort node, showing jitter spikes during
// degradation episodes.
func Fig2dDelayJitter(sc Scale) *Result {
	rng := stats.NewRNG(sc.Seed)
	sim := simnet.NewSim()
	net := simnet.NewNetwork(sim, rng.Fork())
	// One weak best-effort node and one client endpoint.
	net.Register(1, simnet.LinkState{
		UplinkBps: 8e6, BaseOWD: 3 * time.Millisecond,
		MeanDegradedEvery: 25 * time.Second, MeanDegradedFor: 4 * time.Second,
		DegradedExtraOWD: 250 * time.Millisecond, JitterStd: 8 * time.Millisecond,
	}, nil)
	net.Register(2, simnet.LinkState{UplinkBps: 100e6, BaseOWD: 2 * time.Millisecond}, nil)

	series := &Series{ID: "fig2d", Title: "One-way delay through one best-effort node",
		XLabel: "time (s)", YLabel: "OWD (ms)"}
	peak := 0.0
	for t := time.Duration(0); t < 100*time.Second; t += 250 * time.Millisecond {
		sim.Run(t)
		rtt, ok := net.SampleRTT(1, 2)
		if !ok {
			continue
		}
		owd := float64(rtt) / 2 / 1e6
		if owd > peak {
			peak = owd
		}
		series.Add(t.Seconds(), owd)
	}
	tbl := &Table{ID: "fig2d", Title: "Delay jitter summary",
		Header: []string{"stat", "value", "paper shape"}}
	tbl.AddRow("peak OWD (ms)", f0(peak), "spikes > 100ms during episodes")
	return &Result{ID: "fig2d", Tables: []*Table{tbl}, Series: []*Series{series}}
}

// Fig3Retransmission reproduces Figure 3: per-request retransmission
// success rate and completion time toward dedicated vs best-effort nodes.
// Paper: dedicated 94.09% success / 71.1 ms median; best-effort 91.44% /
// 778 ms.
func Fig3Retransmission(sc Scale) *Result {
	// Lossy enough that both recovery paths see real traffic.
	s := core.NewSystem(core.Config{
		Seed:          sc.Seed,
		NumDedicated:  sc.Dedicated,
		NumBestEffort: sc.BestEffort,
		Mode:          client.ModeRLive,
		EdgeTune:      nil,
	})
	// Degrade best-effort links heavily: the paper's retransmission gap
	// (dedicated ~71 ms / 94% vs best-effort ~778 ms / 91%) reflects
	// retransmissions concentrated in bad windows on weak hole-punched
	// paths, where each retry round is slow and lossy.
	for _, n := range s.Fleet.BestEffort {
		s.Net.UpdateState(n.Addr, func(st *simnet.LinkState) {
			st.LossRate += 0.05
			st.DegradedLoss += 0.35
			st.MeanDegradedEvery = 15 * time.Second
			st.MeanDegradedFor = 4 * time.Second
			st.DegradedExtraOWD += 300 * time.Millisecond
			st.JitterStd += 25 * time.Millisecond
		})
	}
	s.Start()
	for i := 0; i < sc.Clients; i++ {
		s.AddClient(core.ClientSpec{Region: i % 4, ISP: i % 2})
		s.Run(300 * time.Millisecond)
	}
	s.Run(sc.Duration)

	beLat := stats.NewSample(1024)
	dedLat := stats.NewSample(1024)
	var beSuccSum, dedSuccSum float64
	var beN, dedN int
	for _, c := range s.Clients {
		for _, v := range c.BERetxLat.Values() {
			beLat.Add(v)
		}
		for _, v := range c.DedRetxLat.Values() {
			dedLat.Add(v)
		}
		be, ded := c.RetxSuccessRates()
		if be > 0 {
			beSuccSum += be
			beN++
		}
		if ded > 0 {
			dedSuccSum += ded
			dedN++
		}
	}
	tbl := &Table{ID: "fig3", Title: "Retransmission requests by source",
		Header: []string{"source", "success", "median (ms)", "P90 (ms)", "paper"}}
	beSucc, dedSucc := 0.0, 0.0
	if beN > 0 {
		beSucc = beSuccSum / float64(beN)
	}
	if dedN > 0 {
		dedSucc = dedSuccSum / float64(dedN)
	}
	tbl.AddRow("dedicated", f2(dedSucc), f0(dedLat.Percentile(50)), f0(dedLat.Percentile(90)), "94.09% / 71.1ms")
	tbl.AddRow("best-effort", f2(beSucc), f0(beLat.Percentile(50)), f0(beLat.Percentile(90)), "91.44% / 778ms")
	return &Result{ID: "fig3", Tables: []*Table{tbl}}
}

// Table1Diurnal reproduces Table 1: concurrent stream and node counts
// through the day.
func Table1Diurnal(Scale) *Result {
	d := fleet.DefaultDiurnal
	tbl := &Table{ID: "tab1", Title: "Live streaming service overview (modeled, production scale)",
		Header: []string{"time", "#streams (M)", "#nodes (M)", "paper #streams"}}
	rows := []struct {
		label string
		tod   time.Duration
		paper string
	}{
		{"6 am", 6 * time.Hour, "~0.70M"},
		{"12 pm", 12 * time.Hour, "~1.60M"},
		{"6 pm", 18 * time.Hour, "~1.75M"},
		{"12 am", 0, "~1.38M"},
		{"max", 21 * time.Hour, "~2.47M"},
	}
	for _, r := range rows {
		tbl.AddRow(r.label,
			fmt.Sprintf("%.2f", d.Streams(r.tod)/1e6),
			fmt.Sprintf("%.2f", d.Nodes(r.tod)/1e6),
			r.paper)
	}
	return &Result{ID: "tab1", Tables: []*Table{tbl}}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package experiments

import (
	"strings"
	"testing"
	"time"
)

// tiny is a very small scale for smoke-testing the runners.
var tiny = Scale{BestEffort: 16, Dedicated: 1, Clients: 4, Duration: 10 * time.Second, Seed: 1}

func TestRegistryMatchesIDs(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := Registry[id]; !ok {
			t.Errorf("IDs() lists %q but Registry lacks it", id)
		}
	}
	if len(Registry) != len(IDs()) {
		t.Errorf("Registry has %d entries, IDs lists %d", len(Registry), len(IDs()))
	}
}

// Cheap experiments run at tiny scale; every runner must produce at least
// one table with rows and render without panicking.
func TestCheapExperimentsSmoke(t *testing.T) {
	for _, id := range []string{"fig1b", "fig2c", "fig2d", "tab1", "fig8", "abl-hash"} {
		id := id
		t.Run(id, func(t *testing.T) {
			res := Registry[id](tiny)
			if len(res.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range res.Tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("table %q has no rows", tbl.Title)
				}
			}
			if !strings.Contains(res.String(), "== ") {
				t.Fatal("rendering produced no section headers")
			}
		})
	}
}

// One full-system experiment exercises the paired-run machinery end to end.
func TestPairedExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paired system runs skipped in -short mode")
	}
	res := Fig2aStrawmanQoE(tiny) // internally floors clients/duration
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 2 {
		t.Fatalf("unexpected fig2a result shape: %+v", res.Tables)
	}
}

// The headline chaos drill: a 60 s scheduler outage mid-run must leave the
// RLive data plane playing on cached candidates.
func TestChaosSchedulerOutageDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill skipped in -short mode")
	}
	res := Registry["chaos-scheduler-outage"](tiny)
	if len(res.Tables) < 2 {
		t.Fatalf("unexpected result shape: %d tables", len(res.Tables))
	}
	inv := res.Tables[0]
	found := false
	for _, row := range inv.Rows {
		if row[0] == "data-plane-continuity" {
			found = true
			if row[1] != "PASS" {
				t.Fatalf("data-plane-continuity did not pass for rlive: %v", row)
			}
		}
	}
	if !found {
		t.Fatal("no data-plane-continuity row in invariant table")
	}
}

func TestFig1bMatchesPaperBands(t *testing.T) {
	res := Fig1bCapacity(tiny)
	rows := res.Tables[0].Rows
	// Row 0: fraction below 10 Mbps — the paper's ~29%, accept 0.2–0.45.
	frac := rows[0][1]
	if !(strings.HasPrefix(frac, "0.2") || strings.HasPrefix(frac, "0.3") || strings.HasPrefix(frac, "0.4")) {
		t.Fatalf("frac below 10 Mbps = %s, outside the plausible band", frac)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	out := tbl.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") {
		t.Fatalf("rendering lost content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestSeriesRenderingDownsamples(t *testing.T) {
	s := &Series{ID: "x", Title: "demo", XLabel: "x", YLabel: "y"}
	for i := 0; i < 1000; i++ {
		s.Add(float64(i), float64(i*i))
	}
	lines := strings.Split(strings.TrimSpace(s.String()), "\n")
	if len(lines) > 30 {
		t.Fatalf("series rendering not downsampled: %d lines", len(lines))
	}
}

func TestDiurnalTableAnchors(t *testing.T) {
	res := Table1Diurnal(tiny)
	rows := res.Tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][1] != "0.70" {
		t.Fatalf("6am streams = %s, want 0.70", rows[0][1])
	}
	if rows[4][1] != "2.47" {
		t.Fatalf("max streams = %s, want 2.47", rows[4][1])
	}
}

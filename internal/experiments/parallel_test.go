package experiments

import (
	"sync/atomic"
	"testing"
	"time"
)

// serialAfter restores serial execution when the test finishes so later
// tests in the package are unaffected.
func serialAfter(t *testing.T) {
	t.Cleanup(func() { SetParallelism(1) })
}

func TestRunCellsOrderAndCoverage(t *testing.T) {
	serialAfter(t)
	SetParallelism(4)
	const n = 37
	var calls atomic.Int64
	out := RunCells(n, func(i int) int {
		calls.Add(1)
		return i * i
	})
	if calls.Load() != n {
		t.Fatalf("ran %d cells, want %d", calls.Load(), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d: results not in cell order", i, v)
		}
	}
}

func TestRunCellsNestedDoesNotDeadlock(t *testing.T) {
	serialAfter(t)
	SetParallelism(2) // tiny pool: inner calls must fall back inline
	done := make(chan struct{})
	go func() {
		defer close(done)
		outer := RunCells(8, func(i int) int {
			inner := RunCells(8, func(j int) int { return i*100 + j })
			sum := 0
			for _, v := range inner {
				sum += v
			}
			return sum
		})
		for i, v := range outer {
			want := 0
			for j := 0; j < 8; j++ {
				want += i*100 + j
			}
			if v != want {
				t.Errorf("outer[%d] = %d, want %d", i, v, want)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested RunCells deadlocked")
	}
}

func TestParallelism(t *testing.T) {
	serialAfter(t)
	if Parallelism() != 1 {
		t.Fatalf("default parallelism = %d, want 1", Parallelism())
	}
	SetParallelism(6)
	if Parallelism() != 6 {
		t.Fatalf("parallelism = %d, want 6", Parallelism())
	}
	SetParallelism(1)
	if Parallelism() != 1 {
		t.Fatalf("parallelism after reset = %d, want 1", Parallelism())
	}
}

// TestParallelMatchesSerial is the byte-identity guarantee: a
// representative grid experiment and a paired chaos drill must render
// exactly the same bytes whether their cells run serially or on the worker
// pool.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system cells skipped in -short mode")
	}
	serialAfter(t)
	for _, id := range []string{"abl-redundant", "chaos-nat-flap"} {
		id := id
		t.Run(id, func(t *testing.T) {
			SetParallelism(1)
			serial := Registry[id](tiny).String()
			SetParallelism(4)
			parallel := Registry[id](tiny).String()
			if serial != parallel {
				t.Fatalf("parallel output diverged from serial for %s:\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, serial, parallel)
			}
		})
	}
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (§2, §7) on the simulated deployment: workload generation,
// parameter sweeps, baselines, and printers that emit the same rows/series
// the paper reports. Absolute numbers differ — the substrate is a
// simulator, not ByteDance's production CDN — but each experiment is built
// to reproduce the paper's shape: who wins, by roughly what factor, and
// where crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/alerting"
	"repro/internal/ctrlplane"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// FleetProbe is the read-only mid-run view of a sharded fleet-scale run
// that WatchFleet receives: the conservative watermark plus the engine
// self-profiler's live per-worker utilization counters. Every method is
// backed by single-owner atomics, so polling from a wall-clock goroutine
// cannot perturb the run (the byte-determinism gates cover this).
type FleetProbe interface {
	// Watermark is the engine's conservative sim-time lower bound in ns.
	Watermark() int64
	// ShardWorkers is the engine's worker count after clamping.
	ShardWorkers() int
	// WorkerUtil returns worker w's live busy-ns / park-ns / events
	// (zeros unless the run is profiled).
	WorkerUtil(w int) (busyNs, parkNs int64, events uint64)
	// MailboxHighWater is the deepest cross-worker mailbox high-water
	// mark (0 unless the run is profiled).
	MailboxHighWater() int64
	// Profile is the run's engine self-profiler (nil unless profiled).
	Profile() *profile.Prof
}

// Scale sizes an experiment run. Quick keeps tests and benches fast; Full
// is the CLI default.
type Scale struct {
	// BestEffort is the synthetic best-effort fleet size.
	BestEffort int
	// Dedicated is the dedicated CDN node count.
	Dedicated int
	// Clients is the concurrent viewer count.
	Clients int
	// Duration is the measured period per run.
	Duration time.Duration
	// Seed is the base RNG seed; paired runs share it (common random
	// numbers) so A/B differences are not noise.
	Seed uint64
	// Trace enables per-arm frame-lifecycle tracing in experiments that
	// support it (ab-baseline, ab-peak); the recorded runs come back in
	// Result.Traces, one per cell in cell order.
	Trace bool
	// Telemetry enables per-arm instrument timelines in experiments that
	// support it (ab-baseline; ab-peak always records them); the scraped
	// registries come back in Result.Timelines in cell order.
	Telemetry bool
	// Shards is the shard worker count for experiments running on the
	// sharded engine (fleet-scale). 0 falls back to the process-wide
	// SetShards value; output is byte-identical for any setting.
	Shards int
	// Watch, when set, is called with every telemetry registry an
	// experiment creates, before the run that fills it — the live
	// observability bridge subscribes to scrapes here (rlive-sim -obs). It
	// is a read-only side channel: implementations must only observe
	// (OnScrape subscribers, accessor reads) and never add instruments or
	// scrapes, so results stay byte-identical with or without a watcher.
	// Excluded from the -json document.
	Watch func(*telemetry.Registry) `json:"-"`
	// WatchFleet, when set, brackets each fleet-scale cell's sharded run:
	// it is called just before the run starts with a done channel (closed
	// when the run finishes) and the run's FleetProbe — safe to poll from
	// any goroutine mid-run, so a wall-clock poller can report live
	// sim-time progress and per-shard utilization on 100k-node runs.
	// Setting it also enables engine self-profiling for the run (the
	// utilization counters come from the profiler's slabs). Same read-only
	// contract as Watch. Excluded from the -json document.
	WatchFleet func(done <-chan struct{}, probe FleetProbe) `json:"-"`
	// Profile, when set, enables engine self-profiling on experiments that
	// support it (ab-baseline on the serial engine, fleet-scale on the
	// sharded engine) and is called once per profiled run with the run's
	// profiler after that run completes. Calls may come from any cell
	// goroutine, so implementations must be concurrency-safe. Profiling is
	// observe-only — wall-clock cost accounting never feeds back into the
	// simulation, so all deterministic artifacts are byte-identical with
	// or without it. Excluded from the -json document.
	Profile func(*profile.Prof) `json:"-"`
}

// profiled reports whether engine self-profiling should be attached.
func (sc *Scale) profiled() bool { return sc.Profile != nil || sc.WatchFleet != nil }

// emitProfile hands a completed run's profiler to the Profile sink.
func (sc *Scale) emitProfile(p *profile.Prof) {
	if sc.Profile != nil && p != nil {
		sc.Profile(p)
	}
}

// watch notifies the Watch hook, if any, about a freshly created registry.
func (sc *Scale) watch(reg *telemetry.Registry) {
	if sc.Watch != nil && reg != nil {
		sc.Watch(reg)
	}
}

// Quick is the test/bench scale.
var Quick = Scale{BestEffort: 32, Dedicated: 1, Clients: 8, Duration: 40 * time.Second, Seed: 1}

// Full is the CLI default scale.
var Full = Scale{BestEffort: 200, Dedicated: 2, Clients: 40, Duration: 3 * time.Minute, Seed: 1}

// Table is a rendered experiment result matching one paper table or the
// scalar annotations of a figure.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Series is a figure data series (CDF, time series, sweep).
type Series struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X, Y   []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// String renders the series as two columns, downsampled to at most 24
// rows for terminal output.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n%-14s %-14s\n", s.ID, s.Title, s.XLabel, s.YLabel)
	n := len(s.X)
	step := 1
	if n > 24 {
		step = n / 24
	}
	for i := 0; i < n; i += step {
		fmt.Fprintf(&b, "%-14.4g %-14.4g\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// Result bundles an experiment's outputs.
type Result struct {
	ID     string
	Tables []*Table
	Series []*Series
	// Traces holds per-arm frame-lifecycle traces (finished, in cell
	// order) when the experiment ran with Scale.Trace set.
	Traces []*trace.Run
	// Timelines holds per-arm telemetry timelines (scraped registries, in
	// cell order) when the experiment recorded telemetry.
	Timelines []*telemetry.Registry
	// Alerts holds per-arm incident logs and detection scorecards (in cell
	// order) when the experiment ran with alerting armed (chaos-obs).
	Alerts []*AlertRecord
	// Ctrl holds control-plane snapshot/gossip event logs (in cell order)
	// when the experiment ran distributed-control-plane arms (ctrl-scale);
	// the CLI's -ctrl flag writes them out as JSONL.
	Ctrl []*ctrlplane.EventLog
}

// AlertRecord pairs one run's alert engine (its incident log) with the
// detection scorecard judging it against the run's ground-truth faults.
type AlertRecord struct {
	Engine    *alerting.Engine
	Scorecard alerting.Scorecard
}

// WriteJSONL emits the record: the incident log, then the scorecard.
// Deterministic byte-for-byte per seed under any -parallel width.
func (a *AlertRecord) WriteJSONL(w io.Writer) error {
	if err := a.Engine.WriteJSONL(w); err != nil {
		return err
	}
	return a.Scorecard.WriteJSONL(w)
}

// String renders all outputs.
func (r *Result) String() string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	for _, s := range r.Series {
		b.WriteString(s.String())
		b.WriteString("\n")
	}
	return b.String()
}

// pct formats a relative difference as a signed percentage.
func pct(x float64) string { return fmt.Sprintf("%+.1f%%", x*100) }

// f2 formats with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f0 formats with no decimals.
func f0(x float64) string { return fmt.Sprintf("%.0f", x) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Registry maps experiment IDs to runners so the CLI and benches share one
// catalogue.
var Registry = map[string]func(Scale) *Result{
	"ab-baseline": ABBaseline,
	"ab-peak":     ABPeak,

	"fig1b":    Fig1bCapacity,
	"fig2a":    Fig2aStrawmanQoE,
	"fig2b":    Fig2bExpansionRate,
	"fig2c":    Fig2cLifespan,
	"fig2d":    Fig2dDelayJitter,
	"fig3":     Fig3Retransmission,
	"tab1":     Table1Diurnal,
	"fig8":     Fig8ABFairness,
	"fig9":     Fig9ABTests,
	"tab2":     Table2EqT,
	"fig10":    Fig10Energy,
	"fig11":    Fig11MultiVsSingle,
	"fig12":    Fig12ControlPlane,
	"tab3":     Table3Sequencing,
	"fig13":    Fig13RTM,
	"tab4":     Table4FlashCrowd,
	"fallback": FallbackThreshold,

	"abl-chain":     AblationChainLength,
	"abl-k":         AblationSubstreamCount,
	"abl-probe":     AblationProbeCount,
	"abl-explore":   AblationExploreExploit,
	"abl-hash":      AblationPartitionHash,
	"abl-redundant": AblationRedundancy,
	"abl-nat":       AblationNATRefinement,

	"ctrl-scale":              CtrlScale,
	"fleet-scale":             FleetScale,
	"chaos-obs":               ChaosObs,
	"chaos-scheduler-outage":  ChaosSchedulerOutage,
	"chaos-scheduler-slow":    ChaosSchedulerSlow,
	"chaos-region-blackout":   ChaosRegionBlackout,
	"chaos-region-partition":  ChaosRegionPartition,
	"chaos-churn-storm":       ChaosChurnStorm,
	"chaos-origin-saturation": ChaosOriginSaturation,
	"chaos-degradation-wave":  ChaosDegradationWave,
	"chaos-nat-flap":          ChaosNATFlap,
	"chaos-ctrl-partition":    ChaosCtrlPartition,
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	return []string{
		"ab-baseline",
		"ab-peak",
		"fig1b", "fig2a", "fig2b", "fig2c", "fig2d", "fig3", "tab1",
		"fig8", "fig9", "tab2", "fig10", "fig11", "fig12", "tab3",
		"fig13", "tab4", "fallback",
		"abl-chain", "abl-k", "abl-probe", "abl-explore", "abl-hash", "abl-redundant",
		"abl-nat",
		"ctrl-scale",
		"fleet-scale",
		"chaos-obs",
		"chaos-scheduler-outage", "chaos-scheduler-slow", "chaos-region-blackout", "chaos-region-partition",
		"chaos-churn-storm", "chaos-origin-saturation", "chaos-degradation-wave",
		"chaos-nat-flap", "chaos-ctrl-partition",
	}
}

package experiments

import (
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// peakLoad describes one time-of-day load level for the A/B experiments.
type peakLoad struct {
	name string
	// cdnPerClientBps sizes the dedicated uplink per client: < top rung
	// means CDN congestion when everyone pulls from the CDN.
	cdnPerClientBps float64
}

var (
	eveningPeak = peakLoad{name: "evening", cdnPerClientBps: 2.4e6} // pressure at the top rung
	noonPeak    = peakLoad{name: "noon", cdnPerClientBps: 2.9e6}    // milder pressure
	offPeak     = peakLoad{name: "off-peak", cdnPerClientBps: 8e6}  // headroom
)

var abLadder = []float64{0.8e6, 1.2e6, 2.0e6, 3.0e6}

// abRun runs one group at one load level and returns the system. RLive's
// CDN relief requires enough viewers per stream for relay consolidation
// (the deployment gates RLive on stream popularity, §7.1.1), so the viewer
// count is floored and viewers concentrate in two regions.
func abRun(sc Scale, mode client.Mode, load peakLoad, tune func(*core.Config)) *core.System {
	if sc.Clients < 24 {
		sc.Clients = 24
	}
	if sc.BestEffort < 32 {
		sc.BestEffort = 32
	}
	cfg := core.Config{
		Seed:               sc.Seed,
		NumDedicated:       1,
		NumBestEffort:      sc.BestEffort,
		Mode:               mode,
		ABRLadder:          abLadder,
		DedicatedUplinkBps: load.cdnPerClientBps * float64(sc.Clients),
		ChurnEnabled:       true,
		LifespanMedian:     5 * time.Minute,
	}
	if tune != nil {
		tune(&cfg)
	}
	s := core.NewSystem(cfg)
	s.Start()
	ramp := sc.Duration / 5 / time.Duration(max(1, sc.Clients))
	for i := 0; i < sc.Clients; i++ {
		s.AddClient(core.ClientSpec{Region: i % 2, ISP: i % 2})
		s.Run(ramp)
	}
	s.Run(sc.Duration)
	return s
}

// abMetrics extracts the three headline QoE numbers.
type abMetrics struct {
	rebufPer100 float64
	bitrate     float64
	e2eP50      float64
	eqt         float64
	energy      metrics.Energy
	stallMs     float64
}

func measure(s *core.System) abMetrics {
	agg := s.Aggregate()
	return abMetrics{
		rebufPer100: agg.Rebuffer.Mean(),
		bitrate:     agg.Bitrate.Mean(),
		e2eP50:      agg.E2EMs.Percentile(50),
		eqt:         s.EqT(),
		energy:      s.EnergyTotals(),
		stallMs:     agg.StallTime.Mean(),
	}
}

// Fig8ABFairness reproduces Figure 8: splitting users into control and test
// groups by ID hash yields view/viewer counts that differ only by noise
// (~0.01–0.1%), establishing A/B fairness. This is a property of the
// assignment mechanism, reproduced on synthetic user activity.
func Fig8ABFairness(sc Scale) *Result {
	rng := stats.NewRNG(sc.Seed)
	users := 200000
	days := 14
	viewsSeries := &Series{ID: "fig8", Title: "Daily view-count diff between groups",
		XLabel: "day", YLabel: "diff (%)"}
	viewersSeries := &Series{ID: "fig8", Title: "Daily viewer-count diff between groups",
		XLabel: "day", YLabel: "diff (%)"}
	var maxViewDiff, maxViewerDiff float64
	for day := 1; day <= days; day++ {
		var views [2]float64
		var viewers [2]float64
		for u := 0; u < users; u++ {
			g := u & 1 // group by unique ID
			// Daily activity: most users watch, view counts are
			// heavy-tailed.
			if rng.Bool(0.8) {
				viewers[g]++
				views[g] += float64(1 + rng.Zipf(50, 1.5))
			}
		}
		vd := metrics.RelDiff(views[1], views[0]) * 100
		ud := metrics.RelDiff(viewers[1], viewers[0]) * 100
		viewsSeries.Add(float64(day), vd)
		viewersSeries.Add(float64(day), ud)
		if abs(vd) > maxViewDiff {
			maxViewDiff = abs(vd)
		}
		if abs(ud) > maxViewerDiff {
			maxViewerDiff = abs(ud)
		}
	}
	tbl := &Table{ID: "fig8", Title: "A/B split fairness",
		Header: []string{"metric", "max |diff|", "paper"}}
	tbl.AddRow("views", pct(maxViewDiff/100), "O(0.01-0.1%)")
	tbl.AddRow("viewers", pct(maxViewerDiff/100), "O(0.01-0.1%)")
	return &Result{ID: "fig8", Tables: []*Table{tbl}, Series: []*Series{viewsSeries, viewersSeries}}
}

// Fig9ABTests reproduces Figure 9: the two production A/B tests.
// Test 1 (evening peak): control pulls full streams from the dedicated CDN,
// test pulls through RLive. Test 2 (double vs evening peak): the noon-peak
// comparison, where CDN pressure is milder so gains are smaller.
// Paper: rebuffering −15% / further −10%; bitrate +10.5% / +7%;
// E2E latency +4–6% in both.
func Fig9ABTests(sc Scale) *Result {
	// Test 1: evening peak; test 2: noon peak (the incremental window the
	// second test adds); plus the off-peak pair used below to isolate the
	// relay/reassembly latency cost. Six independent arms, one pool.
	arms := []struct {
		mode client.Mode
		load peakLoad
	}{
		{client.ModeCDNOnly, eveningPeak}, {client.ModeRLive, eveningPeak},
		{client.ModeCDNOnly, noonPeak}, {client.ModeRLive, noonPeak},
		{client.ModeCDNOnly, offPeak}, {client.ModeRLive, offPeak},
	}
	ms := RunCells(len(arms), func(i int) abMetrics {
		return measure(abRun(sc, arms[i].mode, arms[i].load, nil))
	})
	m1c, m1t := ms[0], ms[1]
	m2c, m2t := ms[2], ms[3]

	tbl := &Table{ID: "fig9", Title: "A/B tests: RLive vs CDN-only (diff vs control)",
		Header: []string{"metric", "test1 (evening)", "test2 (noon)", "paper"}}
	tbl.AddRow("rebuffering /100s",
		pct(metrics.RelDiff(m1t.rebufPer100, m1c.rebufPer100)),
		pct(metrics.RelDiff(m2t.rebufPer100, m2c.rebufPer100)),
		"~-15% / ~-10%")
	tbl.AddRow("video bitrate",
		pct(metrics.RelDiff(m1t.bitrate, m1c.bitrate)),
		pct(metrics.RelDiff(m2t.bitrate, m2c.bitrate)),
		"~+10.5% / ~+7%")
	tbl.AddRow("E2E latency P50",
		pct(metrics.RelDiff(m1t.e2eP50, m1c.e2eP50)),
		pct(metrics.RelDiff(m2t.e2eP50, m2c.e2eP50)),
		"+4..6%")
	// Under peak congestion the control's own stall-lag inflates its
	// latency, masking RLive's relay/reassembly penalty; the off-peak
	// pair isolates it (the paper's +4–6% is the uncongested-path cost).
	m3c, m3t := ms[4], ms[5]
	tbl.AddRow("E2E latency P50 (off-peak)",
		pct(metrics.RelDiff(m3t.e2eP50, m3c.e2eP50)), "-", "+4..6%")
	detail := &Table{ID: "fig9", Title: "Raw group values",
		Header: []string{"group", "rebuf/100s", "bitrate (Mbps)", "E2E P50 (ms)"}}
	detail.AddRow("evening cdn-only", f2(m1c.rebufPer100), f2(m1c.bitrate/1e6), f0(m1c.e2eP50))
	detail.AddRow("evening rlive", f2(m1t.rebufPer100), f2(m1t.bitrate/1e6), f0(m1t.e2eP50))
	detail.AddRow("noon cdn-only", f2(m2c.rebufPer100), f2(m2c.bitrate/1e6), f0(m2c.e2eP50))
	detail.AddRow("noon rlive", f2(m2t.rebufPer100), f2(m2t.bitrate/1e6), f0(m2t.e2eP50))
	return &Result{ID: "fig9", Tables: []*Table{tbl, detail}}
}

// Table2EqT reproduces Table 2: equivalent-traffic (cost-weighted volume)
// reduction from serving through cheaper best-effort nodes. Paper: test 1
// cuts evening EqT ~8%, test 2 cuts non-peak (noon) EqT ~6%.
func Table2EqT(sc Scale) *Result {
	loads := []peakLoad{eveningPeak, eveningPeak, noonPeak, noonPeak}
	modes := []client.Mode{client.ModeCDNOnly, client.ModeRLive, client.ModeCDNOnly, client.ModeRLive}
	groups := RunCells(len(loads), func(i int) *core.System {
		return abRun(sc, modes[i], loads[i], nil)
	})
	ctrl1, test1, ctrl2, test2 := groups[0], groups[1], groups[2], groups[3]

	// RLive also delivers a HIGHER bitrate under peak pressure (Fig 9b),
	// so raw EqT is not service-equivalent; normalize by the video bits
	// actually delivered to viewers. The paper's A/B groups delivered
	// comparable video, making raw EqT comparable there.
	norm := func(s *core.System) float64 {
		var bits float64
		for _, c := range s.Clients {
			bits += c.QoE.MeanBitrate() * c.QoE.PlayedMs / 1000
		}
		if bits == 0 {
			return 0
		}
		return s.EqT() / (bits / 8)
	}
	tbl := &Table{ID: "tab2", Title: "Equivalent traffic (EqT) per delivered video byte",
		Header: []string{"window", "EqT/byte diff", "paper"}}
	tbl.AddRow("evening (test 1)", pct(metrics.RelDiff(norm(test1), norm(ctrl1))), "-7.99%")
	tbl.AddRow("noon/non-peak (test 2)", pct(metrics.RelDiff(norm(test2), norm(ctrl2))), "-6.16%")
	raw := &Table{ID: "tab2", Title: "Traffic composition (MB)",
		Header: []string{"group", "EqT", "dedicated", "best-effort", "dup@client"}}
	row := func(name string, s *core.System) {
		ded, be := s.ServedBytes()
		var dup float64
		for _, c := range s.Clients {
			dup += float64(c.DupBytes)
		}
		raw.AddRow(name, f0(s.EqT()/1e6), f0(ded/1e6), f0(be/1e6), f0(dup/1e6))
	}
	row("evening cdn-only", ctrl1)
	row("evening rlive", test1)
	row("noon cdn-only", ctrl2)
	row("noon rlive", test2)
	return &Result{ID: "tab2", Tables: []*Table{tbl, raw}}
}

// Fig10Energy reproduces Figure 10: client-side energy/resource overhead of
// RLive vs CDN-only delivery, via simulation proxies (compute work units,
// peak buffer memory). Paper: CPU +0.58–0.74%, memory +0.21–0.22%, with
// temperature/battery below 0.2%.
func Fig10Energy(sc Scale) *Result {
	// Uncongested so the comparison isolates protocol overhead rather
	// than stall-induced differences.
	pair := RunCells(2, func(i int) *core.System {
		return abRun(sc, []client.Mode{client.ModeCDNOnly, client.ModeRLive}[i], offPeak, nil)
	})
	ctrl, test := pair[0], pair[1]
	ce, te := ctrl.EnergyTotals(), test.EnergyTotals()

	// Normalize per played frame so slight playback differences cancel.
	cf, tf := 0.0, 0.0
	for _, c := range ctrl.Clients {
		cf += float64(c.QoE.FramesPlayed)
	}
	for _, c := range test.Clients {
		tf += float64(c.QoE.FramesPlayed)
	}
	tbl := &Table{ID: "fig10", Title: "Client energy proxies (RLive vs CDN-only)",
		Header: []string{"proxy", "cdn-only", "rlive", "diff", "paper"}}
	cCPU, tCPU := ce.CPUUnits/cf, te.CPUUnits/tf
	tbl.AddRow("cpu work / frame", f2(cCPU), f2(tCPU), pct(metrics.RelDiff(tCPU, cCPU)), "+0.58..0.74% (abs)")
	tbl.AddRow("peak buffer mem (MB)", f2(ce.MemBytesPeak/1e6), f2(te.MemBytesPeak/1e6),
		pct(metrics.RelDiff(te.MemBytesPeak, ce.MemBytesPeak)), "+0.21..0.22% (abs)")
	return &Result{ID: "fig10", Tables: []*Table{tbl}}
}

// Fig13RTM reproduces Figure 13: the RTM (WebRTC-based, sub-second latency)
// protocol variant. RLive on top of RTM should cost ~1% E2E latency with
// bitrate and rebuffering essentially unchanged, while shifting load off
// the CDN. RTM is modeled as an ultra-low-latency client profile: small
// startup buffer and fallback threshold.
func Fig13RTM(sc Scale) *Result {
	rtmTune := func(cfg *core.Config) {
		cfg.ClientTune = func(cc *client.Config) {
			cc.StartupBufferMs = 300
			cc.FallbackThresholdMs = 200
			cc.ABRCheckEvery = time.Second
		}
		cfg.FallbackThresholdMs = 200
		// Isolate the protocol-generality question from last-mile
		// robustness noise.
		cfg.ClientLinkTune = func(st *simnet.LinkState) {
			st.MeanDegradedEvery = 0
			st.DegradedLoss = 0
		}
	}
	pair := RunCells(2, func(i int) *core.System {
		return abRun(sc, []client.Mode{client.ModeCDNOnly, client.ModeRLive}[i], offPeak, rtmTune)
	})
	ctrl, test := pair[0], pair[1]
	mc, mt := measure(ctrl), measure(test)
	cDed, _ := ctrl.ServedBytes()
	tDed, tBE := test.ServedBytes()

	tbl := &Table{ID: "fig13", Title: "RTM protocol: RTM+RLive vs RTM-only (diff vs control)",
		Header: []string{"metric", "diff", "paper"}}
	tbl.AddRow("E2E latency P50", pct(metrics.RelDiff(mt.e2eP50, mc.e2eP50)), "~+1%")
	tbl.AddRow("bitrate", pct(metrics.RelDiff(mt.bitrate, mc.bitrate)), "~0%")
	tbl.AddRow("rebuffering /100s", pct(metrics.RelDiff(mt.rebufPer100, mc.rebufPer100)), "~0%")
	tbl.AddRow("CDN bytes served", pct(metrics.RelDiff(tDed, cDed)), "reduced")
	tbl.AddRow("BE share of delivery", f2(tBE/(tBE+tDed)), "substantial")
	return &Result{ID: "fig13", Tables: []*Table{tbl}}
}

// Table4FlashCrowd reproduces Table 4: the 2022 FIFA World Cup case study —
// a flash crowd beyond dedicated capacity, where RLive mobilizes
// best-effort resources to carry more viewers at CDN-grade QoE.
// Paper (Dec 4 match): +21.78% views, −8.82% rebuffering, +1.72% bitrate,
// −4.75% E2E latency.
func Table4FlashCrowd(sc Scale) *Result {
	// The crowd: a surge well beyond ordinary peak sizing, arriving
	// fast, against a CDN that cannot even serve the bottom rung to
	// everyone — the situation where RLive's rapid mobilization of
	// best-effort resources carries the extra views.
	crowd := sc.Clients * 2
	if crowd < 48 {
		crowd = 48
	}
	nodes := sc.BestEffort
	if nodes < 48 {
		nodes = 48
	}
	mk := func(mode client.Mode) *core.System {
		s := core.NewSystem(core.Config{
			Seed:          sc.Seed,
			NumDedicated:  1,
			NumBestEffort: nodes,
			Mode:          mode,
			ABRLadder:     abLadder,
			// Slightly below bottom-rung demand for the full crowd:
			// the CDN alone cannot hold everyone even at minimum
			// quality.
			DedicatedUplinkBps: 0.75e6 * float64(crowd),
			// Surge viewers start conservative and climb.
			ABRStartRung: -1,
		})
		s.Start()
		for i := 0; i < crowd; i++ {
			s.AddClient(core.ClientSpec{Region: i % 2, ISP: i % 2})
			s.Run(sc.Duration / 4 / time.Duration(crowd))
		}
		s.Run(sc.Duration)
		return s
	}
	pair := RunCells(2, func(i int) *core.System {
		return mk([]client.Mode{client.ModeCDNOnly, client.ModeRLive}[i])
	})
	ctrl, test := pair[0], pair[1]

	// A "view" counts when the session achieved sustained smooth
	// playback: at least 75% of its wall time playing rather than
	// stalled (live-edge skips still count as watching).
	countViews := func(s *core.System) (views float64) {
		for _, c := range s.Clients {
			total := c.QoE.PlayedMs + c.QoE.StalledMs
			if total > 0 && c.QoE.PlayedMs/total >= 0.75 && c.QoE.FramesPlayed > 0 {
				views++
			}
		}
		return views
	}
	mc, mt := measure(ctrl), measure(test)
	cv, tv := countViews(ctrl), countViews(test)

	tbl := &Table{ID: "tab4", Title: "Flash crowd case study: RLive vs CDN-only",
		Header: []string{"metric", "diff", "paper"}}
	tbl.AddRow("#views (sustained)", pct(metrics.RelDiff(tv, cv)), "+21.78%")
	tbl.AddRow("rebuffering /100s", pct(metrics.RelDiff(mt.rebufPer100, mc.rebufPer100)), "-8.82%")
	tbl.AddRow("bitrate", pct(metrics.RelDiff(mt.bitrate, mc.bitrate)), "+1.72%")
	tbl.AddRow("E2E latency P50", pct(metrics.RelDiff(mt.e2eP50, mc.e2eP50)), "-4.75%")
	return &Result{ID: "tab4", Tables: []*Table{tbl}}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ABPeak is the telemetry showcase: the evening-peak A/B pair of ABBaseline
// re-run with the full instrument registry attached. Each arm scrapes every
// instrument on a fixed sim-time cadence and the result renders the timeline
// as per-bucket tables — stall onsets and stall seconds, publisher switches
// by trigger, edge utilization P50/P90, and scheduler load — the simulated
// counterpart of the paper's operational dashboards (Figs 9–12).
//
// The final table per arm is a reconciliation: the cumulative telemetry
// counters at the last scrape must equal the metrics.SessionQoE aggregates
// EXACTLY (frames played, frames lost, stall nanoseconds — all integer
// arithmetic), and, when Scale.Trace is also set, the frame-lifecycle trace
// totals as well. CI pins this invariant.
func ABPeak(sc Scale) *Result {
	modes := []client.Mode{client.ModeCDNOnly, client.ModeRLive}
	// Bucket the run into ~6 scrape intervals so quick and full scales both
	// render a readable timeline.
	bucket := sc.Duration / 6
	if bucket < time.Second {
		bucket = time.Second
	}
	type cell struct {
		reg          *telemetry.Registry
		tr           *trace.Run
		played, lost int
		stallNs      uint64
	}
	cells := RunCells(len(modes), func(i int) cell {
		reg := telemetry.NewRegistry("ab-peak/"+modes[i].String(), sc.Seed)
		sc.watch(reg)
		var run *trace.Run
		tune := func(cfg *core.Config) {
			cfg.Telemetry = reg
			cfg.TelemetryScrapeEvery = bucket
			if sc.Trace {
				run = trace.NewRun("ab-peak/"+modes[i].String(), sc.Seed)
				cfg.Trace = run
			}
		}
		s := abRun(sc, modes[i], eveningPeak, tune)
		// Close the timeline with an end-of-run scrape (idempotent when a
		// periodic scrape already fired at this instant) so the cumulative
		// totals cover the entire run.
		reg.Scrape(int64(s.Sim.Now()))
		c := cell{reg: reg, tr: run}
		for _, cl := range s.Clients {
			c.played += cl.QoE.FramesPlayed
			c.lost += cl.QoE.FramesLost
			c.stallNs += cl.QoE.StalledNs
		}
		run.Finish()
		return c
	})

	res := &Result{ID: "ab-peak"}
	for i, c := range cells {
		res.Timelines = append(res.Timelines, c.reg)
		if c.tr != nil {
			res.Traces = append(res.Traces, c.tr)
		}

		tbl := &Table{ID: "ab-peak",
			Title: "Evening-peak timeline: " + modes[i].String(),
			Header: []string{"t (s)", "stall onsets", "stall s", "switches",
				"util p50", "util p90", "sched qps"}}
		for k := 1; k < c.reg.NumScrapes(); k++ {
			t0, t1 := c.reg.ScrapeAt(k-1), c.reg.ScrapeAt(k)
			secs := float64(t1-t0) / 1e9
			if secs <= 0 {
				continue
			}
			delta := func(name string) uint64 {
				return c.reg.CounterAt(k, name) - c.reg.CounterAt(k-1, name)
			}
			switches := delta("client.switches.rtt") +
				delta("client.switches.cost") + delta("client.switches.qos")
			util := c.reg.HistAt(k, "edge.util").Sub(c.reg.HistAt(k-1, "edge.util"))
			tbl.AddRow(
				f0(float64(t1)/1e9),
				u64(delta("client.stall_onsets")),
				f2(float64(delta("client.stall_ns"))/1e9),
				u64(switches),
				f2(util.Quantile(0.5)),
				f2(util.Quantile(0.9)),
				f2(float64(delta("sched.requests"))/secs),
			)
		}
		res.Tables = append(res.Tables, tbl)

		// Reconciliation: cumulative telemetry at the last scrape vs the
		// SessionQoE aggregates (and the trace totals when recorded). All
		// three pipelines count the same events at the same sites, so the
		// columns must match exactly.
		last := c.reg.NumScrapes() - 1
		rec := &Table{ID: "ab-peak",
			Title:  "Telemetry reconciliation: " + modes[i].String(),
			Header: []string{"metric", "telemetry", "qoe", "trace"}}
		tracePlayed, traceLost := "-", "-"
		if c.tr != nil {
			sum := trace.Summarize(c.tr)
			tracePlayed, traceLost = itoa(sum.Played), itoa(sum.Lost)
		}
		rec.AddRow("frames played", u64(c.reg.CounterAt(last, "client.frames_played")),
			itoa(c.played), tracePlayed)
		rec.AddRow("frames lost", u64(c.reg.CounterAt(last, "client.frames_lost")),
			itoa(c.lost), traceLost)
		rec.AddRow("stall ns", u64(c.reg.CounterAt(last, "client.stall_ns")),
			u64(c.stallNs), "-")
		res.Tables = append(res.Tables, rec)
	}
	return res
}

func u64(n uint64) string { return fmt.Sprintf("%d", n) }

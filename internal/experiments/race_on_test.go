//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; the
// heaviest drills skip under it to keep the package inside the go test
// per-package timeout (their properties are separately enforced by the
// non-race CI byte-identity gates).
const raceEnabled = true

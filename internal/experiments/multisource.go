package experiments

import (
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
)

// tierRun runs one delivery tier (Multi = RLive K=4, Single = one-relay
// single-source) over the FULL best-effort fleet — unlike the §2.2
// strawman, this comparison (Fig 11) is between two edge-relayed tiers, so
// both face node instability; Multi's substream spreading should win.
func tierRun(sc Scale, mode client.Mode) *core.System {
	// Relay consolidation needs viewer density (see abRun).
	if sc.Clients < 24 {
		sc.Clients = 24
	}
	if sc.BestEffort < 32 {
		sc.BestEffort = 32
	}
	s := core.NewSystem(core.Config{
		Seed:           sc.Seed,
		NumDedicated:   sc.Dedicated,
		NumBestEffort:  sc.BestEffort,
		Mode:           mode,
		ABRLadder:      abLadder,
		ChurnEnabled:   true,
		LifespanMedian: 4 * time.Minute,
	})
	s.Start()
	ramp := sc.Duration / 5 / time.Duration(max(1, sc.Clients))
	for i := 0; i < sc.Clients; i++ {
		s.AddClient(core.ClientSpec{Region: i % 2, ISP: i % 2})
		s.Run(ramp)
	}
	s.Run(sc.Duration)
	return s
}

// Fig11MultiVsSingle reproduces Figure 11: multi-source multi-substream
// (Multi) vs single-source (Single) delivery over best-effort nodes.
// Paper: Multi cuts E2E latency 12–30%, substantially reduces rebuffering
// count and duration, improves bitrate, and nearly doubles the traffic
// expansion rate.
func Fig11MultiVsSingle(sc Scale) *Result {
	pair := RunCells(2, func(i int) *core.System {
		return tierRun(sc, []client.Mode{client.ModeSingleSource, client.ModeRLive}[i])
	})
	single, multi := pair[0], pair[1]
	ms, mm := measure(single), measure(multi)

	// Mean E2E latency captures stall-induced lag drift that the
	// buffer-dominated median hides.
	sLat := single.Aggregate().E2EMs.Mean()
	mLat := multi.Aggregate().E2EMs.Mean()
	tbl := &Table{ID: "fig11", Title: "Multi vs Single source transmission (diff vs Single)",
		Header: []string{"metric", "single", "multi", "diff", "paper"}}
	tbl.AddRow("E2E latency mean (ms)", f0(sLat), f0(mLat),
		pct(metrics.RelDiff(mLat, sLat)), "-12..30%")
	tbl.AddRow("rebuffers /100s", f2(ms.rebufPer100), f2(mm.rebufPer100),
		pct(metrics.RelDiff(mm.rebufPer100, ms.rebufPer100)), "reduced")
	tbl.AddRow("stall ms /100s", f0(ms.stallMs), f0(mm.stallMs),
		pct(metrics.RelDiff(mm.stallMs, ms.stallMs)), "reduced")
	tbl.AddRow("bitrate (Mbps)", f2(ms.bitrate/1e6), f2(mm.bitrate/1e6),
		pct(metrics.RelDiff(mm.bitrate, ms.bitrate)), "improved")

	// Traffic expansion rate comparison (Fig 11c).
	sr := single.ExpansionRates()
	mr := multi.ExpansionRates()
	exp := &Table{ID: "fig11c", Title: "Traffic expansion rate",
		Header: []string{"tier", "median gamma", "mean gamma", "paper"}}
	exp.AddRow("single", f2(sr.Percentile(50)), f2(sr.Mean()), "baseline")
	exp.AddRow("multi", f2(mr.Percentile(50)), f2(mr.Mean()), "~2x single")
	return &Result{ID: "fig11", Tables: []*Table{tbl, exp}}
}

package experiments

import (
	"bytes"
	"testing"
	"time"
)

// fleetScaleTestScale keeps the 1x/3x/10x sweep small enough for CI.
var fleetScaleTestScale = Scale{BestEffort: 24, Duration: 3 * time.Second, Seed: 1}

// TestFleetScaleShardIdentity is the experiment-level byte-identity gate:
// rendered tables, series, and telemetry JSONL must match between the
// single-threaded reference and sharded runs, across seeds.
func TestFleetScaleShardIdentity(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		sc := fleetScaleTestScale
		sc.Seed = seed
		sc.Telemetry = true

		render := func(shards int) (string, []byte) {
			s := sc
			s.Shards = shards
			res := FleetScale(s)
			var tm bytes.Buffer
			for _, reg := range res.Timelines {
				if err := reg.WriteJSONL(&tm); err != nil {
					t.Fatalf("seed %d shards %d: telemetry: %v", seed, shards, err)
				}
			}
			return res.String(), tm.Bytes()
		}
		refTxt, refTM := render(1)
		if len(refTM) == 0 {
			t.Fatalf("seed %d: reference run produced no telemetry", seed)
		}
		for _, shards := range []int{2, 4} {
			txt, tm := render(shards)
			if txt != refTxt {
				t.Errorf("seed %d: shards=%d rendered output diverged from serial:\n%s\nvs\n%s",
					seed, shards, txt, refTxt)
			}
			if !bytes.Equal(tm, refTM) {
				t.Errorf("seed %d: shards=%d telemetry JSONL diverged from serial", seed, shards)
			}
		}
	}
}

// TestFleetScaleVerdicts: the sweep's calibrated invariants hold at test
// scale — every row must carry a "pass" verdict.
func TestFleetScaleVerdicts(t *testing.T) {
	res := FleetScale(fleetScaleTestScale)
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 3 {
		t.Fatalf("want 1 table with 3 rows, got %+v", res.Tables)
	}
	for _, row := range res.Tables[0].Rows {
		if v := row[len(row)-1]; v != "pass" {
			t.Errorf("row %v: verdict %q, want pass", row, v)
		}
	}
	if len(res.Series) != 1 || len(res.Series[0].X) == 0 {
		t.Fatalf("want a non-empty timeline series, got %+v", res.Series)
	}
}

// TestSetBudget pins the cells = parallel / shards split that keeps cell
// fan-out and shard workers from oversubscribing one worker budget.
func TestSetBudget(t *testing.T) {
	defer SetBudget(1, 1)
	cases := []struct{ parallel, shards, wantCells, wantShards int }{
		{8, 1, 8, 1},
		{8, 4, 2, 4},
		{8, 2, 4, 2},
		{4, 8, 1, 8},
		{1, 1, 1, 1},
		{2, 0, 2, 1},
	}
	for _, c := range cases {
		SetBudget(c.parallel, c.shards)
		if got := Parallelism(); got != c.wantCells {
			t.Errorf("SetBudget(%d, %d): Parallelism() = %d, want %d", c.parallel, c.shards, got, c.wantCells)
		}
		if got := Shards(); got != c.wantShards {
			t.Errorf("SetBudget(%d, %d): Shards() = %d, want %d", c.parallel, c.shards, got, c.wantShards)
		}
	}
}

package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment catalogue is embarrassingly parallel at the cell level:
// every A/B arm, ablation grid point, and paired chaos run builds its own
// core.System (own Sim, own RNG) and shares nothing with its siblings.
// RunCells exploits that while keeping output byte-identical to serial
// execution — results are assembled in cell order, and each cell is as
// deterministic under a worker as it is inline.
//
// A single process-wide token pool bounds concurrency across nested
// RunCells calls (the CLI fans whole experiments, experiments fan their
// cells): a caller only hands cells to extra goroutines while tokens are
// available and always works its own queue inline, so nesting can never
// deadlock and total concurrent cells never exceeds the configured width.

var cellTokens atomic.Pointer[chan struct{}]

// SetParallelism sets the worker-pool width for RunCells: at most n
// experiment cells run concurrently across the whole process. n <= 1
// restores serial execution (the default); n == 0 means runtime.NumCPU().
// Call it before launching experiments, not concurrently with them.
func SetParallelism(n int) {
	if n == 0 {
		n = runtime.NumCPU()
	}
	if n <= 1 {
		cellTokens.Store(nil)
		return
	}
	ch := make(chan struct{}, n-1)
	for i := 0; i < n-1; i++ {
		ch <- struct{}{}
	}
	cellTokens.Store(&ch)
}

// Parallelism reports the configured pool width (1 when serial).
func Parallelism() int {
	if p := cellTokens.Load(); p != nil {
		return cap(*p) + 1
	}
	return 1
}

// RunCells runs n independent experiment cells and returns their outputs in
// cell order. run(i) must be self-contained: build its own system, touch no
// state shared with other cells. Under SetParallelism(>1) cells execute on
// a bounded worker pool; the returned slice is identical to serial
// execution either way.
func RunCells[T any](n int, run func(i int) T) []T {
	out := make([]T, n)
	tokens := cellTokens.Load()
	if tokens == nil || n <= 1 {
		for i := range out {
			out[i] = run(i)
		}
		return out
	}
	var next atomic.Int64
	next.Store(-1)
	work := func() {
		for {
			i := next.Add(1)
			if i >= int64(n) {
				return
			}
			out[i] = run(int(i))
		}
	}
	var wg sync.WaitGroup
spawn:
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case <-*tokens:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { *tokens <- struct{}{} }()
				work()
			}()
		default:
			break spawn // pool saturated: run the rest inline
		}
	}
	work()
	wg.Wait()
	return out
}

package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment catalogue is embarrassingly parallel at the cell level:
// every A/B arm, ablation grid point, and paired chaos run builds its own
// core.System (own Sim, own RNG) and shares nothing with its siblings.
// RunCells exploits that while keeping output byte-identical to serial
// execution — results are assembled in cell order, and each cell is as
// deterministic under a worker as it is inline.
//
// A single process-wide token pool bounds concurrency across nested
// RunCells calls (the CLI fans whole experiments, experiments fan their
// cells): a caller only hands cells to extra goroutines while tokens are
// available and always works its own queue inline, so nesting can never
// deadlock and total concurrent cells never exceeds the configured width.

var cellTokens atomic.Pointer[chan struct{}]

// SetParallelism sets the worker-pool width for RunCells: at most n
// experiment cells run concurrently across the whole process. n <= 1
// restores serial execution (the default); n == 0 means runtime.NumCPU().
// Call it before launching experiments, not concurrently with them.
func SetParallelism(n int) {
	if n == 0 {
		n = runtime.NumCPU()
	}
	if n <= 1 {
		cellTokens.Store(nil)
		return
	}
	ch := make(chan struct{}, n-1)
	for i := 0; i < n-1; i++ {
		ch <- struct{}{}
	}
	cellTokens.Store(&ch)
}

// Parallelism reports the configured pool width (1 when serial).
func Parallelism() int {
	if p := cellTokens.Load(); p != nil {
		return cap(*p) + 1
	}
	return 1
}

// shardWidth is the per-run shard worker count experiments pass to the
// sharded engine (Scale.Shards defaults to it when unset).
var shardWidth atomic.Int64

// SetShards sets the shard worker count for engines that support
// intra-run sharding. n <= 1 selects the single-threaded reference loop.
func SetShards(n int) {
	if n < 1 {
		n = 1
	}
	shardWidth.Store(int64(n))
}

// Shards reports the configured shard width (minimum 1).
func Shards() int {
	if n := shardWidth.Load(); n > 1 {
		return int(n)
	}
	return 1
}

// SetBudget divides one worker budget between the two axes of parallelism:
// cells fanning across experiments (RunCells) and shard workers inside a
// single sharded run. With parallel total workers and shards workers per
// run, at most parallel/shards cells run concurrently, so the process never
// oversubscribes parallel OS threads with busy event loops. parallel == 0
// means runtime.NumCPU().
func SetBudget(parallel, shards int) {
	SetShards(shards)
	if shards < 1 {
		shards = 1
	}
	if parallel == 0 {
		parallel = runtime.NumCPU()
	}
	cells := parallel / shards
	if cells < 1 {
		cells = 1
	}
	SetParallelism(cells)
}

// cellObserver, when set, is called once after every completed RunCells
// cell (any nesting level, any goroutine). It is a pure side channel for
// live progress reporting — it receives no cell data and cannot influence
// results, so it cannot perturb the byte-identical-to-serial guarantee.
var cellObserver atomic.Pointer[func()]

// SetCellObserver installs fn as the cell-completion observer (nil
// clears). fn must be safe to call from multiple goroutines. Call it
// before launching experiments, not concurrently with them.
func SetCellObserver(fn func()) {
	if fn == nil {
		cellObserver.Store(nil)
		return
	}
	cellObserver.Store(&fn)
}

// cellCompleted notifies the observer, if any.
func cellCompleted() {
	if fn := cellObserver.Load(); fn != nil {
		(*fn)()
	}
}

// RunCells runs n independent experiment cells and returns their outputs in
// cell order. run(i) must be self-contained: build its own system, touch no
// state shared with other cells. Under SetParallelism(>1) cells execute on
// a bounded worker pool; the returned slice is identical to serial
// execution either way.
func RunCells[T any](n int, run func(i int) T) []T {
	out := make([]T, n)
	tokens := cellTokens.Load()
	if tokens == nil || n <= 1 {
		for i := range out {
			out[i] = run(i)
			cellCompleted()
		}
		return out
	}
	var next atomic.Int64
	next.Store(-1)
	work := func() {
		for {
			i := next.Add(1)
			if i >= int64(n) {
				return
			}
			out[i] = run(int(i))
			cellCompleted()
		}
	}
	var wg sync.WaitGroup
spawn:
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case <-*tokens:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { *tokens <- struct{}{} }()
				work()
			}()
		default:
			break spawn // pool saturated: run the rest inline
		}
	}
	work()
	wg.Wait()
	return out
}

package experiments

import (
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fleet"
)

// Fig12ControlPlane reproduces Figure 12: global scheduler statistics.
// (a) Node recommendation time distribution — paper: P50 ≈ 58.2 ms,
// P90 ≈ 111.5 ms. (b) Fraction of recommended nodes that turn out invalid —
// paper: up to ~35%, which is why clients fine-tune locally. (c) Scheduler
// load over the day — paper: several million QPS at evening peak.
func Fig12ControlPlane(sc Scale) *Result {
	s := core.NewSystem(core.Config{
		Seed:           sc.Seed,
		NumDedicated:   sc.Dedicated,
		NumBestEffort:  sc.BestEffort,
		Mode:           client.ModeRLive,
		ChurnEnabled:   true,
		LifespanMedian: 3 * time.Minute, // churn makes candidates go stale
	})
	s.Start()
	ramp := sc.Duration / 5 / time.Duration(max(1, sc.Clients))
	for i := 0; i < sc.Clients; i++ {
		s.AddClient(core.ClientSpec{Region: i % 4, ISP: i % 2})
		s.Run(ramp)
	}
	s.Run(sc.Duration)

	lat := s.Sched.RecLatency
	tblA := &Table{ID: "fig12a", Title: "Node recommendation time",
		Header: []string{"stat", "ms", "paper"}}
	tblA.AddRow("P50", f0(lat.Percentile(50)), "58.2")
	tblA.AddRow("P90", f0(lat.Percentile(90)), "111.5")
	latCDF := &Series{ID: "fig12a", Title: "Recommendation time CDF", XLabel: "ms", YLabel: "CDF"}
	for _, p := range lat.CDF(25) {
		latCDF.Add(p.X, p.F)
	}

	// Invalid recommendations measured at probe time: a recommended node
	// whose application-level probe goes unanswered (NAT-unreachable,
	// offline since its last heartbeat) or refused (quota) was invalid.
	var sent, answered, refused uint64
	for _, c := range s.Clients {
		sent += c.ProbesSent
		answered += c.ProbeAnswers
		refused += c.ProbeRefusals
	}
	invalid := 0.0
	if sent > 0 {
		invalid = float64(sent-answered+refused) / float64(sent)
	}
	tblB := &Table{ID: "fig12b", Title: "Invalid recommended nodes",
		Header: []string{"stat", "value", "paper"}}
	tblB.AddRow("invalid fraction (probe-time)", f2(invalid), "up to ~0.35")
	tblB.AddRow("reported-failure fraction", f2(s.SchedSvc.InvalidFraction()), "-")

	// (c) QPS through the day: measured per-client request rate from the
	// run, projected onto the diurnal viewer model at production scale.
	reqPerClientSec := float64(s.Sched.Requests) / float64(sc.Clients) / sc.Duration.Seconds()
	d := fleet.DefaultDiurnal
	qps := &Series{ID: "fig12c", Title: "Projected scheduler QPS over the day",
		XLabel: "hour", YLabel: "QPS (M)"}
	peakQPS := 0.0
	for h := 0.0; h <= 24; h += 0.5 {
		// Viewers scale with streams; the paper's peak concurrency is
		// multi-million viewers across ~2.47M streams.
		viewers := d.Streams(time.Duration(h*float64(time.Hour))) * 3 // viewers per stream (modeled)
		q := viewers * reqPerClientSec / 1e6
		if q > peakQPS {
			peakQPS = q
		}
		qps.Add(h, q)
	}
	tblC := &Table{ID: "fig12c", Title: "Scheduler load",
		Header: []string{"stat", "value", "paper"}}
	tblC.AddRow("measured req/client/s", f2(reqPerClientSec), "-")
	tblC.AddRow("projected peak QPS (M)", f2(peakQPS), "several million")
	return &Result{ID: "fig12", Tables: []*Table{tblA, tblB, tblC}, Series: []*Series{latCDF, qps}}
}

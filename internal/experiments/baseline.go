package experiments

import (
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ABBaseline is the canonical paired A/B cell and the run the CI
// determinism gate pins: evening-peak CDN-only vs RLive on one shared seed.
// With Scale.Trace set each arm records a full frame-lifecycle trace; the
// result then includes per-arm cause-of-loss and deadline-budget summaries
// whose played/lost totals reconcile with the metrics.SessionQoE frame
// counts (printed side by side for the diff), and Result.Traces carries the
// finished runs in cell order for JSONL export.
func ABBaseline(sc Scale) *Result {
	modes := []client.Mode{client.ModeCDNOnly, client.ModeRLive}
	type cell struct {
		m            abMetrics
		tr           *trace.Run
		reg          *telemetry.Registry
		played, lost int
	}
	cells := RunCells(len(modes), func(i int) cell {
		var run *trace.Run
		var reg *telemetry.Registry
		var prof *profile.Prof
		var tune func(*core.Config)
		if sc.Trace || sc.Telemetry || sc.profiled() {
			if sc.Trace {
				run = trace.NewRun("ab-baseline/"+modes[i].String(), sc.Seed)
			}
			if sc.Telemetry {
				reg = telemetry.NewRegistry("ab-baseline/"+modes[i].String(), sc.Seed)
				sc.watch(reg)
			}
			if sc.profiled() {
				// The serial engine is one shard on one worker.
				prof = profile.New("ab-baseline/"+modes[i].String(), 1, 1)
			}
			tune = func(cfg *core.Config) {
				cfg.Trace = run
				cfg.Telemetry = reg
				cfg.Profile = prof
			}
		}
		s := abRun(sc, modes[i], eveningPeak, tune)
		sc.emitProfile(prof)
		// Close the telemetry timeline at the end of the run (idempotent
		// when a periodic scrape already fired at this instant).
		reg.Scrape(int64(s.Sim.Now()))
		var played, lost int
		for _, c := range s.Clients {
			played += c.QoE.FramesPlayed
			lost += c.QoE.FramesLost
		}
		run.Finish()
		return cell{m: measure(s), tr: run, reg: reg, played: played, lost: lost}
	})
	ctrl, test := cells[0], cells[1]

	tbl := &Table{ID: "ab-baseline", Title: "Baseline A/B: RLive vs CDN-only (evening peak)",
		Header: []string{"metric", "cdn-only", "rlive", "diff"}}
	tbl.AddRow("rebuffering /100s", f2(ctrl.m.rebufPer100), f2(test.m.rebufPer100),
		pct(metrics.RelDiff(test.m.rebufPer100, ctrl.m.rebufPer100)))
	tbl.AddRow("video bitrate (Mbps)", f2(ctrl.m.bitrate/1e6), f2(test.m.bitrate/1e6),
		pct(metrics.RelDiff(test.m.bitrate, ctrl.m.bitrate)))
	tbl.AddRow("E2E latency P50 (ms)", f0(ctrl.m.e2eP50), f0(test.m.e2eP50),
		pct(metrics.RelDiff(test.m.e2eP50, ctrl.m.e2eP50)))
	tbl.AddRow("frames played (QoE)", itoa(ctrl.played), itoa(test.played), "")
	tbl.AddRow("frames lost (QoE)", itoa(ctrl.lost), itoa(test.lost), "")
	res := &Result{ID: "ab-baseline", Tables: []*Table{tbl}}

	for _, c := range cells {
		if c.reg != nil {
			res.Timelines = append(res.Timelines, c.reg)
		}
	}
	for i, c := range cells {
		if c.tr == nil {
			continue
		}
		res.Traces = append(res.Traces, c.tr)
		s := trace.Summarize(c.tr)
		st := &Table{ID: "ab-baseline",
			Title:  "Frame-lifecycle trace: " + modes[i].String(),
			Header: []string{"event", "count"}}
		for _, row := range s.Rows() {
			st.AddRow(row[0], row[1])
		}
		// Reconciliation rows: traced playout/loss totals must equal the
		// session-QoE aggregates (the acceptance invariant CI checks).
		st.AddRow("qoe frames played", itoa(c.played))
		st.AddRow("qoe frames lost", itoa(c.lost))
		res.Tables = append(res.Tables, st)
	}
	return res
}

func itoa(n int) string { return f0(float64(n)) }

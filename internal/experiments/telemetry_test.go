package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// telemScale keeps the telemetry determinism test fast while still
// exercising stalls, switches, and scheduler load under evening-peak
// pressure.
var telemScale = Scale{
	BestEffort: 32, Dedicated: 1, Clients: 8,
	Duration: 15 * time.Second, Seed: 7, Trace: true,
}

// encodeTimelines renders a result's telemetry exactly as the CLI
// -telemetry flag does: concatenated JSONL in cell order.
func encodeTimelines(t *testing.T, res *Result) []byte {
	t.Helper()
	var w bytes.Buffer
	for _, r := range res.Timelines {
		if err := r.WriteJSONL(&w); err != nil {
			t.Fatal(err)
		}
	}
	return w.Bytes()
}

// TestABPeakTelemetryDeterministic: the CI determinism gate's property —
// repeated same-seed runs, serial or parallel, produce byte-identical
// rendered output and byte-identical timeline JSONL.
func TestABPeakTelemetryDeterministic(t *testing.T) {
	serialAfter(t)
	r1 := ABPeak(telemScale)
	r2 := ABPeak(telemScale)
	SetParallelism(4)
	r3 := ABPeak(telemScale)

	if r1.String() != r2.String() {
		t.Fatal("repeated serial runs rendered differently")
	}
	if r1.String() != r3.String() {
		t.Fatal("parallel run rendered differently from serial")
	}
	b1, b2, b3 := encodeTimelines(t, r1), encodeTimelines(t, r2), encodeTimelines(t, r3)
	if len(b1) == 0 {
		t.Fatal("no telemetry output")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("repeated serial runs scraped differently")
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("parallel run scraped differently from serial")
	}
	if len(r1.Timelines) != 2 {
		t.Fatalf("got %d timelines, want 2 (one per arm)", len(r1.Timelines))
	}
	for i, reg := range r1.Timelines {
		if reg.NumScrapes() < 2 {
			t.Fatalf("arm %d: only %d scrapes", i, reg.NumScrapes())
		}
	}
}

// TestABPeakTelemetryReconciles: the cumulative telemetry counters must
// equal the SessionQoE aggregates exactly — and, since the run also traces,
// the frame-lifecycle totals as well. The reconciliation tables carry all
// three columns; any mismatch is a missed or double-counted hook.
func TestABPeakTelemetryReconciles(t *testing.T) {
	res := ABPeak(telemScale)
	recs := 0
	for _, tbl := range res.Tables {
		if !strings.HasPrefix(tbl.Title, "Telemetry reconciliation:") {
			continue
		}
		recs++
		for _, row := range tbl.Rows {
			metric, tm, qoe, tr := row[0], row[1], row[2], row[3]
			if tm != qoe {
				t.Errorf("%s: %s: telemetry %s != qoe %s", tbl.Title, metric, tm, qoe)
			}
			if tr != "-" && tm != tr {
				t.Errorf("%s: %s: telemetry %s != trace %s", tbl.Title, metric, tm, tr)
			}
			if tm == "0" && metric == "frames played" {
				t.Errorf("%s: no frames played recorded", tbl.Title)
			}
		}
	}
	if recs != 2 {
		t.Fatalf("found %d reconciliation tables, want 2", recs)
	}
	if len(res.Traces) != 2 {
		t.Fatalf("got %d traces, want 2 (telemScale sets Trace)", len(res.Traces))
	}
}

// TestABBaselineTelemetryOptIn: ab-baseline records timelines only when
// Scale.Telemetry is set, and an enabled run scrapes real data.
func TestABBaselineTelemetryOptIn(t *testing.T) {
	sc := telemScale
	sc.Trace = false
	sc.Duration = 5 * time.Second
	res := ABBaseline(sc)
	if len(res.Timelines) != 0 {
		t.Fatalf("telemetry off: got %d timelines, want 0", len(res.Timelines))
	}
	sc.Telemetry = true
	res = ABBaseline(sc)
	if len(res.Timelines) != 2 {
		t.Fatalf("telemetry on: got %d timelines, want 2", len(res.Timelines))
	}
	for i, reg := range res.Timelines {
		last := reg.NumScrapes() - 1
		if last < 0 {
			t.Fatalf("arm %d: no scrapes", i)
		}
		if reg.CounterAt(last, "client.frames_played") == 0 {
			t.Errorf("arm %d: frames_played counter never incremented", i)
		}
	}
}

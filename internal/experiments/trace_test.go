package experiments

import (
	"bytes"
	"strconv"
	"testing"
	"time"

	"repro/internal/trace"
)

// traceScale keeps the determinism test fast while still exercising losses
// and recovery under evening-peak pressure.
var traceScale = Scale{
	BestEffort: 32, Dedicated: 1, Clients: 8,
	Duration: 15 * time.Second, Seed: 7, Trace: true,
}

// encodeTraces renders a result's traces exactly as the CLI -trace flag
// does: concatenated JSONL in cell order.
func encodeTraces(t *testing.T, res *Result) []byte {
	t.Helper()
	var w bytes.Buffer
	for _, r := range res.Traces {
		if err := r.WriteJSONL(&w); err != nil {
			t.Fatal(err)
		}
	}
	return w.Bytes()
}

// TestABBaselineTraceDeterministic: the CI determinism gate's property —
// repeated same-seed runs, serial or parallel, produce byte-identical
// rendered output and byte-identical trace JSONL.
func TestABBaselineTraceDeterministic(t *testing.T) {
	serialAfter(t)
	r1 := ABBaseline(traceScale)
	r2 := ABBaseline(traceScale)
	SetParallelism(4)
	r3 := ABBaseline(traceScale)

	if r1.String() != r2.String() {
		t.Fatal("repeated serial runs rendered differently")
	}
	if r1.String() != r3.String() {
		t.Fatal("parallel run rendered differently from serial")
	}
	b1, b2, b3 := encodeTraces(t, r1), encodeTraces(t, r2), encodeTraces(t, r3)
	if len(b1) == 0 {
		t.Fatal("no trace output")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("repeated serial runs traced differently")
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("parallel run traced differently from serial")
	}
	if len(r1.Traces) != 2 {
		t.Fatalf("got %d traces, want 2 (one per arm)", len(r1.Traces))
	}
}

// TestABBaselineTraceReconciles: traced playout and loss totals must equal
// the metrics.SessionQoE aggregates — every played frame records exactly
// one KPlayed, every lost frame exactly one KLost (classified by cause).
func TestABBaselineTraceReconciles(t *testing.T) {
	res := ABBaseline(traceScale)
	if len(res.Traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(res.Traces))
	}
	// The reconciliation rows printed per arm carry the QoE totals; parse
	// them back out of the rendered tables and compare with the trace
	// summaries directly.
	for i, run := range res.Traces {
		s := trace.Summarize(run)
		tbl := res.Tables[1+i] // table 0 is the headline comparison
		var qoePlayed, qoeLost int
		for _, row := range tbl.Rows {
			switch row[0] {
			case "qoe frames played":
				qoePlayed, _ = strconv.Atoi(row[1])
			case "qoe frames lost":
				qoeLost, _ = strconv.Atoi(row[1])
			}
		}
		if s.Played == 0 {
			t.Fatalf("arm %d: no KPlayed events", i)
		}
		if s.Played != qoePlayed {
			t.Errorf("arm %d: traced played %d != QoE played %d", i, s.Played, qoePlayed)
		}
		if s.Lost != qoeLost {
			t.Errorf("arm %d: traced lost %d != QoE lost %d", i, s.Lost, qoeLost)
		}
		// Cause breakdown partitions the losses.
		var byCause int
		for _, n := range s.LossByCause {
			byCause += n
		}
		if byCause != s.Lost {
			t.Errorf("arm %d: cause breakdown sums to %d, not %d", i, byCause, s.Lost)
		}
	}
}

// TestABBaselineUntracedHasNoTraces: without Scale.Trace the experiment
// must not allocate trace state.
func TestABBaselineUntracedHasNoTraces(t *testing.T) {
	sc := traceScale
	sc.Trace = false
	sc.Duration = 5 * time.Second
	res := ABBaseline(sc)
	if len(res.Traces) != 0 {
		t.Fatalf("untraced run returned %d traces", len(res.Traces))
	}
	if len(res.Tables) != 1 {
		t.Fatalf("untraced run rendered %d tables, want 1", len(res.Tables))
	}
}

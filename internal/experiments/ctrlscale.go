package experiments

import (
	"fmt"
	"time"

	"repro/internal/alerting"
	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/ctrlplane"
	"repro/internal/telemetry"
)

// ctrlScaleMults are the viewer-fleet multipliers of the flatness sweep.
var ctrlScaleMults = []int{1, 10, 100}

// ctrlScaleMeasure is the steady-state window over which Part A counts
// control-plane messages.
const ctrlScaleMeasure = 20 * time.Second

// ctrlScaleSystem builds and warms one deployment for the ctrl-scale
// experiment: fixed edge fleet, viewer count chosen by the caller, churn
// off so the message-rate measurement is clean. ctrl switches between the
// distributed control plane (sharded schedulers + LKG caches) and the
// direct single-scheduler baseline. reg/eng, when set, attach a 1 s scrape
// timeline and the SLO alert engine (Part B fault arms).
func ctrlScaleSystem(sc Scale, clients int, ctrl bool, reg *telemetry.Registry, eng *alerting.Engine) *core.System {
	cfg := core.Config{
		Seed:          sc.Seed,
		NumDedicated:  1,
		NumBestEffort: sc.BestEffort,
		Regions:       obsRegions,
		Mode:          client.ModeRLive,
		ABRLadder:     abLadder,
		// ~10% headroom over the top ladder rung: the pre-fault system is
		// clean (no SLO burn before injection), while the origin-saturation
		// squeeze in Part B still cuts capacity well below demand.
		DedicatedUplinkBps: 3.2e6 * float64(clients),
		ControlPlane:       ctrl,
	}
	if reg != nil {
		cfg.Telemetry = reg
		cfg.TelemetryScrapeEvery = obsScrapeEvery
		cfg.Alerting = eng
	}
	s := core.NewSystem(cfg)
	s.Start()
	for i := 0; i < clients; i++ {
		s.AddClient(core.ClientSpec{Region: i % obsRegions, ISP: i % 2})
		s.Run(500 * time.Millisecond / time.Duration(max(1, clients/16)))
	}
	// Settle: LKG caches prime, heartbeat/gossip cadences reach steady
	// state, the post-ramp re-allocation burst flushes, and (Part B) the
	// anomaly rules collect their baselines before the engine is armed.
	s.Run(20 * time.Second)
	return s
}

// ctrlOutageScenario is Part B's compound drill: total control-plane death
// for 60 s with a churn storm in the middle, so surviving on last-known-good
// state requires making *new* allocation decisions, not just keeping
// established sessions alive. The origin is squeezed for the same window:
// without autonomy the only remaining move is full CDN fallback into a
// saturated origin, which is where the no-LKG arm pays.
func ctrlOutageScenario() chaos.Scenario {
	return chaos.Scenario{
		Name: "sched-outage",
		Events: []chaos.Event{
			{Kind: chaos.SchedulerOutage, Start: 25 * time.Second, Duration: 60 * time.Second},
			{Kind: chaos.ChurnStorm, Start: 35 * time.Second, Duration: 25 * time.Second, Severity: 0.5},
			{Kind: chaos.OriginSaturation, Start: 35 * time.Second, Duration: 50 * time.Second, Severity: 0.3},
		},
		Tail:          35 * time.Second,
		ContinuityMin: 0.6,
	}
}

// ctrlScaleCell is one cell's outcome; Part A cells fill rate, Part B
// fault arms fill rep (+rec), the no-fault baseline fills qoe directly.
type ctrlScaleCell struct {
	viewers int
	rate    float64 // control-plane msgs/s over the measure window

	rep *chaos.Report
	qoe [4]float64 // rebuf/100s, stall ms/100s, bitrate bps, e2e p50 ms
	rec *AlertRecord
	log *ctrlplane.EventLog
}

// CtrlScale measures the distributed control plane's headline claims.
//
// Part A (flatness): the control-plane message rate — shard gossip,
// snapshot pushes, heartbeats, whatever still reaches a scheduler tier —
// stays flat as the viewer fleet grows 10–100x, because allocation queries
// are answered from last-known-good caches at the data plane. The direct
// single-scheduler baseline's rate grows with the fleet.
//
// Part B (autonomy): under total scheduler loss with a concurrent churn
// storm, the LKG arm holds the resilience invariants (zero allocation
// stalls) and stays within tolerance of its own no-fault baseline, while
// the direct arm degrades. Both fault arms run with telemetry and the SLO
// alert engine armed, scored against ground truth (Result.Alerts); the
// ctrl arms record snapshot/gossip event logs (Result.Ctrl, the -ctrl
// flag).
func CtrlScale(sc Scale) *Result {
	if sc.Clients < 8 {
		sc.Clients = 8
	}
	if sc.BestEffort < 32 {
		sc.BestEffort = 32
	}
	base := max(1, sc.Clients/8)
	scen := ctrlOutageScenario()

	nA := 2 * len(ctrlScaleMults)
	cells := RunCells(nA+3, func(i int) *ctrlScaleCell {
		if i < nA {
			// Part A: multiplier m, ctrl arm on even i, direct on odd.
			viewers := base * ctrlScaleMults[i/2]
			ctrl := i%2 == 0
			sys := ctrlScaleSystem(sc, viewers, ctrl, nil, nil)
			m0 := sys.ControlMsgs()
			sys.Run(ctrlScaleMeasure)
			m1 := sys.ControlMsgs()
			return &ctrlScaleCell{
				viewers: viewers,
				rate:    float64(m1-m0) / ctrlScaleMeasure.Seconds(),
			}
		}
		switch i - nA {
		case 0: // ctrl + LKG, under fault
			label := "ctrl-scale/outage-lkg"
			reg := telemetry.NewRegistry(label, sc.Seed)
			sc.watch(reg)
			eng := alerting.NewEngine(label, sc.Seed, alerting.ChaosRules(obsRegions, sc.Clients))
			sys := ctrlScaleSystem(sc, sc.Clients, true, reg, eng)
			log := &ctrlplane.EventLog{Label: label}
			sys.Ctrl.AttachLog(log)
			startNs := int64(sys.Sim.Now())
			eng.Arm(startNs)
			checkers := append(scen.Checkers(), chaos.NewLKGAutonomyChecker())
			rep := chaos.Run(sys, scen, checkers)
			card := alerting.ScoreDetection(scen.Name, obsWindows(scen, startNs), eng.Incidents(), int64(obsGrace))
			return &ctrlScaleCell{
				rep: rep,
				rec: &AlertRecord{Engine: eng, Scorecard: card},
				log: log,
			}
		case 1: // direct scheduler, under fault
			label := "ctrl-scale/outage-direct"
			reg := telemetry.NewRegistry(label, sc.Seed)
			sc.watch(reg)
			eng := alerting.NewEngine(label, sc.Seed, alerting.ChaosRules(obsRegions, sc.Clients))
			sys := ctrlScaleSystem(sc, sc.Clients, false, reg, eng)
			startNs := int64(sys.Sim.Now())
			eng.Arm(startNs)
			checkers := append(scen.Checkers(), chaos.NewLKGAutonomyChecker())
			rep := chaos.Run(sys, scen, checkers)
			card := alerting.ScoreDetection(scen.Name, obsWindows(scen, startNs), eng.Incidents(), int64(obsGrace))
			return &ctrlScaleCell{
				rep: rep,
				rec: &AlertRecord{Engine: eng, Scorecard: card},
			}
		default: // ctrl + LKG, no fault: the tolerance baseline
			sys := ctrlScaleSystem(sc, sc.Clients, true, nil, nil)
			log := &ctrlplane.EventLog{Label: "ctrl-scale/no-fault"}
			sys.Ctrl.AttachLog(log)
			sys.Run(scen.Total())
			agg := sys.Aggregate()
			return &ctrlScaleCell{
				qoe: [4]float64{agg.Rebuffer.Mean(), agg.StallTime.Mean(),
					agg.Bitrate.Mean(), agg.E2EMs.Percentile(50)},
				log: log,
			}
		}
	})

	// Part A tables + series.
	flat := &Table{ID: "ctrl-scale", Title: "Control-plane message rate vs viewer fleet (fixed edge fleet)",
		Header: []string{"viewers", "ctrl msgs/s", "ctrl /viewer", "direct msgs/s", "direct /viewer"}}
	ser := &Series{ID: "ctrl-scale", Title: "Control-plane message rate (distributed shards + LKG)",
		XLabel: "viewers", YLabel: "msgs/s"}
	for m := range ctrlScaleMults {
		c, d := cells[2*m], cells[2*m+1]
		flat.AddRow(fmt.Sprint(c.viewers),
			f2(c.rate), fmt.Sprintf("%.3f", c.rate/float64(c.viewers)),
			f2(d.rate), fmt.Sprintf("%.3f", d.rate/float64(d.viewers)))
		ser.Add(float64(c.viewers), c.rate)
	}
	growth := func(a, b float64) string {
		if a == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", b/a)
	}
	last := len(ctrlScaleMults) - 1
	flat.AddRow(fmt.Sprintf("growth %dx->%dx", ctrlScaleMults[0], ctrlScaleMults[last]),
		growth(cells[0].rate, cells[2*last].rate), "",
		growth(cells[1].rate, cells[2*last+1].rate), "")

	// Part B tables.
	ctrlRep, dirRep, noFault := cells[nA], cells[nA+1], cells[nA+2]
	inv := &Table{ID: "ctrl-scale", Title: "Invariants under scheduler outage + churn storm",
		Header: []string{"invariant", "ctrl+lkg", "no-ctrl", "detail (ctrl+lkg)"}}
	st := func(pass bool) string {
		if pass {
			return "PASS"
		}
		return "FAIL"
	}
	for i, v := range ctrlRep.rep.Verdicts {
		inv.AddRow(v.Name, st(v.Pass), st(dirRep.rep.Verdicts[i].Pass), v.Detail)
	}

	qoe := &Table{ID: "ctrl-scale", Title: "QoE under control-plane death: LKG autonomy vs no-fault baseline",
		Header: []string{"metric", "ctrl+lkg (fault)", "ctrl (no fault)", "no-ctrl (fault)"}}
	qoe.AddRow("rebuffering /100s", f2(ctrlRep.rep.RebufPer100), f2(noFault.qoe[0]), f2(dirRep.rep.RebufPer100))
	qoe.AddRow("stall ms /100s", f0(ctrlRep.rep.StallPer100), f0(noFault.qoe[1]), f0(dirRep.rep.StallPer100))
	qoe.AddRow("bitrate (Mbps)", f2(ctrlRep.rep.BitrateBps/1e6), f2(noFault.qoe[2]/1e6), f2(dirRep.rep.BitrateBps/1e6))
	qoe.AddRow("E2E latency P50 (ms)", f0(ctrlRep.rep.E2EP50Ms), f0(noFault.qoe[3]), f0(dirRep.rep.E2EP50Ms))

	det := &Table{ID: "ctrl-scale", Title: "Outage detection (SLO alert engine, both fault arms)",
		Header: []string{"arm", "faults", "detected", "ttd (s)", "incidents", "false alarms"}}
	for _, a := range []struct {
		name string
		cell *ctrlScaleCell
	}{{"ctrl+lkg", ctrlRep}, {"no-ctrl", dirRep}} {
		card := &a.cell.rec.Scorecard
		det.AddRow(a.name, fmt.Sprint(len(card.Windows)), fmt.Sprint(card.Detected()),
			f2(card.MeanTTD()), fmt.Sprint(card.Incidents), fmt.Sprint(card.FalseAlarms))
	}

	tl := &Table{ID: "ctrl-scale", Title: "Fault timeline (ctrl+lkg arm)",
		Header: []string{"event"}}
	for _, l := range ctrlRep.rep.Timeline {
		tl.AddRow(l)
	}

	return &Result{
		ID:     "ctrl-scale",
		Tables: []*Table{flat, inv, qoe, det, tl},
		Series: []*Series{ser},
		Alerts: []*AlertRecord{ctrlRep.rec, dirRep.rec},
		Ctrl:   []*ctrlplane.EventLog{ctrlRep.log, noFault.log},
	}
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/media"
	"repro/internal/nat"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// ablRun runs a lossy RLive deployment with config hooks applied.
func ablRun(sc Scale, tune func(*core.Config)) *core.System {
	cfg := core.Config{
		Seed:          sc.Seed,
		NumDedicated:  sc.Dedicated,
		NumBestEffort: sc.BestEffort,
		Mode:          client.ModeRLive,
	}
	if tune != nil {
		tune(&cfg)
	}
	s := core.NewSystem(cfg)
	for _, n := range s.Fleet.BestEffort {
		s.Net.UpdateState(n.Addr, func(st *simnet.LinkState) {
			st.LossRate += 0.015
		})
	}
	s.Start()
	for i := 0; i < sc.Clients; i++ {
		s.AddClient(core.ClientSpec{Region: i % 4, ISP: i % 2})
		s.Run(200 * time.Millisecond)
	}
	s.Run(sc.Duration)
	return s
}

// AblationChainLength sweeps the local chain length δ. Short chains lose
// ordering robustness under packet loss (more gap repairs and dedicated
// fetches); δ = 4 (the paper's choice) buys robustness at modest per-packet
// byte overhead.
func AblationChainLength(sc Scale) *Result {
	tbl := &Table{ID: "abl-chain", Title: "Chain length (delta) ablation",
		Header: []string{"delta", "rebuf/100s", "gap repairs", "ded. fetches", "chain bytes/pkt"}}
	deltas := []int{1, 2, 4, 8}
	for _, row := range RunCells(len(deltas), func(i int) []string {
		d := deltas[i]
		s := ablRun(sc, func(cfg *core.Config) {
			cfg.EdgeTune = func(ec *edge.Config) { ec.ChainDelta = d }
		})
		m := measure(s)
		rec := s.Recovery()
		return []string{fmt.Sprintf("%d", d), f2(m.rebufPer100),
			f0(float64(rec.GapRepairs)), f0(float64(rec.DedicatedFetch)),
			fmt.Sprintf("%d", d*14)}
	}) {
		tbl.AddRow(row...)
	}
	return &Result{ID: "abl-chain", Tables: []*Table{tbl}}
}

// AblationSubstreamCount sweeps K. K=1 degenerates to single-source
// fragility; large K multiplies control/connection overhead for thinning
// returns.
func AblationSubstreamCount(sc Scale) *Result {
	tbl := &Table{ID: "abl-k", Title: "Substream count (K) ablation",
		Header: []string{"K", "rebuf/100s", "E2E P50 (ms)", "edge switches", "fallbacks"}}
	ks := []int{1, 2, 4, 8}
	for _, row := range RunCells(len(ks), func(i int) []string {
		kk := ks[i]
		s := ablRun(sc, func(cfg *core.Config) {
			cfg.K = kk
			cfg.ChurnEnabled = true
			cfg.LifespanMedian = 3 * time.Minute
		})
		m := measure(s)
		rec := s.Recovery()
		return []string{fmt.Sprintf("%d", kk), f2(m.rebufPer100), f0(m.e2eP50),
			f0(float64(rec.EdgeSwitches)), f0(float64(rec.FullFallbacks))}
	}) {
		tbl.AddRow(row...)
	}
	return &Result{ID: "abl-k", Tables: []*Table{tbl}}
}

// AblationProbeCount sweeps the startup probe fan-out. The paper limits
// probing to 3 candidates: A/B tests showed more yields <1% success-rate
// gain while probe overhead grows linearly.
func AblationProbeCount(sc Scale) *Result {
	tbl := &Table{ID: "abl-probe", Title: "Probe fan-out ablation",
		Header: []string{"probes", "startup P50 (ms)", "rebuf/100s", "probe msgs"}}
	probes := []int{1, 2, 3, 4, 5}
	for _, row := range RunCells(len(probes), func(i int) []string {
		pp := probes[i]
		s := ablRun(sc, func(cfg *core.Config) {
			cfg.ClientTune = func(cc *client.Config) { cc.ProbeCount = pp }
		})
		agg := s.Aggregate()
		m := measure(s)
		return []string{fmt.Sprintf("%d", pp), f0(agg.Startup.Percentile(50)), f2(m.rebufPer100),
			fmt.Sprintf("~%dx", pp)}
	}) {
		tbl.AddRow(row...)
	}
	return &Result{ID: "abl-probe", Tables: []*Table{tbl}}
}

// AblationExploreExploit compares the scheduler with and without the
// explore fraction (§8.2). Pure exploitation concentrates load on
// historically good nodes and starves fresh ones of traffic/telemetry.
func AblationExploreExploit(sc Scale) *Result {
	// Pure exploitation concentrates sessions on the historically
	// best-scored nodes; the explore fraction spreads load so fresh and
	// idle nodes attract traffic (and telemetry). Measured as load
	// concentration across edges.
	if sc.Clients < 24 {
		sc.Clients = 24
	}
	tbl := &Table{ID: "abl-explore", Title: "Scheduler explore-exploit ablation",
		Header: []string{"explore", "rebuf/100s", "active edges", "max sessions/edge"}}
	// A true 0 (pure exploitation): ExploreFrac is pointer-typed so an
	// explicit zero no longer collapses into the 0.25 default.
	grid := []float64{0, 0.25}
	for _, row := range RunCells(len(grid), func(i int) []string {
		e := grid[i]
		s := ablRun(sc, func(cfg *core.Config) {
			cfg.SchedulerConfig.ExploreFrac = scheduler.Frac(e)
			cfg.ChurnEnabled = true
			cfg.LifespanMedian = 3 * time.Minute
		})
		m := measure(s)
		active, maxSess := 0, 0
		for _, en := range s.Edges {
			if n := en.Sessions(); n > 0 {
				active++
				if n > maxSess {
					maxSess = n
				}
			}
		}
		return []string{fmt.Sprintf("%.2f", e), f2(m.rebufPer100),
			fmt.Sprintf("%d", active), fmt.Sprintf("%d", maxSess)}
	}) {
		tbl.AddRow(row...)
	}
	return &Result{ID: "abl-explore", Tables: []*Table{tbl}}
}

// AblationPartitionHash compares FNV-1a substream assignment against plain
// dts modulo (§6): the hash decorrelates consecutive large frames from a
// single substream, smoothing per-relay burstiness.
func AblationPartitionHash(sc Scale) *Result {
	// 25 fps: the inter-frame dts step (40 ms) is divisible by K=4, so
	// plain "dts mod K" degenerates — every frame lands on one
	// substream. The FNV-1a hash is insensitive to the dts pattern.
	src := media.NewSource(media.SourceConfig{Stream: 1, FPS: 25, BitrateBps: 2e6, GoPFrames: 25}, stats.NewRNG(sc.Seed))
	frames := make([]media.Frame, 9000)
	for i := range frames {
		frames[i] = src.Next(0)
	}
	type acc struct {
		// maxShare tracks the worst single-substream byte share of any
		// 1-second window — the burstiness signal.
		maxShare float64
		longest  int
	}
	run := func(plain bool) acc {
		part := media.Partitioner{K: 4, PlainModulo: plain}
		var a acc
		var window [4]float64
		prev := media.SubstreamID(255)
		runLen := 0
		for i, f := range frames {
			ss := part.Assign(f.Dts)
			window[ss] += float64(f.Size)
			if ss == prev {
				runLen++
			} else {
				runLen = 1
				prev = ss
			}
			if runLen > a.longest {
				a.longest = runLen
			}
			if (i+1)%25 == 0 { // 1-second window at 25 fps
				var tot, mx float64
				for k := range window {
					tot += window[k]
					if window[k] > mx {
						mx = window[k]
					}
					window[k] = 0
				}
				if tot > 0 && mx/tot > a.maxShare {
					a.maxShare = mx / tot
				}
			}
		}
		return a
	}
	hashAcc := run(false)
	plainAcc := run(true)

	tbl := &Table{ID: "abl-hash", Title: "Substream partitioning: FNV-1a vs plain modulo",
		Header: []string{"scheme", "max 1s substream share", "longest same-ss run"}}
	tbl.AddRow("fnv1a", f2(hashAcc.maxShare), fmt.Sprintf("%d", hashAcc.longest))
	tbl.AddRow("plain modulo", f2(plainAcc.maxShare), fmt.Sprintf("%d", plainAcc.longest))
	return &Result{ID: "abl-hash", Tables: []*Table{tbl}}
}

// AblationNATRefinement reproduces the §8.1 deployment experience: the
// fine-grained NAT classification plus targeted traversal (port prediction
// for incremental symmetric NATs, TTL tuning for sequential filters)
// expands the usable node pool by ~22%. Measured both analytically (the
// traversal model over the population mix) and end to end (probe success
// in a full deployment).
func AblationNATRefinement(sc Scale) *Result {
	tbl := &Table{ID: "abl-nat", Title: "NAT traversal refinement (§8.1)",
		Header: []string{"traversal", "usable pool (model)", "probe answer rate (measured)", "paper"}}
	for _, row := range RunCells(2, func(i int) []string {
		refined := i == 1
		s := ablRun(sc, func(cfg *core.Config) { cfg.RefinedNAT = refined })
		var sent, answered uint64
		for _, c := range s.Clients {
			sent += c.ProbesSent
			answered += c.ProbeAnswers
		}
		rate := 0.0
		if sent > 0 {
			rate = float64(answered) / float64(sent)
		}
		name := "rfc5780 baseline"
		if refined {
			name = "refined (port-pred + TTL)"
		}
		return []string{name, f2(nat.UsablePoolFraction(refined)), f2(rate), ""}
	}) {
		tbl.AddRow(row...)
	}
	base := nat.UsablePoolFraction(false)
	refined := nat.UsablePoolFraction(true)
	tbl.AddRow("pool expansion", pct((refined-base)/base), "-", "~+22%")
	return &Result{ID: "abl-nat", Tables: []*Table{tbl}}
}

// AblationRedundancy compares redundancy-free RLive against duplicate
// multi-source delivery (prior work's approach): redundancy buys little QoE
// here while roughly doubling best-effort bytes — the bandwidth-efficiency
// argument behind the redundancy-free design (§2.3).
func AblationRedundancy(sc Scale) *Result {
	tbl := &Table{ID: "abl-redundant", Title: "Redundancy-free vs duplicate multi-source",
		Header: []string{"scheme", "rebuf/100s", "E2E P50 (ms)", "BE bytes (MB)", "EqT (MB-eq)"}}
	for _, row := range RunCells(2, func(i int) []string {
		rr := i + 1
		s := ablRun(sc, func(cfg *core.Config) { cfg.Redundancy = rr })
		m := measure(s)
		_, be := s.ServedBytes()
		name := "redundancy-free"
		if rr == 2 {
			name = "duplicate (2x)"
		}
		return []string{name, f2(m.rebufPer100), f0(m.e2eP50), f0(be / 1e6), f0(s.EqT() / 1e6)}
	}) {
		tbl.AddRow(row...)
	}
	return &Result{ID: "abl-redundant", Tables: []*Table{tbl}}
}

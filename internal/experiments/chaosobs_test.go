package experiments

import (
	"bytes"
	"testing"

	"repro/internal/chaos"
)

// encodeAlerts renders a result's alert records exactly as the CLI -alerts
// flag does: concatenated JSONL (incident log then scorecard) in cell order.
func encodeAlerts(t *testing.T, res *Result) []byte {
	t.Helper()
	var w bytes.Buffer
	for _, a := range res.Alerts {
		if err := a.WriteJSONL(&w); err != nil {
			t.Fatal(err)
		}
	}
	return w.Bytes()
}

// TestChaosObsDetectionAndDeterminism is the acceptance gate for the
// observability drill at the default seed: every single-fault scenario in
// the chaos catalog is detected (recall 1.0) with a time-to-detect, no
// incident opens during the pre-fault warmup, and the incident/scorecard
// JSONL is byte-identical between a serial and a -parallel 4 run.
func TestChaosObsDetectionAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos-obs drill skipped in -short mode")
	}
	if raceEnabled {
		// Two full-catalog chaos-obs runs no longer fit the per-package
		// timeout under the race detector now that the catalog includes the
		// control-plane scenario. The same serial-vs-parallel byte identity
		// is enforced without -race by the `make alerting` CI gate.
		t.Skip("chaos-obs drill skipped under -race")
	}
	serialAfter(t)
	r1 := ChaosObs(Quick)
	SetParallelism(4)
	r2 := ChaosObs(Quick)

	if r1.String() != r2.String() {
		t.Fatal("parallel run rendered differently from serial")
	}
	b1, b2 := encodeAlerts(t, r1), encodeAlerts(t, r2)
	if len(b1) == 0 {
		t.Fatal("no alert output")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("parallel run's alert JSONL differs from serial")
	}

	if want := len(chaos.Catalog()); len(r1.Alerts) != want {
		t.Fatalf("got %d alert records, want %d (one per catalog scenario)", len(r1.Alerts), want)
	}
	for _, rec := range r1.Alerts {
		card := &rec.Scorecard
		if got := card.Recall(); got != 1 {
			t.Errorf("%s: recall %.2f, want 1.00 (missed %v)", card.Scenario, got, card.MissedList())
		}
		if card.WarmupFalseAlarms != 0 {
			t.Errorf("%s: %d incidents opened before the first fault", card.Scenario, card.WarmupFalseAlarms)
		}
		for _, w := range card.Windows {
			if !w.Detected {
				continue
			}
			if w.TTDNs < 0 {
				t.Errorf("%s: window %q detected with negative TTD %d", card.Scenario, w.Label, w.TTDNs)
			}
			if w.Rule == "" {
				t.Errorf("%s: window %q detected without a firing rule", card.Scenario, w.Label)
			}
		}
		if len(rec.Engine.Incidents()) == 0 {
			t.Errorf("%s: no incidents at all", card.Scenario)
		}
	}
}

package ctrlplane

import (
	"testing"
	"time"

	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// testPlane wires a plane with one shard per region over a fresh simnet,
// registering quota-bearing pool nodes spread across regions.
func testPlane(t *testing.T, regions, nodes int) (*simnet.Sim, *Plane) {
	t.Helper()
	rng := stats.NewRNG(11)
	sim := simnet.NewSim()
	net := simnet.NewNetwork(sim, rng.Fork())
	p := New(Config{Regions: regions}, sim, net)
	for r := 0; r < regions; r++ {
		sched := scheduler.New(scheduler.Config{}, rng.Fork(), func() time.Duration { return sim.Now() })
		sh := p.AddShard(sched, rng.Fork())
		net.Register(sh.Addr, simnet.LinkState{UplinkBps: 100e9, BaseOWD: 5 * time.Millisecond},
			func(from simnet.Addr, msg any) { sh.Handle(from, msg) })
	}
	for i := 0; i < nodes; i++ {
		addr := simnet.Addr(1000 + i)
		net.Register(addr, simnet.LinkState{UplinkBps: 50e6, BaseOWD: 10 * time.Millisecond}, nil)
		p.RegisterNode(addr, scheduler.StaticFeatures{Region: i % regions, ISP: i % 2, CostUnit: 1}, 8)
	}
	return sim, p
}

// TestGossipConvergence: with gossip running, every shard learns every
// region's view and divergence stays within a couple of epochs of the
// owners.
func TestGossipConvergence(t *testing.T) {
	sim, p := testPlane(t, 4, 16)
	p.Start()
	sim.Run(simnet.Time(30 * time.Second))
	for i, sh := range p.Shards {
		for r := 0; r < 4; r++ {
			if sh.snaps[r].Epoch == 0 {
				t.Fatalf("shard %d has no view of region %d after 30s", i, r)
			}
		}
	}
	if lag := p.MaxEpochLag(); lag > 3 {
		t.Fatalf("steady-state shard divergence %d epochs, want <= 3", lag)
	}
	if p.GossipRounds() == 0 {
		t.Fatal("no gossip rounds ran")
	}
}

// TestGossipPartitionDivergesAndHeals: cutting the gossip mesh makes
// cross-half epochs diverge roughly one epoch per snapshot period; healing
// the cut re-converges within a few gossip rounds.
func TestGossipPartitionDivergesAndHeals(t *testing.T) {
	sim, p := testPlane(t, 4, 16)
	p.Start()
	sim.Run(simnet.Time(10 * time.Second))

	p.SetGossipPartition(true)
	sim.Run(simnet.Time(50 * time.Second))
	lag := p.MaxEpochLag()
	if lag < 10 {
		t.Fatalf("divergence after 40s partition = %d epochs, want >= 10", lag)
	}

	p.SetGossipPartition(false)
	sim.Run(simnet.Time(65 * time.Second))
	if healed := p.MaxEpochLag(); healed > 3 {
		t.Fatalf("divergence %d epochs 15s after heal, want <= 3 (was %d)", healed, lag)
	}
}

// TestDownFreezesEpochsAndDropsMessages: while the plane is down, inbound
// ctrl traffic is dropped and counted, epochs freeze, and everything
// resumes on revival.
func TestDownFreezesEpochsAndDropsMessages(t *testing.T) {
	sim, p := testPlane(t, 2, 8)
	p.Start()
	sim.Run(simnet.Time(10 * time.Second))
	e0 := p.Shards[0].snaps[0].Epoch

	p.SetDown(true)
	sim.Run(simnet.Time(30 * time.Second))
	if e := p.Shards[0].snaps[0].Epoch; e != e0 {
		t.Fatalf("epoch advanced from %d to %d while down", e0, e)
	}

	p.SetDown(false)
	sim.Run(simnet.Time(40 * time.Second))
	if e := p.Shards[0].snaps[0].Epoch; e <= e0 {
		t.Fatalf("epoch did not resume after revival (still %d)", e)
	}
}

// TestPushRetryUntilAck: an edge that never acks sees MaxRetries attempts
// of one push round; an acking edge sees exactly one.
func TestPushRetryUntilAck(t *testing.T) {
	rng := stats.NewRNG(11)
	sim := simnet.NewSim()
	net := simnet.NewNetwork(sim, rng.Fork())
	p := New(Config{Regions: 1}, sim, net)
	sched := scheduler.New(scheduler.Config{}, rng.Fork(), func() time.Duration { return sim.Now() })
	sh := p.AddShard(sched, rng.Fork())
	net.Register(sh.Addr, simnet.LinkState{UplinkBps: 100e9, BaseOWD: 5 * time.Millisecond},
		func(from simnet.Addr, msg any) { sh.Handle(from, msg) })

	addr := simnet.Addr(1000)
	net.Register(addr, simnet.LinkState{UplinkBps: 50e6, BaseOWD: 10 * time.Millisecond}, nil)
	p.RegisterNode(addr, scheduler.StaticFeatures{Region: 0, CostUnit: 1}, 8)

	silent, acking := simnet.Addr(2000), simnet.Addr(2001)
	var silentGot, ackingGot int
	net.Register(silent, simnet.LinkState{UplinkBps: 50e6, BaseOWD: 10 * time.Millisecond},
		func(from simnet.Addr, msg any) {
			if _, ok := msg.(*SnapshotPush); ok {
				silentGot++
			}
		})
	net.Register(acking, simnet.LinkState{UplinkBps: 50e6, BaseOWD: 10 * time.Millisecond},
		func(from simnet.Addr, msg any) {
			if m, ok := msg.(*SnapshotPush); ok {
				ackingGot++
				net.Send(acking, from, 52, &SnapshotAck{Region: 0, Seq: m.Seq, OK: true})
			}
		})
	p.RegisterEdge(0, silent)
	p.RegisterEdge(0, acking)
	p.Start()

	// One push round at t=5s; retries at ~7s and ~9s; next round at 10s.
	sim.Run(simnet.Time(9500 * time.Millisecond))
	if silentGot != p.Cfg.MaxRetries {
		t.Fatalf("silent edge got %d pushes, want %d (initial + retries)", silentGot, p.Cfg.MaxRetries)
	}
	if ackingGot != 1 {
		t.Fatalf("acking edge got %d pushes, want 1", ackingGot)
	}
}

// TestLKGMergeAndServe: per-region epoch merge semantics, deterministic
// candidate ranking, and exclusion/quota filtering.
func TestLKGMergeAndServe(t *testing.T) {
	now := simnet.Time(0)
	l := NewLKG(2, 0, 9999, func() simnet.Time { return now })
	if l.Has() {
		t.Fatal("empty cache claims a view")
	}
	if l.Candidates(scheduler.ClientInfo{Addr: 9999}, 4, nil) != nil {
		t.Fatal("empty cache served candidates")
	}

	snapA := Snapshot{Regions: []RegionSnap{{Region: 0, Epoch: 3, Nodes: []NodeEntry{
		{Addr: 1000, Static: scheduler.StaticFeatures{Region: 0, ISP: 0, CostUnit: 1}, ResidualBps: 80e6, ConnSuccess: 0.9, QuotaLeft: 4},
		{Addr: 1001, Static: scheduler.StaticFeatures{Region: 0, ISP: 1, CostUnit: 1}, ResidualBps: 80e6, ConnSuccess: 0.9, QuotaLeft: 4},
		{Addr: 1002, Static: scheduler.StaticFeatures{Region: 0, ISP: 0, CostUnit: 1}, ResidualBps: 80e6, ConnSuccess: 0.9, QuotaLeft: 0},
	}}}}
	if !l.Apply(snapA, now) {
		t.Fatal("fresh snapshot did not advance the cache")
	}
	// A stale epoch for region 0 plus a new region 1 view: merge adopts
	// only the new region.
	snapB := Snapshot{Regions: []RegionSnap{
		{Region: 0, Epoch: 2, Nodes: nil},
		{Region: 1, Epoch: 1, Nodes: []NodeEntry{
			{Addr: 2000, Static: scheduler.StaticFeatures{Region: 1, ISP: 0, CostUnit: 1}, ResidualBps: 80e6, ConnSuccess: 0.9, QuotaLeft: 4},
		}},
	}}
	if !l.Apply(snapB, now) {
		t.Fatal("newer remote-region view did not advance the cache")
	}
	if l.Epoch(0) != 3 || l.Epoch(1) != 1 {
		t.Fatalf("epochs after merge = %d,%d want 3,1", l.Epoch(0), l.Epoch(1))
	}

	info := scheduler.ClientInfo{Addr: 9999, Region: 0, ISP: 0}
	c1 := l.Candidates(info, 8, nil)
	c2 := l.Candidates(info, 8, nil)
	if len(c1) != 3 {
		t.Fatalf("got %d candidates, want 3 (quota-exhausted 1002 skipped)", len(c1))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("candidate ranking not deterministic: %v vs %v", c1, c2)
		}
	}
	// Same region + ISP wins; same-ISP adjacent region (0.605) edges out
	// same-region ISP-mismatch (0.59) under the default weights.
	if c1[0].Addr != 1000 {
		t.Fatalf("best candidate %d, want 1000 (same region+ISP)", c1[0].Addr)
	}
	if c1[1].Addr != 2000 || c1[2].Addr != 1001 {
		t.Fatalf("ranking %v, want [1000 2000 1001]", c1)
	}
	ex := l.Candidates(info, 8, func(a simnet.Addr) bool { return a == 1000 })
	if len(ex) != 2 || ex[0].Addr == 1000 || ex[1].Addr == 1000 {
		t.Fatalf("exclusion did not filter 1000: %v", ex)
	}

	// Age tracking: duplicate pushes refresh the receipt timestamp.
	now = simnet.Time(8 * time.Second)
	if got := l.AgeMs(); got != 8000 {
		t.Fatalf("AgeMs = %v, want 8000", got)
	}
	if l.Apply(snapA, now) {
		t.Fatal("duplicate snapshot claimed to advance the cache")
	}
	if got := l.AgeMs(); got != 0 {
		t.Fatalf("AgeMs after duplicate push = %v, want 0 (push path is alive)", got)
	}
}

// TestCtrlWireSize: every ctrl message has a modeled wire size and
// IsCtrlMsg recognizes exactly the pointer forms.
func TestCtrlWireSize(t *testing.T) {
	msgs := []any{
		&SnapshotPush{Snap: Snapshot{Regions: []RegionSnap{{Region: 0, Epoch: 1, Nodes: make([]NodeEntry, 3)}}}},
		&SnapshotAck{},
		&SnapshotReq{},
		&GossipSummary{Epochs: []uint64{1, 2}},
		&GossipDelta{Snaps: []RegionSnap{{Nodes: make([]NodeEntry, 2)}}},
	}
	for _, m := range msgs {
		if !IsCtrlMsg(m) {
			t.Fatalf("%T not recognized as ctrl message", m)
		}
		n, ok := CtrlWireSize(m)
		if !ok || n <= 0 {
			t.Fatalf("%T has no wire size (%d, %v)", m, n, ok)
		}
	}
	if IsCtrlMsg(42) || IsCtrlMsg(SnapshotAck{}) {
		t.Fatal("non-ctrl values recognized as ctrl messages")
	}
}

// Package ctrlplane is RLive's distributed control plane: regional
// scheduler shards that each own their region's fleet view, synchronized
// through a seeded gossip/anti-entropy snapshot exchange, plus full-config
// snapshot push to edges and clients and a last-known-good (LKG) cache on
// every data-plane node. The design goal is the paper's "control plane
// never in the request path" property: allocation, recovery-source
// selection and chain repair keep working from the most recent acked
// snapshot during indefinite scheduler loss (PLVER-style proactive state
// push; CliqueStream-style per-region autonomy).
package ctrlplane

import (
	"repro/internal/scheduler"
	"repro/internal/simnet"
)

// NodeEntry is one best-effort node's scheduling state as carried in a
// region snapshot. It mirrors scheduler.Status minus the Forwarding map:
// forwarding assignments are per-shard soft state and a map would be a
// determinism trap on the wire; the LKG scoring path treats every node as
// not-yet-forwarding, which only makes its cost estimate conservative.
type NodeEntry struct {
	Addr        simnet.Addr
	Static      scheduler.StaticFeatures
	ResidualBps float64
	Utilization float64
	ConnSuccess float64
	Sessions    int
	QuotaLeft   int
}

// RegionSnap is one region's fleet view at a given epoch. Epochs are
// versioned per region and advance only on the owning shard; epoch 0 means
// "no view yet".
type RegionSnap struct {
	Region int
	Epoch  uint64
	Nodes  []NodeEntry
}

// Snapshot is a full-config snapshot: the pushing shard's current view of
// every region, ordered by region index.
type Snapshot struct {
	Regions []RegionSnap
}

// SnapshotPush carries a full snapshot from a shard to an edge (with
// ack/nack and retry) or from an edge to its subscribed clients (relay
// tier). Seq is the pushing shard's monotone push sequence; receivers ack
// it so the pusher can retry or, on a stale nack, re-push fresh state.
type SnapshotPush struct {
	FromRegion int
	Seq        uint64
	Snap       Snapshot
}

// SnapshotAck acknowledges a SnapshotPush. OK=false is a nack: the
// receiver already holds a newer snapshot than Seq, so the pusher should
// send current state instead of retrying the stale one.
type SnapshotAck struct {
	Region int
	Seq    uint64
	OK     bool
}

// SnapshotReq asks a shard for an immediate snapshot push (client startup
// and LKG self-refresh when the edge relay tier has gone quiet).
type SnapshotReq struct{}

// GossipSummary opens an anti-entropy round: the sender's per-region
// epoch vector. The receiver answers with a GossipDelta of the regions it
// is ahead on, and (when Reply is false) its own summary so the exchange
// repairs both directions.
type GossipSummary struct {
	FromRegion int
	Epochs     []uint64
	Reply      bool
}

// GossipDelta carries the region snapshots the sender holds at newer
// epochs than the peer's summary advertised.
type GossipDelta struct {
	FromRegion int
	Snaps      []RegionSnap
}

// IsCtrlMsg reports whether msg is a control-plane message owned by this
// package (vs the transport data/scheduler messages that share shard
// endpoints).
func IsCtrlMsg(msg any) bool {
	switch msg.(type) {
	case *SnapshotPush, *SnapshotAck, *SnapshotReq, *GossipSummary, *GossipDelta:
		return true
	}
	return false
}

// nodeEntryBytes is the modeled wire footprint of one NodeEntry: address,
// packed static features, and the quantized dynamic fields.
const nodeEntryBytes = 40

func snapBytes(s Snapshot) int {
	n := 16
	for _, rs := range s.Regions {
		n += 12 + nodeEntryBytes*len(rs.Nodes)
	}
	return n
}

// CtrlWireSize returns the modeled body size in bytes of a control-plane
// message, and whether msg is one. transport.WireSize delegates its
// default case here so the simulator charges snapshot traffic against
// link capacity without transport and ctrlplane importing each other both
// ways.
func CtrlWireSize(msg any) (int, bool) {
	switch m := msg.(type) {
	case *SnapshotPush:
		return 16 + snapBytes(m.Snap), true
	case *SnapshotAck:
		return 16, true
	case *SnapshotReq:
		return 8, true
	case *GossipSummary:
		return 8 + 8*len(m.Epochs), true
	case *GossipDelta:
		n := 8
		for _, rs := range m.Snaps {
			n += 12 + nodeEntryBytes*len(rs.Nodes)
		}
		return n, true
	}
	return 0, false
}

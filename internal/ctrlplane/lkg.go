package ctrlplane

import (
	"sort"

	"repro/internal/scheduler"
	"repro/internal/simnet"
)

// LKG is the last-known-good snapshot cache held by every data-plane node
// (edge or client). It stores the newest acked full-config snapshot and
// answers allocation queries from it locally, so recovery-source selection
// and chain repair never block on a live scheduler. Incoming pushes are
// merged per region by epoch — a node may legitimately hear from its own
// region's shard and from cross-region edges it subscribes to, whose push
// sequence spaces are incomparable. The cache deliberately serves
// regardless of age: during indefinite scheduler loss a stale view beats
// no view, and the data plane's own probe/blacklist feedback weeds out
// picks that have since died.
type LKG struct {
	region int
	owner  simnet.Addr
	now    func() simnet.Time

	snaps []RegionSnap // indexed by region; Epoch 0 = no view
	at    simnet.Time
	has   bool
}

// NewLKG builds a cache for a data-plane node; now supplies sim time for
// age accounting. Plane.NewLKG is the usual constructor so the plane can
// track the cache for the ctrl.lkg_age_ms gauge.
func NewLKG(regions, region int, owner simnet.Addr, now func() simnet.Time) *LKG {
	if regions < 1 {
		regions = 1
	}
	return &LKG{region: region, owner: owner, now: now, snaps: make([]RegionSnap, regions)}
}

// Apply merges a pushed snapshot into the cache, adopting every region
// view with a newer epoch than the held one, and reports whether anything
// advanced. The receipt timestamp is recorded even for duplicate pushes:
// any push attests that the push path is alive, which is what the
// ctrl.lkg_age_ms freshness gauge measures.
func (l *LKG) Apply(snap Snapshot, at simnet.Time) bool {
	if l == nil {
		return false
	}
	changed := false
	for _, rs := range snap.Regions {
		if rs.Region < 0 || rs.Region >= len(l.snaps) {
			continue
		}
		if rs.Epoch > l.snaps[rs.Region].Epoch {
			l.snaps[rs.Region] = rs
			changed = true
			l.has = true
		}
	}
	if l.has {
		l.at = at
	}
	return changed
}

// Has reports whether the cache holds any region view.
func (l *LKG) Has() bool { return l != nil && l.has }

// Region returns the owner's home region.
func (l *LKG) Region() int {
	if l == nil {
		return 0
	}
	return l.region
}

// Epoch returns the held epoch for one region (0 when none).
func (l *LKG) Epoch(region int) uint64 {
	if l == nil || region < 0 || region >= len(l.snaps) {
		return 0
	}
	return l.snaps[region].Epoch
}

// Snapshot returns the merged view (regions with a view, in region order)
// for re-push down the relay tier.
func (l *LKG) Snapshot() Snapshot {
	var s Snapshot
	if l == nil {
		return s
	}
	for _, rs := range l.snaps {
		if rs.Epoch > 0 {
			s.Regions = append(s.Regions, rs)
		}
	}
	return s
}

// AgeMs returns the cache's freshness age in milliseconds — time since
// the last push receipt — or -1 when the cache is empty.
func (l *LKG) AgeMs() float64 {
	if l == nil || !l.has {
		return -1
	}
	return float64(l.now()-l.at) / 1e6
}

// lkgCand pairs a candidate with its cost-efficiency for ranking.
type lkgCand struct {
	cand scheduler.Candidate
	eff  float64
}

// Candidates answers an allocation query from the cached snapshot. It
// replicates the scheduler's availability-per-unit-cost ranking (same
// score formula and default weights) but fully deterministically: no
// explore fraction, no RNG, and every node treated as not-yet-forwarding
// (the snapshot intentionally omits per-shard forwarding soft state), with
// ties broken by address. exclude lets the caller skip locally
// blacklisted or already-tried nodes; self and quota-exhausted nodes are
// always skipped.
func (l *LKG) Candidates(c scheduler.ClientInfo, k int, exclude func(simnet.Addr) bool) []scheduler.Candidate {
	if l == nil || !l.has || k <= 0 {
		return nil
	}
	w := scheduler.DefaultWeights
	var pool []lkgCand
	for _, rs := range l.snaps {
		for _, n := range rs.Nodes {
			if n.Addr == c.Addr || n.QuotaLeft <= 0 {
				continue
			}
			if exclude != nil && exclude(n.Addr) {
				continue
			}
			var nScore float64
			if n.Static.ISP == c.ISP && n.Static.Region == c.Region {
				nScore = 1
			} else if n.Static.ISP == c.ISP {
				nScore = 0.4
			}
			d := n.Static.Region - c.Region
			if d < 0 {
				d = -d
			}
			var gScore float64
			switch {
			case d == 0:
				gScore = 1
			case d == 1:
				gScore = 0.5
			default:
				gScore = 1 / float64(1+d)
			}
			bScore := n.ResidualBps / 100e6
			if bScore > 1 {
				bScore = 1
			}
			score := w.SameNetwork*nScore + w.Proximity*gScore +
				w.NATSuccess*n.ConnSuccess + w.Bandwidth*bScore
			cost := n.Static.CostUnit
			if cost <= 0 {
				cost = 1
			}
			cost *= 1.5 // not forwarding yet: marginal back-to-CDN traffic
			pool = append(pool, lkgCand{
				cand: scheduler.Candidate{Addr: n.Addr, Score: score},
				eff:  score / cost,
			})
		}
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].eff != pool[j].eff {
			return pool[i].eff > pool[j].eff
		}
		return pool[i].cand.Addr < pool[j].cand.Addr
	})
	if len(pool) > k {
		pool = pool[:k]
	}
	out := make([]scheduler.Candidate, len(pool))
	for i, p := range pool {
		out[i] = p.cand
	}
	return out
}

package ctrlplane

import (
	"fmt"
	"io"
	"time"

	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Config parameterizes the distributed control plane.
type Config struct {
	// Regions is the number of scheduler shards (one per region).
	Regions int
	// SnapshotEvery is the cadence at which each shard re-snapshots its
	// own region's fleet view, advancing that region's epoch (default 2s).
	SnapshotEvery simnet.Time
	// PushEvery is the full-config snapshot push cadence to the shard's
	// own-region edges (default 5s).
	PushEvery simnet.Time
	// GossipEvery is the anti-entropy round cadence per shard (default
	// 2s).
	GossipEvery simnet.Time
	// RetryAfter is how long a shard waits for a push ack before
	// retrying (default 2s), and MaxRetries bounds attempts per push
	// (default 3).
	RetryAfter simnet.Time
	MaxRetries int
	// BaseAddr is the first shard address; shard r lives at BaseAddr+r.
	// The default 10 sits in the free infrastructure range below the
	// dedicated fleet, so shard links ride the backbone like the
	// original scheduler endpoint.
	BaseAddr simnet.Addr
}

func (c *Config) applyDefaults() {
	if c.Regions < 1 {
		c.Regions = 1
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 2 * time.Second
	}
	if c.PushEvery == 0 {
		c.PushEvery = 5 * time.Second
	}
	if c.GossipEvery == 0 {
		c.GossipEvery = 2 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BaseAddr == 0 {
		c.BaseAddr = 10
	}
}

// Event is one control-plane action in the snapshot log (the -ctrl flag).
type Event struct {
	At    int64 // sim nanoseconds
	Ev    string
	Shard int
	Peer  int // peer region, or -1
	To    simnet.Addr
	Seq   uint64
	Epoch uint64
}

// EventLog collects control-plane events for offline inspection. A nil
// log records nothing.
type EventLog struct {
	Label  string
	Events []Event
}

// WriteJSONL emits a header line then one line per event, in a fixed
// field order so serial and parallel runs are byte-identical.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "{\"label\":%q,\"events\":%d}\n", l.Label, len(l.Events)); err != nil {
		return err
	}
	for _, e := range l.Events {
		_, err := fmt.Fprintf(w, "{\"at\":%d,\"ev\":%q,\"shard\":%d,\"peer\":%d,\"to\":%d,\"seq\":%d,\"epoch\":%d}\n",
			e.At, e.Ev, e.Shard, e.Peer, e.To, e.Seq, e.Epoch)
		if err != nil {
			return err
		}
	}
	return nil
}

// lkgRef tracks one data-plane cache for the freshness gauges.
type lkgRef struct {
	lkg    *LKG
	addr   simnet.Addr
	region int
}

// Plane is the distributed control plane: the shard set plus the
// plane-wide fault switches and telemetry.
type Plane struct {
	Cfg    Config
	sim    *simnet.Sim
	net    *simnet.Network
	Shards []*Shard

	// nodes holds per-region pool membership in registration order —
	// the shared iteration order that keeps snapshots deterministic.
	nodes [][]simnet.Addr
	lkgs  []lkgRef

	down       bool
	gossipCut  bool
	dropped    uint64
	pushesSent uint64

	log *EventLog

	tmPush, tmAck, tmNack, tmRetry, tmGossip *telemetry.Counter
}

// New builds an empty plane; add one shard per region with AddShard
// before Start.
func New(cfg Config, sim *simnet.Sim, net *simnet.Network) *Plane {
	cfg.applyDefaults()
	p := &Plane{Cfg: cfg, sim: sim, net: net, nodes: make([][]simnet.Addr, cfg.Regions)}
	return p
}

// ShardAddr returns the shard endpoint serving a region (regions beyond
// the shard count wrap, so sparse client region labels still route).
func (p *Plane) ShardAddr(region int) simnet.Addr {
	if region < 0 {
		region = -region
	}
	return p.Cfg.BaseAddr + simnet.Addr(region%p.Cfg.Regions)
}

// AddShard appends the next region's shard, owning the given scheduler
// instance and RNG (both forked by the caller so draw counts stay
// decoupled). The scheduler must not have telemetry attached: shard
// schedulers share instrument names with the facade and gauge functions
// are last-writer-wins.
func (p *Plane) AddShard(sched *scheduler.Scheduler, rng *stats.RNG) *Shard {
	sh := &Shard{
		Region:  len(p.Shards),
		Addr:    p.Cfg.BaseAddr + simnet.Addr(len(p.Shards)),
		Sched:   sched,
		p:       p,
		rng:     rng,
		snaps:   make([]RegionSnap, p.Cfg.Regions),
		pending: make(map[simnet.Addr]*pendingPush),
	}
	for i := range sh.snaps {
		sh.snaps[i].Region = i
	}
	p.Shards = append(p.Shards, sh)
	return sh
}

// RegisterNode registers a best-effort pool node with every shard: each
// shard holds the full fleet index, with remote-region temporal state
// arriving via gossip rather than direct heartbeats.
func (p *Plane) RegisterNode(addr simnet.Addr, static scheduler.StaticFeatures, quota int) {
	for _, sh := range p.Shards {
		sh.Sched.RegisterNode(addr, static, quota)
	}
	r := static.Region % p.Cfg.Regions
	p.nodes[r] = append(p.nodes[r], addr)
}

// RegisterEdge adds an edge node as a push target of its region's shard.
func (p *Plane) RegisterEdge(region int, addr simnet.Addr) {
	sh := p.Shards[region%len(p.Shards)]
	sh.edges = append(sh.edges, addr)
}

// NewLKG creates and tracks a last-known-good cache for a data-plane
// node.
func (p *Plane) NewLKG(region int, owner simnet.Addr) *LKG {
	l := NewLKG(p.Cfg.Regions, region, owner, p.sim.Now)
	p.lkgs = append(p.lkgs, lkgRef{lkg: l, addr: owner, region: region % p.Cfg.Regions})
	return l
}

// SetTelemetry registers the plane's control-plane counters.
func (p *Plane) SetTelemetry(reg *telemetry.Registry) {
	p.tmPush = reg.Counter("ctrl.push")
	p.tmAck = reg.Counter("ctrl.ack")
	p.tmNack = reg.Counter("ctrl.nack")
	p.tmRetry = reg.Counter("ctrl.retry")
	p.tmGossip = reg.Counter("ctrl.gossip_rounds")
}

// AttachLog directs control-plane events into l (nil detaches).
func (p *Plane) AttachLog(l *EventLog) { p.log = l }

// Log returns the attached event log, if any.
func (p *Plane) Log() *EventLog { return p.log }

// Start arms every shard's snapshot, gossip and push loops, plus an
// immediate epoch-1 rebuild so the first pushes carry a real view.
func (p *Plane) Start() {
	for _, sh := range p.Shards {
		sh := sh
		sh.rebuildOwn()
		p.sim.Every(p.Cfg.SnapshotEvery, func() bool {
			if !p.down {
				sh.rebuildOwn()
			}
			return true
		})
		p.sim.Every(p.Cfg.GossipEvery, func() bool {
			sh.gossipRound()
			return true
		})
		p.sim.Every(p.Cfg.PushEvery, func() bool {
			sh.pushRound()
			return true
		})
	}
}

// SetDown kills or revives the whole shard set (the sched-outage fault):
// inbound messages are dropped and counted, and snapshot, gossip, push
// and retry loops all stop. The data plane is expected to keep working
// from LKG caches for the duration.
func (p *Plane) SetDown(down bool) {
	if p == nil {
		return
	}
	p.down = down
}

// SetGossipPartition cuts the gossip mesh between the lower and upper
// half of the shard set (the ctrl-partition fault). Push paths stay up:
// each half keeps serving and pushing its own regions.
func (p *Plane) SetGossipPartition(on bool) {
	if p == nil {
		return
	}
	p.gossipCut = on
}

func (p *Plane) cutBetween(a, b int) bool {
	if !p.gossipCut {
		return false
	}
	half := len(p.Shards) / 2
	return (a < half) != (b < half)
}

// CtrlMsgs returns the cumulative control-plane message count at the
// shard tier: pushes sent plus ctrl messages received. This is the
// quantity the ctrl-scale experiment shows staying flat as the viewer
// fleet grows.
func (p *Plane) CtrlMsgs() uint64 {
	if p == nil {
		return 0
	}
	n := p.pushesSent
	for _, sh := range p.Shards {
		n += sh.Msgs
	}
	return n
}

// Dropped returns messages dropped while the plane was down.
func (p *Plane) Dropped() uint64 {
	if p == nil {
		return 0
	}
	return p.dropped
}

// GossipRounds returns the total anti-entropy rounds initiated.
func (p *Plane) GossipRounds() uint64 {
	if p == nil {
		return 0
	}
	var n uint64
	for _, sh := range p.Shards {
		n += sh.GossipRounds
	}
	return n
}

// EpochLag returns how far one shard's fleet view trails the owning
// shards, in epochs (max over regions).
func (p *Plane) EpochLag(shard int) uint64 {
	sh := p.Shards[shard]
	var worst uint64
	for r, owner := range p.Shards {
		own := owner.snaps[r].Epoch
		if held := sh.snaps[r].Epoch; own > held && own-held > worst {
			worst = own - held
		}
	}
	return worst
}

// MaxEpochLag returns the worst shard divergence across the shard set —
// the ctrl.shard_diverge gauge.
func (p *Plane) MaxEpochLag() uint64 {
	if p == nil {
		return 0
	}
	var worst uint64
	for i := range p.Shards {
		if l := p.EpochLag(i); l > worst {
			worst = l
		}
	}
	return worst
}

// MinLKGAgeMs returns the freshest last-known-good age among online
// data-plane caches (region -1 for all regions; 0 when no cache holds a
// snapshot yet). The minimum is the right alarm signal: it grows only
// when the entire push path is dead, which is exactly what ctrl-lkg-stale
// should page on, and is immune to individual churned-out nodes holding
// stale caches.
func (p *Plane) MinLKGAgeMs(online func(simnet.Addr) bool, region int) float64 {
	if p == nil {
		return 0
	}
	best := -1.0
	for _, ref := range p.lkgs {
		if region >= 0 && ref.region != region {
			continue
		}
		if !ref.lkg.Has() {
			continue
		}
		if online != nil && !online(ref.addr) {
			continue
		}
		if a := ref.lkg.AgeMs(); best < 0 || a < best {
			best = a
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

func (p *Plane) record(ev string, shard, peer int, to simnet.Addr, seq, epoch uint64) {
	if p.log == nil {
		return
	}
	p.log.Events = append(p.log.Events, Event{
		At: int64(p.sim.Now()), Ev: ev, Shard: shard, Peer: peer, To: to, Seq: seq, Epoch: epoch,
	})
}

// pendingPush is one outstanding push awaiting ack.
type pendingPush struct {
	seq   uint64
	tries int
	msg   *SnapshotPush
}

// Shard is one region's scheduler: it ingests its own region's
// heartbeats (via the per-shard SchedService the core wires at the same
// address), learns the rest of the fleet through gossip, and pushes
// full-config snapshots to its region's edges.
type Shard struct {
	Region int
	Addr   simnet.Addr
	Sched  *scheduler.Scheduler

	p   *Plane
	rng *stats.RNG

	snaps   []RegionSnap
	edges   []simnet.Addr
	pending map[simnet.Addr]*pendingPush
	seq     uint64

	// Msgs counts ctrl messages received; GossipRounds counts
	// anti-entropy rounds initiated.
	Msgs         uint64
	GossipRounds uint64
}

// rebuildOwn re-snapshots the shard's own region from its scheduler's
// live view, advancing the region epoch.
func (sh *Shard) rebuildOwn() {
	rs := RegionSnap{Region: sh.Region, Epoch: sh.snaps[sh.Region].Epoch + 1}
	for _, a := range sh.p.nodes[sh.Region] {
		st, ok := sh.Sched.NodeStatus(a)
		if !ok {
			continue
		}
		rs.Nodes = append(rs.Nodes, NodeEntry{
			Addr:        a,
			Static:      st.Static,
			ResidualBps: st.ResidualBps,
			Utilization: st.Utilization,
			ConnSuccess: st.ConnSuccess,
			Sessions:    st.Sessions,
			QuotaLeft:   st.QuotaLeft,
		})
	}
	sh.snaps[sh.Region] = rs
}

// snapshot assembles the shard's current full-config view.
func (sh *Shard) snapshot() Snapshot {
	var s Snapshot
	for _, rs := range sh.snaps {
		if rs.Epoch > 0 {
			s.Regions = append(s.Regions, rs)
		}
	}
	return s
}

func (sh *Shard) epochs() []uint64 {
	es := make([]uint64, len(sh.snaps))
	for i, rs := range sh.snaps {
		es[i] = rs.Epoch
	}
	return es
}

func (sh *Shard) send(to simnet.Addr, msg any) {
	n, _ := CtrlWireSize(msg)
	sh.p.net.Send(sh.Addr, to, 36+n, msg)
}

// pushRound pushes the current snapshot to every own-region edge.
func (sh *Shard) pushRound() {
	if sh.p.down || len(sh.edges) == 0 {
		return
	}
	sh.seq++
	msg := &SnapshotPush{FromRegion: sh.Region, Seq: sh.seq, Snap: sh.snapshot()}
	for _, e := range sh.edges {
		sh.sendPush(e, msg, 1)
	}
}

func (sh *Shard) sendPush(to simnet.Addr, msg *SnapshotPush, try int) {
	sh.p.pushesSent++
	sh.p.tmPush.Inc()
	sh.p.record("push", sh.Region, -1, to, msg.Seq, 0)
	sh.pending[to] = &pendingPush{seq: msg.Seq, tries: try, msg: msg}
	sh.send(to, msg)
	seq := msg.Seq
	sh.p.sim.After(sh.p.Cfg.RetryAfter, func() { sh.checkRetry(to, seq) })
}

func (sh *Shard) checkRetry(to simnet.Addr, seq uint64) {
	if sh.p.down {
		return
	}
	pd, ok := sh.pending[to]
	if !ok || pd.seq != seq {
		return // acked, or superseded by a newer push round
	}
	if pd.tries >= sh.p.Cfg.MaxRetries {
		delete(sh.pending, to)
		return
	}
	sh.p.tmRetry.Inc()
	sh.p.record("retry", sh.Region, -1, to, seq, 0)
	sh.sendPush(to, pd.msg, pd.tries+1)
}

// gossipRound opens one anti-entropy exchange with a uniformly chosen
// peer shard. The peer is drawn even when the round is suppressed (plane
// down or mesh partitioned) so each shard's RNG stream is independent of
// fault timing.
func (sh *Shard) gossipRound() {
	n := len(sh.p.Shards)
	if n < 2 {
		return
	}
	k := sh.rng.IntN(n - 1)
	peer := sh.p.Shards[(sh.Region+1+k)%n]
	if sh.p.down || sh.p.cutBetween(sh.Region, peer.Region) {
		return
	}
	sh.GossipRounds++
	sh.p.tmGossip.Inc()
	sh.p.record("gossip", sh.Region, peer.Region, peer.Addr, 0, sh.snaps[sh.Region].Epoch)
	sh.send(peer.Addr, &GossipSummary{FromRegion: sh.Region, Epochs: sh.epochs()})
}

// Handle processes control-plane messages arriving at the shard address.
// Transport messages (heartbeats, candidate requests) at the same address
// are routed by the core to the per-shard SchedService instead.
func (sh *Shard) Handle(from simnet.Addr, msg any) {
	if sh.p.down {
		sh.p.dropped++
		return
	}
	sh.Msgs++
	switch m := msg.(type) {
	case *SnapshotAck:
		sh.onAck(from, m)
	case *SnapshotReq:
		// Client startup or LKG self-refresh: answer directly, without
		// retry bookkeeping — the requester re-asks if the reply is
		// lost.
		sh.seq++
		push := &SnapshotPush{FromRegion: sh.Region, Seq: sh.seq, Snap: sh.snapshot()}
		sh.p.pushesSent++
		sh.p.tmPush.Inc()
		sh.p.record("push", sh.Region, -1, from, push.Seq, 0)
		sh.send(from, push)
	case *GossipSummary:
		sh.onSummary(from, m)
	case *GossipDelta:
		sh.onDelta(m)
	}
}

func (sh *Shard) onAck(from simnet.Addr, m *SnapshotAck) {
	sh.p.tmAck.Inc()
	sh.p.record("ack", sh.Region, m.Region, from, m.Seq, 0)
	pd, ok := sh.pending[from]
	if !ok || pd.seq != m.Seq {
		return
	}
	delete(sh.pending, from)
	if !m.OK {
		// Nack: the push did not advance the receiver (duplicate or
		// stale after reordering). The receiver is current enough; just
		// account it.
		sh.p.tmNack.Inc()
		sh.p.record("nack", sh.Region, m.Region, from, m.Seq, 0)
	}
}

func (sh *Shard) onSummary(from simnet.Addr, m *GossipSummary) {
	if sh.p.cutBetween(sh.Region, m.FromRegion) {
		return // partition raced an in-flight round
	}
	var delta []RegionSnap
	for i, rs := range sh.snaps {
		if i < len(m.Epochs) && rs.Epoch > m.Epochs[i] {
			delta = append(delta, rs)
		}
	}
	if len(delta) > 0 {
		sh.send(from, &GossipDelta{FromRegion: sh.Region, Snaps: delta})
	}
	if !m.Reply {
		sh.send(from, &GossipSummary{FromRegion: sh.Region, Epochs: sh.epochs(), Reply: true})
	}
}

func (sh *Shard) onDelta(m *GossipDelta) {
	if sh.p.cutBetween(sh.Region, m.FromRegion) {
		return
	}
	for _, rs := range m.Snaps {
		sh.adopt(rs)
	}
}

// adopt installs a newer remote region view and folds it into this
// shard's scheduler as synthetic heartbeats, so cross-region
// recommendations rank on gossiped temporal features. The shard's own
// region is never adopted: its epoch authority is local.
func (sh *Shard) adopt(rs RegionSnap) {
	if rs.Region == sh.Region || rs.Region < 0 || rs.Region >= len(sh.snaps) {
		return
	}
	if rs.Epoch <= sh.snaps[rs.Region].Epoch {
		return
	}
	sh.snaps[rs.Region] = rs
	sh.p.record("adopt", sh.Region, rs.Region, 0, 0, rs.Epoch)
	for _, n := range rs.Nodes {
		sh.Sched.Ingest(scheduler.Heartbeat{
			Addr:        n.Addr,
			ResidualBps: n.ResidualBps,
			Utilization: n.Utilization,
			ConnSuccess: n.ConnSuccess,
			Sessions:    n.Sessions,
			QuotaLeft:   n.QuotaLeft,
		})
	}
}

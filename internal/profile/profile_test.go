package profile

import (
	"encoding/json"
	"strings"
	"testing"
)

// fakeClock is a controllable monotonic clock for exact accounting tests.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() int64       { return c.ns }
func (c *fakeClock) advance(ns int64) { c.ns += ns }
func newFakeProf(shards, workers int) (*Prof, *fakeClock) {
	c := &fakeClock{}
	return NewWithClock("test", shards, workers, c.now), c
}

// TestNilProfIsFree pins the disabled path's contract: every hook on a nil
// receiver is allocation-free (mirroring trace.TestNilBufIsFree). The
// engines keep nil slab pointers when profiling is off, so this is the
// 0-alloc guarantee for every unprofiled event dispatch and mailbox op.
func TestNilProfIsFree(t *testing.T) {
	var w *Worker
	var s *Shard
	var m *Mail
	var p *Prof
	if a := testing.AllocsPerRun(1000, func() {
		w.Begin()
		w.Lap(s, KindDeliver)
		w.ParkBegin(1)
		w.ParkEnd()
		w.End()
		m.Push(3)
		m.Drain(2)
	}); a != 0 {
		t.Fatalf("nil profiler hooks allocated %v per run, want 0", a)
	}
	if p.Shard(0) != nil || p.Worker(0) != nil || p.Mail(0, 0) != nil {
		t.Fatal("nil Prof accessors must return nil slabs")
	}
	if p.TotalEvents() != 0 || p.TotalBusyNs() != 0 || p.BusyFrac() != 0 {
		t.Fatal("nil Prof totals must be zero")
	}
	if busy, park, ev := w.Util(); busy != 0 || park != 0 || ev != 0 {
		t.Fatal("nil Worker.Util must be zero")
	}
}

// TestLapAccounting drives the lap protocol with a fake clock and checks
// the invariant the perf report's acceptance criterion rests on: per-bucket
// self-times sum exactly to worker busy time (attribution = 1.0).
func TestLapAccounting(t *testing.T) {
	p, c := newFakeProf(2, 1)
	w, s0, s1 := p.Worker(0), p.Shard(0), p.Shard(1)

	c.advance(10)
	w.Begin()
	c.advance(100)
	w.Lap(s0, KindFn)
	c.advance(50)
	w.Lap(s0, KindDeliver)
	c.advance(25)
	w.Lap(s1, KindDeliver)
	w.End()

	if got := s0.Count(KindFn); got != 1 {
		t.Fatalf("s0 fn count = %d, want 1", got)
	}
	if got := s0.SelfNs(KindFn); got != 100 {
		t.Fatalf("s0 fn self = %d, want 100", got)
	}
	if got := s0.SelfNs(KindDeliver); got != 50 {
		t.Fatalf("s0 deliver self = %d, want 50", got)
	}
	if got := s1.SelfNs(KindDeliver); got != 25 {
		t.Fatalf("s1 deliver self = %d, want 25", got)
	}
	busy, _, ev := w.Util()
	if busy != 175 || ev != 3 {
		t.Fatalf("worker util = (%d busy, %d events), want (175, 3)", busy, ev)
	}
	if got := p.AttributedFrac(); got != 1.0 {
		t.Fatalf("attributed fraction = %v, want exactly 1.0", got)
	}
	if got := p.TotalEvents(); got != 3 {
		t.Fatalf("total events = %d, want 3", got)
	}
}

// TestParkAttribution checks park accounting: total parked time, the
// per-blocker attribution, the park count, and the busy/park span timeline.
func TestParkAttribution(t *testing.T) {
	p, c := newFakeProf(1, 4)
	w := p.Worker(0)

	c.advance(5)
	w.Begin()
	c.advance(100)
	w.Lap(p.Shard(0), KindTick)
	w.ParkBegin(2)
	c.advance(300)
	w.ParkEnd()
	c.advance(40)
	w.Lap(p.Shard(0), KindTick)
	w.ParkBegin(1)
	c.advance(60)
	w.ParkEnd()
	w.End()

	if got := w.Parks(); got != 2 {
		t.Fatalf("parks = %d, want 2", got)
	}
	_, park, _ := w.Util()
	if park != 360 {
		t.Fatalf("parked ns = %d, want 360", park)
	}
	if got := w.BlockedOnNs(2); got != 300 {
		t.Fatalf("blocked on w2 = %d, want 300", got)
	}
	if got := w.BlockedOnNs(1); got != 60 {
		t.Fatalf("blocked on w1 = %d, want 60", got)
	}
	// Timeline: busy [5,105), park [105,405), busy [405,445), park
	// [445,505). The final End closes no busy span (clock unchanged).
	spans := w.Spans()
	want := []Span{
		{Start: 5, Dur: 100, Kind: SpanBusy},
		{Start: 105, Dur: 300, Kind: SpanPark},
		{Start: 405, Dur: 40, Kind: SpanBusy},
		{Start: 445, Dur: 60, Kind: SpanPark},
	}
	if len(spans) != len(want) {
		t.Fatalf("got %d spans %v, want %d", len(spans), spans, len(want))
	}
	for i, sp := range spans {
		if sp != want[i] {
			t.Fatalf("span %d = %+v, want %+v", i, sp, want[i])
		}
	}
}

// TestMailAccounting checks the depth high-water mark and the pow2
// drain-batch histogram quantiles.
func TestMailAccounting(t *testing.T) {
	p, _ := newFakeProf(1, 2)
	m := p.Mail(1, 0)
	m.Push(1)
	m.Push(2)
	m.Push(7)
	m.Push(3)
	if got := m.HighWater(); got != 7 {
		t.Fatalf("high water = %d, want 7", got)
	}
	if got := p.MailboxHighWater(); got != 7 {
		t.Fatalf("prof high water = %d, want 7", got)
	}
	m.Drain(1) // bucket 0: [1,2)
	m.Drain(3) // bucket 1: [2,4)
	m.Drain(3)
	m.Drain(12) // bucket 3: [8,16)
	if got := m.Drains(); got != 4 {
		t.Fatalf("drains = %d, want 4", got)
	}
	if got := m.BatchQuantile(0.5); got != 3 {
		t.Fatalf("batch p50 = %d, want 3 (bucket [2,4) upper edge)", got)
	}
	if got := m.BatchQuantile(1); got != 15 {
		t.Fatalf("batch max = %d, want 15 (bucket [8,16) upper edge)", got)
	}
}

// TestReportLayout renders a report off fully fake-clock-driven slabs and
// pins the exact text — the deterministic-layout contract of perf-report.
func TestReportLayout(t *testing.T) {
	p, c := newFakeProf(1, 2)
	p.Label = "unit/run"
	w0, w1 := p.Worker(0), p.Worker(1)
	w0.Begin()
	w1.Begin()
	c.advance(2_000_000) // 2 ms
	w0.Lap(p.Shard(0), KindDeliver)
	w1.Lap(p.Shard(0), KindFn)
	w1.ParkBegin(0)
	c.advance(1_000_000) // 1 ms
	w1.ParkEnd()
	w0.End()
	w1.End()
	p.Mail(1, 0).Push(4)
	p.Mail(1, 0).Drain(4)

	var b strings.Builder
	if err := p.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	want := `== perf-report: unit/run (shards=1 workers=2)
events=2 busy-ms=4.000 park-ms=1.000 attributed=100.0%

shard  kind     events        self-ms    %busy
0      fn       1                  2.000    50.0%
0      deliver  1                  2.000    50.0%
0      tick     0                  0.000     0.0%
all    all      2                  4.000   100.0%

worker events        busy-ms    park-ms  parks  busy%  top-blockers
0      1                  2.000      0.000      0 100.0%  -
1      1                  2.000      1.000      1  66.7%  w0:1.0ms

mailbox   hwm    drains  batch-p50  batch-max
w1<-w0        4         1          7          7
`
	if got := b.String(); got != want {
		t.Fatalf("report layout drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPerfettoDocument checks the exported JSON parses as a Chrome
// trace-event document with the expected process/thread metadata and one
// complete event per recorded span.
func TestPerfettoDocument(t *testing.T) {
	p, c := newFakeProf(1, 2)
	p.Label = "unit/run"
	w := p.Worker(1)
	c.advance(1000)
	w.Begin()
	c.advance(3000)
	w.Lap(p.Shard(0), KindFn)
	w.ParkBegin(0)
	c.advance(2000)
	w.ParkEnd()
	w.End()

	var b strings.Builder
	if err := WritePerfetto(&b, p); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var metas, busy, parks int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
			if ev.Name == "process_name" && ev.Args["name"] != "unit/run" {
				t.Fatalf("process_name args = %v", ev.Args)
			}
		case "X":
			switch ev.Name {
			case "busy":
				busy++
				if ev.Tid != 1 || ev.Ts != 1.0 || ev.Dur != 3.0 {
					t.Fatalf("busy span = %+v, want tid 1 ts 1us dur 3us", ev)
				}
			case "parked":
				parks++
				if ev.Ts != 4.0 || ev.Dur != 2.0 {
					t.Fatalf("park span = %+v, want ts 4us dur 2us", ev)
				}
			}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	// One process_name + two thread_name metas; one busy and one park span.
	if metas != 3 || busy != 1 || parks != 1 {
		t.Fatalf("event mix = %d metas %d busy %d parks, want 3/1/1", metas, busy, parks)
	}
}

// TestSpanCap checks the per-worker span cap counts drops instead of
// growing without bound, and that the report mentions them.
func TestSpanCap(t *testing.T) {
	p, c := newFakeProf(1, 1)
	w := p.Worker(0)
	w.Begin()
	for i := 0; i < maxSpans+10; i++ {
		c.advance(10)
		w.ParkBegin(-1)
		c.advance(10)
		w.ParkEnd()
	}
	w.End()
	if len(w.spans) != maxSpans {
		t.Fatalf("spans = %d, want capped at %d", len(w.spans), maxSpans)
	}
	if w.spansDropped == 0 {
		t.Fatal("expected dropped spans to be counted")
	}
	var b strings.Builder
	if err := p.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "spans dropped") {
		t.Fatal("report must disclose dropped timeline spans")
	}
}

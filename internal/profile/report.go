package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteReport renders the deterministic-layout perf-report text table for
// one profiled run: the (shard × event-kind) cost-accounting table, the
// per-worker horizon-protocol table (parks, parked ms, busy fraction,
// stall-blocker ranking), the mailbox-pressure table, and the attribution
// reconciliation line. The LAYOUT is deterministic — same engine shape,
// same rows and columns — while the measured wall-time values naturally
// vary run to run; byte-stable artifacts belong in trace/telemetry JSONL,
// which profiling never touches.
func (p *Prof) WriteReport(w io.Writer) error {
	if p == nil {
		_, err := fmt.Fprintln(w, "perf-report: profiling disabled")
		return err
	}
	busy := p.TotalBusyNs()
	park := p.TotalParkNs()
	events := p.TotalEvents()

	var b strings.Builder
	fmt.Fprintf(&b, "== perf-report: %s (shards=%d workers=%d)\n",
		p.Label, len(p.shards), len(p.workers))
	fmt.Fprintf(&b, "events=%d busy-ms=%.3f park-ms=%.3f attributed=%.1f%%\n",
		events, ms(busy), ms(park), 100*p.AttributedFrac())

	// Shard × kind cost accounting. %busy is the bucket's share of total
	// measured busy time across all workers.
	b.WriteString("\nshard  kind     events        self-ms    %busy\n")
	for i := range p.shards {
		s := &p.shards[i]
		for k := Kind(0); k < NumKinds; k++ {
			fmt.Fprintf(&b, "%-6d %-8s %-13d %10.3f %7.1f%%\n",
				i, k, s.Count(k), ms(s.SelfNs(k)), pct(s.SelfNs(k), busy))
		}
	}
	var attrNs int64
	for i := range p.shards {
		for k := Kind(0); k < NumKinds; k++ {
			attrNs += p.shards[i].SelfNs(k)
		}
	}
	fmt.Fprintf(&b, "%-6s %-8s %-13d %10.3f %7.1f%%\n", "all", "all", events, ms(attrNs), pct(attrNs, busy))

	// Worker horizon-protocol table. busy%% is the worker's busy share of
	// its own (busy + parked) loop time; top-blockers ranks the workers
	// whose published clocks this worker parked behind.
	b.WriteString("\nworker events        busy-ms    park-ms  parks  busy%  top-blockers\n")
	for i := range p.workers {
		wk := &p.workers[i]
		bn, pn, ev := wk.Util()
		fmt.Fprintf(&b, "%-6d %-13d %10.3f %10.3f %6d %5.1f%%  %s\n",
			i, ev, ms(bn), ms(pn), wk.Parks(), pct(bn, bn+pn), blockerRanking(wk))
	}

	// Mailbox pressure: one row per worker pair that saw traffic. Which
	// pairs exchange mail is a function of the region→worker layout, so
	// row presence is as deterministic as the run itself.
	b.WriteString("\nmailbox   hwm    drains  batch-p50  batch-max\n")
	mailRows := 0
	for to := 0; to < p.nw; to++ {
		for from := 0; from < p.nw; from++ {
			m := p.Mail(to, from)
			if m.HighWater() == 0 && m.Drains() == 0 {
				continue
			}
			mailRows++
			fmt.Fprintf(&b, "w%d<-w%-3d %6d %9d %10d %10d\n",
				to, from, m.HighWater(), m.Drains(), m.BatchQuantile(0.5), m.BatchQuantile(1))
		}
	}
	if mailRows == 0 {
		b.WriteString("(no cross-worker mail)\n")
	}

	var dropped uint64
	for i := range p.workers {
		dropped += p.workers[i].spansDropped
	}
	if dropped > 0 {
		fmt.Fprintf(&b, "\n(timeline spans dropped past the %d/worker cap: %d)\n", maxSpans, dropped)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// blockerRanking renders the worker's parked time per blocking worker,
// most-blamed first, e.g. "w1:12.3ms w3:0.4ms" ("-" when it never parked
// behind an identified blocker).
func blockerRanking(w *Worker) string {
	type blk struct {
		worker int
		ns     int64
	}
	var blks []blk
	for j, ns := range w.blockedOnNs {
		if ns > 0 {
			blks = append(blks, blk{j, ns})
		}
	}
	if len(blks) == 0 {
		return "-"
	}
	sort.Slice(blks, func(a, b int) bool {
		if blks[a].ns != blks[b].ns {
			return blks[a].ns > blks[b].ns
		}
		return blks[a].worker < blks[b].worker
	})
	if len(blks) > 3 {
		blks = blks[:3]
	}
	parts := make([]string, len(blks))
	for i, x := range blks {
		parts[i] = fmt.Sprintf("w%d:%.1fms", x.worker, ms(x.ns))
	}
	return strings.Join(parts, " ")
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// WriteReports renders one perf-report per profiler in the given order
// (callers sort by label for a stable document layout), separated by a
// blank line.
func WriteReports(w io.Writer, profs ...*Prof) error {
	for i, p := range profs {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := p.WriteReport(w); err != nil {
			return err
		}
	}
	return nil
}

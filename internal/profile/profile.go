// Package profile is the engine self-profiling layer: an observe-only,
// zero-overhead-when-disabled recorder of where the simulation engines'
// wall-time actually goes — per-shard / per-event-kind cost accounting
// sampled around event dispatch, horizon-protocol visibility (parked
// duration, park counts, which other shard's clock was the blocker), and
// mailbox pressure (depth high-water marks, drain-batch histograms).
//
// Design (mirrors trace.Buf and telemetry's nil-registry convention):
//
//   - A nil *Worker / *Shard / *Mail is the disabled profiler: every hook
//     is a single inlined nil check that reads no clock and allocates
//     nothing, so an unprofiled event loop stays on its current fast path.
//   - Accounting slabs are per-worker and per-shard, written only by the
//     owning shard worker, with trailing padding so adjacent slabs never
//     share a cache line — the enabled hot path performs no cross-worker
//     writes. Utilization totals are stored with atomic writes (plain-read
//     plus atomic-store is safe for a single owner) so wall-clock pollers
//     may read them mid-run.
//   - Self-time uses lap timing: one monotonic clock read per executed
//     event, where the delta since the previous lap is attributed to the
//     event's (shard, kind) bucket. Engine overhead between events (heap
//     pop, clock publish, mailbox drain) rides with the event it precedes,
//     so the per-bucket self-times sum exactly to the worker busy time —
//     attribution is 100% by construction.
//   - The profiler only READS the wall clock and writes its own slabs; it
//     never schedules events, draws randomness, or touches simulation
//     state. Every deterministic artifact (tables, trace/telemetry/alert/
//     ctrl JSONL) is therefore byte-identical with profiling on or off —
//     CI enforces this with the same identity gates as -obs.
package profile

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Kind is the engine event class a dispatch is attributed to. The values
// mirror simnet's event slabs (fn/deliver/tick) and must stay aligned with
// its eventKind constants.
type Kind uint8

const (
	// KindFn is a generic callback (the At/After API).
	KindFn Kind = iota
	// KindDeliver is a packet delivery.
	KindDeliver
	// KindTick is a periodic timer (the Every API).
	KindTick

	NumKinds
)

var kindNames = [NumKinds]string{"fn", "deliver", "tick"}

// String names the event kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Shard is one region loop's cost-accounting slab: execution counts and
// lap self-time per event kind, written only by the owning worker. Values
// are stored atomically (single-owner store) so live pollers may read them
// mid-run; the trailing pad keeps adjacent slabs off one cache line.
type Shard struct {
	counts [NumKinds]atomic.Uint64
	selfNs [NumKinds]atomic.Int64
	_      [64]byte
}

// Count returns the executed-event count for one kind (0 on nil).
func (s *Shard) Count(k Kind) uint64 {
	if s == nil {
		return 0
	}
	return s.counts[k].Load()
}

// SelfNs returns the accumulated self-time for one kind (0 on nil).
func (s *Shard) SelfNs(k Kind) int64 {
	if s == nil {
		return 0
	}
	return s.selfNs[k].Load()
}

// Events returns the shard's total executed-event count (0 on nil).
func (s *Shard) Events() uint64 {
	if s == nil {
		return 0
	}
	var n uint64
	for k := range s.counts {
		n += s.counts[k].Load()
	}
	return n
}

// SpanKind tags a worker timeline span.
type SpanKind uint8

const (
	// SpanBusy covers executing events (and the engine overhead between
	// them) from a Begin/ParkEnd resume to the next ParkBegin/End.
	SpanBusy SpanKind = iota
	// SpanPark covers a horizon-protocol wait on the engine condvar.
	SpanPark
)

// Span is one busy or parked interval of a worker's wall-clock timeline,
// in nanoseconds since the profiler's start.
type Span struct {
	Start int64
	Dur   int64
	Kind  SpanKind
}

// maxSpans bounds the per-worker span timeline; past it spans are counted
// as dropped instead of recorded, so a pathological park storm cannot
// balloon the profiler.
const maxSpans = 1 << 15

// Worker is one shard worker's park/utilization slab. The utilization
// totals (busy/park/events) are written only by the owning worker but
// stored atomically, so the live observability plane may poll them from a
// wall-clock goroutine mid-run.
type Worker struct {
	busyNs atomic.Int64
	parkNs atomic.Int64
	parks  atomic.Int64
	events atomic.Int64

	clock func() int64

	// Owner-only lap and span state. armed/spanOpen are explicit (rather
	// than a zero-time sentinel) because a lap chain can legitimately
	// start at clock reading 0.
	lastNs      int64
	spanStart   int64
	parkStart   int64
	parkBlocker int
	armed       bool
	spanOpen    bool

	// blockedOnNs[j] is parked time attributed to worker j being the
	// horizon blocker (the worker whose published clock was the minimum
	// when this worker gave up and parked).
	blockedOnNs  []int64
	spans        []Span
	spansDropped uint64

	_ [64]byte
}

// Begin opens a busy span and arms the lap clock; the engines call it when
// a worker (re)enters its event loop. Safe (and free) on a nil receiver.
func (w *Worker) Begin() {
	if w == nil {
		return
	}
	now := w.clock()
	w.lastNs = now
	w.armed = true
	w.spanStart = now
	w.spanOpen = true
}

// Lap attributes the time since the previous lap to (s, k) and counts one
// executed event. This is the per-event dispatch hook: one clock read per
// event when enabled, a single inlined nil check when disabled.
func (w *Worker) Lap(s *Shard, k Kind) {
	if w == nil {
		return
	}
	w.lap(s, k)
}

func (w *Worker) lap(s *Shard, k Kind) {
	now := w.clock()
	if w.armed {
		d := now - w.lastNs
		s.selfNs[k].Store(s.selfNs[k].Load() + d)
		w.busyNs.Store(w.busyNs.Load() + d)
	} else {
		// Lap without Begin (a bare Step): start the chain here.
		w.armed = true
		w.spanStart = now
		w.spanOpen = true
	}
	s.counts[k].Store(s.counts[k].Load() + 1)
	w.events.Store(w.events.Load() + 1)
	w.lastNs = now
}

// ParkBegin closes the current busy span and stamps the park start,
// attributing the upcoming wait to the given blocking worker index (-1
// when unknown, e.g. single-worker engines). Safe on a nil receiver.
func (w *Worker) ParkBegin(blocker int) {
	if w == nil {
		return
	}
	now := w.clock()
	if w.spanOpen && now > w.spanStart {
		w.addSpan(Span{Start: w.spanStart, Dur: now - w.spanStart, Kind: SpanBusy})
	}
	w.spanOpen = false
	w.parkStart = now
	w.parkBlocker = blocker
	w.parks.Store(w.parks.Load() + 1)
}

// ParkEnd closes the park span, accumulates parked time (total and
// per-blocker), and re-arms the lap clock. Safe on a nil receiver.
func (w *Worker) ParkEnd() {
	if w == nil {
		return
	}
	now := w.clock()
	d := now - w.parkStart
	w.parkNs.Store(w.parkNs.Load() + d)
	if b := w.parkBlocker; b >= 0 && b < len(w.blockedOnNs) {
		w.blockedOnNs[b] += d
	}
	if d > 0 {
		w.addSpan(Span{Start: w.parkStart, Dur: d, Kind: SpanPark})
	}
	w.lastNs = now
	w.armed = true
	w.spanStart = now
	w.spanOpen = true
}

// End closes the open busy span and disarms the lap clock; the engines
// call it when a worker leaves its event loop (each Run phase brackets its
// spans with Begin/End). Safe on a nil receiver.
func (w *Worker) End() {
	if w == nil {
		return
	}
	now := w.clock()
	if w.spanOpen && now > w.spanStart {
		w.addSpan(Span{Start: w.spanStart, Dur: now - w.spanStart, Kind: SpanBusy})
	}
	w.spanOpen = false
	w.armed = false
}

func (w *Worker) addSpan(sp Span) {
	if len(w.spans) >= maxSpans {
		w.spansDropped++
		return
	}
	w.spans = append(w.spans, sp)
}

// Util returns the worker's live utilization counters: busy and parked
// nanoseconds plus executed events. Safe to call from any goroutine while
// the run is in flight; all zeros on a nil receiver.
func (w *Worker) Util() (busyNs, parkNs int64, events uint64) {
	if w == nil {
		return 0, 0, 0
	}
	return w.busyNs.Load(), w.parkNs.Load(), uint64(w.events.Load())
}

// Parks returns the number of horizon-protocol parks (0 on nil).
func (w *Worker) Parks() int64 {
	if w == nil {
		return 0
	}
	return w.parks.Load()
}

// BlockedOnNs returns parked time attributed to worker j (0 on nil or out
// of range). Owner-goroutine or post-Run only.
func (w *Worker) BlockedOnNs(j int) int64 {
	if w == nil || j < 0 || j >= len(w.blockedOnNs) {
		return 0
	}
	return w.blockedOnNs[j]
}

// Spans returns the worker's busy/park timeline (post-Run only).
func (w *Worker) Spans() []Span {
	if w == nil {
		return nil
	}
	return w.spans
}

// mailBatchBuckets is the pow2 resolution of the drain-batch histogram:
// bucket b counts drains of size in [2^b, 2^(b+1)).
const mailBatchBuckets = 16

// Mail is one cross-worker mailbox's accounting slab. The depth high-water
// mark is written by the sending worker (inside the mailbox push) and the
// drain-batch histogram by the receiving worker; padding keeps the two
// sides off one cache line.
type Mail struct {
	hwm atomic.Int64
	_   [56]byte
	// Receiver-side (owner-confined).
	drains  uint64
	batches [mailBatchBuckets]uint64
}

// Push records the post-append queue depth; the sender-side hook. Safe
// (and free) on a nil receiver.
func (m *Mail) Push(depth int) {
	if m == nil {
		return
	}
	m.push(depth)
}

func (m *Mail) push(depth int) {
	if d := int64(depth); d > m.hwm.Load() {
		m.hwm.Store(d)
	}
}

// Drain records one non-empty drain of n entries; the receiver-side hook.
// Safe (and free) on a nil receiver.
func (m *Mail) Drain(n int) {
	if m == nil {
		return
	}
	m.drain(n)
}

func (m *Mail) drain(n int) {
	m.drains++
	b := bits.Len(uint(n)) // n >= 1 so b >= 1
	if b > mailBatchBuckets {
		b = mailBatchBuckets
	}
	m.batches[b-1]++
}

// HighWater returns the depth high-water mark — safe to poll mid-run (0 on
// nil).
func (m *Mail) HighWater() int64 {
	if m == nil {
		return 0
	}
	return m.hwm.Load()
}

// Drains returns the non-empty drain count (post-Run only; 0 on nil).
func (m *Mail) Drains() uint64 {
	if m == nil {
		return 0
	}
	return m.drains
}

// BatchQuantile returns the upper edge (2^(b+1)-1 entries, i.e. the
// largest size the bucket admits) of the drain-batch bucket containing the
// q-quantile drain, or 0 when no drains happened.
func (m *Mail) BatchQuantile(q float64) int {
	if m == nil || m.drains == 0 {
		return 0
	}
	target := uint64(q * float64(m.drains))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, c := range m.batches {
		cum += c
		if cum >= target {
			return 1<<(b+1) - 1
		}
	}
	return 1<<mailBatchBuckets - 1
}

// Prof is one engine run's profiler: the per-shard cost slabs, per-worker
// park/utilization slabs, and per-worker-pair mailbox slabs, plus the
// monotonic clock they all stamp against. Construct with New, attach to an
// engine (simnet Sim.SetProfile / ShardedSim.EnableProfile), and render
// with WriteReport / WritePerfetto after the run.
type Prof struct {
	// Label names the run in reports and timelines (experiment/arm).
	Label string

	clock   func() int64
	shards  []Shard
	workers []Worker
	mail    []Mail
	nw      int
}

// New returns a profiler with the given slab counts, stamping against a
// monotonic wall clock started now.
func New(label string, shards, workers int) *Prof {
	base := time.Now()
	return NewWithClock(label, shards, workers, func() int64 { return int64(time.Since(base)) })
}

// NewWithClock is New with an injected clock (tests use a fake one to make
// rendered reports exactly reproducible).
func NewWithClock(label string, shards, workers int, clock func() int64) *Prof {
	if shards < 1 {
		shards = 1
	}
	if workers < 1 {
		workers = 1
	}
	p := &Prof{
		Label:   label,
		clock:   clock,
		shards:  make([]Shard, shards),
		workers: make([]Worker, workers),
		mail:    make([]Mail, workers*workers),
		nw:      workers,
	}
	for i := range p.workers {
		w := &p.workers[i]
		w.clock = clock
		w.blockedOnNs = make([]int64, workers)
		w.parkBlocker = -1
	}
	return p
}

// Now reads the profiler's clock (0 on nil).
func (p *Prof) Now() int64 {
	if p == nil {
		return 0
	}
	return p.clock()
}

// NumShards returns the shard slab count (0 on nil).
func (p *Prof) NumShards() int {
	if p == nil {
		return 0
	}
	return len(p.shards)
}

// NumWorkers returns the worker slab count (0 on nil).
func (p *Prof) NumWorkers() int {
	if p == nil {
		return 0
	}
	return len(p.workers)
}

// Shard returns shard slab i (nil on a nil profiler).
func (p *Prof) Shard(i int) *Shard {
	if p == nil {
		return nil
	}
	return &p.shards[i]
}

// Worker returns worker slab i (nil on a nil profiler).
func (p *Prof) Worker(i int) *Worker {
	if p == nil {
		return nil
	}
	return &p.workers[i]
}

// Mail returns the mailbox slab for entries flowing from worker `from` to
// worker `to` (nil on a nil profiler).
func (p *Prof) Mail(to, from int) *Mail {
	if p == nil {
		return nil
	}
	return &p.mail[to*p.nw+from]
}

// TotalEvents sums executed events across all shards (0 on nil). Safe to
// poll mid-run.
func (p *Prof) TotalEvents() uint64 {
	if p == nil {
		return 0
	}
	var n uint64
	for i := range p.shards {
		n += p.shards[i].Events()
	}
	return n
}

// TotalBusyNs and TotalParkNs sum the worker utilization totals (0 on
// nil). Safe to poll mid-run.
func (p *Prof) TotalBusyNs() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for i := range p.workers {
		n += p.workers[i].busyNs.Load()
	}
	return n
}

// TotalParkNs sums parked time across workers (0 on nil).
func (p *Prof) TotalParkNs() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for i := range p.workers {
		n += p.workers[i].parkNs.Load()
	}
	return n
}

// MailboxHighWater returns the maximum depth high-water mark across all
// mailboxes (0 on nil). Safe to poll mid-run.
func (p *Prof) MailboxHighWater() int64 {
	if p == nil {
		return 0
	}
	var max int64
	for i := range p.mail {
		if h := p.mail[i].hwm.Load(); h > max {
			max = h
		}
	}
	return max
}

// BusyFrac returns the fraction of workers' wall time since the profiler
// started that was spent executing events — TotalBusy / (workers *
// elapsed), clamped to [0, 1]. Safe to poll mid-run (0 on nil).
func (p *Prof) BusyFrac() float64 {
	if p == nil || len(p.workers) == 0 {
		return 0
	}
	elapsed := p.clock()
	if elapsed <= 0 {
		return 0
	}
	f := float64(p.TotalBusyNs()) / (float64(len(p.workers)) * float64(elapsed))
	if f > 1 {
		f = 1
	}
	return f
}

// AttributedFrac returns the fraction of measured worker busy time that
// landed in (shard, kind) buckets — 1.0 by construction of lap timing
// (the acceptance floor is 0.95); 0 when nothing ran.
func (p *Prof) AttributedFrac() float64 {
	if p == nil {
		return 0
	}
	busy := p.TotalBusyNs()
	if busy == 0 {
		return 0
	}
	var attr int64
	for i := range p.shards {
		for k := Kind(0); k < NumKinds; k++ {
			attr += p.shards[i].SelfNs(k)
		}
	}
	return float64(attr) / float64(busy)
}

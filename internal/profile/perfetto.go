package profile

import (
	"encoding/json"
	"io"
)

// Chrome trace-event JSON (the "JSON Array Format" Perfetto loads): one
// process per profiled run, one thread per shard worker, and one complete
// ("ph":"X") event per busy/parked span with microsecond timestamps.

type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type perfettoDoc struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// WritePerfetto writes the merged busy/parked timeline of the given
// profiled runs as Chrome trace-event JSON, loadable in ui.perfetto.dev.
// Each run is a process (pid = 1 + its index, named by its label); each
// worker is a thread carrying its busy and park spans.
func WritePerfetto(w io.Writer, profs ...*Prof) error {
	doc := perfettoDoc{TraceEvents: []perfettoEvent{}, DisplayTimeUnit: "ms"}
	for pi, p := range profs {
		if p == nil {
			continue
		}
		pid := pi + 1
		doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": p.Label},
		})
		for wi := range p.workers {
			wk := &p.workers[wi]
			doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: wi,
				Args: map[string]any{"name": workerThreadName(wi)},
			})
			for _, sp := range wk.spans {
				ev := perfettoEvent{
					Ph: "X", Pid: pid, Tid: wi,
					Ts:  float64(sp.Start) / 1e3,
					Dur: float64(sp.Dur) / 1e3,
				}
				switch sp.Kind {
				case SpanPark:
					ev.Name, ev.Cat = "parked", "horizon"
				default:
					ev.Name, ev.Cat = "busy", "events"
				}
				doc.TraceEvents = append(doc.TraceEvents, ev)
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func workerThreadName(i int) string {
	return "worker " + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

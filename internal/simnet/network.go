package simnet

import (
	"time"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Addr identifies a network endpoint (CDN node, best-effort node, client,
// or the global scheduler).
type Addr uint32

// Handler receives a delivered message.
type Handler func(from Addr, msg any)

// LinkState captures the dynamic condition of a node's access link. Nodes
// enter degradation episodes — sustained windows of elevated delay and loss
// — matching the paper's observation that degradation exhibits temporal
// locality across consecutive frames (§2.3) and that best-effort nodes show
// heavy one-way delay jitter (Fig 2d).
type LinkState struct {
	// UplinkBps is the serving (upstream) capacity in bits per second.
	UplinkBps float64
	// BaseOWD is the baseline one-way propagation delay contributed by
	// this endpoint's location.
	BaseOWD time.Duration
	// LossRate is the steady-state packet loss probability.
	LossRate float64
	// DegradedLoss and DegradedExtraOWD apply while a degradation
	// episode is active.
	DegradedLoss     float64
	DegradedExtraOWD time.Duration
	// MeanDegradedEvery and MeanDegradedFor parameterize the episode
	// process (exponential holding times). Zero disables episodes.
	MeanDegradedEvery time.Duration
	MeanDegradedFor   time.Duration
	// JitterStd is the per-packet one-way delay jitter standard
	// deviation outside episodes.
	JitterStd time.Duration
	// MaxQueue bounds the uplink queue by delay: a packet that would
	// wait longer than this behind already-committed transmissions is
	// dropped (drop-tail). Zero means unbounded (no congestion loss).
	MaxQueue time.Duration
}

// node is the network's view of one endpoint.
type node struct {
	addr    Addr
	state   LinkState
	handler Handler
	online  bool
	// epoch counts offline transitions. A packet in flight toward a node
	// records the destination epoch at send time; if the node goes offline
	// before arrival the epoch advances and the packet is dropped even if
	// the node has come back by then — the connection it travelled on died
	// with the outage.
	epoch uint64
	// degradedUntil > now means the node is inside an episode.
	degradedUntil Time
	nextEpisode   Time
	// uplinkFreeAt models serialization: the time at which the uplink
	// finishes transmitting everything queued so far.
	uplinkFreeAt Time
	// perturbLoss and perturbOWD are fault-injection overlays (see
	// SetPerturb): extra loss probability and one-way delay applied to
	// every packet this endpoint sends or receives.
	perturbLoss float64
	perturbOWD  time.Duration
	// stats
	bytesSent     uint64
	bytesReceived uint64
	dropped       uint64
}

// Network delivers messages between registered endpoints over the simulated
// links. Message payloads are passed by reference (entities must treat them
// as immutable); the byte size given to Send drives the timing model.
type Network struct {
	sim   *Sim
	rng   *stats.RNG
	nodes map[Addr]*node
	// InterRegionOWD returns extra propagation delay between two
	// endpoints; nil means zero. Installed by the fleet model.
	InterRegionOWD func(a, b Addr) time.Duration
	// Priority marks sender→receiver pairs whose traffic bypasses the
	// sender's uplink queue (it still pays serialization, propagation,
	// jitter and loss). Deployments use it for CDN→relay backhaul: one
	// prioritized substream feed serves many viewers, so operators
	// protect it from direct-viewer congestion.
	Priority func(src, dst Addr) bool
	// Blocked marks sender→receiver pairs whose traffic is silently
	// discarded at send time — the fault-injection hook for network
	// partitions (e.g. inter-region reachability loss). nil means no
	// partition. Blocked pairs also fail RTT probes.
	Blocked func(src, dst Addr) bool
	// Delivered counts successfully delivered messages.
	Delivered uint64
	// Dropped counts messages lost to link loss or offline receivers.
	Dropped uint64

	// tmQueueMs histograms per-packet uplink queueing delay (ms) for
	// packets that survive the loss/drop-tail checks; nil disables it.
	tmQueueMs *telemetry.Histogram
}

// NewNetwork returns a network on the given simulator and RNG.
func NewNetwork(sim *Sim, rng *stats.RNG) *Network {
	return &Network{sim: sim, rng: rng, nodes: make(map[Addr]*node)}
}

// SetTelemetry registers the network's instruments on reg. A nil reg
// yields nil instruments, keeping every hook on the zero-cost path.
func (n *Network) SetTelemetry(reg *telemetry.Registry) {
	n.tmQueueMs = reg.Histogram("net.queue_ms", []float64{0.1, 0.3, 1, 3, 10, 30, 100, 300})
}

// Register adds an endpoint with the given link state and message handler.
// Endpoints start online.
func (n *Network) Register(addr Addr, state LinkState, h Handler) {
	n.nodes[addr] = &node{addr: addr, state: state, handler: h, online: true}
}

// SetHandler replaces the handler for addr (used by entities constructed
// after registration).
func (n *Network) SetHandler(addr Addr, h Handler) {
	if nd, ok := n.nodes[addr]; ok {
		nd.handler = h
	}
}

// SetOnline marks a node online or offline. Messages to or from an offline
// node are dropped, and its episode state resets on return.
func (n *Network) SetOnline(addr Addr, online bool) {
	nd, ok := n.nodes[addr]
	if !ok {
		return
	}
	if nd.online && !online {
		// Going offline invalidates every connection through this node:
		// packets already in flight toward it must not survive the outage
		// even if the node returns before their scheduled arrival.
		nd.epoch++
	}
	nd.online = online
	if online {
		nd.degradedUntil = 0
		nd.nextEpisode = 0
		nd.uplinkFreeAt = n.sim.Now()
	}
}

// SetPerturb overlays fault-injection perturbations on addr: extraLoss is
// added to the loss probability and extraOWD to the one-way delay of every
// packet the endpoint sends or receives. Call with (0, 0) to clear. Unlike
// UpdateState this does not alter the node's configured LinkState, so a
// fault window can be lifted without having to remember prior values.
func (n *Network) SetPerturb(addr Addr, extraLoss float64, extraOWD time.Duration) {
	if nd, ok := n.nodes[addr]; ok {
		nd.perturbLoss = extraLoss
		nd.perturbOWD = extraOWD
	}
}

// Online reports whether addr is registered and online.
func (n *Network) Online(addr Addr) bool {
	nd, ok := n.nodes[addr]
	return ok && nd.online
}

// UpdateState mutates the link state of addr (e.g. capacity re-planning).
func (n *Network) UpdateState(addr Addr, f func(*LinkState)) {
	if nd, ok := n.nodes[addr]; ok {
		f(&nd.state)
	}
}

// State returns a copy of the link state for addr.
func (n *Network) State(addr Addr) (LinkState, bool) {
	nd, ok := n.nodes[addr]
	if !ok {
		return LinkState{}, false
	}
	return nd.state, true
}

// degraded advances the episode process and reports whether the node is in
// a degradation episode at the current time.
func (n *Network) degraded(nd *node) bool {
	if nd.state.MeanDegradedEvery == 0 {
		return false
	}
	now := n.sim.Now()
	if nd.nextEpisode == 0 {
		nd.nextEpisode = now + Time(n.rng.Exponential(float64(nd.state.MeanDegradedEvery)))
	}
	for now >= nd.nextEpisode {
		dur := Time(n.rng.Exponential(float64(nd.state.MeanDegradedFor)))
		nd.degradedUntil = nd.nextEpisode + dur
		nd.nextEpisode = nd.degradedUntil + Time(n.rng.Exponential(float64(nd.state.MeanDegradedEvery)))
	}
	return now < nd.degradedUntil
}

// Degraded reports whether addr is currently inside a degradation episode.
func (n *Network) Degraded(addr Addr) bool {
	nd, ok := n.nodes[addr]
	if !ok {
		return false
	}
	return n.degraded(nd)
}

// owd computes the one-way delay for size bytes from src to dst at the
// current instant, including serialization on src's uplink, queueing behind
// src's already-committed transmissions, propagation, jitter, and episode
// penalties. It advances src's uplink occupancy.
func (n *Network) owd(src, dst *node, size int) (time.Duration, bool) {
	now := n.sim.Now()
	srcDeg := n.degraded(src)
	dstDeg := n.degraded(dst)

	// Loss: independent per side.
	loss := src.state.LossRate + dst.state.LossRate + src.perturbLoss + dst.perturbLoss
	if srcDeg {
		loss += src.state.DegradedLoss
	}
	if dstDeg {
		loss += dst.state.DegradedLoss
	}
	if n.rng.Bool(loss) {
		return 0, false
	}

	// Serialization + queueing on the sender's uplink, with drop-tail
	// once the backlog exceeds the queue bound. Priority traffic jumps
	// the queue (and, being small relative to capacity by design, is
	// approximated as not consuming backlog).
	var ser time.Duration
	if src.state.UplinkBps > 0 {
		ser = time.Duration(float64(size*8) / src.state.UplinkBps * float64(time.Second))
	}
	var queueing time.Duration
	if n.Priority != nil && n.Priority(src.addr, dst.addr) {
		// Queue-jump: pay serialization only.
	} else {
		start := now
		if src.uplinkFreeAt > start {
			start = src.uplinkFreeAt
		}
		queueing = start - now
		if src.state.MaxQueue > 0 && queueing > src.state.MaxQueue {
			return 0, false
		}
		src.uplinkFreeAt = start + ser
	}

	prop := src.state.BaseOWD + dst.state.BaseOWD
	if n.InterRegionOWD != nil {
		prop += n.InterRegionOWD(src.addr, dst.addr)
	}

	var jitter time.Duration
	if js := src.state.JitterStd + dst.state.JitterStd; js > 0 {
		j := n.rng.Normal(0, float64(js))
		if j < 0 {
			j = -j / 4 // asymmetric: delays inflate more than they deflate
		}
		jitter = time.Duration(j)
	}
	if srcDeg {
		jitter += src.state.DegradedExtraOWD
	}
	if dstDeg {
		jitter += dst.state.DegradedExtraOWD
	}
	jitter += src.perturbOWD + dst.perturbOWD
	n.tmQueueMs.Observe(float64(queueing) / float64(time.Millisecond))
	return queueing + ser + prop + jitter, true
}

// Poolable is implemented by pooled message types (see internal/transport):
// the network owns exactly one reference per Send and releases it when the
// delivery completes, at every send-side drop, and at every arrival-side
// drop — so a pooled message returns to its free list the moment its last
// in-flight copy dies.
type Poolable interface{ PoolRelease() }

// releaseMsg returns one pooled-message reference to its owner; plain
// messages pass through untouched.
func releaseMsg(msg any) {
	if p, ok := msg.(Poolable); ok {
		p.PoolRelease()
	}
}

// Send transmits msg of the given wire size from src to dst, invoking the
// destination handler after the simulated one-way delay, or dropping it on
// loss or endpoint churn. Delivery re-checks that the destination is still
// online at arrival time. Each Send consumes one pooled-message reference
// (see Poolable); senders fanning one message out retain once per Send.
func (n *Network) Send(src, dst Addr, size int, msg any) {
	s, ok := n.nodes[src]
	if !ok || !s.online {
		n.Dropped++
		releaseMsg(msg)
		return
	}
	d, ok := n.nodes[dst]
	if !ok || !d.online {
		n.Dropped++
		if ok {
			d.dropped++
		}
		releaseMsg(msg)
		return
	}
	if n.Blocked != nil && n.Blocked(src, dst) {
		n.Dropped++
		d.dropped++
		releaseMsg(msg)
		return
	}
	delay, delivered := n.owd(s, d, size)
	if !delivered {
		n.Dropped++
		d.dropped++
		releaseMsg(msg)
		return
	}
	s.bytesSent += uint64(size)
	// Closure-free: the delivery is enqueued as a pooled typed event
	// carrying (dst, src, size, msg, epoch) by value.
	n.sim.scheduleDeliver(delay, n, d, src, size, msg, d.epoch)
}

// deliver completes a Send at its arrival time. Drop if the destination is
// offline — or went offline at any point since the packet was sent (epoch
// advanced), even if it has since returned: the connection died with the
// outage.
func (n *Network) deliver(d *node, src Addr, size int, msg any, epoch uint64) {
	if !d.online || d.epoch != epoch || d.handler == nil {
		n.Dropped++
		d.dropped++
		releaseMsg(msg)
		return
	}
	d.bytesReceived += uint64(size)
	n.Delivered++
	d.handler(src, msg)
	// Handlers must not retain message pointers (simulator immutability
	// rule), so the network's reference dies with the delivery.
	releaseMsg(msg)
}

// SampleRTT returns the instantaneous round-trip time estimate between a and
// b for a small probe, without consuming uplink capacity. It reflects
// current degradation episodes, which is what makes client-side probing
// informative.
func (n *Network) SampleRTT(a, b Addr) (time.Duration, bool) {
	na, ok := n.nodes[a]
	if !ok || !na.online {
		return 0, false
	}
	nb, ok := n.nodes[b]
	if !ok || !nb.online {
		return 0, false
	}
	if n.Blocked != nil && (n.Blocked(a, b) || n.Blocked(b, a)) {
		return 0, false
	}
	prop := na.state.BaseOWD + nb.state.BaseOWD
	if n.InterRegionOWD != nil {
		prop += n.InterRegionOWD(a, b)
	}
	rtt := 2 * prop
	if n.degraded(na) {
		rtt += na.state.DegradedExtraOWD
	}
	if n.degraded(nb) {
		rtt += nb.state.DegradedExtraOWD
	}
	rtt += na.perturbOWD + nb.perturbOWD
	if js := na.state.JitterStd + nb.state.JitterStd; js > 0 {
		j := n.rng.Normal(0, float64(js))
		if j < 0 {
			j = -j
		}
		rtt += time.Duration(j)
	}
	return rtt, true
}

// BytesSent returns the total bytes transmitted by addr.
func (n *Network) BytesSent(addr Addr) uint64 {
	if nd, ok := n.nodes[addr]; ok {
		return nd.bytesSent
	}
	return 0
}

// BytesReceived returns the total bytes received by addr.
func (n *Network) BytesReceived(addr Addr) uint64 {
	if nd, ok := n.nodes[addr]; ok {
		return nd.bytesReceived
	}
	return 0
}

// UplinkBusyFraction estimates addr's uplink utilization as the fraction of
// the lookback window the uplink spent transmitting (1 when backlogged).
func (n *Network) UplinkBusyFraction(addr Addr, lookback time.Duration) float64 {
	nd, ok := n.nodes[addr]
	if !ok || lookback <= 0 {
		return 0
	}
	busy := nd.uplinkFreeAt - n.sim.Now()
	if busy <= 0 {
		return 0
	}
	f := float64(busy) / float64(lookback)
	if f > 1 {
		f = 1
	}
	return f
}

package simnet

import "time"

// NodeID is a dense node index on a ShardedNet. Dense ids index the
// struct-of-arrays state directly — no map lookups on the packet hot path.
type NodeID int32

// NodeHandler receives a delivered message on the destination's region loop.
type NodeHandler func(dst, src NodeID, msg any)

// ShardedNet is the packet layer of the sharded engine. Per-node state is
// held in parallel slices indexed by NodeID; the static portions (region,
// link state, handler, fan-out tables) are frozen before Run and may be read
// from any worker, while the dynamic portions (online flag, uplink
// occupancy, degradation episodes, counters) are touched only by the owning
// region's worker.
//
// The delay model mirrors the serial Network but splits the draw between
// the two sides so every random number is attributable to exactly one
// region stream:
//
//   - Sender side (at send, sender-region RNG): static loss of both ends,
//     the sender's degradation state, uplink serialization + drop-tail
//     queueing, propagation (both base OWDs + the inter-region matrix), and
//     jitter from both ends' static JitterStd.
//   - Receiver side (at arrival, receiver-region RNG): online/churn check,
//     the receiver's degradation episode (extra loss, and extra OWD applied
//     by re-scheduling the delivery later on the local loop).
//
// Cross-region delays are clamped up to the engine lookahead, which the
// latency matrix must make a true lower bound for the clamp to be a no-op.
type ShardedNet struct {
	sim *ShardedSim

	// Static after Start (read-only from any worker).
	region  []uint16
	state   []LinkState
	handler []NodeHandler

	// InterRegionOWD is the static latency matrix (nil = zero). Must be
	// set before Run; cross-region entries must be >= the lookahead.
	InterRegionOWD func(ra, rb int) time.Duration

	// Dynamic, owner-confined (indexed by NodeID).
	online        []bool
	lastOffline   []Time
	uplinkFreeAt  []Time
	degradedUntil []Time
	nextEpisode   []Time

	// Per-region counters (owner-confined; read after Run). Deterministic
	// for a fixed seed and workload at any worker count. DroppedOffline is
	// the subset of Dropped lost to destination churn rather than link
	// quality, letting QoE be measured over online targets.
	SentPkts       []uint64
	Delivered      []uint64
	Dropped        []uint64
	DroppedOffline []uint64
	BytesSent      []uint64
	BytesReceived  []uint64
}

// NewShardedNet attaches a packet layer to the engine.
func NewShardedNet(sim *ShardedSim) *ShardedNet {
	n := &ShardedNet{
		sim:            sim,
		SentPkts:       make([]uint64, sim.Regions()),
		Delivered:      make([]uint64, sim.Regions()),
		Dropped:        make([]uint64, sim.Regions()),
		DroppedOffline: make([]uint64, sim.Regions()),
		BytesSent:      make([]uint64, sim.Regions()),
		BytesReceived:  make([]uint64, sim.Regions()),
	}
	sim.net = n
	return n
}

// Register adds a node homed in the given region and returns its dense id.
// Setup-phase only (before the first Run).
func (n *ShardedNet) Register(region int, st LinkState, h NodeHandler) NodeID {
	id := NodeID(len(n.region))
	n.region = append(n.region, uint16(region))
	n.state = append(n.state, st)
	n.handler = append(n.handler, h)
	n.online = append(n.online, true)
	n.lastOffline = append(n.lastOffline, -1)
	n.uplinkFreeAt = append(n.uplinkFreeAt, 0)
	n.degradedUntil = append(n.degradedUntil, 0)
	n.nextEpisode = append(n.nextEpisode, 0)
	return id
}

// SetHandler replaces a node's handler (setup-phase only).
func (n *ShardedNet) SetHandler(id NodeID, h NodeHandler) { n.handler[id] = h }

// NumNodes returns the registered node count.
func (n *ShardedNet) NumNodes() int { return len(n.region) }

// RegionOf returns the region a node is homed in (static, any worker).
func (n *ShardedNet) RegionOf(id NodeID) int { return int(n.region[id]) }

// Home returns the region loop owning a node.
func (n *ShardedNet) Home(id NodeID) *Region { return n.sim.regions[n.region[id]] }

// Online reports a node's online flag. Owner-worker (or post-Run) only.
func (n *ShardedNet) Online(id NodeID) bool { return n.online[id] }

// SetOnline flips a node's online flag; must run on the owning worker (or
// in the setup phase). Going offline stamps the churn epoch: packets sent
// before the transition are dropped at arrival even if the node is back.
func (n *ShardedNet) SetOnline(id NodeID, online bool) {
	if n.online[id] && !online {
		n.lastOffline[id] = n.Home(id).Now()
	}
	n.online[id] = online
	if online {
		n.degradedUntil[id] = 0
		n.nextEpisode[id] = 0
		n.uplinkFreeAt[id] = n.Home(id).Now()
	}
}

// degraded advances a node's episode process at its region's current time,
// drawing holding times from the region stream. Owner-worker only.
func (n *ShardedNet) degraded(id NodeID) bool {
	st := &n.state[id]
	if st.MeanDegradedEvery == 0 {
		return false
	}
	rl := n.Home(id)
	now := rl.Now()
	rng := rl.RNG()
	if n.nextEpisode[id] == 0 {
		n.nextEpisode[id] = now + Time(rng.Exponential(float64(st.MeanDegradedEvery)))
	}
	for now >= n.nextEpisode[id] {
		dur := Time(rng.Exponential(float64(st.MeanDegradedFor)))
		n.degradedUntil[id] = n.nextEpisode[id] + dur
		n.nextEpisode[id] = n.degradedUntil[id] + Time(rng.Exponential(float64(st.MeanDegradedEvery)))
	}
	return now < n.degradedUntil[id]
}

// Send transmits msg of the given wire size from src to dst. Must run on
// src's owning worker (inside one of its event callbacks). The sender-side
// half of the delay model runs immediately; the receiver-side half runs at
// arrival on dst's owner.
func (n *ShardedNet) Send(src, dst NodeID, size int, msg any) {
	srcRegion := int(n.region[src])
	n.SentPkts[srcRegion]++
	if !n.online[src] {
		n.Dropped[srcRegion]++
		n.DroppedOffline[srcRegion]++
		return
	}
	rl := n.sim.regions[srcRegion]
	now := rl.Now()
	rng := rl.RNG()
	ss := &n.state[src]
	ds := &n.state[dst]

	// Static loss of both ends plus the sender's dynamic degradation. The
	// receiver's degradation loss is drawn at arrival by its own region.
	loss := ss.LossRate + ds.LossRate
	if n.degraded(src) {
		loss += ss.DegradedLoss
	}
	if rng.Bool(loss) {
		n.Dropped[srcRegion]++
		return
	}

	// Serialization + drop-tail queueing on the sender's uplink.
	var ser time.Duration
	if ss.UplinkBps > 0 {
		ser = time.Duration(float64(size*8) / ss.UplinkBps * float64(time.Second))
	}
	start := now
	if n.uplinkFreeAt[src] > start {
		start = n.uplinkFreeAt[src]
	}
	queueing := start - now
	if ss.MaxQueue > 0 && queueing > ss.MaxQueue {
		n.Dropped[srcRegion]++
		return
	}
	n.uplinkFreeAt[src] = start + ser

	prop := ss.BaseOWD + ds.BaseOWD
	dstRegion := int(n.region[dst])
	if n.InterRegionOWD != nil && srcRegion != dstRegion {
		prop += n.InterRegionOWD(srcRegion, dstRegion)
	}

	var jitter time.Duration
	if js := ss.JitterStd + ds.JitterStd; js > 0 {
		j := rng.Normal(0, float64(js))
		if j < 0 {
			j = -j / 4
		}
		jitter = time.Duration(j)
	}
	if now < n.degradedUntil[src] {
		jitter += ss.DegradedExtraOWD
	}

	delay := queueing + ser + prop + jitter
	if srcRegion != dstRegion && delay < n.sim.cfg.Lookahead {
		// The latency matrix is supposed to make this a no-op; the clamp
		// keeps the conservative horizon sound regardless.
		delay = n.sim.cfg.Lookahead
	}
	n.BytesSent[srcRegion] += uint64(size)

	at := now + delay
	e := shardEntry{at: at, origin: rl.id, seq: rl.nextSeq()}
	d := shardDeliver{msg: msg, sentAt: now, src: src, dst: dst, size: int32(size)}
	dstWorker := n.sim.workerOf(uint16(dstRegion))
	if srcWorker := n.sim.workerOf(rl.id); srcWorker == dstWorker {
		// Same worker (same or sibling region): straight into the
		// destination heap with the sender-stamped key.
		n.sim.regions[dstRegion].scheduleDeliver(e, d)
		return
	}
	n.sim.workers[dstWorker].inbox[n.sim.workerOf(rl.id)].push(mailEntry{
		at: at, seq: e.seq, sentAt: now, msg: msg,
		src: src, dst: dst, size: int32(size), origin: e.origin,
	})
}

// deliver completes a Send on the destination's region loop: churn check,
// then the receiver-side half of the delay model.
func (n *ShardedNet) deliver(rl *Region, d shardDeliver) {
	dst := d.dst
	dstRegion := int(rl.id)
	if !n.online[dst] || n.lastOffline[dst] >= d.sentAt || n.handler[dst] == nil {
		n.Dropped[dstRegion]++
		n.DroppedOffline[dstRegion]++
		return
	}
	if n.degraded(dst) {
		st := &n.state[dst]
		if rl.RNG().Bool(st.DegradedLoss) {
			n.Dropped[dstRegion]++
			return
		}
		if st.DegradedExtraOWD > 0 && !d.deferred {
			// The episode inflates the tail of the path: push the delivery
			// out by the episode penalty, at most once per packet.
			d.deferred = true
			rl.scheduleDeliver(shardEntry{at: rl.Now() + st.DegradedExtraOWD, origin: rl.id, seq: rl.nextSeq()}, d)
			return
		}
	}
	n.Delivered[dstRegion]++
	n.BytesReceived[dstRegion] += uint64(d.size)
	n.handler[dst](dst, d.src, d.msg)
}

// TotalDelivered sums the per-region delivered counters (post-Run).
func (n *ShardedNet) TotalDelivered() uint64 { return sumU64(n.Delivered) }

// TotalDropped sums the per-region dropped counters (post-Run).
func (n *ShardedNet) TotalDropped() uint64 { return sumU64(n.Dropped) }

// TotalSent sums the per-region send-attempt counters (post-Run).
func (n *ShardedNet) TotalSent() uint64 { return sumU64(n.SentPkts) }

func sumU64(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}

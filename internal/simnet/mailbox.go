package simnet

import (
	"sync"

	"repro/internal/profile"
)

// mailEntry is one cross-shard packet delivery in flight between workers.
// The ordering key (at, origin, seq) is stamped by the sender: origin is the
// sender's region and seq the sender's per-region event counter at send
// time, so the destination loop merges arrivals at exactly the same point
// of its timeline no matter how regions are packed onto workers.
type mailEntry struct {
	at     Time
	seq    uint64
	sentAt Time
	msg    any
	src    NodeID
	dst    NodeID
	size   int32
	origin uint16
}

// mailbox is the SPSC channel between one sending worker and one receiving
// worker. Exactly one goroutine appends (the sender worker) and exactly one
// drains (the receiver worker), so the mutex is almost never contended; the
// two buffers are swapped on drain and reused, making the steady-state send
// path allocation-free once both have grown to the high-water mark.
type mailbox struct {
	mu  sync.Mutex
	in  []mailEntry // sender appends here
	out []mailEntry // receiver's recycled drain buffer (empty, capacity kept)
	// prof is the self-profiling slab (nil = disabled: the hooks are
	// inlined nil checks). Wired before Run starts, read by both sides.
	prof *profile.Mail
}

// push appends one entry; called only by the owning sender worker.
func (m *mailbox) push(e mailEntry) {
	m.mu.Lock()
	m.in = append(m.in, e)
	m.prof.Push(len(m.in))
	m.mu.Unlock()
}

// drain swaps the filled buffer out and hands it to the receiver, keeping
// the previous drain buffer (cleared) as the next fill target. The returned
// slice is owned by the receiver until its next drain call.
func (m *mailbox) drain() []mailEntry {
	m.mu.Lock()
	if len(m.in) == 0 {
		m.mu.Unlock()
		return nil
	}
	got := m.in
	m.in = m.out[:0]
	m.out = got
	m.mu.Unlock()
	m.prof.Drain(len(got))
	return got
}

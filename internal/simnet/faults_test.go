package simnet

import (
	"testing"
	"time"

	"repro/internal/stats"
)

func faultFixture(t *testing.T) (*Sim, *Network) {
	t.Helper()
	sim := NewSim()
	net := NewNetwork(sim, stats.NewRNG(1))
	return sim, net
}

// quiet is a link state with deterministic timing: no loss, no jitter, no
// degradation episodes, generous uplink.
var quiet = LinkState{UplinkBps: 100e6, BaseOWD: 10 * time.Millisecond}

// TestOfflineDropsInFlight is the regression test for in-flight delivery
// semantics: packets already queued toward a node when SetOnline(addr,
// false) fires mid-transfer must be dropped deterministically, not
// delivered.
func TestOfflineDropsInFlight(t *testing.T) {
	sim, net := faultFixture(t)
	var got []string
	net.Register(1, quiet, nil)
	net.Register(2, quiet, func(from Addr, msg any) {
		got = append(got, msg.(string))
	})

	// OWD is 20 ms (two BaseOWD halves). Send at t=0, kill dst at t=10ms.
	net.Send(1, 2, 100, "doomed")
	sim.At(Time(10*time.Millisecond), func() { net.SetOnline(2, false) })
	sim.Run(Time(time.Second))
	if len(got) != 0 {
		t.Fatalf("packet delivered to offline node: %v", got)
	}
	if net.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", net.Dropped)
	}
}

// TestOfflineFlapStillDropsInFlight covers the sharper case: the node goes
// offline and comes back *before* the packet's scheduled arrival. The
// connection the packet travelled on died with the outage, so the packet
// must still be dropped — only traffic sent after recovery flows again.
func TestOfflineFlapStillDropsInFlight(t *testing.T) {
	sim, net := faultFixture(t)
	var got []string
	net.Register(1, quiet, nil)
	net.Register(2, quiet, func(from Addr, msg any) {
		got = append(got, msg.(string))
	})

	net.Send(1, 2, 100, "doomed") // arrives at ~20 ms
	sim.At(Time(5*time.Millisecond), func() { net.SetOnline(2, false) })
	sim.At(Time(8*time.Millisecond), func() { net.SetOnline(2, true) })
	// A packet sent after recovery must be delivered.
	sim.At(Time(30*time.Millisecond), func() { net.Send(1, 2, 100, "fresh") })
	sim.Run(Time(time.Second))

	if len(got) != 1 || got[0] != "fresh" {
		t.Fatalf("got %v, want only the post-recovery packet", got)
	}
}

// TestOnlineWithoutOutageDelivers guards against the epoch counter advancing
// on spurious SetOnline(true) calls.
func TestOnlineWithoutOutageDelivers(t *testing.T) {
	sim, net := faultFixture(t)
	delivered := 0
	net.Register(1, quiet, nil)
	net.Register(2, quiet, func(Addr, any) { delivered++ })

	net.Send(1, 2, 100, "ok")
	sim.At(Time(5*time.Millisecond), func() { net.SetOnline(2, true) }) // no-op
	sim.Run(Time(time.Second))
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
}

func TestBlockedHookPartitionsPairs(t *testing.T) {
	sim, net := faultFixture(t)
	delivered := 0
	net.Register(1, quiet, nil)
	net.Register(2, quiet, func(Addr, any) { delivered++ })
	net.Register(3, quiet, func(Addr, any) { delivered++ })

	net.Blocked = func(src, dst Addr) bool { return src == 1 && dst == 2 }
	net.Send(1, 2, 100, "blocked")
	net.Send(1, 3, 100, "allowed")
	sim.Run(Time(time.Second))
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (only the unblocked pair)", delivered)
	}
	if net.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", net.Dropped)
	}

	// RTT probes across a blocked pair fail in either direction.
	if _, ok := net.SampleRTT(2, 1); ok {
		t.Fatal("SampleRTT succeeded across blocked pair")
	}
	if _, ok := net.SampleRTT(1, 3); !ok {
		t.Fatal("SampleRTT failed on unblocked pair")
	}

	// Lifting the partition restores delivery.
	net.Blocked = nil
	net.Send(1, 2, 100, "after")
	sim.Run(Time(2 * time.Second))
	if delivered != 2 {
		t.Fatalf("delivered = %d after lifting partition, want 2", delivered)
	}
}

func TestSetPerturbLossAndLatency(t *testing.T) {
	sim, net := faultFixture(t)
	var arrival Time
	net.Register(1, quiet, nil)
	net.Register(2, quiet, func(Addr, any) { arrival = sim.Now() })

	// Guaranteed loss.
	net.SetPerturb(2, 1.0, 0)
	net.Send(1, 2, 100, "lost")
	sim.Run(Time(time.Second))
	if net.Dropped != 1 {
		t.Fatalf("Dropped = %d under perturbLoss=1, want 1", net.Dropped)
	}

	// Extra latency, no loss.
	net.SetPerturb(2, 0, 500*time.Millisecond)
	base := sim.Now()
	net.Send(1, 2, 100, "slow")
	sim.Run(Time(5 * time.Second))
	if arrival-base < Time(500*time.Millisecond) {
		t.Fatalf("arrival after %v, want >= 500ms of injected delay", arrival-base)
	}
	rtt, ok := net.SampleRTT(1, 2)
	if !ok || rtt < 500*time.Millisecond {
		t.Fatalf("SampleRTT = %v, %v; want >= 500ms", rtt, ok)
	}

	// Clearing restores the baseline.
	net.SetPerturb(2, 0, 0)
	rtt, ok = net.SampleRTT(1, 2)
	if !ok || rtt >= 100*time.Millisecond {
		t.Fatalf("SampleRTT = %v after clear, want baseline (~40ms)", rtt)
	}
}

package simnet

import (
	"testing"
	"time"

	"repro/internal/stats"
)

func TestDropTailQueue(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, stats.NewRNG(1))
	// 1 Mbps uplink, 100 ms queue bound: each 12500-byte packet takes
	// 100 ms to serialize, so only ~2 packets of a burst can be in
	// flight/queued; the rest are drop-tailed.
	n.Register(1, LinkState{UplinkBps: 1e6, MaxQueue: 100 * time.Millisecond}, nil)
	delivered := 0
	n.Register(2, LinkState{UplinkBps: 1e9}, func(Addr, any) { delivered++ })
	for i := 0; i < 10; i++ {
		n.Send(1, 2, 12500, i)
	}
	s.Run(10 * time.Second)
	if delivered >= 10 {
		t.Fatal("no congestion loss despite bounded queue")
	}
	if delivered < 1 || delivered > 3 {
		t.Fatalf("delivered %d, want ~2 with a 100ms bound", delivered)
	}
	if n.Dropped == 0 {
		t.Fatal("drop counter not incremented")
	}
}

func TestUnboundedQueueNeverDropsFromCongestion(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, stats.NewRNG(1))
	n.Register(1, LinkState{UplinkBps: 1e6}, nil) // MaxQueue 0 = unbounded
	delivered := 0
	n.Register(2, LinkState{UplinkBps: 1e9}, func(Addr, any) { delivered++ })
	for i := 0; i < 10; i++ {
		n.Send(1, 2, 12500, i)
	}
	s.Run(10 * time.Second)
	if delivered != 10 {
		t.Fatalf("delivered %d, want 10 with unbounded queue", delivered)
	}
}

func TestPriorityLaneBypassesBacklog(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, stats.NewRNG(1))
	n.Register(1, LinkState{UplinkBps: 1e6, MaxQueue: 150 * time.Millisecond}, nil)
	var normalAt, priorityAt []Time
	n.Register(2, LinkState{UplinkBps: 1e9}, func(_ Addr, m any) {
		normalAt = append(normalAt, s.Now())
		_ = m
	})
	n.Register(3, LinkState{UplinkBps: 1e9}, func(Addr, any) {
		priorityAt = append(priorityAt, s.Now())
	})
	n.Priority = func(src, dst Addr) bool { return dst == 3 }

	// Fill the backlog toward the normal receiver, then send one
	// priority packet: it must arrive quickly despite the backlog, and
	// must not be drop-tailed.
	for i := 0; i < 5; i++ {
		n.Send(1, 2, 12500, i) // 100 ms serialization each
	}
	n.Send(1, 3, 12500, "prio")
	s.Run(5 * time.Second)
	if len(priorityAt) != 1 {
		t.Fatalf("priority packet not delivered (%d)", len(priorityAt))
	}
	if priorityAt[0] > 150*time.Millisecond {
		t.Fatalf("priority packet queued behind backlog: %v", priorityAt[0])
	}
	// Normal traffic still flows (some possibly dropped by the bound).
	if len(normalAt) == 0 {
		t.Fatal("normal traffic starved entirely")
	}
}

func TestPriorityStillSubjectToLoss(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, stats.NewRNG(2))
	n.Register(1, LinkState{UplinkBps: 1e9, LossRate: 0.5}, nil)
	got := 0
	n.Register(2, LinkState{UplinkBps: 1e9}, func(Addr, any) { got++ })
	n.Priority = func(src, dst Addr) bool { return true }
	for i := 0; i < 1000; i++ {
		n.Send(1, 2, 100, i)
	}
	s.Run(time.Minute)
	frac := float64(got) / 1000
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("priority traffic must still see link loss: delivered %.2f", frac)
	}
}

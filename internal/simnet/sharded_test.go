package simnet

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"
)

// buildShardWorkload constructs a deterministic cross-region traffic mix on
// a fresh engine: per-region senders ticking at staggered periods, each
// picking destinations from the region RNG stream (mostly local, ~30%
// cross-region), over links with loss, jitter, queueing, and degradation
// episodes. Handler state is region-confined: each region appends to its own
// log, which the digest later folds in region order.
func buildShardWorkload(seed uint64, regions, workers int) (*ShardedSim, *ShardedNet, [][]string) {
	sim := NewShardedSim(ShardConfig{
		Regions:   regions,
		Workers:   workers,
		Seed:      seed,
		Lookahead: 4 * time.Millisecond,
	})
	net := NewShardedNet(sim)
	net.InterRegionOWD = func(ra, rb int) time.Duration {
		d := ra - rb
		if d < 0 {
			d = -d
		}
		return time.Duration(d) * 4 * time.Millisecond
	}

	logs := make([][]string, regions)
	perRegion := 8
	var ids [][]NodeID
	for r := 0; r < regions; r++ {
		ids = append(ids, nil)
		for i := 0; i < perRegion; i++ {
			st := LinkState{
				UplinkBps: 20e6 + float64(i)*5e6,
				BaseOWD:   time.Duration(1+i%3) * time.Millisecond,
				LossRate:  0.01,
				JitterStd: 500 * time.Microsecond,
				MaxQueue:  50 * time.Millisecond,
			}
			if i%4 == 0 {
				st.MeanDegradedEvery = 3 * time.Second
				st.MeanDegradedFor = 300 * time.Millisecond
				st.DegradedLoss = 0.2
				st.DegradedExtraOWD = 5 * time.Millisecond
			}
			r := r
			id := net.Register(r, st, func(dst, src NodeID, msg any) {
				logs[r] = append(logs[r], fmt.Sprintf("%d<-%d:%v@%d", dst, src, msg, sim.Region(r).Now()))
			})
			ids[r] = append(ids[r], id)
		}
	}
	for r := 0; r < regions; r++ {
		rl := sim.Region(r)
		r := r
		seqNo := 0
		rl.Every(time.Duration(5+r)*time.Millisecond, func() bool {
			rng := rl.RNG()
			src := ids[r][rng.IntN(perRegion)]
			dstRegion := r
			if rng.Bool(0.3) {
				dstRegion = rng.IntN(regions)
			}
			dst := ids[dstRegion][rng.IntN(perRegion)]
			seqNo++
			net.Send(src, dst, 1200, fmt.Sprintf("r%d#%d", r, seqNo))
			if seqNo%40 == 0 {
				// Exercise churn: knock a node of this region briefly.
				victim := ids[r][rng.IntN(perRegion)]
				net.SetOnline(victim, false)
				rl.After(20*time.Millisecond, func() { net.SetOnline(victim, true) })
			}
			return true
		})
	}
	return sim, net, logs
}

// digestShardRun folds the full observable state of a run — per-region event
// logs, counters, clocks, and processed counts — into one hash.
func digestShardRun(sim *ShardedSim, net *ShardedNet, logs [][]string) uint64 {
	h := fnv.New64a()
	for r := 0; r < sim.Regions(); r++ {
		fmt.Fprintf(h, "region %d now=%d processed=%d seq=%d\n",
			r, sim.Region(r).Now(), sim.Region(r).Processed(), sim.Region(r).seq)
		fmt.Fprintf(h, "sent=%d delivered=%d dropped=%d bs=%d br=%d\n",
			net.SentPkts[r], net.Delivered[r], net.Dropped[r], net.BytesSent[r], net.BytesReceived[r])
		for _, line := range logs[r] {
			h.Write([]byte(line))
			h.Write([]byte{'\n'})
		}
	}
	return h.Sum64()
}

// TestShardedByteIdentity is the determinism contract: for a fixed seed the
// full observable run state is identical for every worker count, including
// the single-threaded reference (workers=1).
func TestShardedByteIdentity(t *testing.T) {
	const regions = 4
	for _, seed := range []uint64{1, 2, 3} {
		var ref uint64
		var refDelivered uint64
		for _, workers := range []int{1, 2, 4} {
			sim, net, logs := buildShardWorkload(seed, regions, workers)
			sim.Run(5 * time.Second)
			got := digestShardRun(sim, net, logs)
			if workers == 1 {
				ref = got
				refDelivered = net.TotalDelivered()
				if refDelivered == 0 {
					t.Fatalf("seed %d: reference run delivered nothing", seed)
				}
				continue
			}
			if got != ref {
				t.Errorf("seed %d workers %d: digest %x != serial reference %x",
					seed, workers, got, ref)
			}
			if d := net.TotalDelivered(); d != refDelivered {
				t.Errorf("seed %d workers %d: delivered %d != %d", seed, workers, d, refDelivered)
			}
		}
	}
}

// TestShardedRepeatedRuns checks that Run may be called with increasing
// deadlines and still match a single long run, at every worker count.
func TestShardedRepeatedRuns(t *testing.T) {
	simA, netA, logsA := buildShardWorkload(7, 4, 4)
	simA.Run(5 * time.Second)
	want := digestShardRun(simA, netA, logsA)

	simB, netB, logsB := buildShardWorkload(7, 4, 2)
	for _, until := range []time.Duration{1 * time.Second, 2 * time.Second, 3500 * time.Millisecond, 5 * time.Second} {
		simB.Run(until)
	}
	if got := digestShardRun(simB, netB, logsB); got != want {
		t.Errorf("chunked runs digest %x != single run %x", got, want)
	}
}

// TestShardStarvation: a silent region (no events at all) must not stall
// global progress — the conservative horizon rises through published idle
// promises, so the active regions finish the full run.
func TestShardStarvation(t *testing.T) {
	sim := NewShardedSim(ShardConfig{Regions: 4, Workers: 4, Seed: 1, Lookahead: 4 * time.Millisecond})
	net := NewShardedNet(sim)
	// Regions 1..3 are busy; region 0 is completely silent.
	var delivered int
	var ids []NodeID
	for r := 0; r < 4; r++ {
		ids = append(ids, net.Register(r, LinkState{UplinkBps: 100e6, BaseOWD: time.Millisecond}, nil))
	}
	net.SetHandler(ids[1], func(dst, src NodeID, msg any) { delivered++ })
	for r := 2; r < 4; r++ {
		rl := sim.Region(r)
		src := ids[r]
		rl.Every(time.Millisecond, func() bool {
			net.Send(src, ids[1], 100, "ping")
			return true
		})
	}
	done := make(chan struct{})
	go func() {
		sim.Run(2 * time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run stalled: silent region blocked the conservative horizon")
	}
	if delivered < 3000 {
		t.Errorf("delivered %d pings, want ~4000 (2 senders x 2000 ticks minus loss)", delivered)
	}
	if now := sim.Region(0).Now(); now != 2*time.Second {
		t.Errorf("silent region clock = %v, want %v", now, 2*time.Second)
	}
}

// TestShardedCrossRegionOrdering pins the merge rule: arrivals from
// different origins at the same destination execute in (at, origin, seq)
// order, regardless of which worker hosted the sender.
func TestShardedCrossRegionOrdering(t *testing.T) {
	for _, workers := range []int{1, 3} {
		sim := NewShardedSim(ShardConfig{Regions: 3, Workers: workers, Seed: 1, Lookahead: time.Millisecond})
		net := NewShardedNet(sim)
		var order []string
		var ids []NodeID
		for r := 0; r < 3; r++ {
			ids = append(ids, net.Register(r, LinkState{}, nil))
		}
		net.SetHandler(ids[0], func(dst, src NodeID, msg any) {
			order = append(order, msg.(string))
		})
		// Both senders emit packets that land at exactly t=1ms (zero link
		// delay, cross-region clamp to the 1ms lookahead). Ties break by
		// origin region, then sender seq.
		sim.Region(2).At(0, func() {
			net.Send(ids[2], ids[0], 10, "c1")
			net.Send(ids[2], ids[0], 10, "c2")
		})
		sim.Region(1).At(0, func() {
			net.Send(ids[1], ids[0], 10, "b1")
		})
		sim.Run(10 * time.Millisecond)
		want := "[b1 c1 c2]"
		if got := fmt.Sprint(order); got != want {
			t.Errorf("workers=%d: arrival order %v, want %v", workers, got, want)
		}
	}
}

// TestMailboxSteadyStateAllocs: once both swap buffers have grown to the
// high-water mark, the cross-shard push/drain cycle must not allocate.
func TestMailboxSteadyStateAllocs(t *testing.T) {
	mb := &mailbox{}
	// Warm both buffers past the steady-state batch size.
	for round := 0; round < 2; round++ {
		for i := 0; i < 64; i++ {
			mb.push(mailEntry{at: Time(i)})
		}
		mb.drain()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			mb.push(mailEntry{at: Time(i), seq: uint64(i)})
		}
		got := mb.drain()
		for i := range got {
			got[i].msg = nil
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state mailbox cycle allocates %.1f times per 64-packet batch, want 0", allocs)
	}
}

// TestShardedSendAllocs bounds the whole cross-shard send hot path: Send on
// a warmed engine (pools and mailboxes at high-water mark) must not allocate
// beyond the payload itself.
func TestShardedSendAllocs(t *testing.T) {
	sim := NewShardedSim(ShardConfig{Regions: 2, Workers: 2, Seed: 1, Lookahead: time.Millisecond})
	net := NewShardedNet(sim)
	a := net.Register(0, LinkState{}, nil)
	b := net.Register(1, LinkState{}, nil)
	net.SetHandler(b, func(dst, src NodeID, msg any) {})
	// Warm: run a burst end to end so heaps, slabs, and both mailbox
	// buffers reach their high-water marks.
	w0, w1 := sim.workers[0], sim.workers[1]
	for round := 0; round < 2; round++ {
		for i := 0; i < 64; i++ {
			net.Send(a, b, 100, nil)
		}
		w1.drainMail()
		for len(sim.Region(1).heap) > 0 {
			e := sim.Region(1).popMin()
			sim.Region(1).exec(e, net)
		}
	}
	_ = w0
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			net.Send(a, b, 100, nil)
		}
		w1.drainMail()
		for len(sim.Region(1).heap) > 0 {
			e := sim.Region(1).popMin()
			sim.Region(1).exec(e, net)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state cross-shard send path allocates %.1f times per 64-packet batch, want 0", allocs)
	}
}

// TestSerialHeapTrim: after a burst drains, Run must release the heap's
// backing array instead of pinning the peak for the process lifetime.
func TestSerialHeapTrim(t *testing.T) {
	s := NewSim()
	for i := 0; i < 100_000; i++ {
		s.At(Time(i)*time.Microsecond, func() {})
	}
	if s.HeapCap() < 100_000 {
		t.Fatalf("heap cap %d, want >= 100000 before draining", s.HeapCap())
	}
	s.Run(time.Second)
	if s.HeapCap() != 0 {
		t.Errorf("drained heap cap = %d, want 0 (backing array released)", s.HeapCap())
	}
	if s.PoolSize() != 0 {
		t.Errorf("drained pool size = %d, want 0 (slabs released)", s.PoolSize())
	}
	// Partial drain: live events far below capacity should reallocate down.
	s2 := NewSim()
	for i := 0; i < 100_000; i++ {
		i := i
		s2.At(Time(i)*time.Microsecond, func() {
			if i >= 99_990 {
				// The last few re-arm far in the future, keeping the heap
				// non-empty at the deadline.
				s2.At(time.Hour, func() {})
			}
		})
	}
	s2.Run(time.Second)
	if p := s2.Pending(); p == 0 || p > 16 {
		t.Fatalf("pending = %d, want a small non-zero tail", p)
	}
	if c := s2.HeapCap(); c > 4096 {
		t.Errorf("tail heap cap = %d, want shrunk (<= 4096)", c)
	}
	// The engine must still run correctly after trimming.
	ran := false
	s2.At(2*time.Hour, func() { ran = true })
	s2.Run(3 * time.Hour)
	if !ran {
		t.Error("post-trim event did not run")
	}
}

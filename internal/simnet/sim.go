// Package simnet is the deterministic discrete-event network simulator the
// evaluation runs on. It substitutes for the paper's production WAN: virtual
// time, per-node uplinks with serialization and queueing, region-based
// propagation delay, one-way delay jitter, Gilbert-Elliott style degradation
// episodes with temporal locality (the paper observes that link degradation
// "spans multiple consecutive video frames"), packet loss, and node churn.
//
// The event core is allocation-free on its hot path: events are typed
// records stored by value in per-kind free-list slabs, ordered by a 4-ary
// implicit heap of (time, seq, kind, slot) entries. Packet deliveries — the
// dominant event class, one per Network.Send — carry their payload in the
// record itself instead of a captured closure, so a steady-state simulation
// allocates nothing per packet.
package simnet

import (
	"time"

	"repro/internal/profile"
)

// Time is virtual simulation time measured from simulation start.
type Time = time.Duration

// eventKind tags which slab a heap entry's record lives in.
type eventKind uint8

const (
	// evFn is a generic callback (the At/After API).
	evFn eventKind = iota
	// evDeliver is a packet delivery enqueued by Network.Send.
	evDeliver
	// evTick is a periodic timer (the Every API); its record is re-armed
	// in place instead of being freed and re-allocated every period.
	evTick
)

// fnEvent is a pooled generic-callback record.
type fnEvent struct {
	fn   func()
	next int32 // free-list link while the slot is idle
}

// tickEvent is a pooled periodic-timer record.
type tickEvent struct {
	tick   func() bool
	period Time
	next   int32
}

// deliverEvent is a pooled packet delivery: everything Network.Send used to
// capture in a closure, stored by value.
type deliverEvent struct {
	net   *Network
	dst   *node
	msg   any
	epoch uint64
	src   Addr
	size  int32
	next  int32
}

// heapEntry is one slot of the 4-ary implicit heap. The ordering key
// (at, seq) is stored inline so comparisons never chase into a slab; kind
// and idx name the pooled record to execute. kind rides in padding that
// would otherwise be wasted, so the entry stays 24 bytes.
type heapEntry struct {
	at   Time
	seq  uint64
	idx  int32
	kind eventKind
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Sim owns the virtual clock and event queue. It is single-threaded: all
// entity logic runs inside event callbacks, which keeps runs fully
// deterministic for a given seed.
type Sim struct {
	now   Time
	seq   uint64
	count uint64
	heap  []heapEntry

	fnPool   []fnEvent
	delPool  []deliverEvent
	tickPool []tickEvent
	fnFree   int32 // free-list heads; -1 when empty
	delFree  int32
	tickFree int32

	// inflight counts packet deliveries currently queued (sent, not yet
	// delivered or dropped at arrival) — the telemetry in-flight gauge.
	inflight int

	// wprof/sprof are the self-profiling slabs (nil = disabled: the Step
	// hook is then a single inlined nil check, 0 allocs, no clock read).
	wprof *profile.Worker
	sprof *profile.Shard
}

// NewSim returns a simulator with the clock at zero.
func NewSim() *Sim {
	return &Sim{fnFree: -1, delFree: -1, tickFree: -1}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// SetProfile attaches an engine self-profiler (the serial engine is one
// shard on one worker: slab 0 of each). Profiling is observe-only — it
// reads the wall clock and writes its own slabs, never simulation state —
// so a profiled run's outputs are byte-identical to an unprofiled one.
// nil detaches and restores the zero-cost disabled path.
func (s *Sim) SetProfile(p *profile.Prof) {
	if p == nil {
		s.wprof, s.sprof = nil, nil
		return
	}
	s.wprof, s.sprof = p.Worker(0), p.Shard(0)
}

// push enqueues the record (kind, idx) at absolute time at, assigning the
// next seq as the deterministic FIFO tiebreaker, and sifts it up the 4-ary
// heap.
func (s *Sim) push(at Time, kind eventKind, idx int32) {
	s.seq++
	e := heapEntry{at: at, seq: s.seq, idx: idx, kind: kind}
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.heap = h
}

// popMin removes and returns the minimum heap entry, sifting the displaced
// last element down. With arity 4 the tree is half as deep as a binary
// heap, trading a few extra sibling comparisons for fewer cache lines
// touched per pop.
func (s *Sim) popMin() heapEntry {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	s.heap = h
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[m]) {
				m = j
			}
		}
		if !entryLess(h[m], last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = last
	return top
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	var i int32
	if i = s.fnFree; i >= 0 {
		s.fnFree = s.fnPool[i].next
		s.fnPool[i] = fnEvent{fn: fn, next: -1}
	} else {
		s.fnPool = append(s.fnPool, fnEvent{fn: fn, next: -1})
		i = int32(len(s.fnPool) - 1)
	}
	s.push(t, evFn, i)
}

// After schedules fn d after the current time.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Every schedules fn at the given period starting after one period, until
// fn returns false. The periodic record is re-armed in place each tick, so
// a long-lived timer costs one record total, not one per period.
func (s *Sim) Every(period Time, fn func() bool) {
	var i int32
	if i = s.tickFree; i >= 0 {
		s.tickFree = s.tickPool[i].next
		s.tickPool[i] = tickEvent{tick: fn, period: period, next: -1}
	} else {
		s.tickPool = append(s.tickPool, tickEvent{tick: fn, period: period, next: -1})
		i = int32(len(s.tickPool) - 1)
	}
	s.push(s.now+period, evTick, i)
}

// scheduleDeliver enqueues a pooled packet-delivery record after delay —
// the closure-free fast path for Network.Send.
func (s *Sim) scheduleDeliver(delay Time, net *Network, dst *node, src Addr, size int, msg any, epoch uint64) {
	ev := deliverEvent{net: net, dst: dst, msg: msg, epoch: epoch, src: src, size: int32(size), next: -1}
	var i int32
	if i = s.delFree; i >= 0 {
		s.delFree = s.delPool[i].next
		s.delPool[i] = ev
	} else {
		s.delPool = append(s.delPool, ev)
		i = int32(len(s.delPool) - 1)
	}
	s.push(s.now+delay, evDeliver, i)
	s.inflight++
}

// InFlight returns the number of packets currently in flight (enqueued
// deliveries not yet executed).
func (s *Sim) InFlight() int { return s.inflight }

// Step executes the next event, returning false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	top := s.popMin()
	s.now = top.at
	s.count++
	idx := top.idx
	// Each arm copies the payload out and releases the slot (zeroing it so
	// stale msg/fn references don't keep dead objects reachable) before
	// invoking the callback: the callback may schedule new events, reusing
	// the slot, and growing a slab invalidates pointers into it.
	switch top.kind {
	case evFn:
		fn := s.fnPool[idx].fn
		s.fnPool[idx] = fnEvent{next: s.fnFree}
		s.fnFree = idx
		fn()
	case evDeliver:
		ev := s.delPool[idx]
		s.delPool[idx] = deliverEvent{next: s.delFree}
		s.delFree = idx
		s.inflight--
		ev.net.deliver(ev.dst, ev.src, int(ev.size), ev.msg, ev.epoch)
	case evTick:
		// The record stays live across the callback (so the slot cannot
		// be reused mid-tick) and is re-armed or released afterwards.
		tick, period := s.tickPool[idx].tick, s.tickPool[idx].period
		if tick() {
			s.push(s.now+period, evTick, idx)
		} else {
			s.tickPool[idx] = tickEvent{next: s.tickFree}
			s.tickFree = idx
		}
	}
	// profile.Kind values mirror eventKind (fn/deliver/tick), so the heap
	// tag converts directly.
	s.wprof.Lap(s.sprof, profile.Kind(top.kind))
	return true
}

// Run executes events until the queue is empty or the clock passes until.
// The clock finishes at exactly until when events remain beyond it.
func (s *Sim) Run(until Time) {
	s.wprof.Begin()
	for len(s.heap) > 0 && s.heap[0].at <= until {
		s.Step()
	}
	s.wprof.End()
	if s.now < until {
		s.now = until
	}
	s.trim()
}

// trimThreshold is the heap capacity above which Run considers releasing
// the backing array between phases. Below it the waste is at most ~96 KiB
// and not worth the copy.
const trimThreshold = 4096

// trim releases event storage whose high-water mark dwarfs the live
// population. popMin only reslices, so a burst (e.g. the evening peak of a
// 100k-node fleet) would otherwise pin its peak heap and delivery slab for
// the rest of the process. Run calls it at its deadline — a safe point: no
// event is mid-execution, so free-list links and heap entries are the only
// live references into the slabs.
func (s *Sim) trim() {
	if len(s.heap) == 0 {
		// Fully drained: drop everything, including the slabs (every slot is
		// on a free list; the lists rebuild as events are scheduled).
		if cap(s.heap) > trimThreshold {
			s.heap = nil
		}
		if cap(s.fnPool) > trimThreshold {
			s.fnPool, s.fnFree = nil, -1
		}
		if cap(s.delPool) > trimThreshold {
			s.delPool, s.delFree = nil, -1
		}
		if cap(s.tickPool) > trimThreshold {
			s.tickPool, s.tickFree = nil, -1
		}
		return
	}
	// Events remain queued past the deadline: the slabs stay (live slots are
	// scattered), but the heap can shrink to its live size when the burst is
	// over (occupancy below 1/8 of capacity).
	if cap(s.heap) > trimThreshold && len(s.heap) < cap(s.heap)/8 {
		h := make([]heapEntry, len(s.heap))
		copy(h, s.heap)
		s.heap = h
	}
}

// HeapCap returns the capacity of the heap's backing array — the retained
// footprint trim manages. Exposed for tests.
func (s *Sim) HeapCap() int { return cap(s.heap) }

// Processed returns the total number of events executed.
func (s *Sim) Processed() uint64 { return s.count }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.heap) }

// PoolSize returns the combined capacity of the event slabs — the
// high-water mark of concurrently pending events per kind, not the live
// count. Exposed for tests and capacity diagnostics.
func (s *Sim) PoolSize() int { return len(s.fnPool) + len(s.delPool) + len(s.tickPool) }

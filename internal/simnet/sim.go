// Package simnet is the deterministic discrete-event network simulator the
// evaluation runs on. It substitutes for the paper's production WAN: virtual
// time, per-node uplinks with serialization and queueing, region-based
// propagation delay, one-way delay jitter, Gilbert-Elliott style degradation
// episodes with temporal locality (the paper observes that link degradation
// "spans multiple consecutive video frames"), packet loss, and node churn.
package simnet

import (
	"container/heap"
	"time"
)

// Time is virtual simulation time measured from simulation start.
type Time = time.Duration

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // tiebreaker for deterministic FIFO ordering at equal times
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim owns the virtual clock and event queue. It is single-threaded: all
// entity logic runs inside event callbacks, which keeps runs fully
// deterministic for a given seed.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
	count  uint64
}

// NewSim returns a simulator with the clock at zero.
func NewSim() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Every schedules fn at the given period starting after one period, until
// fn returns false.
func (s *Sim) Every(period Time, fn func() bool) {
	var tick func()
	tick = func() {
		if fn() {
			s.After(period, tick)
		}
	}
	s.After(period, tick)
}

// Step executes the next event, returning false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	s.count++
	e.fn()
	return true
}

// Run executes events until the queue is empty or the clock passes until.
// The clock finishes at exactly until when events remain beyond it.
func (s *Sim) Run(until Time) {
	for len(s.events) > 0 && s.events[0].at <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// Processed returns the total number of events executed.
func (s *Sim) Processed() uint64 { return s.count }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

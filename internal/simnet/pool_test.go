package simnet

import (
	"sort"
	"testing"
	"time"

	"repro/internal/stats"
)

// TestEventOrderingProperty schedules a large randomized batch of events —
// with many deliberate time collisions — and checks the pooled 4-ary heap
// dispatches them in (time, FIFO-seq) order: sorted by time, and FIFO by
// insertion among equal times.
func TestEventOrderingProperty(t *testing.T) {
	rng := stats.NewRNG(42)
	s := NewSim()
	const n = 5000
	type fired struct {
		at       Time
		schedIdx int
	}
	var got []fired
	// Only 97 distinct timestamps for 5000 events forces heavy collision.
	for i := 0; i < n; i++ {
		i := i
		at := time.Duration(rng.IntN(97)) * time.Millisecond
		s.At(at, func() { got = append(got, fired{at: s.Now(), schedIdx: i}) })
	}
	s.Run(time.Second)
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a].at < got[b].at }) {
		t.Fatal("events fired out of time order")
	}
	for i := 1; i < n; i++ {
		if got[i].at == got[i-1].at && got[i].schedIdx < got[i-1].schedIdx {
			t.Fatalf("equal-time events not FIFO: sched %d fired before %d at %v",
				got[i].schedIdx, got[i-1].schedIdx, got[i].at)
		}
	}
}

// TestEventOrderingNestedScheduling interleaves events scheduled from
// inside callbacks at the current instant: they must run after everything
// already queued for that instant (their seq is larger), preserving FIFO.
func TestEventOrderingNestedScheduling(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(time.Millisecond, func() {
		order = append(order, 0)
		// Same-instant reschedule: must fire after event 1 and 2 below.
		s.At(time.Millisecond, func() { order = append(order, 3) })
		s.After(0, func() { order = append(order, 4) })
	})
	s.At(time.Millisecond, func() { order = append(order, 1) })
	s.At(time.Millisecond, func() { order = append(order, 2) })
	s.Run(time.Second)
	want := []int{0, 1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestPoolSlotReuse drains waves of deliveries and checks the free-list
// slab stops growing once it covers the high-water mark of concurrently
// pending events, instead of allocating per event.
func TestPoolSlotReuse(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, stats.NewRNG(1))
	n.Register(1, LinkState{UplinkBps: 1e9, BaseOWD: time.Millisecond}, nil)
	delivered := 0
	n.Register(2, LinkState{UplinkBps: 1e9}, func(Addr, any) { delivered++ })

	burst := func() {
		for i := 0; i < 100; i++ {
			n.Send(1, 2, 1200, i)
		}
		s.Run(s.Now() + time.Second)
	}
	burst()
	high := s.PoolSize()
	if high == 0 {
		t.Fatal("pool never grew")
	}
	for i := 0; i < 50; i++ {
		burst()
	}
	if got := s.PoolSize(); got != high {
		t.Fatalf("pool grew from %d to %d across identical bursts: slots not reused", high, got)
	}
	if delivered != 51*100 {
		t.Fatalf("delivered = %d, want %d", delivered, 51*100)
	}
}

// TestPoolReuseNoStaleDelivery bumps the destination's epoch (SetOnline
// false/true) while packets are in flight, then reuses the freed pool slots
// with fresh traffic: no pre-outage packet may be delivered, and no
// post-outage packet may be lost to a stale epoch from a recycled record.
func TestPoolReuseNoStaleDelivery(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s, stats.NewRNG(1))
	n.Register(1, LinkState{UplinkBps: 1e9, BaseOWD: 20 * time.Millisecond}, nil)
	var got []int
	n.Register(2, LinkState{UplinkBps: 1e9}, func(_ Addr, msg any) { got = append(got, msg.(int)) })

	// Wave 1: in flight when the outage hits — must all be dropped.
	for i := 0; i < 64; i++ {
		n.Send(1, 2, 1200, i)
	}
	s.At(5*time.Millisecond, func() {
		n.SetOnline(2, false)
		n.SetOnline(2, true)
	})
	// Wave 2: scheduled after the epoch bump, reusing wave-1 slots — must
	// all arrive.
	s.At(10*time.Millisecond, func() {
		for i := 100; i < 164; i++ {
			n.Send(1, 2, 1200, i)
		}
	})
	s.Run(time.Second)
	if len(got) != 64 {
		t.Fatalf("delivered %d packets, want exactly the 64 post-outage ones", len(got))
	}
	for _, m := range got {
		if m < 100 {
			t.Fatalf("stale pre-outage packet %d delivered through recycled pool slot", m)
		}
	}
	if n.Dropped != 64 {
		t.Fatalf("dropped = %d, want 64 in-flight packets killed by the epoch bump", n.Dropped)
	}
}

// TestEveryRecordRearmed checks the periodic-timer record is re-armed in
// place: a long-running Every contributes exactly one tick-pool slot no
// matter how many periods elapse.
func TestEveryRecordRearmed(t *testing.T) {
	s := NewSim()
	ticks := 0
	s.Every(time.Millisecond, func() bool {
		ticks++
		return ticks < 1000
	})
	s.Run(2 * time.Second)
	if ticks != 1000 {
		t.Fatalf("ticks = %d", ticks)
	}
	if got := len(s.tickPool); got != 1 {
		t.Fatalf("tick pool grew to %d slots for one timer", got)
	}
}

package simnet

import (
	"testing"
	"time"

	"repro/internal/stats"
)

func TestSimEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", s.Now())
	}
}

func TestSimFIFOAtSameTime(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSimPastSchedulingClamped(t *testing.T) {
	s := NewSim()
	s.At(100*time.Millisecond, func() {
		fired := false
		s.At(1*time.Millisecond, func() { fired = true }) // in the past
		s.Run(200 * time.Millisecond)
		_ = fired
	})
	ran := false
	s.At(50*time.Millisecond, func() { ran = true })
	s.Run(time.Second)
	if !ran {
		t.Fatal("event did not run")
	}
}

func TestSimAfterNesting(t *testing.T) {
	s := NewSim()
	var times []Time
	s.After(10*time.Millisecond, func() {
		times = append(times, s.Now())
		s.After(5*time.Millisecond, func() {
			times = append(times, s.Now())
		})
	})
	s.Run(time.Second)
	if len(times) != 2 || times[0] != 10*time.Millisecond || times[1] != 15*time.Millisecond {
		t.Fatalf("times = %v", times)
	}
}

func TestSimEvery(t *testing.T) {
	s := NewSim()
	n := 0
	s.Every(100*time.Millisecond, func() bool {
		n++
		return n < 5
	})
	s.Run(10 * time.Second)
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
}

func TestSimRunStopsAtBoundary(t *testing.T) {
	s := NewSim()
	fired := false
	s.At(2*time.Second, func() { fired = true })
	s.Run(time.Second)
	if fired {
		t.Fatal("event beyond until fired")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run(3 * time.Second)
	if !fired {
		t.Fatal("event did not fire on second run")
	}
}

func newTestNet() (*Sim, *Network) {
	s := NewSim()
	n := NewNetwork(s, stats.NewRNG(1))
	return s, n
}

func TestNetworkBasicDelivery(t *testing.T) {
	s, n := newTestNet()
	var got []any
	n.Register(1, LinkState{UplinkBps: 100e6, BaseOWD: 5 * time.Millisecond}, nil)
	n.Register(2, LinkState{UplinkBps: 100e6, BaseOWD: 5 * time.Millisecond}, func(from Addr, msg any) {
		if from != 1 {
			t.Errorf("from = %v", from)
		}
		got = append(got, msg)
	})
	n.Send(1, 2, 1000, "hello")
	s.Run(time.Second)
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got = %v", got)
	}
	if n.BytesSent(1) != 1000 || n.BytesReceived(2) != 1000 {
		t.Fatal("byte accounting wrong")
	}
}

func TestNetworkDeliveryDelayIncludesPropagation(t *testing.T) {
	s, n := newTestNet()
	var at Time
	n.Register(1, LinkState{UplinkBps: 1e12, BaseOWD: 10 * time.Millisecond}, nil)
	n.Register(2, LinkState{UplinkBps: 1e12, BaseOWD: 15 * time.Millisecond}, func(Addr, any) { at = s.Now() })
	n.Send(1, 2, 100, nil)
	s.Run(time.Second)
	if at < 25*time.Millisecond {
		t.Fatalf("delivered at %v, want >= 25ms", at)
	}
}

func TestNetworkSerializationQueueing(t *testing.T) {
	// 1 Mbps uplink, 10 packets of 12500 bytes = 100ms serialization each.
	s, n := newTestNet()
	var deliveries []Time
	n.Register(1, LinkState{UplinkBps: 1e6}, nil)
	n.Register(2, LinkState{UplinkBps: 1e9}, func(Addr, any) { deliveries = append(deliveries, s.Now()) })
	for i := 0; i < 5; i++ {
		n.Send(1, 2, 12500, i)
	}
	s.Run(10 * time.Second)
	if len(deliveries) != 5 {
		t.Fatalf("delivered %d, want 5", len(deliveries))
	}
	// Packet i should arrive no earlier than (i+1)*100ms.
	for i, at := range deliveries {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if at < want {
			t.Fatalf("packet %d at %v, want >= %v", i, at, want)
		}
	}
}

func TestNetworkLoss(t *testing.T) {
	s, n := newTestNet()
	delivered := 0
	n.Register(1, LinkState{UplinkBps: 1e12, LossRate: 0.5}, nil)
	n.Register(2, LinkState{UplinkBps: 1e12}, func(Addr, any) { delivered++ })
	for i := 0; i < 2000; i++ {
		n.Send(1, 2, 100, nil)
	}
	s.Run(time.Minute)
	frac := float64(delivered) / 2000
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("delivered fraction %.2f, want ~0.5", frac)
	}
	if n.Dropped == 0 {
		t.Fatal("drop counter not incremented")
	}
}

func TestNetworkOfflineDrops(t *testing.T) {
	s, n := newTestNet()
	delivered := 0
	n.Register(1, LinkState{UplinkBps: 1e9}, nil)
	n.Register(2, LinkState{UplinkBps: 1e9}, func(Addr, any) { delivered++ })
	n.SetOnline(2, false)
	n.Send(1, 2, 100, nil)
	s.Run(time.Second)
	if delivered != 0 {
		t.Fatal("message delivered to offline node")
	}
	if n.Online(2) {
		t.Fatal("node should be offline")
	}
	n.SetOnline(2, true)
	n.Send(1, 2, 100, nil)
	s.Run(2 * time.Second)
	if delivered != 1 {
		t.Fatal("message not delivered after coming back online")
	}
}

func TestNetworkChurnMidFlight(t *testing.T) {
	// A node going offline while a packet is in flight drops the packet.
	s, n := newTestNet()
	delivered := 0
	n.Register(1, LinkState{UplinkBps: 1e9, BaseOWD: 50 * time.Millisecond}, nil)
	n.Register(2, LinkState{UplinkBps: 1e9}, func(Addr, any) { delivered++ })
	n.Send(1, 2, 100, nil)
	s.At(10*time.Millisecond, func() { n.SetOnline(2, false) })
	s.Run(time.Second)
	if delivered != 0 {
		t.Fatal("in-flight packet delivered to node that went offline")
	}
}

func TestNetworkDegradationEpisodes(t *testing.T) {
	s, n := newTestNet()
	st := LinkState{
		UplinkBps:         1e9,
		MeanDegradedEvery: 500 * time.Millisecond,
		MeanDegradedFor:   200 * time.Millisecond,
		DegradedExtraOWD:  100 * time.Millisecond,
	}
	n.Register(1, st, nil)
	n.Register(2, LinkState{UplinkBps: 1e9}, nil)
	sawDegraded := 0
	samples := 0
	s.Every(10*time.Millisecond, func() bool {
		samples++
		if n.Degraded(1) {
			sawDegraded++
		}
		return samples < 1000
	})
	s.Run(time.Minute)
	frac := float64(sawDegraded) / float64(samples)
	// Expected duty cycle: 200 / (500+200) ~= 0.29.
	if frac < 0.1 || frac > 0.55 {
		t.Fatalf("degraded fraction %.2f, want ~0.29", frac)
	}
}

func TestNetworkRTTReflectsDegradation(t *testing.T) {
	s, n := newTestNet()
	n.Register(1, LinkState{UplinkBps: 1e9, BaseOWD: 10 * time.Millisecond,
		MeanDegradedEvery: time.Hour, MeanDegradedFor: time.Hour,
		DegradedExtraOWD: 500 * time.Millisecond}, nil)
	n.Register(2, LinkState{UplinkBps: 1e9, BaseOWD: 10 * time.Millisecond}, nil)
	rtt0, ok := n.SampleRTT(1, 2)
	if !ok {
		t.Fatal("sample failed")
	}
	if rtt0 < 40*time.Millisecond {
		t.Fatalf("baseline rtt = %v, want >= 40ms", rtt0)
	}
	// Force into episode by advancing past the first scheduled episode.
	s.Run(2 * time.Hour)
	// The first episode starts ~Exp(1h) in; sample repeatedly until seen.
	found := false
	for i := 0; i < 100 && !found; i++ {
		s.Run(s.Now() + 10*time.Minute)
		if n.Degraded(1) {
			rtt, _ := n.SampleRTT(1, 2)
			if rtt > rtt0+400*time.Millisecond {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("degraded RTT never observed")
	}
}

func TestNetworkSampleRTTOffline(t *testing.T) {
	_, n := newTestNet()
	n.Register(1, LinkState{}, nil)
	n.Register(2, LinkState{}, nil)
	n.SetOnline(2, false)
	if _, ok := n.SampleRTT(1, 2); ok {
		t.Fatal("RTT to offline node should fail")
	}
	if _, ok := n.SampleRTT(3, 1); ok {
		t.Fatal("RTT from unknown node should fail")
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() (uint64, uint64, Time) {
		s := NewSim()
		n := NewNetwork(s, stats.NewRNG(77))
		n.Register(1, LinkState{UplinkBps: 10e6, LossRate: 0.05, JitterStd: 5 * time.Millisecond}, nil)
		last := Time(0)
		n.Register(2, LinkState{UplinkBps: 10e6}, func(Addr, any) { last = s.Now() })
		for i := 0; i < 500; i++ {
			s.At(time.Duration(i)*time.Millisecond, func() { n.Send(1, 2, 1200, nil) })
		}
		s.Run(time.Minute)
		return n.Delivered, n.Dropped, last
	}
	d1, dr1, l1 := run()
	d2, dr2, l2 := run()
	if d1 != d2 || dr1 != dr2 || l1 != l2 {
		t.Fatalf("nondeterministic: (%d,%d,%v) vs (%d,%d,%v)", d1, dr1, l1, d2, dr2, l2)
	}
}

func TestNetworkInterRegionOWD(t *testing.T) {
	s, n := newTestNet()
	n.Register(1, LinkState{UplinkBps: 1e12}, nil)
	var at Time
	n.Register(2, LinkState{UplinkBps: 1e12}, func(Addr, any) { at = s.Now() })
	n.InterRegionOWD = func(a, b Addr) time.Duration { return 40 * time.Millisecond }
	n.Send(1, 2, 100, nil)
	s.Run(time.Second)
	if at < 40*time.Millisecond {
		t.Fatalf("delivery at %v ignored inter-region delay", at)
	}
}

func TestUplinkBusyFraction(t *testing.T) {
	s, n := newTestNet()
	n.Register(1, LinkState{UplinkBps: 1e6}, nil) // 1 Mbps
	n.Register(2, LinkState{UplinkBps: 1e9}, func(Addr, any) {})
	if f := n.UplinkBusyFraction(1, time.Second); f != 0 {
		t.Fatalf("idle busy fraction = %v", f)
	}
	// Queue 1 second of serialization (125000 bytes at 1 Mbps).
	n.Send(1, 2, 125000, nil)
	f := n.UplinkBusyFraction(1, time.Second)
	if f < 0.9 {
		t.Fatalf("busy fraction = %v, want ~1", f)
	}
	s.Run(10 * time.Second)
	if f := n.UplinkBusyFraction(1, time.Second); f != 0 {
		t.Fatalf("busy fraction after drain = %v", f)
	}
}

func TestNetworkStateUpdate(t *testing.T) {
	_, n := newTestNet()
	n.Register(1, LinkState{UplinkBps: 1e6}, nil)
	n.UpdateState(1, func(st *LinkState) { st.UplinkBps = 5e6 })
	st, ok := n.State(1)
	if !ok || st.UplinkBps != 5e6 {
		t.Fatalf("state = %+v", st)
	}
}

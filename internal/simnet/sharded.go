// Sharded engine: a conservative-lookahead parallel discrete-event simulator
// that partitions a run into per-region event loops executing concurrently on
// a bounded set of shard workers.
//
// # Determinism contract
//
// For a fixed (seed, region count, workload) the run is byte-deterministic
// for ANY worker count, including 1. Three mechanisms carry the proof:
//
//  1. Region-confined state. Every node, timer, and RNG draw belongs to
//     exactly one region, and a region's events execute on exactly one
//     worker, in (at, origin, seq) order. Workloads must keep handler state
//     region-confined; anything crossing regions goes through Send.
//  2. Split RNG streams. Each region draws from stats.SplitRNG(seed, region)
//     — a pure function of the run seed, not of worker packing.
//  3. Keyed merges. A cross-region packet is stamped by its sender with
//     (arrivalTime, senderRegion, senderSeq) and the destination loop orders
//     it against local events by exactly that key, so the merge point in the
//     destination timeline is worker-independent.
//
// # Safety (why no event executes too early)
//
// Workers publish a monotone clock: a promise that every cross-shard packet
// they send from now on arrives no earlier than clock + lookahead, where the
// lookahead is the minimum cross-region one-way delay of the latency matrix.
// The promise holds because a worker publishes an event's timestamp BEFORE
// executing it, and a packet sent by an event at time t arrives at >= t +
// lookahead. A worker may therefore execute events strictly below
//
//	safe = min(other workers' clocks) + lookahead
//
// after first snapshotting clocks and then draining its mailboxes in that
// order: any entry enqueued after the snapshot was sent at or above the
// snapshotted clock and so arrives at >= safe. Strict inequality means a
// drained arrival can never tie with an already-executed local event, so
// per-region execution order equals the global (at, origin, seq) sort.
//
// With lookahead > 0 the safe bound always eventually rises past the global
// minimum pending timestamp, so one silent region can never stall the rest
// for longer than the lookahead window (see TestShardStarvation).
package simnet

import (
	"sync"
	"sync/atomic"

	"repro/internal/profile"
	"repro/internal/stats"
)

// ShardConfig sizes a sharded simulator.
type ShardConfig struct {
	// Regions is the number of per-region event loops (>= 1).
	Regions int
	// Workers is the number of OS-thread-backed shard workers the region
	// loops are packed onto (region r runs on worker r % Workers). Clamped
	// to [1, Regions]. 1 reproduces the exact same run single-threaded.
	Workers int
	// Seed is the run seed; region r draws from stats.SplitRNG(Seed, r).
	Seed uint64
	// Lookahead is the conservative horizon increment: a lower bound on the
	// one-way delay of every cross-region packet. It must be > 0; senders
	// clamp cross-region delays up to it defensively.
	Lookahead Time
}

// shardEntry is one slot of a region loop's 4-ary heap. Ordering key is
// (at, origin, seq); origin/seq identify the creating region and its event
// counter, making merged cross-region order worker-independent.
type shardEntry struct {
	at     Time
	seq    uint64
	idx    int32
	origin uint16
	kind   eventKind
}

func shardLess(a, b shardEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.seq < b.seq
}

// shardDeliver is a pooled packet-delivery record in a region loop's slab.
type shardDeliver struct {
	msg    any
	sentAt Time
	src    NodeID
	dst    NodeID
	size   int32
	next   int32
	// deferred marks a delivery already re-pushed once by the receiver's
	// degradation episode, bounding the added latency to one penalty.
	deferred bool
}

// Region is one per-region event loop: its own clock, heap, pooled event
// slabs, seq counter, and RNG stream. All entity logic of the region runs
// inside its callbacks. Methods must be called from the owning worker (or
// from the setup goroutine before Run starts).
type Region struct {
	sim *ShardedSim
	id  uint16
	now Time
	seq uint64

	heap []shardEntry
	rng  *stats.RNG

	fnPool   []fnEvent
	tickPool []tickEvent
	delPool  []shardDeliver
	fnFree   int32
	tickFree int32
	delFree  int32

	count uint64 // events executed

	// prof is the region's cost-accounting slab (nil = profiling off).
	prof *profile.Shard
}

// ID returns the region index.
func (r *Region) ID() int { return int(r.id) }

// Now returns the region's current virtual time.
func (r *Region) Now() Time { return r.now }

// RNG returns the region's deterministic stream (split from the run seed).
func (r *Region) RNG() *stats.RNG { return r.rng }

// Processed returns the number of events this region has executed. The
// count is worker-independent for a fixed seed and workload.
func (r *Region) Processed() uint64 { return r.count }

// nextSeq advances the region's event counter — one tick per event created,
// local or outbound, so keys are unique and worker-independent.
func (r *Region) nextSeq() uint64 {
	r.seq++
	return r.seq
}

// push inserts a keyed entry into the region heap.
func (r *Region) push(e shardEntry) {
	h := append(r.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !shardLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	r.heap = h
}

// popMin removes the minimum entry (caller checked the heap is non-empty).
func (r *Region) popMin() shardEntry {
	h := r.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	r.heap = h
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if shardLess(h[j], h[m]) {
				m = j
			}
		}
		if !shardLess(h[m], last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = last
	return top
}

// At schedules fn at absolute region time t (clamped to now).
func (r *Region) At(t Time, fn func()) {
	if t < r.now {
		t = r.now
	}
	var i int32
	if i = r.fnFree; i >= 0 {
		r.fnFree = r.fnPool[i].next
		r.fnPool[i] = fnEvent{fn: fn, next: -1}
	} else {
		r.fnPool = append(r.fnPool, fnEvent{fn: fn, next: -1})
		i = int32(len(r.fnPool) - 1)
	}
	r.push(shardEntry{at: t, origin: r.id, seq: r.nextSeq(), idx: i, kind: evFn})
}

// After schedules fn d after the region's current time.
func (r *Region) After(d Time, fn func()) { r.At(r.now+d, fn) }

// Every schedules fn at the given period until it returns false, re-arming
// the pooled record in place each tick.
func (r *Region) Every(period Time, fn func() bool) {
	var i int32
	if i = r.tickFree; i >= 0 {
		r.tickFree = r.tickPool[i].next
		r.tickPool[i] = tickEvent{tick: fn, period: period, next: -1}
	} else {
		r.tickPool = append(r.tickPool, tickEvent{tick: fn, period: period, next: -1})
		i = int32(len(r.tickPool) - 1)
	}
	r.push(shardEntry{at: r.now + period, origin: r.id, seq: r.nextSeq(), idx: i, kind: evTick})
}

// scheduleDeliver pools a delivery record and keys it into the heap. Used
// for intra-region sends (key stamped locally) and for drained cross-region
// arrivals (key stamped by the sender).
func (r *Region) scheduleDeliver(e shardEntry, d shardDeliver) {
	d.next = -1
	var i int32
	if i = r.delFree; i >= 0 {
		r.delFree = r.delPool[i].next
		r.delPool[i] = d
	} else {
		r.delPool = append(r.delPool, d)
		i = int32(len(r.delPool) - 1)
	}
	e.idx = i
	e.kind = evDeliver
	r.push(e)
}

// exec runs one popped event.
func (r *Region) exec(e shardEntry, net *ShardedNet) {
	r.now = e.at
	r.count++
	idx := e.idx
	switch e.kind {
	case evFn:
		fn := r.fnPool[idx].fn
		r.fnPool[idx] = fnEvent{next: r.fnFree}
		r.fnFree = idx
		fn()
	case evDeliver:
		d := r.delPool[idx]
		r.delPool[idx] = shardDeliver{next: r.delFree}
		r.delFree = idx
		net.deliver(r, d)
	case evTick:
		tick, period := r.tickPool[idx].tick, r.tickPool[idx].period
		if tick() {
			r.push(shardEntry{at: r.now + period, origin: r.id, seq: r.nextSeq(), idx: idx, kind: evTick})
		} else {
			r.tickPool[idx] = tickEvent{next: r.tickFree}
			r.tickFree = idx
		}
	}
}

// shardWorker owns the regions r with r % Workers == index and runs their
// loops under the conservative horizon protocol.
type shardWorker struct {
	sim     *ShardedSim
	index   int
	regions []*Region
	// clock is the published promise: no future cross-shard packet from
	// this worker arrives below clock + lookahead.
	clock atomic.Int64
	// inbox[j] receives entries from worker j (nil for j == index).
	inbox []*mailbox
	// prof is the worker's park/utilization slab (nil = profiling off).
	prof *profile.Worker
}

// ShardedSim owns the region loops, the workers, and the horizon protocol.
type ShardedSim struct {
	cfg     ShardConfig
	regions []*Region
	workers []*shardWorker
	net     *ShardedNet

	// stamp/waiters/cond implement parking: every clock publish bumps
	// stamp; a worker that cannot progress waits for a stamp change.
	stamp   atomic.Uint64
	waiters atomic.Int32
	mu      sync.Mutex
	cond    *sync.Cond

	started bool
	prof    *profile.Prof
}

// NewShardedSim builds the engine. Lookahead must be positive.
func NewShardedSim(cfg ShardConfig) *ShardedSim {
	if cfg.Regions < 1 {
		cfg.Regions = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Workers > cfg.Regions {
		cfg.Workers = cfg.Regions
	}
	if cfg.Lookahead <= 0 {
		panic("simnet: ShardConfig.Lookahead must be > 0")
	}
	s := &ShardedSim{cfg: cfg}
	s.cond = sync.NewCond(&s.mu)
	for r := 0; r < cfg.Regions; r++ {
		s.regions = append(s.regions, &Region{
			sim: s, id: uint16(r),
			rng:      stats.SplitRNG(cfg.Seed, uint64(r)),
			fnFree:   -1,
			tickFree: -1,
			delFree:  -1,
		})
	}
	for w := 0; w < cfg.Workers; w++ {
		sw := &shardWorker{sim: s, index: w, inbox: make([]*mailbox, cfg.Workers)}
		for j := 0; j < cfg.Workers; j++ {
			if j != w {
				sw.inbox[j] = &mailbox{}
			}
		}
		s.workers = append(s.workers, sw)
	}
	for r, rl := range s.regions {
		w := s.workers[r%cfg.Workers]
		w.regions = append(w.regions, rl)
	}
	return s
}

// Config returns the engine configuration after clamping.
func (s *ShardedSim) Config() ShardConfig { return s.cfg }

// Region returns the r-th region loop handle.
func (s *ShardedSim) Region(r int) *Region { return s.regions[r] }

// Regions returns the region count.
func (s *ShardedSim) Regions() int { return s.cfg.Regions }

// Workers returns the worker count after clamping.
func (s *ShardedSim) Workers() int { return len(s.workers) }

// Processed sums events executed across all regions — worker-independent
// for a fixed seed and workload.
func (s *ShardedSim) Processed() uint64 {
	var n uint64
	for _, r := range s.regions {
		n += r.count
	}
	return n
}

// Watermark returns the minimum published worker clock in nanoseconds — a
// conservative lower bound on global simulation progress. Worker clocks
// are atomics published before every event execution, so this is safe to
// call from any goroutine while a run is in flight (the live progress
// probe for long fleet-scale runs); reading it cannot influence the run.
func (s *ShardedSim) Watermark() int64 {
	if len(s.workers) == 0 {
		return 0
	}
	min := s.workers[0].clock.Load()
	for _, w := range s.workers[1:] {
		if c := w.clock.Load(); c < min {
			min = c
		}
	}
	return min
}

// EnableProfile attaches a fresh engine self-profiler — one cost slab per
// region, one park/utilization slab per worker, one mailbox slab per
// worker pair — and returns it. Must be called before Run starts (the
// slab pointers are read by worker goroutines without synchronization
// beyond Run's own goroutine spawns). Profiling is observe-only: it reads
// the wall clock and writes profiler-owned slabs only, so a profiled run
// is byte-identical to an unprofiled one at any worker count.
func (s *ShardedSim) EnableProfile(label string) *profile.Prof {
	p := profile.New(label, len(s.regions), len(s.workers))
	s.setProfile(p)
	return p
}

func (s *ShardedSim) setProfile(p *profile.Prof) {
	s.prof = p
	for i, r := range s.regions {
		r.prof = p.Shard(i)
	}
	for i, w := range s.workers {
		w.prof = p.Worker(i)
		for j, mb := range w.inbox {
			if mb != nil {
				mb.prof = p.Mail(i, j)
			}
		}
	}
}

// Profile returns the attached self-profiler (nil when disabled).
func (s *ShardedSim) Profile() *profile.Prof { return s.prof }

// WorkerUtil returns worker w's live utilization counters — busy and
// parked wall nanoseconds plus events executed — all zero unless
// EnableProfile was called. Like Watermark, the counters are single-owner
// atomics, so this is safe to poll from any goroutine mid-run.
func (s *ShardedSim) WorkerUtil(w int) (busyNs, parkNs int64, events uint64) {
	if w < 0 || w >= len(s.workers) {
		return 0, 0, 0
	}
	return s.workers[w].prof.Util()
}

// RegionEvents returns region r's live executed-event count from the
// profiler's cost slab (0 unless EnableProfile was called). Safe to poll
// mid-run; for the post-run worker-independent count use
// Region(r).Processed().
func (s *ShardedSim) RegionEvents(r int) uint64 {
	if r < 0 || r >= len(s.regions) {
		return 0
	}
	return s.regions[r].prof.Events()
}

// MailboxHighWater returns the maximum depth high-water mark across all
// cross-worker mailboxes (0 unless EnableProfile was called). Safe to
// poll mid-run.
func (s *ShardedSim) MailboxHighWater() int64 {
	return s.prof.MailboxHighWater()
}

// workerOf maps a region id to its owning worker index.
func (s *ShardedSim) workerOf(region uint16) int { return int(region) % len(s.workers) }

// publish stores a worker's clock promise and pokes any parked worker.
// Mail entries produced by events below this clock value must already be
// enqueued (the worker publishes an event's timestamp before executing it,
// so everything an executed event sent is visible by the time the clock
// passes it).
func (w *shardWorker) publish(t Time) {
	if Time(w.clock.Load()) >= t {
		return
	}
	w.clock.Store(int64(t))
	s := w.sim
	s.stamp.Add(1)
	if s.waiters.Load() > 0 {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// safeBound snapshots the other workers' clocks and returns the exclusive
// execution horizon plus the index of the worker whose clock is the
// current minimum — the horizon blocker a stalled worker is waiting on
// (-1 when single-worker). Callers must snapshot BEFORE draining
// mailboxes.
func (w *shardWorker) safeBound() (Time, int) {
	if len(w.sim.workers) == 1 {
		return maxTime, -1
	}
	min := maxTime
	blocker := -1
	for j, other := range w.sim.workers {
		if j == w.index {
			continue
		}
		if c := Time(other.clock.Load()); c < min {
			min = c
			blocker = j
		}
	}
	return min + w.sim.cfg.Lookahead, blocker
}

const maxTime = Time(int64(^uint64(0) >> 1))

// drainMail merges every inbox into the owning region heaps. Entries carry
// their sender-stamped key, so insertion order is irrelevant.
func (w *shardWorker) drainMail() {
	for _, mb := range w.inbox {
		if mb == nil {
			continue
		}
		got := mb.drain()
		for i := range got {
			e := &got[i]
			rl := w.sim.regions[w.sim.net.region[e.dst]]
			rl.scheduleDeliver(
				shardEntry{at: e.at, origin: e.origin, seq: e.seq},
				shardDeliver{msg: e.msg, sentAt: e.sentAt, src: e.src, dst: e.dst, size: e.size},
			)
			e.msg = nil // drop the payload reference from the recycled buffer
		}
	}
}

// nextAt returns the earliest pending timestamp across owned regions.
func (w *shardWorker) nextAt() Time {
	min := maxTime
	for _, rl := range w.regions {
		if len(rl.heap) > 0 && rl.heap[0].at < min {
			min = rl.heap[0].at
		}
	}
	return min
}

// runUntil is one worker's conservative event loop for Run(until).
func (w *shardWorker) runUntil(until Time) {
	net := w.sim.net
	w.prof.Begin()
	for {
		// Snapshot clocks FIRST, then drain: any entry enqueued after the
		// snapshot arrives at or above the resulting safe bound.
		safe, blocker := w.safeBound()
		w.drainMail()
		next := w.nextAt()

		if next <= until && next < safe {
			// Execute the batch of events strictly below the horizon, in
			// merged key order across this worker's regions: a region may
			// send to a sibling region on the same worker with any delay
			// >= 0, so per-region draining could run one region past a
			// sibling's pending send. Publishing each event's timestamp
			// before running it is what makes the clock a valid promise.
			for {
				var best *Region
				for _, rl := range w.regions {
					if len(rl.heap) == 0 {
						continue
					}
					top := rl.heap[0]
					if top.at >= safe || top.at > until {
						continue
					}
					if best == nil || shardLess(top, best.heap[0]) {
						best = rl
					}
				}
				if best == nil {
					break
				}
				e := best.popMin()
				w.publish(e.at)
				best.exec(e, net)
				w.prof.Lap(best.prof, profile.Kind(e.kind))
			}
			continue
		}

		if next > until && safe > until {
			// No local work at or below the deadline and no cross-shard
			// packet can arrive at or below it either: this worker is done.
			w.publish(until)
			w.prof.End()
			return
		}

		// Blocked: promise the best lower bound on our next executed event
		// (local events can't beat next; future arrivals can't beat safe)
		// and park until any clock moves.
		promise := next
		if safe < promise {
			promise = safe
		}
		if promise > until {
			promise = until
		}
		stamp := w.sim.stamp.Load()
		w.publish(promise)
		if w.sim.stamp.Load() == stamp {
			// The park is attributed to the worker whose published clock was
			// the horizon minimum at the snapshot — the stall blocker.
			w.prof.ParkBegin(blocker)
			w.sim.park(stamp)
			w.prof.ParkEnd()
		}
	}
}

// park blocks until the global clock stamp changes. The waiter count is
// incremented under the lock and the stamp re-checked before sleeping, so a
// publish between the caller's last check and the wait cannot be missed.
func (s *ShardedSim) park(stamp uint64) {
	s.mu.Lock()
	s.waiters.Add(1)
	if s.stamp.Load() == stamp {
		s.cond.Wait()
	}
	s.waiters.Add(-1)
	s.mu.Unlock()
}

// Run executes all events with timestamps <= until across every region,
// spawning one goroutine per worker and blocking until all are done. It may
// be called repeatedly with increasing deadlines; events beyond the
// deadline stay queued. After Run returns, region state may be inspected
// from the calling goroutine.
func (s *ShardedSim) Run(until Time) {
	if s.net == nil {
		// An engine without a network can still run pure timer workloads.
		s.net = NewShardedNet(s)
	}
	s.started = true
	if len(s.workers) == 1 {
		s.workers[0].runUntil(until)
		s.finish(until)
		return
	}
	var wg sync.WaitGroup
	for _, w := range s.workers {
		wg.Add(1)
		go func(w *shardWorker) {
			defer wg.Done()
			w.runUntil(until)
		}(w)
	}
	wg.Wait()
	s.finish(until)
}

// finish advances idle region clocks to the deadline (mirroring the serial
// engine's Run) so Now() reads uniformly after a quiet tail.
func (s *ShardedSim) finish(until Time) {
	for _, r := range s.regions {
		if r.now < until {
			r.now = until
		}
	}
}

package simnet

import (
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/stats"
)

// runSerialWorkload drives a deterministic serial Sim mixing all three event
// kinds (fn, deliver, tick) and returns the full observable outcome.
func runSerialWorkload(p *profile.Prof) (*Sim, uint64, uint64, Time) {
	s := NewSim()
	s.SetProfile(p)
	n := NewNetwork(s, stats.NewRNG(77))
	n.Register(1, LinkState{UplinkBps: 10e6, LossRate: 0.05, JitterStd: 5 * time.Millisecond}, nil)
	last := Time(0)
	n.Register(2, LinkState{UplinkBps: 10e6}, func(Addr, any) { last = s.Now() })
	sent := 0
	s.Every(2*time.Millisecond, func() bool {
		n.Send(1, 2, 1200, nil)
		sent++
		return sent < 400
	})
	for i := 0; i < 100; i++ {
		s.At(time.Duration(i)*7*time.Millisecond, func() { n.Send(2, 1, 600, nil) })
	}
	s.Run(2 * time.Second)
	return s, n.Delivered, n.Dropped, last
}

// TestSerialProfObserveOnly is the observe-only contract for the serial
// engine: attaching a profiler must not change any observable outcome.
func TestSerialProfObserveOnly(t *testing.T) {
	_, d1, dr1, l1 := runSerialWorkload(nil)
	sim, d2, dr2, l2 := runSerialWorkload(profile.New("test", 1, 1))
	if d1 != d2 || dr1 != dr2 || l1 != l2 {
		t.Fatalf("profiled run diverged: (%d,%d,%v) vs (%d,%d,%v)", d2, dr2, l2, d1, dr1, l1)
	}
	if d1 == 0 {
		t.Fatal("workload delivered nothing")
	}
	_ = sim
}

// TestSerialProfAccounting checks the serial engine's attribution invariants:
// every processed event is counted exactly once, self-times sum to worker
// busy time, and all three event kinds show up in the cost slab.
func TestSerialProfAccounting(t *testing.T) {
	p := profile.New("test", 1, 1)
	sim, _, _, _ := runSerialWorkload(p)
	if got := p.TotalEvents(); got != sim.Processed() {
		t.Fatalf("profiler counted %d events, sim processed %d", got, sim.Processed())
	}
	if got := p.AttributedFrac(); got != 1.0 {
		t.Fatalf("attributed fraction = %v, want exactly 1.0", got)
	}
	s := p.Shard(0)
	for _, k := range []profile.Kind{profile.KindFn, profile.KindDeliver, profile.KindTick} {
		if s.Count(k) == 0 {
			t.Fatalf("kind %d never counted; workload should exercise fn, deliver, and tick", k)
		}
	}
	busy, _, ev := p.Worker(0).Util()
	if busy <= 0 || ev != sim.Processed() {
		t.Fatalf("worker util = (%d busy, %d events), want busy>0 events=%d", busy, ev, sim.Processed())
	}
	// Detaching mid-lifecycle must be safe and stop accounting.
	sim.SetProfile(nil)
	before := p.TotalEvents()
	sim.After(time.Millisecond, func() {})
	sim.Run(3 * time.Second)
	if p.TotalEvents() != before {
		t.Fatal("detached profiler kept accumulating")
	}
}

// TestShardedProfObserveOnly is the observe-only contract for the sharded
// engine: for a fixed seed the full run digest is identical with and without
// a profiler attached, at both serial-reference and parallel worker counts.
func TestShardedProfObserveOnly(t *testing.T) {
	const seed, regions = 9, 4
	for _, workers := range []int{1, 4} {
		plain, plainNet, plainLogs := buildShardWorkload(seed, regions, workers)
		plain.Run(5 * time.Second)
		want := digestShardRun(plain, plainNet, plainLogs)

		prof, profNet, profLogs := buildShardWorkload(seed, regions, workers)
		p := prof.EnableProfile("test")
		prof.Run(5 * time.Second)
		if got := digestShardRun(prof, profNet, profLogs); got != want {
			t.Errorf("workers %d: profiled digest %x != plain %x", workers, got, want)
		}
		if p.TotalEvents() == 0 {
			t.Errorf("workers %d: profiler attached but saw no events", workers)
		}
	}
}

// TestShardedProfAccounting checks the sharded engine's attribution and the
// live accessors the observability bridge polls: per-region counts sum to
// Processed, per-worker busy equals the global self-time sum, parks carry
// blocker attribution, and cross-worker mailboxes record traffic.
func TestShardedProfAccounting(t *testing.T) {
	sim, net, _ := buildShardWorkload(3, 4, 4)
	p := sim.EnableProfile("test")
	sim.Run(5 * time.Second)

	if net.TotalDelivered() == 0 {
		t.Fatal("workload delivered nothing")
	}
	if got := p.TotalEvents(); got != sim.Processed() {
		t.Fatalf("profiler counted %d events, sim processed %d", got, sim.Processed())
	}
	if got := p.AttributedFrac(); got != 1.0 {
		t.Fatalf("attributed fraction = %v, want exactly 1.0", got)
	}
	var regionSum uint64
	for r := 0; r < sim.Regions(); r++ {
		ev := sim.RegionEvents(r)
		if ev == 0 {
			t.Errorf("region %d executed no events", r)
		}
		regionSum += ev
	}
	if regionSum != sim.Processed() {
		t.Fatalf("region event sum %d != processed %d", regionSum, sim.Processed())
	}
	var busySum, parkSum int64
	for w := 0; w < sim.Workers(); w++ {
		busy, park, ev := sim.WorkerUtil(w)
		if ev == 0 {
			t.Errorf("worker %d saw no events", w)
		}
		busySum += busy
		parkSum += park
	}
	if busySum != p.TotalBusyNs() || busySum <= 0 {
		t.Fatalf("worker busy sum %d != profiler total %d", busySum, p.TotalBusyNs())
	}
	if parkSum != p.TotalParkNs() {
		t.Fatalf("worker park sum %d != profiler total %d", parkSum, p.TotalParkNs())
	}
	// With 4 workers and 30% cross-region traffic, the horizon protocol must
	// have parked at least once, and every park needs a blocker or the -1
	// (idle/none) sentinel — i.e. park time is fully attributed too.
	var parks int64
	var blockedSum int64
	for w := 0; w < sim.Workers(); w++ {
		wp := p.Worker(w)
		parks += wp.Parks()
		blockedSum += wp.BlockedOnNs(-1)
		for o := 0; o < sim.Workers(); o++ {
			blockedSum += wp.BlockedOnNs(o)
		}
	}
	if parks == 0 {
		t.Fatal("4-worker run never parked; horizon accounting untested")
	}
	if blockedSum != parkSum {
		t.Fatalf("blocker-attributed park %d != total park %d", blockedSum, parkSum)
	}
	if sim.MailboxHighWater() == 0 {
		t.Fatal("cross-region traffic left no mailbox high-water mark")
	}
	// At least one mailbox recorded drains with a sane batch quantile.
	var drains uint64
	for to := 0; to < sim.Workers(); to++ {
		for from := 0; from < sim.Workers(); from++ {
			if m := p.Mail(to, from); m != nil {
				drains += m.Drains()
				if m.Drains() > 0 && m.BatchQuantile(1) <= 0 {
					t.Fatalf("mailbox w%d<-w%d has drains but zero max batch", to, from)
				}
			}
		}
	}
	if drains == 0 {
		t.Fatal("no mailbox drains recorded")
	}
}

// TestProfDisabledDispatchAllocs pins the zero-overhead-when-disabled
// guarantee at the dispatch layer: a steady-state serial run with the nil
// profiler must not allocate in Step/Run (mirroring the trace.Buf contract).
func TestProfDisabledDispatchAllocs(t *testing.T) {
	s := NewSim()
	ticks := 0
	s.Every(time.Millisecond, func() bool { ticks++; return true })
	var until Time = 100 * time.Millisecond
	s.Run(until) // warm pools and heap
	allocs := testing.AllocsPerRun(100, func() {
		until += 10 * time.Millisecond
		s.Run(until)
	})
	if allocs > 0 {
		t.Errorf("unprofiled steady-state dispatch allocates %.1f per run, want 0", allocs)
	}
	if ticks == 0 {
		t.Fatal("ticker never fired")
	}
}

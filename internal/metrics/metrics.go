// Package metrics collects the QoE and cost measures the paper evaluates:
// rebuffering events and duration per hundred seconds of playback, video
// bitrate, end-to-end latency, the traffic expansion rate γ of best-effort
// nodes (serving traffic / backward traffic, §2.2), equivalent traffic
// EqT = unit cost × volume (§7.1.3), client energy proxies (§7.1.4), and
// retransmission accounting (Fig 3, Table 3).
package metrics

import (
	"time"

	"repro/internal/stats"
)

// SessionQoE accumulates per-viewing-session QoE. One instance per client
// session; aggregate across sessions with Aggregate.
type SessionQoE struct {
	// PlayedMs is total playback wall time (excluding stalls).
	PlayedMs float64
	// StalledMs is total rebuffering time.
	StalledMs float64
	// StalledNs is the same total in integer nanoseconds. Float
	// accumulation order differs across aggregation shapes, so exact
	// reconciliation against telemetry counters happens in this integer
	// domain.
	StalledNs uint64
	// RebufferEvents counts stall onsets.
	RebufferEvents int
	// BitrateBps tracks the time-weighted delivered bitrate.
	bitrateWeighted float64
	// E2ELatency samples frame end-to-end latency (generation to
	// playout readiness) in milliseconds.
	E2ELatency *stats.Sample
	// FirstFrameMs is the startup latency.
	FirstFrameMs float64

	// Retransmission accounting.
	RetxRequests  int
	RetxSucceeded int
	RetxBytes     float64

	// FramesPlayed and FramesLost count playout outcomes.
	FramesPlayed int
	FramesLost   int

	// Switches counts edge-node switches (client- or edge-initiated).
	Switches int
	// Fallbacks counts full-stream fallbacks to the CDN.
	Fallbacks int
}

// e2eSampleCap bounds per-session latency retention. A 40 s quick run
// produces ~1200 frames (unaffected); an hours-long session thins to the
// cap instead of holding every frame's latency in memory.
const e2eSampleCap = 4096

// NewSessionQoE returns an empty session accumulator.
func NewSessionQoE() *SessionQoE {
	return &SessionQoE{E2ELatency: stats.NewCappedSample(256, e2eSampleCap)}
}

// AddPlayback records d of smooth playback at the given delivered bitrate.
func (q *SessionQoE) AddPlayback(d time.Duration, bitrateBps float64) {
	ms := float64(d) / float64(time.Millisecond)
	q.PlayedMs += ms
	q.bitrateWeighted += ms * bitrateBps
}

// AddStall records a rebuffering interval; onset marks a new event.
func (q *SessionQoE) AddStall(d time.Duration, onset bool) {
	q.StalledMs += float64(d) / float64(time.Millisecond)
	q.StalledNs += uint64(d)
	if onset {
		q.RebufferEvents++
	}
}

// MeanBitrate returns the playback-time-weighted mean bitrate.
func (q *SessionQoE) MeanBitrate() float64 {
	if q.PlayedMs == 0 {
		return 0
	}
	return q.bitrateWeighted / q.PlayedMs
}

// RebufferPer100s returns rebuffering events per hundred seconds of
// playback — the paper's headline robustness metric.
func (q *SessionQoE) RebufferPer100s() float64 {
	secs := (q.PlayedMs + q.StalledMs) / 1000
	if secs == 0 {
		return 0
	}
	return float64(q.RebufferEvents) / secs * 100
}

// StallPer100s returns rebuffering milliseconds per hundred seconds.
func (q *SessionQoE) StallPer100s() float64 {
	secs := (q.PlayedMs + q.StalledMs) / 1000
	if secs == 0 {
		return 0
	}
	return q.StalledMs / secs * 100
}

// RetxSuccessRate returns the fraction of retransmission requests that
// succeeded.
func (q *SessionQoE) RetxSuccessRate() float64 {
	if q.RetxRequests == 0 {
		return 0
	}
	return float64(q.RetxSucceeded) / float64(q.RetxRequests)
}

// TrafficAccount tracks serving vs backward traffic for one best-effort
// node, yielding the traffic expansion rate γ.
type TrafficAccount struct {
	// ServingBytes is data delivered to clients.
	ServingBytes float64
	// BackwardBytes is data pulled from dedicated CDN nodes.
	BackwardBytes float64
}

// ExpansionRate returns γ = serving / backward (0 when no backward
// traffic has occurred).
func (t *TrafficAccount) ExpansionRate() float64 {
	if t.BackwardBytes == 0 {
		return 0
	}
	return t.ServingBytes / t.BackwardBytes
}

// EqT computes equivalent traffic: Σ unit-cost × volume. Volumes and costs
// are supplied by the caller per node class.
func EqT(volumesBytes []float64, unitCosts []float64) float64 {
	var sum float64
	for i := range volumesBytes {
		c := 1.0
		if i < len(unitCosts) {
			c = unitCosts[i]
		}
		sum += volumesBytes[i] * c
	}
	return sum
}

// Energy aggregates client-side resource proxies (Fig 10). The simulation
// counts work units; the A/B comparison reports relative differences, so
// absolute units are irrelevant.
type Energy struct {
	// CPUUnits counts compute work: packets processed, CRCs, chain
	// merges, recovery decisions.
	CPUUnits float64
	// MemBytesPeak tracks the high-water buffer usage.
	MemBytesPeak float64
	// CopyBytes counts data copies (the paper's optimizations reduced
	// redundant copies).
	CopyBytes float64
	// RadioActiveMs approximates battery/temperature impact via radio
	// active time.
	RadioActiveMs float64
}

// AddCPU adds n units of compute work.
func (e *Energy) AddCPU(n float64) { e.CPUUnits += n }

// TrackMem updates the memory high-water mark.
func (e *Energy) TrackMem(cur float64) {
	if cur > e.MemBytesPeak {
		e.MemBytesPeak = cur
	}
}

// Aggregate summarizes many sessions into the figures the paper reports.
type Aggregate struct {
	Rebuffer  *stats.Sample // rebuffer events per 100 s
	StallTime *stats.Sample // stall ms per 100 s
	Bitrate   *stats.Sample // mean session bitrate (bps)
	E2EMs     *stats.Sample // per-frame E2E latency samples (ms)
	Startup   *stats.Sample // first-frame latency (ms)
	Sessions  int
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		Rebuffer:  stats.NewSample(256),
		StallTime: stats.NewSample(256),
		Bitrate:   stats.NewSample(256),
		E2EMs:     stats.NewSample(4096),
		Startup:   stats.NewSample(256),
	}
}

// Absorb folds one session into the aggregate.
func (a *Aggregate) Absorb(q *SessionQoE) {
	a.Sessions++
	a.Rebuffer.Add(q.RebufferPer100s())
	a.StallTime.Add(q.StallPer100s())
	a.Bitrate.Add(q.MeanBitrate())
	for _, v := range q.E2ELatency.Values() {
		a.E2EMs.Add(v)
	}
	if q.FirstFrameMs > 0 {
		a.Startup.Add(q.FirstFrameMs)
	}
}

// RelDiff returns (test - control) / control, the paper's A/B reporting
// convention, or 0 when control is zero.
func RelDiff(test, control float64) float64 {
	if control == 0 {
		return 0
	}
	return (test - control) / control
}

package metrics

import (
	"math"
	"testing"
	"time"
)

func TestSessionQoEBasics(t *testing.T) {
	q := NewSessionQoE()
	q.AddPlayback(90*time.Second, 2e6)
	q.AddStall(10*time.Second, true)
	q.AddStall(0, false) // continuation, no new event

	if got := q.MeanBitrate(); got != 2e6 {
		t.Errorf("mean bitrate = %v", got)
	}
	// 1 event over 100s total.
	if got := q.RebufferPer100s(); math.Abs(got-1) > 1e-9 {
		t.Errorf("rebuffer/100s = %v, want 1", got)
	}
	if got := q.StallPer100s(); math.Abs(got-10000) > 1e-9 {
		t.Errorf("stall ms/100s = %v, want 10000", got)
	}
}

func TestSessionQoEEmpty(t *testing.T) {
	q := NewSessionQoE()
	if q.MeanBitrate() != 0 || q.RebufferPer100s() != 0 || q.StallPer100s() != 0 || q.RetxSuccessRate() != 0 {
		t.Fatal("empty session should report zeros")
	}
}

func TestBitrateTimeWeighting(t *testing.T) {
	q := NewSessionQoE()
	q.AddPlayback(30*time.Second, 1e6)
	q.AddPlayback(10*time.Second, 5e6)
	want := (30.0*1e6 + 10.0*5e6) / 40.0
	if got := q.MeanBitrate(); math.Abs(got-want) > 1 {
		t.Errorf("weighted bitrate = %v, want %v", got, want)
	}
}

func TestRetxSuccessRate(t *testing.T) {
	q := NewSessionQoE()
	q.RetxRequests = 10
	q.RetxSucceeded = 9
	if got := q.RetxSuccessRate(); got != 0.9 {
		t.Errorf("retx success = %v", got)
	}
}

func TestTrafficExpansionRate(t *testing.T) {
	var ta TrafficAccount
	if ta.ExpansionRate() != 0 {
		t.Fatal("zero backward traffic should give 0")
	}
	ta.BackwardBytes = 100
	ta.ServingBytes = 370
	if got := ta.ExpansionRate(); math.Abs(got-3.7) > 1e-9 {
		t.Errorf("gamma = %v, want 3.7", got)
	}
}

func TestEqT(t *testing.T) {
	// 100 GB at dedicated price 1.0 + 200 GB at best-effort 0.65.
	got := EqT([]float64{100, 200}, []float64{1.0, 0.65})
	if math.Abs(got-230) > 1e-9 {
		t.Errorf("EqT = %v, want 230", got)
	}
	// Missing cost defaults to 1.
	if got := EqT([]float64{50, 50}, []float64{0.5}); math.Abs(got-75) > 1e-9 {
		t.Errorf("EqT default cost = %v, want 75", got)
	}
}

func TestEnergy(t *testing.T) {
	var e Energy
	e.AddCPU(10)
	e.AddCPU(5)
	e.TrackMem(1000)
	e.TrackMem(500) // lower, no change
	if e.CPUUnits != 15 || e.MemBytesPeak != 1000 {
		t.Fatalf("energy = %+v", e)
	}
}

func TestAggregateAbsorb(t *testing.T) {
	a := NewAggregate()
	for i := 0; i < 3; i++ {
		q := NewSessionQoE()
		q.AddPlayback(100*time.Second, float64(i+1)*1e6)
		q.AddStall(time.Duration(i)*time.Second, i > 0)
		q.E2ELatency.Add(500)
		q.FirstFrameMs = 300
		a.Absorb(q)
	}
	if a.Sessions != 3 {
		t.Fatalf("sessions = %d", a.Sessions)
	}
	if a.Bitrate.N() != 3 || a.E2EMs.N() != 3 || a.Startup.N() != 3 {
		t.Fatal("sample counts wrong")
	}
	if a.Bitrate.Percentile(100) != 3e6 {
		t.Errorf("max bitrate = %v", a.Bitrate.Percentile(100))
	}
}

func TestRelDiff(t *testing.T) {
	if got := RelDiff(85, 100); math.Abs(got+0.15) > 1e-9 {
		t.Errorf("RelDiff(85,100) = %v, want -0.15", got)
	}
	if RelDiff(5, 0) != 0 {
		t.Error("zero control should give 0")
	}
}

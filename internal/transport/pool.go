package transport

// Pooled message lifecycle for the data-plane hot path.
//
// The simulator passes messages by reference, and a single frame fan-out
// pushes the same record to every subscriber, so the hot message types
// (DataPacket, CDNFrame, RetxReq, FrameReq) carry a reference count: the
// builder holds one reference from Get, each Send adds one via Retain, and
// the network releases exactly one per delivery attempt — on every drop
// path and after the receiving handler returns (the simnet.Poolable hooks).
// When the count reaches zero the struct is zeroed, its generation counter
// advances, and it returns to its free list. The generation is the epoch
// guard: a holder that cached (pointer, Generation()) can detect that the
// slot was recycled, the same idea as the simnet event-slab epochs.
//
// Messages built without a pool (codec decode paths, livenet, tests using
// plain literals) have a nil pool pointer; Retain and PoolRelease are no-ops
// for them, so pooled and plain messages flow through identical network
// code. Receivers must never retain a message pointer past their handler
// (the long-standing simulator immutability rule), which is what makes the
// after-handler release sound.
//
// Pools are per-entity, not global: RunCells executes whole simulations
// concurrently, and entity-owned free lists need no locks.

// poolTrimThreshold mirrors simnet's trimThreshold: free lists whose
// backing array outgrew it are dropped at quiescent points (see
// core.System.Run) so long fleet runs release burst capacity.
const poolTrimThreshold = 4096

// PacketPool is a free list of DataPackets.
type PacketPool struct{ free []*DataPacket }

// Get returns a zeroed packet holding one (builder) reference.
func (p *PacketPool) Get() *DataPacket {
	if k := len(p.free); k > 0 {
		m := p.free[k-1]
		p.free = p.free[:k-1]
		m.refs = 1
		return m
	}
	return &DataPacket{pool: p, refs: 1}
}

// Trim drops an oversized free list; call only at quiescent points.
func (p *PacketPool) Trim() {
	if cap(p.free) > poolTrimThreshold {
		p.free = nil
	}
}

// FreeLen reports how many packets sit on the free list (test hook).
func (p *PacketPool) FreeLen() int { return len(p.free) }

// Retain adds one reference for an upcoming Send. No-op on unpooled packets.
func (m *DataPacket) Retain() {
	if m.pool != nil {
		m.refs++
	}
}

// Generation returns the recycle epoch of this slot; it advances on every
// release, so a cached (pointer, generation) pair detects stale reuse.
func (m *DataPacket) Generation() uint32 { return m.gen }

// PoolRelease drops one reference and recycles the packet at zero. The
// Chain backing array survives recycling so steady state allocates nothing.
func (m *DataPacket) PoolRelease() {
	if m.pool == nil {
		return
	}
	m.refs--
	if m.refs > 0 {
		return
	}
	if m.refs < 0 {
		panic("transport: DataPacket over-released")
	}
	pool, gen, ch := m.pool, m.gen, m.Chain[:0]
	*m = DataPacket{pool: pool, gen: gen + 1, Chain: ch}
	pool.free = append(pool.free, m)
}

// RecordPool is a free list of CDNFrames.
type RecordPool struct{ free []*CDNFrame }

// Get returns a zeroed frame record holding one (builder) reference.
func (p *RecordPool) Get() *CDNFrame {
	if k := len(p.free); k > 0 {
		m := p.free[k-1]
		p.free = p.free[:k-1]
		m.refs = 1
		return m
	}
	return &CDNFrame{pool: p, refs: 1}
}

// Trim drops an oversized free list; call only at quiescent points.
func (p *RecordPool) Trim() {
	if cap(p.free) > poolTrimThreshold {
		p.free = nil
	}
}

// FreeLen reports how many records sit on the free list (test hook).
func (p *RecordPool) FreeLen() int { return len(p.free) }

// Retain adds one reference for an upcoming Send. No-op on unpooled records.
func (m *CDNFrame) Retain() {
	if m.pool != nil {
		m.refs++
	}
}

// Generation returns the recycle epoch of this slot.
func (m *CDNFrame) Generation() uint32 { return m.gen }

// PoolRelease drops one reference and recycles the record at zero.
func (m *CDNFrame) PoolRelease() {
	if m.pool == nil {
		return
	}
	m.refs--
	if m.refs > 0 {
		return
	}
	if m.refs < 0 {
		panic("transport: CDNFrame over-released")
	}
	pool, gen := m.pool, m.gen
	*m = CDNFrame{pool: pool, gen: gen + 1}
	pool.free = append(pool.free, m)
}

// RetxReqPool is a free list of RetxReqs.
type RetxReqPool struct{ free []*RetxReq }

// Get returns a zeroed request holding one (builder) reference.
func (p *RetxReqPool) Get() *RetxReq {
	if k := len(p.free); k > 0 {
		m := p.free[k-1]
		p.free = p.free[:k-1]
		m.refs = 1
		return m
	}
	return &RetxReq{pool: p, refs: 1}
}

// Trim drops an oversized free list; call only at quiescent points.
func (p *RetxReqPool) Trim() {
	if cap(p.free) > poolTrimThreshold {
		p.free = nil
	}
}

// FreeLen reports how many requests sit on the free list (test hook).
func (p *RetxReqPool) FreeLen() int { return len(p.free) }

// Retain adds one reference for an upcoming Send. No-op on unpooled requests.
func (m *RetxReq) Retain() {
	if m.pool != nil {
		m.refs++
	}
}

// Generation returns the recycle epoch of this slot.
func (m *RetxReq) Generation() uint32 { return m.gen }

// PoolRelease drops one reference and recycles the request at zero. The
// Missing backing array survives recycling.
func (m *RetxReq) PoolRelease() {
	if m.pool == nil {
		return
	}
	m.refs--
	if m.refs > 0 {
		return
	}
	if m.refs < 0 {
		panic("transport: RetxReq over-released")
	}
	pool, gen, miss := m.pool, m.gen, m.Missing[:0]
	*m = RetxReq{pool: pool, gen: gen + 1, Missing: miss}
	pool.free = append(pool.free, m)
}

// FrameReqPool is a free list of FrameReqs.
type FrameReqPool struct{ free []*FrameReq }

// Get returns a zeroed request holding one (builder) reference.
func (p *FrameReqPool) Get() *FrameReq {
	if k := len(p.free); k > 0 {
		m := p.free[k-1]
		p.free = p.free[:k-1]
		m.refs = 1
		return m
	}
	return &FrameReq{pool: p, refs: 1}
}

// Trim drops an oversized free list; call only at quiescent points.
func (p *FrameReqPool) Trim() {
	if cap(p.free) > poolTrimThreshold {
		p.free = nil
	}
}

// FreeLen reports how many requests sit on the free list (test hook).
func (p *FrameReqPool) FreeLen() int { return len(p.free) }

// Retain adds one reference for an upcoming Send. No-op on unpooled requests.
func (m *FrameReq) Retain() {
	if m.pool != nil {
		m.refs++
	}
}

// Generation returns the recycle epoch of this slot.
func (m *FrameReq) Generation() uint32 { return m.gen }

// PoolRelease drops one reference and recycles the request at zero.
func (m *FrameReq) PoolRelease() {
	if m.pool == nil {
		return
	}
	m.refs--
	if m.refs > 0 {
		return
	}
	if m.refs < 0 {
		panic("transport: FrameReq over-released")
	}
	pool, gen := m.pool, m.gen
	*m = FrameReq{pool: pool, gen: gen + 1}
	pool.free = append(pool.free, m)
}

// Package transport defines RLive's wire protocol: the subscribe-push data
// plane messages exchanged between CDN nodes, best-effort edge nodes and
// clients, plus the control-plane messages to the global scheduler. The
// same message structs flow through the discrete-event simulator (passed by
// reference, with WireSize driving the timing model) and over real UDP/TCP
// via the binary codecs in this package.
//
// Design notes from the paper honored here:
//   - Subscribe-push (§6): edges push fixed-size packets immediately on
//     receipt, with no per-hop congestion control or loss detection.
//   - Local frame chains are embedded in every data packet (§5.2 and §8.2:
//     "embed the contextual metadata directly into data packets").
//   - Packets carry the publisher's address so clients bypass DNS on
//     recovery redirects (§8.1 "Accelerating Frame Recovery via DNS Bypass").
package transport

import (
	"repro/internal/chain"
	"repro/internal/ctrlplane"
	"repro/internal/media"
	"repro/internal/scheduler"
	"repro/internal/simnet"
)

// PacketPayload is the fixed data-packet payload size in bytes (§5.1:
// "segments the frame into fixed-size packets").
const PacketPayload = 1200

// PacketsForFrame returns how many packets a frame of the given size
// slices into (at least 1).
func PacketsForFrame(size int) int {
	if size <= 0 {
		return 1
	}
	return (size + PacketPayload - 1) / PacketPayload
}

// SubscribeReq asks a best-effort node to add the sender to the subscriber
// list of one substream.
type SubscribeReq struct {
	Key scheduler.SubstreamKey
}

// UnsubscribeReq removes the sender from a substream's subscriber list.
type UnsubscribeReq struct {
	Key scheduler.SubstreamKey
}

// CDNSubscribeReq asks a dedicated node for a delivery. Exactly one of the
// three modes applies:
//   - FullStream: complete frames of every substream (client startup and
//     full fallback).
//   - Substream + WantHeaders: complete frames of one substream plus
//     header-only records of all other frames (the edge-node feed that
//     powers distributed sequencing).
//   - Substream alone: complete frames of one substream (client substream
//     switchback, recovery action a=2).
type CDNSubscribeReq struct {
	Stream      media.StreamID
	Substream   media.SubstreamID
	FullStream  bool
	WantHeaders bool
}

// CDNUnsubscribeReq cancels a CDN delivery.
type CDNUnsubscribeReq struct {
	Stream     media.StreamID
	Substream  media.SubstreamID
	FullStream bool
}

// CDNFrame is a frame record pushed by a dedicated node: either a full
// frame (payload included on the real network; size-modeled in sim) or a
// header-only record for sequencing.
type CDNFrame struct {
	Header      media.Header
	Full        bool
	GeneratedAt int64
	// Recovered marks a frame sent in response to a FrameReq.
	Recovered bool
	// K is the origin's substream count for the stream, stamped on every
	// record so relays always hold a fresh partitioning hint — a relay
	// whose configured hint is missing or stale (e.g. after a
	// chaos-induced resubscription) self-corrects from the feed. The
	// two bytes it would occupy are within the record's existing
	// modeled header padding, so WireSize is unchanged.
	K int

	pool *RecordPool
	refs int32
	gen  uint32
}

// DataPacket is one fixed-size slice of a frame pushed by a best-effort
// node to a subscriber.
type DataPacket struct {
	Key    scheduler.SubstreamKey
	Header media.Header
	// Seq is the packet index within the frame, Count the total packet
	// count of the frame.
	Seq   uint16
	Count uint16
	// PayloadLen is the bytes of frame data carried (== PacketPayload
	// except for the final packet).
	PayloadLen int
	// Chain is the publisher's local frame chain, oldest first.
	Chain []chain.Footprint
	// Publisher is the sending node's address, embedded for DNS-bypass
	// recovery.
	Publisher simnet.Addr
	// GeneratedAt is the frame's source generation time (for E2E
	// latency measurement).
	GeneratedAt int64
	// Payload carries frame bytes on the real-network path; nil in sim.
	Payload []byte
	// Retransmit marks packets resent in response to a RetxReq.
	Retransmit bool

	pool *PacketPool
	refs int32
	gen  uint32
}

// RetxReq asks the publisher to resend specific packets of a frame
// (recovery action a=0).
type RetxReq struct {
	Key     scheduler.SubstreamKey
	Dts     uint64
	Missing []uint16

	pool *RetxReqPool
	refs int32
	gen  uint32
}

// RetxNack tells a requester the publisher cannot serve a retransmission
// (the frame predates its relay window or its own feed missed it), so the
// client escalates to dedicated recovery immediately instead of burning
// retry rounds.
type RetxNack struct {
	Key scheduler.SubstreamKey
	Dts uint64
}

// FrameReq asks a dedicated node for one complete frame by dts (recovery
// action a=1; the CDN supports dts-indexed frame recovery, §6).
type FrameReq struct {
	Stream media.StreamID
	Dts    uint64

	pool *FrameReqPool
	refs int32
	gen  uint32
}

// ProbeReq is the client's application-level connection attempt used in
// local fine-tuning (§4.1.2) — deliberately not a bare ping, so the
// response exercises the full path.
type ProbeReq struct {
	Nonce uint32
	Key   scheduler.SubstreamKey
}

// ProbeResp answers a probe.
type ProbeResp struct {
	Nonce uint32
	Key   scheduler.SubstreamKey
	// Accepting is false when the node is at quota.
	Accepting bool
}

// QoSReport is the lightweight per-connection feedback a client piggybacks
// to each publisher, feeding the edge's Z-score outlier detection (§4.2.2).
type QoSReport struct {
	Key      scheduler.SubstreamKey
	RTTms    float64
	LossRate float64
}

// SuggestReason explains an edge-initiated switch suggestion.
type SuggestReason uint8

const (
	// SuggestCost means the node is underutilized and wants to shed
	// subscribers to cut back-to-CDN cost.
	SuggestCost SuggestReason = iota
	// SuggestQoS means this connection is a QoS outlier on the node.
	SuggestQoS
)

// String names the reason.
func (r SuggestReason) String() string {
	if r == SuggestCost {
		return "cost"
	}
	return "qos"
}

// SwitchSuggestion is the edge adviser's proactive hint to a client
// (§4.2.2).
type SwitchSuggestion struct {
	Key    scheduler.SubstreamKey
	Reason SuggestReason
}

// CandidateReq asks the global scheduler for recommendations.
type CandidateReq struct {
	Key    scheduler.SubstreamKey
	Client scheduler.ClientInfo
}

// CandidateResp returns the scheduler's top-K.
type CandidateResp struct {
	Key        scheduler.SubstreamKey
	Candidates []scheduler.Candidate
}

// NodeFailureReport tells the scheduler a node kept failing connections.
type NodeFailureReport struct {
	Node simnet.Addr
}

// StreamUtilReq asks the scheduler for a stream's average forwarding
// utilization (cost-trigger double-check, §4.2.2).
type StreamUtilReq struct {
	Key scheduler.SubstreamKey
}

// StreamUtilResp answers a StreamUtilReq.
type StreamUtilResp struct {
	Key  scheduler.SubstreamKey
	Util float64
	N    int
}

// SeqQuery polls the centralized sequencing "super node" for frame order
// past SinceDts. This message belongs to the pre-RLive centralized design
// the paper abandons (§7.3.2, Table 3), kept as an evaluation baseline.
type SeqQuery struct {
	Stream   media.StreamID
	SinceDts uint64
}

// SeqUpdate carries the super node's footprint chain for a stream.
type SeqUpdate struct {
	Stream media.StreamID
	Chain  []chain.Footprint
}

// WireSize returns the modeled on-wire size in bytes of a message,
// including protocol overhead (UDP/IP framing plus our own headers). The
// simulator charges this size against link capacity.
func WireSize(msg any) int {
	const hdr = 28 + 8 // IP+UDP + magic/type/version
	switch m := msg.(type) {
	case *DataPacket:
		return hdr + media.HeaderSize + 16 + len(m.Chain)*chain.FootprintSize + m.PayloadLen
	case DataPacket:
		return hdr + media.HeaderSize + 16 + len(m.Chain)*chain.FootprintSize + m.PayloadLen
	case *CDNFrame:
		if m.Full {
			return hdr + media.HeaderSize + 10 + int(m.Header.Size)
		}
		return hdr + media.HeaderSize + 10
	case CDNFrame:
		if m.Full {
			return hdr + media.HeaderSize + 10 + int(m.Header.Size)
		}
		return hdr + media.HeaderSize + 10
	case *RetxReq:
		return hdr + 16 + 2*len(m.Missing)
	case RetxReq:
		return hdr + 16 + 2*len(m.Missing)
	case *CandidateResp:
		return hdr + 8 + 12*len(m.Candidates)
	case CandidateResp:
		return hdr + 8 + 12*len(m.Candidates)
	case scheduler.Heartbeat:
		return scheduler.HeartbeatBytes
	case *scheduler.Heartbeat:
		return scheduler.HeartbeatBytes
	case SubscribeReq, UnsubscribeReq, *SubscribeReq, *UnsubscribeReq:
		return hdr + 8
	case CDNSubscribeReq, CDNUnsubscribeReq, *CDNSubscribeReq, *CDNUnsubscribeReq:
		return hdr + 10
	case FrameReq, *FrameReq:
		return hdr + 12
	case RetxNack, *RetxNack:
		return hdr + 13
	case ProbeReq, ProbeResp, *ProbeReq, *ProbeResp:
		return hdr + 13
	case QoSReport, *QoSReport:
		return hdr + 24
	case SwitchSuggestion, *SwitchSuggestion:
		return hdr + 9
	case CandidateReq, *CandidateReq:
		return hdr + 20
	case NodeFailureReport, *NodeFailureReport:
		return hdr + 4
	case StreamUtilReq, *StreamUtilReq:
		return hdr + 8
	case StreamUtilResp, *StreamUtilResp:
		return hdr + 20
	case SeqQuery, *SeqQuery:
		return hdr + 12
	case *SeqUpdate:
		return hdr + 4 + len(m.Chain)*chain.FootprintSize
	case SeqUpdate:
		return hdr + 4 + len(m.Chain)*chain.FootprintSize
	default:
		if n, ok := ctrlplane.CtrlWireSize(msg); ok {
			return hdr + n
		}
		return hdr + 16
	}
}

package transport

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/media"
	"repro/internal/scheduler"
)

// TestPacketPoolReuse is the pooled-lifecycle property test (the analogue
// of simnet's deliverEvent slab tests): a released packet comes back from
// Get zeroed — no stale header, chain, or payload from its previous life —
// while the Chain backing array is retained for reuse.
func TestPacketPoolReuse(t *testing.T) {
	var p PacketPool
	m := p.Get()
	m.Key = scheduler.SubstreamKey{Stream: 7, Substream: 3}
	m.Header = media.Header{Dts: 1000, Size: 5000}
	m.Seq, m.Count = 2, 5
	m.PayloadLen = 1200
	m.Chain = append(m.Chain, chain.Footprint{Dts: 1000, CRC: 42})
	m.Retransmit = true
	m.PoolRelease()
	if p.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d after release, want 1", p.FreeLen())
	}

	m2 := p.Get()
	if m2 != m {
		t.Fatalf("Get did not reuse the released slot")
	}
	if p.FreeLen() != 0 {
		t.Fatalf("FreeLen = %d after Get, want 0", p.FreeLen())
	}
	if m2.Key != (scheduler.SubstreamKey{}) || m2.Header != (media.Header{}) ||
		m2.Seq != 0 || m2.Count != 0 || m2.PayloadLen != 0 || m2.Retransmit {
		t.Fatalf("reused packet not zeroed: %+v", m2)
	}
	if len(m2.Chain) != 0 {
		t.Fatalf("reused packet carries stale chain: %v", m2.Chain)
	}
	if cap(m2.Chain) == 0 {
		t.Fatalf("Chain backing array was not retained across recycle")
	}
}

// TestPoolGenerationGuard: the generation advances on every recycle, so a
// holder that cached (pointer, Generation()) detects the slot was reused —
// the same epoch-guard idea as the simnet event slabs.
func TestPoolGenerationGuard(t *testing.T) {
	var p RecordPool
	m := p.Get()
	g0 := m.Generation()
	m.PoolRelease()
	m2 := p.Get()
	if m2 != m {
		t.Fatalf("expected slot reuse")
	}
	if m2.Generation() != g0+1 {
		t.Fatalf("generation = %d after recycle, want %d", m2.Generation(), g0+1)
	}
}

// TestPoolFanOutRefcount models the frame fan-out: one builder reference
// from Get plus one Retain per Send; the slot must return to the free list
// exactly once, after the last release.
func TestPoolFanOutRefcount(t *testing.T) {
	var p RecordPool
	m := p.Get()
	const subscribers = 3
	for i := 0; i < subscribers; i++ {
		m.Retain() // one per Send
	}
	m.PoolRelease() // builder drops its reference
	for i := 0; i < subscribers; i++ {
		if p.FreeLen() != 0 {
			t.Fatalf("recycled while %d deliveries outstanding", subscribers-i)
		}
		m.PoolRelease() // network releases one per delivery
	}
	if p.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d after final release, want 1", p.FreeLen())
	}
}

// TestPoolOverReleasePanics: a refcount bug must fail loudly, not silently
// double-free a live message.
func TestPoolOverReleasePanics(t *testing.T) {
	var p RetxReqPool
	m := p.Get()
	m.PoolRelease()
	defer func() {
		if recover() == nil {
			t.Fatalf("over-release did not panic")
		}
	}()
	// The slot is on the free list with refs == 0; releasing again is the
	// bug the panic guards.
	m.PoolRelease()
}

// TestUnpooledMessagesAreNoOps: plain literals (codec paths, livenet,
// tests) have no pool, so the network's release hooks must leave them
// untouched.
func TestUnpooledMessagesAreNoOps(t *testing.T) {
	m := &DataPacket{Seq: 9}
	m.Retain()
	m.PoolRelease()
	m.PoolRelease()
	if m.Seq != 9 {
		t.Fatalf("unpooled packet mutated by release: %+v", m)
	}
	r := &FrameReq{Dts: 5}
	r.Retain()
	r.PoolRelease()
	if r.Dts != 5 {
		t.Fatalf("unpooled request mutated by release: %+v", r)
	}
}

// TestPoolTrim: an oversized free list is dropped at a quiescent point
// (the PR 7 capacity-trim fix applied to the message slabs), while a
// modest one is kept.
func TestPoolTrim(t *testing.T) {
	var p FrameReqPool
	live := make([]*FrameReq, poolTrimThreshold+1)
	for i := range live {
		live[i] = p.Get()
	}
	for _, m := range live {
		m.PoolRelease()
	}
	if p.FreeLen() <= poolTrimThreshold {
		t.Fatalf("setup: FreeLen = %d, want > %d", p.FreeLen(), poolTrimThreshold)
	}
	p.Trim()
	if p.FreeLen() != 0 {
		t.Fatalf("Trim kept an oversized free list: FreeLen = %d", p.FreeLen())
	}

	var small PacketPool
	a, b := small.Get(), small.Get()
	a.PoolRelease()
	b.PoolRelease()
	small.Trim()
	if small.FreeLen() != 2 {
		t.Fatalf("Trim dropped a modest free list: FreeLen = %d", small.FreeLen())
	}
}

// TestPoolSteadyStateAllocFree: after warm-up, a Get → fill → Release cycle
// allocates nothing — the zero-alloc guarantee the data plane builds on.
func TestPoolSteadyStateAllocFree(t *testing.T) {
	var pkts PacketPool
	var recs RecordPool
	// Warm-up: materialize the slots and the Chain backing array.
	m := pkts.Get()
	m.Chain = append(m.Chain[:0], chain.Footprint{Dts: 1}, chain.Footprint{Dts: 2})
	m.PoolRelease()
	recs.Get().PoolRelease()

	allocs := testing.AllocsPerRun(1000, func() {
		p := pkts.Get()
		p.Header = media.Header{Dts: 42, Size: 3000}
		p.Chain = append(p.Chain[:0], chain.Footprint{Dts: 40}, chain.Footprint{Dts: 41})
		r := recs.Get()
		r.Header = p.Header
		r.Retain()
		r.PoolRelease()
		r.PoolRelease()
		p.PoolRelease()
	})
	if allocs != 0 {
		t.Fatalf("steady-state pool cycle allocates %.1f/op, want 0", allocs)
	}
}

package transport

import (
	"encoding/binary"
	"fmt"

	"repro/internal/chain"
	"repro/internal/media"
	"repro/internal/scheduler"
	"repro/internal/simnet"
)

// MsgType tags a wire message on the real-network path.
type MsgType uint8

const (
	// TypeData is a DataPacket.
	TypeData MsgType = iota + 1
	// TypeSubscribe is a SubscribeReq.
	TypeSubscribe
	// TypeUnsubscribe is an UnsubscribeReq.
	TypeUnsubscribe
	// TypeRetx is a RetxReq.
	TypeRetx
	// TypeProbe is a ProbeReq.
	TypeProbe
	// TypeProbeResp is a ProbeResp.
	TypeProbeResp
	// TypeQoSReport is a QoSReport.
	TypeQoSReport
	// TypeSuggest is a SwitchSuggestion.
	TypeSuggest
)

// Magic identifies RLive datagrams.
const Magic uint16 = 0x524C // "RL"

// codec buffer layout: magic(2) type(1) then type-specific body.

func putKey(b []byte, k scheduler.SubstreamKey) {
	binary.BigEndian.PutUint32(b[0:4], uint32(k.Stream))
	b[4] = byte(k.Substream)
}

func getKey(b []byte) scheduler.SubstreamKey {
	return scheduler.SubstreamKey{
		Stream:    media.StreamID(binary.BigEndian.Uint32(b[0:4])),
		Substream: media.SubstreamID(b[4]),
	}
}

// MarshalDataPacket encodes p for UDP transmission. Layout after the common
// prefix: key(5) seq(2) count(2) payloadLen(2) publisher(4) genAt(8)
// retrans(1) header(19) chainLen(1) chain(14×n) payload.
func MarshalDataPacket(p *DataPacket) []byte {
	n := 3 + 5 + 2 + 2 + 2 + 4 + 8 + 1 + media.HeaderSize + 1 + len(p.Chain)*chain.FootprintSize + len(p.Payload)
	b := make([]byte, n)
	binary.BigEndian.PutUint16(b[0:2], Magic)
	b[2] = byte(TypeData)
	putKey(b[3:], p.Key)
	binary.BigEndian.PutUint16(b[8:10], p.Seq)
	binary.BigEndian.PutUint16(b[10:12], p.Count)
	binary.BigEndian.PutUint16(b[12:14], uint16(p.PayloadLen))
	binary.BigEndian.PutUint32(b[14:18], uint32(p.Publisher))
	binary.BigEndian.PutUint64(b[18:26], uint64(p.GeneratedAt))
	if p.Retransmit {
		b[26] = 1
	}
	hb := p.Header.Marshal()
	copy(b[27:], hb[:])
	off := 27 + media.HeaderSize
	b[off] = byte(len(p.Chain))
	off++
	for _, fp := range p.Chain {
		fb := fp.Marshal()
		copy(b[off:], fb[:])
		off += chain.FootprintSize
	}
	copy(b[off:], p.Payload)
	return b
}

// UnmarshalDataPacket decodes a TypeData datagram (including prefix).
func UnmarshalDataPacket(b []byte) (*DataPacket, error) {
	const fixed = 3 + 5 + 2 + 2 + 2 + 4 + 8 + 1 + media.HeaderSize + 1
	if len(b) < fixed {
		return nil, fmt.Errorf("transport: data packet too short: %d", len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != Magic || MsgType(b[2]) != TypeData {
		return nil, fmt.Errorf("transport: bad magic/type")
	}
	p := &DataPacket{
		Key:        getKey(b[3:]),
		Seq:        binary.BigEndian.Uint16(b[8:10]),
		Count:      binary.BigEndian.Uint16(b[10:12]),
		PayloadLen: int(binary.BigEndian.Uint16(b[12:14])),
		Publisher:  simnet.Addr(binary.BigEndian.Uint32(b[14:18])),
		GeneratedAt: int64(
			binary.BigEndian.Uint64(b[18:26])),
		Retransmit: b[26] == 1,
	}
	h, err := media.UnmarshalHeader(b[27:])
	if err != nil {
		return nil, err
	}
	p.Header = h
	off := 27 + media.HeaderSize
	cl := int(b[off])
	off++
	if len(b) < off+cl*chain.FootprintSize {
		return nil, fmt.Errorf("transport: truncated chain")
	}
	p.Chain = make([]chain.Footprint, cl)
	for i := 0; i < cl; i++ {
		fp, err := chain.UnmarshalFootprint(b[off:])
		if err != nil {
			return nil, err
		}
		p.Chain[i] = fp
		off += chain.FootprintSize
	}
	if len(b) < off+p.PayloadLen {
		return nil, fmt.Errorf("transport: truncated payload: have %d want %d", len(b)-off, p.PayloadLen)
	}
	p.Payload = b[off : off+p.PayloadLen]
	return p, nil
}

// MarshalRetxReq encodes r for UDP transmission.
func MarshalRetxReq(r *RetxReq) []byte {
	b := make([]byte, 3+5+8+2+2*len(r.Missing))
	binary.BigEndian.PutUint16(b[0:2], Magic)
	b[2] = byte(TypeRetx)
	putKey(b[3:], r.Key)
	binary.BigEndian.PutUint64(b[8:16], r.Dts)
	binary.BigEndian.PutUint16(b[16:18], uint16(len(r.Missing)))
	off := 18
	for _, m := range r.Missing {
		binary.BigEndian.PutUint16(b[off:], m)
		off += 2
	}
	return b
}

// UnmarshalRetxReq decodes a TypeRetx datagram.
func UnmarshalRetxReq(b []byte) (*RetxReq, error) {
	if len(b) < 18 {
		return nil, fmt.Errorf("transport: retx too short")
	}
	if binary.BigEndian.Uint16(b[0:2]) != Magic || MsgType(b[2]) != TypeRetx {
		return nil, fmt.Errorf("transport: bad magic/type")
	}
	r := &RetxReq{Key: getKey(b[3:]), Dts: binary.BigEndian.Uint64(b[8:16])}
	n := int(binary.BigEndian.Uint16(b[16:18]))
	if len(b) < 18+2*n {
		return nil, fmt.Errorf("transport: truncated retx list")
	}
	r.Missing = make([]uint16, n)
	for i := 0; i < n; i++ {
		r.Missing[i] = binary.BigEndian.Uint16(b[18+2*i:])
	}
	return r, nil
}

// MarshalSubscribe encodes a subscribe or unsubscribe request.
func MarshalSubscribe(key scheduler.SubstreamKey, unsubscribe bool) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint16(b[0:2], Magic)
	if unsubscribe {
		b[2] = byte(TypeUnsubscribe)
	} else {
		b[2] = byte(TypeSubscribe)
	}
	putKey(b[3:], key)
	return b
}

// UnmarshalSubscribe decodes a subscribe/unsubscribe datagram, returning the
// key and whether it is an unsubscribe.
func UnmarshalSubscribe(b []byte) (scheduler.SubstreamKey, bool, error) {
	if len(b) < 8 {
		return scheduler.SubstreamKey{}, false, fmt.Errorf("transport: subscribe too short")
	}
	if binary.BigEndian.Uint16(b[0:2]) != Magic {
		return scheduler.SubstreamKey{}, false, fmt.Errorf("transport: bad magic")
	}
	switch MsgType(b[2]) {
	case TypeSubscribe:
		return getKey(b[3:]), false, nil
	case TypeUnsubscribe:
		return getKey(b[3:]), true, nil
	default:
		return scheduler.SubstreamKey{}, false, fmt.Errorf("transport: not a subscribe")
	}
}

// MarshalProbe encodes a probe request or response.
func MarshalProbe(nonce uint32, key scheduler.SubstreamKey, resp, accepting bool) []byte {
	b := make([]byte, 13)
	binary.BigEndian.PutUint16(b[0:2], Magic)
	if resp {
		b[2] = byte(TypeProbeResp)
	} else {
		b[2] = byte(TypeProbe)
	}
	binary.BigEndian.PutUint32(b[3:7], nonce)
	putKey(b[7:], key)
	if accepting {
		b[12] = 1
	}
	return b
}

// UnmarshalProbe decodes a probe datagram.
func UnmarshalProbe(b []byte) (nonce uint32, key scheduler.SubstreamKey, resp, accepting bool, err error) {
	if len(b) < 13 {
		return 0, scheduler.SubstreamKey{}, false, false, fmt.Errorf("transport: probe too short")
	}
	if binary.BigEndian.Uint16(b[0:2]) != Magic {
		return 0, scheduler.SubstreamKey{}, false, false, fmt.Errorf("transport: bad magic")
	}
	switch MsgType(b[2]) {
	case TypeProbe:
	case TypeProbeResp:
		resp = true
	default:
		return 0, scheduler.SubstreamKey{}, false, false, fmt.Errorf("transport: not a probe")
	}
	return binary.BigEndian.Uint32(b[3:7]), getKey(b[7:]), resp, b[12] == 1, nil
}

// PeekType returns the message type of a datagram.
func PeekType(b []byte) (MsgType, error) {
	if len(b) < 3 || binary.BigEndian.Uint16(b[0:2]) != Magic {
		return 0, fmt.Errorf("transport: bad datagram")
	}
	return MsgType(b[2]), nil
}

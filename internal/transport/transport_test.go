package transport

import (
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/media"
	"repro/internal/scheduler"
	"repro/internal/simnet"
)

func samplePacket() *DataPacket {
	return &DataPacket{
		Key:         scheduler.SubstreamKey{Stream: 7, Substream: 2},
		Header:      media.Header{Stream: 7, Dts: 12345, Type: media.FrameI, Size: 4096, Seq: 11},
		Seq:         1,
		Count:       4,
		PayloadLen:  1200,
		Chain:       []chain.Footprint{{Dts: 1, CRC: 2, CNT: 3}, {Dts: 4, CRC: 5, CNT: 6}},
		Publisher:   100001,
		GeneratedAt: 987654321,
		Payload:     make([]byte, 1200),
		Retransmit:  true,
	}
}

func TestPacketsForFrame(t *testing.T) {
	cases := []struct{ size, want int }{
		{0, 1}, {1, 1}, {1200, 1}, {1201, 2}, {2400, 2}, {6000, 5}, {6001, 6},
	}
	for _, c := range cases {
		if got := PacketsForFrame(c.size); got != c.want {
			t.Errorf("PacketsForFrame(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestDataPacketRoundTrip(t *testing.T) {
	p := samplePacket()
	for i := range p.Payload {
		p.Payload[i] = byte(i)
	}
	b := MarshalDataPacket(p)
	got, err := UnmarshalDataPacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != p.Key || got.Header != p.Header || got.Seq != p.Seq ||
		got.Count != p.Count || got.PayloadLen != p.PayloadLen ||
		got.Publisher != p.Publisher || got.GeneratedAt != p.GeneratedAt ||
		got.Retransmit != p.Retransmit {
		t.Fatalf("fields mismatch:\n got %+v\nwant %+v", got, p)
	}
	if len(got.Chain) != 2 || got.Chain[0] != p.Chain[0] || got.Chain[1] != p.Chain[1] {
		t.Fatalf("chain mismatch: %v", got.Chain)
	}
	for i := range got.Payload {
		if got.Payload[i] != byte(i) {
			t.Fatal("payload corrupted")
		}
	}
}

func TestDataPacketRoundTripProperty(t *testing.T) {
	f := func(stream uint32, dts uint64, seq, count uint16, payLen uint8, pub uint32, gen int64) bool {
		p := &DataPacket{
			Key:         scheduler.SubstreamKey{Stream: media.StreamID(stream), Substream: media.SubstreamID(seq % 8)},
			Header:      media.Header{Stream: media.StreamID(stream), Dts: dts, Size: uint32(payLen)},
			Seq:         seq,
			Count:       count,
			PayloadLen:  int(payLen),
			Publisher:   simnet.Addr(100000 + (pub % 1000)),
			GeneratedAt: gen,
			Payload:     make([]byte, payLen),
		}
		b := MarshalDataPacket(p)
		got, err := UnmarshalDataPacket(b)
		return err == nil && got.Header == p.Header && got.Seq == p.Seq &&
			got.PayloadLen == p.PayloadLen && got.GeneratedAt == p.GeneratedAt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDataPacketTruncation(t *testing.T) {
	b := MarshalDataPacket(samplePacket())
	for _, cut := range []int{2, 10, 30, len(b) - 1} {
		if _, err := UnmarshalDataPacket(b[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestDataPacketBadMagic(t *testing.T) {
	b := MarshalDataPacket(samplePacket())
	b[0] = 0xFF
	if _, err := UnmarshalDataPacket(b); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRetxReqRoundTrip(t *testing.T) {
	r := &RetxReq{
		Key:     scheduler.SubstreamKey{Stream: 3, Substream: 1},
		Dts:     424242,
		Missing: []uint16{0, 5, 9},
	}
	got, err := UnmarshalRetxReq(MarshalRetxReq(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != r.Key || got.Dts != r.Dts || len(got.Missing) != 3 || got.Missing[1] != 5 {
		t.Fatalf("mismatch: %+v", got)
	}
}

func TestRetxReqEmptyMissing(t *testing.T) {
	r := &RetxReq{Key: scheduler.SubstreamKey{Stream: 1}, Dts: 1}
	got, err := UnmarshalRetxReq(MarshalRetxReq(r))
	if err != nil || len(got.Missing) != 0 {
		t.Fatalf("empty missing list mishandled: %v %v", got, err)
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	key := scheduler.SubstreamKey{Stream: 9, Substream: 3}
	for _, unsub := range []bool{false, true} {
		k, u, err := UnmarshalSubscribe(MarshalSubscribe(key, unsub))
		if err != nil || k != key || u != unsub {
			t.Fatalf("subscribe round trip: %v %v %v", k, u, err)
		}
	}
}

func TestProbeRoundTrip(t *testing.T) {
	key := scheduler.SubstreamKey{Stream: 5, Substream: 1}
	n, k, resp, acc, err := UnmarshalProbe(MarshalProbe(77, key, true, true))
	if err != nil || n != 77 || k != key || !resp || !acc {
		t.Fatalf("probe round trip: %v %v %v %v %v", n, k, resp, acc, err)
	}
	_, _, resp, acc, err = UnmarshalProbe(MarshalProbe(1, key, false, false))
	if err != nil || resp || acc {
		t.Fatalf("probe req decoded wrong: %v %v %v", resp, acc, err)
	}
}

func TestPeekType(t *testing.T) {
	b := MarshalSubscribe(scheduler.SubstreamKey{}, false)
	typ, err := PeekType(b)
	if err != nil || typ != TypeSubscribe {
		t.Fatalf("peek = %v %v", typ, err)
	}
	if _, err := PeekType([]byte{1}); err == nil {
		t.Fatal("short datagram accepted")
	}
}

func TestWireSizes(t *testing.T) {
	p := samplePacket()
	ws := WireSize(p)
	// Must at least cover payload + chain + header.
	min := p.PayloadLen + len(p.Chain)*chain.FootprintSize + media.HeaderSize
	if ws < min {
		t.Fatalf("wire size %d below content size %d", ws, min)
	}
	// Value and pointer forms must agree.
	if WireSize(*p) != ws {
		t.Fatal("value/pointer wire sizes disagree")
	}
	full := CDNFrame{Header: media.Header{Size: 5000}, Full: true}
	hdrOnly := CDNFrame{Header: media.Header{Size: 5000}, Full: false}
	if WireSize(full) <= WireSize(hdrOnly) {
		t.Fatal("full frame should cost more than header-only")
	}
	if WireSize(hdrOnly) > 100 {
		t.Fatalf("header-only record too expensive: %d", WireSize(hdrOnly))
	}
	hb := scheduler.Heartbeat{}
	if WireSize(hb) != scheduler.HeartbeatBytes {
		t.Fatal("heartbeat wire size should match the paper's ~150 B")
	}
}

func TestWireSizeUnknownType(t *testing.T) {
	if WireSize(struct{}{}) <= 0 {
		t.Fatal("unknown types need a positive default size")
	}
}

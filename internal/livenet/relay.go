package livenet

import (
	"bufio"
	"encoding/json"
	"net"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/media"
	"repro/internal/scheduler"
	"repro/internal/transport"
)

// Relay is a best-effort edge node on real sockets: it pulls a substream
// (plus the header side-channel) from the origin over TCP and pushes
// fixed-size packets with embedded frame chains to UDP subscribers.
type Relay struct {
	udp    *net.UDPConn
	origin string
	tel    relayTelemetry

	mu      sync.Mutex
	relays  map[scheduler.SubstreamKey]*relayState
	gens    map[media.StreamID]*chain.LocalGenerator
	lastObs map[media.StreamID]uint64
	quota   int
	subs    int
	stopped bool
	wg      sync.WaitGroup
}

type relayState struct {
	subs   map[string]*net.UDPAddr
	recent map[uint64]relayFrame
	order  []uint64
	cancel chan struct{}
}

type relayFrame struct {
	header media.Header
	data   []byte
	count  uint16
	chain  []chain.Footprint
	genAt  int64
}

// NewRelay binds a UDP socket on addr and remembers the origin address.
func NewRelay(addr, origin string, quota int) (*Relay, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, err
	}
	if quota <= 0 {
		quota = 64
	}
	r := &Relay{
		udp:     conn,
		origin:  origin,
		relays:  make(map[scheduler.SubstreamKey]*relayState),
		gens:    make(map[media.StreamID]*chain.LocalGenerator),
		lastObs: make(map[media.StreamID]uint64),
		quota:   quota,
	}
	r.wg.Add(1)
	go r.udpLoop()
	return r, nil
}

// Addr returns the UDP listen address.
func (r *Relay) Addr() string { return r.udp.LocalAddr().String() }

// udpLoop serves subscriber datagrams.
func (r *Relay) udpLoop() {
	defer r.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, from, err := r.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		typ, err := transport.PeekType(buf[:n])
		if err != nil {
			continue
		}
		switch typ {
		case transport.TypeSubscribe, transport.TypeUnsubscribe:
			key, unsub, err := transport.UnmarshalSubscribe(buf[:n])
			if err != nil {
				continue
			}
			if unsub {
				r.unsubscribe(key, from)
			} else {
				r.subscribe(key, from)
			}
		case transport.TypeProbe:
			nonce, key, _, _, err := transport.UnmarshalProbe(buf[:n])
			if err != nil {
				continue
			}
			r.mu.Lock()
			accepting := r.subs < r.quota
			r.mu.Unlock()
			resp := transport.MarshalProbe(nonce, key, true, accepting)
			r.udp.WriteToUDP(resp, from)
		case transport.TypeRetx:
			req, err := transport.UnmarshalRetxReq(buf[:n])
			if err != nil {
				continue
			}
			r.retransmit(req, from)
		}
	}
}

// subscribe adds a UDP subscriber and (on first subscriber) opens the
// origin feed for the substream.
func (r *Relay) subscribe(key scheduler.SubstreamKey, from *net.UDPAddr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.subs >= r.quota {
		return
	}
	rs, ok := r.relays[key]
	if !ok {
		rs = &relayState{
			subs:   make(map[string]*net.UDPAddr),
			recent: make(map[uint64]relayFrame),
			cancel: make(chan struct{}),
		}
		r.relays[key] = rs
		if _, ok := r.gens[key.Stream]; !ok {
			r.gens[key.Stream] = chain.NewLocalGenerator(chain.DefaultLength)
		}
		r.wg.Add(1)
		go r.pull(key, rs)
	}
	if _, dup := rs.subs[from.String()]; !dup {
		rs.subs[from.String()] = from
		r.subs++
	}
}

func (r *Relay) unsubscribe(key scheduler.SubstreamKey, from *net.UDPAddr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs, ok := r.relays[key]
	if !ok {
		return
	}
	if _, had := rs.subs[from.String()]; had {
		delete(rs.subs, from.String())
		r.subs--
	}
	if len(rs.subs) == 0 {
		close(rs.cancel)
		delete(r.relays, key)
	}
}

// pull streams the substream + headers from the origin and pushes packets.
func (r *Relay) pull(key scheduler.SubstreamKey, rs *relayState) {
	defer r.wg.Done()
	conn, err := net.DialTimeout("tcp", r.origin, 3*time.Second)
	if err != nil {
		return
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	enc.Encode(OriginCtl{Op: "subscribe", Stream: key.Stream, Mode: "headers", Substream: key.Substream})
	br := bufio.NewReaderSize(conn, 1<<20)
	for {
		select {
		case <-rs.cancel:
			return
		default:
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, full, err := ReadFrameRecord(br)
		if err != nil {
			return
		}
		r.onFrame(key, rs, f, full)
	}
}

func (r *Relay) onFrame(key scheduler.SubstreamKey, rs *relayState, f media.Frame, full bool) {
	r.mu.Lock()
	gen := r.gens[key.Stream]
	count := uint16(transport.PacketsForFrame(int(f.Header.Size)))
	if last, seen := r.lastObs[key.Stream]; !seen || f.Header.Dts > last {
		gen.Observe(f.Header, count)
		r.lastObs[key.Stream] = f.Header.Dts
	}
	if !full {
		r.mu.Unlock()
		return
	}
	r.tel.framesPulled.Inc()
	lchain := gen.Chain()
	rf := relayFrame{header: f.Header, data: f.Data, count: count, chain: lchain, genAt: f.GeneratedAt}
	rs.recent[f.Header.Dts] = rf
	rs.order = append(rs.order, f.Header.Dts)
	if len(rs.order) > 150 {
		delete(rs.recent, rs.order[0])
		rs.order = rs.order[1:]
	}
	targets := make([]*net.UDPAddr, 0, len(rs.subs))
	for _, a := range rs.subs {
		targets = append(targets, a)
	}
	r.mu.Unlock()

	for _, to := range targets {
		r.pushFrame(key, rf, to, nil, false)
	}
}

// pushFrame transmits the frame's packets (all, or the listed seqs).
func (r *Relay) pushFrame(key scheduler.SubstreamKey, rf relayFrame, to *net.UDPAddr, seqs []uint16, retx bool) {
	send := func(seq uint16) {
		lo := int(seq) * transport.PacketPayload
		hi := lo + transport.PacketPayload
		if hi > len(rf.data) {
			hi = len(rf.data)
		}
		if lo > hi {
			lo = hi
		}
		pkt := &transport.DataPacket{
			Key:         key,
			Header:      rf.header,
			Seq:         seq,
			Count:       rf.count,
			PayloadLen:  hi - lo,
			Chain:       rf.chain,
			GeneratedAt: rf.genAt,
			Payload:     rf.data[lo:hi],
			Retransmit:  retx,
		}
		r.udp.WriteToUDP(transport.MarshalDataPacket(pkt), to)
		r.tel.packetsSent.Inc()
	}
	if seqs == nil {
		for s := uint16(0); s < rf.count; s++ {
			send(s)
		}
	} else {
		for _, s := range seqs {
			if int(s) < int(rf.count) {
				send(s)
			}
		}
	}
}

func (r *Relay) retransmit(req *transport.RetxReq, from *net.UDPAddr) {
	r.mu.Lock()
	rs, ok := r.relays[req.Key]
	var rf relayFrame
	if ok {
		rf, ok = rs.recent[req.Dts]
	}
	r.mu.Unlock()
	if !ok {
		r.tel.retxMissed.Inc()
		return // viewer's timeout escalates to the origin
	}
	r.tel.retxServed.Inc()
	missing := req.Missing
	if len(missing) == 0 {
		missing = nil // resend everything
	}
	r.pushFrame(req.Key, rf, from, missing, true)
}

// Sessions returns the current subscriber count.
func (r *Relay) Sessions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.subs
}

// Close stops the relay.
func (r *Relay) Close() {
	r.mu.Lock()
	r.stopped = true
	for _, rs := range r.relays {
		select {
		case <-rs.cancel:
		default:
			close(rs.cancel)
		}
	}
	r.relays = make(map[scheduler.SubstreamKey]*relayState)
	r.mu.Unlock()
	r.udp.Close()
}

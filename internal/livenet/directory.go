package livenet

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"time"
)

// Directory is the global scheduler's real-network face: an HTTP/JSON
// service where relays register and heartbeat and viewers fetch candidate
// relay addresses per substream. It is intentionally simple — the full
// scoring/retrieval logic lives in internal/scheduler and runs inside the
// simulator; the directory demonstrates the control-plane wiring on real
// sockets for the daemons and the udplive example.
type Directory struct {
	srv *http.Server
	ln  net.Listener
	tel directoryTelemetry

	mu     sync.Mutex
	relays map[string]relayEntry
}

type relayEntry struct {
	Addr     string    `json:"addr"`
	Sessions int       `json:"sessions"`
	Quota    int       `json:"quota"`
	Seen     time.Time `json:"-"`
}

// RegisterMsg is a relay's heartbeat payload.
type RegisterMsg struct {
	Addr     string `json:"addr"`
	Sessions int    `json:"sessions"`
	Quota    int    `json:"quota"`
}

// CandidatesResp is the viewer-facing recommendation payload.
type CandidatesResp struct {
	Relays []string `json:"relays"`
}

// NewDirectory serves on addr.
func NewDirectory(addr string) (*Directory, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &Directory{relays: make(map[string]relayEntry)}
	mux := http.NewServeMux()
	mux.HandleFunc("/register", d.handleRegister)
	mux.HandleFunc("/candidates", d.handleCandidates)
	d.srv = &http.Server{Handler: mux}
	d.ln = ln
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the HTTP listen address.
func (d *Directory) Addr() string { return d.ln.Addr().String() }

func (d *Directory) handleRegister(w http.ResponseWriter, r *http.Request) {
	var m RegisterMsg
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil || m.Addr == "" {
		http.Error(w, "bad register", http.StatusBadRequest)
		return
	}
	d.mu.Lock()
	d.relays[m.Addr] = relayEntry{Addr: m.Addr, Sessions: m.Sessions, Quota: m.Quota, Seen: time.Now()}
	d.mu.Unlock()
	d.tel.registers.Inc()
	w.WriteHeader(http.StatusNoContent)
}

func (d *Directory) handleCandidates(w http.ResponseWriter, r *http.Request) {
	d.tel.candidateReqs.Inc()
	d.mu.Lock()
	var out []string
	now := time.Now()
	for _, e := range d.relays {
		if now.Sub(e.Seen) > 30*time.Second {
			continue
		}
		if e.Quota > 0 && e.Sessions >= e.Quota {
			continue
		}
		out = append(out, e.Addr)
	}
	d.mu.Unlock()
	json.NewEncoder(w).Encode(CandidatesResp{Relays: out})
}

// NumRelays returns the count of live registrations.
func (d *Directory) NumRelays() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.relays)
}

// Close stops the server.
func (d *Directory) Close() { d.srv.Close() }

// RegisterWith posts a heartbeat to a directory (relay-side helper).
func RegisterWith(directory, relayAddr string, sessions, quota int) error {
	body, _ := json.Marshal(RegisterMsg{Addr: relayAddr, Sessions: sessions, Quota: quota})
	resp, err := http.Post("http://"+directory+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// FetchCandidates queries a directory for relay addresses (viewer-side).
func FetchCandidates(directory string) ([]string, error) {
	resp, err := http.Get("http://" + directory + "/candidates")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var c CandidatesResp
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		return nil, err
	}
	return c.Relays, nil
}

package livenet

import (
	"bufio"
	"encoding/json"
	"net"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/transport"
)

// Viewer is an RLive client on real sockets: it subscribes substreams to
// UDP relays, reassembles frames via the global chain, and plays against
// the wall clock. The origin serves startup, gap recovery, and fallback.
type Viewer struct {
	udp    *net.UDPConn
	origin string
	stream media.StreamID
	k      int
	iv     time.Duration
	tel    viewerTelemetry

	mu       sync.Mutex
	frames   map[uint64]*viewAsm
	gchain   *chain.Global
	playhead uint64
	started  bool
	seeded   bool
	QoE      *metrics.SessionQoE
	relays   map[media.SubstreamID]*net.UDPAddr
	stopped  chan struct{}
	wg       sync.WaitGroup

	originConn net.Conn
	originEnc  *json.Encoder
}

type viewAsm struct {
	header   media.Header
	haveHdr  bool
	count    uint16
	have     []bool
	got      int
	complete bool
	linked   bool
	played   bool
	genAt    int64
	viaCDN   bool
}

// NewViewer binds a UDP socket for relay traffic and opens the origin
// control connection.
func NewViewer(addr, origin string, stream media.StreamID, k int, fps int) (*Viewer, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, err
	}
	v := &Viewer{
		udp:     conn,
		origin:  origin,
		stream:  stream,
		k:       k,
		iv:      time.Second / time.Duration(fps),
		frames:  make(map[uint64]*viewAsm),
		gchain:  chain.NewGlobal(0),
		QoE:     metrics.NewSessionQoE(),
		relays:  make(map[media.SubstreamID]*net.UDPAddr),
		stopped: make(chan struct{}),
	}
	return v, nil
}

// Start begins the session: origin full-stream pull, UDP receive loop, and
// the playout clock. relays maps each substream to a relay's UDP address;
// the viewer subscribes each and drops the origin pull once all substreams
// flow.
func (v *Viewer) Start(relays map[media.SubstreamID]string) error {
	oc, err := net.DialTimeout("tcp", v.origin, 3*time.Second)
	if err != nil {
		return err
	}
	v.originConn = oc
	v.originEnc = json.NewEncoder(oc)
	v.originEnc.Encode(OriginCtl{Op: "subscribe", Stream: v.stream, Mode: "full"})
	v.wg.Add(1)
	go v.originLoop(oc)

	for ss, addr := range relays {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			continue
		}
		v.mu.Lock()
		v.relays[ss] = ua
		v.mu.Unlock()
		sub := transport.MarshalSubscribe(scheduler.SubstreamKey{Stream: v.stream, Substream: ss}, false)
		v.udp.WriteToUDP(sub, ua)
	}

	v.wg.Add(2)
	go v.udpLoop()
	go v.playLoop()
	return nil
}

func (v *Viewer) originLoop(conn net.Conn) {
	defer v.wg.Done()
	br := bufio.NewReaderSize(conn, 1<<20)
	for {
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, full, err := ReadFrameRecord(br)
		if err != nil {
			return
		}
		if !full {
			// Warm-up header: record it in the chain data pool. Relay
			// chains reach back to these pre-join frames, and a chain
			// seeded from one can never validate its head (and therefore
			// never links anything) unless the headers are present.
			v.mu.Lock()
			v.gchain.AddHeader(f.Header)
			v.mu.Unlock()
			continue
		}
		v.mu.Lock()
		a := v.asm(f.Header.Dts)
		if !a.haveHdr {
			a.header = f.Header
			a.haveHdr = true
			a.count = uint16(transport.PacketsForFrame(int(f.Header.Size)))
			a.have = make([]bool, a.count)
			a.genAt = f.GeneratedAt
			v.gchain.AddHeader(f.Header)
		}
		if !a.complete {
			for i := range a.have {
				a.have[i] = true
			}
			a.got = int(a.count)
			a.complete = true
			a.viaCDN = true
			v.seedOrExtend(a)
		}
		v.refreshLinked()
		v.mu.Unlock()
	}
}

func (v *Viewer) asm(dts uint64) *viewAsm {
	a, ok := v.frames[dts]
	if !ok {
		a = &viewAsm{}
		v.frames[dts] = a
	}
	return a
}

// seedOrExtend seeds an empty chain or extends it through consecutive
// complete frames (mirrors the simulator client's self-link logic).
func (v *Viewer) seedOrExtend(a *viewAsm) {
	if _, ok := v.gchain.Terminal(); !ok && !v.seeded {
		v.seeded = true
		fp := chain.New(a.header, media.Header{}, media.Header{}, a.count)
		v.gchain.TryMatch([]chain.Footprint{fp})
		return
	}
	iv := uint64(v.iv.Milliseconds())
	for {
		term, ok := v.gchain.Terminal()
		if !ok {
			return
		}
		next, ok := v.frames[term.Dts+iv]
		if !ok || !next.complete || !next.haveHdr {
			return
		}
		if !v.gchain.AppendSelf(next.header, next.count) {
			return
		}
		if t2, _ := v.gchain.Terminal(); t2.Dts <= term.Dts {
			return
		}
	}
}

func (v *Viewer) refreshLinked() {
	for _, fp := range v.gchain.NextLinked() {
		if a, ok := v.frames[fp.Dts]; ok {
			a.linked = true
		}
	}
}

func (v *Viewer) udpLoop() {
	defer v.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		v.udp.SetReadDeadline(time.Now().Add(time.Second))
		n, _, err := v.udp.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-v.stopped:
				return
			default:
				continue
			}
		}
		typ, err := transport.PeekType(buf[:n])
		if err != nil || typ != transport.TypeData {
			continue
		}
		p, err := transport.UnmarshalDataPacket(buf[:n])
		if err != nil {
			continue
		}
		v.tel.packetsReceived.Inc()
		v.mu.Lock()
		a := v.asm(p.Header.Dts)
		if !a.haveHdr {
			a.header = p.Header
			a.haveHdr = true
			a.count = p.Count
			a.have = make([]bool, p.Count)
			a.genAt = p.GeneratedAt
			v.gchain.AddHeader(p.Header)
		}
		if int(p.Seq) < len(a.have) && !a.have[p.Seq] {
			a.have[p.Seq] = true
			a.got++
		}
		if len(p.Chain) > 0 {
			v.gchain.TryMatch(p.Chain)
		}
		if !a.complete && a.got == int(a.count) {
			a.complete = true
			v.seedOrExtend(a)
		}
		v.refreshLinked()
		v.mu.Unlock()
	}
}

// playLoop consumes frames at the wall-clock frame rate.
func (v *Viewer) playLoop() {
	defer v.wg.Done()
	tick := time.NewTicker(v.iv)
	defer tick.Stop()
	for {
		select {
		case <-v.stopped:
			return
		case <-tick.C:
		}
		v.mu.Lock()
		if !v.started {
			// Anchor at the earliest linked complete frame once a
			// modest buffer exists.
			var first uint64
			found := false
			ready := 0
			for dts, a := range v.frames {
				if a.complete && a.linked {
					ready++
					if !found || dts < first {
						first = dts
						found = true
					}
				}
			}
			if found && ready >= 10 {
				v.playhead = first
				v.started = true
			}
			v.mu.Unlock()
			continue
		}
		a, ok := v.frames[v.playhead]
		if ok && a.complete && a.linked {
			if !a.played {
				a.played = true
				v.QoE.FramesPlayed++
				v.tel.framesPlayed.Inc()
				v.QoE.AddPlayback(v.iv, float64(a.header.Size)*8/v.iv.Seconds())
				if a.genAt > 0 {
					lat := float64(time.Now().UnixNano()-a.genAt) / 1e6
					if lat >= 0 {
						v.QoE.E2ELatency.Add(lat)
						v.tel.e2eMs.Observe(lat)
					}
				}
			}
			v.gchain.MarkConsumed(v.playhead)
			v.playhead += uint64(v.iv.Milliseconds())
			v.mu.Unlock()
			continue
		}
		// Missing frame: request recovery from the origin and count the
		// stall tick.
		v.QoE.AddStall(v.iv, true)
		v.tel.stallTicks.Inc()
		dts := v.playhead
		v.mu.Unlock()
		if v.originEnc != nil {
			v.tel.recoveryReqs.Inc()
			v.originEnc.Encode(OriginCtl{Op: "frame", Stream: v.stream, Dts: dts})
		}
	}
}

// Played returns frames played so far.
func (v *Viewer) Played() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.QoE.FramesPlayed
}

// Close ends the session, unsubscribing from relays.
func (v *Viewer) Close() {
	close(v.stopped)
	v.mu.Lock()
	for ss, ua := range v.relays {
		un := transport.MarshalSubscribe(scheduler.SubstreamKey{Stream: v.stream, Substream: ss}, true)
		v.udp.WriteToUDP(un, ua)
	}
	v.mu.Unlock()
	if v.originConn != nil {
		v.originConn.Close()
	}
	v.udp.Close()
}

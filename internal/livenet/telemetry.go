package livenet

import "repro/internal/telemetry"

// Telemetry wiring for the real-network components. Each component gets a
// SetTelemetry(reg) that registers its instruments; with a nil registry
// every instrument is the nil no-op, so the hooks in the packet loops cost
// one inlined branch when observability is off (the same contract as the
// simulator's data plane).
//
// Counters and gauges are written from the components' own goroutines
// (accept loops, UDP loops, playout clocks) — safe because telemetry
// counter/gauge writes are atomic. Gauge funcs take the component mutex,
// so they are safe to evaluate from an HTTP goroutine at /metrics
// request time (the obs.AddLiveRegistry contract).

// originTelemetry holds the origin's instruments.
type originTelemetry struct {
	framesGenerated *telemetry.Counter // frames produced by hosted streams
	framesSent      *telemetry.Counter // frame records written to subscribers
	recoveries      *telemetry.Counter // dts-indexed recovery fetches served
	subDrops        *telemetry.Counter // subscribers dropped on write failure
}

// SetTelemetry registers the origin's instruments on reg. Call before
// serving traffic. Safe with a nil registry (and on a nil origin).
func (o *Origin) SetTelemetry(reg *telemetry.Registry) {
	if o == nil {
		return
	}
	o.tel = originTelemetry{
		framesGenerated: reg.Counter("origin.frames_generated"),
		framesSent:      reg.Counter("origin.frames_sent"),
		recoveries:      reg.Counter("origin.recoveries_served"),
		subDrops:        reg.Counter("origin.sub_drops"),
	}
	reg.GaugeFunc("origin.subscribers", func() float64 {
		o.mu.Lock()
		defer o.mu.Unlock()
		n := 0
		for _, st := range o.streams {
			n += len(st.subs)
		}
		return float64(n)
	})
}

// relayTelemetry holds a relay's instruments.
type relayTelemetry struct {
	framesPulled *telemetry.Counter // full frames received from the origin
	packetsSent  *telemetry.Counter // data packets pushed to subscribers
	retxServed   *telemetry.Counter // retransmit requests answered from cache
	retxMissed   *telemetry.Counter // retransmit requests past the cache
}

// SetTelemetry registers the relay's instruments on reg. Safe with a nil
// registry (and on a nil relay).
func (r *Relay) SetTelemetry(reg *telemetry.Registry) {
	if r == nil {
		return
	}
	r.tel = relayTelemetry{
		framesPulled: reg.Counter("relay.frames_pulled"),
		packetsSent:  reg.Counter("relay.packets_sent"),
		retxServed:   reg.Counter("relay.retx_served"),
		retxMissed:   reg.Counter("relay.retx_missed"),
	}
	reg.GaugeFunc("relay.sessions", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(r.subs)
	})
}

// e2eEdgesMs are the viewer end-to-end latency histogram edges
// (milliseconds): one frame interval at 30 fps up through the production
// fallback threshold and beyond.
var e2eEdgesMs = []float64{33, 66, 100, 200, 400, 800, 1600, 3200}

// viewerTelemetry holds a viewer's instruments.
type viewerTelemetry struct {
	packetsReceived *telemetry.Counter   // relay data packets accepted
	framesPlayed    *telemetry.Counter   // frames consumed by the playout clock
	stallTicks      *telemetry.Counter   // playout ticks spent stalled
	recoveryReqs    *telemetry.Counter   // frame recoveries requested from origin
	e2eMs           *telemetry.Histogram // generation-to-playout latency
}

// SetTelemetry registers the viewer's instruments on reg. Safe with a nil
// registry (and on a nil viewer).
func (v *Viewer) SetTelemetry(reg *telemetry.Registry) {
	if v == nil {
		return
	}
	v.tel = viewerTelemetry{
		packetsReceived: reg.Counter("viewer.packets_received"),
		framesPlayed:    reg.Counter("viewer.frames_played"),
		stallTicks:      reg.Counter("viewer.stall_ticks"),
		recoveryReqs:    reg.Counter("viewer.recovery_requests"),
		e2eMs:           reg.Histogram("viewer.e2e_ms", e2eEdgesMs),
	}
	reg.GaugeFunc("viewer.playhead_dts", func() float64 {
		v.mu.Lock()
		defer v.mu.Unlock()
		return float64(v.playhead)
	})
}

// directoryTelemetry holds the directory's instruments.
type directoryTelemetry struct {
	registers     *telemetry.Counter // relay heartbeats accepted
	candidateReqs *telemetry.Counter // viewer candidate queries served
}

// SetTelemetry registers the directory's instruments on reg. Safe with a
// nil registry (and on a nil directory).
func (d *Directory) SetTelemetry(reg *telemetry.Registry) {
	if d == nil {
		return
	}
	d.tel = directoryTelemetry{
		registers:     reg.Counter("dir.registers"),
		candidateReqs: reg.Counter("dir.candidate_requests"),
	}
	reg.GaugeFunc("dir.relays", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.relays))
	})
}

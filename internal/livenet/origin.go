// Package livenet is the real-network implementation of RLive: a TCP CDN
// origin, UDP best-effort relays, an HTTP/JSON directory (global
// scheduler), and a UDP viewer. It exists so the system is a runnable
// deliverable on real sockets, not only a simulator — the cmd/rlive-*
// daemons and the examples/udplive pipeline are built on it. The data-plane
// wire format is shared with the simulator (internal/transport).
//
// Framing:
//   - Origin (TCP): control lines are newline-delimited JSON; frames flow
//     as length-prefixed binary records (4-byte big-endian length, then
//     media.Header bytes followed by payload for full frames).
//   - Relay→viewer (UDP): transport.MarshalDataPacket datagrams.
//   - Viewer→relay (UDP): transport subscribe/retx/probe datagrams.
package livenet

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/media"
	"repro/internal/stats"
)

// OriginCtl is the JSON control message a subscriber sends on connect.
type OriginCtl struct {
	// Op is "subscribe" or "frame" (dts-indexed recovery).
	Op string `json:"op"`
	// Stream is the stream ID.
	Stream media.StreamID `json:"stream"`
	// Mode is "full", "substream", or "headers" (substream + header
	// side-channel).
	Mode string `json:"mode,omitempty"`
	// Substream selects the substream for substream/headers modes.
	Substream media.SubstreamID `json:"substream,omitempty"`
	// Dts is the recovery target for op "frame".
	Dts uint64 `json:"dts,omitempty"`
}

// frameRecord is the binary framing: length, full flag, header, payload.
const recHeaderLen = 1 + media.HeaderSize + 8 // full flag + header + generatedAt

func writeFrameRecord(w *bufio.Writer, f media.Frame, full bool) error {
	payload := 0
	if full {
		payload = len(f.Data)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(recHeaderLen+payload))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	flag := byte(0)
	if full {
		flag = 1
	}
	if err := w.WriteByte(flag); err != nil {
		return err
	}
	hb := f.Header.Marshal()
	if _, err := w.Write(hb[:]); err != nil {
		return err
	}
	var gen [8]byte
	binary.BigEndian.PutUint64(gen[:], uint64(f.GeneratedAt))
	if _, err := w.Write(gen[:]); err != nil {
		return err
	}
	if full {
		if _, err := w.Write(f.Data); err != nil {
			return err
		}
	}
	return w.Flush()
}

// ReadFrameRecord reads one frame record from an origin connection.
func ReadFrameRecord(r *bufio.Reader) (media.Frame, bool, error) {
	var lenBuf [4]byte
	if _, err := ioReadFull(r, lenBuf[:]); err != nil {
		return media.Frame{}, false, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < recHeaderLen || n > 32<<20 {
		return media.Frame{}, false, fmt.Errorf("livenet: bad record length %d", n)
	}
	buf := make([]byte, n)
	if _, err := ioReadFull(r, buf); err != nil {
		return media.Frame{}, false, err
	}
	full := buf[0] == 1
	h, err := media.UnmarshalHeader(buf[1:])
	if err != nil {
		return media.Frame{}, false, err
	}
	gen := int64(binary.BigEndian.Uint64(buf[1+media.HeaderSize:]))
	f := media.Frame{Header: h, GeneratedAt: gen}
	if full {
		f.Data = buf[recHeaderLen:]
	}
	return f, full, nil
}

func ioReadFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// originSub is one live subscription on the origin.
type originSub struct {
	mode      string
	substream media.SubstreamID
	w         *bufio.Writer
	conn      net.Conn
	mu        sync.Mutex
	dead      bool
}

// Origin is the dedicated CDN node on real sockets.
type Origin struct {
	ln  net.Listener
	tel originTelemetry

	mu      sync.Mutex
	streams map[media.StreamID]*originStream
	stopped bool
	wg      sync.WaitGroup
}

type originStream struct {
	src    *media.Source
	part   media.Partitioner
	recent map[uint64]media.Frame
	order  []uint64
	subs   map[*originSub]struct{}
}

// NewOrigin listens on addr (e.g. "127.0.0.1:0").
func NewOrigin(addr string) (*Origin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o := &Origin{ln: ln, streams: make(map[media.StreamID]*originStream)}
	o.wg.Add(1)
	go o.acceptLoop()
	return o, nil
}

// Addr returns the listen address.
func (o *Origin) Addr() string { return o.ln.Addr().String() }

// HostStream starts generating a stream at its real-time frame rate.
func (o *Origin) HostStream(cfg media.SourceConfig, k int, seed uint64) {
	src := media.NewSource(cfg, stats.NewRNG(seed))
	st := &originStream{
		src:    src,
		part:   media.Partitioner{K: k},
		recent: make(map[uint64]media.Frame),
		subs:   make(map[*originSub]struct{}),
	}
	o.mu.Lock()
	o.streams[cfg.Stream] = st
	o.mu.Unlock()

	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
		tick := time.NewTicker(src.Interval())
		defer tick.Stop()
		for range tick.C {
			o.mu.Lock()
			if o.stopped {
				o.mu.Unlock()
				return
			}
			f := src.Next(time.Now().UnixNano())
			f.Data = make([]byte, f.Size)
			o.tel.framesGenerated.Inc()
			st.recent[f.Dts] = f
			st.order = append(st.order, f.Dts)
			if len(st.order) > 600 {
				delete(st.recent, st.order[0])
				st.order = st.order[1:]
			}
			ssid := st.part.Assign(f.Dts)
			subs := make([]*originSub, 0, len(st.subs))
			for s := range st.subs {
				subs = append(subs, s)
			}
			o.mu.Unlock()
			for _, s := range subs {
				full := s.mode == "full" || (s.mode != "full" && s.substream == ssid)
				if s.mode == "substream" && s.substream != ssid {
					continue // no header side-channel requested
				}
				o.deliver(st, s, f, full)
			}
		}
	}()
}

func (o *Origin) deliver(st *originStream, s *originSub, f media.Frame, full bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return
	}
	s.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if err := writeFrameRecord(s.w, f, full); err != nil {
		s.dead = true
		s.conn.Close()
		o.mu.Lock()
		delete(st.subs, s)
		o.mu.Unlock()
		o.tel.subDrops.Inc()
		return
	}
	o.tel.framesSent.Inc()
}

func (o *Origin) acceptLoop() {
	defer o.wg.Done()
	for {
		conn, err := o.ln.Accept()
		if err != nil {
			return
		}
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			o.handle(conn)
		}()
	}
}

func (o *Origin) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	dec := json.NewDecoder(r)
	var sub *originSub
	for {
		var ctl OriginCtl
		if err := dec.Decode(&ctl); err != nil {
			break
		}
		o.mu.Lock()
		st, ok := o.streams[ctl.Stream]
		o.mu.Unlock()
		if !ok {
			continue
		}
		switch ctl.Op {
		case "subscribe":
			if sub != nil {
				continue
			}
			mode := ctl.Mode
			if mode == "" {
				mode = "full"
			}
			// Warm-up: last two headers for chain context.
			o.mu.Lock()
			k := len(st.order) - 2
			if k < 0 {
				k = 0
			}
			warm := make([]media.Frame, 0, 2)
			for _, dts := range st.order[k:] {
				warm = append(warm, st.recent[dts])
			}
			o.mu.Unlock()
			sub = &originSub{mode: mode, substream: ctl.Substream, w: w, conn: conn}
			for _, f := range warm {
				writeFrameRecord(w, f, false)
			}
			o.mu.Lock()
			st.subs[sub] = struct{}{}
			o.mu.Unlock()
		case "frame":
			o.mu.Lock()
			f, ok := st.recent[ctl.Dts]
			o.mu.Unlock()
			if !ok {
				continue
			}
			o.tel.recoveries.Inc()
			tmp := &originSub{mode: "full", w: w, conn: conn}
			o.deliver(st, tmp, f, true)
		}
	}
	if sub != nil {
		o.mu.Lock()
		for _, st := range o.streams {
			delete(st.subs, sub)
		}
		o.mu.Unlock()
	}
	conn.Close()
}

// Close stops the origin.
func (o *Origin) Close() {
	o.mu.Lock()
	o.stopped = true
	o.mu.Unlock()
	o.ln.Close()
}

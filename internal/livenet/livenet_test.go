package livenet

import (
	"testing"
	"time"

	"repro/internal/media"
)

// TestLoopbackPipeline runs the full real-network path on localhost:
// origin → relays (one per substream) → viewer, with the directory
// mediating discovery. It exercises actual TCP/UDP sockets and the shared
// wire codecs; assertions are tolerant of scheduling jitter.
func TestLoopbackPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test skipped in -short mode")
	}
	const k = 2
	origin, err := NewOrigin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	origin.HostStream(media.SourceConfig{Stream: 1, FPS: 30, BitrateBps: 1e6}, k, 42)

	dir, err := NewDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()

	var relays []*Relay
	for i := 0; i < k; i++ {
		rl, err := NewRelay("127.0.0.1:0", origin.Addr(), 16)
		if err != nil {
			t.Fatal(err)
		}
		defer rl.Close()
		relays = append(relays, rl)
		if err := RegisterWith(dir.Addr(), rl.Addr(), 0, 16); err != nil {
			t.Fatal(err)
		}
	}

	cands, err := FetchCandidates(dir.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != k {
		t.Fatalf("directory returned %d candidates, want %d", len(cands), k)
	}

	// Let the origin accumulate a couple of frames first.
	time.Sleep(300 * time.Millisecond)

	viewer, err := NewViewer("127.0.0.1:0", origin.Addr(), 1, k, 30)
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	assign := map[media.SubstreamID]string{}
	for i, rl := range relays {
		assign[media.SubstreamID(i)] = rl.Addr()
	}
	if err := viewer.Start(assign); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if viewer.Played() >= 60 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	played := viewer.Played()
	if played < 60 {
		t.Fatalf("viewer played %d frames in 8s, want >= 60", played)
	}
	// The relays must actually be serving subscribers.
	total := 0
	for _, rl := range relays {
		total += rl.Sessions()
	}
	if total == 0 {
		t.Fatal("no relay sessions established")
	}
	if br := viewer.QoE.MeanBitrate(); br < 0.3e6 {
		t.Fatalf("mean bitrate %.0f, want ~1e6", br)
	}
}

func TestDirectoryFiltersFullRelays(t *testing.T) {
	dir, err := NewDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	if err := RegisterWith(dir.Addr(), "10.0.0.1:1000", 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := RegisterWith(dir.Addr(), "10.0.0.2:1000", 8, 8); err != nil {
		t.Fatal(err) // at quota
	}
	cands, err := FetchCandidates(dir.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0] != "10.0.0.1:1000" {
		t.Fatalf("candidates = %v, want only the non-full relay", cands)
	}
	if dir.NumRelays() != 2 {
		t.Fatalf("registered relays = %d", dir.NumRelays())
	}
}

func TestFrameRecordRoundTrip(t *testing.T) {
	// Covered indirectly by the pipeline; this checks the codec directly
	// through a TCP pair.
	origin, err := NewOrigin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	origin.HostStream(media.SourceConfig{Stream: 9, FPS: 30, BitrateBps: 5e5}, 1, 7)
	time.Sleep(200 * time.Millisecond)

	v, err := NewViewer("127.0.0.1:0", origin.Addr(), 9, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.Start(nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && v.Played() < 20 {
		time.Sleep(100 * time.Millisecond)
	}
	if v.Played() < 20 {
		t.Fatalf("origin-only viewer played %d frames", v.Played())
	}
}

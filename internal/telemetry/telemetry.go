// Package telemetry is the deterministic time-series observability layer:
// a per-run registry of typed instruments — monotone counters, gauges
// (stored or derived), and fixed-bucket histograms — plus a sim-time
// scraper that snapshots every instrument into a timeline.
//
// Design (mirrors internal/trace):
//
//   - A nil *Registry is the disabled collector. Instrument constructors
//     on a nil registry return nil instruments, and every record method
//     (Counter.Add, Gauge.Set, Histogram.Observe) is a single inlined nil
//     check on a nil receiver — the zero-config path costs nothing and
//     allocates nothing.
//   - Each simulated System owns one Registry and the simulator is
//     single-threaded, so instrument registration order, scrape times,
//     and every recorded value are pure functions of the seed. Encoded
//     timelines are byte-identical across repeated runs and across
//     serial vs parallel experiment execution.
//   - Counters are unsigned integers, histograms hold integer bucket
//     counts, and the only floats (gauge values, histogram sums) are
//     reproduced bit-exactly by identical operation order, then encoded
//     with strconv.FormatFloat(v, 'g', -1, 64) — the shortest exact
//     round-trip form — so the JSONL encoding is byte-reproducible.
//   - Scrape snapshots are cumulative; consumers difference adjacent
//     snapshots (HistSnap.Sub, counter deltas) to build per-interval
//     views, keeping all reconciliation arithmetic in the integer domain.
//
// Concurrency: counter and gauge writes are atomic and histogram writes
// take a per-instrument leaf lock, so the real-network binaries can share
// one registry across goroutines; Snapshot serializes against scrapes and
// registration under the registry lock. Scrapes themselves (and GaugeFunc
// evaluation) must come from a single producer goroutine — the simulator
// thread, or a binary's scrape loop — and GaugeFuncs must be safe to call
// from it. The HTTP observability plane (internal/obs) never evaluates
// GaugeFuncs off the producer thread: it reads LastSnap / published Snaps.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event counter. A nil *Counter is the disabled
// instrument: Add/Inc on it are a single branch with no allocation.
// Increments are atomic, so one counter may be shared across goroutines.
type Counter struct{ v uint64 }

// Add increments the counter by n. Safe (and free) on a nil receiver:
// the wrapper stays under the inlining budget, so with telemetry disabled
// every hook site compiles to one inlined nil check.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.add(n)
}

func (c *Counter) add(n uint64) { atomic.AddUint64(&c.v, n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil instrument).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return atomic.LoadUint64(&c.v)
}

// Gauge is a last-write-wins instantaneous value. Stores are atomic (the
// float is kept as its IEEE-754 bits), so gauges may be shared across
// goroutines.
type Gauge struct{ v uint64 }

// Set stores the gauge value. Safe (and free) on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.set(v)
}

func (g *Gauge) set(v float64) { atomic.StoreUint64(&g.v, math.Float64bits(v)) }

// Value returns the current gauge value (0 for the nil instrument).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.v))
}

// Histogram is a fixed-bucket histogram: observation v lands in the first
// bucket whose upper edge satisfies v <= edge, or the overflow bucket.
// Bucket counts are integers, so merged and differenced snapshots are
// exact; the running sum is the only float and is reproduced bit-exactly
// by identical observation order. Observations take a per-instrument leaf
// lock (uncontended on the single-threaded simulator) so histograms may be
// shared across goroutines in the real-network binaries.
type Histogram struct {
	mu     sync.Mutex
	edges  []float64
	counts []uint64 // len(edges)+1; last is overflow
	sum    float64
	n      uint64
}

// Observe records one observation. Safe (and free) on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n++
	h.sum += v
	for i, e := range h.edges {
		if v <= e {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.edges)]++
}

// read copies the histogram state under its lock.
func (h *Histogram) read() (n uint64, sum float64, buckets []uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets = make([]uint64, len(h.counts))
	copy(buckets, h.counts)
	return h.n, h.sum, buckets
}

// N returns the total observation count (0 for the nil instrument).
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Snap copies the histogram's current state into a HistSnap.
func (h *Histogram) Snap() HistSnap {
	if h == nil {
		return HistSnap{}
	}
	n, sum, buckets := h.read()
	return HistSnap{Edges: h.edges, Buckets: buckets, N: n, Sum: sum}
}

// HistSnap is an immutable histogram snapshot supporting the deterministic
// merge algebra consumers need: Sub yields the per-interval delta between
// two cumulative scrapes, Add merges snapshots across runs, and Quantile
// reads an upper-edge quantile bound off the bucket counts.
type HistSnap struct {
	Edges   []float64
	Buckets []uint64
	N       uint64
	Sum     float64
}

// Sub returns s minus prev (element-wise). Both snapshots must come from
// the same instrument; prev may be the zero HistSnap.
func (s HistSnap) Sub(prev HistSnap) HistSnap {
	out := HistSnap{Edges: s.Edges, N: s.N - prev.N, Sum: s.Sum - prev.Sum}
	out.Buckets = make([]uint64, len(s.Buckets))
	copy(out.Buckets, s.Buckets)
	for i := range prev.Buckets {
		if i < len(out.Buckets) {
			out.Buckets[i] -= prev.Buckets[i]
		}
	}
	return out
}

// Add returns the merge of two snapshots with identical bucket layouts.
func (s HistSnap) Add(o HistSnap) HistSnap {
	out := HistSnap{Edges: s.Edges, N: s.N + o.N, Sum: s.Sum + o.Sum}
	out.Buckets = make([]uint64, len(s.Buckets))
	copy(out.Buckets, s.Buckets)
	for i := range o.Buckets {
		if i < len(out.Buckets) {
			out.Buckets[i] += o.Buckets[i]
		}
	}
	return out
}

// Mean returns Sum/N, or 0 for an empty snapshot.
func (s HistSnap) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Quantile returns the upper edge of the bucket containing the q-quantile
// observation (the tightest deterministic upper bound the fixed buckets
// admit). The overflow bucket reports the last finite edge. Returns 0 for
// an empty snapshot.
func (s HistSnap) Quantile(q float64) float64 {
	if s.N == 0 || len(s.Edges) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.N))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			if i < len(s.Edges) {
				return s.Edges[i]
			}
			return s.Edges[len(s.Edges)-1]
		}
	}
	return s.Edges[len(s.Edges)-1]
}

// Kind is the canonical instrument kind a snapshot exposes. Derived gauges
// (GaugeFunc) report KindGauge: the distinction is a registration detail,
// not an exposition one.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHist
)

// String names the kind as the JSONL and exposition formats spell it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHist:
		return "hist"
	default:
		return "gauge"
	}
}

// instKind tags the registry's instrument slots.
type instKind uint8

const (
	kindCounter instKind = iota
	kindGauge
	kindGaugeFunc
	kindHist
)

var kindNames = [...]string{"counter", "gauge", "gauge", "hist"}

// canonKind maps a registration kind to the exposition Kind.
var canonKind = [...]Kind{KindCounter, KindGauge, KindGauge, KindHist}

// instrument is one registered slot: name, kind, and exactly one live arm.
type instrument struct {
	name string
	kind instKind
	c    *Counter
	g    *Gauge
	fn   func() float64
	h    *Histogram
}

// InstSnap is one instrument's state captured at a snapshot instant:
// counters fill C, gauges fill F, histograms fill C (observation count),
// F (sum), Buckets, and Edges. Edges alias the instrument's immutable
// bucket layout; everything else is a copy, so an InstSnap is safe to
// read from any goroutine once taken.
type InstSnap struct {
	Name    string
	Kind    Kind
	C       uint64
	F       float64
	Buckets []uint64
	Edges   []float64
}

// Snap is the registry state at one instant: the unit the JSONL encoder,
// the accessors, and the HTTP observability plane all consume. Insts is
// index-aligned with the registry's instruments at snapshot time;
// instruments registered later simply have no value in earlier snapshots.
type Snap struct {
	// Label and Seed identify the producing registry (run and RNG seed).
	Label string
	Seed  uint64
	// At is the snapshot instant in nanoseconds (simulation time for the
	// simulator, wall-clock for the real binaries).
	At    int64
	Insts []InstSnap
}

// Registry is the per-run instrument registry and scrape timeline: the
// unit the CLI encodes to JSONL. A nil *Registry is the disabled
// collector — all methods are safe no-ops returning nil instruments.
type Registry struct {
	// Label names the run in the JSONL header (experiment/arm).
	Label string
	// Seed is the RNG seed the run used.
	Seed uint64

	// mu guards registration, the scrape timeline, and the subscriber
	// list. Instrument writes never take it (counters and gauges are
	// atomic; histograms use their own leaf lock), so hook sites stay
	// lock-free. Scrape and Snapshot must come from one producer
	// goroutine; readers (accessors, LastSnap) may run anywhere.
	mu     sync.Mutex
	insts  []instrument
	byName map[string]int
	snaps  []Snap
	subs   []func(r *Registry, i int)
}

// NewRegistry returns an empty registry for one run.
func NewRegistry(label string, seed uint64) *Registry {
	return &Registry{Label: label, Seed: seed, byName: make(map[string]int)}
}

// Enabled reports whether the registry records (false when nil).
func (r *Registry) Enabled() bool { return r != nil }

// lookupLocked returns the instrument index for name, or -1 (r.mu held).
func (r *Registry) lookupLocked(name string) int {
	if i, ok := r.byName[name]; ok {
		return i
	}
	return -1
}

// registerLocked finds or appends the named slot (r.mu held).
func (r *Registry) registerLocked(name string, kind instKind) int {
	if i := r.lookupLocked(name); i >= 0 {
		if r.insts[i].kind != kind {
			panic(fmt.Sprintf("telemetry: %q registered as %s and %s",
				name, kindNames[r.insts[i].kind], kindNames[kind]))
		}
		return i
	}
	r.insts = append(r.insts, instrument{name: name, kind: kind})
	r.byName[name] = len(r.insts) - 1
	return len(r.insts) - 1
}

// Counter registers (or retrieves) the named counter. Idempotent: every
// caller asking for the same name shares one instrument, which is how
// per-client and per-edge hooks aggregate fleet-wide. Returns nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.registerLocked(name, kindCounter)
	if r.insts[i].c == nil {
		r.insts[i].c = &Counter{}
	}
	return r.insts[i].c
}

// Gauge registers (or retrieves) the named stored gauge. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.registerLocked(name, kindGauge)
	if r.insts[i].g == nil {
		r.insts[i].g = &Gauge{}
	}
	return r.insts[i].g
}

// GaugeFunc registers a derived gauge evaluated at snapshot time. fn must
// be deterministic and side-effect free on the simulator, and safe to call
// from the producer goroutine in the real binaries; it must not call back
// into the registry. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.registerLocked(name, kindGaugeFunc)
	r.insts[i].fn = fn
}

// PerRegionGaugeFunc registers one derived gauge per region under the
// names "<name>.r0" … "<name>.r<regions-1>", each evaluating fn with its
// region index. This is the shared registration pattern for regional
// instrument families (fleet.online_frac.rN, ctrl.*.rN); fn must be
// deterministic and side-effect free, like any GaugeFunc. No-op on a nil
// registry.
func (r *Registry) PerRegionGaugeFunc(name string, regions int, fn func(region int) float64) {
	if r == nil {
		return
	}
	for i := 0; i < regions; i++ {
		region := i
		r.GaugeFunc(fmt.Sprintf("%s.r%d", name, region), func() float64 { return fn(region) })
	}
}

// OnScrape registers fn to run after every scrape is appended, called with
// the registry and the new snapshot's index. Subscribers run synchronously
// on the producer goroutine in registration order, so a subscriber sees a
// fully consistent timeline (every accessor up to and including index i is
// final) and its own evaluation order is as deterministic as the scrape
// timeline itself. fn must not scrape. No-op on a nil registry.
func (r *Registry) OnScrape(fn func(r *Registry, i int)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs = append(r.subs, fn)
}

// Histogram registers (or retrieves) the named fixed-bucket histogram.
// edges are inclusive upper bounds in ascending order; an overflow bucket
// is added implicitly. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, edges []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.registerLocked(name, kindHist)
	if r.insts[i].h == nil {
		es := make([]float64, len(edges))
		copy(es, edges)
		r.insts[i].h = &Histogram{edges: es, counts: make([]uint64, len(es)+1)}
	}
	return r.insts[i].h
}

// snapshotLocked captures every instrument into a Snap (r.mu held).
// Derived gauges are evaluated here.
func (r *Registry) snapshotLocked(at int64) Snap {
	insts := make([]InstSnap, len(r.insts))
	for i := range r.insts {
		in := &r.insts[i]
		is := &insts[i]
		is.Name = in.name
		is.Kind = canonKind[in.kind]
		switch in.kind {
		case kindCounter:
			is.C = in.c.Value()
		case kindGauge:
			is.F = in.g.Value()
		case kindGaugeFunc:
			is.F = in.fn()
		case kindHist:
			is.C, is.F, is.Buckets = in.h.read()
			is.Edges = in.h.edges
		}
	}
	return Snap{Label: r.Label, Seed: r.Seed, At: at, Insts: insts}
}

// Snapshot captures every instrument at instant at (nanoseconds) without
// touching the scrape timeline: the point-in-time read the HTTP /metrics
// path uses on live registries. Returns the zero Snap on a nil registry.
// Call only from the producer goroutine when GaugeFuncs read state other
// goroutines mutate.
func (r *Registry) Snapshot(at int64) Snap {
	if r == nil {
		return Snap{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked(at)
}

// Scrape snapshots every instrument at time at (nanoseconds) and appends
// the snapshot to the timeline. No-op on a nil registry, and idempotent
// per instant: a second scrape at the same at is dropped so a final
// end-of-run scrape never duplicates a periodic one. Subscribers run after
// the append, outside the registry lock, so they may use any accessor.
func (r *Registry) Scrape(at int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if n := len(r.snaps); n > 0 && r.snaps[n-1].At == at {
		r.mu.Unlock()
		return
	}
	r.snaps = append(r.snaps, r.snapshotLocked(at))
	i := len(r.snaps) - 1
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(r, i)
	}
}

// NumScrapes returns how many snapshots the timeline holds.
func (r *Registry) NumScrapes() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.snaps)
}

// SnapAt returns snapshot i of the timeline (the zero Snap when out of
// range). Snaps are immutable once appended, so the returned value is safe
// to read from any goroutine.
func (r *Registry) SnapAt(i int) Snap {
	if r == nil {
		return Snap{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.snaps) {
		return Snap{}
	}
	return r.snaps[i]
}

// LastSnap returns the most recent scrape snapshot (the zero Snap when the
// timeline is empty). This is what the observability plane renders for a
// simulator registry: the last consistent scrape, never a mid-event read.
func (r *Registry) LastSnap() Snap {
	if r == nil {
		return Snap{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.snaps) == 0 {
		return Snap{}
	}
	return r.snaps[len(r.snaps)-1]
}

// ScrapeAt returns the simulation time (ns) of snapshot i.
func (r *Registry) ScrapeAt(i int) int64 {
	return r.SnapAt(i).At
}

// CounterAt returns the named counter's cumulative value at snapshot i
// (0 when the instrument or snapshot does not exist).
func (r *Registry) CounterAt(i int, name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.snaps) {
		return 0
	}
	idx := r.lookupLocked(name)
	if idx < 0 || idx >= len(r.snaps[i].Insts) {
		return 0
	}
	return r.snaps[i].Insts[idx].C
}

// GaugeAt returns the named gauge's value at snapshot i.
func (r *Registry) GaugeAt(i int, name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.snaps) {
		return 0
	}
	idx := r.lookupLocked(name)
	if idx < 0 || idx >= len(r.snaps[i].Insts) {
		return 0
	}
	return r.snaps[i].Insts[idx].F
}

// HistAt returns the named histogram's cumulative snapshot at scrape i
// (the zero HistSnap when absent).
func (r *Registry) HistAt(i int, name string) HistSnap {
	if r == nil {
		return HistSnap{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.snaps) {
		return HistSnap{}
	}
	idx := r.lookupLocked(name)
	if idx < 0 || idx >= len(r.snaps[i].Insts) || r.snaps[i].Insts[idx].Kind != KindHist {
		return HistSnap{}
	}
	v := &r.snaps[i].Insts[idx]
	return HistSnap{Edges: v.Edges, Buckets: v.Buckets, N: v.C, Sum: v.F}
}

// fmtF encodes a float in its shortest exact round-trip form — the only
// non-integer JSONL fields, byte-stable because every producer computes
// the value by an identical operation sequence.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteInstJSONL encodes one instrument of one snapshot as a single JSONL
// line — the shared per-instrument encoder behind both the timeline JSONL
// files and the /snapshot HTTP document. Field order is fixed and floats
// use shortest-exact encoding.
func WriteInstJSONL(w io.Writer, at int64, in *InstSnap) error {
	switch in.Kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "{\"at\":%d,\"name\":%q,\"type\":\"counter\",\"v\":%d}\n",
			at, in.Name, in.C)
		return err
	case KindHist:
		if _, err := fmt.Fprintf(w, "{\"at\":%d,\"name\":%q,\"type\":\"hist\",\"n\":%d,\"sum\":%s,\"buckets\":[",
			at, in.Name, in.C, fmtF(in.F)); err != nil {
			return err
		}
		for bi, b := range in.Buckets {
			sep := ","
			if bi == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(w, "%s%d", sep, b); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "]}\n")
		return err
	default:
		_, err := fmt.Fprintf(w, "{\"at\":%d,\"name\":%q,\"type\":\"gauge\",\"v\":%s}\n",
			at, in.Name, fmtF(in.F))
		return err
	}
}

// WriteJSONL encodes the timeline as one header line followed by one line
// per (scrape, instrument) pair in registration order. Field order is
// fixed and floats use shortest-exact encoding, so the output of a run is
// byte-reproducible across repeats and serial vs parallel execution.
func (r *Registry) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	snaps := r.snaps
	numInsts := len(r.insts)
	r.mu.Unlock()
	if _, err := fmt.Fprintf(w, "{\"run\":%q,\"seed\":%d,\"scrapes\":%d,\"instruments\":%d}\n",
		r.Label, r.Seed, len(snaps), numInsts); err != nil {
		return err
	}
	for si := range snaps {
		s := &snaps[si]
		for i := range s.Insts {
			if err := WriteInstJSONL(w, s.At, &s.Insts[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

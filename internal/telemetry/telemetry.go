// Package telemetry is the deterministic time-series observability layer:
// a per-run registry of typed instruments — monotone counters, gauges
// (stored or derived), and fixed-bucket histograms — plus a sim-time
// scraper that snapshots every instrument into a timeline.
//
// Design (mirrors internal/trace):
//
//   - A nil *Registry is the disabled collector. Instrument constructors
//     on a nil registry return nil instruments, and every record method
//     (Counter.Add, Gauge.Set, Histogram.Observe) is a single inlined nil
//     check on a nil receiver — the zero-config path costs nothing and
//     allocates nothing.
//   - Each simulated System owns one Registry and the simulator is
//     single-threaded, so instrument registration order, scrape times,
//     and every recorded value are pure functions of the seed. Encoded
//     timelines are byte-identical across repeated runs and across
//     serial vs parallel experiment execution.
//   - Counters are unsigned integers, histograms hold integer bucket
//     counts, and the only floats (gauge values, histogram sums) are
//     reproduced bit-exactly by identical operation order, then encoded
//     with strconv.FormatFloat(v, 'g', -1, 64) — the shortest exact
//     round-trip form — so the JSONL encoding is byte-reproducible.
//   - Scrape snapshots are cumulative; consumers difference adjacent
//     snapshots (HistSnap.Sub, counter deltas) to build per-interval
//     views, keeping all reconciliation arithmetic in the integer domain.
package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// Counter is a monotone event counter. A nil *Counter is the disabled
// instrument: Add/Inc on it are a single branch with no allocation.
type Counter struct{ v uint64 }

// Add increments the counter by n. Safe (and free) on a nil receiver:
// the wrapper stays under the inlining budget, so with telemetry disabled
// every hook site compiles to one inlined nil check.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.add(n)
}

func (c *Counter) add(n uint64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil instrument).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct{ v float64 }

// Set stores the gauge value. Safe (and free) on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.set(v)
}

func (g *Gauge) set(v float64) { g.v = v }

// Value returns the current gauge value (0 for the nil instrument).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram: observation v lands in the first
// bucket whose upper edge satisfies v <= edge, or the overflow bucket.
// Bucket counts are integers, so merged and differenced snapshots are
// exact; the running sum is the only float and is reproduced bit-exactly
// by identical observation order.
type Histogram struct {
	edges  []float64
	counts []uint64 // len(edges)+1; last is overflow
	sum    float64
	n      uint64
}

// Observe records one observation. Safe (and free) on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v float64) {
	h.n++
	h.sum += v
	for i, e := range h.edges {
		if v <= e {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.edges)]++
}

// N returns the total observation count (0 for the nil instrument).
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Snap copies the histogram's current state into a HistSnap.
func (h *Histogram) Snap() HistSnap {
	if h == nil {
		return HistSnap{}
	}
	buckets := make([]uint64, len(h.counts))
	copy(buckets, h.counts)
	return HistSnap{Edges: h.edges, Buckets: buckets, N: h.n, Sum: h.sum}
}

// HistSnap is an immutable histogram snapshot supporting the deterministic
// merge algebra consumers need: Sub yields the per-interval delta between
// two cumulative scrapes, Add merges snapshots across runs, and Quantile
// reads an upper-edge quantile bound off the bucket counts.
type HistSnap struct {
	Edges   []float64
	Buckets []uint64
	N       uint64
	Sum     float64
}

// Sub returns s minus prev (element-wise). Both snapshots must come from
// the same instrument; prev may be the zero HistSnap.
func (s HistSnap) Sub(prev HistSnap) HistSnap {
	out := HistSnap{Edges: s.Edges, N: s.N - prev.N, Sum: s.Sum - prev.Sum}
	out.Buckets = make([]uint64, len(s.Buckets))
	copy(out.Buckets, s.Buckets)
	for i := range prev.Buckets {
		if i < len(out.Buckets) {
			out.Buckets[i] -= prev.Buckets[i]
		}
	}
	return out
}

// Add returns the merge of two snapshots with identical bucket layouts.
func (s HistSnap) Add(o HistSnap) HistSnap {
	out := HistSnap{Edges: s.Edges, N: s.N + o.N, Sum: s.Sum + o.Sum}
	out.Buckets = make([]uint64, len(s.Buckets))
	copy(out.Buckets, s.Buckets)
	for i := range o.Buckets {
		if i < len(out.Buckets) {
			out.Buckets[i] += o.Buckets[i]
		}
	}
	return out
}

// Mean returns Sum/N, or 0 for an empty snapshot.
func (s HistSnap) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Quantile returns the upper edge of the bucket containing the q-quantile
// observation (the tightest deterministic upper bound the fixed buckets
// admit). The overflow bucket reports the last finite edge. Returns 0 for
// an empty snapshot.
func (s HistSnap) Quantile(q float64) float64 {
	if s.N == 0 || len(s.Edges) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.N))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			if i < len(s.Edges) {
				return s.Edges[i]
			}
			return s.Edges[len(s.Edges)-1]
		}
	}
	return s.Edges[len(s.Edges)-1]
}

// instKind tags the registry's instrument slots.
type instKind uint8

const (
	kindCounter instKind = iota
	kindGauge
	kindGaugeFunc
	kindHist
)

var kindNames = [...]string{"counter", "gauge", "gauge", "hist"}

// instrument is one registered slot: name, kind, and exactly one live arm.
type instrument struct {
	name string
	kind instKind
	c    *Counter
	g    *Gauge
	fn   func() float64
	h    *Histogram
}

// value is one instrument's state captured at a scrape.
type value struct {
	c       uint64
	f       float64
	buckets []uint64 // histograms only
}

// snapshot is the registry state at one scrape instant. vals is index-
// aligned with the registry's instruments at scrape time; instruments
// registered later simply have no value in earlier snapshots.
type snapshot struct {
	at   int64
	vals []value
}

// Registry is the per-run instrument registry and scrape timeline: the
// unit the CLI encodes to JSONL. A nil *Registry is the disabled
// collector — all methods are safe no-ops returning nil instruments.
type Registry struct {
	// Label names the run in the JSONL header (experiment/arm).
	Label string
	// Seed is the RNG seed the run used.
	Seed uint64

	insts  []instrument
	byName map[string]int
	snaps  []snapshot
	subs   []func(r *Registry, i int)
}

// NewRegistry returns an empty registry for one run.
func NewRegistry(label string, seed uint64) *Registry {
	return &Registry{Label: label, Seed: seed, byName: make(map[string]int)}
}

// Enabled reports whether the registry records (false when nil).
func (r *Registry) Enabled() bool { return r != nil }

// lookup returns the instrument index for name, or -1.
func (r *Registry) lookup(name string) int {
	if i, ok := r.byName[name]; ok {
		return i
	}
	return -1
}

func (r *Registry) register(name string, kind instKind) int {
	if i := r.lookup(name); i >= 0 {
		if r.insts[i].kind != kind {
			panic(fmt.Sprintf("telemetry: %q registered as %s and %s",
				name, kindNames[r.insts[i].kind], kindNames[kind]))
		}
		return i
	}
	r.insts = append(r.insts, instrument{name: name, kind: kind})
	r.byName[name] = len(r.insts) - 1
	return len(r.insts) - 1
}

// Counter registers (or retrieves) the named counter. Idempotent: every
// caller asking for the same name shares one instrument, which is how
// per-client and per-edge hooks aggregate fleet-wide. Returns nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	i := r.register(name, kindCounter)
	if r.insts[i].c == nil {
		r.insts[i].c = &Counter{}
	}
	return r.insts[i].c
}

// Gauge registers (or retrieves) the named stored gauge. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	i := r.register(name, kindGauge)
	if r.insts[i].g == nil {
		r.insts[i].g = &Gauge{}
	}
	return r.insts[i].g
}

// GaugeFunc registers a derived gauge evaluated at scrape time. fn must be
// deterministic and side-effect free (it runs on the simulator thread).
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	i := r.register(name, kindGaugeFunc)
	r.insts[i].fn = fn
}

// PerRegionGaugeFunc registers one derived gauge per region under the
// names "<name>.r0" … "<name>.r<regions-1>", each evaluating fn with its
// region index. This is the shared registration pattern for regional
// instrument families (fleet.online_frac.rN, ctrl.*.rN); fn must be
// deterministic and side-effect free, like any GaugeFunc. No-op on a nil
// registry.
func (r *Registry) PerRegionGaugeFunc(name string, regions int, fn func(region int) float64) {
	if r == nil {
		return
	}
	for i := 0; i < regions; i++ {
		region := i
		r.GaugeFunc(fmt.Sprintf("%s.r%d", name, region), func() float64 { return fn(region) })
	}
}

// OnScrape registers fn to run after every scrape is appended, called with
// the registry and the new snapshot's index. Subscribers run synchronously
// on the simulator thread in registration order, so a subscriber sees a
// fully consistent timeline (every accessor up to and including index i is
// final) and its own evaluation order is as deterministic as the scrape
// timeline itself. fn must not scrape. No-op on a nil registry.
func (r *Registry) OnScrape(fn func(r *Registry, i int)) {
	if r == nil {
		return
	}
	r.subs = append(r.subs, fn)
}

// Histogram registers (or retrieves) the named fixed-bucket histogram.
// edges are inclusive upper bounds in ascending order; an overflow bucket
// is added implicitly. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, edges []float64) *Histogram {
	if r == nil {
		return nil
	}
	i := r.register(name, kindHist)
	if r.insts[i].h == nil {
		es := make([]float64, len(edges))
		copy(es, edges)
		r.insts[i].h = &Histogram{edges: es, counts: make([]uint64, len(es)+1)}
	}
	return r.insts[i].h
}

// Scrape snapshots every instrument at simulation time at (nanoseconds).
// Derived gauges are evaluated here. No-op on a nil registry, and
// idempotent per instant: a second scrape at the same at is dropped so a
// final end-of-run scrape never duplicates a periodic one.
func (r *Registry) Scrape(at int64) {
	if r == nil {
		return
	}
	if n := len(r.snaps); n > 0 && r.snaps[n-1].at == at {
		return
	}
	vals := make([]value, len(r.insts))
	for i := range r.insts {
		in := &r.insts[i]
		switch in.kind {
		case kindCounter:
			vals[i].c = in.c.v
		case kindGauge:
			vals[i].f = in.g.v
		case kindGaugeFunc:
			vals[i].f = in.fn()
		case kindHist:
			vals[i].c = in.h.n
			vals[i].f = in.h.sum
			vals[i].buckets = make([]uint64, len(in.h.counts))
			copy(vals[i].buckets, in.h.counts)
		}
	}
	r.snaps = append(r.snaps, snapshot{at: at, vals: vals})
	for _, fn := range r.subs {
		fn(r, len(r.snaps)-1)
	}
}

// NumScrapes returns how many snapshots the timeline holds.
func (r *Registry) NumScrapes() int {
	if r == nil {
		return 0
	}
	return len(r.snaps)
}

// ScrapeAt returns the simulation time (ns) of snapshot i.
func (r *Registry) ScrapeAt(i int) int64 {
	if r == nil || i < 0 || i >= len(r.snaps) {
		return 0
	}
	return r.snaps[i].at
}

// CounterAt returns the named counter's cumulative value at snapshot i
// (0 when the instrument or snapshot does not exist).
func (r *Registry) CounterAt(i int, name string) uint64 {
	if r == nil || i < 0 || i >= len(r.snaps) {
		return 0
	}
	idx := r.lookup(name)
	if idx < 0 || idx >= len(r.snaps[i].vals) {
		return 0
	}
	return r.snaps[i].vals[idx].c
}

// GaugeAt returns the named gauge's value at snapshot i.
func (r *Registry) GaugeAt(i int, name string) float64 {
	if r == nil || i < 0 || i >= len(r.snaps) {
		return 0
	}
	idx := r.lookup(name)
	if idx < 0 || idx >= len(r.snaps[i].vals) {
		return 0
	}
	return r.snaps[i].vals[idx].f
}

// HistAt returns the named histogram's cumulative snapshot at scrape i
// (the zero HistSnap when absent).
func (r *Registry) HistAt(i int, name string) HistSnap {
	if r == nil || i < 0 || i >= len(r.snaps) {
		return HistSnap{}
	}
	idx := r.lookup(name)
	if idx < 0 || idx >= len(r.snaps[i].vals) || r.insts[idx].kind != kindHist {
		return HistSnap{}
	}
	v := r.snaps[i].vals[idx]
	return HistSnap{Edges: r.insts[idx].h.edges, Buckets: v.buckets, N: v.c, Sum: v.f}
}

// fmtF encodes a float in its shortest exact round-trip form — the only
// non-integer JSONL fields, byte-stable because every producer computes
// the value by an identical operation sequence.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteJSONL encodes the timeline as one header line followed by one line
// per (scrape, instrument) pair in registration order. Field order is
// fixed and floats use shortest-exact encoding, so the output of a run is
// byte-reproducible across repeats and serial vs parallel execution.
func (r *Registry) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "{\"run\":%q,\"seed\":%d,\"scrapes\":%d,\"instruments\":%d}\n",
		r.Label, r.Seed, len(r.snaps), len(r.insts)); err != nil {
		return err
	}
	for si := range r.snaps {
		s := &r.snaps[si]
		for i := range s.vals {
			in := &r.insts[i]
			var err error
			switch in.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "{\"at\":%d,\"name\":%q,\"type\":\"counter\",\"v\":%d}\n",
					s.at, in.name, s.vals[i].c)
			case kindGauge, kindGaugeFunc:
				_, err = fmt.Fprintf(w, "{\"at\":%d,\"name\":%q,\"type\":\"gauge\",\"v\":%s}\n",
					s.at, in.name, fmtF(s.vals[i].f))
			case kindHist:
				if _, err = fmt.Fprintf(w, "{\"at\":%d,\"name\":%q,\"type\":\"hist\",\"n\":%d,\"sum\":%s,\"buckets\":[",
					s.at, in.name, s.vals[i].c, fmtF(s.vals[i].f)); err != nil {
					return err
				}
				for bi, b := range s.vals[i].buckets {
					sep := ","
					if bi == 0 {
						sep = ""
					}
					if _, err = fmt.Fprintf(w, "%s%d", sep, b); err != nil {
						return err
					}
				}
				_, err = fmt.Fprintf(w, "]}\n")
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

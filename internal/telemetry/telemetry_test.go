package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1, 2})
	r.GaugeFunc("w", func() float64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live instruments")
	}
	// All record paths must be safe no-ops on nil instruments.
	c.Add(3)
	c.Inc()
	g.Set(1.5)
	h.Observe(0.5)
	r.Scrape(100)
	if c.Value() != 0 || g.Value() != 0 || h.N() != 0 || r.NumScrapes() != 0 {
		t.Fatal("nil instruments recorded state")
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote output: err=%v len=%d", err, buf.Len())
	}
}

func TestDisabledHooksAllocateNothing(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(3)
	})
	if allocs != 0 {
		t.Fatalf("disabled hooks allocated %.1f per run", allocs)
	}
}

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry("t", 1)
	c := r.Counter("c")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("g")
	g.Set(4.5)
	if g.Value() != 4.5 {
		t.Fatalf("gauge = %v, want 4.5", g.Value())
	}
	h := r.Histogram("h", []float64{10, 20, 30})
	for _, v := range []float64{5, 10, 15, 25, 99} {
		h.Observe(v)
	}
	s := h.Snap()
	want := []uint64{2, 1, 1, 1} // <=10: {5,10}; <=20: {15}; <=30: {25}; overflow: {99}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, b, want[i], s.Buckets)
		}
	}
	if s.N != 5 || s.Sum != 154 {
		t.Fatalf("snap n=%d sum=%v, want 5/154", s.N, s.Sum)
	}
}

func TestInstrumentIdempotentByName(t *testing.T) {
	r := NewRegistry("t", 1)
	a := r.Counter("shared")
	b := r.Counter("shared")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("shared counter = %d, want 2", a.Value())
	}
	h1 := r.Histogram("hist", []float64{1, 2})
	h2 := r.Histogram("hist", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("shared")
}

func TestScrapeTimelineAndAccessors(t *testing.T) {
	r := NewRegistry("t", 1)
	c := r.Counter("c")
	h := r.Histogram("h", []float64{10, 20})
	r.GaugeFunc("derived", func() float64 { return float64(c.Value()) * 2 })

	c.Add(5)
	h.Observe(5)
	r.Scrape(1e9)
	c.Add(7)
	h.Observe(15)
	h.Observe(25)
	r.Scrape(2e9)
	r.Scrape(2e9) // same-instant scrape must be dropped

	if r.NumScrapes() != 2 {
		t.Fatalf("scrapes = %d, want 2", r.NumScrapes())
	}
	if r.ScrapeAt(0) != 1e9 || r.ScrapeAt(1) != 2e9 {
		t.Fatalf("scrape times %d/%d", r.ScrapeAt(0), r.ScrapeAt(1))
	}
	if got := r.CounterAt(0, "c"); got != 5 {
		t.Fatalf("counter at scrape 0 = %d, want 5", got)
	}
	if got := r.CounterAt(1, "c"); got != 12 {
		t.Fatalf("counter at scrape 1 = %d, want 12", got)
	}
	if got := r.GaugeAt(1, "derived"); got != 24 {
		t.Fatalf("derived gauge = %v, want 24", got)
	}
	// Cumulative scrapes difference into exact per-interval deltas.
	d := r.HistAt(1, "h").Sub(r.HistAt(0, "h"))
	if d.N != 2 || d.Buckets[0] != 0 || d.Buckets[1] != 1 || d.Buckets[2] != 1 {
		t.Fatalf("hist delta = %+v", d)
	}
	// Unknown names and out-of-range snapshots read as zero.
	if r.CounterAt(0, "nope") != 0 || r.GaugeAt(9, "derived") != 0 || r.HistAt(0, "c").N != 0 {
		t.Fatal("missing lookups not zero")
	}
}

func TestHistSnapQuantile(t *testing.T) {
	h := NewRegistry("t", 1).Histogram("h", []float64{10, 20, 30})
	for i := 0; i < 50; i++ {
		h.Observe(5) // bucket <=10
	}
	for i := 0; i < 40; i++ {
		h.Observe(15) // bucket <=20
	}
	for i := 0; i < 10; i++ {
		h.Observe(99) // overflow
	}
	s := h.Snap()
	if q := s.Quantile(0.5); q != 10 {
		t.Fatalf("P50 = %v, want 10", q)
	}
	if q := s.Quantile(0.9); q != 20 {
		t.Fatalf("P90 = %v, want 20", q)
	}
	if q := s.Quantile(0.99); q != 30 {
		t.Fatalf("P99 = %v, want 30 (overflow reports last edge)", q)
	}
	if q := (HistSnap{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

// TestOnScrapeOrderAndContents: subscribers fire once per appended scrape,
// in registration order, after the snapshot is final — and two registries
// fed the identical (same-seed) operation sequence deliver byte-identical
// observation logs to their subscribers.
func TestOnScrapeOrderAndContents(t *testing.T) {
	run := func() []string {
		var log []string
		r := NewRegistry("run", 7)
		c := r.Counter("c")
		h := r.Histogram("h", []float64{10, 100})
		r.OnScrape(func(r *Registry, i int) {
			log = append(log, fmt.Sprintf("first i=%d at=%d c=%d hn=%d",
				i, r.ScrapeAt(i), r.CounterAt(i, "c"), r.HistAt(i, "h").N))
		})
		r.OnScrape(func(r *Registry, i int) {
			log = append(log, fmt.Sprintf("second i=%d", i))
		})
		for i := 0; i < 30; i++ {
			c.Add(uint64(i % 4))
			h.Observe(float64(i * 7 % 130))
			if i%10 == 0 {
				r.Scrape(int64(i+1) * 1e9)
			}
		}
		r.Scrape(31e9)
		r.Scrape(31e9) // deduped same-instant scrape must not re-notify
		return log
	}
	a, b := run(), run()
	if len(a) != 8 { // 4 scrapes x 2 subscribers
		t.Fatalf("got %d subscriber calls, want 8: %q", len(a), a)
	}
	for i := 0; i < len(a); i += 2 {
		if !strings.HasPrefix(a[i], "first ") || !strings.HasPrefix(a[i+1], "second ") {
			t.Fatalf("subscribers ran out of registration order: %q", a[i:i+2])
		}
	}
	if !strings.Contains(a[6], "i=3 at=31000000000") {
		t.Fatalf("last scrape observation wrong: %q", a[6])
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("repeated same-seed runs diverged at call %d: %q vs %q", i, a[i], b[i])
		}
	}
	// Nil registry: registering is a safe no-op.
	var nilReg *Registry
	nilReg.OnScrape(func(*Registry, int) { t.Fatal("subscriber on nil registry fired") })
	nilReg.Scrape(1)
}

// TestWriteJSONLDeterministic: two registries fed the identical operation
// sequence encode byte-identically — the property the CI determinism gate
// enforces end-to-end.
func TestWriteJSONLDeterministic(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry("run", 7)
		c := r.Counter("c")
		g := r.Gauge("g")
		h := r.Histogram("h", []float64{1, 10, 100})
		r.GaugeFunc("fn", func() float64 { return g.Value() / 3 })
		for i := 0; i < 100; i++ {
			c.Add(uint64(i % 3))
			g.Set(float64(i) * 0.1)
			h.Observe(float64(i%7) * 2.5)
			if i%25 == 0 {
				r.Scrape(int64(i) * 1e8)
			}
		}
		r.Scrape(100e8)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := mk().WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.Len() == 0 {
		t.Fatal("no output")
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical operation sequences encoded differently")
	}
}

package chain

import (
	"testing"

	"repro/internal/media"
)

func TestAppendSelfExtendsChain(t *testing.T) {
	hs := mkHeaders(6)
	gen := NewLocalGenerator(4)
	g := NewGlobal(0)
	// Seed via a real local chain for the first three frames.
	for i := 0; i < 3; i++ {
		gen.Observe(hs[i], 3)
		g.AddHeader(hs[i])
		g.TryMatch(gen.Chain())
	}
	// Extend with self-computed footprints: the chain must stay fully
	// linked and consistent with what an edge would have produced.
	for i := 3; i < 6; i++ {
		if !g.AppendSelf(hs[i], 3) {
			t.Fatalf("AppendSelf failed at %d", i)
		}
	}
	if got := len(g.NextLinked()); got != 6 {
		t.Fatalf("linked = %d, want 6 (%s)", got, g)
	}
	// The self-appended footprints must EQUAL the generator's: a later
	// real chain covering the same frames must merge, not conflict.
	for i := 3; i < 6; i++ {
		gen.Observe(hs[i], 3)
	}
	if !g.TryMatch(gen.Chain()) {
		t.Fatal("edge chain no longer matches after self-appends")
	}
	if g.CRCFailures != 0 {
		t.Fatalf("self-append diverged from edge footprints: %s", g)
	}
}

func TestAppendSelfRejectsEmptyChain(t *testing.T) {
	g := NewGlobal(0)
	hs := mkHeaders(1)
	if g.AppendSelf(hs[0], 3) {
		t.Fatal("AppendSelf on empty chain must fail (seed via TryMatch)")
	}
}

func TestAppendSelfRejectsNonAdvancingDts(t *testing.T) {
	hs := mkHeaders(3)
	gen := NewLocalGenerator(4)
	g := NewGlobal(0)
	for _, h := range hs {
		gen.Observe(h, 3)
		g.AddHeader(h)
		g.TryMatch(gen.Chain())
	}
	if g.AppendSelf(hs[1], 3) {
		t.Fatal("AppendSelf must reject dts <= terminal")
	}
}

func TestAppendSelfNeedsTailHeader(t *testing.T) {
	// Seed a chain whose terminal header is NOT in the pool: AppendSelf
	// cannot compute a consistent footprint and must refuse.
	hs := mkHeaders(4)
	fps := footprints(hs)
	g := NewGlobal(0)
	g.TryMatch(fps[:3]) // seed; no headers added
	if g.AppendSelf(hs[3], 3) {
		t.Fatal("AppendSelf without tail header must fail")
	}
}

func TestFirst(t *testing.T) {
	g := NewGlobal(0)
	if _, ok := g.First(); ok {
		t.Fatal("empty chain has no first entry")
	}
	hs := mkHeaders(3)
	gen := NewLocalGenerator(4)
	for _, h := range hs {
		gen.Observe(h, 3)
		g.AddHeader(h)
		g.TryMatch(gen.Chain())
	}
	first, ok := g.First()
	if !ok || first.Dts != hs[0].Dts {
		t.Fatalf("first = %v %v", first, ok)
	}
}

// The chain head (first two entries) is validated by header presence only —
// their CRCs fold in context the receiver cannot reconstruct. Entries from
// index 2 on must still be CRC-validated.
func TestChainHeadValidationRelaxed(t *testing.T) {
	hs := mkHeaders(5)
	// A chain computed by a generator that started mid-stream (zero
	// predecessors for its first entries).
	gen := NewLocalGenerator(4)
	var fps []Footprint
	for _, h := range hs[2:] { // starts at frame 2
		fps = append(fps, gen.Observe(h, 3))
	}
	g := NewGlobal(0)
	for _, h := range hs {
		g.AddHeader(h)
	}
	if !g.TryMatch(fps) {
		t.Fatal("seed failed")
	}
	if got := len(g.NextLinked()); got != 3 {
		t.Fatalf("linked = %d, want 3 (%s)", got, g)
	}
	// A forged entry appended beyond the head must still be caught.
	term, _ := g.Terminal()
	g.TryMatch([]Footprint{term, {Dts: term.Dts + 33, CRC: 0xBAD, CNT: 3}})
	g.AddHeader(media.Header{Stream: 1, Dts: term.Dts + 33, Size: 1})
	if g.CRCFailures == 0 {
		t.Fatalf("forged non-head entry not caught: %s", g)
	}
}

package chain

import (
	"fmt"

	"repro/internal/media"
	"repro/internal/trace"
)

// LinkStatus marks whether a global-chain entry has been CRC-validated
// against received frame headers.
type LinkStatus uint8

const (
	// Unlinked entries were appended from a local chain but not yet
	// validated: the frame's actual header (and its two predecessors)
	// haven't all been seen, or validation hasn't run since they arrived.
	Unlinked LinkStatus = iota
	// Linked entries passed CRC validation; their order is authoritative.
	Linked
)

// Entry is one element of the client's global frame chain.
type Entry struct {
	FP     Footprint
	Status LinkStatus
}

// Global is the client-maintained global frame chain for a single stream.
// Local chains arriving from different substream publishers are merged into
// it (Algorithm 1), producing a single in-order frame sequence the player
// buffer consumes. Chains that cannot attach yet (their oldest footprint is
// beyond the current chain tail — a gap) park in a mismatch pool and are
// retried after each successful merge.
type Global struct {
	entries []Entry
	// headers holds received frame headers keyed by dts — the "dataPool"
	// of Algorithm 1. CRC validation needs the header of the frame and of
	// its two predecessors in chain order.
	headers map[uint64]media.Header
	// mismatched parks local chains awaiting earlier frames; keyed by the
	// dts of their first footprint to bound duplicates. mmOrder mirrors the
	// map in insertion order: retries merge chains in that order, because
	// merge order decides how the chain extends and map iteration would make
	// whole simulation runs irreproducible.
	mismatched map[uint64][]Footprint
	mmOrder    []uint64
	// consumedDts tracks the newest dts handed to the player; merges that
	// would resurrect older frames are ignored.
	consumed    uint64
	hasConsumed bool
	// maxLen bounds memory: validated prefixes are compacted once
	// consumed. Entries never exceeds maxLen after Compact.
	maxLen int

	// Stats for the evaluation harness.
	Merges        uint64 // successful TryMatch calls
	Rejects       uint64 // TryMatch returned false (no continuity)
	CRCFailures   uint64 // validation failures that rolled back unlinked entries
	ParkedRetries uint64 // mismatched chains that later merged

	// tr records sequencing lifecycle events; nil disables tracing.
	tr *trace.Buf
	// inRetry marks merges replayed from the parked pool so their trace
	// events carry the parked-retry flag.
	inRetry bool

	// Allocation-free steady state: linkedScratch backs NextLinked,
	// crcBuf backs CRC validation, chainPool recycles parked-chain
	// copies, and u64Pool recycles the mmOrder iteration snapshots
	// retryParked takes (a pool rather than one buffer because
	// TryMatch -> retryParked recurses).
	linkedScratch []Footprint
	crcBuf        crcScratch
	chainPool     [][]Footprint
	u64Pool       [][]uint64
}

// SetTrace attaches (or detaches, with nil) a frame-lifecycle trace buffer.
func (g *Global) SetTrace(b *trace.Buf) { g.tr = b }

// traceMerge records one successful merge: dts is the first footprint that
// entered the chain, n how many came with it.
func (g *Global) traceMerge(dts uint64, n int) {
	if g.tr == nil {
		return
	}
	var retried uint64
	if g.inRetry {
		retried = 1
	}
	g.tr.Rec(trace.KChainMerge, 0, dts, uint64(n), retried)
}

// NewGlobal returns an empty global chain. maxLen bounds retained entries
// (<=0 means a generous default).
func NewGlobal(maxLen int) *Global {
	if maxLen <= 0 {
		maxLen = 4096
	}
	return &Global{
		headers:    make(map[uint64]media.Header),
		mismatched: make(map[uint64][]Footprint),
		maxLen:     maxLen,
	}
}

// Len returns the number of entries currently in the chain.
func (g *Global) Len() int { return len(g.entries) }

// Entries returns a copy of the current chain entries (oldest first).
func (g *Global) Entries() []Entry {
	out := make([]Entry, len(g.entries))
	copy(out, g.entries)
	return out
}

// AppendEntries appends the current chain entries (oldest first) to dst and
// returns the extended slice — the allocation-free variant of Entries for
// callers that own a reusable buffer.
func (g *Global) AppendEntries(dst []Entry) []Entry {
	return append(dst, g.entries...)
}

// AddHeader records a received frame header into the data pool, then
// revalidates any unlinked suffix (arrival of a missing header can unlock
// validation of entries appended earlier).
func (g *Global) AddHeader(h media.Header) {
	g.headers[h.Dts] = h
	g.validateSuffix()
}

// HasHeader reports whether the header for dts is in the data pool.
func (g *Global) HasHeader(dts uint64) bool {
	_, ok := g.headers[dts]
	return ok
}

// lastLinkedIndex returns the index of the newest Linked entry, or -1.
func (g *Global) lastLinkedIndex() int {
	for i := len(g.entries) - 1; i >= 0; i-- {
		if g.entries[i].Status == Linked {
			return i
		}
	}
	return -1
}

// TryMatch attempts to merge one local chain (oldest footprint first, as
// produced by LocalGenerator.Chain) into the global chain, implementing
// Algorithm 1:
//
//  1. Seed: an empty global chain adopts the local chain wholesale.
//  2. Continuity: the local chain must contain the terminal frame of the
//     global chain (by footprint equality); footprints after that point are
//     appended with Unlinked status. A local chain entirely in the past is a
//     no-op success; one that starts beyond the tail fails and is parked.
//  3. Validation: each unlinked entry whose header (and two predecessors)
//     are present in the data pool gets its CRC recomputed; a match flips it
//     to Linked, a mismatch evicts the whole unlinked suffix.
//
// It returns true when the chain merged (or was already contained).
func (g *Global) TryMatch(lchain []Footprint) bool {
	lchain = trimZero(lchain)
	if len(lchain) == 0 {
		return false
	}
	if len(g.entries) == 0 {
		// Seed the chain. First footprint becomes the anchor; it is
		// validated lazily like any other entry.
		for _, fp := range lchain {
			g.entries = append(g.entries, Entry{FP: fp, Status: Unlinked})
		}
		g.Merges++
		g.traceMerge(lchain[0].Dts, len(lchain))
		g.validateSuffix()
		g.retryParked()
		return true
	}

	terminal := g.entries[len(g.entries)-1].FP
	// Look for the global terminal inside the local chain.
	idx := -1
	for i, fp := range lchain {
		if fp == terminal {
			idx = i
			break
		}
	}
	if idx == -1 {
		// Either the local chain is entirely older than our tail
		// (contained: every footprint already present) or there is a
		// gap. Contained chains are a trivial success.
		if g.contains(lchain) {
			return true
		}
		g.Rejects++
		g.tr.Rec(trace.KChainPark, 0, lchain[0].Dts, uint64(len(lchain)), 0)
		g.park(lchain)
		return false
	}
	appended := 0
	for _, fp := range lchain[idx+1:] {
		g.entries = append(g.entries, Entry{FP: fp, Status: Unlinked})
		appended++
	}
	if appended > 0 {
		g.Merges++
		g.traceMerge(lchain[idx+1].Dts, appended)
	}
	g.validateSuffix()
	g.retryParked()
	return true
}

// contains reports whether every footprint of lchain appears in order as a
// contiguous run inside the global chain.
func (g *Global) contains(lchain []Footprint) bool {
	if len(lchain) == 0 {
		return true
	}
	for i := range g.entries {
		if g.entries[i].FP == lchain[0] {
			if i+len(lchain) > len(g.entries) {
				return false
			}
			for j, fp := range lchain {
				if g.entries[i+j].FP != fp {
					return false
				}
			}
			return true
		}
	}
	return false
}

// park stores a non-attaching chain for retry after future merges, bounded
// to avoid unbounded growth under garbage input.
func (g *Global) park(lchain []Footprint) {
	if len(g.mismatched) > 256 {
		// Drop the oldest-parked entry; the publisher resends chains with
		// every packet so losing one is harmless.
		g.unpark(g.mmOrder[0])
	}
	if old, dup := g.mismatched[lchain[0].Dts]; !dup {
		g.mmOrder = append(g.mmOrder, lchain[0].Dts)
	} else {
		g.putChainBuf(old)
	}
	cp := g.getChainBuf(len(lchain))
	copy(cp, lchain)
	g.mismatched[lchain[0].Dts] = cp
}

// getChainBuf returns an n-footprint buffer, recycling parked-chain copies
// released by unpark when one is large enough.
func (g *Global) getChainBuf(n int) []Footprint {
	if k := len(g.chainPool); k > 0 {
		buf := g.chainPool[k-1]
		g.chainPool = g.chainPool[:k-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]Footprint, n)
}

func (g *Global) putChainBuf(b []Footprint) {
	if cap(b) == 0 {
		return
	}
	g.chainPool = append(g.chainPool, b[:0])
}

// unpark removes one parked chain from the pool and its order mirror,
// recycling the copied chain. Callers that still read the chain afterwards
// (retryParked) are safe: TryMatch finishes every read of its input before
// any nested park can reuse the buffer.
func (g *Global) unpark(k uint64) {
	if buf, ok := g.mismatched[k]; ok {
		g.putChainBuf(buf)
	}
	delete(g.mismatched, k)
	for i, d := range g.mmOrder {
		if d == k {
			g.mmOrder = append(g.mmOrder[:i], g.mmOrder[i+1:]...)
			break
		}
	}
}

// retryOrder snapshots mmOrder into a pooled buffer: retries iterate the
// snapshot because merges mutate mmOrder mid-loop.
func (g *Global) retryOrder() []uint64 {
	var buf []uint64
	if k := len(g.u64Pool); k > 0 {
		buf = g.u64Pool[k-1]
		g.u64Pool = g.u64Pool[:k-1]
	}
	return append(buf, g.mmOrder...)
}

func (g *Global) putRetryOrder(b []uint64) {
	g.u64Pool = append(g.u64Pool, b[:0])
}

// retryParked re-attempts previously mismatched chains until none merges,
// in park order.
func (g *Global) retryParked() {
	for changed := true; changed; {
		changed = false
		order := g.retryOrder()
		for _, k := range order {
			lc, ok := g.mismatched[k]
			if !ok {
				continue
			}
			terminal := g.entries[len(g.entries)-1].FP
			hit := false
			for _, fp := range lc {
				if fp == terminal {
					hit = true
					break
				}
			}
			if !hit && !g.contains(lc) {
				continue
			}
			g.unpark(k)
			g.ParkedRetries++
			prev := g.inRetry
			g.inRetry = true
			if g.TryMatch(lc) {
				changed = true
			}
			g.inRetry = prev
		}
		g.putRetryOrder(order)
	}
}

// validateSuffix walks unlinked entries in order and CRC-validates the ones
// whose headers are available, implementing lines 14-23 of Algorithm 1. A
// CRC mismatch evicts the entire unlinked suffix from the failing entry on.
func (g *Global) validateSuffix() {
	start := g.lastLinkedIndex() + 1
	for i := start; i < len(g.entries); i++ {
		e := &g.entries[i]
		h, ok := g.headers[e.FP.Dts]
		if !ok {
			// Cannot validate yet; later entries can't become
			// authoritative ahead of this one either.
			return
		}
		// The first two entries of the chain have no (complete)
		// predecessor context: their footprint CRC folds in headers
		// the receiver cannot reconstruct, so order validation is
		// vacuous there — header presence suffices. Compaction always
		// retains two validated predecessors, so this only applies at
		// the true chain head (session start).
		if i >= 2 {
			p1, ok1 := g.headers[g.entries[i-1].FP.Dts]
			p2, ok2 := g.headers[g.entries[i-2].FP.Dts]
			if !ok1 || !ok2 {
				return
			}
			if computeCRCInto(&g.crcBuf, h, p1, p2) != e.FP.CRC {
				// Validation failure: push out the unlinked frames.
				g.CRCFailures++
				g.tr.Rec(trace.KChainCRCFail, 0, e.FP.Dts, uint64(len(g.entries)-i), 0)
				g.entries = g.entries[:i]
				return
			}
		}
		e.Status = Linked
	}
}

// AppendSelf extends the chain with a footprint the receiver computes
// itself from a fully received frame header — exactly what an edge node
// would have computed, using the chain's actual tail entries as
// predecessors so validation is consistent by construction. Used by
// clients to bridge frames whose chain copies were lost or never sent
// (CDN deliveries carry no chains). It returns false when the chain is
// empty, the tail headers are unknown, or the dts does not advance.
func (g *Global) AppendSelf(h media.Header, cnt uint16) bool {
	nLen := len(g.entries)
	if nLen == 0 {
		return false
	}
	tail := g.entries[nLen-1].FP
	if h.Dts <= tail.Dts {
		return false
	}
	p1, ok := g.headers[tail.Dts]
	if !ok {
		return false
	}
	var p2 media.Header
	if nLen >= 2 {
		ph, ok := g.headers[g.entries[nLen-2].FP.Dts]
		if !ok {
			return false
		}
		p2 = ph
	}
	g.headers[h.Dts] = h
	fp := Footprint{Dts: h.Dts, CRC: computeCRCInto(&g.crcBuf, h, p1, p2), CNT: cnt}
	g.entries = append(g.entries, Entry{FP: fp, Status: Unlinked})
	g.Merges++
	g.validateSuffix()
	g.retryParked()
	return true
}

// NextLinked returns the footprints of linked entries with dts strictly
// greater than the last consumed dts, in order — the frames eligible to
// enter the ordered playout buffer. The returned slice is backed by an
// internal scratch buffer and is only valid until the next NextLinked call;
// callers must not retain it across chain mutations.
func (g *Global) NextLinked() []Footprint {
	out := g.linkedScratch[:0]
	for _, e := range g.entries {
		if e.Status != Linked {
			break
		}
		if g.hasConsumed && e.FP.Dts <= g.consumed {
			continue
		}
		out = append(out, e.FP)
	}
	g.linkedScratch = out
	return out
}

// MarkConsumed records that the player consumed the frame with the given
// dts and compacts the validated prefix to bound memory.
func (g *Global) MarkConsumed(dts uint64) {
	if !g.hasConsumed || dts > g.consumed {
		g.consumed = dts
		g.hasConsumed = true
	}
	g.compact()
}

// compact drops fully consumed linked prefix entries beyond what CRC
// validation of successors still needs (two predecessors).
func (g *Global) compact() {
	if len(g.entries) <= g.maxLen {
		// Also trim consumed prefix when it grows past half the cap, to
		// keep steady-state memory small.
		if len(g.entries) < g.maxLen/2 {
			return
		}
	}
	// Find last linked+consumed index.
	cut := 0
	for i, e := range g.entries {
		if e.Status == Linked && g.hasConsumed && e.FP.Dts <= g.consumed {
			cut = i
		} else {
			break
		}
	}
	// Keep two predecessors for CRC validation of the next entries.
	cut -= 2
	if cut <= 0 {
		return
	}
	for _, e := range g.entries[:cut] {
		delete(g.headers, e.FP.Dts)
	}
	g.entries = append(g.entries[:0], g.entries[cut:]...)
}

// First returns the footprint of the oldest entry and whether one exists.
func (g *Global) First() (Footprint, bool) {
	if len(g.entries) == 0 {
		return Footprint{}, false
	}
	return g.entries[0].FP, true
}

// Terminal returns the footprint of the newest entry and whether one exists.
func (g *Global) Terminal() (Footprint, bool) {
	if len(g.entries) == 0 {
		return Footprint{}, false
	}
	return g.entries[len(g.entries)-1].FP, true
}

// PendingMismatches returns how many local chains are parked awaiting gaps.
func (g *Global) PendingMismatches() int { return len(g.mismatched) }

// String summarizes the chain state for debugging.
func (g *Global) String() string {
	linked := 0
	for _, e := range g.entries {
		if e.Status == Linked {
			linked++
		}
	}
	return fmt.Sprintf("gchain{len=%d linked=%d parked=%d merges=%d rejects=%d crcfail=%d}",
		len(g.entries), linked, len(g.mismatched), g.Merges, g.Rejects, g.CRCFailures)
}

// chainTrimThreshold mirrors simnet's trimThreshold: scratch buffers whose
// capacity exceeds it are dropped at quiescent points so long runs hand
// burst-sized backing arrays back to the allocator.
const chainTrimThreshold = 4096

// Trim releases oversized scratch and pool backing arrays. Call at quiescent
// points (experiment phase boundaries); steady-state buffers stay put.
func (g *Global) Trim() {
	if cap(g.linkedScratch) > chainTrimThreshold {
		g.linkedScratch = nil
	}
	if len(g.chainPool) > 64 {
		g.chainPool = nil
	}
	if len(g.u64Pool) > 8 {
		g.u64Pool = nil
	}
}

// trimZero removes zero-footprint padding from the head of a local chain
// (present in chains generated before three frames were observed).
func trimZero(lchain []Footprint) []Footprint {
	for len(lchain) > 0 && lchain[0].Zero() {
		lchain = lchain[1:]
	}
	return lchain
}

package chain

import (
	"repro/internal/media"
)

// LocalGenerator runs on each best-effort node. The CDN delivers the node
// complete frames for its subscribed substream plus headers for every other
// substream of the same stream, so the generator observes the *full* stream
// order without pulling full data. For each frame it records the footprint
// and can emit the local chain footprint_i -> footprint_{i-1} -> ... ->
// footprint_{i-δ+1} that gets embedded into that frame's packets.
type LocalGenerator struct {
	delta int
	// last two headers seen, for CRC computation.
	prev1, prev2 media.Header
	havePrev     int
	// recent footprints, most recent last; capped at delta.
	recent []Footprint
	count  uint64
	crcBuf crcScratch
}

// NewLocalGenerator returns a generator with chain length delta
// (DefaultLength if delta <= 0).
func NewLocalGenerator(delta int) *LocalGenerator {
	if delta <= 0 {
		delta = DefaultLength
	}
	return &LocalGenerator{delta: delta, recent: make([]Footprint, 0, delta)}
}

// Delta returns the configured chain length.
func (g *LocalGenerator) Delta() int { return g.delta }

// Observe ingests the next frame header in stream order together with the
// packet count the frame slices into, and returns the frame's footprint.
func (g *LocalGenerator) Observe(h media.Header, packetCount uint16) Footprint {
	fp := Footprint{
		Dts: h.Dts,
		CRC: computeCRCInto(&g.crcBuf, h, g.prev1, g.prev2),
		CNT: packetCount,
	}
	g.prev2 = g.prev1
	g.prev1 = h
	if g.havePrev < 2 {
		g.havePrev++
	}
	// Shift-then-place at capacity: appending first would grow the backing
	// array (len == cap) and reallocate once per delta observations.
	if len(g.recent) == g.delta {
		copy(g.recent, g.recent[1:])
		g.recent[g.delta-1] = fp
	} else {
		g.recent = append(g.recent, fp)
	}
	g.count++
	return fp
}

// Chain returns the current local chain, ordered oldest to newest, ending at
// the most recently observed frame. The returned slice is a copy safe to
// embed in packets.
func (g *LocalGenerator) Chain() []Footprint {
	out := make([]Footprint, len(g.recent))
	copy(out, g.recent)
	return out
}

// AppendChain appends the current local chain (oldest to newest) to dst and
// returns the extended slice — the allocation-free variant of Chain for
// callers that own a reusable buffer.
func (g *LocalGenerator) AppendChain(dst []Footprint) []Footprint {
	return append(dst, g.recent...)
}

// Observed returns the total number of frames observed.
func (g *LocalGenerator) Observed() uint64 { return g.count }

// Package chain implements RLive's distributed frame sequencing (§5.2):
// lightweight frame footprints computed from headers only, local frame
// chains generated independently by each best-effort node, and the client's
// global chain that merges local chains from multiple sources into a single
// authoritative frame order (Algorithm 1 in the paper).
//
// The design intent: mainstream live protocols (HLS, FLV) carry no explicit
// frame sequence number, and a centralized sequencing server is a
// scalability and fault-tolerance liability. Instead, every best-effort node
// derives the same chain from the header side-channel the CDN provides, and
// embeds the last δ footprints in each data packet. Clients stitch these
// local chains together; loss of any individual chain copy is masked by the
// copies arriving from other substream publishers.
package chain

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/media"
)

// DefaultLength is the local chain length δ carried in every packet. The
// paper sets δ = 4.
const DefaultLength = 4

// FootprintSize is the encoded size of a footprint in bytes.
const FootprintSize = 14

// Footprint uniquely identifies a frame using only header information:
// the decoding timestamp, a CRC folding in the current and prior two frame
// headers (so the checksum also validates the *order* of the chain), and the
// packet count the frame was sliced into.
type Footprint struct {
	Dts uint64
	CRC uint32
	CNT uint16
}

// Zero reports whether the footprint is the zero value (used for the
// padding entries at stream start, before three headers exist).
func (f Footprint) Zero() bool { return f == Footprint{} }

// String formats the footprint compactly for logs.
func (f Footprint) String() string {
	return fmt.Sprintf("fp{dts=%d crc=%08x cnt=%d}", f.Dts, f.CRC, f.CNT)
}

// Marshal encodes the footprint into a fixed 14-byte representation.
func (f Footprint) Marshal() [FootprintSize]byte {
	var b [FootprintSize]byte
	binary.BigEndian.PutUint64(b[0:8], f.Dts)
	binary.BigEndian.PutUint32(b[8:12], f.CRC)
	binary.BigEndian.PutUint16(b[12:14], f.CNT)
	return b
}

// UnmarshalFootprint decodes a footprint from b.
func UnmarshalFootprint(b []byte) (Footprint, error) {
	if len(b) < FootprintSize {
		return Footprint{}, fmt.Errorf("chain: footprint too short: %d bytes", len(b))
	}
	return Footprint{
		Dts: binary.BigEndian.Uint64(b[0:8]),
		CRC: binary.BigEndian.Uint32(b[8:12]),
		CNT: binary.BigEndian.Uint16(b[12:14]),
	}, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcScratch is the marshal buffer a CRC computation needs. The indirect
// dispatch inside crc32.Checksum defeats escape analysis, so a function-local
// buffer would be heap-allocated on every call; hot callers thread a
// long-lived scratch instead.
type crcScratch [3 * media.HeaderSize]byte

// ComputeCRC computes the order-validating checksum over the current header
// and the two headers immediately preceding it in stream order. At stream
// start, missing predecessors are zero headers.
func ComputeCRC(cur media.Header, prev1, prev2 media.Header) uint32 {
	var buf crcScratch
	return computeCRCInto(&buf, cur, prev1, prev2)
}

// computeCRCInto is ComputeCRC with a caller-owned scratch buffer.
func computeCRCInto(buf *crcScratch, cur, prev1, prev2 media.Header) uint32 {
	b := cur.Marshal()
	copy(buf[0:], b[:])
	b = prev1.Marshal()
	copy(buf[media.HeaderSize:], b[:])
	b = prev2.Marshal()
	copy(buf[2*media.HeaderSize:], b[:])
	return crc32.Checksum(buf[:], crcTable)
}

// New computes the footprint of cur given its two predecessors and the
// number of packets the frame is sliced into.
func New(cur, prev1, prev2 media.Header, packetCount uint16) Footprint {
	return Footprint{
		Dts: cur.Dts,
		CRC: ComputeCRC(cur, prev1, prev2),
		CNT: packetCount,
	}
}

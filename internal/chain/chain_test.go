package chain

import (
	"testing"
	"testing/quick"

	"repro/internal/media"
	"repro/internal/stats"
)

// mkHeaders builds n sequential frame headers for stream 1.
func mkHeaders(n int) []media.Header {
	hs := make([]media.Header, n)
	for i := range hs {
		typ := media.FrameP
		if i%30 == 0 {
			typ = media.FrameI
		}
		hs[i] = media.Header{
			Stream: 1,
			Dts:    uint64(i) * 33,
			Type:   typ,
			Size:   uint32(1000 + i),
			Seq:    uint32(i),
		}
	}
	return hs
}

// footprints computes footprints for headers in order.
func footprints(hs []media.Header) []Footprint {
	fps := make([]Footprint, len(hs))
	var p1, p2 media.Header
	for i, h := range hs {
		fps[i] = New(h, p1, p2, 3)
		p2, p1 = p1, h
	}
	return fps
}

func TestFootprintRoundTrip(t *testing.T) {
	fp := Footprint{Dts: 12345, CRC: 0xdeadbeef, CNT: 7}
	b := fp.Marshal()
	got, err := UnmarshalFootprint(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != fp {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, fp)
	}
}

func TestFootprintRoundTripProperty(t *testing.T) {
	f := func(dts uint64, crc uint32, cnt uint16) bool {
		fp := Footprint{Dts: dts, CRC: crc, CNT: cnt}
		b := fp.Marshal()
		got, err := UnmarshalFootprint(b[:])
		return err == nil && got == fp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalFootprintShort(t *testing.T) {
	if _, err := UnmarshalFootprint(make([]byte, 5)); err == nil {
		t.Fatal("expected error")
	}
}

func TestCRCOrderSensitivity(t *testing.T) {
	hs := mkHeaders(3)
	inOrder := ComputeCRC(hs[2], hs[1], hs[0])
	swapped := ComputeCRC(hs[2], hs[0], hs[1])
	if inOrder == swapped {
		t.Fatal("CRC must depend on predecessor order")
	}
}

func TestCRCUniqueAcrossFrames(t *testing.T) {
	hs := mkHeaders(1000)
	fps := footprints(hs)
	seen := make(map[Footprint]bool)
	for _, fp := range fps {
		if seen[fp] {
			t.Fatalf("duplicate footprint %v", fp)
		}
		seen[fp] = true
	}
}

func TestLocalGeneratorChainShape(t *testing.T) {
	g := NewLocalGenerator(4)
	hs := mkHeaders(10)
	for i, h := range hs {
		g.Observe(h, 3)
		c := g.Chain()
		wantLen := i + 1
		if wantLen > 4 {
			wantLen = 4
		}
		if len(c) != wantLen {
			t.Fatalf("after %d frames chain len = %d, want %d", i+1, len(c), wantLen)
		}
		if c[len(c)-1].Dts != h.Dts {
			t.Fatalf("chain must end at newest frame")
		}
	}
	if g.Observed() != 10 {
		t.Fatalf("observed = %d", g.Observed())
	}
}

func TestLocalGeneratorDefaultDelta(t *testing.T) {
	if NewLocalGenerator(0).Delta() != DefaultLength {
		t.Fatal("default delta not applied")
	}
}

func TestLocalGeneratorMatchesManualFootprints(t *testing.T) {
	g := NewLocalGenerator(4)
	hs := mkHeaders(20)
	want := footprints(hs)
	for i, h := range hs {
		fp := g.Observe(h, 3)
		if fp != want[i] {
			t.Fatalf("frame %d footprint mismatch", i)
		}
	}
}

// deliver simulates the client receiving frame headers and local chains
// from one or more generators, in the given frame order.
func TestGlobalSeedAndValidate(t *testing.T) {
	hs := mkHeaders(8)
	gen := NewLocalGenerator(4)
	g := NewGlobal(0)
	for _, h := range hs {
		gen.Observe(h, 3)
		g.AddHeader(h)
		if !g.TryMatch(gen.Chain()) {
			t.Fatalf("in-order chain must always match, dts=%d", h.Dts)
		}
	}
	linked := g.NextLinked()
	if len(linked) != 8 {
		t.Fatalf("linked = %d, want 8 (%s)", len(linked), g)
	}
	for i, fp := range linked {
		if fp.Dts != uint64(i)*33 {
			t.Fatalf("linked order wrong at %d: %v", i, fp)
		}
	}
}

func TestGlobalTwoSourcesInterleaved(t *testing.T) {
	// Two generators observe the same stream (as two best-effort nodes
	// would); their chains arrive interleaved at the client.
	hs := mkHeaders(30)
	genA := NewLocalGenerator(4)
	genB := NewLocalGenerator(4)
	g := NewGlobal(0)
	for i, h := range hs {
		genA.Observe(h, 3)
		genB.Observe(h, 3)
		g.AddHeader(h)
		if i%2 == 0 {
			g.TryMatch(genA.Chain())
		} else {
			g.TryMatch(genB.Chain())
		}
	}
	if got := len(g.NextLinked()); got != 30 {
		t.Fatalf("linked = %d, want 30 (%s)", got, g)
	}
}

func TestGlobalSurvivesChainLoss(t *testing.T) {
	// Mirrors Figure 7(b): local chains are lost entirely; as long as a
	// later chain still contains the global terminal, merging succeeds.
	// With δ=4 the chain of frame i covers frames i-3..i, so up to 2
	// consecutive lost chain copies are bridged by the next arrival.
	hs := mkHeaders(12)
	gen := NewLocalGenerator(4)
	g := NewGlobal(0)
	for i, h := range hs {
		gen.Observe(h, 3)
		g.AddHeader(h)
		// Drop the chains carried by frames 4..5; chain of frame 6
		// covers frames 3..6 and contains terminal (frame 3).
		if i >= 4 && i <= 5 {
			continue
		}
		g.TryMatch(gen.Chain())
	}
	if got := len(g.NextLinked()); got != 12 {
		t.Fatalf("linked = %d, want 12 (%s)", got, g)
	}
}

func TestGlobalGapParksAndRecovers(t *testing.T) {
	// Lose enough consecutive chains to exceed δ: the next chain cannot
	// attach (gap) and must park; once an overlapping chain arrives the
	// parked one merges too.
	hs := mkHeaders(16)
	gen := NewLocalGenerator(4)
	g := NewGlobal(0)
	var chains [][]Footprint
	for _, h := range hs {
		gen.Observe(h, 3)
		chains = append(chains, gen.Chain())
		g.AddHeader(h)
	}
	// Deliver chains 0..3 (linking frames 0..3).
	for i := 0; i <= 3; i++ {
		g.TryMatch(chains[i])
	}
	// Chain 10 covers frames 7..10: terminal is frame 3, no overlap -> park.
	if g.TryMatch(chains[10]) {
		t.Fatal("gapped chain should not match")
	}
	if g.PendingMismatches() != 1 {
		t.Fatalf("parked = %d, want 1", g.PendingMismatches())
	}
	// Chain 7 covers 4..7, overlaps terminal 3? chain 7 = frames 4,5,6,7
	// -> contains no frame 3. It covers 4..7; terminal is frame 3. The
	// continuity check needs the terminal INSIDE the local chain, so
	// chain 6 (frames 3..6) is the one that attaches.
	if !g.TryMatch(chains[6]) {
		t.Fatal("overlapping chain should match")
	}
	// Parked chain 10 (frames 7..10) now overlaps terminal (frame 6)?
	// chains[10] = frames 7,8,9,10; terminal after merge = frame 6. No
	// overlap -> still parked. Deliver chain 8 (frames 5..8).
	g.TryMatch(chains[8])
	// Now terminal = frame 8, chains[10] contains 7..10 including 8 ->
	// the retry loop should have merged it.
	if g.PendingMismatches() != 0 {
		t.Fatalf("parked chain not retried: %s", g)
	}
	if got := len(g.NextLinked()); got != 11 {
		t.Fatalf("linked = %d, want 11 (%s)", got, g)
	}
}

func TestGlobalRejectsCorruptChain(t *testing.T) {
	hs := mkHeaders(10)
	gen := NewLocalGenerator(4)
	g := NewGlobal(0)
	for i := 0; i < 5; i++ {
		gen.Observe(hs[i], 3)
		g.AddHeader(hs[i])
		g.TryMatch(gen.Chain())
	}
	// Forge a chain that claims a different frame follows frame 4.
	term, _ := g.Terminal()
	forged := []Footprint{term, {Dts: 9999, CRC: 0x12345678, CNT: 1}}
	g.TryMatch(forged)
	// Deliver the forged frame's header so validation runs and fails.
	g.AddHeader(media.Header{Stream: 1, Dts: 9999, Size: 1, Seq: 99})
	if g.CRCFailures == 0 {
		t.Fatalf("expected CRC failure: %s", g)
	}
	// The real continuation must still merge cleanly.
	for i := 5; i < 10; i++ {
		gen.Observe(hs[i], 3)
		g.AddHeader(hs[i])
		if !g.TryMatch(gen.Chain()) {
			t.Fatalf("real chain rejected after forgery eviction at %d", i)
		}
	}
	if got := len(g.NextLinked()); got != 10 {
		t.Fatalf("linked = %d, want 10 (%s)", got, g)
	}
}

func TestGlobalConsumeAndCompact(t *testing.T) {
	hs := mkHeaders(300)
	gen := NewLocalGenerator(4)
	g := NewGlobal(64)
	for _, h := range hs {
		gen.Observe(h, 3)
		g.AddHeader(h)
		g.TryMatch(gen.Chain())
		for _, fp := range g.NextLinked() {
			g.MarkConsumed(fp.Dts)
		}
	}
	if g.Len() > 64 {
		t.Fatalf("chain grew unbounded: len=%d", g.Len())
	}
}

func TestGlobalConsumedNotReturned(t *testing.T) {
	hs := mkHeaders(5)
	gen := NewLocalGenerator(4)
	g := NewGlobal(0)
	for _, h := range hs {
		gen.Observe(h, 3)
		g.AddHeader(h)
		g.TryMatch(gen.Chain())
	}
	g.MarkConsumed(hs[2].Dts)
	next := g.NextLinked()
	if len(next) != 2 || next[0].Dts != hs[3].Dts {
		t.Fatalf("NextLinked after consume = %v", next)
	}
}

func TestGlobalEmptyChainInput(t *testing.T) {
	g := NewGlobal(0)
	if g.TryMatch(nil) {
		t.Fatal("empty chain must not match")
	}
	if g.TryMatch([]Footprint{{}}) {
		t.Fatal("all-zero chain must not match")
	}
}

func TestGlobalContainedChainIsSuccess(t *testing.T) {
	hs := mkHeaders(6)
	gen := NewLocalGenerator(4)
	g := NewGlobal(0)
	var chains [][]Footprint
	for _, h := range hs {
		gen.Observe(h, 3)
		g.AddHeader(h)
		chains = append(chains, gen.Chain())
		g.TryMatch(chains[len(chains)-1])
	}
	// Re-delivering an old chain (duplicate packets) must be a no-op success.
	before := g.Len()
	if !g.TryMatch(chains[2]) {
		t.Fatal("contained chain should report success")
	}
	if g.Len() != before {
		t.Fatal("contained chain must not grow the global chain")
	}
}

// Property: delivering the per-frame local chains in ANY order links a
// contiguous suffix of the stream ending at the newest frame. The chain
// seeds wherever the first-delivered chain starts (a live client joins
// mid-stream), so frames before the seed point are intentionally
// unreachable; everything after must link once all chains have been seen
// (parked chains are retried after each merge).
func TestGlobalOrderIndependenceProperty(t *testing.T) {
	const n = 40
	hs := mkHeaders(n)
	gen := NewLocalGenerator(4)
	var chains [][]Footprint
	for _, h := range hs {
		gen.Observe(h, 3)
		chains = append(chains, gen.Chain())
	}
	rng := stats.NewRNG(99)
	for trial := 0; trial < 25; trial++ {
		g := NewGlobal(0)
		for _, h := range hs {
			g.AddHeader(h)
		}
		perm := rng.Perm(n)
		for _, i := range perm {
			g.TryMatch(chains[i])
		}
		// A second pass guarantees any chain rejected while its
		// predecessors were missing gets another chance (in the real
		// system publishers keep sending fresh chains).
		for _, i := range perm {
			g.TryMatch(chains[i])
		}
		linked := g.NextLinked()
		if len(linked) == 0 {
			t.Fatalf("trial %d: nothing linked (%s)", trial, g)
		}
		// Contiguous suffix ending at the newest frame.
		last := linked[len(linked)-1].Dts
		if last != hs[n-1].Dts {
			t.Fatalf("trial %d: suffix does not reach newest frame: %d != %d (%s)",
				trial, last, hs[n-1].Dts, g)
		}
		for j := 1; j < len(linked); j++ {
			if linked[j].Dts != linked[j-1].Dts+33 {
				t.Fatalf("trial %d: linked run not contiguous at %d", trial, j)
			}
		}
	}
}

// Delivering chains strictly in order always links every frame.
func TestGlobalInOrderLinksAll(t *testing.T) {
	const n = 40
	hs := mkHeaders(n)
	gen := NewLocalGenerator(4)
	g := NewGlobal(0)
	for _, h := range hs {
		gen.Observe(h, 3)
		g.AddHeader(h)
		g.TryMatch(gen.Chain())
	}
	if got := len(g.NextLinked()); got != n {
		t.Fatalf("linked %d/%d (%s)", got, n, g)
	}
}

func TestGlobalTerminal(t *testing.T) {
	g := NewGlobal(0)
	if _, ok := g.Terminal(); ok {
		t.Fatal("empty chain has no terminal")
	}
	hs := mkHeaders(3)
	gen := NewLocalGenerator(4)
	for _, h := range hs {
		gen.Observe(h, 3)
		g.AddHeader(h)
		g.TryMatch(gen.Chain())
	}
	term, ok := g.Terminal()
	if !ok || term.Dts != hs[2].Dts {
		t.Fatalf("terminal = %v %v", term, ok)
	}
}

// TestChainSteadyStateAllocFree: the merge hot path — local observation,
// global match, linked-prefix extraction, consumption — reuses its scratch
// buffers, so a warm steady-state cycle allocates nothing. This is the
// dominant allocation site of the pre-pooling profile (NextLinked alone was
// ~74% of alloc_objects in the baseline experiment).
func TestChainSteadyStateAllocFree(t *testing.T) {
	lg := NewLocalGenerator(4)
	g := NewGlobal(0)
	hs := mkHeaders(2000)
	var chainBuf []Footprint // caller-owned, like edge.retainedFrame.chain
	// Warm-up: size the scratch buffers and map buckets.
	for _, h := range hs[:200] {
		g.AddHeader(h)
		lg.Observe(h, 3)
		chainBuf = lg.AppendChain(chainBuf[:0])
		g.TryMatch(chainBuf)
		for _, fp := range g.NextLinked() {
			g.MarkConsumed(fp.Dts)
		}
	}
	i := 200
	allocs := testing.AllocsPerRun(1500, func() {
		h := hs[i]
		i++
		g.AddHeader(h)
		lg.Observe(h, 3)
		chainBuf = lg.AppendChain(chainBuf[:0])
		if !g.TryMatch(chainBuf) {
			t.Fatal("in-order chain failed to match")
		}
		for _, fp := range g.NextLinked() {
			g.MarkConsumed(fp.Dts)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state chain merge allocates %.1f/op, want 0", allocs)
	}
}

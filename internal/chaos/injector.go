package chaos

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Injector binds a scenario to a running system: it schedules every fault
// event on the simulator and records a human-readable timeline. All
// randomness (churn-storm node selection, downtime draws) comes from its
// own forked RNG, so injection neither perturbs the system's RNG stream
// nor depends on it.
type Injector struct {
	sys *core.System
	rng *stats.RNG

	// partitions holds the active region pairs consulted by the
	// net.Blocked hook.
	partitions [][2]int
	// savedUplink remembers pre-saturation dedicated capacities.
	savedUplink map[simnet.Addr]float64

	// Timeline records injected transitions as "t=30s scheduler-outage
	// start" lines, in injection order — the determinism witness.
	Timeline []string
}

// NewInjector creates an injector for sys. The scenario seed (or the
// system seed when the scenario leaves it zero) feeds the injector RNG.
func NewInjector(sys *core.System, sc Scenario) *Injector {
	seed := sc.Seed
	if seed == 0 {
		seed = sys.Cfg.Seed ^ 0xc4a05c4a05c4a05
	}
	return &Injector{
		sys:         sys,
		rng:         stats.NewRNG(seed),
		savedUplink: make(map[simnet.Addr]float64),
	}
}

func (in *Injector) logf(format string, args ...any) {
	t := time.Duration(in.sys.Sim.Now()).Round(time.Millisecond)
	in.Timeline = append(in.Timeline, fmt.Sprintf("t=%s %s", t, fmt.Sprintf(format, args...)))
}

// Schedule arms every scenario event relative to the current simulation
// time. It installs the partition hook if any partition events exist.
func (in *Injector) Schedule(sc Scenario) {
	now := in.sys.Sim.Now()
	for _, e := range sc.Events {
		if e.Kind == RegionPartition {
			in.installPartitionHook()
			break
		}
	}
	for _, e := range sc.Events {
		e := e
		in.sys.Sim.At(now+simnet.Time(e.Start), func() { in.begin(e) })
		if e.Duration > 0 {
			in.sys.Sim.At(now+simnet.Time(e.End()), func() { in.end(e) })
		}
	}
}

// installPartitionHook points net.Blocked at the injector's active
// partition set. Dedicated nodes and the scheduler ride the CDN backbone,
// which partitions between access regions do not sever.
func (in *Injector) installPartitionHook() {
	sys := in.sys
	sys.Net.Blocked = func(a, b simnet.Addr) bool {
		if len(in.partitions) == 0 {
			return false
		}
		if backbone(sys, a) || backbone(sys, b) {
			return false
		}
		ra, rb := sys.RegionOf(a), sys.RegionOf(b)
		for _, p := range in.partitions {
			if (ra == p[0] && rb == p[1]) || (ra == p[1] && rb == p[0]) {
				return true
			}
		}
		return false
	}
}

// backbone reports whether addr is CDN/scheduler infrastructure.
func backbone(sys *core.System, addr simnet.Addr) bool {
	if addr < fleet.AddrBestEffBase {
		return true // scheduler, seq server, dedicated nodes
	}
	if n := sys.Fleet.Node(addr); n != nil {
		return n.Class == fleet.Dedicated
	}
	return false
}

func (in *Injector) begin(e Event) {
	switch e.Kind {
	case SchedulerOutage:
		in.sys.SchedSvc.SetOutage(true)
		in.logf("scheduler-outage start")
	case SchedulerSlow:
		in.sys.SchedSvc.SetExtraLatency(e.ExtraOWD)
		in.logf("scheduler-slow start (+%s)", e.ExtraOWD)
	case RegionBlackout:
		n := in.blackout(e.Region)
		in.logf("region-blackout start region=%d nodes=%d", e.Region, n)
	case RegionPartition:
		in.partitions = append(in.partitions, [2]int{e.Region, e.RegionB})
		in.logf("region-partition start %d<->%d", e.Region, e.RegionB)
	case ChurnStorm:
		n := in.churnStorm(e)
		in.logf("churn-storm start severity=%.2f hit=%d", e.Severity, n)
	case OriginSaturation:
		in.saturateOrigin(e.Severity)
		in.logf("origin-saturation start factor=%.2f", e.Severity)
	case DegradationWave:
		if e.Region >= 0 {
			in.perturbRegion(e.Region, e.Severity, e.ExtraOWD)
			in.logf("degradation-wave start region=%d", e.Region)
		} else {
			in.rollingWave(e)
			in.logf("degradation-wave start rolling")
		}
	case NATFlap:
		in.sys.SetNATFlap(true)
		in.logf("nat-flap start")
	case CtrlPartition:
		in.sys.Ctrl.SetGossipPartition(true)
		in.logf("ctrl-partition start")
	}
}

func (in *Injector) end(e Event) {
	switch e.Kind {
	case SchedulerOutage:
		in.sys.SchedSvc.SetOutage(false)
		in.logf("scheduler-outage end (dropped %d msgs)", in.sys.SchedSvc.DroppedMsgs())
	case SchedulerSlow:
		in.sys.SchedSvc.SetExtraLatency(0)
		in.logf("scheduler-slow end")
	case RegionBlackout:
		n := in.restoreRegion(e.Region)
		in.logf("region-blackout end region=%d restored=%d", e.Region, n)
	case RegionPartition:
		for i, p := range in.partitions {
			if p == [2]int{e.Region, e.RegionB} {
				in.partitions = append(in.partitions[:i], in.partitions[i+1:]...)
				break
			}
		}
		in.logf("region-partition end %d<->%d", e.Region, e.RegionB)
	case ChurnStorm:
		in.logf("churn-storm window end")
	case OriginSaturation:
		in.restoreOrigin()
		in.logf("origin-saturation end")
	case DegradationWave:
		if e.Region >= 0 {
			in.perturbRegion(e.Region, 0, 0)
		}
		// The rolling wave clears each region as it moves on.
		in.logf("degradation-wave end")
	case NATFlap:
		in.sys.SetNATFlap(false)
		in.logf("nat-flap end")
	case CtrlPartition:
		in.sys.Ctrl.SetGossipPartition(false)
		in.logf("ctrl-partition end (max shard divergence %d epochs)", in.sys.Ctrl.MaxEpochLag())
	}
}

// blackout takes every online best-effort node in the region offline,
// returning the count. Fleet.BestEffort has a stable order, keeping the
// injection deterministic.
func (in *Injector) blackout(region int) int {
	n := 0
	for _, nd := range in.sys.Fleet.BestEffort {
		if nd.Region == region && in.sys.Net.Online(nd.Addr) {
			in.sys.Net.SetOnline(nd.Addr, false)
			n++
		}
	}
	return n
}

// restoreRegion brings back the region's offline nodes. Nodes the churn
// process took down independently also return here; their own recovery
// timers will simply find them already online.
func (in *Injector) restoreRegion(region int) int {
	n := 0
	for _, nd := range in.sys.Fleet.BestEffort {
		if nd.Region == region && !in.sys.Net.Online(nd.Addr) {
			in.sys.Net.SetOnline(nd.Addr, true)
			n++
		}
	}
	return n
}

// churnStorm drops a Severity fraction of online best-effort nodes at
// once; each returns after an individually-drawn downtime ~Exp(Duration/3)
// capped at the storm window, modeling correlated lifespan truncation.
func (in *Injector) churnStorm(e Event) int {
	hit := 0
	for _, nd := range in.sys.Fleet.BestEffort {
		if !in.rng.Bool(e.Severity) || !in.sys.Net.Online(nd.Addr) {
			continue
		}
		in.sys.Net.SetOnline(nd.Addr, false)
		hit++
		down := time.Duration(in.rng.Exponential(float64(e.Duration) / 3))
		if down > e.Duration {
			down = e.Duration
		}
		if down < time.Second {
			down = time.Second
		}
		addr := nd.Addr
		in.sys.Sim.After(down, func() {
			if !in.sys.Net.Online(addr) {
				in.sys.Net.SetOnline(addr, true)
			}
		})
	}
	return hit
}

func (in *Injector) saturateOrigin(factor float64) {
	for _, nd := range in.sys.Fleet.Dedicated {
		addr := nd.Addr
		in.sys.Net.UpdateState(addr, func(st *simnet.LinkState) {
			in.savedUplink[addr] = st.UplinkBps
			st.UplinkBps *= factor
		})
	}
}

func (in *Injector) restoreOrigin() {
	for _, nd := range in.sys.Fleet.Dedicated {
		addr := nd.Addr
		if orig, ok := in.savedUplink[addr]; ok {
			in.sys.Net.UpdateState(addr, func(st *simnet.LinkState) {
				st.UplinkBps = orig
			})
			delete(in.savedUplink, addr)
		}
	}
}

// perturbRegion overlays (or clears, with zeros) loss/latency perturbation
// on every best-effort node in the region.
func (in *Injector) perturbRegion(region int, loss float64, owd time.Duration) {
	for _, nd := range in.sys.Fleet.BestEffort {
		if nd.Region == region {
			in.sys.Net.SetPerturb(nd.Addr, loss, owd)
		}
	}
}

// rollingWave sweeps the degradation across all regions sequentially
// within the event window.
func (in *Injector) rollingWave(e Event) {
	regions := in.sys.Fleet.Config().Regions
	if regions <= 0 {
		regions = 1
	}
	slice := e.Duration / time.Duration(regions)
	now := in.sys.Sim.Now()
	for r := 0; r < regions; r++ {
		r := r
		in.sys.Sim.At(now+simnet.Time(r)*simnet.Time(slice), func() {
			in.perturbRegion(r, e.Severity, e.ExtraOWD)
			in.logf("degradation-wave hits region=%d", r)
		})
		in.sys.Sim.At(now+simnet.Time(r+1)*simnet.Time(slice), func() {
			in.perturbRegion(r, 0, 0)
		})
	}
}

// Package chaos is a deterministic scenario-driven fault-injection engine
// layered on simnet, fleet, scheduler and core.System. A Scenario is a
// seeded timeline of typed fault events (scheduler outages, region
// blackouts and partitions, churn storms, origin saturation, degradation
// waves, NAT flaps); an Injector schedules the events on the simulator;
// InvariantCheckers sampled throughout the run decide whether the system
// upheld the paper's resilience claims — above all that the data plane
// survives control-plane failure on last-known-good state.
//
// Everything is seeded: the same scenario on the same system seed yields an
// identical event timeline, identical QoE numbers, and identical invariant
// verdicts.
package chaos

import (
	"fmt"
	"sort"
	"time"
)

// Kind enumerates the fault event types.
type Kind uint8

const (
	// SchedulerOutage drops every control-plane message at the scheduler
	// service: no candidate responses, no heartbeat ingest. The data
	// plane must keep flowing on cached candidates.
	SchedulerOutage Kind = iota
	// SchedulerSlow leaves the scheduler alive but adds ExtraOWD of
	// processing latency to every recommendation.
	SchedulerSlow
	// RegionBlackout takes every best-effort node in Region offline for
	// the window (correlated power/transit failure).
	RegionBlackout
	// RegionPartition severs overlay paths between Region and RegionB:
	// traffic between the two regions is dropped unless one endpoint is
	// dedicated-CDN/scheduler infrastructure (the CDN backbone survives
	// inter-ISP peering disputes; peer-to-peer paths do not).
	RegionPartition
	// ChurnStorm truncates the lifespan of a correlated Severity fraction
	// of best-effort nodes at Start: they all drop at once and return
	// after short, individually-drawn downtimes within ~Duration.
	ChurnStorm
	// OriginSaturation scales every dedicated node's uplink capacity by
	// Severity (e.g. 0.25 = the origin retains a quarter of its
	// capacity) for the window.
	OriginSaturation
	// DegradationWave overlays Severity extra loss and ExtraOWD extra
	// delay on best-effort nodes: on one region when Region >= 0, or
	// rolling sequentially across all regions when Region == -1.
	DegradationWave
	// NATFlap breaks hole punching to every non-public edge node for the
	// window (STUN/relay-assist infrastructure failure).
	NATFlap
	// CtrlPartition severs gossip between the two halves of the control
	// plane's scheduler shard set for the window (a backbone split between
	// shard sites). Each half keeps serving its own regions and pushing
	// snapshots; per-region epochs diverge across the cut and re-converge
	// by anti-entropy when it heals. Systems without a distributed control
	// plane see a no-op.
	CtrlPartition
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case SchedulerOutage:
		return "scheduler-outage"
	case SchedulerSlow:
		return "scheduler-slow"
	case RegionBlackout:
		return "region-blackout"
	case RegionPartition:
		return "region-partition"
	case ChurnStorm:
		return "churn-storm"
	case OriginSaturation:
		return "origin-saturation"
	case DegradationWave:
		return "degradation-wave"
	case NATFlap:
		return "nat-flap"
	case CtrlPartition:
		return "ctrl-partition"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Event is one fault on the scenario timeline. Start is relative to the
// moment the scenario run begins (after any caller-side warm-up).
type Event struct {
	Kind     Kind
	Start    time.Duration
	Duration time.Duration
	// Region scopes RegionBlackout/RegionPartition/DegradationWave; -1
	// on a DegradationWave means a rolling sweep across all regions.
	Region int
	// RegionB is the second region of a RegionPartition.
	RegionB int
	// Severity is kind-specific: node fraction for ChurnStorm, capacity
	// factor for OriginSaturation, extra loss rate for DegradationWave.
	Severity float64
	// ExtraOWD is the added latency for SchedulerSlow/DegradationWave.
	ExtraOWD time.Duration
}

// End returns the event's end offset.
func (e Event) End() time.Duration { return e.Start + e.Duration }

// Scenario is a named, seeded fault timeline plus the bounds its invariant
// checkers enforce.
type Scenario struct {
	Name string
	// Seed salts the injector's RNG (node selection in churn storms).
	// Zero means derive from the system seed.
	Seed   uint64
	Events []Event
	// Tail is how long the run continues after the last fault ends, so
	// post-fault convergence can be observed.
	Tail time.Duration

	// ContinuityMin is the data-plane-continuity floor: fraction of
	// nominal frames that must still be played during the fault window.
	ContinuityMin float64
	// RebufferCeiling bounds mean rebuffering events per 100 s across
	// the whole run (bounded-QoE-degradation).
	RebufferCeiling float64
	// EscalationDeadline bounds how long a retransmission NACK may stay
	// unanswered before a dedicated-CDN fetch must have occurred.
	EscalationDeadline time.Duration
	// ConvergeEpsilon and ConvergeWithin parameterize post-fault
	// convergence: the windowed stall fraction must return to within
	// epsilon (absolute) of the pre-fault baseline within this long of
	// the last fault ending.
	ConvergeEpsilon float64
	ConvergeWithin  time.Duration
}

// applyDefaults fills unset invariant bounds with permissive defaults.
func (s *Scenario) applyDefaults() {
	if s.ContinuityMin == 0 {
		s.ContinuityMin = 0.5
	}
	if s.RebufferCeiling == 0 {
		s.RebufferCeiling = 12
	}
	if s.EscalationDeadline == 0 {
		s.EscalationDeadline = 10 * time.Second
	}
	if s.ConvergeEpsilon == 0 {
		s.ConvergeEpsilon = 0.05
	}
	if s.ConvergeWithin == 0 {
		s.ConvergeWithin = 30 * time.Second
	}
	if s.Tail == 0 {
		s.Tail = 30 * time.Second
	}
}

// Window is one ground-truth fault interval of a scenario, in offsets
// relative to the scenario run start. It is the reference an alerting
// scorecard judges incident detection against: an incident that opens
// inside [Start, End] (plus the scorer's grace) detected this fault.
type Window struct {
	Kind  Kind
	Start time.Duration
	End   time.Duration
	// Region scopes regional faults; -1 means fleet-wide (matching
	// Event.Region semantics, including the rolling degradation wave).
	Region int
}

// String renders the window as "kind [start,end) region=r".
func (w Window) String() string {
	if w.Region >= 0 {
		return fmt.Sprintf("%s [%s,%s) region=%d", w.Kind, w.Start, w.End, w.Region)
	}
	return fmt.Sprintf("%s [%s,%s)", w.Kind, w.Start, w.End)
}

// FaultWindows exports the scenario's ground-truth fault timeline: one
// window per event, sorted by start then end then kind so multi-fault
// scenarios enumerate deterministically regardless of Events order. A
// zero-duration event still yields a window (Start == End) — the fault
// happened even if it was instantaneous.
func (s Scenario) FaultWindows() []Window {
	out := make([]Window, 0, len(s.Events))
	for _, e := range s.Events {
		r := e.Region
		if e.Kind != RegionBlackout && e.Kind != RegionPartition && e.Kind != DegradationWave {
			r = -1
		}
		out = append(out, Window{Kind: e.Kind, Start: e.Start, End: e.End(), Region: r})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Span returns the envelope of the fault windows: the earliest start and
// the latest end (both 0 when the scenario has no events). Invariant
// checkers that only care about "the fault period" as a whole use this
// instead of re-deriving first/last offsets from Events.
func (s Scenario) Span() (start, end time.Duration) {
	for i, w := range s.FaultWindows() {
		if i == 0 || w.Start < start {
			start = w.Start
		}
		if w.End > end {
			end = w.End
		}
	}
	return start, end
}

// Total returns the scenario run length: last fault end plus tail.
func (s Scenario) Total() time.Duration {
	_, end := s.Span()
	return end + s.Tail
}

// Catalog returns the named scenarios the resilience experiments run. The
// scheduler-outage timeline is fixed at 60 s of control-plane death
// mid-run regardless of experiment scale — the headline drill.
func Catalog() []Scenario {
	return []Scenario{
		SchedulerOutageScenario(),
		SchedulerSlowScenario(),
		RegionBlackoutScenario(),
		RegionPartitionScenario(),
		ChurnStormScenario(),
		OriginSaturationScenario(),
		DegradationWaveScenario(),
		NATFlapScenario(),
		CtrlPartitionScenario(),
	}
}

// SchedulerOutageScenario kills the control plane for 60 s after a 30 s
// pre-fault baseline. Data-plane continuity is the invariant under test:
// clients must keep playing from cached candidates the whole time.
func SchedulerOutageScenario() Scenario {
	return Scenario{
		Name: "scheduler-outage",
		Events: []Event{
			{Kind: SchedulerOutage, Start: 30 * time.Second, Duration: 60 * time.Second},
		},
		Tail:          45 * time.Second,
		ContinuityMin: 0.6,
	}
}

// SchedulerSlowScenario degrades rather than kills the control plane:
// every recommendation is delayed by an extra 250 ms for 40 s. Startup and
// switching must tolerate stale, slow candidates.
func SchedulerSlowScenario() Scenario {
	return Scenario{
		Name: "scheduler-slow",
		Events: []Event{
			{Kind: SchedulerSlow, Start: 20 * time.Second, Duration: 40 * time.Second, ExtraOWD: 250 * time.Millisecond},
		},
		Tail: 40 * time.Second,
	}
}

// RegionBlackoutScenario takes every best-effort node in region 0 down for
// 40 s: viewers relaying from that region must recover via other
// candidates or dedicated fallback.
func RegionBlackoutScenario() Scenario {
	return Scenario{
		Name: "region-blackout",
		Events: []Event{
			{Kind: RegionBlackout, Start: 20 * time.Second, Duration: 40 * time.Second, Region: 0},
		},
		Tail: 40 * time.Second,
	}
}

// RegionPartitionScenario severs overlay paths between regions 0 and 1 for
// 40 s while the CDN backbone stays reachable.
func RegionPartitionScenario() Scenario {
	return Scenario{
		Name: "region-partition",
		Events: []Event{
			{Kind: RegionPartition, Start: 20 * time.Second, Duration: 40 * time.Second, Region: 0, RegionB: 1},
		},
		Tail: 40 * time.Second,
	}
}

// ChurnStormScenario drops half the best-effort fleet at once, with
// individual recoveries spread over the following ~30 s (correlated
// lifespan truncation — a vendor-fleet mass restart).
func ChurnStormScenario() Scenario {
	return Scenario{
		Name: "churn-storm",
		Events: []Event{
			{Kind: ChurnStorm, Start: 20 * time.Second, Duration: 30 * time.Second, Severity: 0.5},
		},
		Tail: 40 * time.Second,
	}
}

// OriginSaturationScenario squeezes every dedicated node to a quarter of
// its uplink for 40 s: the window where best-effort relays must carry the
// load because the origin cannot.
func OriginSaturationScenario() Scenario {
	return Scenario{
		Name: "origin-saturation",
		Events: []Event{
			{Kind: OriginSaturation, Start: 20 * time.Second, Duration: 40 * time.Second, Severity: 0.25},
		},
		Tail:            40 * time.Second,
		RebufferCeiling: 25,
	}
}

// DegradationWaveScenario rolls elevated loss and delay across every
// region in sequence over 48 s — the temporal-locality degradation the
// paper measures, at regional scale.
func DegradationWaveScenario() Scenario {
	return Scenario{
		Name: "degradation-wave",
		Events: []Event{
			{Kind: DegradationWave, Start: 20 * time.Second, Duration: 48 * time.Second,
				Region: -1, Severity: 0.08, ExtraOWD: 150 * time.Millisecond},
		},
		Tail: 40 * time.Second,
	}
}

// NATFlapScenario breaks hole punching to all non-public edges for 40 s:
// new relay connections fail; established ones keep flowing.
func NATFlapScenario() Scenario {
	return Scenario{
		Name: "nat-flap",
		Events: []Event{
			{Kind: NATFlap, Start: 20 * time.Second, Duration: 40 * time.Second},
		},
		Tail: 40 * time.Second,
	}
}

// CtrlPartitionScenario splits the scheduler shard set's gossip mesh in
// half for 40 s. Every shard keeps serving and pushing its own region's
// snapshots, so the data-plane invariants must hold untouched; the
// observable symptom is cross-region epoch divergence (ctrl.shard_diverge)
// climbing during the cut and collapsing after anti-entropy heals it.
func CtrlPartitionScenario() Scenario {
	return Scenario{
		Name: "ctrl-partition",
		Events: []Event{
			{Kind: CtrlPartition, Start: 20 * time.Second, Duration: 40 * time.Second},
		},
		Tail: 40 * time.Second,
	}
}

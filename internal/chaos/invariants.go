package chaos

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Verdict is one invariant's outcome after a scenario run.
type Verdict struct {
	Name   string
	Pass   bool
	Value  float64
	Bound  float64
	Detail string
}

// String renders the verdict as one line.
func (v Verdict) String() string {
	status := "PASS"
	if !v.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%-22s %s  %s", v.Name, status, v.Detail)
}

// Checker observes the system at every tick of a scenario run and renders
// a verdict at the end. Implementations are single-run, single-use.
type Checker interface {
	Name() string
	// Sample is called once per runner tick with the elapsed time since
	// the scenario run began.
	Sample(sys *core.System, elapsed time.Duration)
	// Verdict is called once, after the run completes.
	Verdict(sys *core.System) Verdict
}

// Checkers builds the scenario's default invariant suite: data-plane
// continuity over the fault window, bounded QoE degradation, recovery
// escalation, and post-fault convergence.
func (s Scenario) Checkers() []Checker {
	s.applyDefaults()
	start, end := s.Span()
	out := []Checker{
		&continuityChecker{
			window: [2]time.Duration{start, end},
			min:    s.ContinuityMin,
		},
		&boundedQoEChecker{ceiling: s.RebufferCeiling},
		&escalationChecker{deadline: s.EscalationDeadline},
		&convergenceChecker{
			faultStart: start,
			faultEnd:   end,
			eps:        s.ConvergeEpsilon,
			within:     s.ConvergeWithin,
		},
	}
	for _, e := range s.Events {
		if e.Kind == CtrlPartition {
			out = append(out, NewLKGAutonomyChecker())
			break
		}
	}
	return out
}

func totalFramesPlayed(sys *core.System) float64 {
	var n float64
	for _, c := range sys.Clients {
		n += float64(c.QoE.FramesPlayed)
	}
	return n
}

func totalPlayStall(sys *core.System) (played, stalled float64) {
	for _, c := range sys.Clients {
		played += c.QoE.PlayedMs
		stalled += c.QoE.StalledMs
	}
	return
}

// continuityChecker enforces data-plane continuity: during the fault
// window clients must keep playing at least `min` of the nominal frame
// rate. This is the control-plane-distribution invariant — the data plane
// survives on last-known-good state while the scheduler is dark.
type continuityChecker struct {
	window   [2]time.Duration
	min      float64
	atStart  float64
	atEnd    float64
	clients  int
	gotStart bool
	gotEnd   bool
}

func (c *continuityChecker) Name() string { return "data-plane-continuity" }

func (c *continuityChecker) Sample(sys *core.System, t time.Duration) {
	if !c.gotStart && t >= c.window[0] {
		c.gotStart = true
		c.atStart = totalFramesPlayed(sys)
		c.clients = len(sys.Clients)
	}
	if !c.gotEnd && t >= c.window[1] {
		c.gotEnd = true
		c.atEnd = totalFramesPlayed(sys)
	}
}

func (c *continuityChecker) Verdict(sys *core.System) Verdict {
	if !c.gotEnd {
		c.atEnd = totalFramesPlayed(sys)
	}
	fps := 30.0
	if len(sys.Cfg.Streams) > 0 && sys.Cfg.Streams[0].FPS > 0 {
		fps = float64(sys.Cfg.Streams[0].FPS)
	}
	secs := (c.window[1] - c.window[0]).Seconds()
	nominal := fps * secs * float64(c.clients)
	ratio := 0.0
	if nominal > 0 {
		ratio = (c.atEnd - c.atStart) / nominal
	}
	return Verdict{
		Name:   c.Name(),
		Pass:   ratio >= c.min,
		Value:  ratio,
		Bound:  c.min,
		Detail: fmt.Sprintf("played %.0f%% of nominal frames during fault (floor %.0f%%)", ratio*100, c.min*100),
	}
}

// boundedQoEChecker enforces bounded QoE degradation: mean rebuffering
// events per 100 s across the run stays under the scenario ceiling.
type boundedQoEChecker struct {
	ceiling float64
}

func (c *boundedQoEChecker) Name() string { return "bounded-qoe-degradation" }

func (c *boundedQoEChecker) Sample(*core.System, time.Duration) {}

func (c *boundedQoEChecker) Verdict(sys *core.System) Verdict {
	v := sys.Aggregate().Rebuffer.Mean()
	return Verdict{
		Name:   c.Name(),
		Pass:   v <= c.ceiling,
		Value:  v,
		Bound:  c.ceiling,
		Detail: fmt.Sprintf("mean rebuffer/100s %.2f (ceiling %.1f)", v, c.ceiling),
	}
}

// escalationChecker enforces recovery escalation: once a retransmission
// NACK arrives (a publisher cannot serve the frame), a dedicated-CDN fetch
// must follow within the deadline. Progress on the dedicated path clears
// outstanding NACKs.
type escalationChecker struct {
	deadline     time.Duration
	lastNacks    uint64
	lastFetch    uint64
	pending      bool
	pendingSince time.Duration
	violatedAt   time.Duration
	violated     bool
	nacksSeen    uint64
}

func (c *escalationChecker) Name() string { return "recovery-escalation" }

func (c *escalationChecker) Sample(sys *core.System, t time.Duration) {
	r := sys.Recovery()
	fetchInc := r.DedicatedFetch > c.lastFetch
	nackInc := r.RetxNacks > c.lastNacks
	if fetchInc {
		c.pending = false
	}
	if nackInc {
		c.nacksSeen += r.RetxNacks - c.lastNacks
		if !fetchInc && !c.pending {
			c.pending = true
			c.pendingSince = t
		}
	}
	if c.pending && t-c.pendingSince > c.deadline && !c.violated {
		c.violated = true
		c.violatedAt = t
	}
	c.lastNacks = r.RetxNacks
	c.lastFetch = r.DedicatedFetch
}

func (c *escalationChecker) Verdict(*core.System) Verdict {
	detail := fmt.Sprintf("%d NACKs, all escalated to dedicated within %s", c.nacksSeen, c.deadline)
	if c.violated {
		detail = fmt.Sprintf("NACK unanswered past %s (at t=%s)", c.deadline, c.violatedAt)
	}
	return Verdict{
		Name:   c.Name(),
		Pass:   !c.violated,
		Value:  float64(c.nacksSeen),
		Bound:  c.deadline.Seconds(),
		Detail: detail,
	}
}

// lkgAutonomyChecker enforces control-plane autonomy: once the data plane
// holds last-known-good snapshots, allocation and recovery-source decisions
// must never stall on a missing control plane — zero new allocation stalls
// over the scenario run, however the shard set is partitioned or killed.
// Stalls from before the run (the pre-prime warm-up) are baselined out. On
// a system without a distributed control plane the verdict is a vacuous
// pass, keeping the default suite usable everywhere.
type lkgAutonomyChecker struct {
	ctrl       bool
	started    bool
	baseStalls uint64
	stalls     uint64
	serves     uint64
}

// NewLKGAutonomyChecker builds the LKG-autonomy invariant; experiments
// append it explicitly to fault arms that run without a CtrlPartition
// event (e.g. scheduler-outage under the distributed control plane).
func NewLKGAutonomyChecker() Checker { return &lkgAutonomyChecker{} }

func (c *lkgAutonomyChecker) Name() string { return "lkg-autonomy" }

func (c *lkgAutonomyChecker) Sample(sys *core.System, _ time.Duration) {
	if sys.Ctrl == nil {
		return
	}
	c.ctrl = true
	var stalls, serves uint64
	for _, cl := range sys.Clients {
		stalls += cl.AllocStalls
		serves += cl.LKGServes
	}
	if !c.started {
		c.started = true
		c.baseStalls = stalls
	}
	c.stalls, c.serves = stalls, serves
}

func (c *lkgAutonomyChecker) Verdict(*core.System) Verdict {
	if !c.ctrl {
		return Verdict{Name: c.Name(), Pass: true,
			Detail: "no distributed control plane (vacuous pass)"}
	}
	d := c.stalls - c.baseStalls
	return Verdict{
		Name:  c.Name(),
		Pass:  d == 0,
		Value: float64(d),
		Bound: 0,
		Detail: fmt.Sprintf("%d allocation stalls during run, %d LKG-served allocations",
			d, c.serves),
	}
}

// convergenceChecker enforces post-fault convergence: the per-tick stall
// fraction must return to within eps of the pre-fault baseline within
// `within` of the last fault ending.
type convergenceChecker struct {
	faultStart time.Duration
	faultEnd   time.Duration
	eps        float64
	within     time.Duration

	lastPlayed  float64
	lastStalled float64
	baseSum     float64
	baseN       int
	convergedAt time.Duration
	converged   bool
	lastRate    float64
}

func (c *convergenceChecker) Name() string { return "post-fault-convergence" }

func (c *convergenceChecker) Sample(sys *core.System, t time.Duration) {
	played, stalled := totalPlayStall(sys)
	dp, ds := played-c.lastPlayed, stalled-c.lastStalled
	c.lastPlayed, c.lastStalled = played, stalled
	rate := 0.0
	if dp+ds > 0 {
		rate = ds / (dp + ds)
	}
	c.lastRate = rate
	switch {
	case t <= c.faultStart:
		c.baseSum += rate
		c.baseN++
	case t > c.faultEnd && !c.converged:
		if rate <= c.baseline()+c.eps {
			c.converged = true
			c.convergedAt = t
		}
	}
}

func (c *convergenceChecker) baseline() float64 {
	if c.baseN == 0 {
		return 0
	}
	return c.baseSum / float64(c.baseN)
}

func (c *convergenceChecker) Verdict(*core.System) Verdict {
	if !c.converged {
		return Verdict{
			Name:  c.Name(),
			Pass:  false,
			Value: c.lastRate,
			Bound: c.baseline() + c.eps,
			Detail: fmt.Sprintf("stall fraction %.3f never returned to baseline %.3f+%.2f",
				c.lastRate, c.baseline(), c.eps),
		}
	}
	lag := c.convergedAt - c.faultEnd
	return Verdict{
		Name:   c.Name(),
		Pass:   lag <= c.within,
		Value:  lag.Seconds(),
		Bound:  c.within.Seconds(),
		Detail: fmt.Sprintf("stall fraction back to baseline %s after fault end (limit %s)", lag, c.within),
	}
}

package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fleet"
)

// testSystem builds a small running deployment with warmed-up RLive
// clients (candidates cached, subscriptions established).
func testSystem(seed uint64, mode client.Mode) *core.System {
	s := core.NewSystem(core.Config{
		Seed:           seed,
		NumDedicated:   1,
		NumBestEffort:  16,
		Mode:           mode,
		ChurnEnabled:   true,
		LifespanMedian: 5 * time.Minute,
	})
	s.Start()
	for i := 0; i < 4; i++ {
		s.AddClient(core.ClientSpec{Region: i % 2, ISP: i % 2})
		s.Run(500 * time.Millisecond)
	}
	s.Run(5 * time.Second)
	return s
}

// TestSchedulerOutageContinuity is the acceptance drill in miniature: the
// scheduler goes fully dark mid-run, and RLive clients must keep playing
// on last-known-good candidates the entire time.
func TestSchedulerOutageContinuity(t *testing.T) {
	sc := Scenario{
		Name: "scheduler-outage",
		Events: []Event{
			{Kind: SchedulerOutage, Start: 2 * time.Second, Duration: 15 * time.Second},
		},
		Tail:          8 * time.Second,
		ContinuityMin: 0.6,
	}
	sys := testSystem(1, client.ModeRLive)
	rep := Run(sys, sc, nil)

	if rep.OutageDropped == 0 {
		t.Fatal("no control-plane messages dropped: outage did not engage")
	}
	if len(rep.Verdicts) != 4 {
		t.Fatalf("verdicts = %d, want 4", len(rep.Verdicts))
	}
	cont := rep.Verdicts[0]
	if cont.Name != "data-plane-continuity" {
		t.Fatalf("first verdict = %q", cont.Name)
	}
	if !cont.Pass {
		t.Fatalf("data-plane-continuity failed during scheduler outage: %s", cont.Detail)
	}
	if !strings.Contains(rep.String(), "scheduler-outage start") {
		t.Fatalf("timeline missing outage start:\n%s", rep.String())
	}
}

// TestScenarioDeterminism: same seed, same scenario ⇒ byte-identical event
// timeline, QoE numbers, and invariant verdicts.
func TestScenarioDeterminism(t *testing.T) {
	sc := Scenario{
		Name: "determinism-mix",
		Events: []Event{
			{Kind: SchedulerOutage, Start: 2 * time.Second, Duration: 8 * time.Second},
			{Kind: ChurnStorm, Start: 3 * time.Second, Duration: 6 * time.Second, Severity: 0.5},
			{Kind: DegradationWave, Start: 4 * time.Second, Duration: 8 * time.Second,
				Region: -1, Severity: 0.05, ExtraOWD: 80 * time.Millisecond},
		},
		Tail: 6 * time.Second,
	}
	// A bitrate ladder and a tight origin make this cover the multi-variant
	// paths (several streams hosted per CDN node, ABR switches, parked
	// chain merges) where map-iteration order once leaked into runs.
	render := func() string {
		sys := core.NewSystem(core.Config{
			Seed:               7,
			NumDedicated:       1,
			NumBestEffort:      16,
			Mode:               client.ModeRLive,
			ABRLadder:          []float64{0.8e6, 1.2e6, 2.0e6, 3.0e6},
			DedicatedUplinkBps: 2.9e6 * 4,
			ChurnEnabled:       true,
			LifespanMedian:     5 * time.Minute,
		})
		sys.Start()
		for i := 0; i < 4; i++ {
			sys.AddClient(core.ClientSpec{Region: i % 2, ISP: i % 2})
			sys.Run(500 * time.Millisecond)
		}
		sys.Run(5 * time.Second)
		rep := Run(sys, sc, nil)
		return fmt.Sprintf("%s|rebuf=%v stall=%v bitrate=%v e2e=%v dropped=%d rec=%+v",
			rep.String(), rep.RebufPer100, rep.StallPer100, rep.BitrateBps,
			rep.E2EP50Ms, rep.OutageDropped, rep.Recovery)
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed produced different runs:\n--- run A\n%s\n--- run B\n%s", a, b)
	}
}

func TestRegionBlackoutTakesNodesDownAndRestores(t *testing.T) {
	sys := testSystem(3, client.ModeRLive)
	sc := Scenario{
		Name: "blackout",
		Events: []Event{
			{Kind: RegionBlackout, Start: time.Second, Duration: 5 * time.Second, Region: 0},
		},
		Tail: 2 * time.Second,
	}
	inj := NewInjector(sys, sc)
	inj.Schedule(sc)

	inRegion := func() (online, total int) {
		for _, n := range sys.Fleet.BestEffort {
			if n.Region != 0 {
				continue
			}
			total++
			if sys.Net.Online(n.Addr) {
				online++
			}
		}
		return
	}
	sys.Run(3 * time.Second) // inside the blackout window
	online, total := inRegion()
	if total == 0 {
		t.Skip("no best-effort nodes landed in region 0")
	}
	if online != 0 {
		t.Fatalf("%d/%d region-0 nodes still online during blackout", online, total)
	}
	sys.Run(5 * time.Second) // past the window
	online, _ = inRegion()
	if online == 0 {
		t.Fatal("no region-0 nodes restored after blackout")
	}
}

func TestRegionPartitionSparesBackbone(t *testing.T) {
	sys := testSystem(5, client.ModeRLive)
	sc := Scenario{
		Name: "partition",
		Events: []Event{
			{Kind: RegionPartition, Start: 0, Duration: 10 * time.Second, Region: 0, RegionB: 1},
		},
		Tail: time.Second,
	}
	inj := NewInjector(sys, sc)
	inj.Schedule(sc)
	sys.Run(time.Second) // partition active

	var r0, r1 *fleet.Node
	for _, n := range sys.Fleet.BestEffort {
		if n.Region == 0 && r0 == nil {
			r0 = n
		}
		if n.Region == 1 && r1 == nil {
			r1 = n
		}
	}
	if r0 == nil || r1 == nil {
		t.Skip("fleet draw left a region empty")
	}
	if !sys.Net.Blocked(r0.Addr, r1.Addr) {
		t.Fatal("cross-region best-effort pair not blocked during partition")
	}
	ded := sys.Fleet.Dedicated[0].Addr
	if sys.Net.Blocked(ded, r1.Addr) || sys.Net.Blocked(r0.Addr, ded) {
		t.Fatal("CDN backbone path blocked by an access-region partition")
	}
	sys.Run(12 * time.Second) // partition lifted
	if sys.Net.Blocked(r0.Addr, r1.Addr) {
		t.Fatal("partition still active after its window")
	}
}

func TestOriginSaturationRestoresCapacity(t *testing.T) {
	sys := testSystem(9, client.ModeRLive)
	ded := sys.Fleet.Dedicated[0].Addr
	before, _ := sys.Net.State(ded)
	sc := Scenario{
		Name: "saturation",
		Events: []Event{
			{Kind: OriginSaturation, Start: 0, Duration: 3 * time.Second, Severity: 0.25},
		},
		Tail: time.Second,
	}
	inj := NewInjector(sys, sc)
	inj.Schedule(sc)
	sys.Run(time.Second)
	during, _ := sys.Net.State(ded)
	if during.UplinkBps >= before.UplinkBps {
		t.Fatalf("uplink not squeezed: %v -> %v", before.UplinkBps, during.UplinkBps)
	}
	sys.Run(5 * time.Second)
	after, _ := sys.Net.State(ded)
	if after.UplinkBps != before.UplinkBps {
		t.Fatalf("uplink not restored: %v != %v", after.UplinkBps, before.UplinkBps)
	}
}

func TestCatalogScenariosWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range Catalog() {
		if sc.Name == "" || len(sc.Events) == 0 {
			t.Fatalf("malformed scenario: %+v", sc)
		}
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if _, end := sc.Span(); sc.Total() <= end {
			sc.applyDefaults()
			if _, end := sc.Span(); sc.Total() <= end {
				t.Fatalf("%s: no tail to observe recovery", sc.Name)
			}
		}
	}
	// The headline drill keeps its 60 s outage at any experiment scale.
	so := SchedulerOutageScenario()
	if so.Events[0].Duration != 60*time.Second {
		t.Fatalf("scheduler outage duration = %v, want 60s", so.Events[0].Duration)
	}
}

func TestFaultWindows(t *testing.T) {
	// A multi-fault scenario with unordered, overlapping events: windows
	// come back sorted by (start, end, kind) and the span is the envelope.
	sc := Scenario{
		Name: "multi",
		Events: []Event{
			{Kind: OriginSaturation, Start: 40 * time.Second, Duration: 20 * time.Second, Severity: 0.25},
			{Kind: RegionBlackout, Start: 10 * time.Second, Duration: 40 * time.Second, Region: 1},
			{Kind: SchedulerOutage, Start: 10 * time.Second, Duration: 15 * time.Second},
			{Kind: NATFlap, Start: 70 * time.Second}, // instantaneous
		},
	}
	ws := sc.FaultWindows()
	if len(ws) != 4 {
		t.Fatalf("got %d windows, want 4", len(ws))
	}
	wantOrder := []Kind{SchedulerOutage, RegionBlackout, OriginSaturation, NATFlap}
	for i, k := range wantOrder {
		if ws[i].Kind != k {
			t.Fatalf("window %d kind = %s, want %s (order %v)", i, ws[i].Kind, k, ws)
		}
	}
	if ws[1].Region != 1 {
		t.Fatalf("blackout window region = %d, want 1", ws[1].Region)
	}
	if ws[0].Region != -1 || ws[2].Region != -1 {
		t.Fatal("non-regional faults must report region -1")
	}
	if ws[3].Start != ws[3].End {
		t.Fatalf("instantaneous event window = %v, want zero duration", ws[3])
	}
	start, end := sc.Span()
	if start != 10*time.Second || end != 70*time.Second {
		t.Fatalf("span = [%v, %v], want [10s, 70s]", start, end)
	}

	// The rolling degradation wave: one window covering the whole sweep,
	// fleet-wide scope.
	dw := DegradationWaveScenario()
	ws = dw.FaultWindows()
	if len(ws) != 1 {
		t.Fatalf("degradation wave: %d windows, want 1", len(ws))
	}
	if ws[0].Region != -1 {
		t.Fatalf("rolling wave region = %d, want -1 (fleet-wide)", ws[0].Region)
	}
	if ws[0].Start != 20*time.Second || ws[0].End != 68*time.Second {
		t.Fatalf("rolling wave window = %v", ws[0])
	}

	// Every catalog scenario's windows agree with its span and total.
	for _, sc := range Catalog() {
		ws := sc.FaultWindows()
		if len(ws) == 0 {
			t.Fatalf("%s: no fault windows", sc.Name)
		}
		start, end := sc.Span()
		if ws[0].Start != start {
			t.Fatalf("%s: first window start %v != span start %v", sc.Name, ws[0].Start, start)
		}
		var last time.Duration
		for _, w := range ws {
			if w.End > last {
				last = w.End
			}
		}
		if last != end {
			t.Fatalf("%s: max window end %v != span end %v", sc.Name, last, end)
		}
	}

	// No events: empty windows, zero span.
	var empty Scenario
	if len(empty.FaultWindows()) != 0 {
		t.Fatal("empty scenario produced windows")
	}
	if s, e := empty.Span(); s != 0 || e != 0 {
		t.Fatalf("empty span = [%v, %v]", s, e)
	}
}

func TestEscalationCheckerViolation(t *testing.T) {
	// Drive the checker directly with a synthetic counter sequence: a
	// NACK with no dedicated fetch must trip the deadline.
	sys := testSystem(11, client.ModeRLive)
	c := &escalationChecker{deadline: 2 * time.Second}
	// Tick 1: baseline.
	c.Sample(sys, time.Second)
	// Fake an outstanding NACK with no escalation (the real path
	// increments both counters together, so force the pending state).
	c.pending = true
	c.pendingSince = time.Second
	c.Sample(sys, 5*time.Second) // deadline blown, no fetch progress
	v := c.Verdict(sys)
	if v.Pass {
		t.Fatal("escalation checker passed despite unanswered NACK")
	}
}

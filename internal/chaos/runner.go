package chaos

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

// Report is the outcome of one scenario run on one system.
type Report struct {
	Scenario string
	Timeline []string
	Verdicts []Verdict

	// Headline QoE over the whole run.
	RebufPer100   float64
	StallPer100   float64
	BitrateBps    float64
	E2EP50Ms      float64
	OutageDropped uint64
	Recovery      core.RecoveryCounters
}

// Pass reports whether every invariant held.
func (r *Report) Pass() bool {
	for _, v := range r.Verdicts {
		if !v.Pass {
			return false
		}
	}
	return true
}

// String renders the report: timeline, verdicts, QoE.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s\n", r.Scenario)
	for _, l := range r.Timeline {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	for _, v := range r.Verdicts {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	fmt.Fprintf(&b, "  rebuf/100s=%.2f stall/100s=%.0fms bitrate=%.2fMbps e2eP50=%.0fms\n",
		r.RebufPer100, r.StallPer100, r.BitrateBps/1e6, r.E2EP50Ms)
	return b.String()
}

// Run injects the scenario into sys and drives the simulation to the
// scenario's end in one-second ticks, sampling every checker at each tick.
// Call after the system has been started and clients added (warm-up
// belongs to the caller; event offsets are relative to this call). Pass
// nil checkers to use the scenario's default invariant suite.
func Run(sys *core.System, sc Scenario, checkers []Checker) *Report {
	sc.applyDefaults()
	if checkers == nil {
		checkers = sc.Checkers()
	}
	inj := NewInjector(sys, sc)
	inj.Schedule(sc)

	start := sys.Sim.Now()
	total := sc.Total()
	tick := time.Second
	for elapsed := tick; elapsed <= total; elapsed += tick {
		sys.Sim.Run(start + simnet.Time(elapsed))
		for _, c := range checkers {
			c.Sample(sys, elapsed)
		}
	}

	agg := sys.Aggregate()
	rep := &Report{
		Scenario:      sc.Name,
		Timeline:      inj.Timeline,
		RebufPer100:   agg.Rebuffer.Mean(),
		StallPer100:   agg.StallTime.Mean(),
		BitrateBps:    agg.Bitrate.Mean(),
		E2EP50Ms:      agg.E2EMs.Percentile(50),
		OutageDropped: sys.SchedSvc.DroppedMsgs(),
		Recovery:      sys.Recovery(),
	}
	for _, c := range checkers {
		rep.Verdicts = append(rep.Verdicts, c.Verdict(sys))
	}
	return rep
}

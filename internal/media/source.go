package media

import (
	"math"
	"time"

	"repro/internal/stats"
)

// Ladder is a bitrate ladder in bits per second, ordered low to high. The
// default matches common mobile live-streaming rungs.
var DefaultLadder = []float64{0.8e6, 1.2e6, 2.0e6, 3.0e6, 4.5e6}

// SourceConfig parameterizes a synthetic live source.
type SourceConfig struct {
	Stream StreamID
	// FPS is frames per second (default 30).
	FPS int
	// GoPFrames is the number of frames per group of pictures; the first
	// frame of each GoP is an I-frame (default 60, i.e. a 2 s GoP).
	GoPFrames int
	// BitrateBps is the target encoding bitrate in bits per second.
	BitrateBps float64
	// IFrameRatio is the mean size of an I-frame relative to a P-frame
	// (default 6).
	IFrameRatio float64
	// SizeJitterSigma is the lognormal sigma applied to frame sizes
	// (default 0.25); real encoders produce bursty frame sizes, which is
	// exactly what makes naive round-robin substream partitioning bursty
	// (motivating the FNV-1a hash, §6).
	SizeJitterSigma float64
}

func (c *SourceConfig) setDefaults() {
	if c.FPS == 0 {
		c.FPS = 30
	}
	if c.GoPFrames == 0 {
		c.GoPFrames = 60
	}
	if c.BitrateBps == 0 {
		c.BitrateBps = 2.0e6
	}
	if c.IFrameRatio == 0 {
		c.IFrameRatio = 6
	}
	if c.SizeJitterSigma == 0 {
		c.SizeJitterSigma = 0.25
	}
}

// Source generates the frame sequence of one live stream deterministically.
// It is driven by whoever owns the clock (the simulator or a wall-clock
// ticker in the real-network path).
type Source struct {
	cfg      SourceConfig
	rng      *stats.RNG
	next     uint32 // next frame seq
	pMean    float64
	iMean    float64
	interval time.Duration
}

// NewSource returns a source emitting cfg.FPS frames per second.
func NewSource(cfg SourceConfig, rng *stats.RNG) *Source {
	cfg.setDefaults()
	// Solve per-frame mean sizes so that one GoP hits the target bitrate:
	// (iMean + (G-1)*pMean) * 8 * FPS / G = bitrate, iMean = ratio*pMean.
	g := float64(cfg.GoPFrames)
	bytesPerGoP := cfg.BitrateBps / 8 * g / float64(cfg.FPS)
	pMean := bytesPerGoP / (cfg.IFrameRatio + g - 1)
	return &Source{
		cfg:      cfg,
		rng:      rng,
		pMean:    pMean,
		iMean:    cfg.IFrameRatio * pMean,
		interval: time.Second / time.Duration(cfg.FPS),
	}
}

// Interval returns the inter-frame interval.
func (s *Source) Interval() time.Duration { return s.interval }

// Config returns the source configuration (with defaults applied).
func (s *Source) Config() SourceConfig { return s.cfg }

// Next produces the next frame. now is the generation timestamp in
// simulation nanoseconds.
func (s *Source) Next(now int64) Frame {
	seq := s.next
	s.next++
	typ := FrameP
	mean := s.pMean
	if int(seq)%s.cfg.GoPFrames == 0 {
		typ = FrameI
		mean = s.iMean
	}
	// Lognormal jitter with mean preserved: E[exp(N(mu, sigma))] = mean
	// requires mu = ln(mean) - sigma^2/2.
	sigma := s.cfg.SizeJitterSigma
	size := s.rng.LogNormal(math.Log(mean)-sigma*sigma/2, sigma)
	if size < 64 {
		size = 64
	}
	dts := uint64(seq) * uint64(s.interval/time.Millisecond)
	return Frame{
		Header: Header{
			Stream: s.cfg.Stream,
			Dts:    dts,
			Type:   typ,
			Size:   uint32(size),
			Seq:    seq,
		},
		GeneratedAt: now,
	}
}

// FramesGenerated returns how many frames this source has emitted.
func (s *Source) FramesGenerated() uint32 { return s.next }

// LadderRung returns the index of the highest ladder rung <= bps, or 0.
func LadderRung(ladder []float64, bps float64) int {
	best := 0
	for i, r := range ladder {
		if r <= bps {
			best = i
		}
	}
	return best
}

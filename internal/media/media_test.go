package media

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stats"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Stream: 7, Dts: 123456789, Type: FrameI, Size: 98765, Seq: 41}
	b := h.Marshal()
	got, err := UnmarshalHeader(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(stream uint32, dts uint64, typ bool, size uint32, seq uint16) bool {
		h := Header{Stream: StreamID(stream), Dts: dts, Type: FrameP, Size: size, Seq: uint32(seq)}
		if typ {
			h.Type = FrameI
		}
		b := h.Marshal()
		got, err := UnmarshalHeader(b[:])
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalHeaderShort(t *testing.T) {
	if _, err := UnmarshalHeader(make([]byte, HeaderSize-1)); err == nil {
		t.Fatal("expected error for short header")
	}
}

func TestFrameTypeString(t *testing.T) {
	if FrameI.String() != "I" || FrameP.String() != "P" {
		t.Fatal("frame type strings wrong")
	}
}

func TestSourceGoPStructure(t *testing.T) {
	src := NewSource(SourceConfig{Stream: 1, FPS: 30, GoPFrames: 30}, stats.NewRNG(1))
	for i := 0; i < 90; i++ {
		f := src.Next(0)
		wantKey := i%30 == 0
		if f.IsKey() != wantKey {
			t.Fatalf("frame %d key=%v, want %v", i, f.IsKey(), wantKey)
		}
		if f.Seq != uint32(i) {
			t.Fatalf("frame %d seq=%d", i, f.Seq)
		}
	}
}

func TestSourceDtsSpacing(t *testing.T) {
	src := NewSource(SourceConfig{Stream: 1, FPS: 25}, stats.NewRNG(1))
	prev := src.Next(0)
	for i := 0; i < 50; i++ {
		f := src.Next(0)
		if f.Dts-prev.Dts != 40 {
			t.Fatalf("dts spacing = %d ms, want 40", f.Dts-prev.Dts)
		}
		prev = f
	}
}

func TestSourceBitrateCalibration(t *testing.T) {
	const target = 2.0e6
	src := NewSource(SourceConfig{Stream: 1, BitrateBps: target}, stats.NewRNG(2))
	var bytes float64
	const secs = 60
	n := 30 * secs
	for i := 0; i < n; i++ {
		bytes += float64(src.Next(0).Size)
	}
	got := bytes * 8 / secs
	if math.Abs(got-target)/target > 0.10 {
		t.Fatalf("achieved bitrate %.0f bps, want within 10%% of %.0f", got, target)
	}
}

func TestSourceIFramesLarger(t *testing.T) {
	src := NewSource(SourceConfig{Stream: 1}, stats.NewRNG(3))
	var iSum, pSum float64
	var iN, pN int
	for i := 0; i < 600; i++ {
		f := src.Next(0)
		if f.IsKey() {
			iSum += float64(f.Size)
			iN++
		} else {
			pSum += float64(f.Size)
			pN++
		}
	}
	iMean, pMean := iSum/float64(iN), pSum/float64(pN)
	if iMean < 3*pMean {
		t.Fatalf("I-frame mean %.0f not much larger than P-frame mean %.0f", iMean, pMean)
	}
}

func TestSourceInterval(t *testing.T) {
	src := NewSource(SourceConfig{Stream: 1, FPS: 30}, stats.NewRNG(1))
	if src.Interval() != time.Second/30 {
		t.Fatalf("interval = %v", src.Interval())
	}
}

func TestSourceMinFrameSize(t *testing.T) {
	src := NewSource(SourceConfig{Stream: 1, BitrateBps: 1000}, stats.NewRNG(4))
	for i := 0; i < 100; i++ {
		if f := src.Next(0); f.Size < 64 {
			t.Fatalf("frame size %d below floor", f.Size)
		}
	}
}

func TestPartitionerUniformity(t *testing.T) {
	p := Partitioner{K: 4}
	counts := make([]int, 4)
	for dts := uint64(0); dts < 4000; dts += 33 {
		counts[p.Assign(dts)]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	for i, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.15 || frac > 0.35 {
			t.Fatalf("substream %d got %.2f of frames, want ~0.25", i, frac)
		}
	}
}

func TestPartitionerDeterministic(t *testing.T) {
	p := Partitioner{K: 8}
	for dts := uint64(0); dts < 1000; dts += 7 {
		if p.Assign(dts) != p.Assign(dts) {
			t.Fatal("assignment not deterministic")
		}
	}
}

func TestPartitionerK1(t *testing.T) {
	p := Partitioner{K: 1}
	for dts := uint64(0); dts < 100; dts++ {
		if p.Assign(dts) != 0 {
			t.Fatal("K=1 must always assign substream 0")
		}
	}
}

func TestPartitionerPlainModulo(t *testing.T) {
	p := Partitioner{K: 4, PlainModulo: true}
	if p.Assign(7) != 3 || p.Assign(8) != 0 {
		t.Fatal("plain modulo wrong")
	}
}

// FNV-1a should break up runs: consecutive dts values (spaced by the frame
// interval) should rarely map to the same substream many times in a row.
func TestPartitionerBreaksRuns(t *testing.T) {
	p := Partitioner{K: 4}
	longestRun, run := 0, 0
	var prev SubstreamID = 255
	for i := 0; i < 3000; i++ {
		ss := p.Assign(uint64(i) * 33)
		if ss == prev {
			run++
		} else {
			run = 1
			prev = ss
		}
		if run > longestRun {
			longestRun = run
		}
	}
	if longestRun > 12 {
		t.Fatalf("longest same-substream run = %d, hash not mixing", longestRun)
	}
}

func TestLadderRung(t *testing.T) {
	cases := []struct {
		bps  float64
		want int
	}{
		{0, 0}, {0.9e6, 0}, {1.3e6, 1}, {5e6, 4}, {3.0e6, 3},
	}
	for _, c := range cases {
		if got := LadderRung(DefaultLadder, c.bps); got != c.want {
			t.Errorf("LadderRung(%v) = %d, want %d", c.bps, got, c.want)
		}
	}
}

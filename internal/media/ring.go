package media

// FrameRing retains the most recent frames of one stream in a fixed-size
// circular buffer — the dts-indexed recovery window (§6) without per-frame
// map and order-slice churn. Frames must be pushed in increasing dts order,
// which Push relies on for Get's binary search.
type FrameRing struct {
	slots []Frame
	head  int // next write index
	n     int // live frames
}

// NewFrameRing returns a ring retaining up to capacity frames.
func NewFrameRing(capacity int) *FrameRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &FrameRing{slots: make([]Frame, capacity)}
}

// Len returns the number of live frames.
func (r *FrameRing) Len() int { return r.n }

// Cap returns the ring capacity.
func (r *FrameRing) Cap() int { return len(r.slots) }

// Push appends the newest frame, evicting the oldest at capacity.
func (r *FrameRing) Push(f Frame) {
	r.slots[r.head] = f
	r.head = (r.head + 1) % len(r.slots)
	if r.n < len(r.slots) {
		r.n++
	}
}

// at returns the i-th live frame, oldest first. Callers guarantee
// 0 <= i < r.n.
func (r *FrameRing) at(i int) *Frame {
	return &r.slots[(r.head-r.n+i+len(r.slots))%len(r.slots)]
}

// At returns the i-th live frame oldest-first, and whether it exists.
func (r *FrameRing) At(i int) (Frame, bool) {
	if i < 0 || i >= r.n {
		return Frame{}, false
	}
	return *r.at(i), true
}

// Get returns the frame with the given dts, using binary search over the
// dts-ordered live window.
func (r *FrameRing) Get(dts uint64) (Frame, bool) {
	lo, hi := 0, r.n-1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		f := r.at(mid)
		switch {
		case f.Header.Dts == dts:
			return *f, true
		case f.Header.Dts < dts:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return Frame{}, false
}

package media

// SubstreamID identifies one of the K substreams a stream is split into.
type SubstreamID uint8

// Partitioner assigns frames to substreams. RLive adopts a static
// round-robin partition keyed by the dts field so that every node and the
// client agree on the assignment without coordination (§6):
//
//	ssid(f) = Hash(dts(f)) mod K
//
// The FNV-1a hash decorrelates the assignment from dts arithmetic so that
// runs of consecutive large frames do not land on one substream and cause
// bursty traffic on a single best-effort uplink.
type Partitioner struct {
	K int
	// PlainModulo disables the hash (ssid = dts/frameInterval mod K) and
	// exists for the abl-hash ablation showing why FNV-1a is used.
	PlainModulo bool
}

// fnv1a64 hashes the 8 dts bytes with FNV-1a.
func fnv1a64(x uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime
		x >>= 8
	}
	return h
}

// Assign returns the substream for a frame with the given dts.
func (p Partitioner) Assign(dts uint64) SubstreamID {
	if p.K <= 1 {
		return 0
	}
	if p.PlainModulo {
		return SubstreamID(dts % uint64(p.K))
	}
	return SubstreamID(fnv1a64(dts) % uint64(p.K))
}

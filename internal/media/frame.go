// Package media models the live video content that RLive delivers: frames
// (standing in for H.264/H.265 NALUs — the paper treats one NALU as one
// frame), GoP-structured synthetic sources with realistic size distributions,
// a bitrate ladder for ABR, and the compact binary frame header that the
// distributed sequencing algorithm fingerprints.
package media

import (
	"encoding/binary"
	"fmt"
)

// StreamID identifies one live stream.
type StreamID uint32

// FrameType distinguishes frame roles in the GoP; the recovery policy
// assigns a much higher loss risk to I-frames because losing one makes every
// dependent frame in the GoP undecodable.
type FrameType uint8

const (
	// FrameI is an intra-coded (key) frame.
	FrameI FrameType = iota
	// FrameP is a predicted frame referencing earlier frames.
	FrameP
)

// String returns "I" or "P".
func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// HeaderSize is the encoded size of a Header in bytes.
const HeaderSize = 19

// Header is the frame metadata carried by the CDN's header-only side channel
// and hashed into frame footprints. It deliberately excludes the payload:
// footprints over headers alone let a best-effort node sequence frames of
// substreams it does not pull (§5.2).
type Header struct {
	Stream StreamID
	// Dts is the decoding timestamp in milliseconds since stream start.
	// FLV and fMP4 carry dts natively; it is the only ordering hint
	// mainstream live protocols provide.
	Dts uint64
	// Type is the frame type (I or P).
	Type FrameType
	// Size is the payload size in bytes.
	Size uint32
	// Seq is the source-side frame index. It exists for bookkeeping and
	// validation in the reproduction; RLive's sequencing deliberately
	// never transmits it to clients (mainstream protocols lack it, §2.4).
	Seq uint32
}

// Marshal encodes the header into a fixed 19-byte representation.
func (h Header) Marshal() [HeaderSize]byte {
	var b [HeaderSize]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(h.Stream))
	binary.BigEndian.PutUint64(b[4:12], h.Dts)
	b[12] = byte(h.Type)
	binary.BigEndian.PutUint32(b[13:17], h.Size)
	binary.BigEndian.PutUint16(b[17:19], uint16(h.Seq)) // low 16 bits: wire hint only
	return b
}

// UnmarshalHeader decodes a header from b.
func UnmarshalHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("media: header too short: %d bytes", len(b))
	}
	return Header{
		Stream: StreamID(binary.BigEndian.Uint32(b[0:4])),
		Dts:    binary.BigEndian.Uint64(b[4:12]),
		Type:   FrameType(b[12]),
		Size:   binary.BigEndian.Uint32(b[13:17]),
		Seq:    uint32(binary.BigEndian.Uint16(b[17:19])),
	}, nil
}

// Frame is one deliverable unit: a header plus (synthetic) payload size.
// The reproduction does not materialize payload bytes for simulated
// delivery — only sizes matter to the transport and QoE models — but the
// real-network path (internal/livenet) fills Data.
type Frame struct {
	Header
	// Data is the payload. nil in simulation (Size still set); populated
	// on the real-network path.
	Data []byte
	// GeneratedAt is the source generation time in nanoseconds of
	// simulation time, used to measure end-to-end latency.
	GeneratedAt int64
}

// IsKey reports whether the frame is an I-frame.
func (f *Frame) IsKey() bool { return f.Type == FrameI }

// Package cdn implements the dedicated CDN node: the origin of live frames
// and the reliable anchor of RLive's data plane. Per §6 the required CDN
// changes are deliberately minimal: forwarding full streams and substreams
// (plus a header-only side channel for sequencing), and dts-indexed frame
// recovery.
package cdn

import (
	"time"

	"repro/internal/media"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transport"
)

// subscription modes per subscriber.
type subMode struct {
	fullStream  bool
	substream   media.SubstreamID
	wantHeaders bool
}

// streamState is the per-stream origin state on this node.
type streamState struct {
	source *media.Source
	part   media.Partitioner
	// recent retains the last retainFrames frames for dts-indexed recovery.
	recent *media.FrameRing
	// subscribers maps subscriber address to its delivery mode(s). A
	// subscriber can hold several substream subscriptions (clients doing
	// substream switchback), hence the slice. subOrder mirrors the map in
	// arrival order: fan-out iterates it so jitter/loss draws — and thus
	// whole simulation runs — stay deterministic.
	subscribers map[simnet.Addr][]subMode
	subOrder    []simnet.Addr
	running     bool
}

// Node is one dedicated CDN node.
type Node struct {
	Addr simnet.Addr

	sim *simnet.Sim
	net *simnet.Network
	rng *stats.RNG

	streams map[media.StreamID]*streamState
	// streamOrder mirrors streams in HostStream order: Start registers the
	// per-stream frame generators by iterating it, so ticker registration
	// order — and with it the fan-out interleaving of same-instant frames
	// across variant streams — is deterministic instead of map-ordered.
	streamOrder  []media.StreamID
	retainFrames int
	// records recycles the CDNFrame messages this node pushes; one shared
	// record serves a whole fan-out (each Send retains a reference).
	records transport.RecordPool

	// Stats.
	FramesServed   uint64
	HeadersServed  uint64
	RecoveryServed uint64
	RecoveryMissed uint64

	// tr records frame-lifecycle events; nil disables tracing.
	tr *trace.Buf
}

// SetTrace attaches (or detaches, with nil) a frame-lifecycle trace buffer.
func (n *Node) SetTrace(b *trace.Buf) { n.tr = b }

// New returns a CDN node bound to addr. Call net.SetHandler(addr,
// node.Handle) (done by core.System) to receive messages.
func New(addr simnet.Addr, sim *simnet.Sim, net *simnet.Network, rng *stats.RNG) *Node {
	return &Node{
		Addr:         addr,
		sim:          sim,
		net:          net,
		rng:          rng,
		streams:      make(map[media.StreamID]*streamState),
		retainFrames: 600, // 20 s at 30 fps
	}
}

// HostStream makes this node the origin for a stream, generating frames at
// the source rate once started. K is the substream count for partitioning.
func (n *Node) HostStream(cfg media.SourceConfig, k int) {
	st := &streamState{
		source:      media.NewSource(cfg, n.rng.Fork()),
		part:        media.Partitioner{K: k},
		recent:      media.NewFrameRing(n.retainFrames),
		subscribers: make(map[simnet.Addr][]subMode),
	}
	if _, exists := n.streams[cfg.Stream]; !exists {
		n.streamOrder = append(n.streamOrder, cfg.Stream)
	}
	n.streams[cfg.Stream] = st
}

// Start begins frame generation for all hosted streams.
func (n *Node) Start() {
	for _, id := range n.streamOrder {
		st := n.streams[id]
		if st.running {
			continue
		}
		st.running = true
		id, st := id, st
		n.sim.Every(st.source.Interval(), func() bool {
			n.generate(id, st)
			return st.running
		})
	}
}

// Stop halts frame generation (ends the live broadcasts).
func (n *Node) Stop() {
	for _, st := range n.streams {
		st.running = false
	}
}

// generate emits the next frame of a stream and fans it out. One pooled
// full-frame record and one header record are shared across the whole
// fan-out — each Send retains its own reference — so the per-(frame,
// subscriber) message allocation disappears while the Send order, and with
// it every jitter/loss RNG draw, stays exactly as before.
func (n *Node) generate(id media.StreamID, st *streamState) {
	f := st.source.Next(int64(n.sim.Now()))
	if st.recent.Cap() != n.retainFrames {
		// retainFrames changed after HostStream (test knob): rebuild the
		// retention ring at the new width.
		st.recent = media.NewFrameRing(n.retainFrames)
	}
	st.recent.Push(f)
	ssid := st.part.Assign(f.Dts)
	n.tr.Rec(trace.KGenerated, uint32(id), f.Dts, uint64(ssid), uint64(f.Header.Size))
	var fullRec, hdrRec *transport.CDNFrame
	for _, addr := range st.subOrder {
		for _, m := range st.subscribers[addr] {
			switch {
			case m.fullStream, m.substream == ssid:
				if fullRec == nil {
					fullRec = n.record(f, true, false)
				}
				n.sendRecord(addr, fullRec)
			case m.wantHeaders:
				if hdrRec == nil {
					hdrRec = n.record(f, false, false)
				}
				n.sendRecord(addr, hdrRec)
			}
		}
	}
	if fullRec != nil {
		fullRec.PoolRelease()
	}
	if hdrRec != nil {
		hdrRec.PoolRelease()
	}
}

// record builds a pooled CDNFrame record, stamped with the stream's
// authoritative substream count. The caller owns one reference.
func (n *Node) record(f media.Frame, full, recovered bool) *transport.CDNFrame {
	k := 0
	if st, ok := n.streams[f.Header.Stream]; ok {
		k = st.part.K
	}
	msg := n.records.Get()
	msg.Header = f.Header
	msg.Full = full
	msg.GeneratedAt = f.GeneratedAt
	msg.Recovered = recovered
	msg.K = k
	return msg
}

// sendRecord pushes one record reference to a subscriber.
func (n *Node) sendRecord(to simnet.Addr, msg *transport.CDNFrame) {
	msg.Retain()
	n.net.Send(n.Addr, to, transport.WireSize(msg), msg)
	if msg.Full {
		n.FramesServed++
		var rec uint64
		if msg.Recovered {
			rec = 1
		}
		n.tr.Rec(trace.KCDNServe, uint32(msg.Header.Stream), msg.Header.Dts, uint64(to), rec)
	} else {
		n.HeadersServed++
	}
}

// sendFrame builds, sends, and releases a single-recipient record.
func (n *Node) sendFrame(to simnet.Addr, f media.Frame, full, recovered bool) {
	msg := n.record(f, full, recovered)
	n.sendRecord(to, msg)
	msg.PoolRelease()
}

// Trim releases oversized pool capacity at quiescent points.
func (n *Node) Trim() { n.records.Trim() }

// Handle processes inbound messages; register it as the node's handler.
func (n *Node) Handle(from simnet.Addr, msg any) {
	switch m := msg.(type) {
	case *transport.CDNSubscribeReq:
		n.subscribe(from, m)
	case *transport.CDNUnsubscribeReq:
		n.unsubscribe(from, m)
	case *transport.FrameReq:
		n.recoverFrame(from, m)
	case *transport.ProbeReq:
		resp := &transport.ProbeResp{Nonce: m.Nonce, Key: m.Key, Accepting: true}
		n.net.Send(n.Addr, from, transport.WireSize(resp), resp)
	}
}

func (n *Node) subscribe(from simnet.Addr, m *transport.CDNSubscribeReq) {
	st, ok := n.streams[m.Stream]
	if !ok {
		return
	}
	mode := subMode{fullStream: m.FullStream, substream: m.Substream, wantHeaders: m.WantHeaders}
	modes := st.subscribers[from]
	for _, ex := range modes {
		if ex == mode {
			return // idempotent
		}
	}
	if len(modes) == 0 {
		st.subOrder = append(st.subOrder, from)
	}
	st.subscribers[from] = append(modes, mode)
	// Warm-up: send the two most recent frame headers so the subscriber's
	// frame-chain context starts with true predecessors — footprints CRC
	// the current plus prior two headers, so a mid-stream joiner would
	// otherwise compute divergent footprints for its first frames.
	k := st.recent.Len() - 2
	if k < 0 {
		k = 0
	}
	for i := k; i < st.recent.Len(); i++ {
		if f, ok := st.recent.At(i); ok {
			n.sendFrame(from, f, false, false)
		}
	}
}

func (n *Node) unsubscribe(from simnet.Addr, m *transport.CDNUnsubscribeReq) {
	st, ok := n.streams[m.Stream]
	if !ok {
		return
	}
	modes := st.subscribers[from]
	kept := modes[:0]
	for _, ex := range modes {
		if ex.fullStream == m.FullStream && (m.FullStream || ex.substream == m.Substream) {
			continue
		}
		kept = append(kept, ex)
	}
	if len(kept) == 0 {
		delete(st.subscribers, from)
		for i, a := range st.subOrder {
			if a == from {
				st.subOrder = append(st.subOrder[:i], st.subOrder[i+1:]...)
				break
			}
		}
	} else {
		st.subscribers[from] = kept
	}
}

// recoverFrame serves a dts-indexed frame recovery request (§6). A miss
// (frame rotated out of the retention window) is counted but unanswered;
// the client's deadline machinery handles it.
func (n *Node) recoverFrame(from simnet.Addr, m *transport.FrameReq) {
	st, ok := n.streams[m.Stream]
	if !ok {
		n.RecoveryMissed++
		n.tr.Rec(trace.KCDNRecoveryMiss, uint32(m.Stream), m.Dts, uint64(from), 0)
		return
	}
	f, ok := st.recent.Get(m.Dts)
	if !ok {
		n.RecoveryMissed++
		n.tr.Rec(trace.KCDNRecoveryMiss, uint32(m.Stream), m.Dts, uint64(from), 0)
		return
	}
	n.RecoveryServed++
	n.sendFrame(from, f, true, true)
}

// Subscribers returns the subscriber count for a stream (testing/metrics).
func (n *Node) Subscribers(id media.StreamID) int {
	st, ok := n.streams[id]
	if !ok {
		return 0
	}
	return len(st.subscribers)
}

// HostsStream reports whether this node originates the stream.
func (n *Node) HostsStream(id media.StreamID) bool {
	_, ok := n.streams[id]
	return ok
}

// Partitioner returns the substream partitioner for a hosted stream.
func (n *Node) Partitioner(id media.StreamID) (media.Partitioner, bool) {
	st, ok := n.streams[id]
	if !ok {
		return media.Partitioner{}, false
	}
	return st.part, true
}

// FrameInterval returns the frame interval of a hosted stream.
func (n *Node) FrameInterval(id media.StreamID) (time.Duration, bool) {
	st, ok := n.streams[id]
	if !ok {
		return 0, false
	}
	return st.source.Interval(), true
}

// SchedulerKey builds the SubstreamKey for a stream/substream pair.
func SchedulerKey(id media.StreamID, ss media.SubstreamID) scheduler.SubstreamKey {
	return scheduler.SubstreamKey{Stream: id, Substream: ss}
}

package cdn

import (
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
)

type harness struct {
	sim  *simnet.Sim
	net  *simnet.Network
	node *Node
	// inbox collects messages arriving at the client address.
	inbox []any
}

const clientAddr = simnet.Addr(5000)

func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{sim: simnet.NewSim()}
	rng := stats.NewRNG(1)
	h.net = simnet.NewNetwork(h.sim, rng.Fork())
	h.net.Register(1000, simnet.LinkState{UplinkBps: 10e9, BaseOWD: time.Millisecond}, nil)
	h.net.Register(clientAddr, simnet.LinkState{UplinkBps: 100e6, BaseOWD: time.Millisecond},
		func(from simnet.Addr, msg any) {
			// Messages are recycled after the handler returns; snapshot
			// pooled records instead of retaining the live pointer.
			if f, ok := msg.(*transport.CDNFrame); ok {
				cp := *f
				msg = &cp
			}
			h.inbox = append(h.inbox, msg)
		})
	h.node = New(1000, h.sim, h.net, rng)
	h.net.SetHandler(1000, h.node.Handle)
	h.node.HostStream(media.SourceConfig{Stream: 1, FPS: 30}, 4)
	return h
}

func (h *harness) send(msg any) {
	h.net.Send(clientAddr, 1000, transport.WireSize(msg), msg)
}

func (h *harness) frames() []*transport.CDNFrame {
	var out []*transport.CDNFrame
	for _, m := range h.inbox {
		if f, ok := m.(*transport.CDNFrame); ok {
			out = append(out, f)
		}
	}
	return out
}

func TestFullStreamSubscription(t *testing.T) {
	h := newHarness(t)
	h.send(&transport.CDNSubscribeReq{Stream: 1, FullStream: true})
	h.node.Start()
	h.sim.Run(time.Second)
	fs := h.frames()
	if len(fs) < 25 || len(fs) > 31 {
		t.Fatalf("frames in 1s at 30fps = %d", len(fs))
	}
	for _, f := range fs {
		if !f.Full {
			t.Fatal("full-stream subscriber got header-only record")
		}
	}
	// Dts must be increasing.
	for i := 1; i < len(fs); i++ {
		if fs[i].Header.Dts <= fs[i-1].Header.Dts {
			t.Fatal("frames out of order from CDN")
		}
	}
}

func TestSubstreamWithHeaders(t *testing.T) {
	h := newHarness(t)
	h.send(&transport.CDNSubscribeReq{Stream: 1, Substream: 2, WantHeaders: true})
	h.node.Start()
	h.sim.Run(2 * time.Second)
	part, _ := h.node.Partitioner(1)
	full, hdr := 0, 0
	for _, f := range h.frames() {
		if f.Full {
			full++
			if part.Assign(f.Header.Dts) != 2 {
				t.Fatal("full frame from wrong substream")
			}
		} else {
			hdr++
			if part.Assign(f.Header.Dts) == 2 {
				t.Fatal("own-substream frame arrived header-only")
			}
		}
	}
	if full == 0 || hdr == 0 {
		t.Fatalf("full=%d hdr=%d, want both nonzero", full, hdr)
	}
	// Every frame (60 in 2s) must arrive in some form.
	if total := full + hdr; total < 55 {
		t.Fatalf("total records = %d, want ~60", total)
	}
	// Roughly 1/4 of frames belong to substream 2.
	frac := float64(full) / float64(full+hdr)
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("substream share = %.2f, want ~0.25", frac)
	}
}

func TestSubstreamWithoutHeaders(t *testing.T) {
	h := newHarness(t)
	h.send(&transport.CDNSubscribeReq{Stream: 1, Substream: 0})
	h.node.Start()
	h.sim.Run(time.Second)
	for _, f := range h.frames() {
		if !f.Full {
			t.Fatal("headers delivered without WantHeaders")
		}
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	h := newHarness(t)
	h.send(&transport.CDNSubscribeReq{Stream: 1, FullStream: true})
	h.node.Start()
	h.sim.Run(time.Second)
	n1 := len(h.frames())
	h.send(&transport.CDNUnsubscribeReq{Stream: 1, FullStream: true})
	h.sim.Run(1200 * time.Millisecond) // allow the unsubscribe to arrive
	base := len(h.frames())
	h.sim.Run(3 * time.Second)
	if got := len(h.frames()); got > base+2 {
		t.Fatalf("frames kept flowing after unsubscribe: %d -> %d (n1=%d)", base, got, n1)
	}
	if h.node.Subscribers(1) != 0 {
		t.Fatal("subscriber not removed")
	}
}

func TestFrameRecoveryByDts(t *testing.T) {
	h := newHarness(t)
	h.node.Start()
	h.sim.Run(time.Second) // generate ~30 frames
	// Request a recent dts: frame at 330ms (seq 10).
	h.send(&transport.FrameReq{Stream: 1, Dts: 330})
	h.sim.Run(1100 * time.Millisecond)
	fs := h.frames()
	if len(fs) != 1 {
		t.Fatalf("recovery frames = %d, want 1", len(fs))
	}
	if fs[0].Header.Dts != 330 || !fs[0].Full || !fs[0].Recovered {
		t.Fatalf("recovered frame wrong: %+v", fs[0])
	}
	if h.node.RecoveryServed != 1 {
		t.Fatal("recovery counter")
	}
}

func TestFrameRecoveryMiss(t *testing.T) {
	h := newHarness(t)
	h.node.Start()
	h.sim.Run(time.Second)
	h.send(&transport.FrameReq{Stream: 1, Dts: 999999}) // never generated
	h.send(&transport.FrameReq{Stream: 42, Dts: 0})     // unknown stream
	h.sim.Run(1100 * time.Millisecond)
	if len(h.frames()) != 0 {
		t.Fatal("miss produced a frame")
	}
	if h.node.RecoveryMissed != 2 {
		t.Fatalf("missed = %d, want 2", h.node.RecoveryMissed)
	}
}

func TestRetentionWindow(t *testing.T) {
	h := newHarness(t)
	h.node.retainFrames = 30 // 1s
	h.node.Start()
	h.sim.Run(3 * time.Second)
	h.send(&transport.FrameReq{Stream: 1, Dts: 0}) // rotated out
	h.sim.Run(3100 * time.Millisecond)
	if h.node.RecoveryMissed != 1 {
		t.Fatal("rotated frame should miss")
	}
}

func TestProbeAnswered(t *testing.T) {
	h := newHarness(t)
	h.send(&transport.ProbeReq{Nonce: 9})
	h.sim.Run(time.Second)
	found := false
	for _, m := range h.inbox {
		if r, ok := m.(*transport.ProbeResp); ok && r.Nonce == 9 && r.Accepting {
			found = true
		}
	}
	if !found {
		t.Fatal("probe unanswered")
	}
}

func TestIdempotentSubscribe(t *testing.T) {
	h := newHarness(t)
	h.send(&transport.CDNSubscribeReq{Stream: 1, FullStream: true})
	h.send(&transport.CDNSubscribeReq{Stream: 1, FullStream: true})
	h.node.Start()
	h.sim.Run(time.Second)
	// 30 fps for ~1s: duplicates would double this.
	if n := len(h.frames()); n > 31 {
		t.Fatalf("duplicate subscription caused duplicate delivery: %d frames", n)
	}
}

func TestStopHaltsGeneration(t *testing.T) {
	h := newHarness(t)
	h.send(&transport.CDNSubscribeReq{Stream: 1, FullStream: true})
	h.node.Start()
	h.sim.Run(time.Second)
	h.node.Stop()
	n := len(h.frames())
	h.sim.Run(3 * time.Second)
	if got := len(h.frames()); got > n+2 {
		t.Fatalf("frames after stop: %d -> %d", n, got)
	}
}

func TestHostsStreamAndInterval(t *testing.T) {
	h := newHarness(t)
	if !h.node.HostsStream(1) || h.node.HostsStream(2) {
		t.Fatal("HostsStream wrong")
	}
	iv, ok := h.node.FrameInterval(1)
	if !ok || iv != time.Second/30 {
		t.Fatalf("interval = %v %v", iv, ok)
	}
	if _, ok := h.node.FrameInterval(2); ok {
		t.Fatal("interval for unknown stream")
	}
}

// TestBatchedFanOutAllocFree: the per-tick delivery fan-out builds at most
// one full record and one header record per frame and shares them across
// every subscriber, so once the pools and the event slab are warm, an
// entire frame interval — generation, batched fan-out to a mixed
// subscriber population, and delivery — allocates (near) nothing.
func TestBatchedFanOutAllocFree(t *testing.T) {
	sim := simnet.NewSim()
	rng := stats.NewRNG(1)
	net := simnet.NewNetwork(sim, rng.Fork())
	net.Register(1000, simnet.LinkState{UplinkBps: 10e9, BaseOWD: time.Millisecond}, nil)
	node := New(1000, sim, net, rng)
	net.SetHandler(1000, node.Handle)
	node.HostStream(media.SourceConfig{Stream: 1, FPS: 30}, 4)
	// A mixed population: full-stream viewers, per-substream edge feeds
	// with headers, and a plain substream switchback — all three record
	// paths exercised every tick. Handlers are no-ops: the point is the
	// sender's allocation behavior.
	for i := 0; i < 8; i++ {
		addr := simnet.Addr(6000 + i)
		net.Register(addr, simnet.LinkState{UplinkBps: 1e9, BaseOWD: time.Millisecond},
			func(from simnet.Addr, msg any) {})
		var req transport.CDNSubscribeReq
		switch i % 3 {
		case 0:
			req = transport.CDNSubscribeReq{Stream: 1, FullStream: true}
		case 1:
			req = transport.CDNSubscribeReq{Stream: 1, Substream: media.SubstreamID(i % 4), WantHeaders: true}
		default:
			req = transport.CDNSubscribeReq{Stream: 1, Substream: media.SubstreamID(i % 4)}
		}
		net.Send(addr, 1000, transport.WireSize(&req), &req)
	}
	node.Start()
	sim.Run(simnet.Time(2 * time.Second)) // warm up pools, slabs, maps
	iv := simnet.Time(time.Second / 30)
	next := sim.Now()
	allocs := testing.AllocsPerRun(60, func() {
		next += iv
		sim.Run(next)
	})
	// Measured 0 in steady state; the ceiling leaves room for incidental
	// simulator work while sitting far below the former
	// one-record-per-subscriber-per-frame regime.
	if allocs > 2 {
		t.Fatalf("batched fan-out allocates %.1f/op per frame interval, want <= 2", allocs)
	}
}

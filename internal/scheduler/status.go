// Package scheduler implements RLive's global scheduler: the top layer of
// the collaborative control plane (§4.1.1). It ingests lightweight periodic
// status updates from millions of best-effort nodes, retrieves candidates
// through a tree-based hash structure filtered by static features with
// progressive relaxation, ranks them with a per-client personalized score,
// and returns the top-K for client-side fine-tuning. It deliberately avoids
// chasing volatile per-packet state: the paper's lesson is that at
// hyperscale, a responsive and resilient strategy beats exhaustive
// optimization ("When Optimality Hurts Scalability", §8.1).
package scheduler

import (
	"time"

	"repro/internal/media"
	"repro/internal/nat"
	"repro/internal/simnet"
)

// SubstreamKey identifies one substream of one stream.
type SubstreamKey struct {
	Stream    media.StreamID
	Substream media.SubstreamID
}

// HeartbeatActive and HeartbeatIdle are the paper's status update periods:
// 5 s while forwarding streams, 10 s while idle (§4.1.1), with ~150-byte
// payloads.
const (
	HeartbeatActive = 5 * time.Second
	HeartbeatIdle   = 10 * time.Second
	HeartbeatBytes  = 150
)

// StaticFeatures are the node attributes the scheduler trusts most: they
// change rarely, so a second-scale update lag cannot invalidate them.
type StaticFeatures struct {
	Region   int
	ISP      int
	NAT      nat.Type
	HighQ    bool
	ConnTyp  int
	Class    uint8 // fleet.NodeClass; kept as raw to avoid a dependency cycle
	CostUnit float64
}

// Status is one node's scheduler-visible state: static features plus the
// temporal features carried by heartbeats.
type Status struct {
	Addr   simnet.Addr
	Static StaticFeatures

	// Temporal features (heartbeat-updated).
	ResidualBps float64 // available serving bandwidth
	Utilization float64 // sliding-average resource utilization [0,1]
	ConnSuccess float64 // recent connection success rate [0,1]
	Forwarding  map[SubstreamKey]int
	Sessions    int
	QuotaLeft   int
	LastUpdate  time.Duration // sim time of last heartbeat

	// blacklistedUntil implements the edge-driven lightweight feedback
	// (§8.2): clients report persistently failing nodes, which the
	// scheduler excludes for a cooldown after repeated reports.
	blacklistedUntil time.Duration
	failures         int
	lastFailure      time.Duration
}

// Heartbeat is the wire update a node sends; ~150 bytes encoded.
type Heartbeat struct {
	Addr        simnet.Addr
	ResidualBps float64
	Utilization float64
	ConnSuccess float64
	Sessions    int
	QuotaLeft   int
	Forwarding  []SubstreamKey
}

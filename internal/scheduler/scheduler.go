package scheduler

import (
	"sort"
	"time"

	"repro/internal/nat"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Weights are the per-platform scoring coefficients α1..α4 of
// S(n,c) = α1·N(n,c) + α2·G(n,c) + α3·R(n,c) + α4·B_n (§4.1.1). The paper
// notes these differ across platforms (Android/iOS) and applications.
type Weights struct {
	SameNetwork float64 // α1: same BGP prefix / local network preference
	Proximity   float64 // α2: geographic closeness
	NATSuccess  float64 // α3: NAT-type historical connection success
	Bandwidth   float64 // α4: residual bandwidth availability
}

// DefaultWeights is a reasonable production-like weighting.
var DefaultWeights = Weights{SameNetwork: 0.35, Proximity: 0.25, NATSuccess: 0.20, Bandwidth: 0.20}

// ClientInfo is the client-side context a recommendation is personalized
// for.
type ClientInfo struct {
	Addr     simnet.Addr
	Region   int
	ISP      int
	Platform string
}

// Candidate is one scored recommendation.
type Candidate struct {
	Addr  simnet.Addr
	Score float64
	// AlreadyForwarding means the node already relays the requested
	// substream, so no extra back-to-CDN traffic is incurred (cost model
	// of §4.1.1).
	AlreadyForwarding bool
}

// Config parameterizes the scheduler.
type Config struct {
	// TopK is the number of candidates returned to clients (default 8).
	TopK int
	// RetrievePool is how many nodes retrieval pulls before scoring
	// (default 4×TopK).
	RetrievePool int
	// ExploreFrac mixes idle/underused candidates into the result to
	// avoid overloading historically good nodes (§8.2 explore-exploit).
	// nil selects the default 0.25; Frac(0) expresses pure exploitation
	// (a plain float64 could not distinguish "unset" from an explicit 0).
	ExploreFrac *float64
	// Weights are the scoring coefficients.
	Weights Weights
	// StaleAfter drops nodes whose last heartbeat is older than this
	// (default 30 s).
	StaleAfter time.Duration
	// BlacklistFor is the cooldown applied when a client reports a
	// failing node (default 2 min).
	BlacklistFor time.Duration
	// RefinedNAT selects the traversal success priors.
	RefinedNAT bool
}

func (c *Config) setDefaults() {
	if c.TopK == 0 {
		c.TopK = 8
	}
	if c.RetrievePool == 0 {
		c.RetrievePool = 4 * c.TopK
	}
	if c.ExploreFrac == nil {
		c.ExploreFrac = Frac(0.25)
	}
	if c.Weights == (Weights{}) {
		c.Weights = DefaultWeights
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 30 * time.Second
	}
	if c.BlacklistFor == 0 {
		c.BlacklistFor = 2 * time.Minute
	}
}

// Scheduler is the global control-plane service.
type Scheduler struct {
	cfg   Config
	rng   *stats.RNG
	now   func() time.Duration
	nodes map[simnet.Addr]*Status
	tree  *treeIndex

	// Metrics.
	Requests    uint64
	Heartbeats  uint64
	RecLatency  *stats.Sample // modeled per-request processing latency (ms)
	perReqNodes *stats.Welford

	// tr records candidate-recommendation events; nil disables tracing.
	tr *trace.Buf

	// Telemetry instruments (nil when telemetry is off).
	tmRequests   *telemetry.Counter
	tmCandidates *telemetry.Histogram
	tmScore      *telemetry.Histogram
}

// SetTrace attaches (or detaches, with nil) a frame-lifecycle trace buffer.
func (s *Scheduler) SetTrace(b *trace.Buf) { s.tr = b }

// SetTelemetry registers scheduler instruments on reg: the request
// counter, candidate-set-size and score distributions, and a derived
// blacklist-size gauge (a count-only scan, deterministic regardless of
// map iteration order). Nil reg keeps every hook free.
func (s *Scheduler) SetTelemetry(reg *telemetry.Registry) {
	s.tmRequests = reg.Counter("sched.requests")
	s.tmCandidates = reg.Histogram("sched.candidates", []float64{0, 1, 2, 4, 8, 16, 32})
	s.tmScore = reg.Histogram("sched.score", []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1})
	reg.GaugeFunc("sched.blacklisted", func() float64 {
		now := s.now()
		var n int
		for _, st := range s.nodes {
			if st.blacklistedUntil > now {
				n++
			}
		}
		return float64(n)
	})
}

// Frac returns a pointer to f, for Config.ExploreFrac literals.
func Frac(f float64) *float64 { return &f }

// New returns a scheduler. now supplies the current (simulation) time; rng
// drives explore sampling and the latency model.
func New(cfg Config, rng *stats.RNG, now func() time.Duration) *Scheduler {
	cfg.setDefaults()
	return &Scheduler{
		cfg:         cfg,
		rng:         rng,
		now:         now,
		nodes:       make(map[simnet.Addr]*Status),
		tree:        newTreeIndex(),
		RecLatency:  stats.NewSample(1024),
		perReqNodes: &stats.Welford{},
	}
}

// Config returns the effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// RegisterNode introduces a node with its static features. Nodes start
// idle.
func (s *Scheduler) RegisterNode(addr simnet.Addr, static StaticFeatures, quota int) {
	st := &Status{
		Addr:        addr,
		Static:      static,
		ConnSuccess: nat.SuccessProbStatic(static.NAT, s.cfg.RefinedNAT),
		Forwarding:  make(map[SubstreamKey]int),
		QuotaLeft:   quota,
		LastUpdate:  s.now(),
	}
	s.nodes[addr] = st
	s.tree.SetIdle(addr, static, true)
}

// RemoveNode forgets a node entirely (e.g. deprovisioned).
func (s *Scheduler) RemoveNode(addr simnet.Addr) {
	st, ok := s.nodes[addr]
	if !ok {
		return
	}
	for key := range st.Forwarding {
		s.tree.SetForwarding(addr, st.Static, key, false)
	}
	s.tree.SetIdle(addr, st.Static, false)
	delete(s.nodes, addr)
}

// NumNodes returns the registered node count.
func (s *Scheduler) NumNodes() int { return len(s.nodes) }

// Ingest applies a heartbeat. The scheduler's view of temporal features is
// only as fresh as these (second-scale) updates — the deliberate source of
// the temporal misalignment the collaborative design tolerates (§2.4).
func (s *Scheduler) Ingest(hb Heartbeat) {
	s.Heartbeats++
	st, ok := s.nodes[hb.Addr]
	if !ok {
		return
	}
	st.ResidualBps = hb.ResidualBps
	st.Utilization = hb.Utilization
	if hb.ConnSuccess > 0 {
		st.ConnSuccess = hb.ConnSuccess
	}
	st.Sessions = hb.Sessions
	st.QuotaLeft = hb.QuotaLeft
	st.LastUpdate = s.now()

	// Reconcile forwarding set. Insertions iterate the heartbeat's
	// ordered slice (not a map) so the tree's insertion-ordered sets —
	// and therefore candidate retrieval order — stay deterministic.
	newSet := make(map[SubstreamKey]int, len(hb.Forwarding))
	for _, k := range hb.Forwarding {
		newSet[k] = newSet[k] + 1
	}
	for k := range st.Forwarding {
		if _, still := newSet[k]; !still {
			s.tree.SetForwarding(hb.Addr, st.Static, k, false)
		}
	}
	for _, k := range hb.Forwarding {
		if _, had := st.Forwarding[k]; !had {
			s.tree.SetForwarding(hb.Addr, st.Static, k, true)
			st.Forwarding[k] = 1 // guard against duplicate slice entries
		}
	}
	st.Forwarding = newSet
	s.tree.SetIdle(hb.Addr, st.Static, len(newSet) == 0)
}

// ReportFailure records a client-reported connection failure. Repeated
// reports within a short window blacklist the node for the configured
// cooldown — a single report is often the client's own path problem, and
// blacklisting whole pools on transient storms would freeze the control
// plane (§8.2's "locally blacklisting persistently failing nodes").
func (s *Scheduler) ReportFailure(addr simnet.Addr) {
	st, ok := s.nodes[addr]
	if !ok {
		return
	}
	now := s.now()
	if now-st.lastFailure > 30*time.Second {
		st.failures = 0
	}
	st.failures++
	st.lastFailure = now
	// Decay the success prior so scoring also learns.
	st.ConnSuccess *= 0.9
	if st.failures >= 3 {
		st.blacklistedUntil = now + s.cfg.BlacklistFor
		st.failures = 0
	}
}

// usable reports whether a node may be recommended right now.
func (s *Scheduler) usable(st *Status) bool {
	now := s.now()
	if st.blacklistedUntil > now {
		return false
	}
	if now-st.LastUpdate > s.cfg.StaleAfter {
		return false
	}
	return st.QuotaLeft > 0
}

// score computes S(n, c) for a candidate.
func (s *Scheduler) score(st *Status, c ClientInfo) float64 {
	w := s.cfg.Weights
	var nScore float64
	if st.Static.ISP == c.ISP && st.Static.Region == c.Region {
		nScore = 1 // same local network (same BGP prefix proxy)
	} else if st.Static.ISP == c.ISP {
		nScore = 0.4
	}
	var gScore float64
	switch d := regionDistance(st.Static.Region, c.Region); {
	case d == 0:
		gScore = 1
	case d == 1:
		gScore = 0.5
	default:
		gScore = 1 / float64(1+d)
	}
	rScore := st.ConnSuccess
	// Bandwidth availability normalized against a 100 Mbps reference.
	bScore := st.ResidualBps / 100e6
	if bScore > 1 {
		bScore = 1
	}
	return w.SameNetwork*nScore + w.Proximity*gScore + w.NATSuccess*rScore + w.Bandwidth*bScore
}

// regionDistance is a simple ring metric over region IDs standing in for
// geographic distance.
func regionDistance(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d
}

// Recommend returns the top-K candidates for the client's substream
// request, maximizing Σ a_i/p_i (availability per unit cost): retrieval
// prefers nodes already forwarding the substream (their marginal cost
// excludes back-to-CDN traffic), scoring ranks by availability factors, and
// an explore fraction mixes in idle nodes to keep utilization discoverable.
// It also returns the modeled processing latency for control-plane
// evaluation (Fig 12a).
func (s *Scheduler) Recommend(key SubstreamKey, c ClientInfo) ([]Candidate, time.Duration) {
	s.Requests++
	q := Query{Key: key, ISP: c.ISP, HighQ: false, Region: c.Region}
	fwd, idle := s.tree.Retrieve(q, s.cfg.RetrievePool)

	type scored struct {
		cand Candidate
		eff  float64 // score / cost — the a_i / p_i objective
	}
	var pool []scored
	consider := func(addr simnet.Addr, forwarding bool) {
		st, ok := s.nodes[addr]
		if !ok || !s.usable(st) {
			return
		}
		sc := s.score(st, c)
		cost := st.Static.CostUnit
		if cost <= 0 {
			cost = 1
		}
		if !forwarding {
			// Extra back-to-CDN traffic: one substream pull shared
			// across this node's subscribers; for a new relay the
			// client bears it alone.
			cost *= 1.5
		}
		pool = append(pool, scored{
			cand: Candidate{Addr: addr, Score: sc, AlreadyForwarding: forwarding},
			eff:  sc / cost,
		})
	}
	for _, a := range fwd {
		consider(a, true)
	}
	for _, a := range idle {
		consider(a, false)
	}
	sort.SliceStable(pool, func(i, j int) bool { return pool[i].eff > pool[j].eff })

	k := s.cfg.TopK
	if k > len(pool) {
		k = len(pool)
	}
	out := make([]Candidate, 0, k)
	// Exploit: the best (1-ExploreFrac)·K by efficiency.
	exploit := k - int(float64(k)**s.cfg.ExploreFrac)
	for i := 0; i < exploit && i < len(pool); i++ {
		out = append(out, pool[i].cand)
	}
	// Explore: random picks from the remainder (idle or underused nodes
	// whose scores are stale or unproven).
	rest := pool[exploit:]
	for len(out) < k && len(rest) > 0 {
		i := s.rng.IntN(len(rest))
		out = append(out, rest[i].cand)
		rest[i] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
	}

	lat := s.modelLatency(len(pool))
	s.RecLatency.Add(float64(lat) / float64(time.Millisecond))
	s.perReqNodes.Add(float64(len(pool)))
	s.tr.Rec(trace.KSchedCandidates, uint32(key.Stream), 0, uint64(len(out)), uint64(key.Substream))
	s.tmRequests.Inc()
	s.tmCandidates.Observe(float64(len(out)))
	for i := range out {
		s.tmScore.Observe(out[i].Score)
	}
	return out, lat
}

// modelLatency models per-request processing time: index walk plus scoring
// cost per pooled node, plus a heavy queueing/shard-fan-out tail.
// Calibrated to the paper's Fig 12a shape (P50 ≈ 58 ms, P90 ≈ 112 ms) —
// the dominant term in production is fan-out to status shards, which the
// simulation does not execute, so the model stands in for it.
func (s *Scheduler) modelLatency(pooled int) time.Duration {
	base := 30 + 0.35*float64(pooled) // ms
	tail := s.rng.LogNormal(3.0, 0.9)
	return time.Duration((base + tail) * float64(time.Millisecond))
}

// StreamUtilization returns the average utilization of nodes forwarding the
// given substream — the global half of the cost-aware trigger's
// double-check (§4.2.2: the node consults the scheduler for ū_stream).
func (s *Scheduler) StreamUtilization(key SubstreamKey) (float64, int) {
	var sum float64
	var n int
	// The tree holds exactly the forwarding set.
	sl, ok := s.tree.perStream[key]
	if !ok {
		return 0, 0
	}
	sl.all.each(func(addr simnet.Addr) bool {
		if st, ok := s.nodes[addr]; ok {
			sum += st.Utilization
			n++
		}
		return true
	})
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// NodeStatus returns a copy of the stored status for inspection.
func (s *Scheduler) NodeStatus(addr simnet.Addr) (Status, bool) {
	st, ok := s.nodes[addr]
	if !ok {
		return Status{}, false
	}
	return *st, true
}

package scheduler

import (
	"testing"
	"time"
)

func TestFailureWindowResets(t *testing.T) {
	f := newFixture(Config{TopK: 5, BlacklistFor: 2 * time.Minute})
	f.addNode(900, 0, 0, 5)
	// Two failures, then a quiet period longer than the 30 s window,
	// then two more: the counter must have reset, so no blacklist.
	f.s.ReportFailure(900)
	f.s.ReportFailure(900)
	f.now = time.Minute
	f.s.Ingest(Heartbeat{Addr: 900, ResidualBps: 50e6, ConnSuccess: 0.95, QuotaLeft: 5})
	f.s.ReportFailure(900)
	f.s.ReportFailure(900)
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 1}, ClientInfo{}); len(cands) != 1 {
		t.Fatal("node blacklisted despite window reset")
	}
	// A third strike inside the window does blacklist.
	f.s.ReportFailure(900)
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 1}, ClientInfo{}); len(cands) != 0 {
		t.Fatal("third strike in window did not blacklist")
	}
}

// TestBlacklistExpiresAndNodeRecovers covers the full blacklist lifecycle
// from DESIGN.md: three strikes inside the 30 s window blacklist the node
// for BlacklistFor; once that cooldown lapses (and a fresh heartbeat keeps
// the node non-stale) the node is recommendable again; and the strike
// counter starts clean, so two fresh failures do not instantly re-ban it.
func TestBlacklistExpiresAndNodeRecovers(t *testing.T) {
	f := newFixture(Config{TopK: 5, BlacklistFor: time.Minute})
	f.addNode(910, 0, 0, 5)

	// Three strikes in-window: blacklisted.
	f.s.ReportFailure(910)
	f.s.ReportFailure(910)
	f.s.ReportFailure(910)
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 1}, ClientInfo{}); len(cands) != 0 {
		t.Fatal("node recommendable right after third strike")
	}

	// Just before the cooldown lapses: still blacklisted. Heartbeats keep
	// arriving (a blacklisted node still reports), so staleness is not
	// what is excluding it.
	f.now = 59 * time.Second
	f.s.Ingest(Heartbeat{Addr: 910, ResidualBps: 50e6, ConnSuccess: 0.95, QuotaLeft: 5})
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 1}, ClientInfo{}); len(cands) != 0 {
		t.Fatal("node recommendable before blacklist expiry")
	}

	// Past the cooldown: recovered.
	f.now = 61 * time.Second
	f.s.Ingest(Heartbeat{Addr: 910, ResidualBps: 50e6, ConnSuccess: 0.95, QuotaLeft: 5})
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 1}, ClientInfo{}); len(cands) != 1 {
		t.Fatal("node not recommendable after blacklist expiry")
	}

	// The strike counter was reset on blacklisting: two new failures are
	// not enough to re-ban (the third is).
	f.s.ReportFailure(910)
	f.s.ReportFailure(910)
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 1}, ClientInfo{}); len(cands) != 1 {
		t.Fatal("node re-blacklisted after only two post-recovery strikes")
	}
	f.s.ReportFailure(910)
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 1}, ClientInfo{}); len(cands) != 0 {
		t.Fatal("third post-recovery strike did not re-blacklist")
	}
}

func TestFailureDecaysSuccessPrior(t *testing.T) {
	f := newFixture(Config{TopK: 5})
	f.addNode(901, 0, 0, 5)
	before, _ := f.s.NodeStatus(901)
	f.s.ReportFailure(901)
	after, _ := f.s.NodeStatus(901)
	if after.ConnSuccess >= before.ConnSuccess {
		t.Fatalf("success prior did not decay: %v -> %v", before.ConnSuccess, after.ConnSuccess)
	}
}

func TestReportFailureUnknownNode(t *testing.T) {
	f := newFixture(Config{})
	f.s.ReportFailure(4242) // must not panic or create a phantom
	if f.s.NumNodes() != 0 {
		t.Fatal("phantom node created")
	}
}

package scheduler

import (
	"testing"
	"time"
)

func TestFailureWindowResets(t *testing.T) {
	f := newFixture(Config{TopK: 5, BlacklistFor: 2 * time.Minute})
	f.addNode(900, 0, 0, 5)
	// Two failures, then a quiet period longer than the 30 s window,
	// then two more: the counter must have reset, so no blacklist.
	f.s.ReportFailure(900)
	f.s.ReportFailure(900)
	f.now = time.Minute
	f.s.Ingest(Heartbeat{Addr: 900, ResidualBps: 50e6, ConnSuccess: 0.95, QuotaLeft: 5})
	f.s.ReportFailure(900)
	f.s.ReportFailure(900)
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 1}, ClientInfo{}); len(cands) != 1 {
		t.Fatal("node blacklisted despite window reset")
	}
	// A third strike inside the window does blacklist.
	f.s.ReportFailure(900)
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 1}, ClientInfo{}); len(cands) != 0 {
		t.Fatal("third strike in window did not blacklist")
	}
}

func TestFailureDecaysSuccessPrior(t *testing.T) {
	f := newFixture(Config{TopK: 5})
	f.addNode(901, 0, 0, 5)
	before, _ := f.s.NodeStatus(901)
	f.s.ReportFailure(901)
	after, _ := f.s.NodeStatus(901)
	if after.ConnSuccess >= before.ConnSuccess {
		t.Fatalf("success prior did not decay: %v -> %v", before.ConnSuccess, after.ConnSuccess)
	}
}

func TestReportFailureUnknownNode(t *testing.T) {
	f := newFixture(Config{})
	f.s.ReportFailure(4242) // must not panic or create a phantom
	if f.s.NumNodes() != 0 {
		t.Fatal("phantom node created")
	}
}

package scheduler

import (
	"repro/internal/simnet"
)

// addrSet is an insertion-ordered set of node addresses. Retrieval must be
// deterministic — candidate order feeds client probing, so map-iteration
// order would make whole simulation runs irreproducible. Deletions leave
// tombstones in the order slice that are compacted once they dominate.
type addrSet struct {
	m     map[simnet.Addr]struct{}
	order []simnet.Addr
	dead  int
}

func newAddrSet() *addrSet {
	return &addrSet{m: make(map[simnet.Addr]struct{})}
}

func (s *addrSet) add(a simnet.Addr) {
	if _, ok := s.m[a]; ok {
		return
	}
	s.m[a] = struct{}{}
	s.order = append(s.order, a)
}

func (s *addrSet) remove(a simnet.Addr) {
	if _, ok := s.m[a]; !ok {
		return
	}
	delete(s.m, a)
	s.dead++
	if s.dead > len(s.order)/2 && s.dead > 16 {
		kept := s.order[:0]
		for _, x := range s.order {
			if _, ok := s.m[x]; ok {
				kept = append(kept, x)
			}
		}
		s.order = kept
		s.dead = 0
	}
}

func (s *addrSet) len() int { return len(s.m) }

// each visits live members in insertion order until fn returns false.
func (s *addrSet) each(fn func(simnet.Addr) bool) {
	for _, a := range s.order {
		if _, ok := s.m[a]; !ok {
			continue
		}
		if !fn(a) {
			return
		}
	}
}

// treeIndex is the tree-based hash structure for priority-aware node
// retrieval (§4.1.1). Each layer hashes one static attribute; retrieval
// walks the full attribute path (stream → ISP → node type → region) for an
// exact match, then progressively relaxes constraints in reverse priority
// order (region first, node type next, ISP last) when the match set is too
// small. The stream layer is never relaxed: a node is only useful if it can
// serve (or cheaply start serving) the requested substream — relaxing the
// stream means falling back to the "any idle node" pool, which the index
// also maintains.
type treeIndex struct {
	// perStream[stream] -> isp -> highQ -> region -> set of node addrs.
	perStream map[SubstreamKey]*ispLayer
	// idle holds nodes not currently forwarding anything, indexed by the
	// same sub-path (isp/highQ/region) for attribute-aware fallback.
	idle *ispLayer
}

type ispLayer struct {
	byISP map[int]*typeLayer
	all   *addrSet
}

type typeLayer struct {
	byType map[bool]*regionLayer
	all    *addrSet
}

type regionLayer struct {
	byRegion map[int]*addrSet
	all      *addrSet
}

func newTreeIndex() *treeIndex {
	return &treeIndex{
		perStream: make(map[SubstreamKey]*ispLayer),
		idle:      newISPLayer(),
	}
}

func newISPLayer() *ispLayer {
	return &ispLayer{byISP: make(map[int]*typeLayer), all: newAddrSet()}
}

func (l *ispLayer) insert(addr simnet.Addr, s StaticFeatures) {
	l.all.add(addr)
	tl, ok := l.byISP[s.ISP]
	if !ok {
		tl = &typeLayer{byType: make(map[bool]*regionLayer), all: newAddrSet()}
		l.byISP[s.ISP] = tl
	}
	tl.all.add(addr)
	rl, ok := tl.byType[s.HighQ]
	if !ok {
		rl = &regionLayer{byRegion: make(map[int]*addrSet), all: newAddrSet()}
		tl.byType[s.HighQ] = rl
	}
	rl.all.add(addr)
	set, ok := rl.byRegion[s.Region]
	if !ok {
		set = newAddrSet()
		rl.byRegion[s.Region] = set
	}
	set.add(addr)
}

func (l *ispLayer) remove(addr simnet.Addr, s StaticFeatures) {
	l.all.remove(addr)
	tl, ok := l.byISP[s.ISP]
	if !ok {
		return
	}
	tl.all.remove(addr)
	rl, ok := tl.byType[s.HighQ]
	if !ok {
		return
	}
	rl.all.remove(addr)
	if set, ok := rl.byRegion[s.Region]; ok {
		set.remove(addr)
	}
}

// Query describes the attribute path for a retrieval.
type Query struct {
	Key     SubstreamKey
	ISP     int
	HighQ   bool
	Region  int
	WantMin int // stop relaxing once at least this many candidates found
}

// collect appends up to want addresses from set into dst, skipping ones
// already present in seen.
func collect(dst []simnet.Addr, set *addrSet, seen map[simnet.Addr]struct{}, want int) []simnet.Addr {
	set.each(func(a simnet.Addr) bool {
		if len(dst) >= want {
			return false
		}
		if _, dup := seen[a]; dup {
			return true
		}
		seen[a] = struct{}{}
		dst = append(dst, a)
		return true
	})
	return dst
}

// retrieve walks one ispLayer with progressive relaxation. Relaxation
// order (reverse priority): exact(isp,type,region) → drop region →
// drop type → drop isp.
func (l *ispLayer) retrieve(q Query, want int) []simnet.Addr {
	seen := make(map[simnet.Addr]struct{})
	var out []simnet.Addr
	if tl, ok := l.byISP[q.ISP]; ok {
		if rl, ok := tl.byType[q.HighQ]; ok {
			if set, ok := rl.byRegion[q.Region]; ok {
				out = collect(out, set, seen, want)
			}
			if len(out) < want {
				out = collect(out, rl.all, seen, want)
			}
		}
		if len(out) < want {
			out = collect(out, tl.all, seen, want)
		}
	}
	if len(out) < want {
		out = collect(out, l.all, seen, want)
	}
	return out
}

// Retrieve returns candidate addresses for the query: first nodes already
// forwarding the requested substream (no extra back-to-CDN cost), then idle
// nodes, both with attribute relaxation. want bounds the result size.
func (t *treeIndex) Retrieve(q Query, want int) (forwarding, idle []simnet.Addr) {
	if sl, ok := t.perStream[q.Key]; ok {
		forwarding = sl.retrieve(q, want)
	}
	if len(forwarding) < want {
		idle = t.idle.retrieve(q, want-len(forwarding))
	}
	return forwarding, idle
}

// SetForwarding moves a node in or out of a substream bucket.
func (t *treeIndex) SetForwarding(addr simnet.Addr, s StaticFeatures, key SubstreamKey, on bool) {
	sl, ok := t.perStream[key]
	if !ok {
		if !on {
			return
		}
		sl = newISPLayer()
		t.perStream[key] = sl
	}
	if on {
		sl.insert(addr, s)
	} else {
		sl.remove(addr, s)
		if sl.all.len() == 0 {
			delete(t.perStream, key)
		}
	}
}

// SetIdle moves a node in or out of the idle pool.
func (t *treeIndex) SetIdle(addr simnet.Addr, s StaticFeatures, on bool) {
	if on {
		t.idle.insert(addr, s)
	} else {
		t.idle.remove(addr, s)
	}
}

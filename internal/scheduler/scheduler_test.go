package scheduler

import (
	"testing"
	"time"

	"repro/internal/nat"
	"repro/internal/simnet"
	"repro/internal/stats"
)

type fixture struct {
	s   *Scheduler
	now time.Duration
}

func newFixture(cfg Config) *fixture {
	f := &fixture{}
	f.s = New(cfg, stats.NewRNG(1), func() time.Duration { return f.now })
	return f
}

func (f *fixture) addNode(addr simnet.Addr, region, isp int, quota int) {
	f.s.RegisterNode(addr, StaticFeatures{Region: region, ISP: isp, NAT: nat.FullCone, CostUnit: 0.7}, quota)
	f.s.Ingest(Heartbeat{Addr: addr, ResidualBps: 50e6, ConnSuccess: 0.95, QuotaLeft: quota})
}

func TestRegisterAndRecommend(t *testing.T) {
	f := newFixture(Config{TopK: 3})
	for i := 0; i < 10; i++ {
		f.addNode(simnet.Addr(100+i), i%2, i%2, 5)
	}
	key := SubstreamKey{Stream: 1, Substream: 0}
	cands, lat := f.s.Recommend(key, ClientInfo{Region: 0, ISP: 0})
	if len(cands) != 3 {
		t.Fatalf("candidates = %d, want 3", len(cands))
	}
	if lat <= 0 {
		t.Fatal("latency model returned nonpositive")
	}
	if f.s.Requests != 1 {
		t.Fatal("request counter")
	}
}

func TestForwardingNodesPreferred(t *testing.T) {
	f := newFixture(Config{TopK: 4, ExploreFrac: Frac(0.01)})
	key := SubstreamKey{Stream: 1, Substream: 2}
	// 20 idle nodes, 3 forwarding the requested substream.
	for i := 0; i < 20; i++ {
		f.addNode(simnet.Addr(200+i), 0, 0, 5)
	}
	for i := 0; i < 3; i++ {
		addr := simnet.Addr(300 + i)
		f.addNode(addr, 0, 0, 5)
		f.s.Ingest(Heartbeat{Addr: addr, ResidualBps: 50e6, ConnSuccess: 0.95, QuotaLeft: 5,
			Forwarding: []SubstreamKey{key}})
	}
	cands, _ := f.s.Recommend(key, ClientInfo{Region: 0, ISP: 0})
	fwdCount := 0
	for _, c := range cands {
		if c.AlreadyForwarding {
			fwdCount++
		}
	}
	if fwdCount != 3 {
		t.Fatalf("forwarding candidates in top-K = %d, want 3 (cheaper, same score)", fwdCount)
	}
}

func TestRelaxationFindsDistantNodes(t *testing.T) {
	f := newFixture(Config{TopK: 4})
	// All nodes in a different region and ISP than the client.
	for i := 0; i < 6; i++ {
		f.addNode(simnet.Addr(400+i), 5, 3, 5)
	}
	cands, _ := f.s.Recommend(SubstreamKey{Stream: 9}, ClientInfo{Region: 0, ISP: 0})
	if len(cands) == 0 {
		t.Fatal("relaxation failed: no candidates despite available nodes")
	}
}

func TestSameNetworkScoredHigher(t *testing.T) {
	f := newFixture(Config{TopK: 10, ExploreFrac: Frac(0.01)})
	f.addNode(500, 0, 0, 5) // same region+ISP as client
	f.addNode(501, 4, 2, 5) // far
	cands, _ := f.s.Recommend(SubstreamKey{Stream: 2}, ClientInfo{Region: 0, ISP: 0})
	if len(cands) < 2 {
		t.Fatalf("want 2 candidates, got %d", len(cands))
	}
	if cands[0].Addr != 500 {
		t.Fatalf("local node not ranked first: %+v", cands)
	}
	if cands[0].Score <= cands[1].Score {
		t.Fatalf("local node score %v not above remote %v", cands[0].Score, cands[1].Score)
	}
}

func TestStaleNodesExcluded(t *testing.T) {
	f := newFixture(Config{TopK: 5, StaleAfter: 30 * time.Second})
	f.addNode(600, 0, 0, 5)
	f.now = 60 * time.Second // heartbeat now stale
	cands, _ := f.s.Recommend(SubstreamKey{Stream: 3}, ClientInfo{Region: 0, ISP: 0})
	if len(cands) != 0 {
		t.Fatalf("stale node recommended: %+v", cands)
	}
	// A fresh heartbeat revives it.
	f.s.Ingest(Heartbeat{Addr: 600, ResidualBps: 50e6, QuotaLeft: 5})
	cands, _ = f.s.Recommend(SubstreamKey{Stream: 3}, ClientInfo{Region: 0, ISP: 0})
	if len(cands) != 1 {
		t.Fatalf("fresh node not recommended")
	}
}

func TestQuotaExhaustedExcluded(t *testing.T) {
	f := newFixture(Config{TopK: 5})
	f.addNode(700, 0, 0, 5)
	f.s.Ingest(Heartbeat{Addr: 700, ResidualBps: 50e6, QuotaLeft: 0})
	cands, _ := f.s.Recommend(SubstreamKey{Stream: 4}, ClientInfo{Region: 0, ISP: 0})
	if len(cands) != 0 {
		t.Fatal("quota-exhausted node recommended")
	}
}

func TestBlacklistCooldown(t *testing.T) {
	f := newFixture(Config{TopK: 5, BlacklistFor: 2 * time.Minute})
	f.addNode(800, 0, 0, 5)
	// A single report must NOT blacklist (it is usually the reporter's
	// own path); repeated reports within the window do.
	f.s.ReportFailure(800)
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 5}, ClientInfo{}); len(cands) != 1 {
		t.Fatal("single report should not blacklist")
	}
	f.s.ReportFailure(800)
	f.s.ReportFailure(800)
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 5}, ClientInfo{}); len(cands) != 0 {
		t.Fatal("blacklisted node recommended")
	}
	f.now = 3 * time.Minute
	f.s.Ingest(Heartbeat{Addr: 800, ResidualBps: 50e6, QuotaLeft: 5})
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 5}, ClientInfo{}); len(cands) != 1 {
		t.Fatal("node not restored after cooldown")
	}
}

func TestRemoveNode(t *testing.T) {
	f := newFixture(Config{TopK: 5})
	f.addNode(900, 0, 0, 5)
	if f.s.NumNodes() != 1 {
		t.Fatal("node count")
	}
	f.s.RemoveNode(900)
	if f.s.NumNodes() != 0 {
		t.Fatal("node not removed")
	}
	if cands, _ := f.s.Recommend(SubstreamKey{Stream: 6}, ClientInfo{}); len(cands) != 0 {
		t.Fatal("removed node recommended")
	}
}

func TestForwardingReconciliation(t *testing.T) {
	f := newFixture(Config{TopK: 5})
	f.addNode(1000, 0, 0, 5)
	k1 := SubstreamKey{Stream: 1, Substream: 0}
	k2 := SubstreamKey{Stream: 1, Substream: 1}
	f.s.Ingest(Heartbeat{Addr: 1000, ResidualBps: 1e6, QuotaLeft: 5, Forwarding: []SubstreamKey{k1}})
	if u, n := f.s.StreamUtilization(k1); n != 1 || u != 0 {
		t.Fatalf("stream util after first hb: %v %v", u, n)
	}
	// Switch to k2: k1 bucket must empty.
	f.s.Ingest(Heartbeat{Addr: 1000, ResidualBps: 1e6, Utilization: 0.5, QuotaLeft: 5, Forwarding: []SubstreamKey{k2}})
	if _, n := f.s.StreamUtilization(k1); n != 0 {
		t.Fatal("stale forwarding entry kept")
	}
	if u, n := f.s.StreamUtilization(k2); n != 1 || u != 0.5 {
		t.Fatalf("k2 util = %v n=%v", u, n)
	}
}

func TestStreamUtilizationEmpty(t *testing.T) {
	f := newFixture(Config{})
	if u, n := f.s.StreamUtilization(SubstreamKey{Stream: 42}); u != 0 || n != 0 {
		t.Fatal("empty stream utilization should be 0,0")
	}
}

func TestExploreMixesCandidates(t *testing.T) {
	// With a large pool and high explore fraction, recommendations must
	// not always be the same top nodes.
	f := newFixture(Config{TopK: 8, ExploreFrac: Frac(0.5), RetrievePool: 64})
	for i := 0; i < 64; i++ {
		f.addNode(simnet.Addr(2000+i), 0, 0, 5)
	}
	seen := make(map[simnet.Addr]bool)
	for r := 0; r < 20; r++ {
		cands, _ := f.s.Recommend(SubstreamKey{Stream: 7}, ClientInfo{Region: 0, ISP: 0})
		for _, c := range cands {
			seen[c.Addr] = true
		}
	}
	if len(seen) <= 8 {
		t.Fatalf("explore ineffective: only %d distinct nodes recommended", len(seen))
	}
}

func TestRecommendLatencyShape(t *testing.T) {
	f := newFixture(Config{TopK: 8})
	for i := 0; i < 100; i++ {
		f.addNode(simnet.Addr(3000+i), i%4, i%2, 5)
	}
	for r := 0; r < 500; r++ {
		f.s.Recommend(SubstreamKey{Stream: 8}, ClientInfo{Region: r % 4, ISP: r % 2})
	}
	p50 := f.s.RecLatency.Percentile(50)
	p90 := f.s.RecLatency.Percentile(90)
	if p50 < 30 || p50 > 120 {
		t.Errorf("P50 latency = %.1f ms, want Fig 12a neighbourhood (~58)", p50)
	}
	if p90 <= p50 {
		t.Errorf("P90 (%.1f) not above P50 (%.1f)", p90, p50)
	}
}

func TestHeartbeatForUnknownNodeIgnored(t *testing.T) {
	f := newFixture(Config{})
	f.s.Ingest(Heartbeat{Addr: 9999, ResidualBps: 1})
	if f.s.NumNodes() != 0 {
		t.Fatal("phantom node created")
	}
}

func TestConnSuccessPreservedWhenHeartbeatOmitsIt(t *testing.T) {
	f := newFixture(Config{})
	f.s.RegisterNode(1, StaticFeatures{NAT: nat.Public, CostUnit: 0.7}, 5)
	before, _ := f.s.NodeStatus(1)
	f.s.Ingest(Heartbeat{Addr: 1, ResidualBps: 1e6, QuotaLeft: 5}) // ConnSuccess 0 = not reported
	after, _ := f.s.NodeStatus(1)
	if after.ConnSuccess != before.ConnSuccess {
		t.Fatalf("omitted ConnSuccess overwrote prior: %v -> %v", before.ConnSuccess, after.ConnSuccess)
	}
}

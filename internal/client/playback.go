package client

import (
	"time"

	"repro/internal/simnet"
	"repro/internal/trace"
)

// intervalMs returns the frame spacing in milliseconds.
func (c *Client) intervalMs() uint64 {
	ms := uint64(c.cfg.FrameInterval.Milliseconds())
	if ms == 0 {
		ms = 1
	}
	return ms
}

// ready reports whether the frame at dts can be played: data complete and
// order confirmed by the global chain.
func (c *Client) ready(dts uint64) bool {
	a, ok := c.frames[dts]
	return ok && a.complete && a.linked
}

// BufferMs returns the contiguous ready playout buffer ahead of the
// playhead in milliseconds.
func (c *Client) BufferMs() float64 {
	if !c.playheadSet {
		return 0
	}
	iv := c.intervalMs()
	var ms float64
	for dts := c.playhead; c.ready(dts); dts += iv {
		ms += float64(iv)
	}
	return ms
}

// earliestReady finds the first playable frame to anchor the playhead.
func (c *Client) earliestReady() (uint64, bool) {
	best := uint64(0)
	found := false
	for dts, a := range c.frames {
		if a.complete && a.linked && (!found || dts < best) {
			best = dts
			found = true
		}
	}
	return best, found
}

// playTick runs once per frame interval: play the next frame if ready,
// otherwise account a stall.
func (c *Client) playTick() {
	if !c.started {
		c.tryStart()
		return
	}
	c.maybeHandover()
	// Latency chasing: stalls leave the playhead behind the live edge;
	// once the ready backlog exceeds the live-lag bound, drop frames to
	// return near the startup buffer level (live content expires).
	if buf := c.BufferMs(); buf > c.cfg.MaxLiveLagMs {
		iv := c.intervalMs()
		drop := uint64(buf-c.cfg.StartupBufferMs) / iv * iv
		c.QoE.FramesLost += int(drop / iv)
		c.tmLost.Add(drop / iv)
		c.traceLossRange(c.playhead, c.playhead+drop)
		c.playhead += drop
	}
	a, ok := c.frames[c.playhead]
	if ok && a.complete && a.linked {
		c.playFrame(c.playhead, a)
		return
	}
	// Stall.
	onset := !c.stalled
	c.stalled = true
	c.lastStallAt = c.sim.Now()
	if onset {
		c.stallOnsetAt = c.sim.Now()
		c.tr.Rec(trace.KStall, uint32(c.stream), c.playhead, 0, 0)
		c.tmStallOnsets.Inc()
	}
	c.QoE.AddStall(c.cfg.FrameInterval, onset)
	c.tmStallNs.Add(uint64(c.cfg.FrameInterval))
	// Falling back was supposed to fix the stall; if the dedicated path
	// itself keeps stalling (the CDN is the bottleneck — exactly the
	// situation edge offload exists for), re-engage multi-source without
	// waiting out the backoff.
	if c.fullCDN && !c.rliveActive && c.cfg.Mode != ModeCDNOnly {
		c.stallMsOnCDN += float64(c.cfg.FrameInterval) / 1e6
		if c.stallMsOnCDN > 1500 {
			c.stallMsOnCDN = 0
			c.engageRLive()
		}
	}
	// Live content has a shelf life: past the stall cap, abandon the
	// missing frames and rejoin at the next playable one.
	if c.sim.Now()-c.stallOnsetAt > simnet.Time(c.cfg.MaxStallBeforeSkip) {
		c.SkipForward()
	}
}

// tryStart anchors the playhead once the startup buffer is filled.
func (c *Client) tryStart() {
	first, ok := c.earliestReady()
	if !ok {
		return
	}
	if !c.playheadSet {
		c.playhead = first
		c.playheadSet = true
	}
	if c.BufferMs() < c.cfg.StartupBufferMs {
		return
	}
	c.started = true
	c.startedAt = c.sim.Now()
	c.QoE.FirstFrameMs = float64(c.sim.Now()-c.sessionAt) / 1e6
}

// playFrame consumes one frame: QoE accounting and buffer advancement.
func (c *Client) playFrame(dts uint64, a *frameAsm) {
	c.stalled = false
	if !a.played {
		a.played = true
		c.QoE.FramesPlayed++
		c.tmPlayed.Inc()
		// Decode + render dominates device compute; the delivery
		// protocol's per-packet work rides on top of this baseline
		// (Fig 10 measures that small relative overhead).
		c.Energy.AddCPU(10000)
		bits := float64(a.header.Size) * 8
		if a.header.Size == 0 {
			bits = float64(a.count) * 8 * 1200
		}
		c.QoE.AddPlayback(c.cfg.FrameInterval, bits/c.cfg.FrameInterval.Seconds())
		if a.generated > 0 {
			e2eMs := float64(int64(c.sim.Now())-a.generated) / 1e6
			if e2eMs >= 0 {
				c.QoE.E2ELatency.Add(e2eMs)
			}
		}
		if c.tr != nil {
			var e2e uint64
			if a.generated > 0 {
				if d := int64(c.sim.Now()) - a.generated; d > 0 {
					e2e = uint64(d) / 1e6
				}
			}
			c.tr.Rec(trace.KPlayed, uint32(c.stream), dts, e2e, 0)
		}
	}
	c.gchain.MarkConsumed(dts)
	c.playhead = dts + c.intervalMs()
	c.gcFrames()
}

// gcFrames drops assemblies far behind the playhead to bound memory.
func (c *Client) gcFrames() {
	if len(c.frames) < 512 {
		return
	}
	horizon := uint64(10_000) // keep 10 s behind
	if c.playhead < horizon {
		return
	}
	cut := c.playhead - horizon
	for dts, a := range c.frames {
		if dts < cut {
			delete(c.frames, dts)
			c.releaseAsm(a)
		}
	}
}

// SkipForward abandons frames that can never play (e.g. after prolonged
// stall with the source far ahead): jump the playhead to the next ready
// frame, counting the skipped frames as lost.
func (c *Client) SkipForward() {
	if !c.playheadSet {
		return
	}
	next, ok := c.earliestReadyAfter(c.playhead)
	if !ok {
		return
	}
	iv := c.intervalMs()
	skipped := int((next - c.playhead) / iv)
	c.QoE.FramesLost += skipped
	c.tmLost.Add(uint64(skipped))
	c.traceLossRange(c.playhead, next)
	c.playhead = next
}

// traceLossRange records one KLost per frame slot in [from, to), classified
// by where its deadline was spent. The two call sites — the live-lag drop
// and the stall skip — are exactly the two paths that increment
// QoE.FramesLost, so traced losses reconcile with the session aggregate.
func (c *Client) traceLossRange(from, to uint64) {
	if c.tr == nil {
		return
	}
	iv := c.intervalMs()
	for dts := from; dts < to; dts += iv {
		cause, got := c.classifyLoss(dts)
		c.tr.Rec(trace.KLost, uint32(c.stream), dts, cause, got)
	}
}

// classifyLoss attributes one abandoned frame slot to a cause code (Cause*)
// and reports the packets received before abandonment.
func (c *Client) classifyLoss(dts uint64) (cause, got uint64) {
	a, ok := c.frames[dts]
	switch {
	case !ok:
		return trace.CauseUnannounced, 0
	case a.complete && a.linked:
		return trace.CauseLiveLag, uint64(a.got)
	case a.complete:
		return trace.CauseUnsequenced, uint64(a.got)
	case a.got == 0:
		return trace.CauseNoData, 0
	default:
		return trace.CausePartial, uint64(a.got)
	}
}

func (c *Client) earliestReadyAfter(dts uint64) (uint64, bool) {
	best := uint64(0)
	found := false
	for d, a := range c.frames {
		if d > dts && a.complete && a.linked && (!found || d < best) {
			best = d
			found = true
		}
	}
	return best, found
}

// PlaybackPosition returns the playhead dts and whether playback started.
func (c *Client) PlaybackPosition() (uint64, bool) { return c.playhead, c.started }

// Stalled reports whether playback is currently stalled.
func (c *Client) Stalled() bool { return c.stalled }

// SessionAge returns how long the session has existed.
func (c *Client) SessionAge() time.Duration { return time.Duration(c.sim.Now() - c.sessionAt) }

// RetxSuccessRates returns the observed per-path retransmission success
// fractions: packet retries toward best-effort publishers and frame fetches
// toward dedicated nodes (Fig 3).
func (c *Client) RetxSuccessRates() (bestEffort, dedicated float64) {
	if c.pktRetxTried > 0 {
		bestEffort = float64(c.pktRetxSucc) / float64(c.pktRetxTried)
		if bestEffort > 1 {
			bestEffort = 1
		}
	}
	if c.DedicatedFetch > 0 {
		dedicated = float64(c.QoE.RetxSucceeded) / float64(c.DedicatedFetch)
		if dedicated > 1 {
			dedicated = 1
		}
	}
	return bestEffort, dedicated
}

// DebugSummary reports internal counters for diagnostics: total tracked
// frames, complete frames, linked frames, and the chain state string.
func (c *Client) DebugSummary() (frames, complete, linked int, chainState string) {
	for _, a := range c.frames {
		frames++
		if a.complete {
			complete++
		}
		if a.linked {
			linked++
		}
	}
	return frames, complete, linked, c.gchain.String()
}

package client

import (
	"time"

	"repro/internal/media"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// onCandidates stores the scheduler's recommendations for a substream and
// starts the local fine-tuning probe round (§4.1.2) if the substream has no
// publisher yet.
func (c *Client) onCandidates(m *transport.CandidateResp) {
	ss := m.Key.Substream
	if int(ss) >= len(c.subs) || m.Key.Stream != c.stream {
		return
	}
	st := c.subs[ss]
	st.candidates = m.Candidates
	if len(st.publishers) < c.cfg.Redundancy && !st.switchedToCDN && c.rliveActive {
		c.probeRound(st)
	}
}

// probeRound actively probes up to ProbeCount candidates with
// application-level connection attempts; the first responder wins
// (§4.1.2). No response within ProbeTimeout reports the nodes to the
// scheduler and refetches candidates.
func (c *Client) probeRound(st *substreamState) {
	if c.pendingSub[st.ss] {
		return
	}
	n := 0
	now := c.sim.Now()
	var nonces []uint32
	for _, cand := range st.candidates {
		if n >= c.cfg.ProbeCount {
			break
		}
		if c.isPublisher(st, cand.Addr) {
			continue
		}
		if until, bad := c.badNodes[cand.Addr]; bad && now < until {
			continue
		}
		c.probeNonce++
		nonce := c.probeNonce
		c.probeSent[nonce] = probeCtx{at: c.sim.Now(), node: cand.Addr, ss: st.ss}
		c.sendTo(cand.Addr, &transport.ProbeReq{Nonce: nonce, Key: c.key(st.ss)})
		c.ProbesSent++
		nonces = append(nonces, nonce)
		n++
	}
	if n == 0 {
		return
	}
	c.pendingSub[st.ss] = true
	ssid := st.ss
	c.sim.After(simnet.Time(c.cfg.ProbeTimeout), func() {
		if c.stopped {
			return
		}
		// Unanswered probes are usually NAT-unreachability — a
		// per-path property only this client observes — so blacklist
		// LOCALLY (§8.2) and move down the candidate list. Global
		// failure reports are reserved for dead publishers.
		for _, nonce := range nonces {
			if ctx, still := c.probeSent[nonce]; still {
				delete(c.probeSent, nonce)
				c.badNodes[ctx.node] = c.sim.Now() + simnet.Time(time.Minute)
			}
		}
		if !c.pendingSub[ssid] {
			return // a probe succeeded and subscribed already
		}
		c.pendingSub[ssid] = false
		c.requestCandidates(ssid)
	})
}

func (c *Client) isPublisher(st *substreamState, addr simnet.Addr) bool {
	for _, p := range st.publishers {
		if p == addr {
			return true
		}
	}
	return false
}

// onProbeResp records the probe RTT and, during a pending subscription
// round, subscribes to the first accepting responder.
func (c *Client) onProbeResp(from simnet.Addr, m *transport.ProbeResp) {
	ctx, ok := c.probeSent[m.Nonce]
	if !ok {
		return
	}
	delete(c.probeSent, m.Nonce)
	c.ProbeAnswers++
	rttMs := float64(c.sim.Now()-ctx.at) / 1e6
	c.recordRTT(from, rttMs)
	if !m.Accepting {
		c.ProbeRefusals++
		return
	}
	st := c.subs[ctx.ss]
	if c.pendingSub[ctx.ss] && len(st.publishers) < c.cfg.Redundancy && !st.switchedToCDN {
		c.subscribeEdge(st, from)
		if len(st.publishers) >= c.cfg.Redundancy {
			c.pendingSub[ctx.ss] = false
		}
	}
}

func (c *Client) recordRTT(node simnet.Addr, rttMs float64) {
	ew, ok := c.nodeRTT[node]
	if !ok {
		ew = stats.NewEWMA(0.4)
		c.nodeRTT[node] = ew
	}
	ew.Add(rttMs)
	c.tmProbeRTT.Observe(rttMs)
}

// subscribeEdge adds a publisher for the substream. The full CDN pull is
// NOT dropped here: the handover happens in maybeHandover once playback is
// established with a healthy buffer, accepting transient duplicate delivery
// — the paper's deliberate "QoE-driven aggressiveness" trade (§8.2).
func (c *Client) subscribeEdge(st *substreamState, node simnet.Addr) {
	st.publishers = append(st.publishers, node)
	st.lastData = c.sim.Now()
	c.sendTo(node, &transport.SubscribeReq{Key: c.key(st.ss)})
}

// maybeHandover drops the full CDN pull once multi-source delivery covers
// every substream and all of them are actually delivering. The buffer level
// deliberately does not gate the handover: when the CDN itself is the
// bottleneck (peak hours — the situation RLive exists for), the buffer can
// only recover after load moves off the CDN. A short post-handover grace
// (recoveryTick) keeps the fallback guard from bouncing straight back.
func (c *Client) maybeHandover() {
	if !c.fullCDN || !c.started || !c.rliveActive {
		return
	}
	if !c.allSubstreamsCovered() {
		return
	}
	now := c.sim.Now()
	fresh := simnet.Time(time.Second)
	for _, st := range c.subs {
		if st.switchedToCDN {
			continue
		}
		if st.lastData == 0 || now-st.lastData > fresh {
			c.coveredSince = 0
			return
		}
	}
	if c.coveredSince == 0 {
		c.coveredSince = now
	}
	// Prefer a safe handover (established buffer, with slack for playout
	// discretization). If the buffer never establishes — the CDN itself
	// is the bottleneck, which offloading would fix — hand over anyway
	// after a bounded overlap window: dual delivery is deliberate but
	// must stay short (§8.2 weighs this exact redundancy cost).
	safe := c.cfg.StartupBufferMs - 2*float64(c.intervalMs())
	if c.BufferMs() < safe && now-c.coveredSince < simnet.Time(2500*time.Millisecond) {
		return
	}
	c.unsubscribeFullCDN()
	c.handoverAt = now
}

func (c *Client) allSubstreamsCovered() bool {
	for _, st := range c.subs {
		if len(st.publishers) == 0 && !st.switchedToCDN {
			return false
		}
	}
	return true
}

// switchTick is the client-side control loop (§4.2.1): probe publishers and
// candidates, apply the switching rule, detect dead publishers, and send
// QoS reports to publishers.
func (c *Client) switchTick() {
	if c.started {
		c.tmBuffer.Observe(c.BufferMs())
	}
	if !c.rliveActive {
		return
	}
	now := c.sim.Now()
	for _, st := range c.subs {
		if st.switchedToCDN {
			// Substreams parked on the CDN return to multi-source on
			// candidate refresh after a cooldown.
			if now-st.switchbackAt > simnet.Time(10*time.Second) {
				st.switchedToCDN = false
				req := &transport.CDNUnsubscribeReq{Stream: c.stream, Substream: st.ss}
				c.sendTo(c.cfg.CDN, req)
				c.requestCandidates(st.ss)
			}
			continue
		}
		// Dead publisher detection: no data within the timeout.
		alive := st.publishers[:0]
		for _, pub := range st.publishers {
			if now-st.lastData > simnet.Time(c.cfg.DeadPublisherAfter) && len(st.publishers) == 1 {
				c.sendTo(c.cfg.Scheduler, &transport.NodeFailureReport{Node: pub})
				c.sendTo(pub, &transport.UnsubscribeReq{Key: c.key(st.ss)})
				c.EdgeSwitches++
				continue
			}
			alive = append(alive, pub)
		}
		st.publishers = alive
		if len(st.publishers) < c.cfg.Redundancy {
			c.probeRound(st)
		}
		// Probe publishers and the top candidates to refresh RTTs.
		for _, pub := range st.publishers {
			c.probeNode(pub, st.ss)
		}
		for i, cand := range st.candidates {
			if i >= c.cfg.ProbeCount {
				break
			}
			if !c.isPublisher(st, cand.Addr) {
				c.probeNode(cand.Addr, st.ss)
			}
		}
		c.applySwitchRule(st, c.tmSwitchRTT)
		c.sendQoSReport(st)
	}
}

// probeNode sends an RTT probe without subscription intent.
func (c *Client) probeNode(node simnet.Addr, ss media.SubstreamID) {
	c.probeNonce++
	c.probeSent[c.probeNonce] = probeCtx{at: c.sim.Now(), node: node, ss: ss}
	c.sendTo(node, &transport.ProbeReq{Nonce: c.probeNonce, Key: c.key(ss)})
	c.ProbesSent++
}

// applySwitchRule implements RTT_cur > min_i(RTT_i + t_change) (§4.2.1).
// trigger is the telemetry counter attributing an executed switch to what
// initiated the check (periodic RTT scan vs. an edge suggestion by reason).
func (c *Client) applySwitchRule(st *substreamState, trigger *telemetry.Counter) {
	if len(st.publishers) == 0 {
		return
	}
	cur := st.publishers[0]
	curEW, ok := c.nodeRTT[cur]
	if !ok || !curEW.Initialized() {
		return
	}
	tchangeMs := float64(c.cfg.TChange.Milliseconds())
	bestRTT := curEW.Value()
	var best simnet.Addr
	for _, cand := range st.candidates {
		if c.isPublisher(st, cand.Addr) {
			continue
		}
		ew, ok := c.nodeRTT[cand.Addr]
		if !ok || !ew.Initialized() {
			continue
		}
		if curEW.Value() > ew.Value()+tchangeMs && ew.Value() < bestRTT {
			bestRTT = ew.Value()
			best = cand.Addr
		}
	}
	if best == 0 {
		return
	}
	// Switch: subscribe the better node, drop the current one.
	c.sendTo(cur, &transport.UnsubscribeReq{Key: c.key(st.ss)})
	st.publishers[0] = best
	c.sendTo(best, &transport.SubscribeReq{Key: c.key(st.ss)})
	c.EdgeSwitches++
	c.QoE.Switches++
	trigger.Inc()
}

// sendQoSReport piggybacks connection QoS to the primary publisher, feeding
// the edge's Z-score trigger.
func (c *Client) sendQoSReport(st *substreamState) {
	if len(st.publishers) == 0 {
		return
	}
	pub := st.publishers[0]
	var rtt float64
	if ew, ok := c.nodeRTT[pub]; ok {
		rtt = ew.Value()
	}
	var loss float64
	if st.expected > 0 {
		loss = 1 - float64(st.received)/float64(st.expected)
		if loss < 0 {
			loss = 0
		}
	}
	c.sendTo(pub, &transport.QoSReport{Key: c.key(st.ss), RTTms: rtt, LossRate: loss})
}

// onSuggestion handles an edge adviser's proactive switch suggestion
// (§4.2.2): immediately run client-side control for that substream; if no
// better node is known, ask the scheduler for fresh candidates instead of
// switching blindly.
func (c *Client) onSuggestion(from simnet.Addr, m *transport.SwitchSuggestion) {
	ss := m.Key.Substream
	if int(ss) >= len(c.subs) || m.Key.Stream != c.stream {
		return
	}
	c.SuggestionsRecv++
	st := c.subs[ss]
	if !c.isPublisher(st, from) {
		return
	}
	trigger := c.tmSwitchCost
	if m.Reason == transport.SuggestQoS {
		trigger = c.tmSwitchQoS
	}
	before := c.EdgeSwitches
	c.applySwitchRule(st, trigger)
	if c.EdgeSwitches == before {
		// No better candidate: refresh the list (§4.2.2 last ¶).
		c.requestCandidates(ss)
	}
}

// Publishers returns the current publisher set for a substream (testing).
func (c *Client) Publishers(ss media.SubstreamID) []simnet.Addr {
	if int(ss) >= len(c.subs) {
		return nil
	}
	out := make([]simnet.Addr, len(c.subs[ss].publishers))
	copy(out, c.subs[ss].publishers)
	return out
}

// Candidates returns the last candidate list for a substream (testing).
func (c *Client) Candidates(ss media.SubstreamID) []scheduler.Candidate {
	if int(ss) >= len(c.subs) {
		return nil
	}
	return c.subs[ss].candidates
}

// FullCDNActive reports whether the full-stream CDN subscription is active.
func (c *Client) FullCDNActive() bool { return c.fullCDN }

// SubstreamOnCDN reports whether a substream is currently pulled from the
// CDN (switchback state).
func (c *Client) SubstreamOnCDN(ss media.SubstreamID) bool {
	if int(ss) >= len(c.subs) {
		return false
	}
	return c.subs[ss].switchedToCDN
}

package client

import (
	"testing"
	"time"

	"repro/internal/cdn"
	"repro/internal/edge"
	"repro/internal/media"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
)

const (
	schedAddr  = simnet.Addr(1)
	cdnAddr    = simnet.Addr(1000)
	clientAddr = simnet.Addr(10000000)
)

// harness wires a CDN, a stub scheduler, several edges and one client.
type harness struct {
	sim    *simnet.Sim
	net    *simnet.Network
	cdn    *cdn.Node
	edges  []*edge.Node
	client *Client
}

// stubScheduler answers CandidateReq with the given edges in fixed order
// and StreamUtilReq with a busy stream (no cost suggestions).
func (h *harness) stubScheduler(edges []simnet.Addr) {
	h.net.SetHandler(schedAddr, func(from simnet.Addr, msg any) {
		switch m := msg.(type) {
		case *transport.CandidateReq:
			var cands []scheduler.Candidate
			for _, e := range edges {
				if h.net.Online(e) {
					cands = append(cands, scheduler.Candidate{Addr: e, Score: 1})
				}
			}
			resp := &transport.CandidateResp{Key: m.Key, Candidates: cands}
			h.net.Send(schedAddr, from, transport.WireSize(resp), resp)
		case *transport.StreamUtilReq:
			resp := &transport.StreamUtilResp{Key: m.Key, Util: 0.9, N: 10}
			h.net.Send(schedAddr, from, transport.WireSize(resp), resp)
		}
	})
}

type harnessOpts struct {
	numEdges  int
	edgeLink  simnet.LinkState
	mode      Mode
	k         int
	canConn   func(simnet.Addr) bool
	redund    int
	seed      uint64
	clientCfg func(*Config)
}

func newHarness(t *testing.T, o harnessOpts) *harness {
	t.Helper()
	if o.numEdges == 0 {
		o.numEdges = 6
	}
	if o.k == 0 {
		o.k = 4
	}
	if o.seed == 0 {
		o.seed = 11
	}
	if o.edgeLink.UplinkBps == 0 {
		o.edgeLink = simnet.LinkState{UplinkBps: 60e6, BaseOWD: 3 * time.Millisecond, JitterStd: time.Millisecond}
	}
	h := &harness{sim: simnet.NewSim()}
	rng := stats.NewRNG(o.seed)
	h.net = simnet.NewNetwork(h.sim, rng.Fork())
	h.net.Register(schedAddr, simnet.LinkState{UplinkBps: 10e9, BaseOWD: 5 * time.Millisecond}, nil)
	h.net.Register(cdnAddr, simnet.LinkState{UplinkBps: 10e9, BaseOWD: 8 * time.Millisecond}, nil)
	h.net.Register(clientAddr, simnet.LinkState{UplinkBps: 200e6, BaseOWD: 2 * time.Millisecond}, nil)

	h.cdn = cdn.New(cdnAddr, h.sim, h.net, rng.Fork())
	h.net.SetHandler(cdnAddr, h.cdn.Handle)
	h.cdn.HostStream(media.SourceConfig{Stream: 1, FPS: 30, BitrateBps: 2e6}, o.k)

	var edgeAddrs []simnet.Addr
	for i := 0; i < o.numEdges; i++ {
		addr := simnet.Addr(100000 + i)
		h.net.Register(addr, o.edgeLink, nil)
		en := edge.New(addr, edge.Config{CDN: cdnAddr, Scheduler: schedAddr}, h.sim, h.net, rng.Fork())
		en.SetSubstreamCount(1, o.k)
		h.net.SetHandler(addr, en.Handle)
		en.Start()
		h.edges = append(h.edges, en)
		edgeAddrs = append(edgeAddrs, addr)
	}
	h.stubScheduler(edgeAddrs)

	cfg := Config{
		Stream:     1,
		K:          o.k,
		CDN:        cdnAddr,
		Scheduler:  schedAddr,
		Mode:       o.mode,
		CanConnect: o.canConn,
		Redundancy: o.redund,
		RLiveAfter: 2 * time.Second,
	}
	if o.clientCfg != nil {
		o.clientCfg(&cfg)
	}
	h.client = New(clientAddr, cfg, h.sim, h.net, rng.Fork())
	h.net.SetHandler(clientAddr, h.client.Handle)

	h.cdn.Start()
	h.client.Start()
	return h
}

func TestStartupViaCDN(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeCDNOnly})
	h.sim.Run(5 * time.Second)
	if !h.client.started {
		t.Fatal("playback never started")
	}
	if h.client.QoE.FirstFrameMs > 2500 {
		t.Fatalf("first frame took %.0f ms", h.client.QoE.FirstFrameMs)
	}
	if h.client.QoE.FramesPlayed < 60 {
		t.Fatalf("frames played = %d", h.client.QoE.FramesPlayed)
	}
}

func TestCDNOnlySmoothPlayback(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeCDNOnly})
	h.sim.Run(30 * time.Second)
	q := h.client.QoE
	if q.RebufferEvents > 1 {
		t.Fatalf("CDN-only rebuffers on a clean network: %d", q.RebufferEvents)
	}
	if q.FramesPlayed < 700 {
		t.Fatalf("frames played = %d, want ~850", q.FramesPlayed)
	}
	if br := q.MeanBitrate(); br < 1.5e6 || br > 2.6e6 {
		t.Fatalf("bitrate = %.0f, want ~2e6", br)
	}
}

func TestRLiveTransitionToMultiSource(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeRLive})
	h.sim.Run(20 * time.Second)
	if !h.client.RLiveActive() {
		t.Fatal("rlive never engaged")
	}
	covered := 0
	for ss := media.SubstreamID(0); int(ss) < 4; ss++ {
		if len(h.client.Publishers(ss)) > 0 {
			covered++
		}
	}
	if covered != 4 {
		t.Fatalf("substreams with publishers = %d/4", covered)
	}
	if h.client.FullCDNActive() {
		t.Fatal("full CDN pull still active after multi-source took over")
	}
	if h.client.QoE.FramesPlayed < 400 {
		t.Fatalf("frames played = %d", h.client.QoE.FramesPlayed)
	}
}

func TestRLiveSmoothPlaybackCleanNetwork(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeRLive})
	h.sim.Run(40 * time.Second)
	q := h.client.QoE
	if q.RebufferEvents > 2 {
		t.Fatalf("rebuffer events = %d on clean network", q.RebufferEvents)
	}
	if q.FramesPlayed < 1000 {
		t.Fatalf("frames played = %d", q.FramesPlayed)
	}
}

func TestRecoveryUnderLoss(t *testing.T) {
	h := newHarness(t, harnessOpts{
		mode: ModeRLive,
		edgeLink: simnet.LinkState{
			UplinkBps: 60e6, BaseOWD: 3 * time.Millisecond,
			LossRate: 0.03, JitterStd: 2 * time.Millisecond,
		},
	})
	h.sim.Run(40 * time.Second)
	q := h.client.QoE
	if q.RetxRequests == 0 {
		t.Fatal("no retransmissions under 3% loss")
	}
	// Playback must survive: played the overwhelming majority of frames.
	if q.FramesPlayed < 900 {
		t.Fatalf("frames played = %d under loss", q.FramesPlayed)
	}
	if h.client.FastRetx == 0 && h.client.TimeoutRetx == 0 && h.client.DedicatedFetch == 0 {
		t.Fatal("no recovery path exercised")
	}
}

func TestDeadPublisherFailover(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeRLive})
	h.sim.Run(10 * time.Second)
	// Kill the publisher of substream 0.
	pubs := h.client.Publishers(0)
	if len(pubs) == 0 {
		t.Fatal("no publisher to kill")
	}
	killed := pubs[0]
	h.net.SetOnline(killed, false)
	h.sim.Run(25 * time.Second)
	newPubs := h.client.Publishers(0)
	if len(newPubs) == 0 {
		t.Fatal("no failover publisher")
	}
	if newPubs[0] == killed {
		t.Fatal("still mapped to dead node")
	}
	// Playback must continue past the failover.
	if h.client.QoE.FramesPlayed < 550 {
		t.Fatalf("frames played = %d after failover", h.client.QoE.FramesPlayed)
	}
}

func TestFullFallbackWhenAllEdgesDie(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeRLive, clientCfg: func(c *Config) {
		c.CandidateRefreshEvery = time.Hour // prevent quick re-probing to force fallback
	}})
	h.sim.Run(10 * time.Second)
	for _, e := range h.edges {
		h.net.SetOnline(e.Addr, false)
	}
	h.sim.Run(30 * time.Second)
	if !h.client.FullCDNActive() && h.client.FullFallbacks == 0 {
		t.Fatalf("no fallback after total edge failure (fallbacks=%d)", h.client.FullFallbacks)
	}
	// Total stall should be bounded.
	if h.client.QoE.StalledMs > 15000 {
		t.Fatalf("stalled %.0f ms, fallback too slow", h.client.QoE.StalledMs)
	}
}

func TestNATBlockedCandidatesSkipped(t *testing.T) {
	blocked := map[simnet.Addr]bool{100000: true, 100001: true}
	h := newHarness(t, harnessOpts{
		mode:    ModeRLive,
		canConn: func(a simnet.Addr) bool { return !blocked[a] },
	})
	h.sim.Run(20 * time.Second)
	for ss := media.SubstreamID(0); int(ss) < 4; ss++ {
		for _, p := range h.client.Publishers(ss) {
			if blocked[p] {
				t.Fatalf("subscribed to NAT-blocked node %v", p)
			}
		}
	}
	if h.client.QoE.FramesPlayed < 400 {
		t.Fatalf("frames played = %d", h.client.QoE.FramesPlayed)
	}
}

func TestSingleSourceMode(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeSingleSource, k: 1})
	h.sim.Run(20 * time.Second)
	if got := h.client.Config().K; got != 1 {
		t.Fatalf("single-source K = %d", got)
	}
	if len(h.client.Publishers(0)) == 0 {
		t.Fatal("no single-source publisher")
	}
	if h.client.QoE.FramesPlayed < 400 {
		t.Fatalf("frames played = %d", h.client.QoE.FramesPlayed)
	}
}

func TestRedundantModeDeliversDuplicates(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeRLive, redund: 2})
	h.sim.Run(20 * time.Second)
	dup := 0
	for ss := media.SubstreamID(0); int(ss) < 4; ss++ {
		if len(h.client.Publishers(ss)) >= 2 {
			dup++
		}
	}
	if dup == 0 {
		t.Fatal("redundant mode never attached a second publisher")
	}
	if h.client.QoE.FramesPlayed < 400 {
		t.Fatalf("frames played = %d", h.client.QoE.FramesPlayed)
	}
}

func TestSwitchRulePrefersLowerRTT(t *testing.T) {
	// Edge 0 has terrible RTT; the switch rule should move away from it
	// once probes accumulate.
	h := newHarness(t, harnessOpts{mode: ModeRLive, numEdges: 3, k: 1,
		clientCfg: func(c *Config) { c.SwitchCheckEvery = time.Second }})
	// Degrade edge 0 permanently.
	h.net.UpdateState(100000, func(st *simnet.LinkState) {
		st.BaseOWD = 400 * time.Millisecond
	})
	h.sim.Run(40 * time.Second)
	pubs := h.client.Publishers(0)
	if len(pubs) == 0 {
		t.Fatal("no publisher")
	}
	if pubs[0] == 100000 {
		t.Fatalf("still on the 400ms node after 40s (switches=%d)", h.client.EdgeSwitches)
	}
}

func TestSuggestionTriggersControl(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeRLive, k: 1})
	h.sim.Run(10 * time.Second)
	pubs := h.client.Publishers(0)
	if len(pubs) == 0 {
		t.Fatal("no publisher")
	}
	before := h.client.SuggestionsRecv
	sg := &transport.SwitchSuggestion{Key: scheduler.SubstreamKey{Stream: 1, Substream: 0}, Reason: transport.SuggestQoS}
	h.net.Send(pubs[0], clientAddr, transport.WireSize(sg), sg)
	h.sim.Run(11 * time.Second)
	if h.client.SuggestionsRecv != before+1 {
		t.Fatal("suggestion not processed")
	}
}

func TestStopUnsubscribesEverything(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeRLive})
	h.sim.Run(15 * time.Second)
	h.client.Stop()
	h.sim.Run(17 * time.Second)
	for _, e := range h.edges {
		if e.Sessions() != 0 {
			t.Fatalf("edge %v still has sessions after stop", e.Addr)
		}
	}
	if h.cdn.Subscribers(1) != 0 {
		t.Fatal("CDN still has subscribers after stop")
	}
	if !h.client.Stopped() {
		t.Fatal("client not stopped")
	}
}

func TestE2ELatencyRecorded(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeRLive})
	h.sim.Run(20 * time.Second)
	lat := h.client.QoE.E2ELatency
	if lat.N() < 100 {
		t.Fatalf("latency samples = %d", lat.N())
	}
	p50 := lat.Percentile(50)
	// E2E = network + buffer wait; should be sub-3s in this topology.
	if p50 <= 0 || p50 > 3000 {
		t.Fatalf("P50 E2E = %.0f ms", p50)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, float64, uint64) {
		h := newHarness(t, harnessOpts{mode: ModeRLive, seed: 33,
			edgeLink: simnet.LinkState{UplinkBps: 60e6, BaseOWD: 3 * time.Millisecond, LossRate: 0.01}})
		h.sim.Run(15 * time.Second)
		return h.client.QoE.FramesPlayed, h.client.QoE.StalledMs, h.client.DedicatedFetch
	}
	f1, s1, d1 := run()
	f2, s2, d2 := run()
	if f1 != f2 || s1 != s2 || d1 != d2 {
		t.Fatalf("nondeterministic: (%d,%.1f,%d) vs (%d,%.1f,%d)", f1, s1, d1, f2, s2, d2)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeRLive.String() != "rlive" || ModeSingleSource.String() != "single-source" || ModeCDNOnly.String() != "cdn-only" {
		t.Fatal("mode strings wrong")
	}
}
